// Cycle-accurate device-driver validation - the paper's motivating use
// case: "I/O accesses to the bus must be cycle accurate in order to make
// it possible to validate the bus interfaces to the hardware or the
// handshakes on the bus."
//
// A driver-style program polls the timer, writes a message to the
// character device and reads back the transmit count. The example runs it
// on the reference board and on the emulation platform and then compares
// the *SoC-cycle timestamps* at which the character device saw each byte:
// because the synchronization device generates the emulated core's clock
// for the attached hardware, the peripheral observes the same timing on
// both systems.
#include <algorithm>
#include <cstdio>

#include "iss/iss.h"
#include "platform/platform.h"
#include "trc/assembler.h"
#include "xlat/translator.h"

int main() {
  using namespace cabt;

  const char* driver = R"(
; uart-style driver: wait until the timer passes 50 SoC cycles, then
; print "OK" and record the timer value.
_start: movha a0, 0xf000      ; I/O region
        movi d3, 50
wait:   ldw d1, [a0]0x100     ; timer low word
        lt d2, d1, d3
        jnz16 d2, wait        ; poll until timer >= 50
        movi d4, 79           ; 'O'
        stw d4, [a0]0x200
        movi d4, 75           ; 'K'
        stw d4, [a0]0x200
        ldw d5, [a0]0x204     ; chars transmitted
        ldw d6, [a0]0x100     ; timestamp after transmit
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d5, [a1]0
        stw d6, [a1]4
        halt
        .data
result: .word 0, 0
)";

  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const elf::Object object = trc::assemble(driver);

  // Reference board: the ISS clocks the peripherals with its own cycles.
  platform::ReferenceBoard board(desc, object);
  board.run();
  std::printf("reference board : output \"%s\", char stamps:",
              board.board().chardev.output().c_str());
  for (const uint64_t stamp : board.board().chardev.stamps()) {
    std::printf(" %llu", static_cast<unsigned long long>(stamp));
  }
  std::printf("\n");

  // Emulation platform at the icache detail level (exact cycle stream).
  xlat::TranslateOptions options;
  options.level = xlat::DetailLevel::kICache;
  const xlat::TranslationResult t = xlat::translate(desc, object, options);
  platform::EmulationPlatform plat(desc, t.image);
  plat.run();
  std::printf("emulation       : output \"%s\", char stamps:",
              plat.board().chardev.output().c_str());
  for (const uint64_t stamp : plat.board().chardev.stamps()) {
    std::printf(" %llu", static_cast<unsigned long long>(stamp));
  }
  std::printf("\n");

  // What the paper's scheme guarantees: the peripheral sees the same
  // bytes, the same *total* cycle stream (exact at the icache level), and
  // per-access timestamps aligned at basic-block granularity (cycle
  // generation runs in parallel with the block and synchronises at its
  // end, Fig. 2) - so each stamp may shift within its block's window.
  const bool same_output =
      board.board().chardev.output() == plat.board().chardev.output();
  // Note: this driver's control flow *reads the clock* (it polls the
  // timer), so the number of poll iterations - and hence the total cycle
  // count - may differ by a block's granularity between the two systems.
  const uint64_t board_cycles = board.iss().stats().cycles;
  const uint64_t emu_cycles = plat.sync().totalGenerated();
  bool stamps_in_window = board.board().chardev.stamps().size() ==
                          plat.board().chardev.stamps().size();
  uint64_t max_skew = 0;
  for (size_t i = 0; stamps_in_window &&
                     i < board.board().chardev.stamps().size();
       ++i) {
    const uint64_t a = board.board().chardev.stamps()[i];
    const uint64_t b = plat.board().chardev.stamps()[i];
    const uint64_t skew = a > b ? a - b : b - a;
    max_skew = std::max(max_skew, skew);
    stamps_in_window &= skew <= 16;  // within one block's cycle window
  }
  std::printf("bus-level check : bytes %s; board %llu vs emulated %llu "
              "total cycles; per-access skew <= %llu cycles "
              "(block-granularity alignment, see comment)\n",
              same_output ? "identical" : "DIFFER",
              static_cast<unsigned long long>(board_cycles),
              static_cast<unsigned long long>(emu_cycles),
              static_cast<unsigned long long>(max_skew));

  std::printf("transactions on the emulated SoC bus:\n");
  size_t shown = 0;
  for (const soc::Transaction& tr : plat.board().bus.log()) {
    if (shown++ == 8) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  cycle %6llu  %-5s addr=0x%08x value=0x%08x\n",
                static_cast<unsigned long long>(tr.soc_cycle),
                tr.is_write ? "write" : "read", tr.addr, tr.value);
  }
  return same_output && stamps_in_window ? 0 : 1;
}
