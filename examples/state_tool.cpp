// Checkpoint/replay driver for the stock scenario boards: computes the
// rolling state digests scripts/golden_state.py pins in-repo, saves and
// resumes full platform snapshots, and self-checks the save→restore→run
// round trip.
//
// Usage:
//   state_tool digest <scenario> [--level=...] [--quantum=N]
//                     [--interval=N] [--parallel] [--dispatch=...]
//   state_tool selfcheck <scenario> [--level=...] [--quantum=N] [--at=N]
//                        [--dispatch=...]
//   state_tool save <scenario> --out=FILE [--at=N] [--level=...]
//   state_tool resume <scenario> --in=FILE [--to=N] [--level=...]
//   state_tool profile <scenario> [--period=N] [--top=N]
//                      [--fold-out=FILE] [...common flags]
//   state_tool inject <scenario> --fault=SPEC [--fault=SPEC ...]
//                     [--interval=N] [--to=N] [...common flags]
//   state_tool recover <scenario> --interval=N --fault=SPEC [...]
//                      [--to=N] [...common flags]
//
// `--dispatch=lookup|chained|traces|threaded` selects the ISS dispatch
// engine (default: the detail level's stock engine). With selfcheck it
// exercises the cold-restore path of that engine from the CLI — e.g.
// `--dispatch=threaded` restores into a board whose block cache (and
// with it every lowered threaded-code program) starts empty.
//
// Observability (src/obs, DESIGN.md section 11) — every board-running
// command additionally accepts:
//   --trace-out=FILE    write a Chrome trace-event / Perfetto JSON
//                       timeline (open in ui.perfetto.dev)
//   --metrics           print the metrics registry as text on stdout
//   --metrics-out=FILE  write the metrics registry as JSON
//   --cores=N           replicate a single-program scenario onto N cores
// `profile` runs the guest sampling profiler: samples the PC every
// --period guest cycles at block boundaries, attributes samples through
// the image's symbol table, prints a per-core top-N table and writes
// flamegraph-foldable lines ("coreN;func count") to --fold-out.
// Observers never perturb architectural state: digests with and without
// any of these flags are identical (tests/obs_test.cpp).
//
// Fault injection & recovery (src/fi, DESIGN.md section 12):
// `inject` arms a fi::Campaign built from repeatable --fault=SPEC
// strings ("kind@cycle:key=value,..."), runs the scenario, and reports
// every fired fault plus the final digest. `recover` performs a clean
// reference run first, then replays with the faults, divergence
// detection against the reference digest trail, and auto-recovery
// through the snapshot ring — exiting 0 only when the recovered run
// converges on the clean digest. `--fi-armed` (any board-running
// command) arms a campaign of never-due faults, the non-perturbation
// probe scripts/golden_state.py --check uses: output must be identical
// to an FI-off run.
//
// Scenarios: irq_ticks (1 core), mc_pair (producer + consumer),
// mc_worker (solo), mc_quad (pair + two workers). `digest` prints one
// `trail <cycle> <digest>` line per checkpoint interval (when
// --interval is given) and a final machine-parsable summary line.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fi/fi.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "platform/platform.h"
#include "snap/snapshot.h"
#include "workloads/workloads.h"

namespace {

using namespace cabt;

xlat::DetailLevel parseLevel(const std::string& name) {
  using xlat::DetailLevel;
  if (name == "functional") {
    return DetailLevel::kFunctional;
  }
  if (name == "static") {
    return DetailLevel::kStatic;
  }
  if (name == "branch") {
    return DetailLevel::kBranchPredict;
  }
  if (name == "cache") {
    return DetailLevel::kICache;
  }
  throw Error("unknown detail level '" + name +
              "' (functional|static|branch|cache)");
}

iss::DispatchMode parseDispatch(const std::string& name) {
  using iss::DispatchMode;
  if (name == "lookup") {
    return DispatchMode::kLookup;
  }
  if (name == "chained") {
    return DispatchMode::kChained;
  }
  if (name == "traces") {
    return DispatchMode::kChainedTraces;
  }
  if (name == "threaded") {
    return DispatchMode::kThreaded;
  }
  throw Error("unknown dispatch mode '" + name +
              "' (lookup|chained|traces|threaded)");
}

/// A stock scenario board: the images plus everything needed to build
/// identically configured boards repeatedly (cold restore targets).
struct Scenario {
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> image_ptrs;
  platform::BoardConfig cfg;
  arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();

  std::unique_ptr<platform::ReferenceBoard> makeBoard() const {
    return std::make_unique<platform::ReferenceBoard>(desc, image_ptrs, cfg);
  }
};

Scenario makeScenario(const std::string& name, xlat::DetailLevel level,
                      sim::Cycle quantum, bool parallel,
                      const std::string& dispatch, size_t cores) {
  Scenario s;
  std::vector<const workloads::Workload*> programs;
  if (name == "irq_ticks") {
    programs = {&workloads::get("irq_ticks")};
  } else if (name == "mc_pair") {
    programs = {&workloads::get("mc_producer"),
                &workloads::get("mc_consumer")};
  } else if (name == "mc_worker") {
    programs = {&workloads::get("mc_worker")};
  } else if (name == "mc_quad") {
    programs = {&workloads::get("mc_producer"),
                &workloads::get("mc_consumer"),
                &workloads::get("mc_worker"), &workloads::get("mc_worker")};
  } else {
    throw Error("unknown scenario '" + name +
                "' (irq_ticks|mc_pair|mc_worker|mc_quad)");
  }
  if (cores != 0 && cores != programs.size()) {
    CABT_CHECK(programs.size() == 1,
               "--cores only replicates single-program scenarios; '"
                   << name << "' already has " << programs.size());
    programs.resize(cores, programs.front());
  }
  s.cfg.iss = platform::issConfigFor(level);
  if (!dispatch.empty()) {
    s.cfg.iss.dispatch_mode = parseDispatch(dispatch);
  }
  s.cfg.quantum = quantum;
  s.cfg.parallel.enabled = parallel;
  for (const workloads::Workload* w : programs) {
    s.images.push_back(workloads::assemble(*w));
    if (!w->irq_handler.empty()) {
      s.cfg.iss.extra_leaders.push_back(
          platform::symbolAddr(s.images.back(), w->irq_handler));
    }
  }
  for (const elf::Object& obj : s.images) {
    s.image_ptrs.push_back(&obj);
  }
  return s;
}

/// Common observability plumbing for the board-running commands.
struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
  bool metrics_text = false;

  [[nodiscard]] bool traceWanted() const { return !trace_out.empty(); }

  /// After the run: export the timeline and/or the metrics registry
  /// (plus the campaign's fi.* counters when one is armed).
  void finish(const platform::ReferenceBoard& board,
              const obs::TraceSink& sink,
              const fi::Campaign* camp = nullptr) const {
    if (traceWanted()) {
      std::ofstream out(trace_out);
      CABT_CHECK(out.good(), "cannot open '" << trace_out << "'");
      sink.writeJson(out);
      std::printf("trace %s events=%zu dropped=%llu\n", trace_out.c_str(),
                  sink.numEvents(),
                  static_cast<unsigned long long>(sink.droppedEvents()));
    }
    if (metrics_text || !metrics_out.empty()) {
      obs::MetricsRegistry reg;
      board.publishMetrics(reg);
      if (camp != nullptr) {
        camp->publishMetrics(reg);
      }
      if (metrics_text) {
        std::fputs(reg.toText().c_str(), stdout);
      }
      if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        CABT_CHECK(out.good(), "cannot open '" << metrics_out << "'");
        out << reg.toJson();
        std::printf("metrics %s entries=%zu\n", metrics_out.c_str(),
                    reg.size());
      }
    }
  }
};

/// Builds the campaign for this invocation: every --fault=SPEC plus,
/// with --fi-armed, one never-due fault per category (the armed-idle
/// overhead/non-perturbation probe — nothing ever fires).
fi::Campaign buildCampaign(const std::vector<std::string>& fault_specs,
                           bool fi_armed, size_t num_cores) {
  fi::Campaign camp;
  for (const std::string& s : fault_specs) {
    camp.add(fi::parseFaultSpec(s));
  }
  if (fi_armed) {
    for (size_t c = 0; c < num_cores; ++c) {
      fi::FaultSpec reg;
      reg.kind = fi::FaultKind::kDataRegFlip;
      reg.cycle = fi::CoreInjector::kNever;
      reg.core = c;
      reg.index = 15;
      reg.mask = 1;
      camp.add(reg);
    }
    fi::FaultSpec bus;  // window armed from cycle kNever: never active
    bus.kind = fi::FaultKind::kBusError;
    bus.cycle = fi::CoreInjector::kNever;
    bus.addr = 0xf0000300u;
    camp.add(bus);
  }
  return camp;
}

const char* coreFaultKindName(fi::CoreFaultKind kind) {
  switch (kind) {
    case fi::CoreFaultKind::kDataReg:
      return "dreg";
    case fi::CoreFaultKind::kAddrReg:
      return "areg";
    case fi::CoreFaultKind::kPc:
      return "pc";
    default:
      return "mem";
  }
}

void printFired(const fi::Campaign& camp, size_t num_cores) {
  for (size_t core = 0; core < num_cores; ++core) {
    for (const fi::FiredFault& f : camp.fired(core)) {
      std::printf(
          "fired core=%zu kind=%s at=%llu pc=0x%08x before=0x%08x "
          "after=0x%08x\n",
          core, coreFaultKindName(f.fault.kind),
          static_cast<unsigned long long>(f.at), f.pc, f.before, f.after);
    }
  }
}

void printSummary(const platform::ReferenceBoard& board) {
  uint64_t instructions = 0;
  for (size_t i = 0; i < board.numCores(); ++i) {
    instructions += board.core(i).stats().instructions;
  }
  std::printf("final bus_cycle=%llu instructions=%llu digest=0x%016llx\n",
              static_cast<unsigned long long>(board.board().bus.socCycle()),
              static_cast<unsigned long long>(instructions),
              static_cast<unsigned long long>(snap::digest(board)));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string command;
    std::string scenario_name;
    xlat::DetailLevel level = xlat::DetailLevel::kICache;
    sim::Cycle quantum = 1024;
    sim::Cycle interval = 0;
    sim::Cycle at = 2000;
    sim::Cycle to = sim::kForever;
    bool parallel = false;
    std::string dispatch;
    std::string in_path;
    std::string out_path;
    size_t cores = 0;
    uint64_t period = 64;
    size_t top_n = 10;
    std::string fold_out;
    std::vector<std::string> fault_specs;
    bool fi_armed = false;
    ObsOptions obs_opts;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--level=", 0) == 0) {
        level = parseLevel(arg.substr(8));
      } else if (arg.rfind("--quantum=", 0) == 0) {
        quantum = std::strtoull(arg.c_str() + 10, nullptr, 0);
      } else if (arg.rfind("--interval=", 0) == 0) {
        interval = std::strtoull(arg.c_str() + 11, nullptr, 0);
      } else if (arg.rfind("--at=", 0) == 0) {
        at = std::strtoull(arg.c_str() + 5, nullptr, 0);
      } else if (arg.rfind("--to=", 0) == 0) {
        to = std::strtoull(arg.c_str() + 5, nullptr, 0);
      } else if (arg.rfind("--dispatch=", 0) == 0) {
        dispatch = arg.substr(11);
      } else if (arg.rfind("--in=", 0) == 0) {
        in_path = arg.substr(5);
      } else if (arg.rfind("--out=", 0) == 0) {
        out_path = arg.substr(6);
      } else if (arg.rfind("--cores=", 0) == 0) {
        cores = std::strtoull(arg.c_str() + 8, nullptr, 0);
      } else if (arg.rfind("--period=", 0) == 0) {
        period = std::strtoull(arg.c_str() + 9, nullptr, 0);
      } else if (arg.rfind("--top=", 0) == 0) {
        top_n = std::strtoull(arg.c_str() + 6, nullptr, 0);
      } else if (arg.rfind("--fold-out=", 0) == 0) {
        fold_out = arg.substr(11);
      } else if (arg.rfind("--trace-out=", 0) == 0) {
        obs_opts.trace_out = arg.substr(12);
      } else if (arg.rfind("--metrics-out=", 0) == 0) {
        obs_opts.metrics_out = arg.substr(14);
      } else if (arg.rfind("--fault=", 0) == 0) {
        fault_specs.push_back(arg.substr(8));
      } else if (arg == "--fi-armed") {
        fi_armed = true;
      } else if (arg == "--metrics") {
        obs_opts.metrics_text = true;
      } else if (arg == "--parallel") {
        parallel = true;
      } else if (!arg.empty() && arg[0] != '-') {
        if (command.empty()) {
          command = arg;
        } else if (scenario_name.empty()) {
          scenario_name = arg;
        } else {
          throw Error("unexpected argument '" + arg + "'");
        }
      } else {
        throw Error("unknown option '" + arg + "'");
      }
    }
    if (command.empty() || scenario_name.empty()) {
      std::fprintf(stderr,
                   "usage: %s digest|selfcheck|save|resume|profile|"
                   "inject|recover <scenario> "
                   "[--level=functional|static|branch|cache] [--quantum=N] "
                   "[--interval=N] [--at=N] [--to=N] [--in=F] [--out=F] "
                   "[--parallel] [--cores=N] "
                   "[--dispatch=lookup|chained|traces|threaded] "
                   "[--fault=SPEC]... [--fi-armed] "
                   "[--trace-out=F] [--metrics] [--metrics-out=F] "
                   "[--period=N] [--top=N] [--fold-out=F]\n",
                   argv[0]);
      return 2;
    }

    const Scenario scenario =
        makeScenario(scenario_name, level, quantum, parallel, dispatch,
                     cores);

    if (command == "digest") {
      std::unique_ptr<platform::ReferenceBoard> board = scenario.makeBoard();
      obs::TraceSink sink;
      if (obs_opts.traceWanted()) {
        board->setTraceSink(&sink);
      }
      fi::Campaign camp =
          buildCampaign(fault_specs, fi_armed, board->numCores());
      if (camp.scheduled() != 0) {
        camp.arm(*board);
      }
      if (interval != 0) {
        board->setCheckpointing({interval, 1, ""});
      }
      board->run();
      for (const auto& [cycle, digest] : board->digestTrail()) {
        std::printf("trail %llu 0x%016llx\n",
                    static_cast<unsigned long long>(cycle),
                    static_cast<unsigned long long>(digest));
      }
      printSummary(*board);
      obs_opts.finish(*board, sink,
                      camp.scheduled() != 0 ? &camp : nullptr);
      return 0;
    }

    if (command == "inject") {
      CABT_CHECK(!fault_specs.empty() || fi_armed,
                 "inject needs at least one --fault=SPEC (or --fi-armed)");
      std::unique_ptr<platform::ReferenceBoard> board = scenario.makeBoard();
      obs::TraceSink sink;
      if (obs_opts.traceWanted()) {
        board->setTraceSink(&sink);
      }
      fi::Campaign camp =
          buildCampaign(fault_specs, fi_armed, board->numCores());
      camp.arm(*board);
      if (interval != 0) {
        board->setCheckpointing({interval, 4, ""});
      }
      board->runTo(to);
      printFired(camp, board->numCores());
      std::printf("fi scheduled=%zu fired=%llu ring_corruptions=%llu\n",
                  camp.scheduled(),
                  static_cast<unsigned long long>(camp.firedCount()),
                  static_cast<unsigned long long>(camp.ringCorruptions()));
      if (obs_opts.traceWanted()) {
        camp.emitTrace(sink);
      }
      printSummary(*board);
      obs_opts.finish(*board, sink, &camp);
      return 0;
    }

    if (command == "recover") {
      CABT_CHECK(interval != 0,
                 "recover needs --interval=N (a snapshot ring to fall "
                 "back into)");
      CABT_CHECK(!fault_specs.empty(),
                 "recover needs at least one --fault=SPEC to recover from");
      // Clean reference run: the convergence target and the expected
      // digest trail for divergence detection.
      std::unique_ptr<platform::ReferenceBoard> ref = scenario.makeBoard();
      ref->setCheckpointing({interval, 4, ""});
      ref->run();
      const uint64_t want = snap::digest(*ref);
      // Faulted run: same ring, trail-certified divergence detection,
      // auto-recovery bounded by RecoveryConfig defaults.
      std::unique_ptr<platform::ReferenceBoard> board = scenario.makeBoard();
      obs::TraceSink sink;
      if (obs_opts.traceWanted()) {
        board->setTraceSink(&sink);
      }
      fi::Campaign camp =
          buildCampaign(fault_specs, fi_armed, board->numCores());
      camp.arm(*board);
      board->setCheckpointing({interval, 4, ""});
      board->setExpectedTrail(ref->digestTrail());
      platform::RecoveryConfig rec;
      rec.auto_recover = true;
      board->setRecovery(rec);
      board->runTo(to);
      printFired(camp, board->numCores());
      const uint64_t got = snap::digest(*board);
      std::printf("recover %s: fired=%llu recoveries=%zu divergences=%zu "
                  "clean=0x%016llx recovered=0x%016llx %s\n",
                  scenario_name.c_str(),
                  static_cast<unsigned long long>(camp.firedCount()),
                  board->recoveries(), board->divergences(),
                  static_cast<unsigned long long>(want),
                  static_cast<unsigned long long>(got),
                  want == got ? "OK" : "MISMATCH");
      obs_opts.finish(*board, sink, &camp);
      return want == got ? 0 : 1;
    }

    if (command == "profile") {
      std::unique_ptr<platform::ReferenceBoard> board = scenario.makeBoard();
      obs::TraceSink sink;
      if (obs_opts.traceWanted()) {
        board->setTraceSink(&sink);
      }
      std::vector<std::unique_ptr<obs::PcSampler>> samplers;
      for (size_t i = 0; i < board->numCores(); ++i) {
        samplers.push_back(std::make_unique<obs::PcSampler>(period));
        board->attachSampler(i, samplers.back().get());
      }
      board->run();
      std::string folded;
      for (size_t i = 0; i < board->numCores(); ++i) {
        const std::vector<obs::ProfileEntry> entries =
            obs::attributeSamples(*samplers[i], board->core(i).symbols());
        std::printf("core%zu: %llu samples, period %llu cycles\n", i,
                    static_cast<unsigned long long>(
                        samplers[i]->totalSamples()),
                    static_cast<unsigned long long>(samplers[i]->period()));
        std::fputs(obs::topTable(entries, top_n).c_str(), stdout);
        folded += obs::foldedLines("core" + std::to_string(i), entries);
      }
      if (!fold_out.empty()) {
        std::ofstream out(fold_out);
        CABT_CHECK(out.good(), "cannot open '" << fold_out << "'");
        out << folded;
        std::printf("folded %s\n", fold_out.c_str());
      }
      printSummary(*board);
      obs_opts.finish(*board, sink);
      return 0;
    }

    if (command == "save") {
      CABT_CHECK(!out_path.empty(), "save needs --out=FILE");
      std::unique_ptr<platform::ReferenceBoard> board = scenario.makeBoard();
      board->runTo(at);
      snap::saveFile(*board, out_path);
      std::printf("saved %s at cycle %llu digest=0x%016llx\n",
                  out_path.c_str(),
                  static_cast<unsigned long long>(board->kernel().now()),
                  static_cast<unsigned long long>(snap::digest(*board)));
      return 0;
    }

    if (command == "resume") {
      CABT_CHECK(!in_path.empty(), "resume needs --in=FILE");
      std::unique_ptr<platform::ReferenceBoard> board = scenario.makeBoard();
      snap::restoreFile(*board, in_path);
      board->runTo(to);
      printSummary(*board);
      return 0;
    }

    if (command == "selfcheck") {
      // Uninterrupted reference run.
      std::unique_ptr<platform::ReferenceBoard> ref = scenario.makeBoard();
      ref->run();
      const uint64_t want = snap::digest(*ref);
      // Save mid-run, restore into a cold board, run to completion.
      std::unique_ptr<platform::ReferenceBoard> warm = scenario.makeBoard();
      warm->runTo(at);
      const std::vector<uint8_t> snapshot = snap::save(*warm);
      std::unique_ptr<platform::ReferenceBoard> cold = scenario.makeBoard();
      snap::restore(*cold, snapshot);
      cold->run();
      const uint64_t got = snap::digest(*cold);
      std::printf("selfcheck %s at=%llu: uninterrupted=0x%016llx "
                  "restored=0x%016llx %s\n",
                  scenario_name.c_str(), static_cast<unsigned long long>(at),
                  static_cast<unsigned long long>(want),
                  static_cast<unsigned long long>(got),
                  want == got ? "OK" : "MISMATCH");
      return want == got ? 0 : 1;
    }

    throw Error("unknown command '" + command + "'");
  } catch (const cabt::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    // Anything the simulator did not classify (bad_alloc, filesystem
    // errors, ...) still exits with a one-line diagnosis, never a core.
    std::fprintf(stderr, "error: unhandled exception: %s\n", e.what());
    return 2;
  } catch (...) {
    std::fprintf(stderr, "error: unhandled non-standard exception\n");
    return 2;
  }
}
