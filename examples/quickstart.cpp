// Quickstart: the complete flow in one page.
//
//   1. Assemble a TRC32 program (the "object code" the paper's compiler
//      consumes).
//   2. Run it on the reference ISS (the "evaluation board") for ground
//      truth: instruction count, cycle count, final state.
//   3. Translate it cycle-accurately to the V6X VLIW.
//   4. Run the translated image on the emulation platform (VLIW +
//      synchronization device) and compare.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "iss/iss.h"
#include "platform/platform.h"
#include "trc/assembler.h"
#include "xlat/translator.h"

int main() {
  using namespace cabt;

  // A small program: sum of squares 1..20, stored to 'result'.
  const char* source = R"(
_start: movi d0, 20          ; n
        movi d1, 0           ; sum
loop:   mul d2, d0, d0
        add d1, d1, d2
        addi16 d0, -1
        jnz16 d0, loop
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d1, [a1]0
        halt
        .data
result: .word 0
)";

  // The source processor description (pipelines, branch model, icache,
  // memory map) - normally loaded from XML, here the built-in default.
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const elf::Object object = trc::assemble(source);

  // Ground truth on the reference board.
  iss::Iss reference(desc, object);
  reference.run();
  std::printf("reference board : %llu instructions, %llu cycles, "
              "result = %u\n",
              static_cast<unsigned long long>(
                  reference.stats().instructions),
              static_cast<unsigned long long>(reference.stats().cycles),
              reference.memory().read32(
                  object.findSymbol("result")->value));

  // Cycle-accurate binary translation at the highest detail level.
  xlat::TranslateOptions options;
  options.level = xlat::DetailLevel::kICache;
  const xlat::TranslationResult translation =
      xlat::translate(desc, object, options);
  std::printf("translation     : %llu blocks, %llu cache analysis blocks, "
              "%llu bytes of VLIW code\n",
              static_cast<unsigned long long>(translation.stats.blocks),
              static_cast<unsigned long long>(translation.stats.cabs),
              static_cast<unsigned long long>(translation.stats.code_bytes));

  // Execute on the emulation platform.
  platform::EmulationPlatform plat(desc, translation.image);
  const platform::RunResult run = plat.run();
  const MemRegion* ram = desc.memory_map.findNamed("ram");
  const uint32_t result_addr =
      ram->remap(object.findSymbol("result")->value);
  std::printf("emulation       : %llu VLIW cycles, %llu generated SoC "
              "cycles, result = %u\n",
              static_cast<unsigned long long>(run.vliw_cycles),
              static_cast<unsigned long long>(run.generated_cycles),
              plat.sim().memory().read32(result_addr));

  const bool exact =
      run.generated_cycles == reference.stats().cycles;
  std::printf("cycle accuracy  : generated %llu vs measured %llu -> %s\n",
              static_cast<unsigned long long>(run.generated_cycles),
              static_cast<unsigned long long>(reference.stats().cycles),
              exact ? "exact" : "DIVERGED");
  return exact ? 0 : 1;
}
