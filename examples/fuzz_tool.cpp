// Driver for the checkpoint-accelerated differential fuzzing farm
// (src/fuzz, DESIGN.md section 13).
//
// Usage:
//   fuzz_tool run --corpus=DIR [--findings=DIR] [--seed=N]
//                 [--max-execs=N] [--max-candidates=N] [--max-seconds=N]
//                 [--max-findings=N] [--no-forks] [--no-minimize]
//                 [--inject-skew] [--metrics-out=FILE]
//   fuzz_tool replay <seed-file> [--inject-skew]
//   fuzz_tool minimize <seed-file> --out=FILE [--inject-skew]
//                      [--budget=N]
//   fuzz_tool corpus-stats --corpus=DIR
//   fuzz_tool gen [--seed=N] [--shared] [--cores=N] [--out=FILE]
//
// `run` executes one campaign: bootstrap or load the corpus, mutate,
// run every candidate through the three-way oracle (ISS vs translator
// vs RTL across the detail x dispatch x seq/par grid), admit mutants
// that light new edge-coverage bits, and write minimized findings as
// self-contained seed files. The farm WRITES into --corpus: point it at
// a scratch copy, never at the checked-in tests/fuzz_corpus tree.
//
// `--inject-skew` arms the translator's debug_skew_static_cycles drill
// (an off-by-one static block cycle count) — the planted bug the CI
// fuzz-smoke job proves the farm can find, minimize, and replay.
//
// `replay` exits 0 when the oracle agrees, 1 on a mismatch — which is
// how a checked-in finding seed stays red under --inject-skew and green
// without it (tests/fuzz_regression_test.cpp automates this).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "fuzz/corpus.h"
#include "fuzz/farm.h"
#include "fuzz/oracle.h"
#include "fuzz/program_gen.h"
#include "obs/metrics.h"

namespace {

using namespace cabt;

void printStats(const fuzz::FarmStats& s) {
  std::printf(
      "farm candidates=%llu invalid=%llu oracle_execs=%llu "
      "corpus=%llu adds=%llu coverage_bits=%llu findings=%llu "
      "fork_hits=%llu fork_misses=%llu elapsed_ms=%llu execs/s=%.1f\n",
      static_cast<unsigned long long>(s.candidates),
      static_cast<unsigned long long>(s.invalid),
      static_cast<unsigned long long>(s.oracle_execs),
      static_cast<unsigned long long>(s.corpus_entries),
      static_cast<unsigned long long>(s.corpus_adds),
      static_cast<unsigned long long>(s.coverage_bits),
      static_cast<unsigned long long>(s.findings),
      static_cast<unsigned long long>(s.fork_hits),
      static_cast<unsigned long long>(s.fork_misses),
      static_cast<unsigned long long>(s.elapsed_millis), s.execs_per_sec);
  for (size_t i = 0; i < s.finding_mismatches.size(); ++i) {
    std::printf("finding %zu: %s\n", i, s.finding_mismatches[i].c_str());
    if (i < s.finding_paths.size()) {
      std::printf("  saved: %s\n", s.finding_paths[i].c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string command;
    std::string seed_path;
    std::string corpus_dir;
    std::string findings_dir;
    std::string out_path;
    std::string metrics_out;
    uint32_t seed = 1;
    uint64_t max_execs = 0;
    uint64_t max_candidates = 0;
    uint64_t max_seconds = 0;
    uint64_t max_findings = 8;
    unsigned budget = 120;
    size_t cores = 1;
    bool no_forks = false;
    bool no_minimize = false;
    bool inject_skew = false;
    bool shared = false;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--corpus=", 0) == 0) {
        corpus_dir = arg.substr(9);
      } else if (arg.rfind("--findings=", 0) == 0) {
        findings_dir = arg.substr(11);
      } else if (arg.rfind("--out=", 0) == 0) {
        out_path = arg.substr(6);
      } else if (arg.rfind("--metrics-out=", 0) == 0) {
        metrics_out = arg.substr(14);
      } else if (arg.rfind("--seed=", 0) == 0) {
        seed = static_cast<uint32_t>(std::strtoul(arg.c_str() + 7, nullptr, 0));
      } else if (arg.rfind("--max-execs=", 0) == 0) {
        max_execs = std::strtoull(arg.c_str() + 12, nullptr, 0);
      } else if (arg.rfind("--max-candidates=", 0) == 0) {
        max_candidates = std::strtoull(arg.c_str() + 17, nullptr, 0);
      } else if (arg.rfind("--max-seconds=", 0) == 0) {
        max_seconds = std::strtoull(arg.c_str() + 14, nullptr, 0);
      } else if (arg.rfind("--max-findings=", 0) == 0) {
        max_findings = std::strtoull(arg.c_str() + 15, nullptr, 0);
      } else if (arg.rfind("--budget=", 0) == 0) {
        budget = static_cast<unsigned>(
            std::strtoul(arg.c_str() + 9, nullptr, 0));
      } else if (arg.rfind("--cores=", 0) == 0) {
        cores = std::strtoull(arg.c_str() + 8, nullptr, 0);
      } else if (arg == "--no-forks") {
        no_forks = true;
      } else if (arg == "--no-minimize") {
        no_minimize = true;
      } else if (arg == "--inject-skew") {
        inject_skew = true;
      } else if (arg == "--shared") {
        shared = true;
      } else if (!arg.empty() && arg[0] != '-') {
        if (command.empty()) {
          command = arg;
        } else if (seed_path.empty()) {
          seed_path = arg;
        } else {
          throw Error("unexpected argument '" + arg + "'");
        }
      } else {
        throw Error("unknown option '" + arg + "'");
      }
    }
    if (command.empty()) {
      std::fprintf(stderr,
                   "usage: %s run|replay|minimize|corpus-stats|gen "
                   "[<seed-file>] [--corpus=DIR] [--findings=DIR] "
                   "[--seed=N] [--max-execs=N] [--max-candidates=N] "
                   "[--max-seconds=N] [--max-findings=N] [--budget=N] "
                   "[--no-forks] [--no-minimize] [--inject-skew] "
                   "[--shared] [--cores=N] [--out=F] [--metrics-out=F]\n",
                   argv[0]);
      return 2;
    }

    fuzz::OracleOptions oracle;
    oracle.xlat_skew = inject_skew;

    if (command == "run") {
      CABT_CHECK(!corpus_dir.empty(), "run needs --corpus=DIR");
      fuzz::FarmConfig cfg;
      cfg.corpus_dir = corpus_dir;
      cfg.findings_dir = findings_dir;
      cfg.seed = seed;
      cfg.max_execs = max_execs;
      cfg.max_candidates = max_candidates;
      cfg.max_millis = max_seconds * 1000;
      cfg.max_findings = max_findings;
      cfg.use_forks = !no_forks;
      cfg.minimize = !no_minimize;
      cfg.minimize_budget = budget;
      cfg.oracle = oracle;
      fuzz::Farm farm(cfg);
      const fuzz::FarmStats stats = farm.run();
      printStats(stats);
      if (!metrics_out.empty()) {
        obs::MetricsRegistry reg;
        farm.publishMetrics(reg);
        std::ofstream out(metrics_out);
        CABT_CHECK(out.good(), "cannot open '" << metrics_out << "'");
        out << reg.toJson();
        std::printf("metrics %s entries=%zu\n", metrics_out.c_str(),
                    reg.size());
      }
      return stats.findings != 0 ? 1 : 0;
    }

    if (command == "replay") {
      CABT_CHECK(!seed_path.empty(), "replay needs a <seed-file>");
      const fuzz::SeedCase c = fuzz::loadSeedFile(seed_path);
      const fuzz::OracleResult r =
          fuzz::runOracle(c, oracle, nullptr, nullptr);
      std::printf("replay %s: valid=%d execs=%llu ref_cycles=%llu %s\n",
                  seed_path.c_str(), r.valid ? 1 : 0,
                  static_cast<unsigned long long>(r.executions),
                  static_cast<unsigned long long>(r.ref_cycles),
                  !r.valid  ? "INVALID"
                  : r.ok    ? "OK"
                            : r.mismatch.c_str());
      return r.valid && r.ok ? 0 : 1;
    }

    if (command == "minimize") {
      CABT_CHECK(!seed_path.empty(), "minimize needs a <seed-file>");
      CABT_CHECK(!out_path.empty(), "minimize needs --out=FILE");
      fuzz::SeedCase c = fuzz::loadSeedFile(seed_path);
      const fuzz::OracleResult before =
          fuzz::runOracle(c, oracle, nullptr, nullptr);
      CABT_CHECK(before.valid && !before.ok,
                 "seed does not fail the oracle; nothing to minimize");
      uint64_t trials = 0;
      fuzz::SeedCase min = fuzz::minimizeCase(c, oracle, budget, &trials);
      min.note = "finding: " + before.mismatch;
      fuzz::saveSeedFile(min, out_path);
      std::printf("minimized %zu -> %zu lines in %llu trials -> %s\n",
                  c.totalLines(), min.totalLines(),
                  static_cast<unsigned long long>(trials),
                  out_path.c_str());
      return 0;
    }

    if (command == "corpus-stats") {
      CABT_CHECK(!corpus_dir.empty(), "corpus-stats needs --corpus=DIR");
      fuzz::Corpus corpus(corpus_dir);
      size_t lines = 0;
      size_t with_faults = 0;
      size_t with_forks = 0;
      for (const std::string& p : corpus.paths()) {
        const fuzz::SeedCase c = fuzz::loadSeedFile(p);
        lines += c.totalLines();
        with_faults += c.faults.empty() ? 0 : 1;
        with_forks += c.fork_cycle != 0 ? 1 : 0;
        std::printf("%s: programs=%zu lines=%zu quantum=%llu fork=%llu "
                    "faults=%zu%s%s\n",
                    p.c_str(), c.programs.size(), c.totalLines(),
                    static_cast<unsigned long long>(c.quantum),
                    static_cast<unsigned long long>(c.fork_cycle),
                    c.faults.size(), c.note.empty() ? "" : " note=",
                    c.note.c_str());
      }
      std::printf("corpus %s: entries=%zu lines=%zu with_faults=%zu "
                  "with_forks=%zu\n",
                  corpus.dir().c_str(), corpus.size(), lines, with_faults,
                  with_forks);
      return 0;
    }

    if (command == "gen") {
      fuzz::SeedCase c;
      for (size_t i = 0; i < (cores == 0 ? 1 : cores); ++i) {
        fuzz::ProgramGenerator gen(fuzz::GeneratorConfig{
            seed + static_cast<uint32_t>(i * 17), shared});
        c.programs.push_back(gen.generate());
      }
      c.note = "gen seed=" + std::to_string(seed);
      if (out_path.empty()) {
        std::fputs(fuzz::serializeSeed(c).c_str(), stdout);
      } else {
        fuzz::saveSeedFile(c, out_path);
        std::printf("wrote %s\n", out_path.c_str());
      }
      return 0;
    }

    throw Error("unknown command '" + command + "'");
  } catch (const cabt::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: unhandled exception: %s\n", e.what());
    return 2;
  } catch (...) {
    std::fprintf(stderr, "error: unhandled non-standard exception\n");
    return 2;
  }
}
