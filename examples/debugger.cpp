// Debugging translated code (paper section 3.5): a scripted debug session
// over the dual translation - breakpoints at block starts, automatic
// single-step to a mid-block breakpoint, stepping across a call, register
// and memory inspection with name/address translation.
#include <cstdio>

#include "debug/debugger.h"
#include "trc/assembler.h"

int main() {
  using namespace cabt;

  const char* source = R"(
_start: movi d0, 4            ; 0x80000000
        movi d1, 0            ; 0x80000004
loop:   jl accum              ; 0x80000008
        addi16 d0, -1         ; 0x8000000c
        jnz16 d0, loop        ; 0x8000000e
        movha a1, hi(out)     ; 0x80000012
        lea a1, a1, lo(out)
        stw d1, [a1]0
        halt
accum:  add d1, d1, d0        ; 0x80000022
        ret16
        .data
out:    .word 0
)";

  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const elf::Object object = trc::assemble(source);
  debug::Debugger dbg(desc, object);

  std::printf("dual translation: block image .text at 0x%08x, instruction "
              "image at 0x%08x\n",
              dbg.dual().image.findSection(".text")->addr,
              dbg.dual().image.findSection(".text.instr")->addr);

  // Breakpoint in the middle of a block: the debugger plants it at the
  // block start and single-steps to the requested address.
  dbg.addBreakpoint(0x8000000c);  // the addi16 after the call
  debug::Stop stop = dbg.run();
  std::printf("breakpoint hit at src 0x%08x  d0=%u d1=%u (after the first "
              "call)\n",
              stop.src_addr, dbg.regByName("d0"), dbg.regByName("d1"));

  // Single-step: addi16, jnz16 (taken), jl, into the callee.
  for (int i = 0; i < 4; ++i) {
    stop = dbg.step();
    std::printf("step -> src 0x%08x  d0=%u d1=%u a11=0x%08x\n",
                stop.src_addr, dbg.d(0), dbg.d(1), dbg.a(11));
  }

  // Continue to the same breakpoint again, then run to completion.
  stop = dbg.run();
  std::printf("breakpoint hit at src 0x%08x  d1=%u\n", stop.src_addr,
              dbg.d(1));
  dbg.removeBreakpoint(0x8000000c);
  stop = dbg.run();
  std::printf("program %s; final d1=%u, out=%u (expected 4+3+2+1=10)\n",
              stop.kind == debug::StopKind::kHalted ? "halted" : "stopped",
              dbg.d(1),
              dbg.readMemory(object.findSymbol("out")->value, 4));
  return dbg.d(1) == 10 ? 0 : 1;
}
