// The accuracy/speed trade-off (paper section 3.2): translate one
// workload at all four detail levels and show what each level costs and
// what it buys - the table the paper's "several detail levels of code
// execution" design revolves around.
//
// Usage: detail_levels [workload]   (default: sieve)
#include <cstdio>
#include <string>

#include "iss/iss.h"
#include "platform/platform.h"
#include "workloads/workloads.h"
#include "xlat/translator.h"

int main(int argc, char** argv) {
  using namespace cabt;
  const std::string name = argc > 1 ? argv[1] : "sieve";

  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const workloads::Workload& w = workloads::get(name);
  const elf::Object object = workloads::assemble(w);

  iss::Iss reference(desc, object);
  reference.run();
  const uint64_t measured = reference.stats().cycles;
  const uint64_t instrs = reference.stats().instructions;
  std::printf("workload %s: %llu instructions, %llu cycles on the "
              "reference board (%.2f MIPS at 48 MHz)\n\n",
              name.c_str(), static_cast<unsigned long long>(instrs),
              static_cast<unsigned long long>(measured),
              static_cast<double>(instrs) /
                  (static_cast<double>(measured) / 48e6) / 1e6);

  std::printf("%-16s %12s %10s %12s %12s %10s %9s\n", "detail level",
              "vliw cycles", "cpi", "mips@200MHz", "generated", "deviation",
              "code B");
  for (const xlat::DetailLevel level :
       {xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
        xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache}) {
    xlat::TranslateOptions options;
    options.level = level;
    const xlat::TranslationResult t = xlat::translate(desc, object, options);
    platform::EmulationPlatform plat(desc, t.image);
    const platform::RunResult run = plat.run();

    const double cpi = static_cast<double>(run.vliw_cycles) /
                       static_cast<double>(instrs);
    const double mips = static_cast<double>(instrs) /
                        (static_cast<double>(run.vliw_cycles) / 200e6) /
                        1e6;
    char deviation[32];
    if (level == xlat::DetailLevel::kFunctional) {
      std::snprintf(deviation, sizeof(deviation), "n/a");
    } else {
      std::snprintf(deviation, sizeof(deviation), "%.2f%%",
                    100.0 *
                        (static_cast<double>(measured) -
                         static_cast<double>(run.generated_cycles)) /
                        static_cast<double>(measured));
    }
    std::printf("%-16s %12llu %10.2f %12.1f %12llu %10s %9llu\n",
                xlat::detailLevelName(level),
                static_cast<unsigned long long>(run.vliw_cycles), cpi, mips,
                static_cast<unsigned long long>(run.generated_cycles),
                deviation,
                static_cast<unsigned long long>(t.stats.code_bytes));
  }
  std::printf("\n(deviation = how far the generated SoC cycle stream falls "
              "short of the board's measured cycles; the icache level is "
              "exact by construction)\n");
  return 0;
}
