// Multi-core SoC walkthrough: two TRC32 cores on the event-kernel-hosted
// reference board, coupled through the shared mailbox peripheral, with
// core 0 paced by the programmable timer's interrupt.
//
//   * core 0 (producer): every timer IRQ (line 0) produces one value
//     n*n + 3 into the mailbox from its interrupt handler;
//   * core 1 (consumer): polls the mailbox and sums 16 values.
//
// Both cores run temporally decoupled: each executes up to one quantum
// of SoC cycles before yielding back to the kernel, which always resumes
// the core with the smallest local time. Run it twice with different
// quanta to see the speed/accuracy knob: the checksums never change, the
// modelled completion times drift within one quantum.
#include <cstdio>

#include "platform/platform.h"
#include "workloads/workloads.h"

int main() {
  using namespace cabt;

  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const workloads::Workload& wp = workloads::get("mc_producer");
  const workloads::Workload& wc = workloads::get("mc_consumer");
  const elf::Object producer = workloads::assemble(wp);
  const elf::Object consumer = workloads::assemble(wc);

  for (const sim::Cycle quantum : {16u, 1024u}) {
    platform::BoardConfig cfg;
    // The interrupt handler is only reachable through the controller's
    // vector register, so its entry must be declared a block leader.
    cfg.iss.extra_leaders = {platform::symbolAddr(producer, wp.irq_handler)};
    cfg.quantum = quantum;
    platform::ReferenceBoard board(desc, {&producer, &consumer}, cfg);
    const iss::StopReason reason = board.run();

    std::printf("quantum %4llu: %s\n",
                static_cast<unsigned long long>(quantum),
                reason == iss::StopReason::kHalted ? "both cores halted"
                                                   : "did not halt");
    std::printf("  core 0 (producer): %8llu cycles, %5llu instructions, "
                "%llu interrupts taken\n",
                static_cast<unsigned long long>(board.core(0).stats().cycles),
                static_cast<unsigned long long>(
                    board.core(0).stats().instructions),
                static_cast<unsigned long long>(
                    board.core(0).stats().irqs_taken));
    std::printf("  core 1 (consumer): %8llu cycles, %5llu instructions\n",
                static_cast<unsigned long long>(board.core(1).stats().cycles),
                static_cast<unsigned long long>(
                    board.core(1).stats().instructions));
    std::printf("  mailbox: %llu pushes, %llu left; timer expiries: %llu; "
                "kernel events: %llu\n",
                static_cast<unsigned long long>(board.mailbox().pushes()),
                static_cast<unsigned long long>(board.mailbox().depth()),
                static_cast<unsigned long long>(board.ptimer().expiries()),
                static_cast<unsigned long long>(
                    board.kernel().eventsDispatched()));
    std::printf("  checksums: producer %u, consumer %u (expected 1544)\n\n",
                workloads::readChecksum(producer, board.core(0).memory()),
                workloads::readChecksum(consumer, board.core(1).memory()));
  }
  std::printf("(the checksums are quantum-independent; the cycle counts "
              "drift within one quantum — the loosely-timed accuracy "
              "trade-off)\n");

  // The same board under parallel quantum rounds: core-private quantum
  // prefixes run on worker threads, all shared traffic drains in the
  // sequential dispatch order — every number printed below is
  // bit-identical to the quantum-1024 run above by construction
  // (DESIGN.md section 7; tests/parallel_test.cpp proves it per grid
  // point).
  {
    platform::BoardConfig cfg;
    cfg.iss.extra_leaders = {platform::symbolAddr(producer, wp.irq_handler)};
    cfg.quantum = 1024;
    cfg.parallel.enabled = true;
    platform::ReferenceBoard board(desc, {&producer, &consumer}, cfg);
    board.run();
    std::printf("\nparallel rounds, quantum 1024: core0 %llu cycles, core1 "
                "%llu cycles, %llu prefixes over %llu rounds — checksums "
                "%u/%u, bit-identical to the sequential kernel\n",
                static_cast<unsigned long long>(board.core(0).stats().cycles),
                static_cast<unsigned long long>(board.core(1).stats().cycles),
                static_cast<unsigned long long>(
                    board.kernel().parallelPrefixes()),
                static_cast<unsigned long long>(
                    board.kernel().parallelRounds()),
                workloads::readChecksum(producer, board.core(0).memory()),
                workloads::readChecksum(consumer, board.core(1).memory()));
  }
  return 0;
}
