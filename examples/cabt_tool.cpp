// Command-line driver for the whole toolchain: assemble a TRC32 source
// file, run it on the reference board, translate it at a chosen detail
// level, execute it on the emulation platform and report accuracy.
//
// Usage:
//   cabt_tool program.s [--level=functional|static|branch|cache]
//                       [--arch=description.xml] [--dump] [--rate=N]
//
// --dump prints the translated VLIW code as a packet listing.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "iss/iss.h"
#include "platform/platform.h"
#include "trc/assembler.h"
#include "xlat/translator.h"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw cabt::Error("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

cabt::xlat::DetailLevel parseLevel(const std::string& name) {
  using cabt::xlat::DetailLevel;
  if (name == "functional") {
    return DetailLevel::kFunctional;
  }
  if (name == "static") {
    return DetailLevel::kStatic;
  }
  if (name == "branch") {
    return DetailLevel::kBranchPredict;
  }
  if (name == "cache") {
    return DetailLevel::kICache;
  }
  throw cabt::Error("unknown detail level '" + name +
                    "' (functional|static|branch|cache)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cabt;
  try {
    std::string source_path;
    xlat::TranslateOptions options;
    options.level = xlat::DetailLevel::kICache;
    platform::PlatformConfig config;
    bool dump = false;
    std::string arch_xml;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--level=", 0) == 0) {
        options.level = parseLevel(arg.substr(8));
      } else if (arg.rfind("--arch=", 0) == 0) {
        arch_xml = readFile(arg.substr(7));
      } else if (arg.rfind("--rate=", 0) == 0) {
        config.vliw_cycles_per_soc_cycle =
            static_cast<unsigned>(parseInt(arg.substr(7)));
      } else if (arg == "--dump") {
        dump = true;
      } else if (!arg.empty() && arg[0] != '-') {
        source_path = arg;
      } else {
        throw Error("unknown option '" + arg + "'");
      }
    }
    if (source_path.empty()) {
      std::fprintf(stderr,
                   "usage: %s program.s [--level=...] [--arch=desc.xml] "
                   "[--rate=N] [--dump]\n",
                   argv[0]);
      return 2;
    }

    const arch::ArchDescription desc =
        arch_xml.empty() ? arch::ArchDescription::defaultTc10gp()
                         : arch::parseArchXml(arch_xml);
    const elf::Object object = trc::assemble(readFile(source_path));

    iss::Iss reference(desc, object);
    const iss::StopReason stop = reference.run();
    if (stop != iss::StopReason::kHalted) {
      throw Error("reference run did not halt");
    }
    std::printf("reference   : %llu instructions, %llu cycles "
                "(%llu blocks, %llu icache misses)\n",
                static_cast<unsigned long long>(
                    reference.stats().instructions),
                static_cast<unsigned long long>(reference.stats().cycles),
                static_cast<unsigned long long>(reference.stats().blocks),
                static_cast<unsigned long long>(
                    reference.stats().icache_misses));

    const xlat::TranslationResult t = xlat::translate(desc, object, options);
    std::printf("translation : level=%s, %llu blocks, %llu cabs, %llu "
                "machine ops in %llu packets (%llu bytes)\n",
                xlat::detailLevelName(options.level),
                static_cast<unsigned long long>(t.stats.blocks),
                static_cast<unsigned long long>(t.stats.cabs),
                static_cast<unsigned long long>(t.stats.machine_ops),
                static_cast<unsigned long long>(t.stats.packets),
                static_cast<unsigned long long>(t.stats.code_bytes));

    platform::EmulationPlatform plat(desc, t.image, config);
    if (dump) {
      std::printf("\n--- translated VLIW code ---\n");
      for (const vliw::Packet& p : plat.sim().packets()) {
        std::printf("%08x:", p.addr);
        for (const vliw::MachineOp& op : p.ops) {
          std::printf("  %s", op.toString().c_str());
        }
        std::printf("\n");
      }
      std::printf("----------------------------\n\n");
    }
    const platform::RunResult run = plat.run();
    if (run.state != vliw::RunState::kHalted) {
      throw Error("translated run did not halt");
    }
    std::printf("emulation   : %llu VLIW cycles (%llu sync stalls), "
                "%llu generated SoC cycles, %llu correction cycles\n",
                static_cast<unsigned long long>(run.vliw_cycles),
                static_cast<unsigned long long>(run.sync_stall_cycles),
                static_cast<unsigned long long>(run.generated_cycles),
                static_cast<unsigned long long>(run.correction_cycles));

    const std::string diff =
        platform::compareFinalState(desc, reference, plat, object);
    std::printf("functional  : %s\n",
                diff.empty() ? "state matches the reference"
                             : ("MISMATCH: " + diff).c_str());
    if (options.level != xlat::DetailLevel::kFunctional) {
      const double dev =
          100.0 *
          (static_cast<double>(reference.stats().cycles) -
           static_cast<double>(run.generated_cycles)) /
          static_cast<double>(reference.stats().cycles);
      std::printf("accuracy    : generated %llu vs measured %llu "
                  "(deviation %.2f%%)\n",
                  static_cast<unsigned long long>(run.generated_cycles),
                  static_cast<unsigned long long>(reference.stats().cycles),
                  dev);
    }
    return diff.empty() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
