// Guest sampling profiler (DESIGN.md section 11).
//
// A PcSampler records the guest PC at basic-block boundaries whenever
// local time crosses a configurable guest-cycle period. Sampling is a
// pure function of (local time, pc): the due-time ladder advances in
// fixed period steps and re-observations of the same boundary (a
// quantum yield resuming, a private-slice bail re-dispatching) are
// idempotent, so the sample stream is bit-identical between the
// sequential and parallel kernels and across all dispatch modes.
// Samplers are per-core and therefore race-free under the parallel
// kernel — a core's slice (prefix or drain) runs on exactly one thread
// at a time, with the round barrier ordering the hand-off.
//
// Attribution maps each sampled PC to its enclosing function through
// elf::SymbolIndex; reports come as a top-N table and as
// flamegraph-folded lines ("core0;funcname count").
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "elf/elf.h"

namespace cabt::obs {

class PcSampler {
 public:
  /// Samples once every `period` guest cycles (>= 1).
  explicit PcSampler(uint64_t period)
      : period_(period < 1 ? 1 : period), next_due_(period_) {}

  /// Block-boundary hook: records pc once per elapsed period. Inline
  /// fast path — one compare when no sample is due.
  void sample(uint64_t now, uint32_t pc) {
    if (now < next_due_) {
      return;
    }
    record(now, pc);
  }

  [[nodiscard]] uint64_t period() const { return period_; }
  [[nodiscard]] uint64_t totalSamples() const { return total_; }
  [[nodiscard]] const std::unordered_map<uint32_t, uint64_t>& counts() const {
    return counts_;
  }

 private:
  void record(uint64_t now, uint32_t pc);

  uint64_t period_;
  uint64_t next_due_;
  uint64_t total_ = 0;
  std::unordered_map<uint32_t, uint64_t> counts_;
};

/// One attributed row of a profile report.
struct ProfileEntry {
  std::string name;      ///< function name, or "0x...." when unsymbolized
  uint64_t samples = 0;
  uint32_t addr = 0;     ///< lowest sampled pc attributed to this row
};

/// Aggregates a sampler's PC counts by enclosing function, sorted by
/// sample count descending (ties by name, so output is deterministic).
[[nodiscard]] std::vector<ProfileEntry> attributeSamples(
    const PcSampler& sampler, const elf::SymbolIndex& symbols);

/// Flamegraph-foldable lines: "<label>;<name> <count>\n" per entry
/// (one frame deep — guest stacks are not walked).
[[nodiscard]] std::string foldedLines(
    const std::string& label, const std::vector<ProfileEntry>& entries);

/// Human-readable top-N table ("rank samples share% function").
[[nodiscard]] std::string topTable(const std::vector<ProfileEntry>& entries,
                                   size_t top_n);

}  // namespace cabt::obs
