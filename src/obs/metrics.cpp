#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace cabt::obs {

namespace {

int bucketOf(uint64_t v) {
  int b = 0;
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return b;  // 0 for v == 0, else floor(log2(v)) + 1
}

/// Doubles print with enough digits to round-trip typical gauge values
/// without drowning the text dump in noise.
std::string fmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void Histogram::observe(uint64_t v) {
  if (count == 0 || v < min) {
    min = v;
  }
  if (count == 0 || v > max) {
    max = v;
  }
  ++count;
  sum += v;
  ++buckets[bucketOf(v)];
}

uint64_t Histogram::bucketUpper(int i) {
  if (i <= 0) {
    return 0;
  }
  if (i >= 64) {
    return ~static_cast<uint64_t>(0);
  }
  return (static_cast<uint64_t>(1) << i) - 1;
}

void MetricsRegistry::setCounter(std::string_view path, uint64_t value) {
  Metric& m = metrics_[std::string(path)];
  m.kind = Kind::kCounter;
  m.counter = value;
}

void MetricsRegistry::setGauge(std::string_view path, double value) {
  Metric& m = metrics_[std::string(path)];
  m.kind = Kind::kGauge;
  m.gauge = value;
}

void MetricsRegistry::observe(std::string_view path, uint64_t sample) {
  Metric& m = metrics_[std::string(path)];
  m.kind = Kind::kHistogram;
  m.hist.observe(sample);
}

uint64_t MetricsRegistry::counterOr(std::string_view path,
                                    uint64_t fallback) const {
  const auto it = metrics_.find(path);
  return it != metrics_.end() && it->second.kind == Kind::kCounter
             ? it->second.counter
             : fallback;
}

double MetricsRegistry::gaugeOr(std::string_view path,
                                double fallback) const {
  const auto it = metrics_.find(path);
  return it != metrics_.end() && it->second.kind == Kind::kGauge
             ? it->second.gauge
             : fallback;
}

const Histogram* MetricsRegistry::histogram(std::string_view path) const {
  const auto it = metrics_.find(path);
  return it != metrics_.end() && it->second.kind == Kind::kHistogram
             ? &it->second.hist
             : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other,
                            std::string_view prefix) {
  for (const auto& [path, src] : other.metrics_) {
    Metric& dst = metrics_[std::string(prefix) + path];
    switch (src.kind) {
      case Kind::kCounter:
        dst.kind = Kind::kCounter;
        dst.counter = src.counter;
        break;
      case Kind::kGauge:
        dst.kind = Kind::kGauge;
        dst.gauge = src.gauge;
        break;
      case Kind::kHistogram: {
        const bool fresh =
            dst.kind != Kind::kHistogram || dst.hist.count == 0;
        dst.kind = Kind::kHistogram;
        Histogram& h = dst.hist;
        if (src.hist.count != 0) {
          h.min = fresh ? src.hist.min : std::min(h.min, src.hist.min);
          h.max = fresh ? src.hist.max : std::max(h.max, src.hist.max);
          h.count += src.hist.count;
          h.sum += src.hist.sum;
          for (int b = 0; b < Histogram::kBuckets; ++b) {
            h.buckets[b] += src.hist.buckets[b];
          }
        }
        break;
      }
    }
  }
}

std::string MetricsRegistry::toJson() const {
  std::string out = "{\n  \"metrics\": {\n";
  size_t i = 0;
  for (const auto& [path, m] : metrics_) {
    out += "    \"" + path + "\": ";
    switch (m.kind) {
      case Kind::kCounter:
        out += "{\"type\": \"counter\", \"value\": " +
               std::to_string(m.counter) + "}";
        break;
      case Kind::kGauge:
        out += "{\"type\": \"gauge\", \"value\": " + fmtDouble(m.gauge) + "}";
        break;
      case Kind::kHistogram: {
        out += "{\"type\": \"histogram\", \"count\": " +
               std::to_string(m.hist.count) +
               ", \"sum\": " + std::to_string(m.hist.sum) +
               ", \"min\": " + std::to_string(m.hist.min) +
               ", \"max\": " + std::to_string(m.hist.max) +
               ", \"buckets\": [";
        bool first = true;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          if (m.hist.buckets[b] == 0) {
            continue;  // sparse: empty buckets stay implicit
          }
          if (!first) {
            out += ", ";
          }
          first = false;
          out += "[" + std::to_string(Histogram::bucketUpper(b)) + ", " +
                 std::to_string(m.hist.buckets[b]) + "]";
        }
        out += "]}";
        break;
      }
    }
    out += ++i < metrics_.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

std::string MetricsRegistry::toText() const {
  std::string out;
  for (const auto& [path, m] : metrics_) {
    out += path;
    switch (m.kind) {
      case Kind::kCounter:
        out += " " + std::to_string(m.counter) + "\n";
        break;
      case Kind::kGauge:
        out += " " + fmtDouble(m.gauge) + "\n";
        break;
      case Kind::kHistogram:
        out += " count=" + std::to_string(m.hist.count) +
               " sum=" + std::to_string(m.hist.sum) +
               " min=" + std::to_string(m.hist.min) +
               " max=" + std::to_string(m.hist.max) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace cabt::obs
