// Timeline tracer: Chrome trace-event / Perfetto-compatible JSON
// (DESIGN.md section 11).
//
// The sink collects duration ("X") and instant ("i") events on a set of
// fixed lanes — one per core, one for the event kernel's parallel
// rounds, one for snapshot activity, and one per prefix worker thread —
// with guest SoC cycles as the timestamp unit. Writing the sink out
// produces a `{"traceEvents": [...]}` document that ui.perfetto.dev
// (or chrome://tracing) opens directly; the viewer interprets `ts` as
// microseconds, so one "us" on screen is one guest cycle.
//
// Threading contract (mirrors soc::SocBus): the sink itself is NOT
// internally synchronized. Direct complete()/instant() calls are only
// legal from the sequential dispatch path — the kernel's drain, or any
// single-threaded run. Code that executes on a worker thread (the
// parallel kernel's private-footprint prefixes) records into a
// per-process Buffer instead and merges it at its sequential dispatch
// slot (the round drain), riding the same happens-before edge that
// already publishes the prefix's architectural state. Event names and
// arg names must be string literals (the sink stores the pointers).
//
// Determinism rule: the sink observes, it never feeds back — no
// simulation component may read it. Disabled cost is one null-pointer
// test per hook.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace cabt::obs {

// Lane (Perfetto "tid") numbering. Cores take lanes [0, 64); the
// remaining activity gets fixed lanes above them.
inline constexpr uint32_t kMaxCoreLanes = 64;
inline constexpr uint32_t kKernelLane = 64;   ///< parallel-round spans
inline constexpr uint32_t kSnapLane = 65;     ///< checkpoint/save/restore
inline constexpr uint32_t kWorkerLaneBase = 66;  ///< +worker id

[[nodiscard]] constexpr uint32_t coreLane(size_t core) {
  return static_cast<uint32_t>(core);
}
[[nodiscard]] constexpr uint32_t workerLane(unsigned worker) {
  return kWorkerLaneBase + worker;
}

class TraceSink {
 public:
  struct Event {
    const char* name = "";      ///< static string (never freed)
    char phase = 'X';           ///< 'X' complete, 'i' instant
    uint32_t tid = 0;
    uint64_t ts = 0;            ///< guest SoC cycles
    uint64_t dur = 0;           ///< 'X' only
    const char* arg_name = nullptr;  ///< optional single numeric arg
    uint64_t arg = 0;
  };

  /// Worker-thread scratch: a process-private event list a parallel
  /// prefix appends to, merged into the sink at the process's
  /// sequential dispatch slot. No locks — exclusivity comes from the
  /// round structure (one prefix per process, merge after the barrier).
  class Buffer {
   public:
    void complete(uint32_t tid, const char* name, uint64_t ts, uint64_t dur,
                  const char* arg_name = nullptr, uint64_t arg = 0) {
      events_.push_back({name, 'X', tid, ts, dur, arg_name, arg});
    }
    void instant(uint32_t tid, const char* name, uint64_t ts,
                 const char* arg_name = nullptr, uint64_t arg = 0) {
      events_.push_back({name, 'i', tid, ts, 0, arg_name, arg});
    }
    [[nodiscard]] bool empty() const { return events_.empty(); }
    void clear() { events_.clear(); }

   private:
    friend class TraceSink;
    std::vector<Event> events_;
  };

  /// `limit` caps retained events (a long run must not grow without
  /// bound); the most recent events win, drops are counted.
  explicit TraceSink(size_t limit = 1u << 20) : limit_(limit) {}

  void complete(uint32_t tid, const char* name, uint64_t ts, uint64_t dur,
                const char* arg_name = nullptr, uint64_t arg = 0) {
    push({name, 'X', tid, ts, dur, arg_name, arg});
  }
  void instant(uint32_t tid, const char* name, uint64_t ts,
               const char* arg_name = nullptr, uint64_t arg = 0) {
    push({name, 'i', tid, ts, 0, arg_name, arg});
  }

  /// Names a lane (emitted as a "thread_name" metadata event).
  /// Idempotent per tid, so lazily named lanes (workers discovered
  /// mid-run) cost nothing on re-announcement.
  void setThreadName(uint32_t tid, const std::string& name) {
    thread_names_.emplace(tid, name);
  }

  /// Merges (and clears) a worker-side buffer. Sequential path only.
  void merge(Buffer& buffer) {
    for (const Event& e : buffer.events_) {
      push(e);
    }
    buffer.clear();
  }

  [[nodiscard]] size_t numEvents() const { return events_.size(); }
  [[nodiscard]] uint64_t droppedEvents() const { return dropped_; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Chrome trace-event JSON ({"traceEvents": [...]}).
  void writeJson(std::ostream& out) const;
  [[nodiscard]] std::string toJson() const;

 private:
  void push(const Event& e) {
    events_.push_back(e);
    // Drop-oldest in amortised O(1): erase down to the cap once 2x
    // over (the same trim idiom as the bus transaction log).
    if (limit_ != 0 && events_.size() >= 2 * limit_) {
      const size_t drop = events_.size() - limit_;
      events_.erase(events_.begin(),
                    events_.begin() + static_cast<std::ptrdiff_t>(drop));
      dropped_ += drop;
    }
  }

  size_t limit_;
  uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::map<uint32_t, std::string> thread_names_;
};

}  // namespace cabt::obs
