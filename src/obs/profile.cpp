#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/strutil.h"

namespace cabt::obs {

void PcSampler::record(uint64_t now, uint32_t pc) {
  // Advance the due ladder past `now` in whole periods: a boundary that
  // is observed twice at the same local time (yield + resume, bail +
  // re-dispatch) cannot double-count, and a slice that overshoots
  // several periods still charges exactly one sample per period to the
  // block that was open when they elapsed.
  uint64_t missed = 0;
  do {
    next_due_ += period_;
    ++missed;
  } while (next_due_ <= now);
  counts_[pc] += missed;
  total_ += missed;
}

std::vector<ProfileEntry> attributeSamples(const PcSampler& sampler,
                                           const elf::SymbolIndex& symbols) {
  std::map<std::string, ProfileEntry> by_name;
  for (const auto& [pc, count] : sampler.counts()) {
    std::string name(symbols.nameFor(pc));
    if (name.empty()) {
      name = hex32(pc);
    }
    ProfileEntry& e = by_name[name];
    if (e.samples == 0 || pc < e.addr) {
      e.addr = pc;
    }
    e.name = name;
    e.samples += count;
  }
  std::vector<ProfileEntry> out;
  out.reserve(by_name.size());
  for (auto& [name, e] : by_name) {
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.samples != b.samples ? a.samples > b.samples
                                            : a.name < b.name;
            });
  return out;
}

std::string foldedLines(const std::string& label,
                        const std::vector<ProfileEntry>& entries) {
  std::string out;
  for (const ProfileEntry& e : entries) {
    out += label + ";" + e.name + " " + std::to_string(e.samples) + "\n";
  }
  return out;
}

std::string topTable(const std::vector<ProfileEntry>& entries,
                     size_t top_n) {
  uint64_t total = 0;
  for (const ProfileEntry& e : entries) {
    total += e.samples;
  }
  std::string out = "  rank   samples   share  function\n";
  const size_t n = std::min(top_n, entries.size());
  for (size_t i = 0; i < n; ++i) {
    const ProfileEntry& e = entries[i];
    const double share =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(e.samples) /
                         static_cast<double>(total);
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %4zu  %8llu  %5.1f%%  %s\n", i + 1,
                  static_cast<unsigned long long>(e.samples), share,
                  e.name.c_str());
    out += buf;
  }
  return out;
}

}  // namespace cabt::obs
