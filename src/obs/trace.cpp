#include "obs/trace.h"

#include <ostream>
#include <sstream>

namespace cabt::obs {

// Chrome trace-event format, JSON Object Format flavour: a
// "traceEvents" array of {"name", "ph", "pid", "tid", "ts", ...}
// records. All events share pid 1 (one simulated board per file);
// lane names arrive as "M"/"thread_name" metadata records up front so
// the viewer labels tracks before any event references them.
void TraceSink::writeJson(std::ostream& out) const {
  out << "{\n\"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&first, &out] {
    if (!first) {
      out << ",\n";
    }
    first = false;
  };
  for (const auto& [tid, name] : thread_names_) {
    sep();
    out << R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << tid
        << R"(, "args": {"name": ")" << name << "\"}}";
  }
  for (const Event& e : events_) {
    sep();
    out << "{\"name\": \"" << e.name << "\", \"ph\": \"" << e.phase
        << "\", \"pid\": 1, \"tid\": " << e.tid << ", \"ts\": " << e.ts;
    if (e.phase == 'X') {
      out << ", \"dur\": " << e.dur;
    } else if (e.phase == 'i') {
      out << ", \"s\": \"t\"";  // thread-scoped instant
    }
    if (e.arg_name != nullptr) {
      out << ", \"args\": {\"" << e.arg_name << "\": " << e.arg << "}";
    }
    out << "}";
  }
  out << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

std::string TraceSink::toJson() const {
  std::ostringstream out;
  writeJson(out);
  return out.str();
}

}  // namespace cabt::obs
