// Hierarchical metrics registry: the pull-model half of the
// observability layer (DESIGN.md section 11).
//
// Metrics carry path-style names ("board.core0.iss.icache_misses") and
// come in three kinds: monotonically increasing counters, point-in-time
// gauges, and log2-bucketed histograms. The registry is a *snapshot*
// container, not a hot-path instrument: simulation components keep
// their existing native counters (IssStats, the kernel's dispatch
// tallies, the bus clock) and publish them into a registry on demand
// via their publishMetrics() adapters — so an enabled registry costs
// the simulation nothing at all, and a snapshot can be taken at any
// cycle without perturbing architectural state. Observers never feed
// back into the simulation (the determinism rule of section 11).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace cabt::obs {

/// Log2-bucketed distribution: sample `v` lands in bucket floor(log2(v))
/// + 1 (bucket 0 holds the zeros), with count/sum/min/max kept exactly.
struct Histogram {
  static constexpr int kBuckets = 65;  // zeros + one per bit of uint64_t

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t buckets[kBuckets] = {};

  void observe(uint64_t v);
  /// Inclusive upper bound of bucket `i` (2^i - 1; bucket 0 is {0}).
  [[nodiscard]] static uint64_t bucketUpper(int i);
};

class MetricsRegistry {
 public:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  /// Sets counter `path` to the source's current cumulative value
  /// (pull model: the source owns the live count, the registry records
  /// the snapshot).
  void setCounter(std::string_view path, uint64_t value);
  /// Sets gauge `path` (a point-in-time level, e.g. queue depth).
  void setGauge(std::string_view path, double value);
  /// Adds one sample to histogram `path`.
  void observe(std::string_view path, uint64_t sample);

  [[nodiscard]] size_t size() const { return metrics_.size(); }
  void clear() { metrics_.clear(); }

  /// Lookup helpers (tests and gates). Missing or kind-mismatched paths
  /// return the fallback.
  [[nodiscard]] uint64_t counterOr(std::string_view path,
                                   uint64_t fallback = 0) const;
  [[nodiscard]] double gaugeOr(std::string_view path,
                               double fallback = 0.0) const;
  [[nodiscard]] const Histogram* histogram(std::string_view path) const;

  /// Folds every metric of `other` into this registry under
  /// `prefix + path`. Counters and gauges overwrite (pull-model snapshot
  /// semantics: latest publish wins); histograms combine
  /// count/sum/min/max and per-bucket tallies, so repeated merges
  /// accumulate one fleet-wide distribution. The fleet driver
  /// (src/fleet) uses this to fold per-board registries into one
  /// namespaced snapshot ("fleet.board3.core0.iss...").
  void merge(const MetricsRegistry& other, std::string_view prefix = "");

  /// JSON snapshot: {"metrics": {"<path>": {"type": ..., ...}, ...}}.
  /// Paths are emitted in sorted order, so the output is deterministic.
  [[nodiscard]] std::string toJson() const;
  /// Human-readable one-line-per-metric text dump, sorted by path.
  [[nodiscard]] std::string toText() const;

 private:
  struct Metric {
    Kind kind = Kind::kCounter;
    uint64_t counter = 0;
    double gauge = 0.0;
    Histogram hist;
  };

  // std::map keeps the dump sorted (the "hierarchy" is the dotted
  // paths; sorting groups every subtree contiguously for free).
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace cabt::obs
