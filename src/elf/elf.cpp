#include "elf/elf.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/bits.h"
#include "common/error.h"
#include "common/strutil.h"

namespace cabt::elf {
namespace {

// ELF constants (subset).
constexpr uint8_t kElfClass32 = 1;
constexpr uint8_t kElfData2Lsb = 1;
constexpr uint16_t kEtExec = 2;
constexpr uint32_t kShtNull = 0;
constexpr uint32_t kShtProgbits = 1;
constexpr uint32_t kShtSymtab = 2;
constexpr uint32_t kShtStrtab = 3;
constexpr uint32_t kShtNobits = 8;
constexpr uint32_t kShfWrite = 0x1;
constexpr uint32_t kShfAlloc = 0x2;
constexpr uint32_t kShfExecinstr = 0x4;
constexpr uint32_t kEhSize = 52;
constexpr uint32_t kShentSize = 40;
constexpr uint32_t kSymentSize = 16;

/// Append helpers for little-endian serialisation.
void put8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }
void put16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void put32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t get16(const std::vector<uint8_t>& b, size_t off) {
  CABT_CHECK(off + 2 <= b.size(), "ELF read out of bounds: 2 bytes at offset "
                                      << off << " in a " << b.size()
                                      << "-byte image");
  return static_cast<uint16_t>(b[off] | (b[off + 1] << 8));
}
uint32_t get32(const std::vector<uint8_t>& b, size_t off) {
  CABT_CHECK(off + 4 <= b.size(), "ELF read out of bounds: 4 bytes at offset "
                                      << off << " in a " << b.size()
                                      << "-byte image");
  return static_cast<uint32_t>(b[off]) | (static_cast<uint32_t>(b[off + 1]) << 8) |
         (static_cast<uint32_t>(b[off + 2]) << 16) |
         (static_cast<uint32_t>(b[off + 3]) << 24);
}

/// Incrementally built string table.
class StringTable {
 public:
  StringTable() { data_.push_back('\0'); }
  uint32_t add(const std::string& s) {
    const uint32_t off = static_cast<uint32_t>(data_.size());
    data_.insert(data_.end(), s.begin(), s.end());
    data_.push_back('\0');
    return off;
  }
  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return data_; }

 private:
  std::vector<uint8_t> data_;
};

std::string readString(const std::vector<uint8_t>& strtab, uint32_t off) {
  CABT_CHECK(off < strtab.size(), "string table offset out of range");
  const auto* begin = strtab.data() + off;
  const auto* end = strtab.data() + strtab.size();
  const auto* nul = std::find(begin, end, uint8_t{0});
  CABT_CHECK(nul != end, "unterminated string table entry");
  return std::string(begin, nul);
}

}  // namespace

const Section* Object::findSection(std::string_view name) const {
  for (const Section& s : sections) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

const Section* Object::sectionContaining(uint32_t addr) const {
  for (const Section& s : sections) {
    if (s.contains(addr)) {
      return &s;
    }
  }
  return nullptr;
}

const Symbol* Object::findSymbol(std::string_view name) const {
  for (const Symbol& s : symbols) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

SymbolIndex::SymbolIndex(const Object& object) {
  for (const Symbol& sym : object.symbols) {
    if (sym.name.empty() || sym.section < 0 ||
        static_cast<size_t>(sym.section) >= object.sections.size() ||
        !object.sections[static_cast<size_t>(sym.section)].executable) {
      continue;
    }
    entries_.push_back({sym.value, sym.name});
  }
  // (addr, name) order makes nameFor deterministic when two labels
  // alias one address (the lexicographically first wins).
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.addr != b.addr ? a.addr < b.addr : a.name < b.name;
            });
  entries_.erase(std::unique(entries_.begin(), entries_.end(),
                             [](const Entry& a, const Entry& b) {
                               return a.addr == b.addr;
                             }),
                 entries_.end());
}

std::string_view SymbolIndex::nameFor(uint32_t addr) const {
  // First entry strictly above addr, then step back to the covering one.
  auto it = std::upper_bound(entries_.begin(), entries_.end(), addr,
                             [](uint32_t a, const Entry& e) {
                               return a < e.addr;
                             });
  if (it == entries_.begin()) {
    return {};
  }
  return std::prev(it)->name;
}

std::string SymbolIndex::describe(uint32_t addr) const {
  auto it = std::upper_bound(entries_.begin(), entries_.end(), addr,
                             [](uint32_t a, const Entry& e) {
                               return a < e.addr;
                             });
  if (it == entries_.begin()) {
    return hex32(addr);
  }
  const Entry& e = *std::prev(it);
  if (e.addr == addr) {
    return e.name;
  }
  return e.name + "+0x" + [](uint32_t off) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", off);
    return std::string(buf);
  }(addr - e.addr);
}

std::vector<uint8_t> Object::read(uint32_t addr, uint32_t size) const {
  const Section* s = sectionContaining(addr);
  CABT_CHECK(s != nullptr,
             "no section contains address " << hex32(addr));
  CABT_CHECK(addr - s->addr + size <= s->sizeInMemory(),
             "read of " << size << " bytes at " << hex32(addr)
                        << " crosses the end of section " << s->name);
  std::vector<uint8_t> out(size, 0);
  if (s->kind == SectionKind::kProgbits) {
    std::memcpy(out.data(), s->data.data() + (addr - s->addr), size);
  }
  return out;
}

std::vector<uint8_t> write(const Object& object) {
  // Layout: ELF header | section data blobs | .shstrtab | .strtab |
  // .symtab | section header table.
  StringTable shstrtab;
  StringTable strtab;

  // Section header table entries: NULL + user sections + shstrtab +
  // strtab + symtab.
  const uint32_t num_user = static_cast<uint32_t>(object.sections.size());
  const uint32_t shnum = num_user + 4;

  struct RawSection {
    uint32_t name_off, type, flags, addr, offset, size, link, info, align,
        entsize;
  };
  std::vector<RawSection> headers;
  headers.push_back({0, kShtNull, 0, 0, 0, 0, 0, 0, 0, 0});

  std::vector<uint8_t> body;  // everything between the ELF header and the SHT
  const auto bodyOffset = [&body]() {
    return kEhSize + static_cast<uint32_t>(body.size());
  };

  for (const Section& s : object.sections) {
    uint32_t flags = kShfAlloc;
    if (s.writable) {
      flags |= kShfWrite;
    }
    if (s.executable) {
      flags |= kShfExecinstr;
    }
    while ((bodyOffset() % s.align) != 0) {
      body.push_back(0);
    }
    RawSection raw{};
    raw.name_off = shstrtab.add(s.name);
    raw.addr = s.addr;
    raw.align = s.align;
    raw.flags = flags;
    raw.offset = bodyOffset();
    if (s.kind == SectionKind::kProgbits) {
      raw.type = kShtProgbits;
      raw.size = static_cast<uint32_t>(s.data.size());
      body.insert(body.end(), s.data.begin(), s.data.end());
    } else {
      CABT_CHECK(s.data.empty(), "NOBITS section '" << s.name
                                                    << "' carries data");
      raw.type = kShtNobits;
      raw.size = s.mem_size;
    }
    headers.push_back(raw);
  }

  // Symbol table payload (first entry is the null symbol).
  std::vector<uint8_t> symtab_bytes;
  put32(symtab_bytes, 0);
  put32(symtab_bytes, 0);
  put32(symtab_bytes, 0);
  put32(symtab_bytes, 0);
  uint32_t num_local = 0;
  // ELF requires local symbols before globals; emit in two passes.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Symbol& sym : object.symbols) {
      const bool is_local = sym.binding == SymbolBinding::kLocal;
      if ((pass == 0) != is_local) {
        continue;
      }
      num_local += pass == 0 ? 1 : 0;
      put32(symtab_bytes, strtab.add(sym.name));
      put32(symtab_bytes, sym.value);
      put32(symtab_bytes, 0);  // st_size
      const uint8_t bind = is_local ? 0 : 1;
      put8(symtab_bytes, static_cast<uint8_t>(bind << 4));  // notype
      put8(symtab_bytes, 0);                                // st_other
      const uint16_t shndx =
          sym.section < 0 ? 0xfff1 /*SHN_ABS*/
                          : static_cast<uint16_t>(sym.section + 1);
      put16(symtab_bytes, shndx);
    }
  }

  const uint32_t shstrtab_name = shstrtab.add(".shstrtab");
  const uint32_t strtab_name = shstrtab.add(".strtab");
  const uint32_t symtab_name = shstrtab.add(".symtab");

  const uint32_t shstrtab_off = bodyOffset();
  body.insert(body.end(), shstrtab.bytes().begin(), shstrtab.bytes().end());
  headers.push_back({shstrtab_name, kShtStrtab, 0, 0, shstrtab_off,
                     static_cast<uint32_t>(shstrtab.bytes().size()), 0, 0, 1,
                     0});

  const uint32_t strtab_off = bodyOffset();
  body.insert(body.end(), strtab.bytes().begin(), strtab.bytes().end());
  const uint32_t strtab_index = num_user + 2;
  headers.push_back({strtab_name, kShtStrtab, 0, 0, strtab_off,
                     static_cast<uint32_t>(strtab.bytes().size()), 0, 0, 1,
                     0});

  while ((bodyOffset() % 4) != 0) {
    body.push_back(0);
  }
  const uint32_t symtab_off = bodyOffset();
  body.insert(body.end(), symtab_bytes.begin(), symtab_bytes.end());
  headers.push_back({symtab_name, kShtSymtab, 0, 0, symtab_off,
                     static_cast<uint32_t>(symtab_bytes.size()), strtab_index,
                     num_local + 1, 4, kSymentSize});

  while ((bodyOffset() % 4) != 0) {
    body.push_back(0);
  }
  const uint32_t shoff = bodyOffset();

  std::vector<uint8_t> out;
  out.reserve(kEhSize + body.size() + headers.size() * kShentSize);
  // e_ident
  put8(out, 0x7f);
  put8(out, 'E');
  put8(out, 'L');
  put8(out, 'F');
  put8(out, kElfClass32);
  put8(out, kElfData2Lsb);
  put8(out, 1);  // EV_CURRENT
  for (int i = 0; i < 9; ++i) {
    put8(out, 0);
  }
  put16(out, kEtExec);
  put16(out, static_cast<uint16_t>(object.machine));
  put32(out, 1);  // e_version
  put32(out, object.entry);
  put32(out, 0);  // e_phoff (no program headers; sections carry addresses)
  put32(out, shoff);
  put32(out, 0);  // e_flags
  put16(out, kEhSize);
  put16(out, 0);  // e_phentsize
  put16(out, 0);  // e_phnum
  put16(out, kShentSize);
  put16(out, static_cast<uint16_t>(shnum));
  put16(out, static_cast<uint16_t>(num_user + 1));  // shstrndx

  out.insert(out.end(), body.begin(), body.end());
  for (const RawSection& h : headers) {
    put32(out, h.name_off);
    put32(out, h.type);
    put32(out, h.flags);
    put32(out, h.addr);
    put32(out, h.offset);
    put32(out, h.size);
    put32(out, h.link);
    put32(out, h.info);
    put32(out, h.align);
    put32(out, h.entsize);
  }
  return out;
}

Object read(const std::vector<uint8_t>& bytes) {
  CABT_CHECK(bytes.size() >= kEhSize, "file too small to be ELF");
  CABT_CHECK(bytes[0] == 0x7f && bytes[1] == 'E' && bytes[2] == 'L' &&
                 bytes[3] == 'F',
             "bad ELF magic");
  CABT_CHECK(bytes[4] == kElfClass32, "not an ELF32 file");
  CABT_CHECK(bytes[5] == kElfData2Lsb, "not little-endian");

  Object obj;
  obj.machine = static_cast<Machine>(get16(bytes, 18));
  CABT_CHECK(obj.machine == Machine::kTrc32 || obj.machine == Machine::kV6x,
             "unknown e_machine value " << get16(bytes, 18));
  obj.entry = get32(bytes, 24);
  const uint32_t shoff = get32(bytes, 32);
  const uint16_t shentsize = get16(bytes, 46);
  const uint16_t shnum = get16(bytes, 48);
  const uint16_t shstrndx = get16(bytes, 50);
  CABT_CHECK(shentsize == kShentSize, "unexpected section header size");
  CABT_CHECK(shstrndx < shnum, "bad shstrndx " << shstrndx << " (shnum "
                                               << shnum << ")");
  // The whole section-header table must fit; 64-bit arithmetic so a huge
  // shoff in a truncated file cannot wrap past the size check.
  CABT_CHECK(static_cast<uint64_t>(shoff) +
                     static_cast<uint64_t>(shnum) * kShentSize <=
                 bytes.size(),
             "section header table (offset " << shoff << ", " << shnum
                                             << " entries) extends past end "
                                                "of the " << bytes.size()
                                             << "-byte image");

  struct RawSection {
    uint32_t name_off, type, flags, addr, offset, size, link, info;
  };
  std::vector<RawSection> raw(shnum);
  for (uint32_t i = 0; i < shnum; ++i) {
    const size_t off = shoff + i * kShentSize;
    raw[i] = {get32(bytes, off),      get32(bytes, off + 4),
              get32(bytes, off + 8),  get32(bytes, off + 12),
              get32(bytes, off + 16), get32(bytes, off + 20),
              get32(bytes, off + 24), get32(bytes, off + 28)};
  }

  const RawSection& shstr = raw[shstrndx];
  CABT_CHECK(shstr.type == kShtStrtab, "shstrndx is not a string table");
  CABT_CHECK(static_cast<uint64_t>(shstr.offset) + shstr.size <= bytes.size(),
             "section name table (offset " << shstr.offset << ", size "
                                           << shstr.size
                                           << ") extends past end of file");
  std::vector<uint8_t> shstrtab(bytes.begin() + shstr.offset,
                                bytes.begin() + shstr.offset + shstr.size);

  // Map from ELF section index to Object::sections index, for symbols.
  std::vector<int> index_map(shnum, -1);
  const RawSection* symtab = nullptr;
  const RawSection* symstr = nullptr;
  for (uint32_t i = 1; i < shnum; ++i) {
    const RawSection& r = raw[i];
    const std::string name = readString(shstrtab, r.name_off);
    if (r.type == kShtSymtab) {
      symtab = &r;
      CABT_CHECK(r.link < shnum && raw[r.link].type == kShtStrtab,
                 "symtab links to a non-strtab section");
      symstr = &raw[r.link];
      continue;
    }
    if (r.type != kShtProgbits && r.type != kShtNobits) {
      continue;
    }
    Section s;
    s.name = name;
    s.addr = r.addr;
    s.align = raw[i].type == kShtNobits ? 4 : std::max<uint32_t>(1, 4);
    s.writable = (r.flags & kShfWrite) != 0;
    s.executable = (r.flags & kShfExecinstr) != 0;
    if (r.type == kShtProgbits) {
      s.kind = SectionKind::kProgbits;
      CABT_CHECK(static_cast<size_t>(r.offset) + r.size <= bytes.size(),
                 "section '" << name << "' extends past end of file");
      s.data.assign(bytes.begin() + r.offset,
                    bytes.begin() + r.offset + r.size);
    } else {
      s.kind = SectionKind::kNobits;
      s.mem_size = r.size;
    }
    index_map[i] = static_cast<int>(obj.sections.size());
    obj.sections.push_back(std::move(s));
  }

  if (symtab != nullptr) {
    CABT_CHECK(
        static_cast<uint64_t>(symstr->offset) + symstr->size <= bytes.size(),
        "symbol string table (offset " << symstr->offset << ", size "
                                       << symstr->size
                                       << ") extends past end of file");
    std::vector<uint8_t> strtab(bytes.begin() + symstr->offset,
                                bytes.begin() + symstr->offset + symstr->size);
    CABT_CHECK(symtab->size % kSymentSize == 0,
               "symtab size " << symtab->size
                              << " is not a multiple of the " << kSymentSize
                              << "-byte entry size");
    CABT_CHECK(
        static_cast<uint64_t>(symtab->offset) + symtab->size <= bytes.size(),
        "symtab (offset " << symtab->offset << ", size " << symtab->size
                          << ") extends past end of file");
    const uint32_t count = symtab->size / kSymentSize;
    for (uint32_t i = 1; i < count; ++i) {
      const size_t off = symtab->offset + i * kSymentSize;
      Symbol sym;
      sym.name = readString(strtab, get32(bytes, off));
      sym.value = get32(bytes, off + 4);
      const uint8_t info = bytes[off + 12];
      sym.binding = (info >> 4) == 0 ? SymbolBinding::kLocal
                                     : SymbolBinding::kGlobal;
      const uint16_t shndx = get16(bytes, off + 14);
      CABT_CHECK(shndx == 0 || shndx == 0xfff1 || shndx < shnum,
                 "symbol '" << sym.name << "' references section index "
                            << shndx << " out of range (shnum " << shnum
                            << ")");
      sym.section = shndx == 0xfff1 || shndx == 0
                        ? -1
                        : index_map[shndx];
      obj.symbols.push_back(std::move(sym));
    }
  }
  return obj;
}

}  // namespace cabt::elf
