// Minimal ELF32 object reader/writer.
//
// The translator consumes source-processor programs as ELF32 images (the
// paper: "the compiler reads the object file, which is usually provided in
// ELF format") and emits translated VLIW programs in the same container.
// This implements the subset needed for executable images: the ELF header,
// section headers, a section-header string table, a symbol table and
// PROGBITS/NOBITS sections. Byte order is little-endian.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cabt::elf {

/// ELF e_machine values for the two instruction sets in this repository.
/// (Private values in the processor-specific range.)
enum class Machine : uint16_t {
  kTrc32 = 0xf301,  ///< the TriCore-flavoured source ISA
  kV6x = 0xf302,    ///< the C6x-flavoured VLIW target ISA
};

/// Section kinds we materialise (maps to SHT_PROGBITS / SHT_NOBITS).
enum class SectionKind : uint8_t {
  kProgbits,
  kNobits,
};

/// One section of an object file. For kNobits sections `data` must be
/// empty and `mem_size` gives the size.
struct Section {
  std::string name;
  SectionKind kind = SectionKind::kProgbits;
  uint32_t addr = 0;
  uint32_t align = 4;
  bool writable = false;
  bool executable = false;
  std::vector<uint8_t> data;
  uint32_t mem_size = 0;  ///< only meaningful for kNobits

  [[nodiscard]] uint32_t sizeInMemory() const {
    return kind == SectionKind::kNobits ? mem_size
                                        : static_cast<uint32_t>(data.size());
  }
  [[nodiscard]] bool contains(uint32_t a) const {
    return a >= addr && a - addr < sizeInMemory();
  }
};

/// Symbol binding subset.
enum class SymbolBinding : uint8_t { kLocal, kGlobal };

/// One symbol-table entry. `section` indexes Object::sections, or -1 for
/// absolute symbols.
struct Symbol {
  std::string name;
  uint32_t value = 0;
  int section = -1;
  SymbolBinding binding = SymbolBinding::kGlobal;
};

/// An in-memory object file.
struct Object {
  Machine machine = Machine::kTrc32;
  uint32_t entry = 0;
  std::vector<Section> sections;
  std::vector<Symbol> symbols;

  [[nodiscard]] const Section* findSection(std::string_view name) const;
  [[nodiscard]] const Section* sectionContaining(uint32_t addr) const;
  [[nodiscard]] const Symbol* findSymbol(std::string_view name) const;

  /// Reads `size` bytes at virtual address `addr` across one section.
  /// Throws when the range is not fully inside a section (NOBITS reads
  /// yield zeros).
  [[nodiscard]] std::vector<uint8_t> read(uint32_t addr, uint32_t size) const;
};

/// Sorted code-symbol index for address-to-name attribution: the
/// observability layer (src/obs) and symbolized stats dumps resolve a
/// PC to the enclosing function through it. Built from the symbols of
/// executable sections only (every assembler text label is one), so
/// data labels never shadow code.
class SymbolIndex {
 public:
  SymbolIndex() = default;
  explicit SymbolIndex(const Object& object);

  /// Name of the function containing `addr` (the greatest code symbol
  /// at or below it), or empty when the index has no symbol there.
  [[nodiscard]] std::string_view nameFor(uint32_t addr) const;

  /// "name+0x12" when attributable, "0x...." otherwise — for human-
  /// readable dumps.
  [[nodiscard]] std::string describe(uint32_t addr) const;

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    uint32_t addr = 0;
    std::string name;
  };
  std::vector<Entry> entries_;  ///< sorted by (addr, name)
};

/// Serialises an object to ELF32 bytes.
std::vector<uint8_t> write(const Object& object);

/// Parses ELF32 bytes produced by write() (or any conforming subset).
/// Throws cabt::Error on malformed input.
Object read(const std::vector<uint8_t>& bytes);

}  // namespace cabt::elf
