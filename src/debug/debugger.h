// Debugging of translated code (paper section 3.5).
//
// The debug runtime keeps *two* translations of the program in one V6X
// address space:
//   * the block-oriented image (normal cycle generation per basic block),
//     used for full-speed execution, and
//   * the instruction-oriented image, in which every source instruction
//     is its own annotated unit prefixed by a YIELD into the debug
//     runtime, used for single stepping.
// Breakpoints are always planted at the beginning of the basic block that
// contains the requested source address ("Break points ... are always set
// at the beginning of a basic block"); the debugger then switches to the
// instruction-oriented image and single-steps "to get to the real break
// point". Register names and addresses are translated through the fixed
// register binding (xlat/regmap.h).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "arch/arch.h"
#include "elf/elf.h"
#include "platform/platform.h"
#include "xlat/translator.h"

namespace cabt::debug {

/// The two coexisting translations plus the address maps between the
/// source program and both images.
struct DualTranslation {
  elf::Object image;  ///< merged: both code images + shared data
  xlat::TranslationResult block;
  xlat::TranslationResult instr;
  /// PC right after each instruction unit's YIELD packet -> source
  /// address of the instruction about to execute.
  std::map<uint32_t, uint32_t> yield_pc_to_src;
};

/// Translates `source` twice and merges the images (paper: "the debug
/// code contains two translations of the original code").
DualTranslation translateDual(const arch::ArchDescription& desc,
                              const elf::Object& source,
                              xlat::DetailLevel level =
                                  xlat::DetailLevel::kStatic);

enum class StopKind {
  kBreakpoint,  ///< stopped at a requested source address
  kStep,        ///< one source instruction executed
  kHalted,
};

struct Stop {
  StopKind kind = StopKind::kHalted;
  uint32_t src_addr = 0;  ///< source PC about to execute (not for kHalted)
};

class Debugger {
 public:
  Debugger(const arch::ArchDescription& desc, const elf::Object& source,
           xlat::DetailLevel level = xlat::DetailLevel::kStatic);

  void addBreakpoint(uint32_t src_addr);
  void removeBreakpoint(uint32_t src_addr);

  /// Runs at full speed (block image) until a breakpoint or halt;
  /// mid-block breakpoints are reached by automatic single stepping.
  Stop run();

  /// Executes exactly one source instruction.
  Stop step();

  /// Source address of the next instruction to execute (only meaningful
  /// while stopped at a breakpoint or step).
  [[nodiscard]] uint32_t currentSrc() const { return current_src_; }

  /// Architectural register access by source name ("d0".."d15",
  /// "a0".."a15"); translates through the register binding.
  [[nodiscard]] uint32_t regByName(const std::string& name) const;
  [[nodiscard]] uint32_t d(int i) const { return platform_.srcD(i); }
  [[nodiscard]] uint32_t a(int i) const { return platform_.srcA(i); }

  /// Reads source-address-space memory (applies the data remapping).
  [[nodiscard]] uint32_t readMemory(uint32_t src_addr, unsigned size) const;

  [[nodiscard]] platform::EmulationPlatform& platform() {
    return platform_;
  }
  [[nodiscard]] const DualTranslation& dual() const { return dual_; }

 private:
  enum class Mode { kBlock, kInstr };

  /// Source block containing `src_addr`.
  [[nodiscard]] const xlat::BlockInfo& blockOf(uint32_t src_addr) const;
  /// Enters the instruction image at a block leader; consumes the leading
  /// YIELD so the machine is "about to execute" that instruction.
  void enterInstrImage(uint32_t src_leader);
  /// One instruction-image step; updates current_src_ / halted state.
  Stop instrStep();
  void armBlockBreakpoints();
  void disarmBlockBreakpoints();

  arch::ArchDescription desc_;
  DualTranslation dual_;
  platform::EmulationPlatform platform_;
  std::set<uint32_t> breakpoints_;
  Mode mode_ = Mode::kBlock;
  uint32_t current_src_ = 0;
  bool halted_ = false;
  bool at_block_breakpoint_ = false;
};

}  // namespace cabt::debug
