#include "debug/debugger.h"

#include "common/strutil.h"
#include "vliw/isa.h"
#include "xlat/regmap.h"

namespace cabt::debug {
namespace {

constexpr uint32_t kInstrImageText = 0x0030'0000;
constexpr uint32_t kInstrImageTable = 0x0038'0000;

}  // namespace

DualTranslation translateDual(const arch::ArchDescription& desc,
                              const elf::Object& source,
                              xlat::DetailLevel level) {
  DualTranslation dual;

  xlat::TranslateOptions block_opts;
  block_opts.level = level;
  dual.block = xlat::translate(desc, source, block_opts);

  xlat::TranslateOptions instr_opts;
  instr_opts.level = level;
  instr_opts.instruction_oriented = true;
  instr_opts.text_base = kInstrImageText;
  instr_opts.jump_table_base = kInstrImageTable;
  instr_opts.text_section_name = ".text.instr";
  instr_opts.dispatch_reg = xlat::kAltDispatchReg;
  // The cache state area stays shared: both images simulate the same
  // instruction cache, so switching between them keeps the state
  // consistent.
  dual.instr = xlat::translate(desc, source, instr_opts);

  // Merge: everything from the block image, plus the instruction image's
  // code and dispatch table (data sections are identical copies).
  dual.image = dual.block.image;
  for (const elf::Section& s : dual.instr.image.sections) {
    if (s.name == ".text.instr" || s.name == ".jumptab") {
      elf::Section copy = s;
      if (s.name == ".jumptab") {
        copy.name = ".jumptab.instr";
      }
      dual.image.sections.push_back(std::move(copy));
    }
  }

  // Build the yield-PC map: each unit's first packet is the YIELD packet;
  // the machine stops right after it.
  const elf::Section* itext = dual.image.findSection(".text.instr");
  CABT_ASSERT(itext != nullptr, "instruction image lost in merge");
  std::map<uint32_t, uint32_t> packet_size;
  for (const vliw::Packet& p :
       vliw::decodeProgram(itext->data, itext->addr)) {
    packet_size.emplace(p.addr, p.sizeBytes());
  }
  for (const auto& [src, unit_start] : dual.instr.instr_map) {
    const auto it = packet_size.find(unit_start);
    CABT_ASSERT(it != packet_size.end(), "unit start is not a packet");
    dual.yield_pc_to_src.emplace(unit_start + it->second, src);
  }
  return dual;
}

Debugger::Debugger(const arch::ArchDescription& desc,
                   const elf::Object& source, xlat::DetailLevel level)
    : desc_(desc),
      dual_(translateDual(desc, source, level)),
      platform_(desc, dual_.image) {
  current_src_ = source.entry;
  // The instruction image's prologue never runs (execution starts in the
  // block image), so its dispatch constant is installed here.
  const elf::Section* src_text = source.findSection(".text");
  platform_.sim().setReg(xlat::kAltDispatchReg,
                         kInstrImageTable - 2u * src_text->addr);
}

void Debugger::addBreakpoint(uint32_t src_addr) {
  static_cast<void>(blockOf(src_addr));  // validates the address
  breakpoints_.insert(src_addr);
}

void Debugger::removeBreakpoint(uint32_t src_addr) {
  breakpoints_.erase(src_addr);
}

const xlat::BlockInfo& Debugger::blockOf(uint32_t src_addr) const {
  const auto& blocks = dual_.block.blocks;
  auto it = blocks.upper_bound(src_addr);
  CABT_CHECK(it != blocks.begin(),
             "address " << hex32(src_addr) << " precedes the program");
  --it;
  return it->second;
}

void Debugger::armBlockBreakpoints() {
  for (const uint32_t bp : breakpoints_) {
    platform_.sim().addBreakpoint(blockOf(bp).tgt_addr);
  }
}

void Debugger::disarmBlockBreakpoints() {
  for (const uint32_t bp : breakpoints_) {
    platform_.sim().removeBreakpoint(blockOf(bp).tgt_addr);
  }
}

void Debugger::enterInstrImage(uint32_t src_leader) {
  const auto it = dual_.instr.instr_map.find(src_leader);
  CABT_CHECK(it != dual_.instr.instr_map.end(),
             "no instruction unit at " << hex32(src_leader));
  platform_.sim().setPc(it->second);
  // Consume the unit's leading YIELD: the machine is now poised right
  // before the instruction executes.
  const vliw::RunState state = platform_.sim().run(platform_.config().max_cycles);
  CABT_CHECK(state == vliw::RunState::kYielded,
             "expected the leading YIELD of the instruction unit");
  current_src_ = src_leader;
  mode_ = Mode::kInstr;
}

Stop Debugger::instrStep() {
  const vliw::RunState state =
      platform_.sim().run(platform_.config().max_cycles);
  if (state == vliw::RunState::kHalted) {
    halted_ = true;
    return {StopKind::kHalted, 0};
  }
  CABT_CHECK(state == vliw::RunState::kYielded,
             "unexpected stop while single-stepping");
  const auto it = dual_.yield_pc_to_src.find(platform_.sim().pc());
  CABT_CHECK(it != dual_.yield_pc_to_src.end(),
             "yield at unmapped PC " << hex32(platform_.sim().pc()));
  current_src_ = it->second;
  return {StopKind::kStep, current_src_};
}

Stop Debugger::run() {
  CABT_CHECK(!halted_, "program has halted");
  // If paused mid-block in the instruction image, step until a breakpoint
  // or a block leader, then drop back to the block image.
  while (mode_ == Mode::kInstr) {
    if (breakpoints_.count(current_src_) != 0 && !at_block_breakpoint_) {
      return {StopKind::kBreakpoint, current_src_};
    }
    at_block_breakpoint_ = false;
    if (dual_.block.blocks.count(current_src_) != 0) {
      // Block leader: switch back to the fast image.
      platform_.sim().setPc(dual_.block.blocks.at(current_src_).tgt_addr);
      mode_ = Mode::kBlock;
      break;
    }
    const Stop s = instrStep();
    if (s.kind == StopKind::kHalted) {
      return s;
    }
  }

  for (;;) {
    armBlockBreakpoints();
    const vliw::RunState state =
        at_block_breakpoint_
            ? platform_.sim().resume(platform_.config().max_cycles)
            : platform_.sim().run(platform_.config().max_cycles);
    at_block_breakpoint_ = false;
    disarmBlockBreakpoints();
    if (state == vliw::RunState::kHalted) {
      halted_ = true;
      return {StopKind::kHalted, 0};
    }
    CABT_CHECK(state == vliw::RunState::kBreakpoint,
               "unexpected stop in block image");
    // Which source block is this?
    uint32_t block_src = 0;
    for (const auto& [src, info] : dual_.block.blocks) {
      if (info.tgt_addr == platform_.sim().pc()) {
        block_src = src;
        break;
      }
    }
    CABT_CHECK(block_src != 0, "breakpoint at unmapped target address");
    current_src_ = block_src;
    if (breakpoints_.count(block_src) != 0) {
      mode_ = Mode::kBlock;
      at_block_breakpoint_ = true;
      return {StopKind::kBreakpoint, block_src};
    }
    // Mid-block breakpoint: single-step from the block start to it.
    enterInstrImage(block_src);
    for (;;) {
      if (breakpoints_.count(current_src_) != 0) {
        return {StopKind::kBreakpoint, current_src_};
      }
      const Stop s = instrStep();
      if (s.kind == StopKind::kHalted) {
        return s;
      }
      if (dual_.block.blocks.count(current_src_) != 0) {
        // Left the block without hitting it (e.g. an early branch out):
        // resume full speed.
        platform_.sim().setPc(
            dual_.block.blocks.at(current_src_).tgt_addr);
        mode_ = Mode::kBlock;
        break;
      }
    }
  }
}

Stop Debugger::step() {
  CABT_CHECK(!halted_, "program has halted");
  if (mode_ == Mode::kBlock) {
    // Enter the instruction image at the current block leader. If we are
    // stopped at a block-image breakpoint the leader is current_src_;
    // at program start it is the entry.
    at_block_breakpoint_ = false;
    enterInstrImage(current_src_);
  }
  return instrStep();
}

uint32_t Debugger::regByName(const std::string& name) const {
  CABT_CHECK(name.size() >= 2 && (name[0] == 'd' || name[0] == 'a'),
             "register name must be dN or aN, got '" << name << "'");
  const int n = static_cast<int>(parseInt(name.substr(1)));
  CABT_CHECK(n >= 0 && n < 16, "register index out of range in '" << name
                                                                  << "'");
  return name[0] == 'd' ? d(n) : a(n);
}

uint32_t Debugger::readMemory(uint32_t src_addr, unsigned size) const {
  const MemRegion* region = desc_.memory_map.find(src_addr);
  const uint32_t tgt =
      region != nullptr ? region->remap(src_addr) : src_addr;
  return platform_.sim().memory().read(tgt, size);
}

}  // namespace cabt::debug
