// Device stall/timeout injection: a transparent soc::Device decorator.
//
// FaultProxy wraps an inner device and forwards everything verbatim —
// including name(), saveState() and restoreState(), so the snapshot bytes of
// a proxied board are identical to an unproxied one and the proxy's own
// harness state (stall window, counters) is never serialized or digested.
//
// An armed stall window models a hung bus interface: reads in
// [from, until) return stall_value without reaching the device, writes are
// dropped. The device's clock keeps advancing (clockCycle/advanceTo are
// always forwarded) — the device is alive, the guest just cannot talk to it.
// That is the shape needed for watchdog timeouts: stall the watchdog port
// and the guest's PET writes vanish while the deadline keeps counting.
//
// Determinism: device accesses happen only on the kernel's sequential drain
// (soc/bus.h threading contract) at bit-identical soc_cycle timestamps
// across all dispatch engines and seq/par kernels, so the set of stalled
// accesses is identical too.
#pragma once

#include <cstdint>
#include <limits>

#include "soc/device.h"

namespace cabt::fi {

class FaultProxy : public soc::Device {
 public:
  explicit FaultProxy(soc::Device* inner)
      : soc::Device(inner->name()), inner_(inner) {}

  void armStall(uint64_t from, uint64_t until,
                uint32_t stall_value = 0) {
    from_ = from;
    until_ = until;
    stall_value_ = stall_value;
    armed_ = true;
  }
  void clearStall() { armed_ = false; }

  [[nodiscard]] bool stalledAt(uint64_t soc_cycle) const {
    return armed_ && soc_cycle >= from_ && soc_cycle < until_;
  }

  uint32_t read(uint32_t offset, unsigned size, uint64_t soc_cycle) override {
    if (stalledAt(soc_cycle)) {
      ++stalled_reads_;
      return stall_value_;
    }
    return inner_->read(offset, size, soc_cycle);
  }

  void write(uint32_t offset, uint32_t value, unsigned size,
             uint64_t soc_cycle) override {
    if (stalledAt(soc_cycle)) {
      ++stalled_writes_;
      return;
    }
    inner_->write(offset, value, size, soc_cycle);
  }

  void clockCycle(uint64_t soc_cycle) override { inner_->clockCycle(soc_cycle); }
  void advanceTo(uint64_t from, uint64_t to) override {
    inner_->advanceTo(from, to);
  }

  void saveState(serial::Writer& w) const override { inner_->saveState(w); }
  void restoreState(serial::Reader& r) override { inner_->restoreState(r); }

  [[nodiscard]] uint64_t stalledReads() const { return stalled_reads_; }
  [[nodiscard]] uint64_t stalledWrites() const { return stalled_writes_; }
  [[nodiscard]] soc::Device* inner() const { return inner_; }

 private:
  soc::Device* inner_;
  bool armed_ = false;
  uint64_t from_ = 0;
  uint64_t until_ = std::numeric_limits<uint64_t>::max();
  uint32_t stall_value_ = 0;
  uint64_t stalled_reads_ = 0;
  uint64_t stalled_writes_ = 0;
};

}  // namespace cabt::fi
