// Watchdog peripheral: fires a board-reset signal when the guest stops
// petting it (DESIGN.md section 12).
//
// Register window (word access):
//   0x0 LOAD  (rw) timeout in SoC cycles (>= 1 to arm)
//   0x4 PET   (w)  re-arm the deadline LOAD cycles from now while enabled
//               (r)  cycles until the deadline (0 when idle/expired)
//   0x8 CTRL  (rw) bit0 = enable; arming sets the deadline LOAD cycles out
//   0xc FIRED (r)  total expiries since reset
//
// Like soc::ProgrammableTimer the deadline check is arithmetic over the
// lazily advanced SoC clock, so firing is a pure function of transaction
// timestamps — bit-identical across dispatch engines and seq/par kernels.
// A fired watchdog is one-shot (disarms itself): the guest-visible
// consequence is an interrupt line raise, the board-level consequence is
// the on-fire callback, which platform::ReferenceBoard uses to trigger
// recovery (reset to the newest intact snapshot-ring entry) between run
// chunks. LOAD/enable/deadline/fired counts are architectural and
// serialized; the IRQ routing and callback are construction-time wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/error.h"
#include "soc/interrupts.h"

namespace cabt::fi {

class WatchdogDevice : public soc::Device {
 public:
  static constexpr uint32_t kLoadOffset = 0x0;
  static constexpr uint32_t kPetOffset = 0x4;
  static constexpr uint32_t kCtrlOffset = 0x8;
  static constexpr uint32_t kFiredOffset = 0xc;
  static constexpr uint32_t kWindowSize = 0x10;

  explicit WatchdogDevice(std::string name = "watchdog")
      : soc::Device(std::move(name)) {}

  /// Routes expiries to `intc` line `line`.
  void setIrqTarget(soc::InterruptController* intc, unsigned line) {
    intc_ = intc;
    line_ = line;
  }
  /// Board-level fire hook (reset/recovery trigger). Runs on the
  /// sequential drain, inside a bus advance — keep it to flag-setting.
  void setOnFire(std::function<void(uint64_t)> fn) { on_fire_ = std::move(fn); }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] uint64_t fired() const { return fired_; }

  // -- Device -----------------------------------------------------------
  uint32_t read(uint32_t offset, unsigned size, uint64_t soc_cycle) override {
    CABT_CHECK(size == 4, "watchdog supports word access only");
    switch (offset) {
      case kLoadOffset:
        return load_;
      case kPetOffset:
        return enabled_ && deadline_ > soc_cycle
                   ? static_cast<uint32_t>(deadline_ - soc_cycle)
                   : 0;
      case kCtrlOffset:
        return enabled_ ? 1u : 0u;
      case kFiredOffset:
        return static_cast<uint32_t>(fired_);
      default:
        CABT_FAIL("watchdog read at bad offset " << offset);
    }
  }

  void write(uint32_t offset, uint32_t value, unsigned size,
             uint64_t soc_cycle) override {
    CABT_CHECK(size == 4, "watchdog supports word access only");
    switch (offset) {
      case kLoadOffset:
        load_ = value;
        break;
      case kPetOffset:
        if (enabled_) {
          deadline_ = soc_cycle + load_;
        }
        break;
      case kCtrlOffset:
        enabled_ = (value & 1u) != 0;
        if (enabled_) {
          CABT_CHECK(load_ >= 1, "watchdog armed with LOAD = 0");
          deadline_ = soc_cycle + load_;
        }
        break;
      default:
        CABT_FAIL("watchdog write at bad offset " << offset);
    }
  }

  void clockCycle(uint64_t soc_cycle) override {
    advanceTo(soc_cycle - 1, soc_cycle);
  }

  void advanceTo(uint64_t, uint64_t to) override {
    if (enabled_ && deadline_ <= to) {
      ++fired_;
      enabled_ = false;  // one-shot: a reset re-arms it
      if (intc_ != nullptr) {
        intc_->raise(line_);
      }
      if (on_fire_) {
        on_fire_(deadline_);
      }
    }
  }

  void saveState(serial::Writer& w) const override {
    w.u32(load_);
    w.b(enabled_);
    w.u64(deadline_);
    w.u64(fired_);
  }
  void restoreState(serial::Reader& r) override {
    load_ = r.u32();
    enabled_ = r.b();
    deadline_ = r.u64();
    fired_ = r.u64();
  }

 private:
  soc::InterruptController* intc_ = nullptr;
  unsigned line_ = 0;
  std::function<void(uint64_t)> on_fire_;
  uint32_t load_ = 0;
  bool enabled_ = false;
  uint64_t deadline_ = 0;
  uint64_t fired_ = 0;
};

}  // namespace cabt::fi
