// Deterministic fault-injection campaigns (DESIGN.md section 12).
//
// A Campaign is the user-facing layer of src/fi: a list of FaultSpecs —
// parsed from `kind@cycle:key=value,...` strings or built directly — that
// arm() translates onto a platform::ReferenceBoard:
//
//   * core faults (register/pc/memory-word flips) become fi::CoreFault
//     entries in per-core injectors, applied by the ISS at basic-block
//     boundaries through the due-time ladder — bit-identical across every
//     dispatch engine, stepping, and the seq/par kernels;
//   * bus errors become soc::BusFaultWindows whose on_error raises the
//     precise bus-error line (platform::kBusErrorIrqLine) on the faulted
//     core's interrupt controller, delivered — like every interrupt — at
//     the next block boundary;
//   * device stalls arm the fi::FaultProxy wrapping the named device;
//   * ring corruptions hook takeCheckpoint and flip a byte in the freshly
//     recorded snapshot ring entry (breaking its FNV footer), which is how
//     the recovery tests manufacture corrupt-ring scenarios on demand.
//
// An armed campaign whose faults never fire perturbs nothing: digests and
// bus logs are byte-identical to an FI-off run (tests/fi_test.cpp).
// The campaign must outlive the run (the bus keeps a callback into it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fi/inject.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cabt::platform {
class ReferenceBoard;
}  // namespace cabt::platform

namespace cabt::fi {

enum class FaultKind : uint8_t {
  kDataRegFlip,  // dreg:  d[index] ^= mask on core `core`
  kAddrRegFlip,  // areg:  a[index] ^= mask
  kPcFlip,       // pc:    pc ^= mask
  kPcSet,        // pcset: pc = addr
  kMemFlip,      // mem:   private-memory word at addr ^= mask
  kBusError,     // buserr: bus window [addr, addr_hi] errors in [cycle,until)
  kDeviceStall,  // stall: device `device` stalled in [cycle, until)
  kRingCorrupt,  // ring:  corrupt ring entries checkpointed in [cycle, until)
};

struct FaultSpec {
  FaultKind kind = FaultKind::kDataRegFlip;
  uint64_t cycle = 0;
  size_t core = 0;
  unsigned index = 0;   // register number
  uint32_t addr = 0;    // mem/pcset target, buserr window lo, ring byte
  uint32_t addr_hi = 0; // buserr window hi (0 = addr + 3)
  uint32_t mask = 0;
  uint64_t until = ~static_cast<uint64_t>(0);  // buserr/stall/ring window end
  uint32_t count = 1;   // buserr max fires (0 = unlimited)
  std::string device;   // stall target name
};

/// Parses "kind@cycle:key=value,..."; kinds dreg/areg/pc/pcset/mem/buserr/
/// stall/ring, keys core/index/addr/hi/mask/until/count/device. Throws
/// cabt::Error on malformed input.
FaultSpec parseFaultSpec(const std::string& spec);

class Campaign {
 public:
  void add(const FaultSpec& spec) { specs_.push_back(spec); }
  /// Arms every spec on `board`. Call once, before the run; the campaign
  /// owns the per-core injectors and must outlive the board's run.
  void arm(platform::ReferenceBoard& board);
  /// Detaches everything armed (injectors, bus windows, stalls, hook).
  void disarm();

  [[nodiscard]] size_t scheduled() const { return specs_.size(); }
  /// Core faults that have fired so far.
  [[nodiscard]] uint64_t firedCount() const;
  [[nodiscard]] const std::vector<FiredFault>& fired(size_t core) const {
    return injectors_.at(core)->fired();
  }
  [[nodiscard]] uint64_t ringCorruptions() const { return ring_corruptions_; }

  /// Publishes fi.* counters (scheduled/fired faults, bus-error fires,
  /// device stalls, ring corruptions) under `prefix`.
  void publishMetrics(obs::MetricsRegistry& reg,
                      const std::string& prefix = "fi.") const;
  /// Emits one timeline instant per fired fault, post-run (injection
  /// itself can happen on worker threads, where the sink is off-limits).
  void emitTrace(obs::TraceSink& sink) const;

 private:
  std::vector<FaultSpec> specs_;
  std::vector<std::unique_ptr<CoreInjector>> injectors_;  // indexed by core
  platform::ReferenceBoard* board_ = nullptr;
  /// (core, soc_cycle, addr) of each bus-error fire, recorded by the
  /// on_error callbacks (sequential drain only).
  std::vector<std::pair<size_t, std::pair<uint64_t, uint32_t>>> bus_fires_;
  uint64_t ring_corruptions_ = 0;
};

}  // namespace cabt::fi
