#include "fi/fi.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"
#include "common/strutil.h"
#include "platform/platform.h"

namespace cabt::fi {

namespace {

FaultKind parseKind(std::string_view s) {
  if (s == "dreg") return FaultKind::kDataRegFlip;
  if (s == "areg") return FaultKind::kAddrRegFlip;
  if (s == "pc") return FaultKind::kPcFlip;
  if (s == "pcset") return FaultKind::kPcSet;
  if (s == "mem") return FaultKind::kMemFlip;
  if (s == "buserr") return FaultKind::kBusError;
  if (s == "stall") return FaultKind::kDeviceStall;
  if (s == "ring") return FaultKind::kRingCorrupt;
  CABT_FAIL("unknown fault kind '" << std::string(s)
                                   << "' (dreg/areg/pc/pcset/mem/buserr/"
                                      "stall/ring)");
}

uint64_t parseU64(std::string_view s) {
  const int64_t v = parseInt(s);
  CABT_CHECK(v >= 0, "fault field must be non-negative: " << std::string(s));
  return static_cast<uint64_t>(v);
}

}  // namespace

FaultSpec parseFaultSpec(const std::string& spec) {
  const size_t at = spec.find('@');
  CABT_CHECK(at != std::string::npos,
             "fault spec '" << spec << "' has no '@cycle' (expected "
                            << "kind@cycle:key=value,...)");
  FaultSpec f;
  f.kind = parseKind(trim(std::string_view(spec).substr(0, at)));
  std::string_view rest = std::string_view(spec).substr(at + 1);
  const size_t colon = rest.find(':');
  f.cycle = parseU64(trim(rest.substr(0, colon)));
  if (colon != std::string_view::npos) {
    for (std::string_view kv : split(rest.substr(colon + 1), ',')) {
      kv = trim(kv);
      if (kv.empty()) {
        continue;
      }
      const size_t eq = kv.find('=');
      CABT_CHECK(eq != std::string_view::npos,
                 "fault field '" << std::string(kv) << "' has no '='");
      const std::string_view key = trim(kv.substr(0, eq));
      const std::string_view val = trim(kv.substr(eq + 1));
      if (key == "core") {
        f.core = static_cast<size_t>(parseU64(val));
      } else if (key == "index") {
        f.index = static_cast<unsigned>(parseU64(val));
      } else if (key == "addr") {
        f.addr = static_cast<uint32_t>(parseU64(val));
      } else if (key == "hi") {
        f.addr_hi = static_cast<uint32_t>(parseU64(val));
      } else if (key == "mask") {
        f.mask = static_cast<uint32_t>(parseU64(val));
      } else if (key == "until") {
        f.until = parseU64(val);
      } else if (key == "count") {
        f.count = static_cast<uint32_t>(parseU64(val));
      } else if (key == "device") {
        f.device = std::string(val);
      } else {
        CABT_FAIL("unknown fault field '" << std::string(key) << "'");
      }
    }
  }
  return f;
}

void Campaign::arm(platform::ReferenceBoard& board) {
  CABT_CHECK(board_ == nullptr, "campaign is already armed");
  board_ = &board;
  injectors_.clear();
  for (size_t i = 0; i < board.numCores(); ++i) {
    injectors_.push_back(std::make_unique<CoreInjector>());
    board.attachInjector(i, injectors_.back().get());
  }
  bool hooked_ring = false;
  for (const FaultSpec& spec : specs_) {
    switch (spec.kind) {
      case FaultKind::kDataRegFlip:
      case FaultKind::kAddrRegFlip:
      case FaultKind::kPcFlip:
      case FaultKind::kPcSet:
      case FaultKind::kMemFlip: {
        CoreFault f;
        f.cycle = spec.cycle;
        f.index = static_cast<uint8_t>(spec.index);
        f.addr = spec.addr;
        f.mask = spec.mask;
        switch (spec.kind) {
          case FaultKind::kDataRegFlip:
            f.kind = CoreFaultKind::kDataReg;
            break;
          case FaultKind::kAddrRegFlip:
            f.kind = CoreFaultKind::kAddrReg;
            break;
          case FaultKind::kPcFlip:
            f.kind = CoreFaultKind::kPc;
            CABT_CHECK(spec.mask != 0, "pc flip needs a nonzero mask");
            break;
          case FaultKind::kPcSet:
            f.kind = CoreFaultKind::kPc;
            f.mask = 0;  // mask == 0 means "set pc = addr"
            break;
          default:
            f.kind = CoreFaultKind::kMemWord;
            break;
        }
        injectors_.at(spec.core)->schedule(f);
        break;
      }
      case FaultKind::kBusError: {
        soc::BusFaultWindow w;
        w.lo = spec.addr;
        w.hi = spec.addr_hi != 0 ? spec.addr_hi : spec.addr + 3;
        w.from = spec.cycle;
        w.until = spec.until;
        w.max_fires = spec.count;
        // The guest-visible consequence: the precise bus-error trap,
        // raised on the faulted core's controller and delivered (like
        // every interrupt) at its next block boundary. Sequential drain
        // only, so recording the fire here is race-free.
        soc::InterruptController* intc = &board.intc(spec.core);
        const size_t core = spec.core;
        w.on_error = [this, intc, core](const soc::Transaction& t) {
          intc->raise(platform::kBusErrorIrqLine);
          bus_fires_.push_back({core, {t.soc_cycle, t.addr}});
        };
        board.board().bus.armBusFault(std::move(w));
        break;
      }
      case FaultKind::kDeviceStall:
        CABT_CHECK(!spec.device.empty(), "stall fault needs device=<name>");
        board.faultProxy(spec.device)->armStall(spec.cycle, spec.until);
        break;
      case FaultKind::kRingCorrupt:
        hooked_ring = true;
        break;
    }
  }
  if (hooked_ring) {
    board.setCheckpointHook([this](platform::Checkpoint& cp) {
      for (const FaultSpec& spec : specs_) {
        if (spec.kind != FaultKind::kRingCorrupt || cp.cycle < spec.cycle ||
            cp.cycle >= spec.until) {
          continue;
        }
        const uint8_t flip =
            spec.mask != 0 ? static_cast<uint8_t>(spec.mask) : uint8_t{0x40};
        if (!cp.path.empty()) {
          // Spilled entry: flip the byte in the file.
          std::fstream f(cp.path,
                         std::ios::binary | std::ios::in | std::ios::out);
          CABT_CHECK(f.good(), "cannot corrupt spilled checkpoint " << cp.path);
          f.seekg(0, std::ios::end);
          const auto size = static_cast<uint64_t>(f.tellg());
          const uint64_t pos = spec.addr % size;
          f.seekg(static_cast<std::streamoff>(pos));
          char b = 0;
          f.read(&b, 1);
          b = static_cast<char>(static_cast<uint8_t>(b) ^ flip);
          f.seekp(static_cast<std::streamoff>(pos));
          f.write(&b, 1);
        } else {
          cp.data[spec.addr % cp.data.size()] ^= flip;
        }
        ++ring_corruptions_;
      }
    });
  }
}

void Campaign::disarm() {
  if (board_ == nullptr) {
    return;
  }
  for (size_t i = 0; i < board_->numCores(); ++i) {
    board_->attachInjector(i, nullptr);
  }
  board_->board().bus.clearBusFaults();
  for (const FaultSpec& spec : specs_) {
    if (spec.kind == FaultKind::kDeviceStall) {
      board_->faultProxy(spec.device)->clearStall();
    }
  }
  board_->setCheckpointHook(nullptr);
  board_ = nullptr;
}

uint64_t Campaign::firedCount() const {
  uint64_t n = 0;
  for (const auto& inj : injectors_) {
    n += inj->fired().size();
  }
  return n;
}

void Campaign::publishMetrics(obs::MetricsRegistry& reg,
                              const std::string& prefix) const {
  reg.setCounter(prefix + "faults_scheduled", specs_.size());
  reg.setCounter(prefix + "core_faults_fired", firedCount());
  reg.setCounter(prefix + "bus_error_fires", bus_fires_.size());
  reg.setCounter(prefix + "ring_corruptions", ring_corruptions_);
  if (board_ != nullptr) {
    uint64_t stalled = 0;
    for (const FaultSpec& spec : specs_) {
      if (spec.kind == FaultKind::kDeviceStall) {
        const fi::FaultProxy* p = board_->faultProxy(spec.device);
        stalled += p->stalledReads() + p->stalledWrites();
      }
    }
    reg.setCounter(prefix + "device_stall_hits", stalled);
  }
}

void Campaign::emitTrace(obs::TraceSink& sink) const {
  for (size_t core = 0; core < injectors_.size(); ++core) {
    for (const FiredFault& f : injectors_[core]->fired()) {
      sink.instant(obs::coreLane(core), "fault", f.at, "pc", f.pc);
    }
  }
  for (const auto& [core, fire] : bus_fires_) {
    sink.instant(obs::coreLane(core), "bus_error", fire.first, "addr",
                 fire.second);
  }
}

}  // namespace cabt::fi
