// Deterministic per-core fault injector (DESIGN.md section 12).
//
// A CoreInjector holds a cycle-sorted list of architectural faults for one
// core. The ISS polls it at basic-block boundaries through the same
// idempotent due-time ladder as obs::PcSampler: `due(now)` is a single
// compare against the next scheduled cycle, so an un-due injector costs one
// branch per boundary epoch and re-observing the same epoch (block engine
// falling back to step(), quantum resume) can never double-apply a fault.
//
// Faults are one-shot: take() consumes the cursor entry and the injector is
// never serialized into snapshots. Restoring a checkpoint and replaying
// therefore does NOT re-fire already-consumed faults — which is exactly what
// recovery wants: fall back to a pre-fault ring entry, replay, and converge
// on the clean-run digest.
//
// Threading: an injector belongs to one core and is touched only from that
// core's execution context. Under the parallel-round kernel that includes
// worker-thread private prefixes — prefixes are real committed execution, so
// core-private faults (registers, pc, private memory) must apply there too.
// The round barrier provides the same happens-before handoff PcSampler
// relies on; no locking.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.h"

namespace cabt::fi {

enum class CoreFaultKind : uint8_t {
  kDataReg,  // d[index] ^= mask
  kAddrReg,  // a[index] ^= mask
  kPc,       // mask != 0 ? pc ^= mask : pc = addr
  kMemWord,  // private-memory word at addr ^= mask (never bus, never code)
};

struct CoreFault {
  CoreFaultKind kind = CoreFaultKind::kDataReg;
  uint64_t cycle = 0;  // first boundary epoch with localTime() >= cycle fires
  uint8_t index = 0;   // register number for kDataReg/kAddrReg
  uint32_t addr = 0;   // kMemWord target / kPc absolute target
  uint32_t mask = 0;   // xor mask (kPc: 0 means "set pc = addr")
};

// What actually happened when a fault fired, for reporting and tracing.
struct FiredFault {
  CoreFault fault;
  uint64_t at = 0;  // localTime() of the boundary epoch that applied it
  uint32_t pc = 0;  // guest pc at that boundary (before a kPc fault applies)
  uint32_t before = 0;
  uint32_t after = 0;
};

class CoreInjector {
 public:
  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  void schedule(const CoreFault& f) {
    if (f.kind == CoreFaultKind::kDataReg || f.kind == CoreFaultKind::kAddrReg) {
      CABT_CHECK(f.index < 16, "fault register index out of range: "
                                   << unsigned{f.index});
      CABT_CHECK(f.mask != 0, "register-flip fault needs a nonzero mask");
    }
    if (f.kind == CoreFaultKind::kMemWord) {
      CABT_CHECK(f.mask != 0, "memory-flip fault needs a nonzero mask");
      CABT_CHECK((f.addr & 3u) == 0,
                 "memory-flip address is not word-aligned: " << f.addr);
    }
    // Stable insert keeps same-cycle faults in schedule order and keeps the
    // cursor valid: everything at faults_[cursor_..] is still pending.
    auto it = std::upper_bound(
        faults_.begin() + static_cast<ptrdiff_t>(cursor_), faults_.end(), f,
        [](const CoreFault& a, const CoreFault& b) { return a.cycle < b.cycle; });
    faults_.insert(it, f);
    next_due_ = faults_[cursor_].cycle;
  }

  /// Due-time ladder: one compare on the boundary fast path.
  [[nodiscard]] bool due(uint64_t now) const { return now >= next_due_; }

  /// Consumes and returns the next fault with cycle <= now, or nullptr.
  /// Consumed faults never re-fire (not even after snapshot restore).
  const CoreFault* take(uint64_t now) {
    if (now < next_due_ || cursor_ >= faults_.size()) {
      return nullptr;
    }
    const CoreFault* f = &faults_[cursor_++];
    next_due_ = cursor_ < faults_.size() ? faults_[cursor_].cycle : kNever;
    return f;
  }

  void recordFired(const FiredFault& rec) { fired_.push_back(rec); }

  [[nodiscard]] const std::vector<FiredFault>& fired() const { return fired_; }
  [[nodiscard]] size_t scheduled() const { return faults_.size(); }
  [[nodiscard]] size_t pending() const { return faults_.size() - cursor_; }

 private:
  std::vector<CoreFault> faults_;  // sorted by cycle from cursor_ on
  size_t cursor_ = 0;
  uint64_t next_due_ = kNever;
  std::vector<FiredFault> fired_;
};

}  // namespace cabt::fi
