#include "iss/iss.h"

#include "common/bits.h"
#include "common/strutil.h"
#include "trc/program.h"

namespace cabt::iss {

using arch::OpClass;
using trc::Instr;
using trc::Opc;

Iss::Iss(const arch::ArchDescription& desc, const elf::Object& object,
         soc::SocBus* bus, IssConfig config)
    : desc_(desc),
      config_(config),
      bus_(bus),
      artifact_(core::ProgramArtifactCache::instance().acquire(
          desc, object, config.extra_leaders)),
      graph_(artifact_->graph()),
      timer_(desc_.pipeline),
      icache_(desc_.icache) {
  for (const elf::Section& s : object.sections) {
    if (s.kind == elf::SectionKind::kProgbits) {
      mem_.writeBlock(s.addr, s.data.data(), s.data.size());
    }
    // NOBITS sections read as zero in SparseMemory already.
    if (s.executable && s.sizeInMemory() > 0) {
      // Code ranges, so memory-word fault injection can refuse to flip
      // instruction bytes out from under the predecoded block graph.
      exec_ranges_.emplace_back(s.addr, s.addr + s.sizeInMemory());
    }
  }
  pc_ = object.entry;
}

core::BlockCache& Iss::blockCache() {
  if (cache_ == nullptr) {
    cache_ = std::make_unique<core::BlockCache>(artifact_);
    // Breakpoints planted before the first dispatch: replay them into
    // the per-block flags the dispatcher tests.
    for (const uint32_t addr : breakpoints_) {
      refreshBreakpointFlag(addr);
    }
  }
  return *cache_;
}

void Iss::refreshBreakpointFlag(uint32_t addr) {
  if (cache_ == nullptr) {
    return;  // the lazy cache build replays the whole set
  }
  const int32_t idx = graph_.blockIndexContaining(addr);
  if (idx < 0) {
    return;
  }
  core::ExecBlock& block = cache_->blocks()[static_cast<size_t>(idx)];
  block.has_breakpoint = blockHasBreakpoint(block) ? 1 : 0;
}

void Iss::addBreakpoint(uint32_t addr) {
  breakpoints_.insert(addr);
  refreshBreakpointFlag(addr);
}

void Iss::removeBreakpoint(uint32_t addr) {
  breakpoints_.erase(addr);
  refreshBreakpointFlag(addr);
}

bool Iss::traceHasBreakpoint(const core::Trace& trace) const {
  for (const core::TraceSegment& seg : trace.segs) {
    if (cache_->blocks()[static_cast<size_t>(seg.block)].has_breakpoint !=
        0) {
      return true;
    }
  }
  return false;
}

const Instr& Iss::fetch(uint32_t addr) const {
  const auto& by_addr = artifact_->instrByAddr();
  const auto it = by_addr.find(addr);
  CABT_CHECK(it != by_addr.end(),
             "PC " << hex32(addr) << " is not at an instruction boundary");
  return graph_.instrs()[it->second];
}

uint64_t Iss::currentCycle() const {
  return committed_cycles_ + live_pipe_;
}

uint64_t Iss::localTime() const {
  return config_.model_timing ? currentCycle() : stats_.instructions;
}

void Iss::syncBusClock() {
  if (bus_ == nullptr) {
    return;
  }
  if (private_mode_) {
    // Private slice: the advance is recorded, not performed — the shared
    // clock must only move at this core's sequential dispatch slot.
    // Monotone per core, so the latest time subsumes the earlier ones.
    deferred_advance_ = localTime();
    return;
  }
  // Lazy time advancement: devices jump to this core's local time in one
  // call. With decoupled initiators sharing the bus the call is a no-op
  // when another core already advanced it further (LT skew, bounded by
  // the kernel quantum).
  bus_->advanceTo(localTime());
}

void Iss::beginPrivateSlice() {
  CABT_CHECK(!private_mode_, "private slice already open");
  private_mode_ = true;
  bailed_shared_ = false;
  skipped_samples_ = 0;
  deferred_advance_ = 0;
  ++stats_.private_slices;
}

bool Iss::commitPrivateSlice() {
  CABT_CHECK(private_mode_, "no private slice open");
  private_mode_ = false;
  // The certificate (IrqSource::quiescent) justified skipping the
  // boundary samples; only a cross-core write to *this* core's interrupt
  // controller could have revoked it since — an access pattern the
  // parallel contract forbids. Fail loudly rather than diverge silently.
  if (skipped_samples_ > 0) {
    CABT_CHECK(irq_ != nullptr && irq_->quiescent(),
               "private-slice certificate revoked mid-round (cross-core "
               "interrupt-controller write?)");
  }
  if (bus_ != nullptr && deferred_advance_ > 0) {
    bus_->advanceTo(deferred_advance_);
  }
  const bool bailed = bailed_shared_;
  bailed_shared_ = false;
  if (bailed) {
    ++stats_.private_bails;
  }
  return bailed;
}

bool Iss::touchesShared(const trc::Instr& in) const {
  if (bus_ == nullptr) {
    return false;
  }
  switch (in.opc) {
    case Opc::kLdw:
    case Opc::kLdh:
    case Opc::kLdhu:
    case Opc::kLdb:
    case Opc::kLdbu:
    case Opc::kLda:
    case Opc::kStw:
    case Opc::kSth:
    case Opc::kStb:
    case Opc::kSta:
      // Every TRC32 memory instruction addresses a_[ra] + imm, so the
      // effective address is computable without executing anything.
      return bus_->covers(a_[in.ra] + static_cast<uint32_t>(in.imm));
    default:
      return false;
  }
}

void Iss::maybeTakeIrq() {
  if (irq_ == nullptr || stop_ != StopReason::kRunning) {
    return;
  }
  if (private_mode_) {
    // The quiescence certificate taken at privateSliceReady() guarantees
    // this sample returns nullopt whatever was raised meanwhile, and
    // stays valid until one of this core's own (bailing) bus writes.
    // Only its bus-clock advance is observable — record it for replay at
    // the sequential dispatch slot.
    ++skipped_samples_;
    syncBusClock();  // records the deferred advance in private mode
    return;
  }
  syncBusClock();  // interrupt state is sampled at this core's local time
  const std::optional<uint32_t> vector = irq_->takeIrq(localTime());
  if (!vector.has_value()) {
    return;
  }
  a_[kIrqLinkRegister] = pc_;
  pc_ = *vector;
  ++stats_.irqs_taken;
  if (config_.model_timing) {
    committed_cycles_ += config_.irq_entry_cycles;
    stats_.irq_entry_cycles += config_.irq_entry_cycles;
  }
  if (trace_sink_ != nullptr) {
    // Sequential path only: private slices returned above, so this
    // never runs on a worker thread.
    trace_sink_->instant(trace_lane_, "irq", localTime(), "vector", *vector);
  }
}

bool Iss::applyDueFaults() {
  // Runs in private slices too: worker-thread prefixes are real committed
  // execution, so core-private faults must land there as well. Everything
  // below touches only core-private state (the kMemWord bus check is
  // covers(), which private mode may call); no trace-sink writes — the
  // campaign emits the timeline instants post-run from the fired log.
  bool fired = false;
  const uint64_t now = localTime();
  while (const fi::CoreFault* f = injector_->take(now)) {
    fi::FiredFault rec;
    rec.fault = *f;
    rec.at = now;
    rec.pc = pc_;
    switch (f->kind) {
      case fi::CoreFaultKind::kDataReg:
        rec.before = d_[f->index];
        d_[f->index] ^= f->mask;
        rec.after = d_[f->index];
        break;
      case fi::CoreFaultKind::kAddrReg:
        rec.before = a_[f->index];
        a_[f->index] ^= f->mask;
        rec.after = a_[f->index];
        break;
      case fi::CoreFaultKind::kPc:
        rec.before = pc_;
        pc_ = f->mask != 0 ? pc_ ^ f->mask : f->addr;
        rec.after = pc_;
        break;
      case fi::CoreFaultKind::kMemWord: {
        CABT_CHECK(bus_ == nullptr || !bus_->covers(f->addr),
                   "memory fault at " << hex32(f->addr)
                                      << " targets a device window; use a "
                                         "bus-error or stall fault instead");
        for (const auto& [lo, hi] : exec_ranges_) {
          CABT_CHECK(f->addr < lo || f->addr >= hi,
                     "memory fault at " << hex32(f->addr)
                                        << " would corrupt code (executable "
                                           "range "
                                        << hex32(lo) << ".." << hex32(hi)
                                        << "); the block graph is immutable");
        }
        rec.before = mem_.read(f->addr, 4);
        rec.after = rec.before ^ f->mask;
        mem_.write(f->addr, rec.after, 4);
        break;
      }
    }
    injector_->recordFired(rec);
    fired = true;
  }
  return fired;
}

bool Iss::checkDebugBreak() {
  if (skip_breakpoint_at_.has_value() && *skip_breakpoint_at_ == pc_) {
    // Resume over the breakpoint we stopped at: this call is immediately
    // followed by the instruction's execution. The skip is keyed to the
    // stop address so an interrupt redirecting pc_ to the handler first
    // (with its own breakpoint) still stops there, and the skip survives
    // until control returns to the original instruction.
    skip_breakpoint_at_.reset();
    return false;
  }
  if (breakpoints_.count(pc_) == 0) {
    return false;
  }
  stop_ = StopReason::kDebugBreak;
  skip_breakpoint_at_ = pc_;  // the resume executes this instruction
  return true;
}

bool Iss::blockHasBreakpoint(const core::ExecBlock& block) const {
  const auto it = breakpoints_.lower_bound(block.addr());
  return it != breakpoints_.end() && *it <= block.instrs().back().addr;
}

void Iss::icacheAccess(uint32_t addr) {
  ++stats_.icache_accesses;
  if (!icache_.access(addr)) {
    ++stats_.icache_misses;
    committed_cycles_ += desc_.icache.miss_penalty;
    stats_.cache_penalty += desc_.icache.miss_penalty;
    current_block_.cache_penalty += desc_.icache.miss_penalty;
  }
}

void Iss::icacheAccessTagged(uint32_t set, uint32_t want) {
  ++stats_.icache_accesses;
  if (!icache_.accessTagged(set, want)) {
    ++stats_.icache_misses;
    committed_cycles_ += desc_.icache.miss_penalty;
    stats_.cache_penalty += desc_.icache.miss_penalty;
    current_block_.cache_penalty += desc_.icache.miss_penalty;
  }
}

void Iss::commitBlock() {
  const uint64_t pipeline = live_pipe_;
  committed_cycles_ += pipeline;
  stats_.pipeline_cycles += pipeline;
  current_block_.pipeline_cycles = static_cast<uint32_t>(pipeline);
  if (trace_blocks_) {
    block_trace_.push_back(current_block_);
  }
  live_pipe_ = 0;
  in_block_ = false;
  stats_.cycles = committed_cycles_;
}

void Iss::finishBlock() {
  if (!in_block_) {
    return;
  }
  commitBlock();
  timer_.reset();
  have_line_ = false;
}

StopReason Iss::step() {
  if (stop_ == StopReason::kDebugBreak) {
    stop_ = StopReason::kRunning;  // resume over the breakpoint
  }
  if (stop_ != StopReason::kRunning) {
    return stop_;
  }
  if (stats_.instructions >= config_.max_instructions) {
    stop_ = StopReason::kMaxInstructions;
    return stop_;
  }
  // Basic-block boundary: commit the open block, then sample the
  // interrupt input — the only points where interrupts are taken, so the
  // stepping engine and the block-dispatch engine accept every interrupt
  // at the identical cycle count.
  if (isLeader(pc_)) {
    if (in_block_) {
      finishBlock();
    }
    observeBoundary();
    // The stepping loop's quantum-yield check runs before step(), so this
    // epoch is already known not to yield: fault injection lands here,
    // matching the block engines' after-yield-check placement.
    pollFaults();
    maybeTakeIrq();
  }
  if (checkDebugBreak()) {
    return stop_;
  }
  const Instr& instr = fetch(pc_);
  if (private_mode_ && touchesShared(instr)) {
    // Private-slice bail, before any of this step's state changes: the
    // pc rests on the offending instruction and the sequential drain
    // re-enters step() with a bit-identical core.
    bailed_shared_ = true;
    return StopReason::kCycleLimit;  // stop_ stays kRunning: resumable
  }

  if (config_.model_timing) {
    if (!in_block_ || isLeader(pc_)) {
      finishBlock();
      current_block_ = BlockRecord{};
      current_block_.addr = pc_;
      in_block_ = true;
      ++stats_.blocks;
    }
    // Instruction fetch: one cache access per distinct consecutive line
    // within the block (the cache-analysis-block rule).
    if (icacheOn()) {
      const uint32_t line = desc_.icache.lineOf(pc_);
      if (!have_line_ || line != last_line_) {
        have_line_ = true;
        last_line_ = line;
        icacheAccess(pc_);
      }
    }
    timer_.issue(instr.timedOp());
    live_pipe_ = timer_.cycles();
  }

  execute(instr);
  ++stats_.instructions;
  if (stop_ == StopReason::kHalted) {
    finishBlock();
    syncBusClock();
  }
  return stop_;
}

void Iss::dispatchBlock(core::ExecBlock& block) {
  ++block.exec_count;
  ++stats_.cached_blocks;
  const bool timing = config_.model_timing;
  if (timing) {
    current_block_ = BlockRecord{};
    current_block_.addr = block.addr();
    in_block_ = true;
    ++stats_.blocks;
  }
  const size_t n = block.instrs().size();
  for (size_t i = 0; i < n; ++i) {
    const Instr& instr = block.instrs()[i];
    if (timing) {
      if (icacheOn() && block.new_line()[i] != 0) {
        icacheAccess(instr.addr);
      }
      live_pipe_ = block.cum_cycles()[i];
    }
    execute(instr);
    ++stats_.instructions;
    if (stop_ != StopReason::kRunning) {
      break;  // HALT or BKPT mid-block; live_pipe_ holds the partial cost
    }
  }
  if (stop_ == StopReason::kHalted) {
    finishBlock();
    syncBusClock();
  }
}

template <bool Timing, bool ICache>
void Iss::bailOutOfBlockT(core::ExecBlock& block, size_t i) {
  bailed_shared_ = true;
  // Instructions [0, i) executed; pc_ already rests on instruction i
  // (interior instructions are straight-line by block construction).
  // Rebuild the stepping engine's warm view so the drain's step()
  // resumes mid-block bit-exactly: replayed issue schedule, live_pipe_
  // at the partial block's cost, line tracking at instruction i-1 (the
  // icache touch for instruction i has not happened yet — step() will
  // perform it iff i starts a new consecutive line, which is exactly
  // the block cache's precomputed new_line rule).
  if constexpr (Timing) {
    timer_.reset();
    for (size_t j = 0; j < i; ++j) {
      timer_.issue(block.instrs()[j].timedOp());
    }
    live_pipe_ = timer_.cycles();
    if constexpr (ICache) {
      have_line_ = true;
      last_line_ = desc_.icache.lineOf(block.instrs()[i - 1].addr);
    }
  }
}

template <bool Timing, bool ICache, bool BranchX, bool Bail>
void Iss::dispatchBlockT(core::ExecBlock& block) {
  ++block.exec_count;
  ++stats_.cached_blocks;
  if constexpr (Timing) {
    current_block_ = BlockRecord{};
    current_block_.addr = block.addr();
    in_block_ = true;
    ++stats_.blocks;
  }
  const Instr* instrs = block.instrs().data();
  const uint32_t* cum = block.cum_cycles().data();
  const uint8_t* new_line = ICache ? block.new_line().data() : nullptr;
  const uint32_t* line_set = ICache ? block.line_set().data() : nullptr;
  const uint32_t* line_tag = ICache ? block.line_tag().data() : nullptr;
  const size_t n = block.instrs().size();
  for (size_t i = 0; i < n; ++i) {
    const Instr& instr = instrs[i];
    if constexpr (Bail) {
      // i == 0 was tested by the caller before the block bookkeeping.
      if (i > 0 && touchesShared(instr)) {
        bailOutOfBlockT<Timing, ICache>(block, i);
        return;
      }
    }
    if constexpr (ICache) {
      if (new_line[i] != 0) {
        icacheAccessTagged(line_set[i], line_tag[i]);
      }
    }
    if constexpr (Timing) {
      live_pipe_ = cum[i];
    }
    executeT<BranchX>(instr);
    ++stats_.instructions;
    if (stop_ != StopReason::kRunning) {
      break;  // HALT or BKPT mid-block; live_pipe_ holds the partial cost
    }
  }
  if (stop_ == StopReason::kHalted) {
    finishBlock();
    syncBusClock();
  }
}

int32_t Iss::resolveNext(core::ExecBlock& block) {
  if (stop_ != StopReason::kRunning) {
    return -1;
  }
  const std::vector<core::ExecBlock>& blocks = cache_->blocks();
  if (block.target() >= 0 &&
      pc_ == blocks[static_cast<size_t>(block.target())].addr()) {
    ++block.taken_count;
    return block.target();
  }
  if (block.fall_through() >= 0 &&
      pc_ == blocks[static_cast<size_t>(block.fall_through())].addr()) {
    ++block.ft_count;
    return block.fall_through();
  }
  return -1;  // indirect target (or a transfer out of .text)
}

template <bool Timing>
int32_t Iss::afterBlock(core::ExecBlock& block) {
  const int32_t next = resolveNext(block);
  if constexpr (Timing) {
    if (next < 0 && stop_ == StopReason::kRunning &&
        !graph_.isLeaderFast(pc_)) {
      // Indirect transfer into the middle of a block: per-instruction
      // semantics keep the current block open across the jump, so restore
      // the stepping engine's view of it (warm issue schedule and line
      // tracking) before falling back.
      timer_.reset();
      for (const Instr& instr : block.instrs()) {
        timer_.issue(instr.timedOp());
      }
      live_pipe_ = timer_.cycles();
      if (icacheOn()) {
        have_line_ = true;
        last_line_ = desc_.icache.lineOf(block.instrs().back().addr);
      }
    }
  }
  return next;
}

template <bool Timing, bool ICache, bool BranchX>
int32_t Iss::dispatchTraceT(core::Trace& trace, uint64_t time_limit,
                            bool* epoch_done) {
  // Admission (runChainedT) guaranteed the whole trace fits the
  // instruction budget, so no budget test survives inside the trace.
  ++trace.dispatches;
  ++stats_.trace_dispatches;
  std::vector<core::ExecBlock>& blocks = cache_->blocks();
  const Instr* instrs = trace.instrs.data();
  const uint32_t* cum = trace.cum_cycles.data();
  const uint8_t* new_line = ICache ? trace.new_line.data() : nullptr;
  const uint32_t* line_set = ICache ? trace.line_set.data() : nullptr;
  const uint32_t* line_tag = ICache ? trace.line_tag.data() : nullptr;
  const core::TraceSegment* segs = trace.segs.data();
  const size_t num_segs = trace.segs.size();
  for (size_t s = 0;; ++s) {
    const core::TraceSegment& seg = segs[s];
    core::ExecBlock& block = blocks[static_cast<size_t>(seg.block)];
    ++block.exec_count;
    ++block.trace_execs;
    ++stats_.cached_blocks;
    ++stats_.trace_blocks;
    if constexpr (Timing) {
      current_block_ = BlockRecord{};
      current_block_.addr = block.addr();
      in_block_ = true;
      ++stats_.blocks;
    }
    const uint32_t first = seg.first;
    const uint32_t count = seg.count;
    for (uint32_t i = 0; i < count; ++i) {
      const Instr& instr = instrs[first + i];
      if constexpr (ICache) {
        if (new_line[first + i] != 0) {
          icacheAccessTagged(line_set[first + i], line_tag[first + i]);
        }
      }
      if constexpr (Timing) {
        live_pipe_ = cum[first + i];
      }
      executeT<BranchX>(instr);
      ++stats_.instructions;
      if (stop_ != StopReason::kRunning) {
        if (stop_ == StopReason::kHalted) {
          finishBlock();
          syncBusClock();
        }
        return -1;  // HALT or BKPT mid-block
      }
    }
    if (s + 1 == num_segs) {
      return afterBlock<Timing>(block);  // chain off the trace end
    }
    // Original block boundary inside the trace: the identical epoch
    // sequence the outer loop performs between two chained blocks —
    // lazy commit, quantum yield, interrupt sample, then the guard.
    finishBlock();
    observeBoundary();
    if (localTime() >= time_limit) {
      return kDispatchYield;  // resumable: pc_ rests on the next leader
    }
    pollFaults();  // a pc-redirecting fault fails the guard below
    if (irq_ != nullptr) {
      maybeTakeIrq();
    }
    if (pc_ != segs[s + 1].entry_addr) {
      // Guard failure: the branch went the non-dominant way or an
      // interrupt redirected control. Bail to block granularity; the
      // actual successor may still chain. This boundary's epoch has
      // already run — the outer loop must not repeat it.
      ++stats_.guard_bails;
      if (trace_sink_ != nullptr) {
        trace_sink_->instant(trace_lane_, "guard_bail", localTime(), "addr",
                             block.addr());
      }
      *epoch_done = true;
      return resolveNext(block);
    }
  }
}

template <bool Timing, bool ICache, bool BranchX, bool Bail>
StopReason Iss::runChainedT(uint64_t time_limit, bool traces,
                            bool threaded) {
  core::BlockCache& cache = blockCache();
  std::vector<core::ExecBlock>& blocks = cache.blocks();
  const core::TraceOptions trace_opts{config_.trace_max_blocks,
                                      config_.trace_max_instrs};
  const core::ThreadedBinder binder =
      threaded ? threadedBinder() : core::ThreadedBinder{};
  int32_t next_idx = -1;
  bool epoch_done = false;
  while (stop_ == StopReason::kRunning) {
    if (stats_.instructions >= config_.max_instructions) {
      stop_ = StopReason::kMaxInstructions;
      break;
    }
    if constexpr (Bail) {
      if (bailed_shared_) {
        return StopReason::kCycleLimit;  // set by the step() fallback
      }
    }
    core::ExecBlock* block =
        next_idx >= 0 ? &blocks[static_cast<size_t>(next_idx)] : nullptr;
    next_idx = -1;
    bool via_chain = block != nullptr;
    if (epoch_done) {
      // A trace bailed *after* running this boundary's commit/yield/
      // interrupt epoch: resolve the block and dispatch directly, the
      // way the epoch branch below would have continued.
      epoch_done = false;
      if (block == nullptr && !in_block_) {
        block = cache.lookup(pc_);
      }
    } else if (block != nullptr || graph_.isLeaderFast(pc_)) {
      // A chained successor is by construction a leader the pc has
      // already reached; otherwise one bitmap probe decides whether this
      // is a block boundary. A still-open block is committed lazily,
      // exactly when the stepping engine would: at the first instruction
      // of the next leader.
      if (in_block_) {
        finishBlock();
      }
      observeBoundary();
      if (localTime() >= time_limit) {
        return StopReason::kCycleLimit;  // resumable: stop_ stays running
      }
      if (pollFaults() && block != nullptr && pc_ != block->addr()) {
        block = nullptr;  // fault redirected pc_: the chained edge is stale
        via_chain = false;
      }
      if (irq_ != nullptr) {
        maybeTakeIrq();  // may redirect pc_ to the vector (also a leader)
        if (block != nullptr && pc_ != block->addr()) {
          block = nullptr;  // redirected: the chained edge no longer holds
          via_chain = false;
        }
      }
      if (block == nullptr && !in_block_) {
        block = cache.lookup(pc_);
      }
    }
    if (block != nullptr && !breakpoints_.empty() &&
        block->has_breakpoint != 0) {
      // Never dispatch a cached block containing a breakpoint, however
      // hot: the stepping fallback stops exactly on the breakpoint.
      block = nullptr;
    }
    if (block == nullptr || stats_.instructions + block->instrs().size() >
                                config_.max_instructions) {
      // Per-instruction fallback: mid-block landing addresses, blocks
      // with breakpoints and the final instructions before the
      // instruction limit.
      step();
      continue;
    }
    if constexpr (Bail) {
      // First instruction of the block, tested before any block-entry
      // bookkeeping: on a bail here the drain re-dispatches the whole
      // block from scratch. Interior instructions are tested inside
      // dispatchBlockT, which repairs the half-executed block instead.
      if (touchesShared(block->instrs()[0])) {
        bailed_shared_ = true;
        return StopReason::kCycleLimit;
      }
    }
    if (via_chain) {
      // Counted only for dispatches that actually go through the cache
      // (not chained arrivals refused for breakpoints or budget), so
      // chain_entries never exceeds exec_count.
      ++stats_.chain_hits;
      ++block->chain_entries;
    }
    if (traces) {
      if (block->trace == core::kTraceUnformed &&
          block->exec_count >= config_.trace_threshold &&
          block->exec_count >= block->trace_retry_at) {
        block->trace = cache.formTrace(
            static_cast<int32_t>(block - blocks.data()), trace_opts);
        if (trace_sink_ != nullptr && block->trace >= 0) {
          // Sequential path only: private slices run with traces off.
          trace_sink_->instant(trace_lane_, "trace_form", localTime(),
                               "addr", block->addr());
        }
        if (block->trace == core::kTraceDeclined) {
          // A refusal can be transient (breakpointed successor, not yet
          // skewed branch statistics): re-attempt with geometric
          // backoff instead of declining forever.
          block->trace = core::kTraceUnformed;
          block->trace_retry_at = block->exec_count * 2;
        }
      }
      if (block->trace >= 0) {
        core::Trace& trace =
            cache.traces()[static_cast<size_t>(block->trace)];
        if ((breakpoints_.empty() || !traceHasBreakpoint(trace)) &&
            stats_.instructions + trace.total_instrs <=
                config_.max_instructions) {
          if (threaded && trace.threaded == core::kTraceUnformed) {
            // A formed trace is hot by definition (it is past
            // trace_threshold dispatches): lower it on this entry.
            trace.threaded = cache.lowerTraceThreaded(
                block->trace, binder, config_.threaded_budget_ops);
            if (trace.threaded >= 0) {
              ++stats_.threaded_lowerings;
            } else {
              ++stats_.threaded_declined;
            }
          }
          if (threaded && trace.threaded >= 0) {
            const uint64_t before = stats_.instructions;
            next_idx = dispatchThreadedTraceT<Timing>(
                trace, cache.threaded(trace.threaded), time_limit,
                &epoch_done);
            stats_.threaded_instrs += stats_.instructions - before;
          } else {
            next_idx = dispatchTraceT<Timing, ICache, BranchX>(
                trace, time_limit, &epoch_done);
          }
          if (next_idx == kDispatchYield) {
            return StopReason::kCycleLimit;
          }
          continue;
        }
      }
    }
    if (threaded) {
      if (block->threaded == core::kTraceUnformed &&
          block->exec_count >= config_.threaded_threshold) {
        block->threaded = cache.lowerBlockThreaded(
            static_cast<int32_t>(block - blocks.data()), binder,
            config_.threaded_budget_ops);
        if (block->threaded >= 0) {
          ++stats_.threaded_lowerings;
        } else {
          ++stats_.threaded_declined;
        }
      }
      if (block->threaded >= 0) {
        const uint64_t before = stats_.instructions;
        dispatchThreadedBlockT<Timing>(*block,
                                       cache.threaded(block->threaded));
        stats_.threaded_instrs += stats_.instructions - before;
        next_idx = afterBlock<Timing>(*block);
        continue;
      }
    }
    dispatchBlockT<Timing, ICache, BranchX, Bail>(*block);
    if constexpr (Bail) {
      if (bailed_shared_) {
        // Mid-block bail: the block did not retire — the stepping view
        // is warm (bailOutOfBlockT) and the drain resumes via step().
        return StopReason::kCycleLimit;
      }
    }
    next_idx = afterBlock<Timing>(*block);
  }
  return stop_;
}

StopReason Iss::run() { return runLoop(~static_cast<uint64_t>(0)); }

StopReason Iss::runUntil(uint64_t time_limit) { return runLoop(time_limit); }

StopReason Iss::runLoop(uint64_t time_limit) {
  if (stop_ == StopReason::kDebugBreak) {
    stop_ = StopReason::kRunning;  // resume over the breakpoint
  }
  if (!config_.use_block_cache) {
    while (stop_ == StopReason::kRunning) {
      if (stats_.instructions >= config_.max_instructions) {
        stop_ = StopReason::kMaxInstructions;
        break;
      }
      // Quantum yields happen at the same boundaries as in the block
      // engine, before the interrupt sample of the boundary.
      if (isLeader(pc_) && localTime() >= time_limit) {
        return StopReason::kCycleLimit;
      }
      step();
      if (bailed_shared_) {
        return StopReason::kCycleLimit;  // private-slice shared touch
      }
    }
    return stop_;
  }
  if (private_mode_) {
    // Private slices always run the Bail-instrumented chained engine
    // (without trace formation or threaded programs), whatever
    // dispatch_mode says: all engines are architecturally bit-identical,
    // and the sequential drain finishes the slice on the configured
    // engine.
    return selectChainedT<true>(time_limit, /*traces=*/false,
                                /*threaded=*/false);
  }
  if (config_.dispatch_mode == DispatchMode::kLookup) {
    return runLoopLookup(time_limit);
  }
  return selectChainedT<false>(
      time_limit, config_.dispatch_mode != DispatchMode::kChained,
      config_.dispatch_mode == DispatchMode::kThreaded);
}

template <bool Bail>
StopReason Iss::selectChainedT(uint64_t time_limit, bool traces,
                               bool threaded) {
  if (!config_.model_timing) {
    return runChainedT<false, false, false, Bail>(time_limit, traces,
                                                  threaded);
  }
  const bool with_extras = config_.model_branch_extras;
  if (icacheOn()) {
    return with_extras ? runChainedT<true, true, true, Bail>(
                             time_limit, traces, threaded)
                       : runChainedT<true, true, false, Bail>(
                             time_limit, traces, threaded);
  }
  return with_extras ? runChainedT<true, false, true, Bail>(
                           time_limit, traces, threaded)
                     : runChainedT<true, false, false, Bail>(
                           time_limit, traces, threaded);
}

StopReason Iss::runLoopLookup(uint64_t time_limit) {
  while (stop_ == StopReason::kRunning) {
    if (stats_.instructions >= config_.max_instructions) {
      stop_ = StopReason::kMaxInstructions;
      break;
    }
    // A still-open block is committed lazily, exactly when the stepping
    // engine would: at the first instruction of the next leader.
    // (Deliberately the pre-chaining ordered-set probe, not the bitmap:
    // this loop is the dispatch ablation's measured baseline.)
    const bool boundary = graph_.leaders().count(pc_) != 0;
    if (boundary && in_block_) {
      finishBlock();
    }
    if (boundary) {
      observeBoundary();
      if (localTime() >= time_limit) {
        return StopReason::kCycleLimit;  // resumable: stop_ stays running
      }
      pollFaults();  // a pc redirect is caught by the lookup below
      maybeTakeIrq();  // may redirect pc_ to the vector (also a leader)
    }
    core::ExecBlock* block = in_block_ ? nullptr : blockCache().lookup(pc_);
    if (block != nullptr && !breakpoints_.empty() &&
        block->has_breakpoint != 0) {
      // Never dispatch a cached block containing a breakpoint, however
      // hot: the stepping fallback stops exactly on the breakpoint.
      block = nullptr;
    }
    if (block == nullptr ||
        stats_.instructions + block->instrs().size() >
            config_.max_instructions) {
      // Per-instruction fallback: mid-block landing addresses, blocks
      // with breakpoints and the final instructions before the
      // instruction limit.
      step();
      continue;
    }
    dispatchBlock(*block);
    if (stop_ == StopReason::kRunning && config_.model_timing &&
        graph_.leaders().count(pc_) == 0) {
      // Indirect transfer into the middle of a block: per-instruction
      // semantics keep the current block open across the jump, so restore
      // the stepping engine's view of it (warm issue schedule and line
      // tracking) before falling back.
      timer_.reset();
      for (const Instr& instr : block->instrs()) {
        timer_.issue(instr.timedOp());
      }
      live_pipe_ = timer_.cycles();
      if (icacheOn()) {
        have_line_ = true;
        last_line_ = desc_.icache.lineOf(block->instrs().back().addr);
      }
    }
  }
  return stop_;
}

namespace {

/// IssStats is serialized field by field, in declaration order; a new
/// counter extends the end of this list (and bumps the snapshot format
/// version in src/snap).
void saveStats(serial::Writer& w, const IssStats& s) {
  w.u64(s.instructions);
  w.u64(s.cycles);
  w.u64(s.pipeline_cycles);
  w.u64(s.branch_extra);
  w.u64(s.cache_penalty);
  w.u64(s.blocks);
  w.u64(s.icache_accesses);
  w.u64(s.icache_misses);
  w.u64(s.cond_branches);
  w.u64(s.cond_taken);
  w.u64(s.mispredicts);
  w.u64(s.io_reads);
  w.u64(s.io_writes);
  w.u64(s.irqs_taken);
  w.u64(s.irq_entry_cycles);
  w.u64(s.cached_blocks);
  w.u64(s.chain_hits);
  w.u64(s.trace_dispatches);
  w.u64(s.trace_blocks);
  w.u64(s.guard_bails);
  w.u64(s.private_slices);
  w.u64(s.private_bails);
  w.u64(s.threaded_dispatches);
  w.u64(s.threaded_instrs);
  w.u64(s.threaded_lowerings);
  w.u64(s.threaded_declined);
}

void restoreStats(serial::Reader& r, IssStats& s) {
  s.instructions = r.u64();
  s.cycles = r.u64();
  s.pipeline_cycles = r.u64();
  s.branch_extra = r.u64();
  s.cache_penalty = r.u64();
  s.blocks = r.u64();
  s.icache_accesses = r.u64();
  s.icache_misses = r.u64();
  s.cond_branches = r.u64();
  s.cond_taken = r.u64();
  s.mispredicts = r.u64();
  s.io_reads = r.u64();
  s.io_writes = r.u64();
  s.irqs_taken = r.u64();
  s.irq_entry_cycles = r.u64();
  s.cached_blocks = r.u64();
  s.chain_hits = r.u64();
  s.trace_dispatches = r.u64();
  s.trace_blocks = r.u64();
  s.guard_bails = r.u64();
  s.private_slices = r.u64();
  s.private_bails = r.u64();
  s.threaded_dispatches = r.u64();
  s.threaded_instrs = r.u64();
  s.threaded_lowerings = r.u64();
  s.threaded_declined = r.u64();
}

}  // namespace

void Iss::saveState(serial::Writer& w) const {
  CABT_CHECK(!private_mode_,
             "cannot snapshot a core inside an open private slice");
  w.tag("iss");
  // Compatibility record: the architectural configuration and a program
  // fingerprint. Restore requires an identical pair — a snapshot taken
  // at one detail level or of one program must not restore into another.
  // Dispatch mode / block-cache knobs are deliberately absent: they are
  // host-side strategy, and a snapshot moves freely between them.
  w.b(config_.model_timing);
  w.b(config_.model_branch_extras);
  w.b(icacheOn());
  w.u32(config_.irq_entry_cycles);
  w.u64(config_.max_instructions);
  // The artifact caches the fingerprint (same bytes as the
  // historical per-save computation, see program_artifact.cpp).
  w.u64(artifact_->fingerprint());
  // Architectural core state.
  w.u32(pc_);
  w.u8(static_cast<uint8_t>(stop_));
  for (const uint32_t v : d_) {
    w.u32(v);
  }
  for (const uint32_t v : a_) {
    w.u32(v);
  }
  // Lazy-commit cycle accounting and the open block's residue.
  w.u64(committed_cycles_);
  w.u64(live_pipe_);
  w.b(in_block_);
  w.b(have_line_);
  w.u32(last_line_);
  w.u32(current_block_.addr);
  w.u32(current_block_.pipeline_cycles);
  w.u32(current_block_.branch_extra);
  w.u32(current_block_.cache_penalty);
  timer_.saveState(w);
  icache_.saveState(w);
  saveStats(w, stats_);
  // Debug state: the breakpoint set and a pending step-over.
  w.u32(static_cast<uint32_t>(breakpoints_.size()));
  for (const uint32_t addr : breakpoints_) {
    w.u32(addr);
  }
  w.b(skip_breakpoint_at_.has_value());
  w.u32(skip_breakpoint_at_.value_or(0));
  mem_.saveState(w);
}

void Iss::restoreState(serial::Reader& r) {
  CABT_CHECK(!private_mode_,
             "cannot restore a core inside an open private slice");
  r.tag("iss");
  CABT_CHECK(r.b() == config_.model_timing &&
                 r.b() == config_.model_branch_extras && r.b() == icacheOn(),
             "snapshot detail level does not match this core's config");
  CABT_CHECK(r.u32() == config_.irq_entry_cycles &&
                 r.u64() == config_.max_instructions,
             "snapshot limits do not match this core's config");
  CABT_CHECK(r.u64() == artifact_->fingerprint(),
             "snapshot program does not match this core's image");
  pc_ = r.u32();
  stop_ = static_cast<StopReason>(r.u8());
  for (uint32_t& v : d_) {
    v = r.u32();
  }
  for (uint32_t& v : a_) {
    v = r.u32();
  }
  committed_cycles_ = r.u64();
  live_pipe_ = r.u64();
  in_block_ = r.b();
  have_line_ = r.b();
  last_line_ = r.u32();
  current_block_.addr = r.u32();
  current_block_.pipeline_cycles = r.u32();
  current_block_.branch_extra = r.u32();
  current_block_.cache_penalty = r.u32();
  timer_.restoreState(r);
  icache_.restoreState(r);
  restoreStats(r, stats_);
  breakpoints_.clear();
  const uint32_t num_bps = r.u32();
  for (uint32_t i = 0; i < num_bps; ++i) {
    breakpoints_.insert(r.u32());
  }
  const bool have_skip = r.b();
  const uint32_t skip_addr = r.u32();
  skip_breakpoint_at_ =
      have_skip ? std::optional<uint32_t>(skip_addr) : std::nullopt;
  mem_.restoreState(r);
  // Derived-state revalidation: the predecoded cache (if one exists) is
  // still a valid decode of the immutable image, but its per-block
  // breakpoint flags mirror the old breakpoint set — recompute every one
  // from the restored set. Trace formation state (exec counts, formed
  // superblocks) and lowered threaded-code programs stay warm: neither
  // traces nor threaded programs ever dispatch through a flagged block
  // (the refusal is a dispatch-time flag test, not a lowering-time
  // decision), so correctness needs only the flags. A cold restore has
  // no cache at all and re-lowers lazily once blocks re-heat.
  if (cache_ != nullptr) {
    for (core::ExecBlock& block : cache_->blocks()) {
      block.has_breakpoint = blockHasBreakpoint(block) ? 1 : 0;
    }
  }
  // No private slice survives a snapshot boundary.
  bailed_shared_ = false;
  deferred_advance_ = 0;
  skipped_samples_ = 0;
}

void Iss::digestState(serial::Writer& w) const {
  w.u32(pc_);
  w.u8(static_cast<uint8_t>(stop_));
  for (const uint32_t v : d_) {
    w.u32(v);
  }
  for (const uint32_t v : a_) {
    w.u32(v);
  }
  w.u64(committed_cycles_);
  w.u64(live_pipe_);
  w.b(in_block_);
  w.b(have_line_);
  // last_line_ is meaningful only while a line is tracked; when it is
  // not, the engines leave different stale residue behind (the stepping
  // engine writes it per line, the block engines only on mid-block
  // re-warm) — digest the live value only.
  w.u32(have_line_ ? last_line_ : 0);
  timer_.saveState(w);
  icache_.saveState(w);
  // Architectural counters only (identical across dispatch engines).
  w.u64(stats_.instructions);
  w.u64(stats_.cycles);
  w.u64(stats_.pipeline_cycles);
  w.u64(stats_.branch_extra);
  w.u64(stats_.cache_penalty);
  w.u64(stats_.blocks);
  w.u64(stats_.icache_accesses);
  w.u64(stats_.icache_misses);
  w.u64(stats_.cond_branches);
  w.u64(stats_.cond_taken);
  w.u64(stats_.mispredicts);
  w.u64(stats_.io_reads);
  w.u64(stats_.io_writes);
  w.u64(stats_.irqs_taken);
  w.u64(stats_.irq_entry_cycles);
  mem_.writeCanonical(w);
}

std::vector<HotBlock> Iss::hotBlocks(size_t n) const {
  std::vector<HotBlock> out;
  if (cache_ == nullptr) {
    return out;  // the block engine never ran
  }
  for (const core::ExecBlock* b : cache_->hottest(n)) {
    out.push_back({b->addr(), static_cast<uint32_t>(b->instrs().size()),
                   b->exec_count, b->chain_entries, b->trace_execs,
                   artifact_->symbols().describe(b->addr())});
  }
  return out;
}

void Iss::publishMetrics(obs::MetricsRegistry& reg,
                         const std::string& prefix) const {
  auto set = [&](const char* leaf, uint64_t v) {
    reg.setCounter(prefix + leaf, v);
  };
  set("instructions", stats_.instructions);
  set("cycles", stats_.cycles);
  set("pipeline_cycles", stats_.pipeline_cycles);
  set("branch_extra", stats_.branch_extra);
  set("cache_penalty", stats_.cache_penalty);
  set("blocks", stats_.blocks);
  set("icache_accesses", stats_.icache_accesses);
  set("icache_misses", stats_.icache_misses);
  set("cond_branches", stats_.cond_branches);
  set("cond_taken", stats_.cond_taken);
  set("mispredicts", stats_.mispredicts);
  set("io_reads", stats_.io_reads);
  set("io_writes", stats_.io_writes);
  set("irqs_taken", stats_.irqs_taken);
  set("irq_entry_cycles", stats_.irq_entry_cycles);
  set("cached_blocks", stats_.cached_blocks);
  set("chain_hits", stats_.chain_hits);
  set("trace_dispatches", stats_.trace_dispatches);
  set("trace_blocks", stats_.trace_blocks);
  set("guard_bails", stats_.guard_bails);
  set("private_slices", stats_.private_slices);
  set("private_bails", stats_.private_bails);
  set("threaded_dispatches", stats_.threaded_dispatches);
  set("threaded_instrs", stats_.threaded_instrs);
  set("threaded_lowerings", stats_.threaded_lowerings);
  set("threaded_declined", stats_.threaded_declined);
  reg.setGauge(prefix + "local_time", static_cast<double>(localTime()));
  if (cache_ != nullptr) {
    for (const core::ExecBlock* b : cache_->hottest(SIZE_MAX)) {
      reg.observe(prefix + "block_exec_counts", b->exec_count);
    }
  }
}

uint32_t Iss::loadMem(uint32_t addr, unsigned size, bool sign) {
  uint32_t v;
  if (bus_ != nullptr && bus_->covers(addr)) {
    // Safety net: a private slice must have bailed before reaching here
    // (the engines test touchesShared() pre-execution).
    CABT_CHECK(!private_mode_, "bus read escaped the private-slice bail");
    syncBusClock();
    v = bus_->read(addr, size);
    ++stats_.io_reads;
  } else {
    v = mem_.read(addr, size);
  }
  if (sign && size < 4) {
    v = static_cast<uint32_t>(signExtend(v, size * 8));
  }
  return v;
}

void Iss::storeMem(uint32_t addr, uint32_t value, unsigned size) {
  if (bus_ != nullptr && bus_->covers(addr)) {
    CABT_CHECK(!private_mode_, "bus write escaped the private-slice bail");
    syncBusClock();
    bus_->write(addr, value, size);
    ++stats_.io_writes;
  } else {
    mem_.write(addr, value, size);
  }
}

void Iss::execute(const Instr& in) {
  // The stepping engine resolves the branch-extra knob per call; the
  // templated dispatch loops bind executeT<BranchX> directly so the test
  // is hoisted out of the per-instruction path entirely.
  if (config_.model_timing && config_.model_branch_extras) {
    executeT<true>(in);
  } else {
    executeT<false>(in);
  }
}

template <bool BranchX>
void Iss::executeT(const Instr& in) {
  [[maybe_unused]] const arch::BranchModel& bm = desc_.branch;
  uint32_t next_pc = pc_ + in.size;

  const auto condBranch = [&](bool taken) {
    ++stats_.cond_branches;
    const bool predicted_taken = arch::BranchModel::predictsTaken(in.imm);
    if (taken) {
      ++stats_.cond_taken;
      next_pc = in.branchTarget();
    }
    if (predicted_taken != taken) {
      ++stats_.mispredicts;
    }
    if constexpr (BranchX) {
      const unsigned extra = bm.conditionalExtra(predicted_taken, taken);
      committed_cycles_ += extra;
      stats_.branch_extra += extra;
      current_block_.branch_extra += extra;
    }
  };
  const auto uncondExtra = [&] {
    if constexpr (BranchX) {
      const unsigned extra = bm.unconditionalExtra(in.cls());
      committed_cycles_ += extra;
      stats_.branch_extra += extra;
      current_block_.branch_extra += extra;
    }
  };

  switch (in.opc) {
    case Opc::kAdd:
      d_[in.rd] = d_[in.ra] + d_[in.rb];
      break;
    case Opc::kSub:
      d_[in.rd] = d_[in.ra] - d_[in.rb];
      break;
    case Opc::kAnd:
      d_[in.rd] = d_[in.ra] & d_[in.rb];
      break;
    case Opc::kOr:
      d_[in.rd] = d_[in.ra] | d_[in.rb];
      break;
    case Opc::kXor:
      d_[in.rd] = d_[in.ra] ^ d_[in.rb];
      break;
    case Opc::kShl:
      d_[in.rd] = d_[in.ra] << (d_[in.rb] & 31);
      break;
    case Opc::kShr:
      d_[in.rd] = d_[in.ra] >> (d_[in.rb] & 31);
      break;
    case Opc::kSar:
      d_[in.rd] = static_cast<uint32_t>(static_cast<int32_t>(d_[in.ra]) >>
                                        (d_[in.rb] & 31));
      break;
    case Opc::kMul:
      d_[in.rd] = d_[in.ra] * d_[in.rb];
      break;
    case Opc::kEq:
      d_[in.rd] = d_[in.ra] == d_[in.rb] ? 1 : 0;
      break;
    case Opc::kNe:
      d_[in.rd] = d_[in.ra] != d_[in.rb] ? 1 : 0;
      break;
    case Opc::kLt:
      d_[in.rd] = static_cast<int32_t>(d_[in.ra]) <
                          static_cast<int32_t>(d_[in.rb])
                      ? 1
                      : 0;
      break;
    case Opc::kGe:
      d_[in.rd] = static_cast<int32_t>(d_[in.ra]) >=
                          static_cast<int32_t>(d_[in.rb])
                      ? 1
                      : 0;
      break;
    case Opc::kLtu:
      d_[in.rd] = d_[in.ra] < d_[in.rb] ? 1 : 0;
      break;
    case Opc::kGeu:
      d_[in.rd] = d_[in.ra] >= d_[in.rb] ? 1 : 0;
      break;
    case Opc::kAddi:
      d_[in.rd] = d_[in.ra] + static_cast<uint32_t>(in.imm);
      break;
    case Opc::kMovi:
      d_[in.rd] = static_cast<uint32_t>(in.imm);
      break;
    case Opc::kMovh:
      d_[in.rd] = static_cast<uint32_t>(in.imm) << 16;
      break;
    case Opc::kMova:
      a_[in.rd] = d_[in.ra];
      break;
    case Opc::kMovd:
      d_[in.rd] = a_[in.ra];
      break;
    case Opc::kLea:
      a_[in.rd] = a_[in.ra] + static_cast<uint32_t>(in.imm);
      break;
    case Opc::kMovha:
      a_[in.rd] = static_cast<uint32_t>(in.imm) << 16;
      break;
    case Opc::kAdda:
      a_[in.rd] = a_[in.ra] + a_[in.rb];
      break;
    case Opc::kSuba:
      a_[in.rd] = a_[in.ra] - a_[in.rb];
      break;
    case Opc::kLdw:
      d_[in.rd] = loadMem(a_[in.ra] + static_cast<uint32_t>(in.imm), 4, false);
      break;
    case Opc::kLdh:
      d_[in.rd] = loadMem(a_[in.ra] + static_cast<uint32_t>(in.imm), 2, true);
      break;
    case Opc::kLdhu:
      d_[in.rd] = loadMem(a_[in.ra] + static_cast<uint32_t>(in.imm), 2, false);
      break;
    case Opc::kLdb:
      d_[in.rd] = loadMem(a_[in.ra] + static_cast<uint32_t>(in.imm), 1, true);
      break;
    case Opc::kLdbu:
      d_[in.rd] = loadMem(a_[in.ra] + static_cast<uint32_t>(in.imm), 1, false);
      break;
    case Opc::kLda:
      a_[in.rd] = loadMem(a_[in.ra] + static_cast<uint32_t>(in.imm), 4, false);
      break;
    case Opc::kStw:
      storeMem(a_[in.ra] + static_cast<uint32_t>(in.imm), d_[in.rd], 4);
      break;
    case Opc::kSth:
      storeMem(a_[in.ra] + static_cast<uint32_t>(in.imm), d_[in.rd], 2);
      break;
    case Opc::kStb:
      storeMem(a_[in.ra] + static_cast<uint32_t>(in.imm), d_[in.rd], 1);
      break;
    case Opc::kSta:
      storeMem(a_[in.ra] + static_cast<uint32_t>(in.imm), a_[in.rd], 4);
      break;
    case Opc::kJ:
    case Opc::kJ16:
      next_pc = in.branchTarget();
      uncondExtra();
      break;
    case Opc::kJl:
      a_[trc::kLinkRegister] = pc_ + in.size;
      next_pc = in.branchTarget();
      uncondExtra();
      break;
    case Opc::kJi:
      next_pc = a_[in.ra];
      uncondExtra();
      break;
    case Opc::kRet16:
      next_pc = a_[trc::kLinkRegister];
      uncondExtra();
      break;
    case Opc::kJeq:
      condBranch(d_[in.ra] == d_[in.rb]);
      break;
    case Opc::kJne:
      condBranch(d_[in.ra] != d_[in.rb]);
      break;
    case Opc::kJlt:
      condBranch(static_cast<int32_t>(d_[in.ra]) <
                 static_cast<int32_t>(d_[in.rb]));
      break;
    case Opc::kJge:
      condBranch(static_cast<int32_t>(d_[in.ra]) >=
                 static_cast<int32_t>(d_[in.rb]));
      break;
    case Opc::kJltu:
      condBranch(d_[in.ra] < d_[in.rb]);
      break;
    case Opc::kJgeu:
      condBranch(d_[in.ra] >= d_[in.rb]);
      break;
    case Opc::kJnz16:
      condBranch(d_[in.rd] != 0);
      break;
    case Opc::kJz16:
      condBranch(d_[in.rd] == 0);
      break;
    case Opc::kNop:
    case Opc::kNop16:
      break;
    case Opc::kHalt:
      stop_ = StopReason::kHalted;
      return;  // PC stays at the HALT instruction
    case Opc::kBkpt:
      stop_ = StopReason::kBreakpoint;
      pc_ += in.size;
      return;
    case Opc::kMov16:
      d_[in.rd] = d_[in.rb];
      break;
    case Opc::kAdd16:
      d_[in.rd] += d_[in.rb];
      break;
    case Opc::kSub16:
      d_[in.rd] -= d_[in.rb];
      break;
    case Opc::kMovi16:
      d_[in.rd] = static_cast<uint32_t>(in.imm);
      break;
    case Opc::kAddi16:
      d_[in.rd] += static_cast<uint32_t>(in.imm);
      break;
    default:
      CABT_FAIL("unhandled opcode in ISS: " << in.info().mnemonic);
  }
  pc_ = next_pc;
}

// ---- threaded-code backend (DispatchMode::kThreaded) -----------------
//
// One specialized host handler per opcode, in (Timing, BranchX) handler
// sets mirroring the runChainedT specialization ladder, with the icache
// line-group touch baked in per op at lowering (`Touch`: the block
// cache's new_line decision, so no runtime test survives). Each handler
// performs exactly the per-instruction sequence of dispatchBlockT —
// line-group touch, live pipeline cost, the instruction's semantics,
// retirement count — against fully predecoded operands, then returns the
// next record; control transfers, HALT/BKPT and the fall-through
// terminator return nullptr, which both ends the dispatch loop (no
// per-op stop-flag poll) and marks the original block boundary where the
// dispatcher applies every correction. Mid-block observables are
// preserved exactly: memory handlers see live_pipe_ already at this
// op's cumulative cost (the bus clock advances to localTime() on device
// access), the retirement count increments after the access (functional
// mode clocks the bus by instruction count), icache penalties and
// branch extras go to committed_cycles_ as they accrue, and interior
// ops do not touch the pc (nothing observes it between boundaries; the
// segment-ending op re-establishes it).

template <bool Timing, bool BranchX>
struct ThreadedHandlers {
  using Op = core::ThreadedOp;

  static Iss& cpu(void* p) { return *static_cast<Iss*>(p); }

  /// Per-op prologue in dispatchBlockT's order: the baked-in line-group
  /// touch, then the open block's live pipeline cost.
  template <bool Touch>
  static void prologue(Iss& c, const Op* op) {
    if constexpr (Touch) {
      c.icacheAccessTagged(op->line_set, op->line_tag);
    }
    if constexpr (Timing) {
      c.live_pipe_ = op->cum;
    }
  }

  /// Conditional-branch epilogue: outcome counters always, the
  /// precomputed outcome extra only under BranchX; ends the segment.
  static const Op* condBranch(Iss& c, const Op* op, bool taken) {
    ++c.stats_.cond_branches;
    const bool predicted = (op->flags & Op::kPredictedTaken) != 0;
    if (taken) {
      ++c.stats_.cond_taken;
      c.pc_ = op->b;
    } else {
      c.pc_ = op->a;
    }
    if (predicted != taken) {
      ++c.stats_.mispredicts;
    }
    if constexpr (BranchX) {
      const unsigned extra = taken ? op->x0 : op->x1;
      c.committed_cycles_ += extra;
      c.stats_.branch_extra += extra;
      c.current_block_.branch_extra += extra;
    }
    ++c.stats_.instructions;
    return nullptr;
  }

  /// Static extra of an unconditional transfer (precomputed into x0).
  static void uncondExtra(Iss& c, const Op* op) {
    if constexpr (BranchX) {
      c.committed_cycles_ += op->x0;
      c.stats_.branch_extra += op->x0;
      c.current_block_.branch_extra += op->x0;
    }
  }

  template <Opc O, bool Touch>
  static const Op* exec(void* p, const Op* op) {
    Iss& c = cpu(p);
    prologue<Touch>(c, op);
    if constexpr (O == Opc::kAdd) {
      c.d_[op->rd] = c.d_[op->ra] + c.d_[op->rb];
    } else if constexpr (O == Opc::kSub) {
      c.d_[op->rd] = c.d_[op->ra] - c.d_[op->rb];
    } else if constexpr (O == Opc::kAnd) {
      c.d_[op->rd] = c.d_[op->ra] & c.d_[op->rb];
    } else if constexpr (O == Opc::kOr) {
      c.d_[op->rd] = c.d_[op->ra] | c.d_[op->rb];
    } else if constexpr (O == Opc::kXor) {
      c.d_[op->rd] = c.d_[op->ra] ^ c.d_[op->rb];
    } else if constexpr (O == Opc::kShl) {
      c.d_[op->rd] = c.d_[op->ra] << (c.d_[op->rb] & 31);
    } else if constexpr (O == Opc::kShr) {
      c.d_[op->rd] = c.d_[op->ra] >> (c.d_[op->rb] & 31);
    } else if constexpr (O == Opc::kSar) {
      c.d_[op->rd] = static_cast<uint32_t>(
          static_cast<int32_t>(c.d_[op->ra]) >> (c.d_[op->rb] & 31));
    } else if constexpr (O == Opc::kMul) {
      c.d_[op->rd] = c.d_[op->ra] * c.d_[op->rb];
    } else if constexpr (O == Opc::kEq) {
      c.d_[op->rd] = c.d_[op->ra] == c.d_[op->rb] ? 1 : 0;
    } else if constexpr (O == Opc::kNe) {
      c.d_[op->rd] = c.d_[op->ra] != c.d_[op->rb] ? 1 : 0;
    } else if constexpr (O == Opc::kLt) {
      c.d_[op->rd] = static_cast<int32_t>(c.d_[op->ra]) <
                             static_cast<int32_t>(c.d_[op->rb])
                         ? 1
                         : 0;
    } else if constexpr (O == Opc::kGe) {
      c.d_[op->rd] = static_cast<int32_t>(c.d_[op->ra]) >=
                             static_cast<int32_t>(c.d_[op->rb])
                         ? 1
                         : 0;
    } else if constexpr (O == Opc::kLtu) {
      c.d_[op->rd] = c.d_[op->ra] < c.d_[op->rb] ? 1 : 0;
    } else if constexpr (O == Opc::kGeu) {
      c.d_[op->rd] = c.d_[op->ra] >= c.d_[op->rb] ? 1 : 0;
    } else if constexpr (O == Opc::kAddi) {
      c.d_[op->rd] = c.d_[op->ra] + op->a;
    } else if constexpr (O == Opc::kMovi || O == Opc::kMovh ||
                         O == Opc::kMovi16) {
      c.d_[op->rd] = op->a;  // kMovh pre-shifted at lowering
    } else if constexpr (O == Opc::kMova) {
      c.a_[op->rd] = c.d_[op->ra];
    } else if constexpr (O == Opc::kMovd) {
      c.d_[op->rd] = c.a_[op->ra];
    } else if constexpr (O == Opc::kLea) {
      c.a_[op->rd] = c.a_[op->ra] + op->a;
    } else if constexpr (O == Opc::kMovha) {
      c.a_[op->rd] = op->a;  // pre-shifted at lowering
    } else if constexpr (O == Opc::kAdda) {
      c.a_[op->rd] = c.a_[op->ra] + c.a_[op->rb];
    } else if constexpr (O == Opc::kSuba) {
      c.a_[op->rd] = c.a_[op->ra] - c.a_[op->rb];
    } else if constexpr (O == Opc::kLdw) {
      c.d_[op->rd] = c.loadMem(c.a_[op->ra] + op->a, 4, false);
    } else if constexpr (O == Opc::kLdh) {
      c.d_[op->rd] = c.loadMem(c.a_[op->ra] + op->a, 2, true);
    } else if constexpr (O == Opc::kLdhu) {
      c.d_[op->rd] = c.loadMem(c.a_[op->ra] + op->a, 2, false);
    } else if constexpr (O == Opc::kLdb) {
      c.d_[op->rd] = c.loadMem(c.a_[op->ra] + op->a, 1, true);
    } else if constexpr (O == Opc::kLdbu) {
      c.d_[op->rd] = c.loadMem(c.a_[op->ra] + op->a, 1, false);
    } else if constexpr (O == Opc::kLda) {
      c.a_[op->rd] = c.loadMem(c.a_[op->ra] + op->a, 4, false);
    } else if constexpr (O == Opc::kStw) {
      c.storeMem(c.a_[op->ra] + op->a, c.d_[op->rd], 4);
    } else if constexpr (O == Opc::kSth) {
      c.storeMem(c.a_[op->ra] + op->a, c.d_[op->rd], 2);
    } else if constexpr (O == Opc::kStb) {
      c.storeMem(c.a_[op->ra] + op->a, c.d_[op->rd], 1);
    } else if constexpr (O == Opc::kSta) {
      c.storeMem(c.a_[op->ra] + op->a, c.a_[op->rd], 4);
    } else if constexpr (O == Opc::kJ || O == Opc::kJ16) {
      uncondExtra(c, op);
      c.pc_ = op->b;
      ++c.stats_.instructions;
      return nullptr;
    } else if constexpr (O == Opc::kJl) {
      c.a_[trc::kLinkRegister] = op->a;  // precomputed return address
      uncondExtra(c, op);
      c.pc_ = op->b;
      ++c.stats_.instructions;
      return nullptr;
    } else if constexpr (O == Opc::kJi) {
      uncondExtra(c, op);
      c.pc_ = c.a_[op->ra];
      ++c.stats_.instructions;
      return nullptr;
    } else if constexpr (O == Opc::kRet16) {
      uncondExtra(c, op);
      c.pc_ = c.a_[trc::kLinkRegister];
      ++c.stats_.instructions;
      return nullptr;
    } else if constexpr (O == Opc::kJeq) {
      return condBranch(c, op, c.d_[op->ra] == c.d_[op->rb]);
    } else if constexpr (O == Opc::kJne) {
      return condBranch(c, op, c.d_[op->ra] != c.d_[op->rb]);
    } else if constexpr (O == Opc::kJlt) {
      return condBranch(c, op, static_cast<int32_t>(c.d_[op->ra]) <
                                   static_cast<int32_t>(c.d_[op->rb]));
    } else if constexpr (O == Opc::kJge) {
      return condBranch(c, op, static_cast<int32_t>(c.d_[op->ra]) >=
                                   static_cast<int32_t>(c.d_[op->rb]));
    } else if constexpr (O == Opc::kJltu) {
      return condBranch(c, op, c.d_[op->ra] < c.d_[op->rb]);
    } else if constexpr (O == Opc::kJgeu) {
      return condBranch(c, op, c.d_[op->ra] >= c.d_[op->rb]);
    } else if constexpr (O == Opc::kJnz16) {
      return condBranch(c, op, c.d_[op->rd] != 0);
    } else if constexpr (O == Opc::kJz16) {
      return condBranch(c, op, c.d_[op->rd] == 0);
    } else if constexpr (O == Opc::kNop || O == Opc::kNop16) {
      // no architectural effect
    } else if constexpr (O == Opc::kHalt) {
      c.stop_ = StopReason::kHalted;
      c.pc_ = op->a;  // the pc rests on the HALT instruction
      ++c.stats_.instructions;
      return nullptr;
    } else if constexpr (O == Opc::kBkpt) {
      c.stop_ = StopReason::kBreakpoint;
      c.pc_ = op->a;  // past the BKPT
      ++c.stats_.instructions;
      return nullptr;
    } else if constexpr (O == Opc::kMov16) {
      c.d_[op->rd] = c.d_[op->rb];
    } else if constexpr (O == Opc::kAdd16) {
      c.d_[op->rd] += c.d_[op->rb];
    } else if constexpr (O == Opc::kSub16) {
      c.d_[op->rd] -= c.d_[op->rb];
    } else if constexpr (O == Opc::kAddi16) {
      c.d_[op->rd] += op->a;
    }
    ++c.stats_.instructions;
    return op + 1;
  }

  /// Fall-through terminator of a leader-split segment: no control
  /// transfer set the pc, so establish the precomputed continuation.
  static const Op* end(void* p, const Op* op) {
    cpu(p).pc_ = op->a;
    return nullptr;
  }

  template <bool Touch>
  static core::ThreadedFn selectT(Opc o) {
    switch (o) {
      case Opc::kAdd: return &exec<Opc::kAdd, Touch>;
      case Opc::kSub: return &exec<Opc::kSub, Touch>;
      case Opc::kAnd: return &exec<Opc::kAnd, Touch>;
      case Opc::kOr: return &exec<Opc::kOr, Touch>;
      case Opc::kXor: return &exec<Opc::kXor, Touch>;
      case Opc::kShl: return &exec<Opc::kShl, Touch>;
      case Opc::kShr: return &exec<Opc::kShr, Touch>;
      case Opc::kSar: return &exec<Opc::kSar, Touch>;
      case Opc::kMul: return &exec<Opc::kMul, Touch>;
      case Opc::kEq: return &exec<Opc::kEq, Touch>;
      case Opc::kNe: return &exec<Opc::kNe, Touch>;
      case Opc::kLt: return &exec<Opc::kLt, Touch>;
      case Opc::kGe: return &exec<Opc::kGe, Touch>;
      case Opc::kLtu: return &exec<Opc::kLtu, Touch>;
      case Opc::kGeu: return &exec<Opc::kGeu, Touch>;
      case Opc::kAddi: return &exec<Opc::kAddi, Touch>;
      case Opc::kMovi: return &exec<Opc::kMovi, Touch>;
      case Opc::kMovh: return &exec<Opc::kMovh, Touch>;
      case Opc::kMova: return &exec<Opc::kMova, Touch>;
      case Opc::kMovd: return &exec<Opc::kMovd, Touch>;
      case Opc::kLea: return &exec<Opc::kLea, Touch>;
      case Opc::kMovha: return &exec<Opc::kMovha, Touch>;
      case Opc::kAdda: return &exec<Opc::kAdda, Touch>;
      case Opc::kSuba: return &exec<Opc::kSuba, Touch>;
      case Opc::kLdw: return &exec<Opc::kLdw, Touch>;
      case Opc::kLdh: return &exec<Opc::kLdh, Touch>;
      case Opc::kLdhu: return &exec<Opc::kLdhu, Touch>;
      case Opc::kLdb: return &exec<Opc::kLdb, Touch>;
      case Opc::kLdbu: return &exec<Opc::kLdbu, Touch>;
      case Opc::kLda: return &exec<Opc::kLda, Touch>;
      case Opc::kStw: return &exec<Opc::kStw, Touch>;
      case Opc::kSth: return &exec<Opc::kSth, Touch>;
      case Opc::kStb: return &exec<Opc::kStb, Touch>;
      case Opc::kSta: return &exec<Opc::kSta, Touch>;
      case Opc::kJ: return &exec<Opc::kJ, Touch>;
      case Opc::kJ16: return &exec<Opc::kJ16, Touch>;
      case Opc::kJl: return &exec<Opc::kJl, Touch>;
      case Opc::kJi: return &exec<Opc::kJi, Touch>;
      case Opc::kRet16: return &exec<Opc::kRet16, Touch>;
      case Opc::kJeq: return &exec<Opc::kJeq, Touch>;
      case Opc::kJne: return &exec<Opc::kJne, Touch>;
      case Opc::kJlt: return &exec<Opc::kJlt, Touch>;
      case Opc::kJge: return &exec<Opc::kJge, Touch>;
      case Opc::kJltu: return &exec<Opc::kJltu, Touch>;
      case Opc::kJgeu: return &exec<Opc::kJgeu, Touch>;
      case Opc::kJnz16: return &exec<Opc::kJnz16, Touch>;
      case Opc::kJz16: return &exec<Opc::kJz16, Touch>;
      case Opc::kNop: return &exec<Opc::kNop, Touch>;
      case Opc::kNop16: return &exec<Opc::kNop16, Touch>;
      case Opc::kHalt: return &exec<Opc::kHalt, Touch>;
      case Opc::kBkpt: return &exec<Opc::kBkpt, Touch>;
      case Opc::kMov16: return &exec<Opc::kMov16, Touch>;
      case Opc::kAdd16: return &exec<Opc::kAdd16, Touch>;
      case Opc::kSub16: return &exec<Opc::kSub16, Touch>;
      case Opc::kMovi16: return &exec<Opc::kMovi16, Touch>;
      case Opc::kAddi16: return &exec<Opc::kAddi16, Touch>;
      default:
        CABT_FAIL("unhandled opcode in threaded lowering: "
                  << static_cast<int>(o));
    }
  }

  static core::ThreadedFn select(const trc::Instr& in, bool touch) {
    return touch ? selectT<true>(in.opc) : selectT<false>(in.opc);
  }
};

core::ThreadedBinder Iss::threadedBinder() const {
  core::ThreadedBinder binder;
  // The same knob resolution as selectChainedT: functional mode never
  // touches the icache (and needs no extras), so the touch and the
  // handler set collapse together.
  if (!config_.model_timing) {
    binder.select = &ThreadedHandlers<false, false>::select;
    binder.end = &ThreadedHandlers<false, false>::end;
    binder.icache_on = false;
  } else if (config_.model_branch_extras) {
    binder.select = &ThreadedHandlers<true, true>::select;
    binder.end = &ThreadedHandlers<true, true>::end;
    binder.icache_on = icacheOn();
  } else {
    binder.select = &ThreadedHandlers<true, false>::select;
    binder.end = &ThreadedHandlers<true, false>::end;
    binder.icache_on = icacheOn();
  }
  return binder;
}

template <bool Timing>
void Iss::dispatchThreadedBlockT(core::ExecBlock& block,
                                 const core::ThreadedProgram& prog) {
  ++block.exec_count;
  ++stats_.cached_blocks;
  ++stats_.threaded_dispatches;
  if constexpr (Timing) {
    current_block_ = BlockRecord{};
    current_block_.addr = block.addr();
    in_block_ = true;
    ++stats_.blocks;
  }
  const core::ThreadedOp* op = prog.ops.data();
  while (op != nullptr) {
    op = op->fn(this, op);
  }
  if (stop_ == StopReason::kHalted) {
    finishBlock();
    syncBusClock();
  }
}

template <bool Timing>
int32_t Iss::dispatchThreadedTraceT(core::Trace& trace,
                                    const core::ThreadedProgram& prog,
                                    uint64_t time_limit, bool* epoch_done) {
  // Admission (runChainedT) guaranteed the whole trace fits the
  // instruction budget, exactly as for the interpreted trace engine.
  ++trace.dispatches;
  ++stats_.trace_dispatches;
  ++stats_.threaded_dispatches;
  std::vector<core::ExecBlock>& blocks = cache_->blocks();
  const core::ThreadedOp* ops = prog.ops.data();
  const core::ThreadedSegment* segs = prog.segs.data();
  const size_t num_segs = prog.segs.size();
  for (size_t s = 0;; ++s) {
    const core::ThreadedSegment& seg = segs[s];
    core::ExecBlock& block = blocks[static_cast<size_t>(seg.block)];
    ++block.exec_count;
    ++block.trace_execs;
    ++stats_.cached_blocks;
    ++stats_.trace_blocks;
    if constexpr (Timing) {
      current_block_ = BlockRecord{};
      current_block_.addr = block.addr();
      in_block_ = true;
      ++stats_.blocks;
    }
    const core::ThreadedOp* op = ops + seg.first;
    while (op != nullptr) {
      op = op->fn(this, op);
    }
    if (stop_ != StopReason::kRunning) {
      if (stop_ == StopReason::kHalted) {
        finishBlock();
        syncBusClock();
      }
      return -1;  // HALT or BKPT mid-block
    }
    if (s + 1 == num_segs) {
      return afterBlock<Timing>(block);  // chain off the trace end
    }
    // Original block boundary inside the trace: the identical epoch
    // sequence dispatchTraceT performs between two segments — lazy
    // commit, quantum yield, interrupt sample, then the guard.
    finishBlock();
    observeBoundary();
    if (localTime() >= time_limit) {
      return kDispatchYield;  // resumable: pc_ rests on the next leader
    }
    pollFaults();  // a pc-redirecting fault fails the guard below
    if (irq_ != nullptr) {
      maybeTakeIrq();
    }
    if (pc_ != segs[s + 1].entry_addr) {
      // Guard failure: this boundary's epoch has already run — the
      // outer loop must not repeat it.
      ++stats_.guard_bails;
      if (trace_sink_ != nullptr) {
        trace_sink_->instant(trace_lane_, "guard_bail", localTime(), "addr",
                             block.addr());
      }
      *epoch_done = true;
      return resolveNext(block);
    }
  }
}

}  // namespace cabt::iss
