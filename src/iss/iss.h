// Cycle-accurate interpretive instruction-set simulator for TRC32.
//
// Plays the role of the paper's TriCore TC10GP evaluation board: the
// ground truth for both instruction counts and cycle counts that the
// translated code is compared against (paper section 4). The timing model
// is the architecture description's: dual-issue in-order pipeline that
// drains at basic-block boundaries, static backward-taken branch
// prediction, and a set-associative instruction cache (see DESIGN.md for
// the precise fetch rule).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "arch/arch.h"
#include "arch/icache_model.h"
#include "arch/timing.h"
#include "common/sparse_mem.h"
#include "elf/elf.h"
#include "soc/bus.h"
#include "trc/isa.h"

namespace cabt::iss {

enum class StopReason {
  kRunning,
  kHalted,
  kBreakpoint,      ///< BKPT instruction executed
  kMaxInstructions,
};

struct IssStats {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t pipeline_cycles = 0;   ///< cycles from the issue schedule alone
  uint64_t branch_extra = 0;      ///< branch-outcome extra cycles
  uint64_t cache_penalty = 0;     ///< instruction-cache miss cycles
  uint64_t blocks = 0;            ///< executed basic blocks
  uint64_t icache_accesses = 0;
  uint64_t icache_misses = 0;
  uint64_t cond_branches = 0;
  uint64_t cond_taken = 0;
  uint64_t mispredicts = 0;
  uint64_t io_reads = 0;
  uint64_t io_writes = 0;
};

struct IssConfig {
  bool model_timing = true;  ///< false = functional-only (no cycle counts)
  uint64_t max_instructions = 500'000'000;
};

/// Per-executed-block timing record (enabled on demand; used by accuracy
/// tests to localise any deviation).
struct BlockRecord {
  uint32_t addr = 0;
  uint32_t pipeline_cycles = 0;
  uint32_t branch_extra = 0;
  uint32_t cache_penalty = 0;
};

class Iss {
 public:
  /// `bus` may be null when the program performs no I/O; the bus is
  /// clocked in lockstep with the modelled cycle count.
  Iss(const arch::ArchDescription& desc, const elf::Object& object,
      soc::SocBus* bus = nullptr, IssConfig config = {});

  /// Runs until HALT/BKPT or the instruction limit.
  StopReason run();
  /// Executes a single instruction.
  StopReason step();

  [[nodiscard]] uint32_t pc() const { return pc_; }
  [[nodiscard]] uint32_t d(int i) const { return d_.at(i); }
  [[nodiscard]] uint32_t a(int i) const { return a_.at(i); }
  void setPc(uint32_t pc) { pc_ = pc; }
  void setD(int i, uint32_t v) { d_.at(i) = v; }
  void setA(int i, uint32_t v) { a_.at(i) = v; }

  [[nodiscard]] const IssStats& stats() const { return stats_; }
  [[nodiscard]] SparseMemory& memory() { return mem_; }
  [[nodiscard]] const SparseMemory& memory() const { return mem_; }
  [[nodiscard]] const std::set<uint32_t>& leaders() const { return leaders_; }
  [[nodiscard]] const arch::ICacheState& icache() const { return icache_; }

  void enableBlockTrace(bool on) { trace_blocks_ = on; }
  [[nodiscard]] const std::vector<BlockRecord>& blockTrace() const {
    return block_trace_;
  }

 private:
  const trc::Instr& fetch(uint32_t addr) const;
  void finishBlock();
  uint32_t loadMem(uint32_t addr, unsigned size, bool sign);
  void storeMem(uint32_t addr, uint32_t value, unsigned size);
  void syncBusClock();
  [[nodiscard]] uint64_t currentCycle() const;
  void execute(const trc::Instr& instr);

  arch::ArchDescription desc_;
  IssConfig config_;
  soc::SocBus* bus_;
  SparseMemory mem_;
  std::vector<trc::Instr> decoded_;
  std::unordered_map<uint32_t, size_t> by_addr_;
  std::set<uint32_t> leaders_;

  std::array<uint32_t, 16> d_{};
  std::array<uint32_t, 16> a_{};
  uint32_t pc_ = 0;
  StopReason stop_ = StopReason::kRunning;

  // Timing state.
  arch::PipelineTimer timer_;
  arch::ICacheState icache_;
  uint64_t committed_cycles_ = 0;  ///< includes finished blocks + penalties
  bool have_line_ = false;
  uint32_t last_line_ = 0;
  BlockRecord current_block_{};
  bool in_block_ = false;
  bool trace_blocks_ = false;
  std::vector<BlockRecord> block_trace_;

  IssStats stats_;
};

}  // namespace cabt::iss
