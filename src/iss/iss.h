// Cycle-accurate instruction-set simulator for TRC32.
//
// Plays the role of the paper's TriCore TC10GP evaluation board: the
// ground truth for both instruction counts and cycle counts that the
// translated code is compared against (paper section 4). The timing model
// is the architecture description's: dual-issue in-order pipeline that
// drains at basic-block boundaries, static backward-taken branch
// prediction, and a set-associative instruction cache (see DESIGN.md for
// the precise fetch rule).
//
// Two execution engines share identical semantics:
//   * a block-dispatch engine (the default for run()) that executes whole
//     predecoded blocks from a core::BlockCache. After a block retires,
//     the next block is resolved through its precomputed successor edges
//     (direct chaining — no hash lookup on the common path), hot blocks
//     are spliced with their dominant successors into guarded superblock
//     traces, and the inner loop is specialized by template on the
//     timing/icache/branch-extra knobs so no per-instruction config test
//     survives in the hot path (see DESIGN.md section 6); and
//   * a per-instruction step() engine, used by single stepping, as the
//     fallback for addresses that are not block leaders, and to stop
//     exactly at the instruction limit.
// Block boundaries come from the same core::BlockGraph the translator
// consumes, so the reference and the translated image can never disagree
// about block structure. The two engines are bit-identical in both
// architectural state and every IssStats counter (checked by
// tests/random_program_test.cpp).
//
// Interrupts (soc::IrqSource, attached via attachIrq) are sampled at
// basic-block boundaries only, and debug breakpoints force the block
// engine back onto the stepping engine for the containing block — both
// rules keep the engines bit-identical under interrupts and debugging
// (see DESIGN.md, "IRQ-at-block-boundary rule"). runUntil() yields at
// boundaries once a local-time limit is reached; the event kernel
// (sim/kernel.h) uses it to run cores in quantum-bounded slices.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "arch/arch.h"
#include "arch/icache_model.h"
#include "arch/timing.h"
#include "common/serial.h"
#include "common/sparse_mem.h"
#include "core/block_cache.h"
#include "core/block_graph.h"
#include "core/coverage.h"
#include "elf/elf.h"
#include "fi/inject.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "soc/bus.h"
#include "soc/interrupts.h"
#include "trc/isa.h"

namespace cabt::iss {

/// A14 receives the return address on interrupt entry (the handler
/// returns with `ji a14` after signalling end-of-interrupt); programs
/// that take interrupts must keep A14 free.
constexpr int kIrqLinkRegister = 14;

enum class StopReason {
  kRunning,
  kHalted,
  kBreakpoint,      ///< BKPT instruction executed
  kMaxInstructions,
  kDebugBreak,      ///< stopped *at* a debug breakpoint; resumable
  kCycleLimit,      ///< runUntil() reached its local-time limit; resumable
};

struct IssStats {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t pipeline_cycles = 0;   ///< cycles from the issue schedule alone
  uint64_t branch_extra = 0;      ///< branch-outcome extra cycles
  uint64_t cache_penalty = 0;     ///< instruction-cache miss cycles
  uint64_t blocks = 0;            ///< executed basic blocks
  uint64_t icache_accesses = 0;
  uint64_t icache_misses = 0;
  uint64_t cond_branches = 0;
  uint64_t cond_taken = 0;
  uint64_t mispredicts = 0;
  uint64_t io_reads = 0;
  uint64_t io_writes = 0;
  uint64_t irqs_taken = 0;        ///< interrupts accepted at block boundaries
  uint64_t irq_entry_cycles = 0;  ///< cycles charged for interrupt entry
  /// Blocks dispatched through the predecoded block cache (the rest ran
  /// on the per-instruction fallback engine). Not part of the
  /// architectural comparison between the two engines — nor are the
  /// dispatch-path counters below, which record *how* blocks were
  /// reached so the perf trajectory can explain why speed changed.
  uint64_t cached_blocks = 0;
  /// Dispatches whose block was resolved through a chained successor
  /// edge (no address lookup).
  uint64_t chain_hits = 0;
  /// Superblock (trace) entries, and blocks retired inside traces.
  uint64_t trace_dispatches = 0;
  uint64_t trace_blocks = 0;
  /// Early trace exits: the pc observed at an internal block boundary
  /// did not match the speculated next segment (branch went the
  /// non-dominant way, or an interrupt redirected control).
  uint64_t guard_bails = 0;
  /// Parallel-round accounting (also non-architectural): private slices
  /// run as worker-thread prefixes, and how many of them bailed to the
  /// sequential drain on a shared-bus touch before the quantum expired.
  uint64_t private_slices = 0;
  uint64_t private_bails = 0;
  /// Threaded-code backend accounting (DispatchMode::kThreaded, also
  /// non-architectural): programs entered (a lowered block or whole
  /// trace each count one), instructions retired inside them, lowerings
  /// performed, and lowerings declined by the op budget.
  uint64_t threaded_dispatches = 0;
  uint64_t threaded_instrs = 0;
  uint64_t threaded_lowerings = 0;
  uint64_t threaded_declined = 0;
};

/// Block-dispatch strategy of the run()/runUntil() engine (only
/// meaningful while `use_block_cache` is true).
enum class DispatchMode {
  /// Address lookup per dispatched block (hash map + ordered-set leader
  /// probes) — the pre-chaining engine, kept verbatim as the measured
  /// baseline of bench_ablation_dispatch.
  kLookup,
  /// Successor chaining over the precomputed target/fall-through edges
  /// with an O(1) leader bitmap and template-specialized inner loops.
  kChained,
  /// kChained plus superblock trace formation for hot blocks.
  kChainedTraces,
  /// kChainedTraces plus threaded-code lowering: hot blocks and formed
  /// traces are lowered once into flat arrays of pre-bound host handler
  /// records (core/threaded.h) — zero per-instruction decode, no switch,
  /// no operand extraction on the hot path. All corrections stay at the
  /// original block boundaries, so the backend is bit-identical to
  /// step() at every detail level (DESIGN.md section 10).
  kThreaded,
};

struct IssConfig {
  bool model_timing = true;  ///< false = functional-only (no cycle counts)
  /// Detail-level knobs mirroring the translator's levels (see
  /// platform::issConfigFor); ignored when model_timing is false.
  /// model_branch_extras = false drops the dynamic branch-outcome cycles
  /// while keeping the outcome counters (cond_branches/mispredicts);
  /// model_icache = false disables the cache model entirely — no
  /// accesses, misses or penalty cycles are recorded.
  bool model_branch_extras = true;
  bool model_icache = true;
  /// false = force the per-instruction engine even in run() (the
  /// pre-block-cache behaviour; kept for differential testing and for
  /// debugger-style consumers that want stepping semantics throughout).
  bool use_block_cache = true;
  /// Block-dispatch strategy; kLookup/kChained exist for differential
  /// testing and the dispatch ablation.
  DispatchMode dispatch_mode = DispatchMode::kChainedTraces;
  /// A block heads a superblock trace once dispatched this many times
  /// (kChainedTraces only).
  uint32_t trace_threshold = 64;
  /// Trace formation limits (blocks spliced per trace; a revisited
  /// block unrolls a hot loop into the trace).
  uint32_t trace_max_blocks = 8;
  uint32_t trace_max_instrs = 256;
  /// A block is lowered into a threaded-code program once dispatched
  /// this many times (kThreaded only); formed traces are lowered on
  /// their next dispatch (they are already past trace_threshold).
  uint32_t threaded_threshold = 16;
  /// Total ThreadedOp records the per-core lowering budget allows.
  /// Exhaustion declines further lowerings permanently: hot code lowers
  /// first, cold tails stay on the chained engine.
  uint32_t threaded_budget_ops = 1u << 16;
  uint64_t max_instructions = 500'000'000;
  /// Cycles charged when an interrupt is accepted (pipeline flush + the
  /// vector fetch), at the block boundary where it is taken.
  unsigned irq_entry_cycles = 6;
  /// Additional block leaders (interrupt handler entries — reached only
  /// through the vector register, invisible to static control flow).
  std::vector<uint32_t> extra_leaders;
};

/// Per-executed-block timing record (enabled on demand; used by accuracy
/// tests to localise any deviation).
struct BlockRecord {
  uint32_t addr = 0;
  uint32_t pipeline_cycles = 0;
  uint32_t branch_extra = 0;
  uint32_t cache_penalty = 0;
};

/// Hot-count entry: how often one basic block was dispatched, and how
/// it was reached (through a chained successor edge / inside a trace).
struct HotBlock {
  uint32_t addr = 0;
  uint32_t instr_count = 0;
  uint64_t exec_count = 0;
  uint64_t chain_entries = 0;
  uint64_t trace_execs = 0;
  /// Enclosing function ("wait", "mac+0x8", ...) resolved through the
  /// image's symbol table; "0x...." when the image carries no symbol
  /// covering the address.
  std::string symbol;
};

/// The threaded-code handler set (defined in iss.cpp), specialized per
/// (timing, branch-extras) with the icache touch baked per op at
/// lowering time; befriended so handlers mutate ISS state directly.
template <bool Timing, bool BranchX>
struct ThreadedHandlers;

class Iss {
 public:
  /// `bus` may be null when the program performs no I/O; the bus is
  /// clocked in lockstep with the modelled cycle count.
  Iss(const arch::ArchDescription& desc, const elf::Object& object,
      soc::SocBus* bus = nullptr, IssConfig config = {});

  /// Runs until HALT/BKPT, a debug breakpoint or the instruction limit,
  /// dispatching whole cached blocks when possible.
  StopReason run();
  /// Runs like run() but additionally yields with kCycleLimit once
  /// localTime() reaches `time_limit`, checked at basic-block boundaries
  /// (a slice may overshoot by the open block). This is the temporal-
  /// decoupling hook: a kernel-hosted core runs one quantum per
  /// activation and stays resumable.
  StopReason runUntil(uint64_t time_limit);
  /// Executes a single instruction (the per-instruction engine).
  StopReason step();

  /// Local time of this core: the modelled cycle count, or the retired
  /// instruction count in functional mode (model_timing = false), so
  /// functional cores still interleave and clock the bus deterministically.
  [[nodiscard]] uint64_t localTime() const;

  // -- private-footprint slices (the parallel kernel's worker-thread
  //    prefixes; see sim/kernel.h ParallelConfig and DESIGN.md §7) ------
  //
  // Between beginPrivateSlice() and commitPrivateSlice() the core runs
  // touching nothing outside itself: any instruction whose effective
  // address lands on the SoC bus yields *before* executing
  // (runUntil/step return kCycleLimit with bailedOnShared() true and the
  // pc resting on that instruction), and the block-boundary interrupt
  // samples — provably inert under the IrqSource::quiescent certificate
  // that privateSliceReady() requires — are skipped, with the bus-clock
  // advance each one would have made recorded instead. The slice is
  // therefore safe on a worker thread, and bit-identical to what the
  // sequential kernel would have executed up to the same point.

  /// True when the next quantum slice may start as a private prefix: the
  /// core is resumable and its interrupt input (if any) holds the
  /// quiescence certificate. Kernel-side: Process::parallelReady().
  [[nodiscard]] bool privateSliceReady() const {
    return stop_ == StopReason::kRunning &&
           (irq_ == nullptr || irq_->quiescent());
  }
  /// Enters private-slice mode (call privateSliceReady() first).
  void beginPrivateSlice();
  /// Leaves private-slice mode at the core's sequential dispatch slot:
  /// re-checks the certificate, then replays the recorded bus-clock
  /// advance — so the shared clock sees exactly the advanceTo() calls
  /// the sequential kernel would have issued, in dispatch order.
  /// Returns true when the slice bailed and the remainder must be run
  /// (sequentially) with another runUntil() to the same slice end.
  bool commitPrivateSlice();
  /// True after a private slice stopped on a would-be shared access.
  [[nodiscard]] bool bailedOnShared() const { return bailed_shared_; }

  /// Connects the core's interrupt input; sampled at every basic-block
  /// boundary (after the bus has been advanced to localTime()). On
  /// delivery: A14 = return PC, PC = vector, irq_entry_cycles charged.
  void attachIrq(soc::IrqSource* irq) { irq_ = irq; }

  /// Connects a fault injector (src/fi, DESIGN.md section 12), polled at
  /// basic-block boundaries through pollFaults() — the same due-time-
  /// ladder discipline as the interrupt sample and the PC sampler, so a
  /// scheduled fault lands at the identical boundary epoch across every
  /// dispatch engine, stepping, and the seq/par kernels. The injector is
  /// harness state: never serialized, never digested; nullptr detaches.
  void setInjector(fi::CoreInjector* injector) { injector_ = injector; }

  // -- observability hooks (src/obs, DESIGN.md section 11) --------------
  //
  // Observers are strictly read-only: enabling any of them cannot
  // change architectural state, IssStats, snap::digest, or bus traffic
  // — they record what happened, they never feed back. Disabled cost is
  // one null test per block boundary. Threading: under the parallel
  // kernel a core (and with it its sampler) runs on exactly one thread
  // at a time; the trace sink is only written from sequential-path code
  // — trace formation, guard bails and IRQ delivery cannot occur inside
  // a private slice (traces/threaded are off there and the interrupt
  // sample is skipped under the quiescence certificate).

  /// Routes this core's timeline events (IRQ delivery instants, trace
  /// formation, guard bails) to `sink` on lane `lane` (obs::coreLane).
  void setTraceSink(obs::TraceSink* sink, uint32_t lane) {
    trace_sink_ = sink;
    trace_lane_ = lane;
  }
  /// Attaches a guest PC sampler, polled at basic-block boundaries.
  void setSampler(obs::PcSampler* sampler) { sampler_ = sampler; }
  /// Attaches an edge-coverage map (core/coverage.h): every block-
  /// boundary epoch folds the (previous boundary pc, current pc)
  /// transfer into the map. Same observer contract as the sampler —
  /// read-only, never serialized, never digested; nullptr detaches and
  /// resets the edge chain.
  void setEdgeCoverage(core::EdgeCoverage* cov) {
    edge_cov_ = cov;
    cov_have_last_ = false;
  }
  /// Publishes every IssStats counter (plus a hot-block dispatch-count
  /// histogram) under `prefix` ("board.core0.iss").
  void publishMetrics(obs::MetricsRegistry& reg,
                      const std::string& prefix) const;
  /// The image's code-symbol index (always built; empty for symbol-less
  /// images). hotBlocks() and the profiler attribute through it.
  [[nodiscard]] const elf::SymbolIndex& symbols() const {
    return artifact_->symbols();
  }

  /// Debugger-style breakpoints: run()/step() stop with kDebugBreak
  /// *before* executing the instruction at `addr` (pc() == addr). The
  /// block engine refuses to dispatch any cached block — or any trace
  /// with a constituent block — containing a breakpoint and falls back
  /// to stepping, no matter how hot the block is. Both calls maintain
  /// the per-block `has_breakpoint` flags the dispatcher tests.
  /// Resuming (the next run()/step()) executes the instruction.
  void addBreakpoint(uint32_t addr);
  void removeBreakpoint(uint32_t addr);
  [[nodiscard]] const std::set<uint32_t>& breakpoints() const {
    return breakpoints_;
  }

  [[nodiscard]] uint32_t pc() const { return pc_; }
  /// Stop state of the last run()/runUntil()/step() (kRunning while the
  /// core is resumable, including after a kCycleLimit yield).
  [[nodiscard]] StopReason stopReason() const { return stop_; }
  [[nodiscard]] uint32_t d(int i) const { return d_.at(i); }
  [[nodiscard]] uint32_t a(int i) const { return a_.at(i); }
  void setPc(uint32_t pc) { pc_ = pc; }
  void setD(int i, uint32_t v) { d_.at(i) = v; }
  void setA(int i, uint32_t v) { a_.at(i) = v; }

  [[nodiscard]] const IssStats& stats() const { return stats_; }
  [[nodiscard]] SparseMemory& memory() { return mem_; }
  [[nodiscard]] const SparseMemory& memory() const { return mem_; }
  [[nodiscard]] const std::set<uint32_t>& leaders() const {
    return graph_.leaders();
  }
  [[nodiscard]] const core::BlockGraph& blockGraph() const { return graph_; }
  [[nodiscard]] const arch::ICacheState& icache() const { return icache_; }

  /// The `n` hottest blocks by dispatch count (block-cache engine only).
  [[nodiscard]] std::vector<HotBlock> hotBlocks(size_t n) const;

  /// Forces construction of the predecoded block cache now instead of
  /// lazily on the first run() dispatch. Decode-once cost is one-time
  /// per program; benchmarks call this to keep it out of the measured
  /// execution window.
  void prebuildBlockCache() { blockCache(); }

  void enableBlockTrace(bool on) { trace_blocks_ = on; }
  [[nodiscard]] const std::vector<BlockRecord>& blockTrace() const {
    return block_trace_;
  }

  // -- snapshot support (src/snap, DESIGN.md section 9) -----------------
  //
  // saveState captures everything the next instruction can observe:
  // architectural state (registers, pc, stop reason, memory) plus the
  // micro-architectural residue of the open block (pipeline scoreboard,
  // lazy-commit cycle accounting, icache tags/LRU, line tracking), the
  // full IssStats record and the debug state (breakpoint set, pending
  // step-over). The block graph, predecoded block cache and superblock
  // traces are host-side *derived* state — a pure function of the
  // immutable program image — and are never serialized: restoreState
  // revalidates what exists (per-block breakpoint flags recomputed from
  // the restored set) and anything missing rebuilds lazily, so a restore
  // into a cold process (no warm cache, no traces) reaches the same
  // architectural observables as the live core (tests/snap_test.cpp).
  // Not restorable mid-private-slice: saveState refuses while a parallel
  // prefix is open (the kernel never exposes that window between runs).

  void saveState(serial::Writer& w) const;
  void restoreState(serial::Reader& r);

  /// Writes the core's contribution to the rolling state digest
  /// (snap::digest): the architectural observables and micro-
  /// architectural timing state only — none of the dispatch-path
  /// counters (chain_hits, trace_*, guard_bails, private_*) that depend
  /// on how blocks were reached — so a warm continuation and a cold
  /// restore of the same run digest identically.
  void digestState(serial::Writer& w) const;

 private:
  template <bool Timing, bool BranchX>
  friend struct ThreadedHandlers;

  /// dispatchTraceT() result meaning "yield with kCycleLimit now";
  /// non-negative results chain into the next block, -1 falls back to
  /// lookup/stepping.
  static constexpr int32_t kDispatchYield = -3;

  const trc::Instr& fetch(uint32_t addr) const;
  void commitBlock();
  void finishBlock();
  void dispatchBlock(core::ExecBlock& block);
  uint32_t loadMem(uint32_t addr, unsigned size, bool sign);
  void storeMem(uint32_t addr, uint32_t value, unsigned size);
  void syncBusClock();
  [[nodiscard]] uint64_t currentCycle() const;
  void execute(const trc::Instr& instr);
  /// The execute switch with the branch-extra config test resolved at
  /// compile time (BranchX = model_timing && model_branch_extras).
  template <bool BranchX>
  void executeT(const trc::Instr& instr);
  /// One icache line-group touch: access + miss accounting. The tagged
  /// form takes the set/tag the block cache precomputed per line group.
  void icacheAccess(uint32_t addr);
  void icacheAccessTagged(uint32_t set, uint32_t want);
  StopReason runLoop(uint64_t time_limit);
  /// Resolves the (model_timing, icache-on, model_branch_extras) knobs
  /// into the matching runChainedT instantiation — the single dispatch
  /// ladder shared by normal runs (Bail=false) and private slices
  /// (Bail=true), so the two modes cannot drift apart.
  template <bool Bail>
  StopReason selectChainedT(uint64_t time_limit, bool traces,
                            bool threaded);
  /// The pre-chaining dispatch loop (DispatchMode::kLookup): address
  /// hash lookup + ordered-set leader probes per block. Kept verbatim as
  /// the measured baseline of the dispatch ablation.
  StopReason runLoopLookup(uint64_t time_limit);
  /// The chained engine, specialized on (model_timing, icache-on,
  /// model_branch_extras); `traces` enables superblock formation and
  /// `threaded` additionally lowers hot blocks/traces into threaded-code
  /// programs (DispatchMode::kThreaded; tested per block dispatch, never
  /// per instruction). `Bail` compiles in the private-slice shared-touch
  /// tests (the parallel prefix path); normal runs use the Bail=false
  /// instantiations, so no new test reaches the sequential hot path —
  /// and private slices never run threaded programs.
  template <bool Timing, bool ICache, bool BranchX, bool Bail = false>
  StopReason runChainedT(uint64_t time_limit, bool traces, bool threaded);
  /// dispatchBlock with the per-instruction config tests hoisted into
  /// template parameters.
  template <bool Timing, bool ICache, bool BranchX, bool Bail = false>
  void dispatchBlockT(core::ExecBlock& block);
  /// True when executing `in` right now would touch the SoC bus (its
  /// effective address — computable without side effects for every TRC32
  /// memory instruction — lands on a device window).
  [[nodiscard]] bool touchesShared(const trc::Instr& in) const;
  /// Stops a private slice just before instruction `i` of a block being
  /// fast-dispatched: restores the stepping engine's warm view of the
  /// half-executed block (issue schedule of instructions [0, i), line
  /// tracking at instruction i-1) so the sequential drain resumes
  /// bit-exactly via the per-instruction fallback.
  template <bool Timing, bool ICache>
  void bailOutOfBlockT(core::ExecBlock& block, size_t i);
  /// Executes a superblock; applies every correction at the original
  /// block boundaries and bails on guard failure. Returns the chained
  /// next-block index, -1 (resolve via lookup/stepping) or
  /// kDispatchYield (quantum expired at an internal boundary). Sets
  /// *epoch_done when it bailed *after* running a boundary's commit/
  /// yield/interrupt epoch, so the caller runs each epoch exactly once.
  template <bool Timing, bool ICache, bool BranchX>
  int32_t dispatchTraceT(core::Trace& trace, uint64_t time_limit,
                         bool* epoch_done);
  /// Executes a lowered block via back-to-back handler dispatches; the
  /// timing/icache/branch-extra decisions are baked into the handlers,
  /// so only the block-entry bookkeeping is templated.
  template <bool Timing>
  void dispatchThreadedBlockT(core::ExecBlock& block,
                              const core::ThreadedProgram& prog);
  /// dispatchTraceT over a lowered trace: runs each segment's handler
  /// chain, with the identical boundary epoch (commit, yield, interrupt
  /// sample, guard) between segments. Same return protocol as
  /// dispatchTraceT.
  template <bool Timing>
  int32_t dispatchThreadedTraceT(core::Trace& trace,
                                 const core::ThreadedProgram& prog,
                                 uint64_t time_limit, bool* epoch_done);
  /// The handler table matching this core's configured detail level
  /// (handlers are bound per (timing, branch-extras) with the icache
  /// touch decided per op at lowering).
  [[nodiscard]] core::ThreadedBinder threadedBinder() const;
  /// Resolves the retired block's successor through its precomputed
  /// edges by comparing pc_ (no lookup); updates the outcome counters.
  int32_t resolveNext(core::ExecBlock& block);
  /// resolveNext plus the stepping-engine re-warm for indirect jumps
  /// landing mid-block (see runLoopLookup for the original comment).
  template <bool Timing>
  int32_t afterBlock(core::ExecBlock& block);
  /// True when any constituent block of `trace` holds a breakpoint.
  [[nodiscard]] bool traceHasBreakpoint(const core::Trace& trace) const;
  /// Recomputes the has_breakpoint flag of the block containing `addr`
  /// (no-op before the cache exists; the cache build replays the set).
  void refreshBreakpointFlag(uint32_t addr);
  /// Samples the interrupt input at a block boundary; may redirect pc_.
  void maybeTakeIrq();
  /// Block-boundary observability epoch: polls the PC sampler. Placed
  /// beside the quantum-yield/interrupt checks in every engine; the
  /// sampler's due-time ladder makes repeated calls at one local time
  /// idempotent, so yields and private-slice bails cannot double-count.
  void observeBoundary() {
    if (sampler_ != nullptr) {
      sampler_->sample(localTime(), pc_);
    }
    if (edge_cov_ != nullptr) {
      recordCoverage();
    }
  }
  /// The cold half of the coverage poll. localTime() strictly increases
  /// across retired blocks, so re-observing one epoch (quantum-yield
  /// resume, private-slice bail) sees an unchanged time and records
  /// nothing — the same idempotency the sampler gets from its due-time
  /// ladder.
  void recordCoverage() {
    const uint64_t now = localTime();
    if (cov_have_last_ && now == cov_last_time_) {
      return;
    }
    if (cov_have_last_) {
      edge_cov_->recordEdge(cov_last_pc_, pc_);
    }
    cov_have_last_ = true;
    cov_last_time_ = now;
    cov_last_pc_ = pc_;
  }
  /// Block-boundary fault-injection epoch. Runs at the *first boundary
  /// epoch the engine does not yield at* with localTime() >= the fault's
  /// cycle: in the block engines it sits after the quantum-yield check
  /// (a yielding boundary re-runs its epoch on resume), in step() it sits
  /// between observeBoundary() and maybeTakeIrq() (the stepping loop's
  /// yield check runs before step()). The ladder makes re-observation of
  /// one epoch idempotent — consumed faults never re-apply. Returns true
  /// when a fault fired (callers may need to re-resolve a chained block
  /// if the fault redirected pc_). Safe inside private slices: core
  /// faults touch only core-private state, and prefixes are real
  /// committed execution, so skipping them there would diverge seq/par.
  bool pollFaults() {
    if (injector_ == nullptr || !injector_->due(localTime())) {
      return false;
    }
    return applyDueFaults();
  }
  /// Applies every fault with cycle <= localTime(); the cold half of
  /// pollFaults().
  bool applyDueFaults();
  /// Stops with kDebugBreak when pc_ sits on a breakpoint (once per
  /// arrival: a resume steps over it). Returns true when stopped.
  bool checkDebugBreak();
  [[nodiscard]] bool isLeader(uint32_t addr) const {
    return graph_.isLeaderFast(addr);
  }
  [[nodiscard]] bool icacheOn() const {
    return desc_.icache.enabled && config_.model_icache;
  }
  [[nodiscard]] bool blockHasBreakpoint(const core::ExecBlock& block) const;

  /// Builds the predecoded cache on first block-engine dispatch, so
  /// stepping-only and forced-per-instruction configurations never pay
  /// for it.
  core::BlockCache& blockCache();

  arch::ArchDescription desc_;
  IssConfig config_;
  soc::SocBus* bus_;
  soc::IrqSource* irq_ = nullptr;
  SparseMemory mem_;
  /// The shared, immutable decode of this core's image (held alive for
  /// the core's lifetime; every other core on the same image+config
  /// shares the same object through the ProgramArtifactCache).
  std::shared_ptr<const core::ProgramArtifact> artifact_;
  /// Alias for artifact_->graph(): the hot paths read block structure
  /// through it with zero indirection changes.
  const core::BlockGraph& graph_;
  std::unique_ptr<core::BlockCache> cache_;
  std::set<uint32_t> breakpoints_;
  /// Address whose breakpoint the next arrival skips (a resume must
  /// execute the instruction it stopped at; keyed by address so an
  /// interrupt redirect in between cannot consume the skip elsewhere).
  std::optional<uint32_t> skip_breakpoint_at_;

  std::array<uint32_t, 16> d_{};
  std::array<uint32_t, 16> a_{};
  uint32_t pc_ = 0;
  StopReason stop_ = StopReason::kRunning;

  // Timing state. Both engines keep `live_pipe_` equal to the issue-
  // schedule cycles of the currently open block: the stepping engine
  // mirrors its PipelineTimer, the block engine assigns the precomputed
  // cumulative cycles directly.
  arch::PipelineTimer timer_;
  arch::ICacheState icache_;
  uint64_t committed_cycles_ = 0;  ///< includes finished blocks + penalties
  uint64_t live_pipe_ = 0;         ///< pipeline cycles of the open block
  bool have_line_ = false;
  uint32_t last_line_ = 0;
  BlockRecord current_block_{};
  bool in_block_ = false;
  bool trace_blocks_ = false;
  std::vector<BlockRecord> block_trace_;

  // Private-slice (parallel prefix) state. `deferred_advance_` is the
  // local time of the latest bus-clock advance the slice *would* have
  // made (skipped interrupt samples, the halt-time sync); it is replayed
  // by commitPrivateSlice() at the core's sequential dispatch slot.
  bool private_mode_ = false;
  bool bailed_shared_ = false;
  uint64_t deferred_advance_ = 0;
  uint64_t skipped_samples_ = 0;

  // Fault injection (never serialized, never digested — harness state,
  // like the observability hooks below). `exec_ranges_` guards kMemWord
  // faults away from code: the predecoded block graph is built from the
  // image at construction and flipping instruction bytes would desync it
  // from memory.
  fi::CoreInjector* injector_ = nullptr;
  std::vector<std::pair<uint32_t, uint32_t>> exec_ranges_;  ///< [lo, hi)

  // Observability (never serialized, never digested — see the hook
  // comment above).
  obs::TraceSink* trace_sink_ = nullptr;
  uint32_t trace_lane_ = 0;
  obs::PcSampler* sampler_ = nullptr;
  core::EdgeCoverage* edge_cov_ = nullptr;
  uint64_t cov_last_time_ = 0;
  uint32_t cov_last_pc_ = 0;
  bool cov_have_last_ = false;

  IssStats stats_;
};

}  // namespace cabt::iss
