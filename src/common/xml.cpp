#include "common/xml.h"

#include <cctype>

#include "common/strutil.h"

namespace cabt::xml {
namespace {

/// Single-pass recursive-descent parser over the document text.
class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  std::unique_ptr<Element> parseDocument() {
    skipProlog();
    auto root = parseElement();
    skipMisc();
    CABT_CHECK(pos_ >= doc_.size(), "trailing content after root element at "
                                    "line " << line_);
    return root;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= doc_.size(); }

  [[nodiscard]] char peek() const {
    CABT_CHECK(!eof(), "unexpected end of document at line " << line_);
    return doc_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  [[nodiscard]] bool startsWith(std::string_view s) const {
    return doc_.substr(pos_, s.size()) == s;
  }

  void expect(std::string_view s) {
    CABT_CHECK(startsWith(s),
               "expected '" << s << "' at line " << line_);
    for (size_t i = 0; i < s.size(); ++i) {
      get();
    }
  }

  void skipWhitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(doc_[pos_]))) {
      get();
    }
  }

  void skipComment() {
    expect("<!--");
    while (!startsWith("-->")) {
      get();
    }
    expect("-->");
  }

  void skipProlog() {
    skipWhitespace();
    if (startsWith("<?")) {
      while (!startsWith("?>")) {
        get();
      }
      expect("?>");
    }
    skipMisc();
  }

  void skipMisc() {
    for (;;) {
      skipWhitespace();
      if (startsWith("<!--")) {
        skipComment();
      } else {
        return;
      }
    }
  }

  std::string parseName() {
    std::string name;
    while (!eof()) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.' || c == ':') {
        name.push_back(get());
      } else {
        break;
      }
    }
    CABT_CHECK(!name.empty(), "expected a name at line " << line_);
    return name;
  }

  std::string decodeEntities(std::string_view raw) {
    std::string out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const size_t semi = raw.find(';', i);
      CABT_CHECK(semi != std::string_view::npos,
                 "unterminated entity at line " << line_);
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out.push_back('<');
      } else if (ent == "gt") {
        out.push_back('>');
      } else if (ent == "amp") {
        out.push_back('&');
      } else if (ent == "quot") {
        out.push_back('"');
      } else if (ent == "apos") {
        out.push_back('\'');
      } else {
        CABT_FAIL("unknown entity '&" << std::string(ent) << ";' at line "
                                      << line_);
      }
      i = semi;
    }
    return out;
  }

  std::string parseAttrValue() {
    const char quote = get();
    CABT_CHECK(quote == '"' || quote == '\'',
               "expected quoted attribute value at line " << line_);
    std::string raw;
    while (peek() != quote) {
      raw.push_back(get());
    }
    get();  // closing quote
    return decodeEntities(raw);
  }

  std::unique_ptr<Element> parseElement() {
    expect("<");
    auto elem = std::make_unique<Element>(parseName(), line_);
    for (;;) {
      skipWhitespace();
      if (startsWith("/>")) {
        expect("/>");
        return elem;
      }
      if (startsWith(">")) {
        expect(">");
        break;
      }
      std::string attrName = parseName();
      skipWhitespace();
      expect("=");
      skipWhitespace();
      elem->addAttr(std::move(attrName), parseAttrValue());
    }
    // Content: text, children, comments, then the closing tag.
    for (;;) {
      if (startsWith("<!--")) {
        skipComment();
      } else if (startsWith("</")) {
        expect("</");
        const std::string closing = parseName();
        CABT_CHECK(closing == elem->name(),
                   "mismatched closing tag </" << closing << "> for <"
                                               << elem->name() << "> at line "
                                               << line_);
        skipWhitespace();
        expect(">");
        return elem;
      } else if (startsWith("<")) {
        elem->addChild(parseElement());
      } else {
        std::string raw;
        while (!eof() && peek() != '<') {
          raw.push_back(get());
        }
        elem->appendText(decodeEntities(raw));
      }
    }
  }

  std::string_view doc_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<const Element*> Element::childrenNamed(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) {
      out.push_back(c.get());
    }
  }
  return out;
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) {
      return c.get();
    }
  }
  return nullptr;
}

bool Element::hasAttr(std::string_view name) const {
  for (const auto& [k, v] : attrs_) {
    if (k == name) {
      return true;
    }
  }
  return false;
}

const std::string& Element::attr(std::string_view name) const {
  for (const auto& [k, v] : attrs_) {
    if (k == name) {
      return v;
    }
  }
  CABT_FAIL("element <" << name_ << "> (line " << line_
                        << ") missing attribute '" << std::string(name)
                        << "'");
}

std::string Element::attrOr(std::string_view name,
                            std::string_view fallback) const {
  return hasAttr(name) ? attr(name) : std::string(fallback);
}

int64_t Element::intAttr(std::string_view name) const {
  return parseInt(attr(name));
}

int64_t Element::intAttrOr(std::string_view name, int64_t fallback) const {
  return hasAttr(name) ? parseInt(attr(name)) : fallback;
}

void Element::addAttr(std::string name, std::string value) {
  CABT_CHECK(!hasAttr(name), "duplicate attribute '"
                                 << name << "' on <" << name_ << "> at line "
                                 << line_);
  attrs_.emplace_back(std::move(name), std::move(value));
}

std::unique_ptr<Element> parse(std::string_view document) {
  Parser parser(document);
  return parser.parseDocument();
}

}  // namespace cabt::xml
