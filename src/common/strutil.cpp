#include "common/strutil.h"

#include <cctype>

#include "common/error.h"

namespace cabt {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> splitOperands(std::string_view s) {
  std::vector<std::string_view> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == ',' && depth == 0)) {
      std::string_view piece = trim(s.substr(start, i - start));
      if (!piece.empty()) {
        out.push_back(piece);
      }
      start = i + 1;
    } else if (s[i] == '[') {
      ++depth;
    } else if (s[i] == ']') {
      --depth;
    }
  }
  return out;
}

int64_t parseInt(std::string_view s) {
  s = trim(s);
  CABT_CHECK(!s.empty(), "empty integer literal");
  bool neg = false;
  if (s.front() == '-' || s.front() == '+') {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  CABT_CHECK(!s.empty(), "sign with no digits");
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    s.remove_prefix(2);
  }
  uint64_t value = 0;
  for (char c : s) {
    int digit = -1;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else if (c == '_') {
      continue;  // digit group separator
    }
    CABT_CHECK(digit >= 0 && digit < base, "bad digit '" << c
                                                         << "' in integer");
    value = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
    CABT_CHECK(value <= (uint64_t{1} << 32), "integer literal out of range");
  }
  const int64_t v = static_cast<int64_t>(value);
  return neg ? -v : v;
}

bool isIdentifier(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  const char c0 = s.front();
  if (std::isalpha(static_cast<unsigned char>(c0)) == 0 && c0 != '_') {
    return false;
  }
  for (char c : s.substr(1)) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '.') {
      return false;
    }
  }
  return true;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string hex32(uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

}  // namespace cabt
