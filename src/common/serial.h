// Byte-stream serialization for the snapshot subsystem (src/snap).
//
// Deliberately minimal: little-endian fixed-width integers, length-
// prefixed strings and raw byte runs, over a growable byte vector. Every
// state-bearing layer (SparseMemory, PipelineTimer, ICacheState, the SoC
// devices, sim::Kernel, iss::Iss) writes its state through a Writer and
// reads it back through a Reader, so the platform snapshot format
// (DESIGN.md section 9) is the concatenation of per-layer sections and
// each layer owns its own field order. Readers throw cabt::Error on
// underrun or tag mismatch — a truncated or mismatched snapshot must
// never restore silently.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace cabt::serial {

class Writer {
 public:
  void u8(uint8_t v) { out_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u16(uint16_t v) {
    u8(static_cast<uint8_t>(v));
    u8(static_cast<uint8_t>(v >> 8));
  }
  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v));
    u16(static_cast<uint16_t>(v >> 16));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }

  void bytes(const void* p, size_t n) {
    if (n == 0) {
      return;
    }
    const size_t old = out_.size();
    out_.resize(old + n);
    std::memcpy(out_.data() + old, p, n);
  }

  /// Length-prefixed string (section names, device names).
  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  /// Section tag: a short marker the matching Reader::tag verifies, so a
  /// layer that drifts out of sync fails at the boundary, not 200 bytes
  /// later with garbage values.
  void tag(std::string_view t) { str(t); }

  [[nodiscard]] const std::vector<uint8_t>& data() const { return out_; }
  [[nodiscard]] size_t size() const { return out_.size(); }
  std::vector<uint8_t> take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& data)
      : Reader(data.data(), data.size()) {}

  uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  bool b() { return u8() != 0; }
  uint16_t u16() {
    const uint16_t lo = u8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(u8()) << 8));
  }
  uint32_t u32() {
    const uint32_t lo = u16();
    return lo | (static_cast<uint32_t>(u16()) << 16);
  }
  uint64_t u64() {
    const uint64_t lo = u32();
    return lo | (static_cast<uint64_t>(u32()) << 32);
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }

  void bytes(void* p, size_t n) {
    need(n);
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }

  std::string str() {
    const uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// Verifies the next section tag; throws on mismatch.
  void tag(std::string_view want) {
    const std::string got = str();
    CABT_CHECK(got == want, "snapshot section mismatch: expected '"
                                << std::string(want) << "', found '" << got
                                << "'");
  }

  [[nodiscard]] size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] size_t pos() const { return pos_; }

 private:
  void need(size_t n) const {
    CABT_CHECK(size_ - pos_ >= n,
               "snapshot truncated: need " << n << " bytes at offset "
                                           << pos_ << " of " << size_);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x00000100000001b3ull;

/// 64-bit FNV-1a over a byte run; the snapshot integrity footer and the
/// rolling state digest (snap::digest) both use it. Chainable via `seed`.
inline uint64_t fnv1a(const uint8_t* data, size_t size,
                      uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t fnv1a(const std::vector<uint8_t>& data,
                      uint64_t seed = kFnvOffset) {
  return fnv1a(data.data(), data.size(), seed);
}

}  // namespace cabt::serial
