// Minimal XML-subset parser used for architecture description files.
//
// Supports elements, attributes (single or double quoted), text content,
// comments, XML declarations and self-closing tags. It does not support
// namespaces, CDATA, DTDs or entity references beyond the five predefined
// ones — the architecture description schema does not need them.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace cabt::xml {

/// One parsed XML element. Children are owned; the tree is immutable after
/// parsing.
class Element {
 public:
  Element(std::string name, int line) : name_(std::move(name)), line_(line) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] const std::string& text() const { return text_; }

  /// All child elements, in document order.
  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }

  /// Children with a given element name.
  [[nodiscard]] std::vector<const Element*> childrenNamed(
      std::string_view name) const;

  /// First child with the given name, or nullptr.
  [[nodiscard]] const Element* child(std::string_view name) const;

  /// True when the attribute is present.
  [[nodiscard]] bool hasAttr(std::string_view name) const;

  /// Attribute accessors; the non-defaulted forms throw when missing.
  [[nodiscard]] const std::string& attr(std::string_view name) const;
  [[nodiscard]] std::string attrOr(std::string_view name,
                                   std::string_view fallback) const;
  [[nodiscard]] int64_t intAttr(std::string_view name) const;
  [[nodiscard]] int64_t intAttrOr(std::string_view name,
                                  int64_t fallback) const;

  // Mutators used by the parser only.
  void addAttr(std::string name, std::string value);
  void addChild(std::unique_ptr<Element> child) {
    children_.push_back(std::move(child));
  }
  void appendText(std::string_view t) { text_.append(t); }

 private:
  std::string name_;
  int line_ = 0;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// Parses a document and returns its root element. Throws cabt::Error with
/// a line number on malformed input.
std::unique_ptr<Element> parse(std::string_view document);

}  // namespace cabt::xml
