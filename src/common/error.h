// Error handling primitives for the cabt library.
//
// Recoverable failures (bad input files, malformed assembly, translation
// limits) are reported via cabt::Error, an exception carrying a formatted
// message. Programming errors (violated preconditions inside the library)
// use CABT_ASSERT, which also throws so that tests can observe them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cabt {

/// Exception type thrown for all recoverable cabt failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Builds an error message from a stream expression; used by the macros.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  [[nodiscard]] std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

[[noreturn]] inline void throwError(std::string_view where,
                                    const std::string& msg) {
  throw Error(std::string(where) + ": " + msg);
}

}  // namespace detail

// Throws cabt::Error with a streamed message: CABT_FAIL("bad op " << op).
#define CABT_FAIL(msg_expr)                                  \
  ::cabt::detail::throwError(                                \
      __func__, (::cabt::detail::MessageBuilder() << msg_expr).str())

// Checks a recoverable condition; throws cabt::Error when it fails.
#define CABT_CHECK(cond, msg_expr) \
  do {                             \
    if (!(cond)) {                 \
      CABT_FAIL(msg_expr);         \
    }                              \
  } while (false)

// Internal invariant check. Also throws (never aborts) so tests can assert
// on misuse, per the library's no-UB-on-bad-input policy.
#define CABT_ASSERT(cond, msg_expr)                         \
  do {                                                      \
    if (!(cond)) {                                          \
      CABT_FAIL("internal invariant failed: " << msg_expr); \
    }                                                       \
  } while (false)

}  // namespace cabt
