// Small string utilities used by the assembler and the XML parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cabt {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a delimiter character; does not trim the pieces.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Splits a line into comma-separated operands, trimming each, honouring
/// brackets so that "[a0] 4" style groups are not broken apart.
std::vector<std::string_view> splitOperands(std::string_view s);

/// Parses a signed integer literal: decimal, 0x hex, or 0b binary, with an
/// optional leading '-'. Throws cabt::Error on malformed input.
int64_t parseInt(std::string_view s);

/// True when `s` is a valid identifier ([A-Za-z_][A-Za-z0-9_.]*).
bool isIdentifier(std::string_view s);

/// Lower-cases ASCII.
std::string toLower(std::string_view s);

/// printf-style hex formatting of a 32-bit value: "0x%08x".
std::string hex32(uint32_t v);

}  // namespace cabt
