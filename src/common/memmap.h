// Memory-map description shared by the architecture description, the
// address analysis in the translator, and the simulated platforms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace cabt {

/// What a region of the address space contains, as seen by the translator.
enum class RegionKind {
  kRom,  ///< code / constant data; never remapped at runtime
  kRam,  ///< read-write memory; may be remapped to the target address space
  kIo,   ///< memory-mapped peripherals; accesses become SoC-bus transactions
};

/// One contiguous region of the address space.
struct MemRegion {
  std::string name;
  uint32_t base = 0;
  uint32_t size = 0;
  RegionKind kind = RegionKind::kRam;
  /// Base of this region in the target address space (remap destination).
  /// Equal to `base` when the region is not remapped.
  uint32_t remap_base = 0;

  [[nodiscard]] bool contains(uint32_t addr) const {
    return addr >= base && addr - base < size;
  }
  /// Translates a source address inside this region to the target space.
  [[nodiscard]] uint32_t remap(uint32_t addr) const {
    CABT_ASSERT(contains(addr), "remap of address outside region " << name);
    return remap_base + (addr - base);
  }
};

/// An ordered collection of non-overlapping memory regions.
class MemoryMap {
 public:
  void addRegion(MemRegion region) {
    CABT_CHECK(region.size > 0, "region '" << region.name << "' is empty");
    for (const MemRegion& r : regions_) {
      const bool disjoint = region.base + (region.size - 1) < r.base ||
                            r.base + (r.size - 1) < region.base;
      CABT_CHECK(disjoint, "region '" << region.name << "' overlaps '"
                                      << r.name << "'");
    }
    regions_.push_back(std::move(region));
  }

  [[nodiscard]] const std::vector<MemRegion>& regions() const {
    return regions_;
  }

  /// Region containing `addr`, or nullptr.
  [[nodiscard]] const MemRegion* find(uint32_t addr) const {
    for (const MemRegion& r : regions_) {
      if (r.contains(addr)) {
        return &r;
      }
    }
    return nullptr;
  }

  /// Region by name, or nullptr.
  [[nodiscard]] const MemRegion* findNamed(std::string_view name) const {
    for (const MemRegion& r : regions_) {
      if (r.name == name) {
        return &r;
      }
    }
    return nullptr;
  }

  /// Kind of the region containing `addr`; kRam when unmapped (the
  /// translator's documented fallback for statically unknown bases).
  [[nodiscard]] RegionKind kindOf(uint32_t addr) const {
    const MemRegion* r = find(addr);
    return r != nullptr ? r->kind : RegionKind::kRam;
  }

 private:
  std::vector<MemRegion> regions_;
};

}  // namespace cabt
