// Sparse little-endian byte-addressable memory for the simulators.
// Backed by 4 KiB pages allocated on first touch; untouched memory reads
// as zero. Used for the 32-bit address spaces of both processors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/serial.h"

namespace cabt {

class SparseMemory {
 public:
  static constexpr uint32_t kPageBits = 12;
  static constexpr uint32_t kPageSize = 1u << kPageBits;

  [[nodiscard]] uint8_t read8(uint32_t addr) const {
    const Page* p = findPage(addr);
    return p == nullptr ? 0 : (*p)[addr & (kPageSize - 1)];
  }
  void write8(uint32_t addr, uint8_t v) {
    page(addr)[addr & (kPageSize - 1)] = v;
  }

  [[nodiscard]] uint32_t read(uint32_t addr, unsigned size) const {
    uint32_t v = 0;
    for (unsigned i = 0; i < size; ++i) {
      v |= static_cast<uint32_t>(read8(addr + i)) << (8 * i);
    }
    return v;
  }
  void write(uint32_t addr, uint32_t v, unsigned size) {
    for (unsigned i = 0; i < size; ++i) {
      write8(addr + i, static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  [[nodiscard]] uint16_t read16(uint32_t addr) const {
    return static_cast<uint16_t>(read(addr, 2));
  }
  [[nodiscard]] uint32_t read32(uint32_t addr) const { return read(addr, 4); }
  void write16(uint32_t addr, uint16_t v) { write(addr, v, 2); }
  void write32(uint32_t addr, uint32_t v) { write(addr, v, 4); }

  void writeBlock(uint32_t addr, const uint8_t* data, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      write8(addr + static_cast<uint32_t>(i), data[i]);
    }
  }

  /// Addresses of all touched pages (for state-comparison in tests).
  [[nodiscard]] std::vector<uint32_t> touchedPages() const {
    std::vector<uint32_t> out;
    out.reserve(pages_.size());
    for (const auto& [base, page] : pages_) {
      out.push_back(base);
    }
    return out;
  }

  /// Compares the full contents of two memories (zero-extended, so a page
  /// touched with only zeros equals an untouched page).
  [[nodiscard]] bool contentEquals(const SparseMemory& other) const {
    return this->coveredBy(other) && other.coveredBy(*this);
  }

  /// Drops every page (all addresses read as zero again).
  void clear() { pages_.clear(); }

  // -- snapshot support (src/snap, DESIGN.md section 9) -----------------

  /// Serializes every touched page. Pages iterate in address order
  /// (std::map), so the byte stream is canonical for a given page set.
  void saveState(serial::Writer& w) const {
    w.tag("mem");
    w.u32(static_cast<uint32_t>(pages_.size()));
    for (const auto& [base, page] : pages_) {
      w.u32(base);
      w.bytes(page.data(), page.size());
    }
  }

  /// Replaces the full contents with a saved image.
  void restoreState(serial::Reader& r) {
    r.tag("mem");
    pages_.clear();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t base = r.u32();
      Page page(kPageSize, 0);
      r.bytes(page.data(), page.size());
      pages_.emplace(base, std::move(page));
    }
  }

  /// Canonical *content* serialization for the rolling state digest:
  /// all-zero pages are skipped, so a page touched with only zeros
  /// digests identically to an untouched page (the same equivalence
  /// contentEquals uses). Two memories with equal contents always
  /// produce identical bytes here, whatever their allocation history.
  void writeCanonical(serial::Writer& w) const {
    for (const auto& [base, page] : pages_) {
      const bool all_zero =
          std::all_of(page.begin(), page.end(),
                      [](uint8_t v) { return v == 0; });
      if (all_zero) {
        continue;
      }
      w.u32(base);
      w.bytes(page.data(), page.size());
    }
  }

 private:
  using Page = std::vector<uint8_t>;

  [[nodiscard]] bool coveredBy(const SparseMemory& other) const {
    for (const auto& [base, page] : pages_) {
      for (uint32_t i = 0; i < kPageSize; ++i) {
        if (page[i] != other.read8(base + i)) {
          return false;
        }
      }
    }
    return true;
  }

  [[nodiscard]] const Page* findPage(uint32_t addr) const {
    const auto it = pages_.find(addr >> kPageBits << kPageBits);
    return it == pages_.end() ? nullptr : &it->second;
  }

  Page& page(uint32_t addr) {
    const uint32_t base = addr >> kPageBits << kPageBits;
    auto it = pages_.find(base);
    if (it == pages_.end()) {
      it = pages_.emplace(base, Page(kPageSize, 0)).first;
    }
    return it->second;
  }

  std::map<uint32_t, Page> pages_;
};

}  // namespace cabt
