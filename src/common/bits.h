// Bit-manipulation helpers shared by the encoders, decoders and cache
// models. All field positions follow the convention [lo, lo+width).
#pragma once

#include <cstdint>

#include "common/error.h"

namespace cabt {

/// Extracts the unsigned bit field value[lo .. lo+width-1].
constexpr uint32_t bitField(uint32_t value, unsigned lo, unsigned width) {
  return (width >= 32) ? (value >> lo)
                       : ((value >> lo) & ((1u << width) - 1u));
}

/// Sign-extends the low `width` bits of `value` to 32 bits.
constexpr int32_t signExtend(uint32_t value, unsigned width) {
  const uint32_t sign = 1u << (width - 1);
  const uint32_t mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
  const uint32_t v = value & mask;
  return static_cast<int32_t>((v ^ sign) - sign);
}

/// True when `value` fits in a signed field of `width` bits.
constexpr bool fitsSigned(int64_t value, unsigned width) {
  const int64_t lo = -(int64_t{1} << (width - 1));
  const int64_t hi = (int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True when `value` fits in an unsigned field of `width` bits.
constexpr bool fitsUnsigned(uint64_t value, unsigned width) {
  return width >= 64 || value < (uint64_t{1} << width);
}

/// Inserts `field` (low `width` bits) into `word` at bit `lo`.
constexpr uint32_t insertField(uint32_t word, unsigned lo, unsigned width,
                               uint32_t field) {
  const uint32_t mask = ((width >= 32) ? ~0u : ((1u << width) - 1u)) << lo;
  return (word & ~mask) | ((field << lo) & mask);
}

/// True when `v` is a power of two (and non-zero).
constexpr bool isPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2Exact(uint32_t v) {
  unsigned n = 0;
  while ((v >> n) != 1u) {
    ++n;
  }
  return n;
}

/// Aligns `v` up to a power-of-two boundary.
constexpr uint32_t alignUp(uint32_t v, uint32_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace cabt
