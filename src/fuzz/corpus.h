// Self-contained fuzz seed cases and the on-disk corpus that holds them
// (DESIGN.md section 13).
//
// A SeedCase is everything needed to re-run one differential candidate
// bit-identically anywhere: the per-core TRC32 assembly sources, the
// board quantum, the snapshot-fork cycle, and the mid-run state
// mutations as `fi::` fault-spec strings ("dreg@800:core=0,index=3,
// mask=0x10"). The serialized form is a line-oriented text file — seed
// files are regression artifacts meant to be read, diffed and checked
// into tests/fuzz_seeds/, so they favour `git diff` over compactness.
//
// Format (order fixed, unknown keys rejected):
//   cabt-fuzz-seed v1
//   note <free text>            (optional)
//   quantum <cycles>
//   fork <cycle>                (0 = always replay from reset)
//   horizon <cycles>            (optional; estimated clean run length)
//   fault <fi spec>             (zero or more)
//   program                     (one or more; body ends at a '%%' line)
//   <assembly lines...>
//   %%
//
// A Corpus is a directory of *.seed files scanned in sorted filename
// order, so every walk over it is deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cabt::fuzz {

struct SeedCase {
  /// One TRC32 assembly source per core (1..3 cores).
  std::vector<std::string> programs;
  /// Board temporal-decoupling quantum (SoC cycles).
  uint64_t quantum = 256;
  /// Snapshot-fork point: mutated-state runs warm a board to this cycle
  /// once, snapshot it, and every fork restores instead of replaying
  /// from reset. 0 disables forking for this case.
  uint64_t fork_cycle = 0;
  /// Estimated clean-run length in SoC cycles (advisory; the mutator
  /// places fault cycles inside [fork_cycle, horizon]).
  uint64_t horizon = 0;
  /// Mid-run state mutations as fi:: fault-spec strings.
  std::vector<std::string> faults;
  /// Free-form provenance ("bootstrap seed 7", "finding: ...").
  std::string note;

  [[nodiscard]] bool hasSharedTraffic() const;
  /// Total program line count (the minimizer's size measure).
  [[nodiscard]] size_t totalLines() const;
};

/// Serializes to / parses from the format above. parseSeed throws
/// cabt::Error on malformed input (bad magic, unknown key, unterminated
/// program, no programs at all).
std::string serializeSeed(const SeedCase& c);
SeedCase parseSeed(const std::string& text);

/// Program-text line helpers shared by the mutator and the minimizer
/// (lines come back without their '\n'; join restores one per line).
std::vector<std::string> splitLines(const std::string& text);
std::string joinLines(const std::vector<std::string>& lines);

/// File wrappers; loadSeedFile throws cabt::Error when unreadable.
SeedCase loadSeedFile(const std::string& path);
void saveSeedFile(const SeedCase& c, const std::string& path);

/// A directory of seed files. Creating the Corpus scans once; add()
/// writes a new file and records it. Entries keep their paths so
/// findings can name their corpus origin.
class Corpus {
 public:
  /// Scans `dir` (created if absent) for *.seed files, sorted by name.
  explicit Corpus(std::string dir);

  /// Writes `c` as `<stem>-NNN.seed` (NNN picked to be fresh) and
  /// returns the path.
  std::string add(const SeedCase& c, const std::string& stem);

  [[nodiscard]] size_t size() const { return paths_.size(); }
  [[nodiscard]] const std::vector<std::string>& paths() const {
    return paths_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::vector<std::string> paths_;
};

}  // namespace cabt::fuzz
