#include "fuzz/oracle.h"

#include <array>
#include <memory>
#include <sstream>

#include "arch/arch.h"
#include "common/error.h"
#include "fi/fi.h"
#include "iss/iss.h"
#include "platform/platform.h"
#include "rtlsim/rtlsim.h"
#include "snap/snapshot.h"
#include "trc/assembler.h"
#include "xlat/translator.h"

namespace cabt::fuzz {

namespace {

const xlat::DetailLevel kLevels[] = {
    xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
    xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache};

const iss::DispatchMode kModes[] = {
    iss::DispatchMode::kLookup, iss::DispatchMode::kChained,
    iss::DispatchMode::kChainedTraces, iss::DispatchMode::kThreaded};

const char* modeName(iss::DispatchMode m) {
  switch (m) {
    case iss::DispatchMode::kLookup:
      return "lookup";
    case iss::DispatchMode::kChained:
      return "chained";
    case iss::DispatchMode::kChainedTraces:
      return "traces";
    case iss::DispatchMode::kThreaded:
      return "threaded";
  }
  return "?";
}

/// The validity gate and in-level comparison baseline: icache detail,
/// chained+traces dispatch, sequential kernel.
constexpr xlat::DetailLevel kRefLevel = xlat::DetailLevel::kICache;
constexpr iss::DispatchMode kRefMode = iss::DispatchMode::kChainedTraces;

uint64_t fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::string forkKey(const SeedCase& c, xlat::DetailLevel level,
                    iss::DispatchMode mode, bool par) {
  uint64_t h = 1469598103934665603ull;
  for (const std::string& p : c.programs) {
    h = fnv1a(h, p.data(), p.size());
    h = fnv1a(h, "|", 1);
  }
  std::ostringstream key;
  key << std::hex << h << std::dec << "-q" << c.quantum << "-f"
      << c.fork_cycle << "-l" << static_cast<int>(level) << "-m"
      << static_cast<int>(mode) << "-p" << (par ? 1 : 0);
  return key.str();
}

/// Everything one grid run exposes for comparison.
struct BoardObs {
  iss::StopReason stop = iss::StopReason::kRunning;
  uint64_t digest = 0;
  uint64_t bus_cycle = 0;
  std::vector<soc::Transaction> log;
  std::vector<iss::IssStats> stats;
  std::vector<std::array<uint32_t, 32>> regs;
  std::vector<uint32_t> pc;
  std::vector<std::vector<uint64_t>> irq_times;
};

BoardObs runBoard(const arch::ArchDescription& desc,
                  const std::vector<const elf::Object*>& ptrs,
                  const SeedCase& c, const OracleOptions& opts,
                  xlat::DetailLevel level, iss::DispatchMode mode, bool par,
                  SnapshotCache* cache, core::EdgeCoverage* coverage) {
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(level);
  cfg.iss.dispatch_mode = mode;
  // Aggressive formation so short fuzz programs exercise traces and
  // threaded lowering (the random_program_test idiom).
  cfg.iss.trace_threshold = 2;
  cfg.iss.threaded_threshold = 2;
  cfg.iss.max_instructions = opts.max_instructions;
  cfg.quantum = c.quantum;
  cfg.parallel.enabled = par;
  cfg.parallel.workers = 2;
  platform::ReferenceBoard board(desc, ptrs, cfg);

  // Snapshot fork: warm to the fork cycle once per (programs, config),
  // restore everywhere else. Faults arm at the fork in both paths, so
  // warm and cold runs are bit-identical (snap:: contract; pinned by
  // tests/fuzz_test.cpp SnapshotForkMatchesColdRun).
  if (c.fork_cycle > 0) {
    const std::string key = forkKey(c, level, mode, par);
    const std::vector<uint8_t>* snap_data =
        cache != nullptr ? cache->find(key) : nullptr;
    if (snap_data != nullptr) {
      snap::restore(board, *snap_data);
      cache->countHit();
    } else {
      board.runTo(c.fork_cycle);
      if (cache != nullptr) {
        cache->put(key, snap::save(board));
        cache->countMiss();
      }
    }
  }

  fi::Campaign campaign;
  for (const std::string& f : c.faults) {
    campaign.add(fi::parseFaultSpec(f));
  }
  if (!c.faults.empty()) {
    campaign.arm(board);
  }
  if (coverage != nullptr) {
    for (size_t i = 0; i < board.numCores(); ++i) {
      board.attachEdgeCoverage(i, coverage);
    }
  }

  BoardObs o;
  o.stop = board.run();
  o.digest = snap::digest(board);
  o.bus_cycle = board.board().bus.socCycle();
  o.log = board.board().bus.log();
  for (size_t i = 0; i < board.numCores(); ++i) {
    o.stats.push_back(board.core(i).stats());
    std::array<uint32_t, 32> regs{};
    for (int j = 0; j < 16; ++j) {
      regs[static_cast<size_t>(j)] = board.core(i).d(j);
      regs[static_cast<size_t>(j) + 16] = board.core(i).a(j);
    }
    o.regs.push_back(regs);
    o.pc.push_back(board.core(i).pc());
    o.irq_times.push_back(board.intc(i).deliveryTimes());
  }
  return o;
}

/// Bit-exact in-level comparison; returns the first difference or "".
std::string diffObs(const BoardObs& want, const BoardObs& got) {
  std::ostringstream out;
  if (got.stop != want.stop) {
    out << "stop reason " << static_cast<int>(got.stop) << " != "
        << static_cast<int>(want.stop);
    return out.str();
  }
  if (got.digest != want.digest) {
    out << "digest 0x" << std::hex << got.digest << " != 0x" << want.digest;
    return out.str();
  }
  if (got.bus_cycle != want.bus_cycle) {
    out << "bus cycle " << got.bus_cycle << " != " << want.bus_cycle;
    return out.str();
  }
  if (got.log.size() != want.log.size()) {
    out << "bus log length " << got.log.size() << " != " << want.log.size();
    return out.str();
  }
  for (size_t i = 0; i < want.log.size(); ++i) {
    const soc::Transaction& a = want.log[i];
    const soc::Transaction& b = got.log[i];
    if (a.soc_cycle != b.soc_cycle || a.addr != b.addr ||
        a.value != b.value || a.size != b.size || a.is_write != b.is_write) {
      out << "bus txn " << i << " differs (cycle " << b.soc_cycle << "/"
          << a.soc_cycle << " addr 0x" << std::hex << b.addr << "/0x"
          << a.addr << ")";
      return out.str();
    }
  }
  for (size_t i = 0; i < want.stats.size(); ++i) {
    const iss::IssStats& a = want.stats[i];
    const iss::IssStats& b = got.stats[i];
    if (b.instructions != a.instructions || b.cycles != a.cycles ||
        b.pipeline_cycles != a.pipeline_cycles ||
        b.branch_extra != a.branch_extra ||
        b.cache_penalty != a.cache_penalty || b.blocks != a.blocks ||
        b.io_reads != a.io_reads || b.io_writes != a.io_writes ||
        b.irqs_taken != a.irqs_taken) {
      out << "core " << i << " stats differ (instr " << b.instructions
          << "/" << a.instructions << " cycles " << b.cycles << "/"
          << a.cycles << ")";
      return out.str();
    }
    if (got.regs[i] != want.regs[i]) {
      out << "core " << i << " registers differ";
      return out.str();
    }
    if (got.pc[i] != want.pc[i]) {
      out << "core " << i << " pc 0x" << std::hex << got.pc[i] << " != 0x"
          << want.pc[i];
      return out.str();
    }
    if (got.irq_times[i] != want.irq_times[i]) {
      out << "core " << i << " irq delivery timestamps differ";
      return out.str();
    }
  }
  return "";
}

/// Functional (timing-independent) comparison across detail levels.
std::string diffFunctional(const BoardObs& want, const BoardObs& got) {
  std::ostringstream out;
  for (size_t i = 0; i < want.stats.size(); ++i) {
    if (got.stats[i].instructions != want.stats[i].instructions) {
      out << "core " << i << " instructions "
          << got.stats[i].instructions << " != "
          << want.stats[i].instructions;
      return out.str();
    }
    if (got.stats[i].io_reads != want.stats[i].io_reads ||
        got.stats[i].io_writes != want.stats[i].io_writes) {
      out << "core " << i << " io counts differ";
      return out.str();
    }
    if (got.regs[i] != want.regs[i]) {
      out << "core " << i << " registers differ";
      return out.str();
    }
    if (got.pc[i] != want.pc[i]) {
      out << "core " << i << " pc differs";
      return out.str();
    }
  }
  return "";
}

}  // namespace

const std::vector<uint8_t>* SnapshotCache::find(
    const std::string& key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void SnapshotCache::put(const std::string& key, std::vector<uint8_t> data) {
  if (map_.count(key) != 0) {
    return;
  }
  while (map_.size() >= capacity_ && !order_.empty()) {
    map_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(key);
  map_.emplace(key, std::move(data));
}

OracleResult runOracle(const SeedCase& c, const OracleOptions& opts,
                       SnapshotCache* cache, core::EdgeCoverage* coverage) {
  OracleResult result;
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();

  std::vector<elf::Object> images;
  std::vector<const elf::Object*> ptrs;
  try {
    for (const std::string& p : c.programs) {
      images.push_back(trc::assemble(p));
    }
  } catch (const Error& e) {
    result.mismatch = std::string("assembly failed: ") + e.what();
    return result;  // invalid, not a finding
  }
  for (const elf::Object& obj : images) {
    ptrs.push_back(&obj);
  }

  // ---- reference configuration: validity gate + coverage feedback ----
  BoardObs ref;
  try {
    ref = runBoard(desc, ptrs, c, opts, kRefLevel, kRefMode,
                   /*par=*/false, cache, coverage);
    ++result.executions;
  } catch (const Error& e) {
    result.mismatch = std::string("reference run failed: ") + e.what();
    return result;  // invalid
  }
  if (ref.stop != iss::StopReason::kHalted) {
    result.mismatch = "reference run did not halt (instruction budget)";
    return result;  // invalid: mutant spins, discard
  }
  result.valid = true;
  result.ref_cycles = ref.bus_cycle;

  // Cycle-keyed faults land at level-dependent program points, and
  // multi-core shared-bus interleavings legitimately shift with the
  // timing model — in both shapes only in-level comparison is sound.
  const bool cross_level_ok =
      c.faults.empty() && (c.programs.size() == 1 || !c.hasSharedTraffic());

  try {
    // ---- the board grid: detail x dispatch x seq/par -----------------
    for (const xlat::DetailLevel level : kLevels) {
      BoardObs leader;
      bool have_leader = false;
      if (level == kRefLevel) {
        leader = ref;
        have_leader = true;
      }
      for (const iss::DispatchMode mode : kModes) {
        for (const bool par : {false, true}) {
          if (level == kRefLevel && mode == kRefMode && !par) {
            continue;  // already ran as the reference
          }
          BoardObs got = runBoard(desc, ptrs, c, opts, level, mode, par,
                                  cache, nullptr);
          ++result.executions;
          if (!have_leader) {
            leader = std::move(got);
            have_leader = true;
            continue;
          }
          const std::string diff = diffObs(leader, got);
          if (!diff.empty()) {
            std::ostringstream out;
            out << "level=" << xlat::detailLevelName(level)
                << " dispatch=" << modeName(mode) << " par=" << par << ": "
                << diff;
            result.mismatch = out.str();
            return result;
          }
        }
      }
      if (cross_level_ok && level != kRefLevel) {
        const std::string diff = diffFunctional(ref, leader);
        if (!diff.empty()) {
          result.mismatch = std::string("cross-level level=") +
                            xlat::detailLevelName(level) + ": " + diff;
          return result;
        }
      }
    }

    // ---- three-way extras: rtlsim + translated platform --------------
    // Only single-program cases without shared traffic or faults: the
    // RT model has no bus, the translated platform replays no fi::
    // campaigns, and both replay from reset.
    if (opts.three_way && c.programs.size() == 1 && c.faults.empty() &&
        !c.hasSharedTraffic()) {
      const elf::Object& obj = images.front();
      iss::IssConfig ref_cfg;
      ref_cfg.max_instructions = opts.max_instructions;
      iss::Iss iss_ref(desc, obj, nullptr, ref_cfg);
      ++result.executions;
      if (iss_ref.run() != iss::StopReason::kHalted) {
        result.mismatch = "standalone ISS did not halt";
        return result;
      }

      rtlsim::RtlCore rtl(desc, obj);
      ++result.executions;
      rtl.run(opts.max_instructions * 8);
      if (!rtl.halted()) {
        result.mismatch = "rtlsim did not halt";
        return result;
      }
      if (rtl.stats().cycles != iss_ref.stats().cycles) {
        std::ostringstream out;
        out << "rtlsim cycles " << rtl.stats().cycles << " != ISS "
            << iss_ref.stats().cycles;
        result.mismatch = out.str();
        return result;
      }
      for (int i = 0; i < 16; ++i) {
        if (rtl.d(i) != iss_ref.d(i)) {
          result.mismatch = "rtlsim d" + std::to_string(i) + " differs";
          return result;
        }
      }

      for (const xlat::DetailLevel level : kLevels) {
        xlat::TranslateOptions xopts;
        xopts.level = level;
        xopts.debug_skew_static_cycles = opts.xlat_skew;
        const xlat::TranslationResult t = xlat::translate(desc, obj, xopts);
        platform::PlatformConfig pcfg;
        pcfg.max_cycles = opts.max_vliw_cycles;
        platform::EmulationPlatform plat(desc, t.image, pcfg);
        ++result.executions;
        const platform::RunResult run = plat.run();
        if (run.state != vliw::RunState::kHalted) {
          result.mismatch = std::string("translated platform (") +
                            xlat::detailLevelName(level) +
                            ") did not halt";
          return result;
        }
        const std::string diff =
            platform::compareFinalState(desc, iss_ref, plat, obj);
        if (!diff.empty()) {
          result.mismatch = std::string("translated platform (") +
                            xlat::detailLevelName(level) + "): " + diff;
          return result;
        }
        if (level == xlat::DetailLevel::kICache &&
            run.generated_cycles != iss_ref.stats().cycles) {
          std::ostringstream out;
          out << "translated platform (icache): generated cycles "
              << run.generated_cycles << " != ISS " << iss_ref.stats().cycles;
          result.mismatch = out.str();
          return result;
        }
        if (level == xlat::DetailLevel::kBranchPredict &&
            run.generated_cycles + iss_ref.stats().cache_penalty !=
                iss_ref.stats().cycles) {
          std::ostringstream out;
          out << "translated platform (branch-predict): generated cycles "
              << run.generated_cycles << " + cache penalty "
              << iss_ref.stats().cache_penalty << " != ISS "
              << iss_ref.stats().cycles;
          result.mismatch = out.str();
          return result;
        }
      }
    }
  } catch (const Error& e) {
    // An engine exception on a candidate whose reference run was clean
    // is itself a divergence worth reporting.
    result.mismatch = std::string("engine exception: ") + e.what();
    return result;
  }

  result.ok = true;
  return result;
}

}  // namespace cabt::fuzz
