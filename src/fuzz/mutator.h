// Seed-case mutation operators (DESIGN.md section 13).
//
// Text operators work on the assembly source at line granularity and
// only ever touch "plain" lines — label-free data/memory instructions
// over d0..d7 — so the control-flow skeleton the generator emitted
// (loop counters d10..d15, branches, calls, halt) survives every
// mutation and mutants keep terminating. State operators edit the
// fault-spec list instead: they mutate mid-run architectural state
// (registers, memory words, pending bus-error IRQs) through the fi::
// grammar, applied after the snapshot fork.
//
// Every product is validated before it leaves mutate(): each changed
// program must assemble (trc::assemble inside a catch) and each fault
// spec must parse. A mutant that fails validation is re-rolled a
// bounded number of times; mutate() returns nullopt when the case
// offers no applicable operator at all.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "fuzz/corpus.h"

namespace cabt::fuzz {

struct MutatorConfig {
  /// Re-rolls before mutate() gives up on a base case.
  unsigned attempts = 8;
  /// Cores the state operators may target (clamped to the case's
  /// program count).
  size_t max_cores = 3;
};

class Mutator {
 public:
  explicit Mutator(uint32_t seed, MutatorConfig config = {})
      : rng_(seed), config_(config) {}

  /// One mutated copy of `base`, or nullopt when nothing applied.
  std::optional<SeedCase> mutate(const SeedCase& base);

  /// Name of the operator the last successful mutate() applied.
  [[nodiscard]] const std::string& lastOperator() const { return last_op_; }

 private:
  using Lines = std::vector<std::string>;

  bool apply(SeedCase& c);
  bool spliceLines(Lines& lines);
  bool swapLines(Lines& lines);
  bool perturbImmediate(Lines& lines);
  bool perturbRegister(Lines& lines);
  bool reshapeLoopBound(Lines& lines);
  bool reshapeSharedTraffic(Lines& lines);
  bool mutateState(SeedCase& c);

  uint32_t pick(uint32_t n) { return rng_() % n; }
  int smallInt() { return static_cast<int>(pick(2001)) - 1000; }
  std::string makeFault(const SeedCase& c);

  std::mt19937 rng_;
  MutatorConfig config_;
  std::string last_op_;
};

}  // namespace cabt::fuzz
