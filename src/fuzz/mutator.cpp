#include "fuzz/mutator.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"
#include "common/strutil.h"
#include "fi/fi.h"
#include "trc/assembler.h"

namespace cabt::fuzz {

namespace {

/// "Plain" = safely movable/duplicable: a label-free data or private-
/// memory instruction over d0..d7. Excludes control flow, directives,
/// and anything touching the loop counters d10..d15 — moving those
/// could make a mutant spin forever, and non-halting candidates only
/// waste oracle budget.
bool isPlainLine(const std::string& line) {
  const std::string_view t = trim(line);
  if (t.empty() || line.find(':') != std::string::npos ||
      t.front() == '.') {
    return false;
  }
  const size_t sp = t.find(' ');
  const std::string_view op = sp == std::string_view::npos ? t : t.substr(0, sp);
  static const char* kOps[] = {"add",   "sub",   "and", "or",  "xor",
                               "mul",   "shl",   "sar", "mov16", "add16",
                               "sub16", "movi",  "stw", "ldw", "stb"};
  bool known = false;
  for (const char* o : kOps) {
    known |= op == o;
  }
  if (!known) {
    return false;
  }
  // d10..d15 anywhere in the operands disqualifies the line.
  for (size_t i = 0; i + 2 < line.size(); ++i) {
    if (line[i] == 'd' && line[i + 1] == '1' &&
        std::isdigit(static_cast<unsigned char>(line[i + 2])) != 0) {
      return false;
    }
  }
  return true;
}

std::vector<size_t> plainIndices(const std::vector<std::string>& lines) {
  std::vector<size_t> out;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (isPlainLine(lines[i])) {
      out.push_back(i);
    }
  }
  return out;
}

bool assembles(const std::string& source) {
  try {
    (void)trc::assemble(source);
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace

std::optional<SeedCase> Mutator::mutate(const SeedCase& base) {
  for (unsigned attempt = 0; attempt < config_.attempts; ++attempt) {
    SeedCase c = base;
    if (!apply(c)) {
      continue;
    }
    bool ok = true;
    for (const std::string& p : c.programs) {
      ok = ok && assembles(p);
    }
    for (const std::string& f : c.faults) {
      try {
        (void)fi::parseFaultSpec(f);
      } catch (const Error&) {
        ok = false;
      }
    }
    if (ok) {
      return c;
    }
  }
  return std::nullopt;
}

bool Mutator::apply(SeedCase& c) {
  const size_t prog = pick(static_cast<uint32_t>(c.programs.size()));
  Lines lines = splitLines(c.programs[prog]);
  bool changed = false;
  switch (pick(7)) {
    case 0:
      last_op_ = "splice";
      changed = spliceLines(lines);
      break;
    case 1:
      last_op_ = "swap";
      changed = swapLines(lines);
      break;
    case 2:
      last_op_ = "imm";
      changed = perturbImmediate(lines);
      break;
    case 3:
      last_op_ = "reg";
      changed = perturbRegister(lines);
      break;
    case 4:
      last_op_ = "loop_bound";
      changed = reshapeLoopBound(lines);
      break;
    case 5:
      last_op_ = "shared_traffic";
      changed = reshapeSharedTraffic(lines);
      break;
    case 6:
      last_op_ = "state";
      return mutateState(c);
  }
  if (changed) {
    c.programs[prog] = joinLines(lines);
  }
  return changed;
}

bool Mutator::spliceLines(Lines& lines) {
  const std::vector<size_t> plain = plainIndices(lines);
  if (plain.size() < 2) {
    return false;
  }
  // Copy a short run of plain lines in front of another plain line.
  const size_t from = plain[pick(static_cast<uint32_t>(plain.size()))];
  size_t n = 1 + pick(3);
  Lines run;
  for (size_t i = from; i < lines.size() && run.size() < n; ++i) {
    if (!isPlainLine(lines[i])) {
      break;
    }
    run.push_back(lines[i]);
  }
  const size_t to = plain[pick(static_cast<uint32_t>(plain.size()))];
  lines.insert(lines.begin() + static_cast<ptrdiff_t>(to), run.begin(),
               run.end());
  return true;
}

bool Mutator::swapLines(Lines& lines) {
  const std::vector<size_t> plain = plainIndices(lines);
  if (plain.size() < 2) {
    return false;
  }
  const size_t a = plain[pick(static_cast<uint32_t>(plain.size()))];
  const size_t b = plain[pick(static_cast<uint32_t>(plain.size()))];
  if (a == b) {
    return false;
  }
  std::swap(lines[a], lines[b]);
  return true;
}

bool Mutator::perturbImmediate(Lines& lines) {
  // Candidates: `movi dX, N` constants (X <= 7 by the plain-line rule)
  // and `[a0]off` buffer offsets; both stay inside the generator's
  // value/offset ranges so mutants keep the buffer footprint.
  std::vector<size_t> cands;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!isPlainLine(lines[i])) {
      continue;
    }
    if (lines[i].find("movi d") != std::string::npos ||
        lines[i].find("[a0]") != std::string::npos) {
      cands.push_back(i);
    }
  }
  if (cands.empty()) {
    return false;
  }
  std::string& line = lines[cands[pick(static_cast<uint32_t>(cands.size()))]];
  if (line.find("movi d") != std::string::npos) {
    const size_t comma = line.rfind(',');
    line = line.substr(0, comma + 1) + " " + std::to_string(smallInt());
    return true;
  }
  const size_t base = line.find("[a0]");
  const size_t off_start = base + 4;
  const bool byte_op = trim(line).substr(0, 3) == "stb";
  const int off = byte_op ? static_cast<int>(pick(200))
                          : static_cast<int>(pick(60)) * 4;
  line = line.substr(0, off_start) + std::to_string(off);
  return true;
}

bool Mutator::perturbRegister(Lines& lines) {
  const std::vector<size_t> plain = plainIndices(lines);
  if (plain.empty()) {
    return false;
  }
  std::string& line = lines[plain[pick(static_cast<uint32_t>(plain.size()))]];
  // Collect `dN` operand positions (N one digit by the plain-line rule).
  std::vector<size_t> regs;
  for (size_t i = 0; i + 1 < line.size(); ++i) {
    const bool boundary = i == 0 || line[i - 1] == ' ' || line[i - 1] == ',';
    if (boundary && line[i] == 'd' &&
        std::isdigit(static_cast<unsigned char>(line[i + 1])) != 0 &&
        (i + 2 >= line.size() ||
         std::isdigit(static_cast<unsigned char>(line[i + 2])) == 0)) {
      regs.push_back(i + 1);
    }
  }
  if (regs.empty()) {
    return false;
  }
  line[regs[pick(static_cast<uint32_t>(regs.size()))]] =
      static_cast<char>('0' + pick(8));
  return true;
}

bool Mutator::reshapeLoopBound(Lines& lines) {
  std::vector<size_t> cands;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string_view t = trim(lines[i]);
    if (t.substr(0, 7) == "movi d1" && t.size() > 7 &&
        std::isdigit(static_cast<unsigned char>(t[7])) != 0 && t[7] <= '2') {
      cands.push_back(i);
    }
  }
  if (cands.empty()) {
    return false;
  }
  std::string& line = lines[cands[pick(static_cast<uint32_t>(cands.size()))]];
  const size_t comma = line.rfind(',');
  line = line.substr(0, comma + 1) + " " + std::to_string(2 + pick(30));
  return true;
}

bool Mutator::reshapeSharedTraffic(Lines& lines) {
  std::vector<size_t> shared;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("[a5]") != std::string::npos) {
      shared.push_back(i);
    }
  }
  if (shared.empty()) {
    return false;  // program never set up a5; nothing to reshape
  }
  if (shared.size() > 1 && pick(2) == 0) {
    lines.erase(lines.begin() +
                static_cast<ptrdiff_t>(
                    shared[pick(static_cast<uint32_t>(shared.size()))]));
    return true;
  }
  // Insert a fresh scratch/mailbox access after an existing one (a5 is
  // guaranteed live there).
  std::string line = "        ";
  const int reg = static_cast<int>(pick(8));
  switch (pick(4)) {
    case 0:
      line += "stw d" + std::to_string(reg) + ", [a5]" +
              std::to_string(0x300 + static_cast<int>(pick(16)) * 4);
      break;
    case 1:
      line += "ldw d" + std::to_string(reg) + ", [a5]" +
              std::to_string(0x300 + static_cast<int>(pick(16)) * 4);
      break;
    case 2:
      line += "stw d" + std::to_string(reg) + ", [a5]1536";  // mailbox push
      break;
    case 3:
      line += "ldw d" + std::to_string(reg) + ", [a5]1540";  // status poll
      break;
  }
  const size_t at = shared[pick(static_cast<uint32_t>(shared.size()))];
  lines.insert(lines.begin() + static_cast<ptrdiff_t>(at) + 1, line);
  return true;
}

std::string Mutator::makeFault(const SeedCase& c) {
  const size_t cores = std::min(c.programs.size(), config_.max_cores);
  const size_t core = pick(static_cast<uint32_t>(cores));
  // Land inside the warmed run: at or after the fork point, within the
  // case's estimated horizon (plus slack for short cases).
  const uint64_t lo = c.fork_cycle;
  const uint64_t span =
      c.horizon > lo + 100 ? c.horizon - lo : 200;
  const uint64_t cycle = lo + pick(static_cast<uint32_t>(span));
  const uint32_t mask = 1u << pick(32);
  switch (pick(4)) {
    case 0:
      return "dreg@" + std::to_string(cycle) +
             ":core=" + std::to_string(core) +
             ",index=" + std::to_string(pick(8)) +
             ",mask=" + std::to_string(mask);
    case 1:
      // Word flips inside the private data buffer (buf sits at the data
      // base; the ISS refuses code addresses anyway).
      return "mem@" + std::to_string(cycle) +
             ":core=" + std::to_string(core) + ",addr=" +
             std::to_string(0xd0000000u + pick(64) * 4) +
             ",mask=" + std::to_string(mask);
    case 2:
      // A bus-error window over one scratch register: an access raises
      // the (masked by default) bus-error IRQ line — a pending-IRQ
      // state mutation through the fi:: grammar.
      return "buserr@" + std::to_string(cycle) +
             ":core=" + std::to_string(core) + ",addr=" +
             std::to_string(0xf0000300u + pick(16) * 4) +
             ",until=" + std::to_string(cycle + 256) + ",count=1";
    default:
      return "dreg@" + std::to_string(cycle) +
             ":core=" + std::to_string(core) + ",index=" +
             std::to_string(pick(8)) + ",mask=" + std::to_string(mask);
  }
}

bool Mutator::mutateState(SeedCase& c) {
  if (!c.faults.empty() && pick(3) == 0) {
    c.faults.erase(c.faults.begin() +
                   static_cast<ptrdiff_t>(
                       pick(static_cast<uint32_t>(c.faults.size()))));
    return true;
  }
  if (c.faults.size() >= 4) {
    return false;  // keep cases small enough to minimize quickly
  }
  c.faults.push_back(makeFault(c));
  return true;
}

}  // namespace cabt::fuzz
