#include "fuzz/program_gen.h"

namespace cabt::fuzz {

std::string describe(const GeneratorConfig& config) {
  return "seed=" + std::to_string(config.seed) +
         " shared_traffic=" + (config.shared_traffic ? "1" : "0");
}

std::string ProgramGenerator::generate() {
  out_.str("");
  callees_.str("");
  out_ << "_start: movha a0, hi(buf)\n";
  out_ << "        lea a0, a0, lo(buf)\n";
  if (config_.shared_traffic) {
    out_ << "        movha a5, 0xf000\n";  // I/O region base
  }
  // Seed a few data registers with random constants.
  for (int i = 0; i < 6; ++i) {
    out_ << "        movi d" << i << ", " << smallInt() << "\n";
  }
  const int sections = 2 + static_cast<int>(rng_() % 3);
  for (int s = 0; s < sections; ++s) {
    switch (rng_() % (config_.shared_traffic ? 5 : 4)) {
      case 0:
        emitStraightLine();
        break;
      case 1:
        emitLoop(s);
        break;
      case 2:
        emitMemoryTraffic(s);
        break;
      case 3:
        emitCall(s);
        break;
      case 4:
        emitSharedTraffic();
        break;
    }
  }
  if (config_.shared_traffic) {
    emitSharedTraffic();  // at least one shared access per program
  }
  // Fold state into d9 so every path affects the final comparison.
  out_ << "        add d9, d9, d0\n";
  out_ << "        add d9, d9, d1\n";
  out_ << "        halt\n";
  // Callee bodies are appended after the halt.
  out_ << callees_.str();
  out_ << "        .bss\nbuf:    .space 256\n";
  return out_.str();
}

void ProgramGenerator::emitStraightLine() {
  static const char* ops[] = {"add", "sub", "and", "or",
                              "xor", "mul", "shl", "sar"};
  const int n = 3 + static_cast<int>(rng_() % 10);
  for (int i = 0; i < n; ++i) {
    if (rng_() % 4 == 0) {
      // 16-bit forms exercise the mixed-width decoding and CABs.
      static const char* ops16[] = {"mov16", "add16", "sub16"};
      out_ << "        " << ops16[rng_() % 3] << " d" << reg() << ", d"
           << reg() << "\n";
    } else {
      out_ << "        " << ops[rng_() % 8] << " d" << reg() << ", d"
           << reg() << ", d" << reg() << "\n";
    }
  }
}

void ProgramGenerator::emitLoop(int id) {
  const int count = 2 + static_cast<int>(rng_() % 20);
  const int counter = 10 + static_cast<int>(rng_() % 3);  // d10..d12
  out_ << "        movi d" << counter << ", " << count << "\n";
  out_ << "l" << id << ":\n";
  emitStraightLine();
  out_ << "        addi16 d" << counter << ", -1\n";
  // Alternate between the 16-bit and 32-bit conditional forms.
  if (rng_() % 2 == 0) {
    out_ << "        jnz16 d" << counter << ", l" << id << "\n";
  } else {
    out_ << "        movi d13, 0\n";
    out_ << "        jne d" << counter << ", d13, l" << id << "\n";
  }
}

void ProgramGenerator::emitMemoryTraffic(int id) {
  (void)id;
  const int n = 2 + static_cast<int>(rng_() % 5);
  for (int i = 0; i < n; ++i) {
    const int off = static_cast<int>(rng_() % 60) * 4;
    if (rng_() % 2 == 0) {
      out_ << "        stw d" << reg() << ", [a0]" << off << "\n";
    } else {
      out_ << "        ldw d" << reg() << ", [a0]" << off << "\n";
    }
    if (rng_() % 3 == 0) {
      out_ << "        stb d" << reg() << ", [a0]" << (rng_() % 200)
           << "\n";
    }
  }
}

void ProgramGenerator::emitCall(int id) {
  out_ << "        jl f" << id << "\n";
  callees_ << "f" << id << ":\n";
  const int n = 1 + static_cast<int>(rng_() % 4);
  for (int i = 0; i < n; ++i) {
    callees_ << "        add d" << reg() << ", d" << reg() << ", d"
             << reg() << "\n";
  }
  callees_ << "        ret16\n";
}

// Random chatter with the shared peripherals: scratch-register reads
// and writes, mailbox pushes, pops and status polls (a pop of an empty
// mailbox reads 0 — benign whatever the interleaving).
void ProgramGenerator::emitSharedTraffic() {
  const int n = 1 + static_cast<int>(rng_() % 3);
  for (int i = 0; i < n; ++i) {
    const int scratch = 0x300 + static_cast<int>(rng_() % 16) * 4;
    switch (rng_() % 5) {
      case 0:
        out_ << "        stw d" << reg() << ", [a5]" << scratch << "\n";
        break;
      case 1:
        out_ << "        ldw d" << reg() << ", [a5]" << scratch << "\n";
        break;
      case 2:
        out_ << "        stw d" << reg() << ", [a5]" << 0x600 << "\n";
        break;
      case 3:
        out_ << "        ldw d" << reg() << ", [a5]" << 0x600 << "\n";
        break;
      case 4:
        out_ << "        ldw d" << reg() << ", [a5]" << 0x604 << "\n";
        break;
    }
  }
}

}  // namespace cabt::fuzz
