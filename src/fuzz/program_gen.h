// Deterministic structured TRC32 program generator — the seed source of
// the differential fuzzing farm (DESIGN.md section 13) and of the
// random-program property tests.
//
// Extracted from tests/random_program_test.cpp so the generator has
// exactly one definition: the property tests, the farm's corpus
// bootstrap and the fuzz_tool `gen` command all consume this library.
// Generation is a pure function of GeneratorConfig — identical configs
// produce identical source text, which is what makes every failure
// reproducible from its logged (seed, config) line alone.
#pragma once

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

namespace cabt::fuzz {

struct GeneratorConfig {
  uint32_t seed = 1;
  /// Additionally talk to the reference board's shared peripherals
  /// (scratch registers and the inter-core mailbox) between private
  /// compute sections — the workload shape of the multi-core
  /// parallel-round scenario. Programs with shared traffic need a board
  /// (the standalone ISS has no bus).
  bool shared_traffic = false;
};

/// One-line human-readable form ("seed=7 shared_traffic=1"), printed by
/// failing tests so a log line reproduces the exact program.
std::string describe(const GeneratorConfig& config);

/// Deterministic structured program generator: straight-line arithmetic,
/// bounded loops (counters d10..d12), memory traffic against a private
/// 256-byte buffer, calls, mixed 16/32-bit encodings, and (with
/// shared_traffic) scratch/mailbox chatter through a5. Every program
/// folds its state into d9 and halts.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(uint32_t seed, bool shared_traffic = false)
      : ProgramGenerator(GeneratorConfig{seed, shared_traffic}) {}
  explicit ProgramGenerator(const GeneratorConfig& config)
      : config_(config), rng_(config.seed) {}

  std::string generate();

  [[nodiscard]] const GeneratorConfig& config() const { return config_; }

 private:
  int smallInt() { return static_cast<int>(rng_() % 2001) - 1000; }
  int reg() { return static_cast<int>(rng_() % 8); }  // d0..d7

  void emitStraightLine();
  void emitLoop(int id);
  void emitMemoryTraffic(int id);
  void emitCall(int id);
  void emitSharedTraffic();

  GeneratorConfig config_;
  std::mt19937 rng_;
  std::ostringstream out_;
  std::ostringstream callees_;
};

}  // namespace cabt::fuzz
