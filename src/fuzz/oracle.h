// The three-way differential oracle of the fuzzing farm (DESIGN.md
// section 13).
//
// One candidate SeedCase is executed across the full reference-board
// grid — detail level {functional, static, branch-predict, icache} ×
// dispatch {lookup, chained, chained+traces, threaded} × {sequential,
// parallel-round} — and, for single-program cases without shared
// traffic or faults, additionally against the RT-level model and the
// translated platform at every detail level. Compared observables:
//
//   * within one detail level: the rolling state digest (snap::digest),
//     the full bus transaction log, per-core architectural stats,
//     registers, pc and the interrupt delivery timestamps — everything
//     must be bit-identical across dispatch modes and seq/par;
//   * across detail levels (skipped when faults are armed or when
//     multiple cores share traffic — cycle-keyed faults and shared-bus
//     interleavings legitimately depend on the timing model): the
//     functional observables (instructions, registers, pc, io counts);
//   * ISS vs rtlsim: exact cycle count and data registers;
//   * ISS vs translated platform: final architectural state at every
//     level, exact generated-cycle agreement at icache, exact-minus-
//     cache-penalty at branch-predict.
//
// Snapshot forking: cases with fork_cycle > 0 warm each grid board to
// the fork once per (programs, config) and every later run restores
// that snapshot instead of replaying from reset; fault campaigns arm at
// the fork in both the warm and the cold path, so fork and cold runs
// are bit-identical by the snap:: contract. The candidate's mutated
// state (fi:: specs) applies on top of the restored board.
//
// The reference configuration (icache level, chained+traces, seq) runs
// first and gates validity: a candidate that does not halt there within
// the instruction budget is discarded as invalid, never reported.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/coverage.h"
#include "fuzz/corpus.h"

namespace cabt::fuzz {

struct OracleOptions {
  /// Plants the deliberate translator timing bug
  /// (xlat::TranslateOptions::debug_skew_static_cycles) — the farm's
  /// acceptance drill: the oracle must catch it at the cycle-exact
  /// detail levels.
  bool xlat_skew = false;
  /// Per-core reference instruction budget; exceeding it in the
  /// reference configuration marks the candidate invalid (mutants that
  /// spin are discarded, not reported).
  uint64_t max_instructions = 2'000'000;
  /// VLIW-cycle budget for translated-platform runs.
  uint64_t max_vliw_cycles = 80'000'000;
  /// Skip the rtlsim/translator legs entirely (used by grid-only unit
  /// tests; the farm keeps them on).
  bool three_way = true;
};

struct OracleResult {
  /// Reference configuration halted within budget. Invalid candidates
  /// (assembly errors, non-halting references) are not findings.
  bool valid = false;
  /// Every comparison agreed. Meaningful only when valid.
  bool ok = false;
  /// First mismatch, human-readable ("level=icache dispatch=threaded
  /// par=1: digest 0x... != 0x..."); empty when ok.
  std::string mismatch;
  /// Engine executions this candidate cost (board grid + extras).
  uint64_t executions = 0;
  /// Clean-run length (SoC bus cycle at reference halt); the farm
  /// stamps this into corpus entries as the mutation horizon.
  uint64_t ref_cycles = 0;
};

/// Bounded warm-snapshot store keyed by (programs, board config, fork
/// cycle). Shared across candidates so state-only mutants of one corpus
/// entry restore instead of re-warming.
class SnapshotCache {
 public:
  explicit SnapshotCache(size_t capacity = 128) : capacity_(capacity) {}

  [[nodiscard]] const std::vector<uint8_t>* find(const std::string& key) const;
  void put(const std::string& key, std::vector<uint8_t> data);

  [[nodiscard]] uint64_t hits() const { return hits_; }
  [[nodiscard]] uint64_t misses() const { return misses_; }
  void countHit() { ++hits_; }
  void countMiss() { ++misses_; }

 private:
  size_t capacity_;
  std::unordered_map<std::string, std::vector<uint8_t>> map_;
  std::deque<std::string> order_;  // FIFO eviction
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Runs the full oracle. `cache` may be null (every fork warms cold);
/// `coverage` may be null (no feedback collected) — when set, the
/// reference configuration's runs record edges into it.
OracleResult runOracle(const SeedCase& c, const OracleOptions& opts,
                       SnapshotCache* cache, core::EdgeCoverage* coverage);

}  // namespace cabt::fuzz
