// The coverage-guided differential fuzzing farm (DESIGN.md section 13).
//
// One Farm::run() call is one campaign: bootstrap (or load) a corpus,
// then repeatedly pick an entry, mutate it (src/fuzz/mutator.h), run
// the mutant through the three-way oracle (src/fuzz/oracle.h) and
//   * discard it when invalid (does not assemble / reference spins),
//   * report it when the oracle disagrees — the finding is minimized
//     (greedy delta-debugging over faults, programs and program lines,
//     every reduction re-verified against the oracle) and written to
//     the findings directory as a self-contained regression seed that
//     tests/fuzz_regression_test.cpp replays forever,
//   * admit it into the corpus when it lights edge-coverage map bits
//     (core/coverage.h) the campaign has never seen.
//
// Snapshot forking makes mutated-state candidates cheap: corpus entries
// get a fork cycle stamped at half their measured clean-run length, and
// the oracle then restores a warmed snapshot per board configuration
// instead of replaying from reset (bench/bench_fuzz_throughput.cpp
// measures the speedup; BENCH_fuzz_throughput.json asserts it).
//
// Determinism: one (corpus, seed, budget) triple always walks the same
// candidate sequence — wall-clock budgets only cut the walk short, they
// never reorder it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/mutator.h"
#include "fuzz/oracle.h"
#include "obs/metrics.h"

namespace cabt::fuzz {

struct FarmConfig {
  /// Corpus directory (created when absent; new entries are written
  /// here — point the farm at a scratch copy, not a checked-in tree).
  std::string corpus_dir;
  /// Where minimized findings land as seed files; empty keeps findings
  /// in memory only (FarmStats::finding_paths stays empty).
  std::string findings_dir;
  uint32_t seed = 1;
  /// Generator seeds used to bootstrap an empty corpus.
  size_t bootstrap_seeds = 4;
  /// Stop conditions; 0 = unbounded. Candidates counts mutants tried,
  /// execs counts oracle engine runs, millis is wall clock.
  uint64_t max_candidates = 0;
  uint64_t max_execs = 0;
  uint64_t max_millis = 0;
  /// Stop after this many findings (each costs a minimization pass).
  uint64_t max_findings = 8;
  /// Stamp fork cycles onto corpus entries and fork warmed snapshots.
  bool use_forks = true;
  /// Minimize findings before writing them.
  bool minimize = true;
  /// Oracle runs the minimizer may spend per finding.
  unsigned minimize_budget = 120;
  OracleOptions oracle;
};

struct FarmStats {
  uint64_t candidates = 0;     ///< mutants produced
  uint64_t invalid = 0;        ///< discarded before comparison
  uint64_t oracle_execs = 0;   ///< engine runs (grid boards + extras)
  uint64_t corpus_entries = 0;
  uint64_t corpus_adds = 0;    ///< coverage-admitted mutants
  uint64_t findings = 0;
  uint64_t coverage_bits = 0;  ///< distinct edge-map bits lit
  uint64_t fork_hits = 0;
  uint64_t fork_misses = 0;
  uint64_t minimize_trials = 0;
  uint64_t elapsed_millis = 0;
  double execs_per_sec = 0.0;
  std::vector<std::string> finding_paths;
  /// Mismatch strings of every finding, parallel to finding_paths when
  /// findings are written.
  std::vector<std::string> finding_mismatches;
};

/// Greedy minimization: drops faults, then whole programs, then line
/// chunks (halving chunk sizes down to single lines; label and
/// directive lines are never removed), re-running the oracle after each
/// reduction and keeping it only when the case still fails with the
/// same mismatch signature as the original finding. Consumes at most
/// `budget` oracle runs; `trials` (optional) returns how many were
/// spent.
SeedCase minimizeCase(const SeedCase& failing, const OracleOptions& opts,
                      unsigned budget, uint64_t* trials = nullptr);

class Farm {
 public:
  explicit Farm(FarmConfig config) : config_(std::move(config)) {}

  /// Runs one campaign to its budget; returns the stats (also kept for
  /// publishMetrics).
  FarmStats run();

  /// Publishes fuzz.* counters/gauges from the last run().
  void publishMetrics(obs::MetricsRegistry& reg,
                      const std::string& prefix = "fuzz.") const;

  [[nodiscard]] const FarmStats& stats() const { return stats_; }

 private:
  FarmConfig config_;
  FarmStats stats_;
};

}  // namespace cabt::fuzz
