#include "fuzz/farm.h"

#include <chrono>
#include <random>

#include "fuzz/program_gen.h"

namespace cabt::fuzz {

namespace {

uint64_t nowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Failure signature: the mismatch up to the first ':' — the failing
/// comparison and its configuration, without run-specific numbers.
std::string signatureOf(const std::string& mismatch) {
  const size_t colon = mismatch.find(':');
  return colon == std::string::npos ? mismatch : mismatch.substr(0, colon);
}

/// True when the reduction still fails the oracle the way the original
/// finding did: valid (assembles, reference halts), mismatched, and
/// with the same failure signature. Without the signature check the
/// minimizer can wander from the original bug onto an unrelated
/// degenerate failure and "minimize" into a different finding.
bool stillFails(const SeedCase& c, const OracleOptions& opts,
                const std::string& signature, uint64_t* trials) {
  ++*trials;
  const OracleResult r = runOracle(c, opts, nullptr, nullptr);
  return r.valid && !r.ok && signatureOf(r.mismatch) == signature;
}

/// Chunk-removal barrier: labels and assembler directives are program
/// structure. Deleting one (say the `.bss` switch while its data lines
/// survive) yields a structurally different program whose failures have
/// nothing to do with the finding being minimized.
bool isStructureLine(const std::string& line) {
  if (line.find(':') != std::string::npos) {
    return true;
  }
  for (const char ch : line) {
    if (ch == ' ' || ch == '\t') {
      continue;
    }
    return ch == '.';
  }
  return false;
}

}  // namespace

SeedCase minimizeCase(const SeedCase& failing, const OracleOptions& opts,
                      unsigned budget, uint64_t* trials) {
  uint64_t local_trials = 0;
  uint64_t* t = trials != nullptr ? trials : &local_trials;
  SeedCase best = failing;

  // The signature every accepted reduction must reproduce.
  uint64_t probe_trials = 0;
  const OracleResult orig = runOracle(failing, opts, nullptr, nullptr);
  ++probe_trials;
  *t += probe_trials;
  if (!orig.valid || orig.ok) {
    return best;  // not a finding (raced away?): nothing to minimize
  }
  const std::string signature = signatureOf(orig.mismatch);

  // Phase 1: drop faults one at a time until none can go.
  bool shrunk = true;
  while (shrunk && *t < budget) {
    shrunk = false;
    for (size_t i = 0; i < best.faults.size() && *t < budget; ++i) {
      SeedCase c = best;
      c.faults.erase(c.faults.begin() + static_cast<ptrdiff_t>(i));
      if (stillFails(c, opts, signature, t)) {
        best = std::move(c);
        shrunk = true;
        break;
      }
    }
  }

  // Phase 2: drop whole programs (fewer cores = simpler board).
  shrunk = true;
  while (shrunk && best.programs.size() > 1 && *t < budget) {
    shrunk = false;
    for (size_t i = 0; i < best.programs.size() && *t < budget; ++i) {
      SeedCase c = best;
      c.programs.erase(c.programs.begin() + static_cast<ptrdiff_t>(i));
      if (stillFails(c, opts, signature, t)) {
        best = std::move(c);
        shrunk = true;
        break;
      }
    }
  }

  // Phase 3: per program, remove line chunks, halving the chunk size
  // down to single lines (ddmin-lite). Chunks containing labels or
  // directives are never candidates (structure barrier); reductions
  // that break assembly come back invalid and are rejected cheaply.
  for (size_t p = 0; p < best.programs.size(); ++p) {
    std::vector<std::string> lines = splitLines(best.programs[p]);
    const auto removable = [&lines](size_t at, size_t chunk) {
      for (size_t i = at; i < at + chunk; ++i) {
        if (isStructureLine(lines[i])) {
          return false;
        }
      }
      return true;
    };
    size_t chunk = lines.size() / 2;
    while (chunk >= 1 && *t < budget) {
      bool removed = false;
      for (size_t at = 0; at + chunk <= lines.size() && *t < budget;) {
        if (!removable(at, chunk)) {
          ++at;
          continue;
        }
        std::vector<std::string> fewer = lines;
        fewer.erase(fewer.begin() + static_cast<ptrdiff_t>(at),
                    fewer.begin() + static_cast<ptrdiff_t>(at + chunk));
        SeedCase c = best;
        c.programs[p] = joinLines(fewer);
        if (stillFails(c, opts, signature, t)) {
          lines = std::move(fewer);
          best = std::move(c);
          removed = true;
          // Do not advance: the next chunk slid into this position.
        } else {
          at += chunk;
        }
      }
      if (chunk == 1 && !removed) {
        break;
      }
      chunk = chunk > 1 ? chunk / 2 : 1;
    }
  }

  // Phase 4: a fork-free, fault-free reproduction replays simplest.
  if ((best.fork_cycle != 0 || best.horizon != 0) && *t < budget) {
    SeedCase c = best;
    c.fork_cycle = 0;
    c.horizon = 0;
    if (stillFails(c, opts, signature, t)) {
      best = std::move(c);
    }
  }
  return best;
}

FarmStats Farm::run() {
  const uint64_t t0 = nowMillis();
  stats_ = FarmStats{};
  Corpus corpus(config_.corpus_dir);
  SnapshotCache cache;
  SnapshotCache* cache_ptr = config_.use_forks ? &cache : nullptr;
  core::EdgeCoverage global_cov;
  std::mt19937 rng(config_.seed);
  Mutator mutator(config_.seed ^ 0x9e3779b9u);

  const auto out_of_budget = [&] {
    if (config_.max_candidates != 0 &&
        stats_.candidates >= config_.max_candidates) {
      return true;
    }
    if (config_.max_execs != 0 && stats_.oracle_execs >= config_.max_execs) {
      return true;
    }
    if (config_.max_millis != 0 &&
        nowMillis() - t0 >= config_.max_millis) {
      return true;
    }
    return config_.max_findings != 0 &&
           stats_.findings >= config_.max_findings;
  };

  const auto reportFinding = [&](const SeedCase& c,
                                 const std::string& mismatch) {
    ++stats_.findings;
    SeedCase minimized = c;
    if (config_.minimize) {
      minimized = minimizeCase(c, config_.oracle, config_.minimize_budget,
                               &stats_.minimize_trials);
    }
    minimized.note = "finding: " + mismatch;
    stats_.finding_mismatches.push_back(mismatch);
    if (!config_.findings_dir.empty()) {
      Corpus findings(config_.findings_dir);
      stats_.finding_paths.push_back(findings.add(minimized, "finding"));
    }
  };

  // ---- bootstrap an empty corpus from the program generator ----------
  if (corpus.size() == 0) {
    for (size_t i = 0; i < config_.bootstrap_seeds; ++i) {
      SeedCase c;
      // Two of three bootstrap shapes are single-core without shared
      // traffic, keeping the three-way (rtl + translator) legs hot.
      const size_t cores = i % 3 == 2 ? 2 + i % 2 : 1;
      for (size_t core = 0; core < cores; ++core) {
        ProgramGenerator gen(GeneratorConfig{
            config_.seed + static_cast<uint32_t>(i * 1000 + core * 17),
            /*shared_traffic=*/cores > 1});
        c.programs.push_back(gen.generate());
      }
      c.note = "bootstrap " + describe(GeneratorConfig{
                                  config_.seed + static_cast<uint32_t>(i * 1000),
                                  cores > 1}) +
               " cores=" + std::to_string(cores);
      corpus.add(c, "boot");
    }
  }

  // ---- admission pass: oracle every corpus entry, seed the coverage
  // map, stamp horizons and fork cycles ---------------------------------
  std::vector<SeedCase> entries;
  for (const std::string& path : corpus.paths()) {
    if (out_of_budget()) {
      break;
    }
    SeedCase c = loadSeedFile(path);
    core::EdgeCoverage scratch;
    const OracleResult r =
        runOracle(c, config_.oracle, cache_ptr, &scratch);
    stats_.oracle_execs += r.executions;
    if (!r.valid) {
      ++stats_.invalid;
      continue;
    }
    global_cov.merge(scratch);
    if (!r.ok) {
      reportFinding(c, r.mismatch);
      continue;  // a failing entry is a finding, not a mutation base
    }
    c.horizon = r.ref_cycles;
    if (config_.use_forks && c.fork_cycle == 0 && r.ref_cycles > 400) {
      c.fork_cycle = r.ref_cycles / 2;
    }
    entries.push_back(std::move(c));
  }

  // ---- the mutate/oracle loop ----------------------------------------
  while (!entries.empty() && !out_of_budget()) {
    const SeedCase& base =
        entries[rng() % static_cast<uint32_t>(entries.size())];
    const std::optional<SeedCase> mutant = mutator.mutate(base);
    ++stats_.candidates;
    if (!mutant.has_value()) {
      ++stats_.invalid;
      continue;
    }
    core::EdgeCoverage scratch;
    const OracleResult r =
        runOracle(*mutant, config_.oracle, cache_ptr, &scratch);
    stats_.oracle_execs += r.executions;
    if (!r.valid) {
      ++stats_.invalid;
      continue;
    }
    if (!r.ok) {
      reportFinding(*mutant, r.mismatch);
      continue;
    }
    if (global_cov.newBits(scratch) > 0) {
      global_cov.merge(scratch);
      SeedCase admitted = *mutant;
      admitted.horizon = r.ref_cycles;
      if (config_.use_forks && admitted.fork_cycle == 0 &&
          r.ref_cycles > 400) {
        admitted.fork_cycle = r.ref_cycles / 2;
      }
      if (admitted.note.empty()) {
        admitted.note = "coverage: " + mutator.lastOperator();
      }
      corpus.add(admitted, "auto");
      ++stats_.corpus_adds;
      entries.push_back(std::move(admitted));
    }
  }

  stats_.corpus_entries = corpus.size();
  stats_.coverage_bits = global_cov.bitsSet();
  stats_.fork_hits = cache.hits();
  stats_.fork_misses = cache.misses();
  stats_.elapsed_millis = nowMillis() - t0;
  stats_.execs_per_sec =
      stats_.elapsed_millis > 0
          ? static_cast<double>(stats_.oracle_execs) * 1000.0 /
                static_cast<double>(stats_.elapsed_millis)
          : 0.0;
  return stats_;
}

void Farm::publishMetrics(obs::MetricsRegistry& reg,
                          const std::string& prefix) const {
  reg.setCounter(prefix + "candidates", stats_.candidates);
  reg.setCounter(prefix + "invalid", stats_.invalid);
  reg.setCounter(prefix + "oracle_execs", stats_.oracle_execs);
  reg.setCounter(prefix + "corpus_entries", stats_.corpus_entries);
  reg.setCounter(prefix + "corpus_adds", stats_.corpus_adds);
  reg.setCounter(prefix + "findings", stats_.findings);
  reg.setCounter(prefix + "coverage_bits", stats_.coverage_bits);
  reg.setCounter(prefix + "fork_hits", stats_.fork_hits);
  reg.setCounter(prefix + "fork_misses", stats_.fork_misses);
  reg.setCounter(prefix + "minimize_trials", stats_.minimize_trials);
  reg.setCounter(prefix + "elapsed_millis", stats_.elapsed_millis);
  reg.setGauge(prefix + "execs_per_sec", stats_.execs_per_sec);
}

}  // namespace cabt::fuzz
