#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/strutil.h"

namespace cabt::fuzz {

namespace fs = std::filesystem;

namespace {
constexpr const char* kMagic = "cabt-fuzz-seed v1";
constexpr const char* kProgramEnd = "%%";
}  // namespace

bool SeedCase::hasSharedTraffic() const {
  for (const std::string& p : programs) {
    if (p.find("[a5]") != std::string::npos) {
      return true;
    }
  }
  return false;
}

size_t SeedCase::totalLines() const {
  size_t n = 0;
  for (const std::string& p : programs) {
    n += static_cast<size_t>(std::count(p.begin(), p.end(), '\n'));
  }
  return n;
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string joinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string serializeSeed(const SeedCase& c) {
  std::ostringstream out;
  out << kMagic << "\n";
  if (!c.note.empty()) {
    out << "note " << c.note << "\n";
  }
  out << "quantum " << c.quantum << "\n";
  out << "fork " << c.fork_cycle << "\n";
  if (c.horizon != 0) {
    out << "horizon " << c.horizon << "\n";
  }
  for (const std::string& f : c.faults) {
    out << "fault " << f << "\n";
  }
  for (const std::string& p : c.programs) {
    out << "program\n" << p;
    if (p.empty() || p.back() != '\n') {
      out << "\n";
    }
    out << kProgramEnd << "\n";
  }
  return out.str();
}

SeedCase parseSeed(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  CABT_CHECK(std::getline(in, line) && trim(line) == kMagic,
             "seed file: bad or missing magic line");
  SeedCase c;
  bool have_program = false;
  while (std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (t.empty()) {
      continue;
    }
    const size_t sp = t.find(' ');
    const std::string key(sp == std::string_view::npos ? t : t.substr(0, sp));
    const std::string value(
        sp == std::string_view::npos ? "" : trim(t.substr(sp + 1)));
    if (key == "note") {
      c.note = value;
    } else if (key == "quantum") {
      c.quantum = static_cast<uint64_t>(parseInt(value));
      CABT_CHECK(c.quantum > 0, "seed file: quantum must be positive");
    } else if (key == "fork") {
      c.fork_cycle = static_cast<uint64_t>(parseInt(value));
    } else if (key == "horizon") {
      c.horizon = static_cast<uint64_t>(parseInt(value));
    } else if (key == "fault") {
      CABT_CHECK(!value.empty(), "seed file: empty fault spec");
      c.faults.push_back(value);
    } else if (key == "program") {
      std::string body;
      bool terminated = false;
      while (std::getline(in, line)) {
        if (trim(line) == kProgramEnd) {
          terminated = true;
          break;
        }
        body += line;
        body += '\n';
      }
      CABT_CHECK(terminated, "seed file: unterminated program section");
      c.programs.push_back(std::move(body));
      have_program = true;
    } else {
      CABT_FAIL("seed file: unknown key '" << key << "'");
    }
  }
  CABT_CHECK(have_program, "seed file: no program sections");
  CABT_CHECK(c.programs.size() <= 8, "seed file: too many programs");
  return c;
}

SeedCase loadSeedFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CABT_CHECK(in.good(), "cannot read seed file: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseSeed(buf.str());
}

void saveSeedFile(const SeedCase& c, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CABT_CHECK(out.good(), "cannot write seed file: " << path);
  out << serializeSeed(c);
  CABT_CHECK(out.good(), "write failed: " << path);
}

Corpus::Corpus(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (e.is_regular_file() && e.path().extension() == ".seed") {
      paths_.push_back(e.path().string());
    }
  }
  std::sort(paths_.begin(), paths_.end());
}

std::string Corpus::add(const SeedCase& c, const std::string& stem) {
  for (unsigned n = 0; n < 100000; ++n) {
    fs::path p = fs::path(dir_) /
                 (stem + "-" + std::to_string(n) + ".seed");
    if (!fs::exists(p)) {
      saveSeedFile(c, p.string());
      paths_.push_back(p.string());
      std::sort(paths_.begin(), paths_.end());
      return p.string();
    }
  }
  CABT_FAIL("corpus: could not find a fresh name for stem " << stem);
}

}  // namespace cabt::fuzz
