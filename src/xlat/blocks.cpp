// Basic-block construction, static cycle calculation and cache-analysis-
// block splitting (paper sections 3, 3.3 and 3.4.2).
#include "arch/timing.h"
#include "common/error.h"
#include "trc/program.h"
#include "xlat/internal.h"

namespace cabt::xlat {

std::vector<SourceBlock> buildBlocks(const elf::Object& object) {
  const std::vector<trc::Instr> instrs = trc::decodeText(object);
  CABT_CHECK(!instrs.empty(), "program has no instructions");
  const std::set<uint32_t> leaders = trc::findLeaders(object, instrs);

  std::vector<SourceBlock> blocks;
  for (const trc::Instr& instr : instrs) {
    const bool starts_block =
        blocks.empty() || leaders.count(instr.addr) != 0;
    if (starts_block) {
      SourceBlock block;
      block.addr = instr.addr;
      blocks.push_back(std::move(block));
    }
    blocks.back().instrs.push_back(instr);
    // A control transfer always terminates the block (its successor is a
    // leader anyway, but this keeps the invariant explicit).
  }
  for (const SourceBlock& b : blocks) {
    CABT_CHECK(!b.instrs.empty(), "empty basic block");
    for (size_t i = 0; i + 1 < b.instrs.size(); ++i) {
      CABT_CHECK(!b.instrs[i].isControlTransfer(),
                 "control transfer in the middle of a block");
    }
  }
  return blocks;
}

void computeStaticCycles(const arch::ArchDescription& desc,
                         std::vector<SourceBlock>& blocks) {
  for (SourceBlock& block : blocks) {
    arch::PipelineTimer timer(desc.pipeline);
    for (const trc::Instr& instr : block.instrs) {
      timer.issue(instr.timedOp());
    }
    uint64_t cycles = timer.cycles();
    // Static part of the branch cost: unconditional transfers have a
    // fixed extra; conditional branches contribute their minimum (zero
    // extra) statically — the rest is dynamic correction (section 3.4.1).
    const trc::Instr& last = block.last();
    if (last.isControlTransfer() &&
        last.cls() != arch::OpClass::kBranchCond) {
      cycles += desc.branch.unconditionalExtra(last.cls());
    }
    CABT_CHECK(cycles <= 30000, "basic block too long for annotation");
    block.static_cycles = static_cast<uint32_t>(cycles);
  }
}

void computeCacheAnalysisBlocks(const arch::ICacheModel& icache,
                                std::vector<SourceBlock>& blocks) {
  // Stride of one set's state in the cache data area: `ways` combined
  // tag+valid words plus one LRU word.
  const uint32_t set_stride = (icache.ways + 1) * 4;
  for (SourceBlock& block : blocks) {
    block.cabs.clear();
    block.cab_starts.clear();
    bool have_line = false;
    uint32_t last_line = 0;
    for (size_t i = 0; i < block.instrs.size(); ++i) {
      const uint32_t addr = block.instrs[i].addr;
      const uint32_t line = icache.lineOf(addr);
      if (have_line && line == last_line) {
        continue;
      }
      have_line = true;
      last_line = line;
      CacheAnalysisBlock cab;
      cab.first_addr = addr;
      cab.tag_word = (icache.tagOf(addr) << 1) | 1u;
      cab.set_offset = icache.setOf(addr) * set_stride;
      block.cabs.push_back(cab);
      block.cab_starts.push_back(i);
    }
  }
}

}  // namespace cabt::xlat
