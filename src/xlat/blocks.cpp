// Translator-side views of the shared block structure: conversion of the
// core block graph into SourceBlock pass records, static cycle annotation
// and cache-analysis-block splitting (paper sections 3, 3.3 and 3.4.2).
//
// Block boundaries and static schedules are NOT computed here: they come
// from core::BlockGraph / core::staticBlockCycles, the same code the
// reference ISS executes from, so the translated image and the ground
// truth can never disagree about block structure.
#include "common/error.h"
#include "core/block_graph.h"
#include "xlat/internal.h"

namespace cabt::xlat {

std::vector<SourceBlock> buildBlocks(const core::BlockGraph& graph) {
  std::vector<SourceBlock> blocks;
  blocks.reserve(graph.blocks().size());
  for (const core::Block& b : graph.blocks()) {
    SourceBlock block;
    block.addr = b.addr;
    block.instrs.assign(graph.begin(b), graph.end(b));
    blocks.push_back(std::move(block));
  }
  return blocks;
}

std::vector<SourceBlock> buildBlocks(const elf::Object& object) {
  return buildBlocks(core::BlockGraph::build(object));
}

void computeStaticCycles(const arch::ArchDescription& desc,
                         std::vector<SourceBlock>& blocks) {
  for (SourceBlock& block : blocks) {
    block.static_cycles = core::staticBlockCycles(
        desc, block.instrs.data(), block.instrs.size());
  }
}

void computeCacheAnalysisBlocks(const arch::ICacheModel& icache,
                                std::vector<SourceBlock>& blocks) {
  // Stride of one set's state in the cache data area: `ways` combined
  // tag+valid words plus one LRU word.
  const uint32_t set_stride = (icache.ways + 1) * 4;
  for (SourceBlock& block : blocks) {
    block.cabs.clear();
    block.cab_starts.clear();
    bool have_line = false;
    uint32_t last_line = 0;
    for (size_t i = 0; i < block.instrs.size(); ++i) {
      const uint32_t addr = block.instrs[i].addr;
      const uint32_t line = icache.lineOf(addr);
      if (have_line && line == last_line) {
        continue;
      }
      have_line = true;
      last_line = line;
      CacheAnalysisBlock cab;
      cab.first_addr = addr;
      cab.tag_word = (icache.tagOf(addr) << 1) | 1u;
      cab.set_offset = icache.setOf(addr) * set_stride;
      block.cabs.push_back(cab);
      block.cab_starts.push_back(i);
    }
  }
}

}  // namespace cabt::xlat
