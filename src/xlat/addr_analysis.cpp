// Base-address analysis (paper Fig. 1: "finding base addresses").
//
// A forward constant propagation over the address registers discovers, as
// far as statically possible, the effective address of every load/store.
// The results are used to (a) classify accesses as memory vs. I/O and
// (b) rewrite the base addresses materialised by MOVHA instructions into
// the target system's address space (the paper: "change the base
// addresses of load/store instructions accessing memory to the new memory
// addresses of the target system").
//
// Blocks, leaders and successor edges come from the shared
// core::BlockGraph (the same structure the reference ISS executes from).
//
// Pointer invariant: address registers hold *target* addresses at run
// time, because every pointer originates from a (rewritten) MOVHA
// materialisation and pointer arithmetic preserves the region-wise linear
// remapping. Code addresses (link register) stay in the source space and
// are mapped through the dispatch table on indirect jumps. Remap deltas
// must be 64 KiB aligned so that only the MOVHA immediate changes.
#include <deque>

#include "common/error.h"
#include "common/strutil.h"
#include "xlat/internal.h"

namespace cabt::xlat {
namespace {

using trc::Opc;

struct BlockState {
  std::array<AddrValue, 16> regs;

  static BlockState allTop() {
    BlockState s;
    s.regs.fill(AddrValue::top());
    return s;
  }
  static BlockState allBottom() {
    BlockState s;
    s.regs.fill(AddrValue::bottom());
    return s;
  }
  [[nodiscard]] BlockState meet(const BlockState& other) const {
    BlockState out;
    for (size_t i = 0; i < regs.size(); ++i) {
      out.regs[i] = regs[i].meet(other.regs[i]);
    }
    return out;
  }
  bool operator==(const BlockState&) const = default;
};

/// Applies one instruction's effect on the address registers.
void transfer(const trc::Instr& in, BlockState& s) {
  switch (in.opc) {
    case Opc::kMovha:
      s.regs[in.rd] = AddrValue::constant(static_cast<uint32_t>(in.imm)
                                          << 16);
      break;
    case Opc::kLea:
      s.regs[in.rd] =
          s.regs[in.ra].isConst()
              ? AddrValue::constant(s.regs[in.ra].value +
                                    static_cast<uint32_t>(in.imm))
              : AddrValue::top();
      break;
    case Opc::kAdda:
      s.regs[in.rd] = s.regs[in.ra].isConst() && s.regs[in.rb].isConst()
                          ? AddrValue::constant(s.regs[in.ra].value +
                                                s.regs[in.rb].value)
                          : AddrValue::top();
      break;
    case Opc::kSuba:
      s.regs[in.rd] = s.regs[in.ra].isConst() && s.regs[in.rb].isConst()
                          ? AddrValue::constant(s.regs[in.ra].value -
                                                s.regs[in.rb].value)
                          : AddrValue::top();
      break;
    case Opc::kMova:
    case Opc::kLda:
      s.regs[in.rd] = AddrValue::top();  // data values are not tracked
      break;
    case Opc::kJl:
      s.regs[trc::kLinkRegister] =
          AddrValue::constant(in.addr + in.size);
      break;
    default:
      break;  // no address register written
  }
}

}  // namespace

AddressAnalysis analyzeAddresses(const arch::ArchDescription& desc,
                                 const core::BlockGraph& graph) {
  const std::vector<core::Block>& blocks = graph.blocks();

  // Entry states; seeded Top at the program entry and at call-return
  // sites (control arrives there through an indirect jump from a callee
  // whose effects are not tracked interprocedurally).
  std::vector<BlockState> entry_state(blocks.size(), BlockState::allBottom());
  std::deque<size_t> worklist;
  const auto seed = [&](size_t i) {
    entry_state[i] = BlockState::allTop();
    worklist.push_back(i);
  };
  if (const int32_t i = graph.indexAt(graph.entry()); i >= 0) {
    seed(static_cast<size_t>(i));
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (graph.last(blocks[i]).cls() == arch::OpClass::kCall &&
        i + 1 < blocks.size()) {
      seed(i + 1);  // return site
    }
  }

  const auto successors = [&](size_t i) {
    std::vector<size_t> out;
    if (blocks[i].target >= 0) {
      out.push_back(static_cast<size_t>(blocks[i].target));
    }
    if (blocks[i].fall_through >= 0) {
      out.push_back(static_cast<size_t>(blocks[i].fall_through));
    }
    return out;
  };

  while (!worklist.empty()) {
    const size_t i = worklist.front();
    worklist.pop_front();
    BlockState s = entry_state[i];
    for (const trc::Instr* in = graph.begin(blocks[i]);
         in != graph.end(blocks[i]); ++in) {
      transfer(*in, s);
    }
    for (const size_t succ : successors(i)) {
      const BlockState merged = entry_state[succ].meet(s);
      if (!(merged == entry_state[succ])) {
        entry_state[succ] = merged;
        worklist.push_back(succ);
      }
    }
  }

  // Harvest: known effective addresses + classification.
  AddressAnalysis out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    BlockState s = entry_state[i];
    for (const trc::Instr* it = graph.begin(blocks[i]);
         it != graph.end(blocks[i]); ++it) {
      const trc::Instr& in = *it;
      if (in.cls() == arch::OpClass::kLoad ||
          in.cls() == arch::OpClass::kStore) {
        if (s.regs[in.ra].isConst()) {
          const uint32_t ea =
              s.regs[in.ra].value + static_cast<uint32_t>(in.imm);
          out.known_ea.emplace(in.addr, ea);
          if (desc.memory_map.kindOf(ea) == RegionKind::kIo) {
            ++out.io_accesses;
          } else {
            ++out.ram_accesses;
          }
        } else {
          ++out.unknown_accesses;
        }
      }
      transfer(in, s);
    }
  }

  // MOVHA rewriting into the target address space.
  for (const trc::Instr& in : graph.instrs()) {
    if (in.opc != Opc::kMovha) {
      continue;
    }
    const uint32_t value = static_cast<uint32_t>(in.imm) << 16;
    const MemRegion* region = desc.memory_map.find(value);
    if (region == nullptr || region->remap_base == region->base) {
      continue;
    }
    const uint32_t delta = region->remap_base - region->base;
    CABT_CHECK((delta & 0xffffu) == 0,
               "remap delta of region '"
                   << region->name
                   << "' is not 64 KiB aligned; cannot rewrite MOVHA at "
                   << hex32(in.addr));
    out.movha_rewrites.emplace(
        in.addr,
        static_cast<uint16_t>((static_cast<uint32_t>(in.imm) +
                               (delta >> 16)) &
                              0xffffu));
  }
  return out;
}

}  // namespace cabt::xlat
