// Translator facade: runs the pass pipeline and emits the final V6X ELF
// image (paper Fig. 1, bottom half).
#include "xlat/translator.h"

#include <algorithm>

#include "common/bits.h"
#include "common/strutil.h"
#include "core/block_graph.h"
#include "core/program_artifact.h"
#include "trc/program.h"
#include "xlat/internal.h"
#include "xlat/regmap.h"

namespace cabt::xlat {
namespace {

using vliw::kNoReg;
using vliw::MachineOp;
using vliw::VOpc;


MachineOp makeOp(VOpc opc, uint8_t dst, uint8_t s1 = kNoReg,
                 uint8_t s2 = kNoReg, int32_t imm = 0) {
  MachineOp m;
  m.opc = opc;
  m.dst = dst;
  m.src1 = s1;
  m.src2 = s2;
  m.imm = imm;
  return m;
}

void pushConst(std::vector<XOp>& out, uint8_t reg, uint32_t value) {
  XOp lo;
  lo.op = makeOp(VOpc::kMvk, reg, kNoReg, kNoReg,
                 static_cast<int16_t>(value & 0xffffu));
  out.push_back(lo);
  XOp hi;
  hi.op = makeOp(VOpc::kMvkh, reg, kNoReg, kNoReg,
                 static_cast<int32_t>(value >> 16));
  out.push_back(hi);
}

/// Splits blocks into single-instruction units for the instruction-
/// oriented translation (paper section 3.5), each prefixed with a YIELD
/// into the debug runtime.
std::vector<SourceBlock> splitPerInstruction(
    const std::vector<SourceBlock>& blocks) {
  std::vector<SourceBlock> out;
  for (const SourceBlock& b : blocks) {
    for (const trc::Instr& in : b.instrs) {
      SourceBlock unit;
      unit.addr = in.addr;
      unit.instrs.push_back(in);
      out.push_back(std::move(unit));
    }
  }
  return out;
}

}  // namespace

const char* detailLevelName(DetailLevel level) {
  switch (level) {
    case DetailLevel::kFunctional:
      return "functional";
    case DetailLevel::kStatic:
      return "static";
    case DetailLevel::kBranchPredict:
      return "branch-predict";
    case DetailLevel::kICache:
      return "icache";
  }
  return "?";
}

TranslationResult translate(const arch::ArchDescription& desc,
                            const elf::Object& object,
                            const TranslateOptions& options) {
  CABT_CHECK(object.machine == elf::Machine::kTrc32,
             "translator input must be a TRC32 image");
  const elf::Section* src_text = object.findSection(".text");
  CABT_CHECK(src_text != nullptr, "source image has no .text");
  const uint32_t src_text_base = src_text->addr;
  const uint32_t src_text_size =
      static_cast<uint32_t>(src_text->data.size());

  // ---- analysis passes ----------------------------------------------------
  // The shared core::BlockGraph is the single source of block boundaries;
  // the reference ISS executes from the very same structure — literally:
  // both sides acquire it through the ProgramArtifactCache, so a board
  // fleet plus its translator pay one decode per image. (The skew drill
  // below mutates only the local SourceBlock copies, never the shared
  // graph.)
  const std::shared_ptr<const core::ProgramArtifact> artifact =
      core::ProgramArtifactCache::instance().acquire(desc, object);
  const core::BlockGraph& graph = artifact->graph();
  std::vector<SourceBlock> blocks = buildBlocks(graph);
  const AddressAnalysis analysis = analyzeAddresses(desc, graph);
  if (options.instruction_oriented) {
    blocks = splitPerInstruction(blocks);
  }
  computeStaticCycles(desc, blocks);
  if (options.debug_skew_static_cycles) {
    for (SourceBlock& b : blocks) {
      if (b.instrs.size() >= 2) {
        ++b.static_cycles;
      }
    }
  }
  if (options.level >= DetailLevel::kICache) {
    CABT_CHECK(desc.icache.enabled,
               "icache detail level requires an enabled icache model");
    computeCacheAnalysisBlocks(desc.icache, blocks);
  }

  bool has_indirect = false;
  for (const SourceBlock& b : blocks) {
    for (const trc::Instr& in : b.instrs) {
      has_indirect |= in.cls() == arch::OpClass::kBranchInd;
    }
  }

  // ---- lowering -------------------------------------------------------------
  LowerContext ctx;
  ctx.desc = &desc;
  ctx.addresses = &analysis;
  ctx.options = options;
  ctx.has_indirect_jumps = has_indirect;
  ctx.source_text_base = src_text_base;
  ctx.dispatch_reg =
      options.dispatch_reg == 0xff ? kDispatchReg : options.dispatch_reg;
  lowerBlocks(ctx, blocks);
  if (options.instruction_oriented) {
    for (SourceBlock& b : blocks) {
      XOp y;
      y.op = makeOp(VOpc::kYield, kNoReg);
      b.code.insert(b.code.begin(), y);
    }
  }

  // ---- prologue -------------------------------------------------------------
  std::vector<XOp> prologue;
  pushConst(prologue, kSyncBaseReg, kSyncDeviceBase);
  {
    XOp z;
    z.op = makeOp(VOpc::kMvk, kCorrReg, kNoReg, kNoReg, 0);
    prologue.push_back(z);
  }
  if (has_indirect) {
    pushConst(prologue, ctx.dispatch_reg,
              options.jump_table_base - 2u * src_text_base);
  }
  if (options.level >= DetailLevel::kICache) {
    pushConst(prologue, kCacheBaseReg, options.cache_data_base);
  }
  {
    XOp b;
    b.op = makeOp(VOpc::kB, kNoReg);
    b.fixup = XOp::Fixup::kBranchToBlock;
    b.fixup_data = object.entry;
    prologue.push_back(b);
  }

  // ---- scheduling -------------------------------------------------------------
  ScheduledBlock prologue_sched = scheduleBlock(prologue);
  std::vector<ScheduledBlock> scheduled;
  scheduled.reserve(blocks.size());
  for (const SourceBlock& b : blocks) {
    scheduled.push_back(scheduleBlock(b.code));
  }
  const bool need_routine =
      options.level >= DetailLevel::kICache &&
      options.inline_cache_threshold != 1;
  ScheduledBlock routine_sched;
  if (need_routine) {
    routine_sched =
        scheduleBlock(buildCacheRoutine(desc.icache, /*inline_body=*/false));
  }

  // ---- layout -------------------------------------------------------------
  TranslationResult result;
  uint32_t cursor = options.text_base;
  const auto layoutUnit = [&cursor](ScheduledBlock& sb) {
    const uint32_t start = cursor;
    for (vliw::Packet& p : sb.packets) {
      p.addr = cursor;
      cursor += p.sizeBytes();
    }
    return start;
  };
  layoutUnit(prologue_sched);
  std::map<uint32_t, uint32_t> block_tgt;  // source block addr -> target
  for (size_t i = 0; i < blocks.size(); ++i) {
    const uint32_t tgt = layoutUnit(scheduled[i]);
    block_tgt.emplace(blocks[i].addr, tgt);
    BlockInfo info;
    info.src_addr = blocks[i].addr;
    info.tgt_addr = tgt;
    info.num_instrs = static_cast<uint32_t>(blocks[i].instrs.size());
    info.static_cycles = blocks[i].static_cycles;
    info.cabs = blocks[i].cabs;
    result.blocks.emplace(blocks[i].addr, info);
    if (options.instruction_oriented) {
      result.instr_map.emplace(blocks[i].addr, tgt);
    }
  }
  const uint32_t routine_addr = need_routine ? layoutUnit(routine_sched)
                                             : 0;

  // ---- fixups -------------------------------------------------------------
  const auto applyFixups = [&](ScheduledBlock& sb) {
    for (const ScheduledBlock::PendingFixup& f : sb.fixups) {
      MachineOp& op = sb.packets[f.packet].ops[f.op];
      switch (f.fixup) {
        case XOp::Fixup::kBranchToBlock: {
          const auto it = block_tgt.find(f.data);
          CABT_CHECK(it != block_tgt.end(),
                     "branch to " << hex32(f.data)
                                  << " which is not a block leader");
          op.imm = static_cast<int32_t>(it->second);
          break;
        }
        case XOp::Fixup::kBranchToRoutine:
          CABT_CHECK(need_routine, "call without a cache routine");
          op.imm = static_cast<int32_t>(routine_addr);
          break;
        case XOp::Fixup::kRetAddrLo:
        case XOp::Fixup::kRetAddrHi: {
          CABT_CHECK(f.data < sb.call_returns.size(), "bad call id");
          const size_t ret_packet = sb.call_returns[f.data];
          CABT_CHECK(ret_packet < sb.packets.size(),
                     "call return past the end of the block");
          const uint32_t ret = sb.packets[ret_packet].addr;
          op.imm = f.fixup == XOp::Fixup::kRetAddrLo
                       ? static_cast<int16_t>(ret & 0xffffu)
                       : static_cast<int32_t>(ret >> 16);
          break;
        }
        case XOp::Fixup::kNone:
          break;
      }
    }
  };
  applyFixups(prologue_sched);
  for (ScheduledBlock& sb : scheduled) {
    applyFixups(sb);
  }

  // ---- emission -------------------------------------------------------------
  std::vector<vliw::Packet> all;
  const auto append = [&all](ScheduledBlock& sb) {
    for (vliw::Packet& p : sb.packets) {
      all.push_back(std::move(p));
    }
  };
  append(prologue_sched);
  for (ScheduledBlock& sb : scheduled) {
    append(sb);
  }
  if (need_routine) {
    append(routine_sched);
  }
  std::vector<uint8_t> code = vliw::encodeProgram(all, options.text_base);
  CABT_CHECK(options.text_base + code.size() == cursor,
             "layout and encoder disagree about code size");

  elf::Object& image = result.image;
  image.machine = elf::Machine::kV6x;
  image.entry = options.text_base;
  {
    elf::Section text;
    text.name = options.text_section_name;
    text.addr = options.text_base;
    text.executable = true;
    text.data = std::move(code);
    image.sections.push_back(std::move(text));
  }

  // Data sections move to their remapped target addresses.
  for (const elf::Section& s : object.sections) {
    if (s.name == ".text") {
      continue;
    }
    elf::Section copy = s;
    const MemRegion* region = desc.memory_map.find(s.addr);
    if (region != nullptr) {
      CABT_CHECK(region->contains(s.addr + s.sizeInMemory() - 1),
                 "section '" << s.name << "' spans memory regions");
      copy.addr = region->remap(s.addr);
    }
    image.sections.push_back(std::move(copy));
  }

  // Address-translation table for indirect jumps: one word per source
  // halfword; entries at block leaders point at the translated block.
  if (has_indirect) {
    elf::Section table;
    table.name = ".jumptab";
    table.addr = options.jump_table_base;
    table.writable = false;
    table.data.assign(static_cast<size_t>(src_text_size) * 2, 0);
    for (const auto& [src, tgt] : block_tgt) {
      const uint32_t off = (src - src_text_base) * 2;
      for (int i = 0; i < 4; ++i) {
        table.data[off + i] = static_cast<uint8_t>(tgt >> (8 * i));
      }
    }
    image.sections.push_back(std::move(table));
  }

  // Cache state area (paper: "At the end of the translated program space
  // for cache data is added"), initialised to the invalid/LRU-reset state
  // of the behavioural model.
  if (options.level >= DetailLevel::kICache) {
    elf::Section cachedata;
    cachedata.name = ".cachedata";
    cachedata.addr = options.cache_data_base;
    cachedata.writable = true;
    const uint32_t stride = (desc.icache.ways + 1) * 4;
    cachedata.data.assign(static_cast<size_t>(desc.icache.sets) * stride, 0);
    uint32_t init_lru = 0;
    for (uint32_t w = 0; w < desc.icache.ways; ++w) {
      init_lru |= w << (8 * w);
    }
    for (uint32_t set = 0; set < desc.icache.sets; ++set) {
      const uint32_t off = set * stride + desc.icache.ways * 4;
      for (int i = 0; i < 4; ++i) {
        cachedata.data[off + i] = static_cast<uint8_t>(init_lru >> (8 * i));
      }
    }
    image.sections.push_back(std::move(cachedata));
  }

  for (const auto& [src, tgt] : block_tgt) {
    image.symbols.push_back(
        {"blk_" + hex32(src), tgt, 0, elf::SymbolBinding::kLocal});
  }

  // ---- stats -------------------------------------------------------------
  TranslationStats& st = result.stats;
  st.blocks = blocks.size();
  for (const SourceBlock& b : blocks) {
    st.source_instructions += b.instrs.size();
    st.cabs += b.cabs.size();
  }
  for (const vliw::Packet& p : all) {
    ++st.packets;
    st.machine_ops += p.ops.size();
  }
  st.code_bytes =
      image.findSection(options.text_section_name)->data.size();
  st.io_accesses_classified = analysis.io_accesses;
  st.ram_accesses_classified = analysis.ram_accesses;
  st.unknown_base_accesses = analysis.unknown_accesses;
  st.rewritten_movha = analysis.movha_rewrites.size();
  return result;
}

}  // namespace cabt::xlat
