// Fixed register binding between TRC32 and V6X.
//
// The translator binds the source architectural state to fixed V6X
// registers so that any basic block can be entered from any other:
//   D0..D15 -> A16..A31      (data registers, datapath A)
//   A0..A15 -> B16..B31      (address registers, datapath B)
// The low registers are reserved for the translation machinery:
//   A1, A2, B0   predicate registers (the only predicable ones)
//   A3           dynamic correction cycle counter (paper section 3.4)
//   A4           synchronization device base address
//   A5           cache-routine return address
//   A6, A7       cache-routine arguments (tag word, set byte offset)
//   B12          dispatch constant of the debugger's second image
//   B13          indirect-jump dispatch constant (table base - 2*text base)
//   B14          cache state area base (paper section 3.4.2)
//   B15          discard target of synchronization-wait loads
//   A8..A15, B1..B12         block-local temporaries
#pragma once

#include <cstdint>

#include "vliw/isa.h"

namespace cabt::xlat {

constexpr uint8_t srcD(int i) { return vliw::regA(16 + i); }
constexpr uint8_t srcA(int i) { return vliw::regB(16 + i); }

constexpr uint8_t kCorrReg = vliw::regA(3);
constexpr uint8_t kSyncBaseReg = vliw::regA(4);
constexpr uint8_t kCacheRetReg = vliw::regA(5);
constexpr uint8_t kCacheTagReg = vliw::regA(6);
constexpr uint8_t kCacheSetReg = vliw::regA(7);
constexpr uint8_t kDispatchReg = vliw::regB(13);
constexpr uint8_t kCacheBaseReg = vliw::regB(14);
/// The "wait for end of cycle generation" read needs a destination; B15
/// is reserved for it so the in-flight write can never collide with a
/// later write from another block (loads commit 5 slots after issue,
/// which may be deep inside the next block).
constexpr uint8_t kSyncDiscardReg = vliw::regB(15);
/// Dispatch constant of the debugger's second (instruction-oriented)
/// image; both images coexist in one register file, so each needs its
/// own (paper section 3.5 dual translation).
constexpr uint8_t kAltDispatchReg = vliw::regB(12);

/// Pool of block-local temporaries, in allocation order.
constexpr uint8_t kTempPool[] = {
    vliw::regA(8),  vliw::regA(9),  vliw::regA(10), vliw::regA(11),
    vliw::regA(12), vliw::regA(13), vliw::regA(14), vliw::regA(15),
    vliw::regB(1),  vliw::regB(2),  vliw::regB(3),  vliw::regB(4),
    vliw::regB(5),  vliw::regB(6),  vliw::regB(7),  vliw::regB(8),
    vliw::regB(9),  vliw::regB(10), vliw::regB(11),
};
constexpr int kTempPoolSize = static_cast<int>(sizeof(kTempPool));

/// True for a V6X register that mirrors source architectural state.
constexpr bool isSourceStateReg(uint8_t reg) {
  return (reg >= vliw::regA(16) && reg <= vliw::regA(31)) ||
         (reg >= vliw::regB(16) && reg <= vliw::regB(31));
}

/// The synchronization device window in the VLIW address space.
constexpr uint32_t kSyncDeviceBase = 0xfe00'0000;

}  // namespace cabt::xlat
