// Lowering: TRC32 instructions -> V6X ops, with cycle-generation
// annotation (paper Fig. 2), dynamic branch-prediction correction
// (section 3.4.1) and instruction-cache instrumentation (section 3.4.2,
// Figs. 3 and 4).
#include "common/error.h"
#include "soc/sync_device.h"
#include "xlat/internal.h"
#include "xlat/regmap.h"

namespace cabt::xlat {
namespace {

using trc::Opc;
using vliw::kNoReg;
using vliw::MachineOp;
using vliw::Pred;
using vliw::PredReg;
using vliw::VOpc;

/// Block-local temporary allocator over the fixed pool. Temporaries never
/// live across source instructions, so the per-expansion reset keeps the
/// pool small.
class TempAlloc {
 public:
  uint8_t get() {
    CABT_CHECK(next_ < kTempPoolSize, "temporary register pool exhausted");
    return kTempPool[next_++];
  }
  void reset() { next_ = 0; }

 private:
  int next_ = 0;
};

/// Builds ops for one source block.
class Lowerer {
 public:
  Lowerer(const LowerContext& ctx, SourceBlock& block)
      : ctx_(ctx), block_(block) {}

  void run() {
    const DetailLevel level = ctx_.options.level;
    if (level >= DetailLevel::kStatic) {
      emitSyncStart(block_.static_cycles);
    }
    size_t next_cab = 0;
    for (size_t i = 0; i < block_.instrs.size(); ++i) {
      temps_.reset();
      if (level >= DetailLevel::kICache) {
        while (next_cab < block_.cabs.size() &&
               block_.cab_starts[next_cab] == i) {
          emitCabLookup(block_.cabs[next_cab]);
          ++next_cab;
          temps_.reset();
        }
      }
      const trc::Instr& in = block_.instrs[i];
      const bool is_terminator = i + 1 == block_.instrs.size() &&
                                 (in.isControlTransfer() ||
                                  in.opc == Opc::kHalt);
      if (is_terminator) {
        lowerTerminator(in);
      } else {
        lowerPlain(in);
      }
    }
    if (!block_.endsWithControlTransfer() &&
        block_.last().opc != Opc::kHalt) {
      // Fall-through block: synchronize before the next block begins.
      temps_.reset();
      emitBlockEpilogue();
    }
  }

 private:
  // ---- op emission helpers ---------------------------------------------

  XOp& push(MachineOp op) {
    XOp x;
    x.op = op;
    block_.code.push_back(x);
    return block_.code.back();
  }

  MachineOp make(VOpc opc, uint8_t dst, uint8_t s1 = kNoReg,
                 uint8_t s2 = kNoReg, int32_t imm = 0) {
    MachineOp m;
    m.opc = opc;
    m.dst = dst;
    m.src1 = s1;
    m.src2 = s2;
    m.imm = imm;
    return m;
  }

  void emitRRR(VOpc opc, const trc::Instr& in) {
    push(make(opc, srcD(in.rd), srcD(in.ra), srcD(in.rb)));
  }

  /// Materialises a 32-bit constant into `reg` (one or two ops).
  void emitConst(uint8_t reg, uint32_t value) {
    const int32_t sv = static_cast<int32_t>(value);
    if (sv >= -32768 && sv <= 32767) {
      push(make(VOpc::kMvk, reg, kNoReg, kNoReg, sv));
      return;
    }
    push(make(VOpc::kMvk, reg, kNoReg, kNoReg,
              static_cast<int16_t>(value & 0xffffu)));
    push(make(VOpc::kMvkh, reg, kNoReg, kNoReg,
              static_cast<int32_t>(value >> 16)));
  }

  /// dst = src + imm (any 16-bit signed imm), preserving src.
  void emitAddImm(uint8_t dst, uint8_t src, int32_t imm) {
    if (dst != src) {
      push(make(VOpc::kMv, dst, src));
    }
    if (imm != 0 || dst == src) {
      push(make(VOpc::kAddk, dst, kNoReg, kNoReg, imm));
    }
  }

  /// Memory op with an arbitrary source offset; falls back to effective-
  /// address materialisation when the offset is not directly encodable.
  void emitMem(VOpc opc, uint8_t data_reg, uint8_t base, int32_t off,
               bool volatile_mem = false) {
    const int32_t scale = static_cast<int32_t>(vliw::memAccessSize(opc));
    if (off % scale == 0 && off / scale >= -31 && off / scale <= 31) {
      push(make(opc, data_reg, base, kNoReg, off)).volatile_mem =
          volatile_mem;
      return;
    }
    const uint8_t t = temps_.get();
    emitAddImm(t, base, off);
    push(make(opc, data_reg, t, kNoReg, 0)).volatile_mem = volatile_mem;
  }

  // ---- annotation (paper Fig. 2 / Fig. 3) --------------------------------

  void emitSyncStart(uint32_t n) {
    const uint8_t t = temps_.get();
    push(make(VOpc::kMvk, t, kNoReg, kNoReg, static_cast<int32_t>(n)));
    push(make(VOpc::kStw, t, kSyncBaseReg, kNoReg,
              soc::SyncDevice::kStartOffset))
        .volatile_mem = true;
    temps_.reset();
  }

  void emitSyncWait() {
    push(make(VOpc::kLdw, kSyncDiscardReg, kSyncBaseReg, kNoReg,
              soc::SyncDevice::kStatusOffset))
        .volatile_mem = true;
  }

  [[nodiscard]] bool blockNeedsCorrectionFlush() const {
    if (ctx_.options.level < DetailLevel::kBranchPredict) {
      return false;
    }
    if (ctx_.options.level >= DetailLevel::kICache && !block_.cabs.empty()) {
      return true;
    }
    return block_.endsWithControlTransfer() &&
           block_.last().cls() == arch::OpClass::kBranchCond;
  }

  /// End-of-block synchronisation: wait for the static generation, then
  /// flush the dynamically collected correction cycles (Fig. 3: "start
  /// correction cycle generation" + "wait for end of correction cycle
  /// generation").
  void emitBlockEpilogue() {
    if (ctx_.options.level < DetailLevel::kStatic) {
      return;
    }
    emitSyncWait();
    if (blockNeedsCorrectionFlush()) {
      push(make(VOpc::kStw, kCorrReg, kSyncBaseReg, kNoReg,
                soc::SyncDevice::kCorrectOffset))
          .volatile_mem = true;
      emitSyncWait();
      push(make(VOpc::kMvk, kCorrReg, kNoReg, kNoReg, 0));
    }
  }

  // ---- cache instrumentation (paper section 3.4.2) -----------------------

  void emitCabLookup(const CacheAnalysisBlock& cab) {
    // Arguments: A6 = combined tag+valid word, A7 = set byte offset.
    push(make(VOpc::kMvk, kCacheSetReg, kNoReg, kNoReg,
              static_cast<int32_t>(cab.set_offset)));
    emitConst(kCacheTagReg, cab.tag_word);
    if (inlineCache()) {
      for (const XOp& x : buildCacheRoutine(ctx_.desc->icache,
                                            /*inline_body=*/true)) {
        block_.code.push_back(x);
      }
      return;
    }
    // Call: materialise the return address (patched at emit time), branch
    // to the routine appended after the program.
    const uint32_t call_id = num_calls_++;
    XOp& lo = push(make(VOpc::kMvk, kCacheRetReg, kNoReg, kNoReg, 0));
    lo.fixup = XOp::Fixup::kRetAddrLo;
    lo.fixup_data = call_id;
    XOp& hi = push(make(VOpc::kMvkh, kCacheRetReg, kNoReg, kNoReg, 0));
    hi.fixup = XOp::Fixup::kRetAddrHi;
    hi.fixup_data = call_id;
    XOp& call = push(make(VOpc::kB, kNoReg));
    call.fixup = XOp::Fixup::kBranchToRoutine;
    call.is_call = true;
  }

  [[nodiscard]] bool inlineCache() const {
    const uint32_t threshold = ctx_.options.inline_cache_threshold;
    return threshold != 0 && block_.instrs.size() >= threshold;
  }

  // ---- plain instruction selection ---------------------------------------

  void lowerPlain(const trc::Instr& in) {
    switch (in.opc) {
      case Opc::kAdd:
        emitRRR(VOpc::kAdd, in);
        break;
      case Opc::kSub:
        emitRRR(VOpc::kSub, in);
        break;
      case Opc::kAnd:
        emitRRR(VOpc::kAnd, in);
        break;
      case Opc::kOr:
        emitRRR(VOpc::kOr, in);
        break;
      case Opc::kXor:
        emitRRR(VOpc::kXor, in);
        break;
      case Opc::kShl:
        emitRRR(VOpc::kShl, in);
        break;
      case Opc::kShr:
        emitRRR(VOpc::kShr, in);
        break;
      case Opc::kSar:
        emitRRR(VOpc::kSar, in);
        break;
      case Opc::kMul:
        emitRRR(VOpc::kMpy, in);
        break;
      case Opc::kEq:
        emitRRR(VOpc::kCmpEq, in);
        break;
      case Opc::kNe:
        emitRRR(VOpc::kCmpNe, in);
        break;
      case Opc::kLt:
        emitRRR(VOpc::kCmpLt, in);
        break;
      case Opc::kGe:
        emitRRR(VOpc::kCmpGe, in);
        break;
      case Opc::kLtu:
        emitRRR(VOpc::kCmpLtu, in);
        break;
      case Opc::kGeu:
        emitRRR(VOpc::kCmpGeu, in);
        break;
      case Opc::kAddi:
        emitAddImm(srcD(in.rd), srcD(in.ra), in.imm);
        break;
      case Opc::kMovi:
        push(make(VOpc::kMvk, srcD(in.rd), kNoReg, kNoReg, in.imm));
        break;
      case Opc::kMovh:
        emitConst(srcD(in.rd), static_cast<uint32_t>(in.imm) << 16);
        break;
      case Opc::kMova:
        push(make(VOpc::kMv, srcA(in.rd), srcD(in.ra)));
        break;
      case Opc::kMovd:
        push(make(VOpc::kMv, srcD(in.rd), srcA(in.ra)));
        break;
      case Opc::kLea:
        emitAddImm(srcA(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kMovha: {
        // Base-address rewriting: the address analysis may have remapped
        // this immediate into the target address space.
        uint32_t imm = static_cast<uint32_t>(in.imm);
        const auto it = ctx_.addresses->movha_rewrites.find(in.addr);
        if (it != ctx_.addresses->movha_rewrites.end()) {
          imm = it->second;
        }
        emitConst(srcA(in.rd), imm << 16);
        break;
      }
      case Opc::kAdda:
        push(make(VOpc::kAdd, srcA(in.rd), srcA(in.ra), srcA(in.rb)));
        break;
      case Opc::kSuba:
        push(make(VOpc::kSub, srcA(in.rd), srcA(in.ra), srcA(in.rb)));
        break;
      case Opc::kLdw:
        emitMem(VOpc::kLdw, srcD(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kLdh:
        emitMem(VOpc::kLdh, srcD(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kLdhu:
        emitMem(VOpc::kLdhu, srcD(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kLdb:
        emitMem(VOpc::kLdb, srcD(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kLdbu:
        emitMem(VOpc::kLdbu, srcD(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kLda:
        emitMem(VOpc::kLdw, srcA(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kStw:
        emitMem(VOpc::kStw, srcD(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kSth:
        emitMem(VOpc::kSth, srcD(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kStb:
        emitMem(VOpc::kStb, srcD(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kSta:
        emitMem(VOpc::kStw, srcA(in.rd), srcA(in.ra), in.imm);
        break;
      case Opc::kNop:
      case Opc::kNop16:
        break;  // timing-only; already in the static cycle count
      case Opc::kBkpt:
        push(make(VOpc::kYield, kNoReg));
        break;
      case Opc::kMov16:
        push(make(VOpc::kMv, srcD(in.rd), srcD(in.rb)));
        break;
      case Opc::kAdd16:
        push(make(VOpc::kAdd, srcD(in.rd), srcD(in.rd), srcD(in.rb)));
        break;
      case Opc::kSub16:
        push(make(VOpc::kSub, srcD(in.rd), srcD(in.rd), srcD(in.rb)));
        break;
      case Opc::kMovi16:
        push(make(VOpc::kMvk, srcD(in.rd), kNoReg, kNoReg, in.imm));
        break;
      case Opc::kAddi16:
        push(make(VOpc::kAddk, srcD(in.rd), kNoReg, kNoReg, in.imm));
        break;
      case Opc::kHalt:
        // HALT in the middle of a block (unreachable tail exists): treat
        // as a terminator anyway.
        emitBlockEpilogue();
        push(make(VOpc::kHalt, kNoReg));
        break;
      default:
        CABT_FAIL("control transfer reached lowerPlain: "
                  << in.info().mnemonic);
    }
  }

  // ---- terminators --------------------------------------------------------

  void emitBranchToBlock(uint32_t target_src_addr, Pred pred = {}) {
    MachineOp b = make(VOpc::kB, kNoReg);
    b.pred = pred;
    XOp& x = push(b);
    x.fixup = XOp::Fixup::kBranchToBlock;
    x.fixup_data = target_src_addr;
  }

  /// Conditional-branch condition -> predicate register A1.
  void emitCondition(const trc::Instr& in) {
    switch (in.opc) {
      case Opc::kJeq:
        push(make(VOpc::kCmpEq, vliw::regA(1), srcD(in.ra), srcD(in.rb)));
        break;
      case Opc::kJne:
        push(make(VOpc::kCmpNe, vliw::regA(1), srcD(in.ra), srcD(in.rb)));
        break;
      case Opc::kJlt:
        push(make(VOpc::kCmpLt, vliw::regA(1), srcD(in.ra), srcD(in.rb)));
        break;
      case Opc::kJge:
        push(make(VOpc::kCmpGe, vliw::regA(1), srcD(in.ra), srcD(in.rb)));
        break;
      case Opc::kJltu:
        push(make(VOpc::kCmpLtu, vliw::regA(1), srcD(in.ra), srcD(in.rb)));
        break;
      case Opc::kJgeu:
        push(make(VOpc::kCmpGeu, vliw::regA(1), srcD(in.ra), srcD(in.rb)));
        break;
      case Opc::kJnz16:
      case Opc::kJz16:
        // Copy the tested register into the predicate register; the sense
        // is handled by the z bit on the branch.
        push(make(VOpc::kMv, vliw::regA(1), srcD(in.rd)));
        break;
      default:
        CABT_FAIL("not a conditional branch");
    }
  }

  /// Dynamic branch-prediction correction (paper section 3.4.1): count
  /// the outcome-dependent extra cycles into the correction register.
  void emitBranchCorrection(const trc::Instr& in, bool taken_sense_z) {
    const bool predicted_taken = arch::BranchModel::predictsTaken(in.imm);
    const unsigned extra_taken =
        ctx_.desc->branch.conditionalExtra(predicted_taken, true);
    const unsigned extra_not_taken =
        ctx_.desc->branch.conditionalExtra(predicted_taken, false);
    if (extra_taken != 0) {
      MachineOp add = make(VOpc::kAddk, kCorrReg, kNoReg, kNoReg,
                           static_cast<int32_t>(extra_taken));
      add.pred = {PredReg::kA1, taken_sense_z};
      push(add);
    }
    if (extra_not_taken != 0) {
      MachineOp add = make(VOpc::kAddk, kCorrReg, kNoReg, kNoReg,
                           static_cast<int32_t>(extra_not_taken));
      add.pred = {PredReg::kA1, !taken_sense_z};
      push(add);
    }
  }

  void lowerTerminator(const trc::Instr& in) {
    switch (in.cls()) {
      case arch::OpClass::kBranchCond: {
        // "taken" corresponds to A1 != 0, except jz16 where it is A1 == 0.
        const bool taken_sense_z = in.opc == Opc::kJz16;
        emitCondition(in);
        if (ctx_.options.level >= DetailLevel::kBranchPredict) {
          emitBranchCorrection(in, taken_sense_z);
        }
        emitBlockEpilogue();
        emitBranchToBlock(in.branchTarget(),
                          Pred{PredReg::kA1, taken_sense_z});
        break;
      }
      case arch::OpClass::kBranchUncond:
        emitBlockEpilogue();
        emitBranchToBlock(in.branchTarget());
        break;
      case arch::OpClass::kCall: {
        emitBlockEpilogue();
        // The link register keeps the *source* return address so that the
        // architectural state matches the reference processor.
        emitConst(srcA(trc::kLinkRegister), in.addr + in.size);
        emitBranchToBlock(in.branchTarget());
        break;
      }
      case arch::OpClass::kBranchInd: {
        emitBlockEpilogue();
        // Dispatch through the address-translation table:
        //   entry address = 2*src_target + (table_base - 2*text_base).
        const uint8_t src_reg =
            in.opc == Opc::kRet16 ? srcA(trc::kLinkRegister) : srcA(in.ra);
        const uint8_t t = temps_.get();
        const uint8_t t2 = temps_.get();
        push(make(VOpc::kAdd, t, src_reg, src_reg));
        push(make(VOpc::kAdd, t, t, ctx_.dispatch_reg));
        push(make(VOpc::kLdw, t2, t, kNoReg, 0));
        push(make(VOpc::kBr, kNoReg, t2));
        break;
      }
      default:
        if (in.opc == Opc::kHalt) {
          emitBlockEpilogue();
          push(make(VOpc::kHalt, kNoReg));
          return;
        }
        CABT_FAIL("unexpected terminator " << in.info().mnemonic);
    }
  }

  const LowerContext& ctx_;
  SourceBlock& block_;
  TempAlloc temps_;
  uint32_t num_calls_ = 0;
};

}  // namespace

std::vector<XOp> buildCacheRoutine(const arch::ICacheModel& icache,
                                   bool inline_body) {
  CABT_CHECK(icache.ways == 2,
             "the generated cache-correction routine supports 2-way "
             "set-associative caches (got ways="
                 << icache.ways << ")");
  std::vector<XOp> out;
  const auto push = [&out](MachineOp op) -> XOp& {
    XOp x;
    x.op = op;
    out.push_back(x);
    return out.back();
  };
  const auto make = [](VOpc opc, uint8_t dst, uint8_t s1 = kNoReg,
                       uint8_t s2 = kNoReg, int32_t imm = 0) {
    MachineOp m;
    m.opc = opc;
    m.dst = dst;
    m.src1 = s1;
    m.src2 = s2;
    m.imm = imm;
    return m;
  };
  // Fixed temporaries (block-local pool; caller temporaries are dead).
  const uint8_t t0 = kTempPool[0];   // set state address
  const uint8_t w0 = kTempPool[1];   // way-0 tag word
  const uint8_t w1 = kTempPool[2];   // way-1 tag word
  const uint8_t lru = kTempPool[3];  // LRU word
  const uint8_t nl = kTempPool[4];   // new LRU word, hit case
  const uint8_t m255 = kTempPool[5];
  const uint8_t v = kTempPool[6];    // victim way index
  const uint8_t va = kTempPool[7];   // victim tag word address
  const uint8_t nl2 = kTempPool[8];  // new LRU word, miss case

  // Input: A6 = expected tag+valid word, A7 = set byte offset.
  push(make(VOpc::kAdd, t0, kCacheBaseReg, kCacheSetReg));
  push(make(VOpc::kLdw, w0, t0, kNoReg, 0));
  push(make(VOpc::kLdw, w1, t0, kNoReg, 4));
  push(make(VOpc::kLdw, lru, t0, kNoReg, 8));
  // Hit detection per way (paper Fig. 4: "if tag can be found in specified
  // set and valid bit is set").
  push(make(VOpc::kCmpEq, vliw::regA(2), w0, kCacheTagReg));
  push(make(VOpc::kCmpEq, vliw::regB(0), w1, kCacheTagReg));
  {
    // New LRU word on hit: accessed way becomes most recently used.
    MachineOp a = make(VOpc::kMvk, nl, kNoReg, kNoReg, 1);  // hit way 0
    a.pred = {PredReg::kA2, false};
    push(a);
    MachineOp b = make(VOpc::kMvk, nl, kNoReg, kNoReg, 256);  // hit way 1
    b.pred = {PredReg::kB0, false};
    push(b);
  }
  push(make(VOpc::kOr, vliw::regA(2), vliw::regA(2), vliw::regB(0)));
  // Miss path ("use lru information to find out tag to overwrite"):
  push(make(VOpc::kMvk, m255, kNoReg, kNoReg, 255));
  push(make(VOpc::kAnd, v, lru, m255));
  push(make(VOpc::kAdd, va, v, v));
  push(make(VOpc::kAdd, va, va, va));
  push(make(VOpc::kAdd, va, va, t0));
  push(make(VOpc::kMv, vliw::regB(0), v));
  {
    MachineOp a = make(VOpc::kMvk, nl2, kNoReg, kNoReg, 256);  // victim 1
    a.pred = {PredReg::kB0, false};
    push(a);
    MachineOp b = make(VOpc::kMvk, nl2, kNoReg, kNoReg, 1);  // victim 0
    b.pred = {PredReg::kB0, true};
    push(b);
  }
  // Commit: hit renews the LRU information; miss writes the new tag word
  // (with valid bit), the new LRU word, and the correction cycles.
  {
    MachineOp s = make(VOpc::kStw, nl, t0, kNoReg, 8);
    s.pred = {PredReg::kA2, false};
    push(s);
    MachineOp w = make(VOpc::kStw, kCacheTagReg, va, kNoReg, 0);
    w.pred = {PredReg::kA2, true};
    push(w);
    MachineOp l = make(VOpc::kStw, nl2, t0, kNoReg, 8);
    l.pred = {PredReg::kA2, true};
    push(l);
    MachineOp c = make(VOpc::kAddk, kCorrReg, kNoReg, kNoReg,
                       static_cast<int32_t>(icache.miss_penalty));
    c.pred = {PredReg::kA2, true};
    push(c);
  }
  if (!inline_body) {
    push(make(VOpc::kBr, kNoReg, kCacheRetReg));
  }
  return out;
}

void lowerBlocks(const LowerContext& ctx, std::vector<SourceBlock>& blocks) {
  for (SourceBlock& block : blocks) {
    Lowerer lowerer(ctx, block);
    lowerer.run();
  }
}

}  // namespace cabt::xlat
