// The cycle-accurate static binary translator (the paper's contribution).
//
// Translates a TRC32 ELF image into an annotated V6X ELF image following
// the paper's flow (Fig. 1):
//   decode -> basic blocks -> base-address analysis -> static cycle
//   calculation -> insertion of cycle generation code -> insertion of
//   dynamic correction code -> scheduling/binding -> object file.
//
// Decoding, basic-block construction and static cycle calculation live in
// the shared program-analysis layer `src/core/` (core::BlockGraph): the
// reference ISS executes from the same graph through its predecoded
// block cache, so the translated image and the ground truth agree on
// block boundaries and static schedules by construction (DESIGN.md).
//
// Four detail levels (paper section 3.2; level 0 is the paper's
// "C6x without cycle information" speed baseline):
//   kFunctional     no timing annotation at all
//   kStatic         per-block static cycle generation (Fig. 2)
//   kBranchPredict  + dynamic branch-prediction correction (section 3.4.1)
//   kICache         + dynamic instruction-cache simulation (section 3.4.2)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "elf/elf.h"
#include "trc/isa.h"

namespace cabt::xlat {

enum class DetailLevel : uint8_t {
  kFunctional = 0,
  kStatic = 1,
  kBranchPredict = 2,
  kICache = 3,
};

const char* detailLevelName(DetailLevel level);

struct TranslateOptions {
  DetailLevel level = DetailLevel::kStatic;
  /// Base address of the translated code in the V6X address space.
  uint32_t text_base = 0x0010'0000;
  /// Inline the cache-correction routine into blocks with at least this
  /// many source instructions instead of calling it (paper: "In large
  /// basic blocks, this code can be included into the basic block").
  /// 0 disables inlining entirely.
  uint32_t inline_cache_threshold = 0;
  /// Instruction-oriented cycle generation: every source instruction
  /// becomes its own annotated unit followed by a YIELD into the debug
  /// runtime (paper section 3.5; used for single-stepping).
  bool instruction_oriented = false;
  /// Placement of the translator-managed data structures; the debugger
  /// overrides these for the second image of its dual translation so
  /// both can coexist in one address space (the cache state area is
  /// shared on purpose).
  uint32_t jump_table_base = 0x0020'0000;
  uint32_t cache_data_base = 0x0028'0000;
  /// Section name of the emitted code (".text" by default).
  std::string text_section_name = ".text";
  /// Register holding the indirect-jump dispatch constant; the debugger's
  /// second image uses kAltDispatchReg so both images can coexist.
  uint8_t dispatch_reg = 0xff;  ///< 0xff = default (kDispatchReg)
  /// Fault-injection drill for the fuzzing farm: add one bogus static
  /// cycle to every block with at least two instructions. Skews only the
  /// translated image's timing annotation — the ISS reference is
  /// untouched — so the differential oracle must flag it. Never enable
  /// outside tests.
  bool debug_skew_static_cycles = false;
};

/// One cache analysis block (paper section 3.4.2): a maximal run of
/// instructions within a basic block whose first bytes share a cache line.
struct CacheAnalysisBlock {
  uint32_t first_addr = 0;
  uint32_t tag_word = 0;    ///< (tag << 1) | valid, as stored in memory
  uint32_t set_offset = 0;  ///< byte offset of the set's state in the area
};

/// Per-source-block translation record (also drives debugging).
struct BlockInfo {
  uint32_t src_addr = 0;
  uint32_t tgt_addr = 0;  ///< address of the block's first execute packet
  uint32_t num_instrs = 0;
  uint32_t static_cycles = 0;  ///< n of the block's "start cycle generation"
  std::vector<CacheAnalysisBlock> cabs;
};

struct TranslationStats {
  uint64_t source_instructions = 0;  ///< static count
  uint64_t blocks = 0;
  uint64_t cabs = 0;
  uint64_t machine_ops = 0;
  uint64_t packets = 0;
  uint64_t code_bytes = 0;
  uint64_t io_accesses_classified = 0;  ///< mem ops with statically known IO
  uint64_t ram_accesses_classified = 0;
  uint64_t unknown_base_accesses = 0;
  uint64_t rewritten_movha = 0;  ///< base addresses changed to target space
};

struct TranslationResult {
  elf::Object image;
  /// Source basic-block address -> block record (tgt_addr filled in).
  std::map<uint32_t, BlockInfo> blocks;
  /// Source instruction address -> target packet address (only in
  /// instruction-oriented mode).
  std::map<uint32_t, uint32_t> instr_map;
  TranslationStats stats;
};

/// Translates `object` (a TRC32 ELF image) for the source processor
/// described by `desc`. Throws cabt::Error on unsupported input.
TranslationResult translate(const arch::ArchDescription& desc,
                            const elf::Object& object,
                            const TranslateOptions& options = {});

}  // namespace cabt::xlat
