// Scheduling: lowered ops -> execute packets (paper Fig. 1, "further
// transformations": parallelisation, unit assignment).
//
// A greedy in-order packetizer: each op is placed in the earliest issue
// slot (>= the previous op's slot) where its operands are available, the
// required functional-unit kind has a free instance, and memory/volatile
// ordering holds. Because the V6X has no interlocks, the packer is fully
// responsible for result latencies (loads +4, multiplies +1). Runs of
// empty slots are compressed into multi-cycle NOPs afterwards. A
// terminating branch is followed by five empty slots; a cache-routine
// call's delay slots are kept empty and the return address is the packet
// that follows them.
#include <algorithm>

#include "common/error.h"
#include "xlat/internal.h"
#include "xlat/regmap.h"

namespace cabt::xlat {
namespace {

using vliw::kNoReg;
using vliw::MachineOp;
using vliw::Packet;
using vliw::UnitKind;
using vliw::VOpc;

/// Extra result-latency slots beyond the default one cycle.
unsigned extraSlots(VOpc opc) {
  if (vliw::isLoad(opc)) {
    return 4;
  }
  if (opc == VOpc::kMpy) {
    return 1;
  }
  return 0;
}

bool readsDst(VOpc opc) {
  return opc == VOpc::kAddk || opc == VOpc::kMvkh;
}

bool isControl(VOpc opc) {
  return vliw::isBranch(opc) || opc == VOpc::kHalt || opc == VOpc::kYield;
}

/// Working state of one in-construction packet.
struct Slot {
  std::vector<MachineOp> ops;
  std::vector<size_t> x_index;  ///< originating XOp index per op
  unsigned units_used = 0;      ///< bitmask over unit ids
  uint64_t dst_written = 0;     ///< registers written by ops in this packet
  bool has_control = false;
};

class Packer {
 public:
  explicit Packer(const std::vector<XOp>& ops) : ops_(ops) {}

  ScheduledBlock run() {
    for (size_t i = 0; i < ops_.size(); ++i) {
      place(i);
    }
    // Drain: a block may be entered from anywhere, so every in-flight
    // write must have committed before the next block's first slot. For
    // branch-terminated blocks the five delay slots already guarantee
    // this (nothing can issue after the branch, so every write is due at
    // most branch_slot + 5 < branch_slot + 6); fall-through blocks are
    // padded with empty slots up to the latest commit.
    size_t max_due = 0;
    for (const size_t due : last_due_) {
      max_due = std::max(max_due, due);
    }
    if (max_due > slots_.size()) {
      ensureSlot(max_due - 1);
    }
    return compress();
  }

 private:
  void ensureSlot(size_t s) {
    while (slots_.size() <= s) {
      slots_.emplace_back();
    }
  }

  /// Registers read by an op (including predicate and read-modify dst).
  void forEachRead(const MachineOp& op, auto&& fn) const {
    if (op.src1 != kNoReg) {
      fn(op.src1);
    }
    if (op.src2 != kNoReg) {
      fn(op.src2);
    }
    if (!op.pred.always()) {
      fn(op.pred.regId());
    }
    if ((readsDst(op.opc) || vliw::isStore(op.opc)) && op.dst != kNoReg) {
      fn(op.dst);
    }
  }

  [[nodiscard]] bool writesDst(const MachineOp& op) const {
    return op.dst != kNoReg && !vliw::isStore(op.opc) &&
           op.opc != VOpc::kB && op.opc != VOpc::kNop &&
           op.opc != VOpc::kHalt && op.opc != VOpc::kYield;
  }

  /// Picks a free unit for the op in slot `s`, or returns false.
  bool pickUnit(const MachineOp& op, Slot& slot, vliw::Unit* unit) const {
    const auto tryUnit = [&](UnitKind kind, uint8_t side) {
      if (!vliw::unitAllowed(op.opc, kind)) {
        return false;
      }
      const vliw::Unit u{kind, side};
      if ((slot.units_used & (1u << u.id())) != 0) {
        return false;
      }
      *unit = u;
      return true;
    };
    if (vliw::isMem(op.opc)) {
      // D unit on the base register's side.
      return tryUnit(UnitKind::kD, vliw::isFileB(op.src1) ? 1 : 0);
    }
    for (const UnitKind kind :
         {UnitKind::kL, UnitKind::kS, UnitKind::kM, UnitKind::kD}) {
      // Prefer the side of the destination file to spread pressure.
      const uint8_t preferred =
          op.dst != kNoReg && op.dst != 0xff && vliw::isFileB(op.dst) ? 1 : 0;
      if (tryUnit(kind, preferred) || tryUnit(kind, 1 - preferred)) {
        return true;
      }
    }
    return false;
  }

  void place(size_t index) {
    const XOp& x = ops_[index];
    const MachineOp& op = x.op;

    size_t earliest = prev_slot_;
    forEachRead(op, [&](uint8_t r) {
      earliest = std::max(earliest, ready_[r]);
    });
    if (writesDst(op)) {
      // Keep commit times per register strictly increasing (the machine
      // traps two writebacks to one register in the same cycle).
      const unsigned extra = extraSlots(op.opc);
      if (last_due_[op.dst] > extra) {
        earliest = std::max(earliest, last_due_[op.dst] - extra);
      }
    }
    if (vliw::isMem(op.opc)) {
      earliest = std::max(earliest, mem_barrier_);
    }
    if (x.volatile_mem) {
      earliest = std::max(earliest, volatile_barrier_);
    }

    size_t s = earliest;
    vliw::Unit unit;
    for (;; ++s) {
      ensureSlot(s);
      Slot& slot = slots_[s];
      if (slot.ops.size() >= 8) {
        continue;
      }
      if (isControl(op.opc) && slot.has_control) {
        continue;
      }
      // Two writes to one register in a single execute packet are illegal
      // (even with different commit latencies).
      if (writesDst(op) && (slot.dst_written & (uint64_t{1} << op.dst)) != 0) {
        continue;
      }
      if (op.opc == VOpc::kNop) {
        break;  // never generated by lowering; defensive
      }
      if (pickUnit(op, slot, &unit)) {
        break;
      }
    }

    Slot& slot = slots_[s];
    MachineOp placed = op;
    placed.unit = unit;
    slot.ops.push_back(placed);
    slot.x_index.push_back(index);
    slot.units_used |= 1u << unit.id();
    slot.has_control = slot.has_control || isControl(op.opc);
    if (writesDst(op)) {
      slot.dst_written |= uint64_t{1} << op.dst;
    }

    if (writesDst(op)) {
      const size_t due = s + 1 + extraSlots(op.opc);
      ready_[op.dst] = due;
      last_due_[op.dst] = due;
    }
    if (vliw::isMem(op.opc)) {
      mem_barrier_ = s + 1;
    }
    if (x.volatile_mem) {
      volatile_barrier_ = s + 1;
    }
    prev_slot_ = s;

    if (vliw::isBranch(op.opc)) {
      // Five delay slots after any branch.
      ensureSlot(s + 5);
      if (x.is_call) {
        // The cache routine returns to the packet after the delay slots;
        // it clobbers the temporaries, the scratch predicates and the
        // correction register relative to our static tracking.
        const size_t ret = s + 6;
        ensureSlot(ret);
        labels_.push_back(ret);
        call_returns_slots_.push_back(ret);
        prev_slot_ = ret;
        mem_barrier_ = std::max(mem_barrier_, ret);
        volatile_barrier_ = std::max(volatile_barrier_, ret);
        for (int i = 0; i < 9; ++i) {
          ready_[kTempPool[i]] = ret;
          last_due_[kTempPool[i]] = ret;
        }
        for (const uint8_t r : {vliw::regA(2), vliw::regB(0), kCorrReg}) {
          ready_[r] = ret;
          last_due_[r] = ret;
        }
      } else {
        prev_slot_ = s;  // terminator: nothing may follow anyway
      }
    }
  }

  /// Compresses empty slots into NOP packets and resolves fixup/return
  /// locations to final packet indices.
  ScheduledBlock compress() {
    // A NOP run must break at label slots (call-return targets).
    std::sort(labels_.begin(), labels_.end());

    ScheduledBlock out;
    std::vector<size_t> slot_to_packet(slots_.size() + 1, SIZE_MAX);
    size_t s = 0;
    while (s < slots_.size()) {
      if (!slots_[s].ops.empty()) {
        slot_to_packet[s] = out.packets.size();
        Packet p;
        p.ops = slots_[s].ops;
        for (size_t k = 0; k < slots_[s].x_index.size(); ++k) {
          const XOp& x = ops_[slots_[s].x_index[k]];
          if (x.fixup != XOp::Fixup::kNone) {
            out.fixups.push_back(
                {out.packets.size(), k, x.fixup, x.fixup_data});
          }
        }
        out.packets.push_back(std::move(p));
        ++s;
        continue;
      }
      // Start of an empty run: extend to the next non-empty slot or label.
      size_t end = s;
      while (end < slots_.size() && slots_[end].ops.empty() &&
             !(end != s &&
               std::binary_search(labels_.begin(), labels_.end(), end))) {
        ++end;
      }
      size_t run = end - s;
      slot_to_packet[s] = out.packets.size();
      while (run > 0) {
        const size_t chunk = std::min<size_t>(run, 9);
        Packet p;
        MachineOp nop;
        nop.opc = VOpc::kNop;
        nop.imm = static_cast<int32_t>(chunk);
        p.ops.push_back(nop);
        out.packets.push_back(std::move(p));
        run -= chunk;
      }
      s = end;
    }
    // A return label right past the end becomes the next block's first
    // packet: record it as one-past-the-end.
    slot_to_packet[slots_.size()] = out.packets.size();

    for (const size_t ret_slot : call_returns_slots_) {
      CABT_ASSERT(ret_slot < slot_to_packet.size() &&
                      slot_to_packet[ret_slot] != SIZE_MAX,
                  "call return slot did not map to a packet");
      out.call_returns.push_back(slot_to_packet[ret_slot]);
    }
    return out;
  }

  const std::vector<XOp>& ops_;
  std::vector<Slot> slots_;
  std::array<size_t, 64> ready_{};
  std::array<size_t, 64> last_due_{};
  size_t mem_barrier_ = 0;
  size_t volatile_barrier_ = 0;
  size_t prev_slot_ = 0;
  std::vector<size_t> labels_;
  std::vector<size_t> call_returns_slots_;
};

}  // namespace

ScheduledBlock scheduleBlock(const std::vector<XOp>& ops) {
  return Packer(ops).run();
}

}  // namespace cabt::xlat
