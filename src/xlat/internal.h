// Internal data structures shared between the translator's passes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "arch/arch.h"
#include "core/block_graph.h"
#include "elf/elf.h"
#include "trc/isa.h"
#include "vliw/isa.h"
#include "xlat/translator.h"

namespace cabt::xlat {

/// One target op produced by lowering, before scheduling. The scheduler
/// assigns units; the emitter patches fixups once packet addresses are
/// known.
struct XOp {
  vliw::MachineOp op;
  enum class Fixup : uint8_t {
    kNone,
    kBranchToBlock,    ///< op.imm <- target address of source block
    kBranchToRoutine,  ///< op.imm <- address of the cache routine
    kRetAddrLo,        ///< op.imm <- low half of the post-call address
    kRetAddrHi,        ///< op.imm <- high half of the post-call address
  };
  Fixup fixup = Fixup::kNone;
  uint32_t fixup_data = 0;  ///< kBranchToBlock: source target address;
                            ///< kRetAddr*: call id within the block
  bool volatile_mem = false;
  bool is_call = false;  ///< segment boundary: delay slots must stay empty
};

/// A source basic block plus everything the passes attach to it.
struct SourceBlock {
  uint32_t addr = 0;
  std::vector<trc::Instr> instrs;
  uint32_t static_cycles = 0;
  std::vector<CacheAnalysisBlock> cabs;
  /// Index into instrs at which each CAB begins (parallel to cabs).
  std::vector<size_t> cab_starts;
  std::vector<XOp> code;

  [[nodiscard]] const trc::Instr& last() const { return instrs.back(); }
  [[nodiscard]] bool endsWithControlTransfer() const {
    return !instrs.empty() && instrs.back().isControlTransfer();
  }
};

/// Constant-propagation lattice value for an address register.
struct AddrValue {
  enum class State : uint8_t { kBottom, kConst, kTop };
  State state = State::kBottom;
  uint32_t value = 0;

  static AddrValue bottom() { return {State::kBottom, 0}; }
  static AddrValue top() { return {State::kTop, 0}; }
  static AddrValue constant(uint32_t v) { return {State::kConst, v}; }
  [[nodiscard]] bool isConst() const { return state == State::kConst; }
  bool operator==(const AddrValue&) const = default;

  /// Lattice meet.
  [[nodiscard]] AddrValue meet(const AddrValue& other) const {
    if (state == State::kBottom) {
      return other;
    }
    if (other.state == State::kBottom) {
      return *this;
    }
    if (*this == other) {
      return *this;
    }
    return top();
  }
};

/// Result of the base-address analysis (paper Fig. 1: "finding base
/// addresses"): classification of every memory access and the set of
/// MOVHA instructions whose immediate must be rewritten to the target
/// address space.
struct AddressAnalysis {
  /// Source address of each memory instruction -> statically known
  /// effective address (absent = unknown base).
  std::map<uint32_t, uint32_t> known_ea;
  /// Source addresses of MOVHA instructions -> new immediate.
  std::map<uint32_t, uint16_t> movha_rewrites;
  uint64_t io_accesses = 0;
  uint64_t ram_accesses = 0;
  uint64_t unknown_accesses = 0;
};

/// Runs the forward constant propagation over the block graph (leaders,
/// blocks and successor edges all come from the shared core layer).
AddressAnalysis analyzeAddresses(const arch::ArchDescription& desc,
                                 const core::BlockGraph& graph);

/// Converts the shared block graph into the translator's per-pass records.
std::vector<SourceBlock> buildBlocks(const core::BlockGraph& graph);

/// Convenience overload that builds the graph internally.
std::vector<SourceBlock> buildBlocks(const elf::Object& object);

/// Fills SourceBlock::static_cycles (paper section 3.3) via
/// core::staticBlockCycles; also used on the single-instruction units of
/// the instruction-oriented mode, which is why it stays block-list based.
void computeStaticCycles(const arch::ArchDescription& desc,
                         std::vector<SourceBlock>& blocks);

/// Splits each block into cache analysis blocks (paper section 3.4.2).
void computeCacheAnalysisBlocks(const arch::ICacheModel& icache,
                                std::vector<SourceBlock>& blocks);

/// Lowers every block to target ops, inserting annotation and dynamic
/// correction code according to the detail level.
struct LowerContext {
  const arch::ArchDescription* desc = nullptr;
  const AddressAnalysis* addresses = nullptr;
  TranslateOptions options;
  bool has_indirect_jumps = false;
  uint32_t source_text_base = 0;
  uint8_t dispatch_reg = 0;  ///< resolved register for the dispatch constant
};
void lowerBlocks(const LowerContext& ctx, std::vector<SourceBlock>& blocks);

/// Generates the cache-correction routine (paper Fig. 4) as ops.
std::vector<XOp> buildCacheRoutine(const arch::ICacheModel& icache,
                                   bool inline_body);

/// Schedules a block's ops into execute packets (greedy in-order packing
/// honouring unit constraints, result latencies and volatile order).
/// `fixups` receives (packet index, op index) -> XOp metadata for the
/// emitter.
struct ScheduledBlock {
  std::vector<vliw::Packet> packets;
  /// For each packet/op that needs patching: location + metadata.
  struct PendingFixup {
    size_t packet = 0;
    size_t op = 0;
    XOp::Fixup fixup = XOp::Fixup::kNone;
    uint32_t data = 0;
  };
  std::vector<PendingFixup> fixups;
  /// Packet index right after each call's delay slots (call id -> index).
  std::vector<size_t> call_returns;
};
ScheduledBlock scheduleBlock(const std::vector<XOp>& ops);

}  // namespace cabt::xlat
