// The synchronization device (paper section 3.1).
//
// In the paper this device lives in the FPGAs next to the VLIW processor:
// a write with the predicted cycle count n of a basic block starts the
// generation of n SoC clock cycles for the attached hardware, which then
// runs in parallel with the execution of the translated block; a read
// from the status register waits until the generation has finished.
// A second write port adds dynamically computed correction cycles
// (branch prediction, instruction cache — paper section 3.4).
//
// Here the device drives the SocBus clock: every emitted cycle clocks all
// attached peripherals.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "soc/bus.h"

namespace cabt::soc {

class SyncDevice {
 public:
  /// Register offsets within the device window (VLIW address space).
  static constexpr uint32_t kStartOffset = 0x0;    ///< write: start n cycles
  static constexpr uint32_t kStatusOffset = 0x4;   ///< read: 0 when idle
  static constexpr uint32_t kCorrectOffset = 0x8;  ///< write: n extra cycles
  static constexpr uint32_t kTotalOffset = 0xc;    ///< read: cycles emitted
  static constexpr uint32_t kWindowSize = 0x10;

  /// `vliw_cycles_per_soc_cycle` is the generation rate: how many VLIW
  /// clock cycles one generated SoC cycle takes (>= 1).
  SyncDevice(SocBus* bus, unsigned vliw_cycles_per_soc_cycle)
      : bus_(bus), rate_(vliw_cycles_per_soc_cycle) {
    CABT_CHECK(bus_ != nullptr, "sync device needs a bus");
    CABT_CHECK(rate_ >= 1, "generation rate must be >= 1");
  }

  /// Starts generation of `n` further cycles (accumulates; the translated
  /// code's wait instruction is what enforces block-level synchrony).
  void start(uint32_t n) {
    remaining_ += n;
    ++num_starts_;
  }

  /// Adds dynamically computed correction cycles.
  void correct(uint32_t n) {
    remaining_ += n;
    correction_total_ += n;
    ++num_corrections_;
  }

  [[nodiscard]] bool busy() const { return remaining_ > 0; }

  /// Advances the device by one VLIW clock cycle. Emits an SoC cycle every
  /// `rate` VLIW cycles while generation is active. Returns true when an
  /// SoC cycle was emitted in this tick.
  bool tickVliwCycle() {
    if (remaining_ == 0) {
      return false;
    }
    if (++subcycle_ < rate_) {
      return false;
    }
    subcycle_ = 0;
    --remaining_;
    ++total_generated_;
    bus_->clockCycle();
    return true;
  }

  [[nodiscard]] uint64_t totalGenerated() const { return total_generated_; }
  [[nodiscard]] uint64_t remaining() const { return remaining_; }
  [[nodiscard]] uint64_t numStarts() const { return num_starts_; }
  [[nodiscard]] uint64_t numCorrections() const { return num_corrections_; }
  [[nodiscard]] uint64_t correctionTotal() const { return correction_total_; }

 private:
  SocBus* bus_;
  unsigned rate_;
  unsigned subcycle_ = 0;
  uint64_t remaining_ = 0;
  uint64_t total_generated_ = 0;
  uint64_t num_starts_ = 0;
  uint64_t num_corrections_ = 0;
  uint64_t correction_total_ = 0;
};

}  // namespace cabt::soc
