// The interrupt path: a per-core interrupt controller and a programmable
// interval timer, both SoC-bus devices.
//
// Delivery model (see DESIGN.md, "IRQ-at-block-boundary rule"): the ISS
// samples its interrupt controller at basic-block boundaries only — the
// same points where the paper's translated code synchronises cycle
// generation — so the block-dispatch engine and per-instruction stepping
// take every interrupt at the identical cycle count. The controller owns
// all interrupt state (pending lines, master enable, vector, in-service
// flag); the core contributes only the IRQ link register (A14) and the
// fixed entry latency (iss::IssConfig::irq_entry_cycles).
//
// Both devices advance lazily (Device::advanceTo): the timer computes its
// expiries in the jumped-over interval arithmetically, so interrupt
// behaviour is a pure function of transaction/sample timestamps — which
// is what makes single-initiator simulation exactly quantum-invariant
// under the event kernel (tests/sim_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "soc/device.h"

namespace cabt::soc {

/// Core-facing side of an interrupt controller. The ISS polls this at
/// basic-block boundaries.
class IrqSource {
 public:
  virtual ~IrqSource() = default;

  /// Returns the handler address when an interrupt is to be taken at SoC
  /// cycle `soc_cycle` (devices are already advanced to that time), and
  /// commits to the delivery: further interrupts are masked until
  /// software signals end-of-interrupt. Returns nullopt otherwise.
  virtual std::optional<uint32_t> takeIrq(uint64_t soc_cycle) = 0;

  /// Certificate for the parallel kernel's private slices (DESIGN.md
  /// section 7): true when takeIrq() is guaranteed to return nullopt for
  /// *any* sample in the near future, whatever lines get raised
  /// meanwhile, and only register writes issued by the sampling core
  /// itself (which bail a private slice before they happen) can change
  /// that. Sources that cannot give this guarantee return false — their
  /// core then simply runs its whole slice on the sequential drain.
  [[nodiscard]] virtual bool quiescent() const { return false; }
};

/// A simple per-core interrupt controller with 32 level/latch lines.
///
/// Register window (word access):
///   0x00 RAW        (r)  latched raised lines
///   0x04 ENABLE     (rw) line enable mask
///   0x08 PENDING    (r)  RAW & ENABLE
///   0x0c ACK        (w)  write-1-to-clear RAW bits
///   0x10 VECTOR     (rw) handler entry address
///   0x14 CTRL       (rw) bit0 = master enable
///   0x18 SOFT       (w)  raise line `value` (software interrupt)
///   0x1c STATUS/EOI (r)  bit0 = in service; (w) clear in-service
class InterruptController : public Device, public IrqSource {
 public:
  static constexpr uint32_t kRawOffset = 0x00;
  static constexpr uint32_t kEnableOffset = 0x04;
  static constexpr uint32_t kPendingOffset = 0x08;
  static constexpr uint32_t kAckOffset = 0x0c;
  static constexpr uint32_t kVectorOffset = 0x10;
  static constexpr uint32_t kCtrlOffset = 0x14;
  static constexpr uint32_t kSoftOffset = 0x18;
  static constexpr uint32_t kEoiOffset = 0x1c;
  static constexpr uint32_t kWindowSize = 0x20;

  explicit InterruptController(std::string name = "intc")
      : Device(std::move(name)) {}

  /// Raises (latches) line `line`. Called by devices (timer expiry,
  /// mailbox doorbell) or via the SOFT register.
  void raise(unsigned line) {
    CABT_CHECK(line < 32, "interrupt line out of range: " << line);
    raw_ |= 1u << line;
  }

  [[nodiscard]] uint32_t pending() const { return raw_ & enable_; }
  [[nodiscard]] bool inService() const { return in_service_; }
  [[nodiscard]] uint32_t vector() const { return vector_; }
  [[nodiscard]] uint64_t irqsTaken() const { return irqs_taken_; }
  /// SoC-cycle timestamp of every delivery, in order (capped at
  /// kMaxDeliveryLog entries — enough for every scenario/test; golden-
  /// trace and differential tests compare these lists verbatim).
  [[nodiscard]] const std::vector<uint64_t>& deliveryTimes() const {
    return delivery_times_;
  }

  // -- IrqSource ------------------------------------------------------
  std::optional<uint32_t> takeIrq(uint64_t soc_cycle) override {
    if (!master_enable_ || in_service_ || pending() == 0) {
      return std::nullopt;
    }
    in_service_ = true;
    ++irqs_taken_;
    if (delivery_times_.size() < kMaxDeliveryLog) {
      delivery_times_.push_back(soc_cycle);
    }
    return vector_;
  }

  /// While masked or in service, no raise can make takeIrq() deliver,
  /// and only the owning core's own register writes (CTRL/EOI — bus
  /// writes, which bail a private slice) can lift that state.
  [[nodiscard]] bool quiescent() const override {
    return !master_enable_ || in_service_;
  }

  // -- Device ---------------------------------------------------------
  uint32_t read(uint32_t offset, unsigned size, uint64_t) override {
    CABT_CHECK(size == 4, "intc supports word access only");
    switch (offset) {
      case kRawOffset:
        return raw_;
      case kEnableOffset:
        return enable_;
      case kPendingOffset:
        return pending();
      case kVectorOffset:
        return vector_;
      case kCtrlOffset:
        return master_enable_ ? 1u : 0u;
      case kEoiOffset:
        return in_service_ ? 1u : 0u;
      default:
        CABT_FAIL("intc read at bad offset " << offset);
    }
  }

  void write(uint32_t offset, uint32_t value, unsigned size,
             uint64_t) override {
    CABT_CHECK(size == 4, "intc supports word access only");
    switch (offset) {
      case kEnableOffset:
        enable_ = value;
        break;
      case kAckOffset:
        raw_ &= ~value;
        break;
      case kVectorOffset:
        vector_ = value;
        break;
      case kCtrlOffset:
        master_enable_ = (value & 1u) != 0;
        break;
      case kSoftOffset:
        raise(value);
        break;
      case kEoiOffset:
        in_service_ = false;
        break;
      default:
        CABT_FAIL("intc write at bad offset " << offset);
    }
  }

  void advanceTo(uint64_t, uint64_t) override {}  // no per-cycle state

  /// All interrupt state is architectural: a restored controller must
  /// deliver (or mask) exactly as the live one would, and the delivery
  /// timestamps are a compared observable of the differential fleets.
  void saveState(serial::Writer& w) const override {
    w.u32(raw_);
    w.u32(enable_);
    w.u32(vector_);
    w.b(master_enable_);
    w.b(in_service_);
    w.u64(irqs_taken_);
    w.u32(static_cast<uint32_t>(delivery_times_.size()));
    for (const uint64_t t : delivery_times_) {
      w.u64(t);
    }
  }
  void restoreState(serial::Reader& r) override {
    raw_ = r.u32();
    enable_ = r.u32();
    vector_ = r.u32();
    master_enable_ = r.b();
    in_service_ = r.b();
    irqs_taken_ = r.u64();
    delivery_times_.resize(r.u32());
    for (uint64_t& t : delivery_times_) {
      t = r.u64();
    }
  }

 private:
  static constexpr size_t kMaxDeliveryLog = 65536;

  uint32_t raw_ = 0;
  uint32_t enable_ = 0;
  uint32_t vector_ = 0;
  bool master_enable_ = false;
  bool in_service_ = false;
  uint64_t irqs_taken_ = 0;
  std::vector<uint64_t> delivery_times_;
};

/// Programmable interval timer: a down-counter over SoC cycles that
/// raises an interrupt line on expiry, one-shot or periodic.
///
/// Register window (word access):
///   0x0 LOAD     (rw) period in SoC cycles (>= 1 to run)
///   0x4 CTRL     (rw) bit0 = enable, bit1 = periodic; writing bit0
///                     (re)arms the counter LOAD cycles from now
///   0x8 COUNT    (r)  cycles until the next expiry (0 when idle)
///   0xc EXPIRIES (r)  total expiries since reset
class ProgrammableTimer : public Device {
 public:
  static constexpr uint32_t kLoadOffset = 0x0;
  static constexpr uint32_t kCtrlOffset = 0x4;
  static constexpr uint32_t kCountOffset = 0x8;
  static constexpr uint32_t kExpiriesOffset = 0xc;
  static constexpr uint32_t kWindowSize = 0x10;

  explicit ProgrammableTimer(std::string name = "ptimer")
      : Device(std::move(name)) {}

  /// Routes expiries to `intc` line `line`.
  void setIrqTarget(InterruptController* intc, unsigned line) {
    intc_ = intc;
    line_ = line;
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] uint64_t expiries() const { return expiries_; }

  // -- Device ---------------------------------------------------------
  uint32_t read(uint32_t offset, unsigned size, uint64_t soc_cycle) override {
    CABT_CHECK(size == 4, "ptimer supports word access only");
    switch (offset) {
      case kLoadOffset:
        return load_;
      case kCtrlOffset:
        return (enabled_ ? 1u : 0u) | (periodic_ ? 2u : 0u);
      case kCountOffset:
        return enabled_ && next_expiry_ > soc_cycle
                   ? static_cast<uint32_t>(next_expiry_ - soc_cycle)
                   : 0;
      case kExpiriesOffset:
        return static_cast<uint32_t>(expiries_);
      default:
        CABT_FAIL("ptimer read at bad offset " << offset);
    }
  }

  void write(uint32_t offset, uint32_t value, unsigned size,
             uint64_t soc_cycle) override {
    CABT_CHECK(size == 4, "ptimer supports word access only");
    switch (offset) {
      case kLoadOffset:
        load_ = value;
        break;
      case kCtrlOffset:
        periodic_ = (value & 2u) != 0;
        enabled_ = (value & 1u) != 0;
        if (enabled_) {
          CABT_CHECK(load_ >= 1, "ptimer armed with LOAD = 0");
          next_expiry_ = soc_cycle + load_;
        }
        break;
      default:
        CABT_FAIL("ptimer write at bad offset " << offset);
    }
  }

  void clockCycle(uint64_t soc_cycle) override {
    advanceTo(soc_cycle - 1, soc_cycle);
  }

  /// Expiries in the jumped-over interval are computed arithmetically, so
  /// timer behaviour depends only on timestamps, never on slice shape.
  void advanceTo(uint64_t, uint64_t to) override {
    while (enabled_ && next_expiry_ <= to) {
      ++expiries_;
      if (intc_ != nullptr) {
        intc_->raise(line_);
      }
      if (periodic_ && load_ >= 1) {
        next_expiry_ += load_;
      } else {
        // One-shot, or LOAD was cleared while armed: a reload of 0
        // stops the timer instead of spinning on a zero period.
        enabled_ = false;
      }
    }
  }

  /// IRQ routing is construction-time wiring; the counter phase
  /// (next_expiry_) is what makes restored timer behaviour a pure
  /// function of timestamps again.
  void saveState(serial::Writer& w) const override {
    w.u32(load_);
    w.b(enabled_);
    w.b(periodic_);
    w.u64(next_expiry_);
    w.u64(expiries_);
  }
  void restoreState(serial::Reader& r) override {
    load_ = r.u32();
    enabled_ = r.b();
    periodic_ = r.b();
    next_expiry_ = r.u64();
    expiries_ = r.u64();
  }

 private:
  InterruptController* intc_ = nullptr;
  unsigned line_ = 0;
  uint32_t load_ = 0;
  bool enabled_ = false;
  bool periodic_ = false;
  uint64_t next_expiry_ = 0;
  uint64_t expiries_ = 0;
};

}  // namespace cabt::soc
