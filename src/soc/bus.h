// SoC bus model: address-windowed devices, a cycle counter driven by the
// clock source (processor or synchronization device), and a transaction
// log that tests use to check cycle-accurate I/O behaviour.
//
// Threading contract (the parallel-round kernel, DESIGN.md section 7):
// the bus and its devices are *not* internally synchronized. All
// mutating calls — read/write/clockCycle/advanceTo — happen on the
// sequential drain of a round (one thread at a time, ordered by the
// kernel's deterministic dispatch order). Worker-thread prefixes may
// only call covers(), which touches nothing but the window table laid
// down at construction time; iss::Iss enforces the rest by bailing out
// of a private slice before any bus access.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/serial.h"
#include "common/strutil.h"
#include "obs/metrics.h"
#include "soc/device.h"

namespace cabt::soc {

/// One logged bus transaction.
struct Transaction {
  uint64_t soc_cycle = 0;
  uint32_t addr = 0;
  uint32_t value = 0;
  uint8_t size = 4;
  bool is_write = false;
};

/// A bus-error injection window (fault injection, DESIGN.md section 12):
/// accesses to [lo, hi] while `from <= soc_cycle < until` (and while fewer
/// than `max_fires` accesses have matched, 0 = unlimited) error out instead
/// of reaching a device. A faulted read returns `poison`, a faulted write is
/// dropped; both are logged like normal transactions (the error response is
/// an architectural observable) and invoke `on_error` — which is how the
/// fi::Campaign raises the precise bus-error interrupt line. The window may
/// cover unmapped space: a matching access then errors instead of tripping
/// the unmapped-address check, modelling a bus error on a bad address.
/// Windows themselves are harness state: never serialized, never digested.
struct BusFaultWindow {
  uint32_t lo = 0;
  uint32_t hi = 0;  ///< inclusive
  uint64_t from = 0;
  uint64_t until = ~static_cast<uint64_t>(0);  ///< exclusive
  uint32_t max_fires = 0;                      ///< 0 = unlimited
  uint32_t poison = 0xdeadbeefu;
  std::function<void(const Transaction&)> on_error;
  uint64_t fires = 0;
};

class SocBus {
 public:
  /// Maps `device` at [base, base+size). The bus does not own devices.
  /// Attach everything before the simulation starts: the window table is
  /// read lock-free from covers() (see the threading contract above).
  void attach(Device* device, uint32_t base, uint32_t size) {
    CABT_CHECK(device != nullptr, "null device");
    CABT_CHECK(size >= 1, "empty device window");
    for (const Window& w : windows_) {
      const bool disjoint =
          base + (size - 1) < w.base || w.base + (w.size - 1) < base;
      CABT_CHECK(disjoint, "device window for '" << device->name()
                                                 << "' overlaps '"
                                                 << w.device->name() << "'");
    }
    windows_.push_back({device, base, size});
    lo_ = std::min(lo_, static_cast<uint64_t>(base));
    hi_ = std::max(hi_, static_cast<uint64_t>(base) + size);
  }

  /// True when some device window maps `addr`. On the hot path of every
  /// ISS load/store (and of the parallel prefix's shared-touch test), so
  /// the all-windows bounding box rejects private-memory addresses in
  /// one compare before the window scan.
  [[nodiscard]] bool covers(uint32_t addr) const {
    if (addr < lo_ || addr >= hi_) {
      return false;
    }
    return findWindow(addr) != nullptr;
  }

  /// One SoC clock edge; advances the bus cycle counter and clocks all
  /// devices.
  void clockCycle() {
    ++soc_cycle_;
    for (const Window& w : windows_) {
      w.device->clockCycle(soc_cycle_);
    }
  }

  /// Advances the bus clock to SoC cycle `to` in one jump (lazy time
  /// advancement for the event kernel: each device jumps via
  /// Device::advanceTo instead of being clocked cycle by cycle). Times in
  /// the past are ignored — with temporally decoupled initiators a
  /// transaction may arrive up to one quantum behind the bus clock.
  void advanceTo(uint64_t to) {
    if (to <= soc_cycle_) {
      return;
    }
    for (const Window& w : windows_) {
      w.device->advanceTo(soc_cycle_, to);
    }
    soc_cycle_ = to;
  }

  [[nodiscard]] uint64_t socCycle() const { return soc_cycle_; }

  uint32_t read(uint32_t addr, unsigned size) {
    if (!bus_faults_.empty()) {
      if (BusFaultWindow* f = matchFault(addr)) {
        ++f->fires;
        ++reads_;
        const Transaction t{soc_cycle_, addr, f->poison,
                            static_cast<uint8_t>(size), false};
        logTransaction(t);
        if (f->on_error) {
          f->on_error(t);
        }
        return f->poison;
      }
    }
    const Window* w = findWindow(addr);
    CABT_CHECK(w != nullptr, "bus read from unmapped address " << hex32(addr));
    const uint32_t value = w->device->read(addr - w->base, size, soc_cycle_);
    ++reads_;
    logTransaction({soc_cycle_, addr, value, static_cast<uint8_t>(size),
                    false});
    return value;
  }

  void write(uint32_t addr, uint32_t value, unsigned size) {
    if (!bus_faults_.empty()) {
      if (BusFaultWindow* f = matchFault(addr)) {
        ++f->fires;
        ++writes_;
        const Transaction t{soc_cycle_, addr, value,
                            static_cast<uint8_t>(size), true};
        logTransaction(t);  // the dropped write is still an observable
        if (f->on_error) {
          f->on_error(t);
        }
        return;
      }
    }
    const Window* w = findWindow(addr);
    CABT_CHECK(w != nullptr, "bus write to unmapped address " << hex32(addr));
    w->device->write(addr - w->base, value, size, soc_cycle_);
    ++writes_;
    logTransaction({soc_cycle_, addr, value, static_cast<uint8_t>(size),
                    true});
  }

  // -- bus-error injection (src/fi, DESIGN.md section 12) ----------------
  //
  // Arm/clear only between runs or from the sequential path; matchFault
  // runs inside read/write, which the threading contract above already
  // restricts to the sequential drain.

  void armBusFault(BusFaultWindow w) {
    CABT_CHECK(w.lo <= w.hi, "bus-fault window [" << hex32(w.lo) << ", "
                                                  << hex32(w.hi)
                                                  << "] is inverted");
    bus_faults_.push_back(std::move(w));
  }
  void clearBusFaults() { bus_faults_.clear(); }
  [[nodiscard]] const std::vector<BusFaultWindow>& busFaults() const {
    return bus_faults_;
  }
  /// Total faulted accesses across all windows.
  [[nodiscard]] uint64_t busFaultFires() const {
    uint64_t n = 0;
    for (const BusFaultWindow& f : bus_faults_) {
      n += f.fires;
    }
    return n;
  }

  /// Publishes the transaction tallies under `prefix` (e.g. "board.bus.").
  /// Reads/writes are lifetime counts, deliberately independent of the
  /// log cap (the log is a tail, the counters are totals). Sequential
  /// path only, like every other mutating or aggregate accessor here.
  void publishMetrics(obs::MetricsRegistry& reg,
                      const std::string& prefix) const {
    reg.setCounter(prefix + "reads", reads_);
    reg.setCounter(prefix + "writes", writes_);
    reg.setCounter(prefix + "dropped_transactions", dropped_transactions_);
    reg.setCounter(prefix + "log_entries", log_.size());
    reg.setGauge(prefix + "soc_cycle", static_cast<double>(soc_cycle_));
  }

  [[nodiscard]] const std::vector<Transaction>& log() const { return log_; }
  void clearLog() {
    log_.clear();
    dropped_transactions_ = 0;
  }

  /// Caps the transaction log at roughly `max_entries`: the most recent
  /// `max_entries` transactions are always retained and the oldest are
  /// discarded (amortised O(1); memory stays below 2x the cap). 0 (the
  /// default, used by the tests) keeps the full unbounded log, so long
  /// benchmark runs should set a cap.
  void setLogLimit(size_t max_entries) {
    log_limit_ = max_entries;
    trimLog();
  }
  [[nodiscard]] size_t logLimit() const { return log_limit_; }
  /// Transactions discarded by the cap since the last clearLog().
  [[nodiscard]] uint64_t droppedTransactions() const {
    return dropped_transactions_;
  }

  // -- snapshot support (src/snap, DESIGN.md section 9) -----------------
  //
  // The bus section holds the clock, the transaction-log tail and every
  // attached device's state in window-attachment order. The window table
  // itself is construction-time wiring: restore requires a bus built
  // with the identical device set, verified per device by name.

  void saveState(serial::Writer& w) const {
    w.tag("bus");
    w.u64(soc_cycle_);
    w.u64(dropped_transactions_);
    w.u32(static_cast<uint32_t>(log_.size()));
    for (const Transaction& t : log_) {
      w.u64(t.soc_cycle);
      w.u32(t.addr);
      w.u32(t.value);
      w.u8(t.size);
      w.b(t.is_write);
    }
    w.u32(static_cast<uint32_t>(windows_.size()));
    for (const Window& win : windows_) {
      w.str(win.device->name());
      serial::Writer dev;
      win.device->saveState(dev);
      w.u32(static_cast<uint32_t>(dev.size()));
      w.bytes(dev.data().data(), dev.size());
    }
  }

  void restoreState(serial::Reader& r) {
    r.tag("bus");
    soc_cycle_ = r.u64();
    dropped_transactions_ = r.u64();
    log_.resize(r.u32());
    for (Transaction& t : log_) {
      t.soc_cycle = r.u64();
      t.addr = r.u32();
      t.value = r.u32();
      t.size = r.u8();
      t.is_write = r.b();
    }
    const uint32_t num_devices = r.u32();
    CABT_CHECK(num_devices == windows_.size(),
               "snapshot has " << num_devices << " devices, this bus has "
                               << windows_.size());
    for (const Window& win : windows_) {
      const std::string name = r.str();
      CABT_CHECK(name == win.device->name(),
                 "snapshot device '" << name << "' does not match attached '"
                                     << win.device->name() << "'");
      const uint32_t len = r.u32();
      const size_t before = r.pos();
      win.device->restoreState(r);
      CABT_CHECK(r.pos() - before == len,
                 "device '" << name << "' restored " << (r.pos() - before)
                            << " bytes of a " << len << "-byte section");
    }
  }

 private:
  struct Window {
    Device* device;
    uint32_t base;
    uint32_t size;
  };

  [[nodiscard]] const Window* findWindow(uint32_t addr) const {
    for (const Window& w : windows_) {
      if (addr >= w.base && addr - w.base < w.size) {
        return &w;
      }
    }
    return nullptr;
  }

  [[nodiscard]] BusFaultWindow* matchFault(uint32_t addr) {
    for (BusFaultWindow& f : bus_faults_) {
      if (addr >= f.lo && addr <= f.hi && soc_cycle_ >= f.from &&
          soc_cycle_ < f.until && (f.max_fires == 0 || f.fires < f.max_fires)) {
        return &f;
      }
    }
    return nullptr;
  }

  void logTransaction(Transaction t) {
    log_.push_back(t);
    if (log_limit_ != 0 && log_.size() >= 2 * log_limit_) {
      trimLog();
    }
  }

  void trimLog() {
    if (log_limit_ == 0 || log_.size() <= log_limit_) {
      return;
    }
    const size_t drop = log_.size() - log_limit_;
    log_.erase(log_.begin(),
               log_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_transactions_ += drop;
  }

  std::vector<Window> windows_;
  /// Bounding box over all windows ([lo_, hi_) in a 64-bit range so a
  /// window ending at 2^32 needs no special case); empty bus = empty box.
  uint64_t lo_ = ~static_cast<uint64_t>(0);
  uint64_t hi_ = 0;
  std::vector<Transaction> log_;
  size_t log_limit_ = 0;  ///< 0 = unbounded (full logging, the test default)
  uint64_t dropped_transactions_ = 0;
  uint64_t soc_cycle_ = 0;
  /// Lifetime transaction tallies for publishMetrics. Observability
  /// only: never serialized (snapshot round-trips must stay byte-stable
  /// with pre-existing images) and never digested.
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  /// Fault-injection harness state, likewise never serialized/digested.
  /// An armed-but-never-matching window leaves every architectural byte
  /// (log, device state, counters) untouched — the non-perturbation
  /// invariant tests/fi_test.cpp pins.
  std::vector<BusFaultWindow> bus_faults_;
};

}  // namespace cabt::soc
