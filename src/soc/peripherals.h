// Standard peripherals attached to the SoC bus in tests, examples and
// benchmarks: a free-running timer, a character output device and a
// scratch-register block. They are deliberately simple — their purpose is
// to make cycle-accurate I/O behaviour observable.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.h"
#include "soc/device.h"

namespace cabt::soc {

/// Free-running SoC-cycle counter. Offset 0x0: low 32 bits; 0x4: high 32
/// bits; 0x8 (write): reset.
class TimerDevice : public Device {
 public:
  TimerDevice() : Device("timer") {}

  uint32_t read(uint32_t offset, unsigned size, uint64_t) override {
    CABT_CHECK(size == 4, "timer supports word access only");
    switch (offset) {
      case 0x0:
        return static_cast<uint32_t>(count_);
      case 0x4:
        return static_cast<uint32_t>(count_ >> 32);
      default:
        CABT_FAIL("timer read at bad offset " << offset);
    }
  }

  void write(uint32_t offset, uint32_t, unsigned size, uint64_t) override {
    CABT_CHECK(size == 4 && offset == 0x8, "timer write only at offset 8");
    count_ = 0;
  }

  void clockCycle(uint64_t) override { ++count_; }

  /// Free-running count is a pure function of elapsed time.
  void advanceTo(uint64_t from, uint64_t to) override { count_ += to - from; }

  void saveState(serial::Writer& w) const override { w.u64(count_); }
  void restoreState(serial::Reader& r) override { count_ = r.u64(); }

  [[nodiscard]] uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Character output. Offset 0x0 (write): emit one character; offset 0x4
/// (read): number of characters emitted so far.
class CharDevice : public Device {
 public:
  CharDevice() : Device("chardev") {}

  uint32_t read(uint32_t offset, unsigned size, uint64_t) override {
    CABT_CHECK(size == 4 && offset == 0x4, "chardev read only at offset 4");
    return static_cast<uint32_t>(output_.size());
  }

  void write(uint32_t offset, uint32_t value, unsigned, uint64_t soc_cycle)
      override {
    CABT_CHECK(offset == 0x0, "chardev write only at offset 0");
    output_.push_back(static_cast<char>(value & 0xff));
    stamps_.push_back(soc_cycle);
  }

  void advanceTo(uint64_t, uint64_t) override {}  // no per-cycle state

  void saveState(serial::Writer& w) const override {
    w.str(output_);
    w.u32(static_cast<uint32_t>(stamps_.size()));
    for (const uint64_t s : stamps_) {
      w.u64(s);
    }
  }
  void restoreState(serial::Reader& r) override {
    output_ = r.str();
    stamps_.resize(r.u32());
    for (uint64_t& s : stamps_) {
      s = r.u64();
    }
  }

  [[nodiscard]] const std::string& output() const { return output_; }
  /// SoC cycle at which each character was written.
  [[nodiscard]] const std::vector<uint64_t>& stamps() const { return stamps_; }

 private:
  std::string output_;
  std::vector<uint64_t> stamps_;
};

/// Sixteen general-purpose 32-bit scratch registers (offsets 0x0..0x3c).
class ScratchDevice : public Device {
 public:
  ScratchDevice() : Device("scratch") {}

  uint32_t read(uint32_t offset, unsigned size, uint64_t) override {
    CABT_CHECK(size == 4 && offset % 4 == 0 && offset / 4 < regs_.size(),
               "bad scratch read at offset " << offset);
    return regs_[offset / 4];
  }

  void write(uint32_t offset, uint32_t value, unsigned size,
             uint64_t) override {
    CABT_CHECK(size == 4 && offset % 4 == 0 && offset / 4 < regs_.size(),
               "bad scratch write at offset " << offset);
    regs_[offset / 4] = value;
  }

  void advanceTo(uint64_t, uint64_t) override {}  // no per-cycle state

  void saveState(serial::Writer& w) const override {
    for (const uint32_t v : regs_) {
      w.u32(v);
    }
  }
  void restoreState(serial::Reader& r) override {
    for (uint32_t& v : regs_) {
      v = r.u32();
    }
  }

  [[nodiscard]] uint32_t reg(size_t i) const { return regs_.at(i); }

 private:
  std::array<uint32_t, 16> regs_{};
};

/// Shared inter-core mailbox: a four-entry word FIFO plus a doorbell that
/// rings an interrupt line on a chosen core's interrupt controller.
/// Offset 0x0 (write): push a word (dropped when full — software must
/// check STATUS first); offset 0x0 (read): pop the oldest word (0 when
/// empty); offset 0x4 (read): STATUS, bit0 = has data, bit1 = full;
/// offset 0x8 (write): ring doorbell `value` (see setDoorbell).
class MailboxDevice : public Device {
 public:
  static constexpr size_t kDepth = 4;

  MailboxDevice() : Device("mailbox") {}

  uint32_t read(uint32_t offset, unsigned size, uint64_t) override {
    CABT_CHECK(size == 4, "mailbox supports word access only");
    switch (offset) {
      case 0x0: {
        if (count_ == 0) {
          return 0;
        }
        const uint32_t v = fifo_[head_];
        head_ = (head_ + 1) % kDepth;
        --count_;
        return v;
      }
      case 0x4:
        return (count_ > 0 ? 1u : 0u) | (count_ == kDepth ? 2u : 0u);
      default:
        CABT_FAIL("mailbox read at bad offset " << offset);
    }
  }

  void write(uint32_t offset, uint32_t value, unsigned size,
             uint64_t) override {
    CABT_CHECK(size == 4, "mailbox supports word access only");
    switch (offset) {
      case 0x0:
        if (count_ < kDepth) {
          fifo_[(head_ + count_) % kDepth] = value;
          ++count_;
          ++pushes_;
        } else {
          ++dropped_;
        }
        break;
      case 0x8:
        CABT_CHECK(value < doorbells_.size() && doorbells_[value],
                   "mailbox doorbell " << value << " is not connected");
        doorbells_[value]();
        break;
      default:
        CABT_FAIL("mailbox write at bad offset " << offset);
    }
  }

  void advanceTo(uint64_t, uint64_t) override {}  // no per-cycle state

  /// Doorbell wiring is construction-time; only the FIFO and its
  /// counters are run-time state.
  void saveState(serial::Writer& w) const override {
    for (const uint32_t v : fifo_) {
      w.u32(v);
    }
    w.u32(static_cast<uint32_t>(head_));
    w.u32(static_cast<uint32_t>(count_));
    w.u64(pushes_);
    w.u64(dropped_);
  }
  void restoreState(serial::Reader& r) override {
    for (uint32_t& v : fifo_) {
      v = r.u32();
    }
    head_ = r.u32();
    count_ = r.u32();
    pushes_ = r.u64();
    dropped_ = r.u64();
  }

  /// Connects doorbell index `bell` (the value software writes to offset
  /// 0x8) to `ring` — typically InterruptController::raise of a core.
  void setDoorbell(size_t bell, std::function<void()> ring) {
    if (doorbells_.size() <= bell) {
      doorbells_.resize(bell + 1);
    }
    doorbells_[bell] = std::move(ring);
  }

  [[nodiscard]] size_t depth() const { return count_; }
  [[nodiscard]] uint64_t pushes() const { return pushes_; }
  [[nodiscard]] uint64_t dropped() const { return dropped_; }

 private:
  std::array<uint32_t, kDepth> fifo_{};
  size_t head_ = 0;
  size_t count_ = 0;
  uint64_t pushes_ = 0;
  uint64_t dropped_ = 0;
  std::vector<std::function<void()>> doorbells_;
};

/// Byte offsets of the standard peripherals within the I/O region; shared
/// by the reference board and the emulation platform so that translated
/// I/O accesses land on the same devices.
struct StandardIoMap {
  static constexpr uint32_t kTimerOffset = 0x100;
  static constexpr uint32_t kTimerSize = 0x10;
  static constexpr uint32_t kCharOffset = 0x200;
  static constexpr uint32_t kCharSize = 0x10;
  static constexpr uint32_t kScratchOffset = 0x300;
  static constexpr uint32_t kScratchSize = 0x40;
  /// Per-core interrupt controllers: core i at kIntcOffset + i*kIntcStride.
  static constexpr uint32_t kIntcOffset = 0x400;
  static constexpr uint32_t kIntcStride = 0x20;
  static constexpr uint32_t kPTimerOffset = 0x500;
  static constexpr uint32_t kPTimerSize = 0x10;
  static constexpr uint32_t kMailboxOffset = 0x600;
  static constexpr uint32_t kMailboxSize = 0x10;
  /// Watchdog (fi::WatchdogDevice) — attached only on boards that opt in
  /// via platform::BoardConfig::watchdog.
  static constexpr uint32_t kWatchdogOffset = 0x700;
  static constexpr uint32_t kWatchdogSize = 0x10;
};

}  // namespace cabt::soc
