// SoC-bus device interface.
//
// Devices are clocked exclusively by SoC clock cycles. On the reference
// board those are processor cycles; on the emulation platform they are the
// cycles produced by the synchronization device — which is exactly the
// paper's point: the attached hardware cannot tell the difference as long
// as the generated cycle stream is accurate.
#pragma once

#include <cstdint>
#include <string>

#include "common/serial.h"

namespace cabt::soc {

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Read `size` bytes (1, 2 or 4) at byte offset `offset` within the
  /// device window. `soc_cycle` is the bus timestamp of the transaction.
  virtual uint32_t read(uint32_t offset, unsigned size, uint64_t soc_cycle) = 0;

  /// Write access, same conventions as read().
  virtual void write(uint32_t offset, uint32_t value, unsigned size,
                     uint64_t soc_cycle) = 0;

  /// One SoC clock edge.
  virtual void clockCycle(uint64_t soc_cycle) { (void)soc_cycle; }

  /// Advances the device from SoC cycle `from` (exclusive) to `to`
  /// (inclusive) in one jump. The default replays clockCycle() per cycle,
  /// which is always correct; devices whose state is a pure function of
  /// time override this with an O(1)/O(events) computation so that the
  /// event kernel's lazy time advancement (sim/kernel.h) costs O(work)
  /// instead of O(cycles). Like every mutating device entry point,
  /// advanceTo runs only on the kernel's sequential drain — never
  /// concurrently — under the parallel-round kernel (see the threading
  /// contract in soc/bus.h); implementations need no locking.
  virtual void advanceTo(uint64_t from, uint64_t to) {
    for (uint64_t c = from + 1; c <= to; ++c) {
      clockCycle(c);
    }
  }

  // -- snapshot support (src/snap, DESIGN.md section 9) -----------------
  //
  // SocBus::saveState serializes every attached device through these, in
  // window-attachment order, each section framed with the device's name
  // and a byte length (so a device whose format drifts fails loudly on
  // restore). The defaults serialize nothing — correct for genuinely
  // stateless devices; every stock device with observable state
  // (peripherals.h, interrupts.h) overrides both. A device that keeps
  // state but skips the override silently diverges after restore, which
  // is why tests/snap_test.cpp compares full device state.

  virtual void saveState(serial::Writer& w) const { (void)w; }
  virtual void restoreState(serial::Reader& r) { (void)r; }

 private:
  std::string name_;
};

}  // namespace cabt::soc
