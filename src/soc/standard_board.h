// Standard peripheral assembly used by both sides of every comparison:
// the reference board (ISS) and the emulation platform attach the same
// devices at the same offsets inside the source processor's I/O region.
#pragma once

#include <memory>

#include "arch/arch.h"
#include "soc/bus.h"
#include "soc/peripherals.h"

namespace cabt::soc {

struct StandardPeripherals {
  SocBus bus;
  TimerDevice timer;
  CharDevice chardev;
  ScratchDevice scratch;

  /// Attaches the devices at the standard offsets inside `io_base`.
  explicit StandardPeripherals(uint32_t io_base) {
    bus.attach(&timer, io_base + StandardIoMap::kTimerOffset,
               StandardIoMap::kTimerSize);
    bus.attach(&chardev, io_base + StandardIoMap::kCharOffset,
               StandardIoMap::kCharSize);
    bus.attach(&scratch, io_base + StandardIoMap::kScratchOffset,
               StandardIoMap::kScratchSize);
  }

  static uint32_t ioBase(const arch::ArchDescription& desc) {
    const MemRegion* io = desc.memory_map.findNamed("io");
    CABT_CHECK(io != nullptr, "architecture has no 'io' region");
    return io->base;
  }
};

}  // namespace cabt::soc
