// Standard peripheral assembly used by both sides of every comparison:
// the reference board (ISS) and the emulation platform attach the same
// devices at the same offsets inside the source processor's I/O region.
//
// Every device is attached through a fi::FaultProxy (device stall/timeout
// injection, DESIGN.md section 12). The proxies forward everything —
// name, registers, clocking, snapshot state — verbatim, so an unfaulted
// board is byte-identical to the pre-proxy assembly; they only matter when
// a campaign arms a stall window on one of them.
#pragma once

#include <memory>

#include "arch/arch.h"
#include "fi/fault_proxy.h"
#include "soc/bus.h"
#include "soc/peripherals.h"

namespace cabt::soc {

struct StandardPeripherals {
  SocBus bus;
  TimerDevice timer;
  CharDevice chardev;
  ScratchDevice scratch;
  fi::FaultProxy timer_port{&timer};
  fi::FaultProxy chardev_port{&chardev};
  fi::FaultProxy scratch_port{&scratch};

  /// Attaches the devices at the standard offsets inside `io_base`.
  explicit StandardPeripherals(uint32_t io_base) {
    bus.attach(&timer_port, io_base + StandardIoMap::kTimerOffset,
               StandardIoMap::kTimerSize);
    bus.attach(&chardev_port, io_base + StandardIoMap::kCharOffset,
               StandardIoMap::kCharSize);
    bus.attach(&scratch_port, io_base + StandardIoMap::kScratchOffset,
               StandardIoMap::kScratchSize);
  }

  static uint32_t ioBase(const arch::ArchDescription& desc) {
    const MemRegion* io = desc.memory_map.findNamed("io");
    CABT_CHECK(io != nullptr, "architecture has no 'io' region");
    return io->base;
  }
};

}  // namespace cabt::soc
