// Versioned binary checkpoint/restore of the whole reference platform,
// plus the rolling state digest behind deterministic replay (DESIGN.md
// section 9).
//
// A snapshot captures everything the next simulated cycle can observe:
// every core's architectural and micro-architectural ISS state (register
// files, pc, lazy-commit cycle accounting, pipeline scoreboard, icache
// tags/LRU, IssStats, breakpoints), every SparseMemory image, the SoC
// bus clock with its transaction-log tail and all device state
// (interrupt controllers, timers, mailbox, scratch, chardev), and the
// event kernel's queue with each process's pending activation — so
//
//     save(); restore(); run(N)   ==   run(N)
//
// bit-identically, at every detail level, under every dispatch mode and
// under the sequential and parallel-round kernels alike
// (tests/snap_test.cpp). What a snapshot deliberately does NOT contain
// is host-side derived state: block graphs, predecoded block caches and
// superblock traces are pure functions of the immutable program image —
// a restore revalidates what exists and rebuilds the rest lazily, which
// is what makes a snapshot restorable into a cold process.
//
// Snapshots are taken between kernel runs only (the platform's
// checkpointing loop guarantees that); the format is little-endian,
// carries a magic/version header and an FNV-1a integrity footer, and
// every layer frames its own section (common/serial.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/platform.h"

namespace cabt::snap {

/// Bumped whenever any layer's section layout changes. Old snapshots
/// refuse to load — fast-forward state is cheap to regenerate, silent
/// misinterpretation is not.
inline constexpr uint32_t kFormatVersion = 2;  // v2: IssStats threaded counters

/// Serializes the full platform state.
std::vector<uint8_t> save(const platform::ReferenceBoard& board);

/// Restores a snapshot into `board`, which must be configured
/// identically to the board that produced it (same images, core count,
/// detail level, quantum, device set) — construction-time wiring is
/// verified, not serialized. The board may be warm (mid-run, halted) or
/// cold (freshly constructed); either way the next run() continues
/// bit-identically to the saved platform.
void restore(platform::ReferenceBoard& board,
             const std::vector<uint8_t>& data);

/// 64-bit rolling digest of the platform's architectural state: per-core
/// digestState (registers, pc, timing residue, architectural counters,
/// canonical memory), the bus clock, the transaction-log tail and all
/// device state. Host-side dispatch-path counters and the kernel queue
/// are excluded, so the digest is identical across dispatch modes,
/// sequential/parallel kernels, and warm/cold restores of the same run —
/// it is the value scripts/golden_state.py pins per workload.
uint64_t digest(const platform::ReferenceBoard& board);

/// File convenience wrappers (the CLI and scripts use these).
void saveFile(const platform::ReferenceBoard& board,
              const std::string& path);
void restoreFile(platform::ReferenceBoard& board, const std::string& path);

/// Snapshot-fork primitive: serialize a warmed-up board once, then stamp
/// the bytes into any number of identically configured cold boards.
/// This is the fleet driver's fan-out path (src/fleet): warm one
/// prototype past reset/init, fork it into K boards, diverge each
/// (inject faults, poke inputs, raise IRQs) and run the K scenarios —
/// paying the warm-up once instead of K times. `into` is const and the
/// serialized bytes are immutable, so forking from many host threads
/// concurrently is safe.
class Fork {
 public:
  explicit Fork(const platform::ReferenceBoard& warm) : bytes_(save(warm)) {}

  /// Cold-restores the warm state into `board` (same construction-time
  /// wiring required, as with restore()).
  void into(platform::ReferenceBoard& board) const { restore(board, bytes_); }

  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace cabt::snap
