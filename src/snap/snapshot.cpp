#include "snap/snapshot.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <unordered_map>

#include "common/serial.h"

namespace cabt::snap {

namespace {

constexpr char kMagic[] = "CABTSNAP";
constexpr size_t kMagicSize = 8;

}  // namespace

std::vector<uint8_t> save(const platform::ReferenceBoard& board) {
  serial::Writer w;
  w.bytes(kMagic, kMagicSize);
  w.u32(kFormatVersion);
  w.u32(static_cast<uint32_t>(board.numCores()));

  // Kernel: global time and the per-process activation queue, processes
  // identified by core index (the board's construction order).
  std::unordered_map<sim::Process*, uint32_t> index;
  for (size_t i = 0; i < board.numCores(); ++i) {
    index.emplace(board.process(i), static_cast<uint32_t>(i));
  }
  board.kernel().saveState(w, [&index](sim::Process* p) {
    const auto it = index.find(p);
    CABT_CHECK(it != index.end(),
               "kernel queue holds a process the board does not own");
    return it->second;
  });

  // Bus clock, transaction-log tail, all device state.
  board.board().bus.saveState(w);

  // Per-core ISS state (architectural + micro-architectural + memory).
  for (size_t i = 0; i < board.numCores(); ++i) {
    board.core(i).saveState(w);
  }

  // Integrity footer over everything above.
  const uint64_t sum = serial::fnv1a(w.data());
  w.u64(sum);
  return w.take();
}

void restore(platform::ReferenceBoard& board,
             const std::vector<uint8_t>& data) {
  CABT_CHECK(data.size() > kMagicSize + 4 + 8, "snapshot too short");
  const uint64_t sum = serial::fnv1a(data.data(), data.size() - 8);
  serial::Reader footer(data.data() + data.size() - 8, 8);
  CABT_CHECK(footer.u64() == sum,
             "snapshot integrity check failed (truncated or corrupted)");

  serial::Reader r(data.data(), data.size() - 8);
  char magic[kMagicSize];
  r.bytes(magic, kMagicSize);
  CABT_CHECK(std::equal(magic, magic + kMagicSize, kMagic),
             "not a cabt snapshot (bad magic)");
  const uint32_t version = r.u32();
  CABT_CHECK(version == kFormatVersion,
             "snapshot format v" << version << " is not v" << kFormatVersion);
  const uint32_t cores = r.u32();
  CABT_CHECK(cores == board.numCores(),
             "snapshot has " << cores << " cores, this board has "
                             << board.numCores());

  board.kernel().restoreState(r, [&board](uint32_t i) {
    CABT_CHECK(i < board.numCores(), "process index out of range");
    return board.process(i);
  });
  board.board().bus.restoreState(r);
  for (size_t i = 0; i < board.numCores(); ++i) {
    board.core(i).restoreState(r);
  }
  CABT_CHECK(r.remaining() == 0,
             "snapshot has " << r.remaining() << " unread trailing bytes");
}

uint64_t digest(const platform::ReferenceBoard& board) {
  serial::Writer w;
  for (size_t i = 0; i < board.numCores(); ++i) {
    board.core(i).digestState(w);
  }
  // Bus section: the clock, the log tail and every device's serialized
  // state are all deterministic observables (the same bytes save()
  // writes), so reusing saveState keeps the two definitions aligned.
  board.board().bus.saveState(w);
  return serial::fnv1a(w.data());
}

void saveFile(const platform::ReferenceBoard& board,
              const std::string& path) {
  const std::vector<uint8_t> data = save(board);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CABT_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  CABT_CHECK(out.good(), "short write to '" << path << "'");
}

void restoreFile(platform::ReferenceBoard& board, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CABT_CHECK(in.good(), "cannot open '" << path << "'");
  std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  restore(board, data);
}

}  // namespace cabt::snap
