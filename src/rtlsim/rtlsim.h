// RT-level model of the TRC32 core.
//
// Stands in for the paper's Table 2 baseline "Simulation (Workstation)":
// an RT-level simulation of the processor core. Unlike the reference ISS
// (which accounts time per basic block), this model is *cycle driven*: it
// evaluates the pipeline state machine every clock cycle — fetch/issue
// decision, dual-issue pairing, operand scoreboard, branch redirect
// penalty and instruction-cache miss waits — and it records every signal
// update through a waveform trace sink, which is where an HDL simulator
// spends its time. The micro-architectural rules are the architecture
// description's, so the cycle count must match the reference ISS exactly
// (a test asserts this); only the simulation *speed* differs by orders of
// magnitude, which is precisely the trade-off Table 2 demonstrates.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "arch/arch.h"
#include "arch/icache_model.h"
#include "common/sparse_mem.h"
#include "elf/elf.h"
#include "trc/isa.h"

namespace cabt::rtlsim {

/// Bounded waveform ring buffer; every signal update lands here.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 1u << 20)
      : ring_(capacity, 0), capacity_(capacity) {}

  void record(uint64_t cycle, uint16_t signal, uint32_t value) {
    ring_[head_] = (cycle << 24) ^ (static_cast<uint64_t>(signal) << 40) ^
                   value;
    head_ = (head_ + 1) % capacity_;
    ++events_;
  }
  [[nodiscard]] uint64_t events() const { return events_; }

 private:
  std::vector<uint64_t> ring_;
  size_t capacity_;
  size_t head_ = 0;
  uint64_t events_ = 0;
};

struct RtlStats {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t issue_stall_cycles = 0;
  uint64_t branch_penalty_cycles = 0;
  uint64_t icache_wait_cycles = 0;
  uint64_t signal_events = 0;
  uint64_t dual_issues = 0;
};

class RtlCore {
 public:
  RtlCore(const arch::ArchDescription& desc, const elf::Object& object);

  /// Runs one clock cycle; returns false once halted.
  bool clockCycle();

  /// Runs until HALT or the cycle limit.
  void run(uint64_t max_cycles = 2'000'000'000ull);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] const RtlStats& stats() const { return stats_; }
  [[nodiscard]] uint32_t d(int i) const { return d_.at(i); }
  [[nodiscard]] uint32_t a(int i) const { return a_.at(i); }
  [[nodiscard]] const SparseMemory& memory() const { return mem_; }

 private:
  struct IssueSlot {
    const trc::Instr* instr = nullptr;
    bool ok = false;
  };

  [[nodiscard]] const trc::Instr* fetch(uint32_t addr) const;
  [[nodiscard]] bool operandsReady(const trc::Instr& instr) const;
  void executeInstr(const trc::Instr& instr, bool* redirected);
  void trace(uint16_t signal, uint32_t value) {
    trace_.record(stats_.cycles, signal, value);
    ++stats_.signal_events;
  }

  arch::ArchDescription desc_;
  std::vector<trc::Instr> decoded_;
  std::unordered_map<uint32_t, size_t> by_addr_;
  std::set<uint32_t> leaders_;
  SparseMemory mem_;
  TraceBuffer trace_;

  std::array<uint32_t, 16> d_{};
  std::array<uint32_t, 16> a_{};
  uint32_t pc_ = 0;
  bool halted_ = false;

  // Pipeline state machine.
  std::array<uint64_t, 32> ready_{};  ///< absolute cycle a register is usable
  unsigned branch_wait_ = 0;          ///< refill penalty countdown
  unsigned icache_wait_ = 0;          ///< miss penalty countdown
  bool needs_drain_ = true;           ///< pipeline drain pending (block entry)
  bool have_line_ = false;
  uint32_t last_line_ = 0;
  arch::ICacheState icache_{arch::ICacheModel{}};

  RtlStats stats_;
};

}  // namespace cabt::rtlsim
