#include "rtlsim/rtlsim.h"

#include "common/bits.h"
#include "common/strutil.h"
#include "trc/program.h"

namespace cabt::rtlsim {
namespace {

using arch::OpClass;
using trc::Instr;
using trc::Opc;

/// Signal ids for the waveform trace.
enum Signal : uint16_t {
  kSigPc = 1,
  kSigFetchWord,
  kSigIssueOp,
  kSigOperandA,
  kSigOperandB,
  kSigAluResult,
  kSigMemAddr,
  kSigMemData,
  kSigRegWrite,
  kSigBranchTaken,
  kSigCacheTag0,
  kSigCacheTag1,
  kSigCacheHit,
  kSigPair,
};

}  // namespace

RtlCore::RtlCore(const arch::ArchDescription& desc, const elf::Object& object)
    : desc_(desc), decoded_(trc::decodeText(object)) {
  icache_ = arch::ICacheState(desc_.icache);
  leaders_ = trc::findLeaders(object, decoded_);
  for (size_t i = 0; i < decoded_.size(); ++i) {
    by_addr_.emplace(decoded_[i].addr, i);
  }
  for (const elf::Section& s : object.sections) {
    if (s.kind == elf::SectionKind::kProgbits) {
      mem_.writeBlock(s.addr, s.data.data(), s.data.size());
    }
  }
  pc_ = object.entry;
}

const Instr* RtlCore::fetch(uint32_t addr) const {
  const auto it = by_addr_.find(addr);
  return it == by_addr_.end() ? nullptr : &decoded_[it->second];
}

bool RtlCore::operandsReady(const Instr& instr) const {
  const arch::TimedOp t = instr.timedOp();
  const uint64_t now = stats_.cycles;
  const auto ready = [&](int r) {
    return r == arch::TimedOp::kNoReg || ready_[r] <= now;
  };
  return ready(t.src1) && ready(t.src2);
}

void RtlCore::executeInstr(const Instr& in, bool* redirected) {
  const auto rd = [&](int i) { return d_[i]; };
  const auto ra = [&](int i) { return a_[i]; };
  const uint32_t imm = static_cast<uint32_t>(in.imm);
  uint32_t next_pc = in.addr + in.size;
  *redirected = false;

  const auto setD = [&](int i, uint32_t v) {
    d_[i] = v;
    trace(kSigRegWrite, v);
  };
  const auto setA = [&](int i, uint32_t v) {
    a_[i] = v;
    trace(kSigRegWrite, v);
  };
  const auto load = [&](unsigned size, bool sign) {
    const uint32_t addr = ra(in.ra) + imm;
    trace(kSigMemAddr, addr);
    uint32_t v = mem_.read(addr, size);
    if (sign && size < 4) {
      v = static_cast<uint32_t>(signExtend(v, size * 8));
    }
    trace(kSigMemData, v);
    return v;
  };
  const auto store = [&](unsigned size, uint32_t v) {
    const uint32_t addr = ra(in.ra) + imm;
    trace(kSigMemAddr, addr);
    trace(kSigMemData, v);
    mem_.write(addr, v, size);
  };
  const auto branch = [&](bool taken) {
    trace(kSigBranchTaken, taken ? 1 : 0);
    const bool predicted = arch::BranchModel::predictsTaken(in.imm);
    const unsigned extra = desc_.branch.conditionalExtra(predicted, taken);
    branch_wait_ = extra;
    if (taken) {
      next_pc = in.branchTarget();
    }
    *redirected = true;
  };
  const auto uncond = [&](uint32_t target) {
    trace(kSigBranchTaken, 1);
    branch_wait_ = desc_.branch.unconditionalExtra(in.cls());
    next_pc = target;
    *redirected = true;
  };

  trace(kSigIssueOp, static_cast<uint32_t>(in.opc));
  if (in.info().fmt == trc::Format::kRRR) {
    trace(kSigOperandA, rd(in.ra));
    trace(kSigOperandB, rd(in.rb));
  }

  switch (in.opc) {
    case Opc::kAdd: setD(in.rd, rd(in.ra) + rd(in.rb)); break;
    case Opc::kSub: setD(in.rd, rd(in.ra) - rd(in.rb)); break;
    case Opc::kAnd: setD(in.rd, rd(in.ra) & rd(in.rb)); break;
    case Opc::kOr: setD(in.rd, rd(in.ra) | rd(in.rb)); break;
    case Opc::kXor: setD(in.rd, rd(in.ra) ^ rd(in.rb)); break;
    case Opc::kShl: setD(in.rd, rd(in.ra) << (rd(in.rb) & 31)); break;
    case Opc::kShr: setD(in.rd, rd(in.ra) >> (rd(in.rb) & 31)); break;
    case Opc::kSar:
      setD(in.rd, static_cast<uint32_t>(static_cast<int32_t>(rd(in.ra)) >>
                                        (rd(in.rb) & 31)));
      break;
    case Opc::kMul: setD(in.rd, rd(in.ra) * rd(in.rb)); break;
    case Opc::kEq: setD(in.rd, rd(in.ra) == rd(in.rb) ? 1 : 0); break;
    case Opc::kNe: setD(in.rd, rd(in.ra) != rd(in.rb) ? 1 : 0); break;
    case Opc::kLt:
      setD(in.rd, static_cast<int32_t>(rd(in.ra)) <
                          static_cast<int32_t>(rd(in.rb))
                      ? 1
                      : 0);
      break;
    case Opc::kGe:
      setD(in.rd, static_cast<int32_t>(rd(in.ra)) >=
                          static_cast<int32_t>(rd(in.rb))
                      ? 1
                      : 0);
      break;
    case Opc::kLtu: setD(in.rd, rd(in.ra) < rd(in.rb) ? 1 : 0); break;
    case Opc::kGeu: setD(in.rd, rd(in.ra) >= rd(in.rb) ? 1 : 0); break;
    case Opc::kAddi: setD(in.rd, rd(in.ra) + imm); break;
    case Opc::kMovi: setD(in.rd, imm); break;
    case Opc::kMovh: setD(in.rd, imm << 16); break;
    case Opc::kMova: setA(in.rd, rd(in.ra)); break;
    case Opc::kMovd: setD(in.rd, ra(in.ra)); break;
    case Opc::kLea: setA(in.rd, ra(in.ra) + imm); break;
    case Opc::kMovha: setA(in.rd, imm << 16); break;
    case Opc::kAdda: setA(in.rd, ra(in.ra) + ra(in.rb)); break;
    case Opc::kSuba: setA(in.rd, ra(in.ra) - ra(in.rb)); break;
    case Opc::kLdw: setD(in.rd, load(4, false)); break;
    case Opc::kLdh: setD(in.rd, load(2, true)); break;
    case Opc::kLdhu: setD(in.rd, load(2, false)); break;
    case Opc::kLdb: setD(in.rd, load(1, true)); break;
    case Opc::kLdbu: setD(in.rd, load(1, false)); break;
    case Opc::kLda: setA(in.rd, load(4, false)); break;
    case Opc::kStw: store(4, rd(in.rd)); break;
    case Opc::kSth: store(2, rd(in.rd)); break;
    case Opc::kStb: store(1, rd(in.rd)); break;
    case Opc::kSta: store(4, ra(in.rd)); break;
    case Opc::kJ:
    case Opc::kJ16: uncond(in.branchTarget()); break;
    case Opc::kJl:
      setA(trc::kLinkRegister, in.addr + in.size);
      uncond(in.branchTarget());
      break;
    case Opc::kJi: uncond(ra(in.ra)); break;
    case Opc::kRet16: uncond(ra(trc::kLinkRegister)); break;
    case Opc::kJeq: branch(rd(in.ra) == rd(in.rb)); break;
    case Opc::kJne: branch(rd(in.ra) != rd(in.rb)); break;
    case Opc::kJlt:
      branch(static_cast<int32_t>(rd(in.ra)) <
             static_cast<int32_t>(rd(in.rb)));
      break;
    case Opc::kJge:
      branch(static_cast<int32_t>(rd(in.ra)) >=
             static_cast<int32_t>(rd(in.rb)));
      break;
    case Opc::kJltu: branch(rd(in.ra) < rd(in.rb)); break;
    case Opc::kJgeu: branch(rd(in.ra) >= rd(in.rb)); break;
    case Opc::kJnz16: branch(rd(in.rd) != 0); break;
    case Opc::kJz16: branch(rd(in.rd) == 0); break;
    case Opc::kNop:
    case Opc::kNop16:
    case Opc::kBkpt:
      break;
    case Opc::kHalt:
      halted_ = true;
      break;
    case Opc::kMov16: setD(in.rd, rd(in.rb)); break;
    case Opc::kAdd16: setD(in.rd, rd(in.rd) + rd(in.rb)); break;
    case Opc::kSub16: setD(in.rd, rd(in.rd) - rd(in.rb)); break;
    case Opc::kMovi16: setD(in.rd, imm); break;
    case Opc::kAddi16: setD(in.rd, rd(in.rd) + imm); break;
    default:
      CABT_FAIL("unhandled opcode in RTL model");
  }

  const arch::TimedOp t = in.timedOp();
  if (t.dst != arch::TimedOp::kNoReg) {
    ready_[t.dst] = stats_.cycles + desc_.pipeline.resultLatency(t.cls);
  }
  ++stats_.instructions;
  if (!*redirected) {
    pc_ = next_pc;
    if (leaders_.count(next_pc) != 0) {
      needs_drain_ = true;
    }
  } else {
    pc_ = next_pc;
    needs_drain_ = true;
  }
}

bool RtlCore::clockCycle() {
  if (halted_) {
    return false;
  }
  ++stats_.cycles;
  trace(kSigPc, pc_);

  if (icache_wait_ > 0) {
    --icache_wait_;
    ++stats_.icache_wait_cycles;
    return true;
  }
  if (branch_wait_ > 0) {
    --branch_wait_;
    ++stats_.branch_penalty_cycles;
    return true;
  }

  if (needs_drain_) {
    // Pipeline drain at a basic-block boundary: the fetch buffer realigns
    // and all in-flight results are considered committed.
    ready_.fill(0);
    have_line_ = false;
    needs_drain_ = false;
  }

  const Instr* instr = fetch(pc_);
  CABT_CHECK(instr != nullptr, "RTL fetch from " << hex32(pc_));
  trace(kSigFetchWord, mem_.read32(instr->addr));

  if (desc_.icache.enabled) {
    const uint32_t line = desc_.icache.lineOf(pc_);
    if (!have_line_ || line != last_line_) {
      have_line_ = true;
      last_line_ = line;
      const uint32_t set = desc_.icache.setOf(pc_);
      trace(kSigCacheTag0, icache_.tagEntry(set, 0));
      if (desc_.icache.ways > 1) {
        trace(kSigCacheTag1, icache_.tagEntry(set, 1));
      }
      const bool hit = icache_.access(pc_);
      trace(kSigCacheHit, hit ? 1 : 0);
      if (!hit) {
        // This cycle is the first of the miss wait. The refill freezes
        // the whole pipeline (the architecture description defines the
        // miss penalty as additive to the issue schedule), so in-flight
        // result latencies freeze with it.
        icache_wait_ = desc_.icache.miss_penalty - 1;
        ++stats_.icache_wait_cycles;
        for (uint64_t& r : ready_) {
          if (r > stats_.cycles) {
            r += desc_.icache.miss_penalty;
          }
        }
        return true;
      }
    }
  }

  if (!operandsReady(*instr)) {
    ++stats_.issue_stall_cycles;
    return true;
  }

  bool redirected = false;
  executeInstr(*instr, &redirected);
  if (halted_ || redirected) {
    return !halted_;
  }

  // Dual-issue: an IP instruction pairs with an immediately following LS
  // instruction of the same block when its operands are ready and there
  // is no same-cycle forwarding or double write.
  if (desc_.pipeline.dual_issue &&
      arch::pipeOf(instr->cls()) == arch::Pipe::kIp &&
      !instr->isControlTransfer()) {
    const Instr* second = fetch(pc_);
    if (second != nullptr && leaders_.count(pc_) == 0 &&
        arch::pipeOf(second->cls()) == arch::Pipe::kLs &&
        operandsReady(*second)) {
      const arch::TimedOp t1 = instr->timedOp();
      const arch::TimedOp t2 = second->timedOp();
      const bool reads_dst =
          t1.dst != arch::TimedOp::kNoReg &&
          (t2.src1 == t1.dst || t2.src2 == t1.dst);
      const bool waw =
          t1.dst != arch::TimedOp::kNoReg && t2.dst == t1.dst;
      if (!reads_dst && !waw) {
        trace(kSigPair, 1);
        ++stats_.dual_issues;
        bool redirected2 = false;
        executeInstr(*second, &redirected2);
      }
    }
  }
  return !halted_;
}

void RtlCore::run(uint64_t max_cycles) {
  for (uint64_t i = 0; i < max_cycles && clockCycle(); ++i) {
  }
  CABT_CHECK(halted_, "RTL model hit the cycle limit");
}

}  // namespace cabt::rtlsim
