#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "sim/host_pool.h"
#include "snap/snapshot.h"

namespace cabt::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

core::ProgramArtifactCache::Stats statsDelta(
    const core::ProgramArtifactCache::Stats& before) {
  const auto after = core::ProgramArtifactCache::instance().stats();
  return {after.hits - before.hits, after.decodes - before.decodes};
}

}  // namespace

uint64_t FleetResult::totalInstructions() const {
  uint64_t total = 0;
  for (const BoardResult& b : boards) {
    total += b.instructions;
  }
  return total;
}

double FleetResult::boardsPerSec() const {
  return host_seconds > 0.0
             ? static_cast<double>(boards.size()) / host_seconds
             : 0.0;
}

double FleetResult::aggregateMips() const {
  return host_seconds > 0.0
             ? static_cast<double>(totalInstructions()) / host_seconds / 1e6
             : 0.0;
}

bool FleetResult::digestsAgree() const {
  for (const BoardResult& b : boards) {
    if (b.digest != boards.front().digest) {
      return false;
    }
  }
  return true;
}

void FleetResult::publishMetrics(obs::MetricsRegistry& reg,
                                 const std::string& prefix) const {
  reg.setCounter(prefix + "boards", boards.size());
  reg.setCounter(prefix + "instructions", totalInstructions());
  reg.setCounter(prefix + "artifact_decodes", artifact.decodes);
  reg.setCounter(prefix + "artifact_hits", artifact.hits);
  reg.setGauge(prefix + "host_parallelism", host_parallelism);
  reg.setGauge(prefix + "host_seconds", host_seconds);
  reg.setGauge(prefix + "boards_per_sec", boardsPerSec());
  reg.setGauge(prefix + "aggregate_mips", aggregateMips());
  for (const BoardResult& b : boards) {
    reg.observe(prefix + "board_instructions", b.instructions);
  }
  reg.merge(exemplar, prefix + "board0.");
}

Driver::Driver(FleetConfig config) : config_(std::move(config)) {}

FleetResult Driver::run(const std::vector<const elf::Object*>& images) {
  const auto before = core::ProgramArtifactCache::instance().stats();
  FleetResult result = runBoards(images, nullptr);
  result.artifact = statsDelta(before);
  return result;
}

FleetResult Driver::runForked(
    const std::vector<const elf::Object*>& images, sim::Cycle warm_to,
    const std::function<void(size_t, platform::ReferenceBoard&)>& diverge) {
  const auto before = core::ProgramArtifactCache::instance().stats();
  // The prototype pays the warm-up once; it stays alive through the
  // fleet run so its shared artifacts stay live in the cache (the forks
  // then hit instead of re-decoding).
  platform::ReferenceBoard prototype(config_.desc, images, config_.board);
  prototype.runTo(warm_to);
  const snap::Fork fork(prototype);
  FleetResult result = runBoards(
      images, [&fork, &diverge](size_t index, platform::ReferenceBoard& b) {
        fork.into(b);
        if (diverge) {
          diverge(index, b);
        }
      });
  result.artifact = statsDelta(before);
  return result;
}

FleetResult Driver::runBoards(
    const std::vector<const elf::Object*>& images,
    const std::function<void(size_t, platform::ReferenceBoard&)>& prepare) {
  FleetResult result;
  const size_t m = config_.boards;
  result.boards.resize(m);

  // Pin one artifact per image for the whole run: without this, batch
  // activation could destroy every board of one wave before the next
  // constructs, letting the weak cache entries expire and forcing a
  // re-decode per wave. Pinned, the fleet pays exactly one decode per
  // distinct image no matter how it is batched.
  std::vector<std::shared_ptr<const core::ProgramArtifact>> pinned;
  pinned.reserve(images.size());
  for (const elf::Object* image : images) {
    pinned.push_back(core::ProgramArtifactCache::instance().acquire(
        config_.desc, *image, config_.board.iss.extra_leaders));
  }

  unsigned parallelism = config_.host_threads != 0
                             ? config_.host_threads
                             : std::thread::hardware_concurrency();
  parallelism = std::clamp(parallelism, 1u, 16u);
  result.host_parallelism = parallelism;
  sim::HostPool pool(parallelism - 1);  // the calling thread participates

  const size_t batch = config_.batch != 0 ? std::min(config_.batch, m) : m;
  const auto t0 = Clock::now();
  for (size_t base = 0; base < m; base += batch) {
    const size_t count = std::min(batch, m - base);
    pool.runAll(count, [this, &images, &prepare, &result,
                        base](size_t k) {
      const size_t index = base + k;
      const auto board_t0 = Clock::now();
      platform::ReferenceBoard board(config_.desc, images, config_.board);
      if (prepare) {
        prepare(index, board);
      }
      BoardResult& r = result.boards[index];
      if (config_.run_to != 0) {
        board.runTo(config_.run_to);
        r.stop = board.core(0).stopReason();
      } else {
        r.stop = board.run();
      }
      r.digest = snap::digest(board);
      r.instructions = board.instructionsRetired();
      r.soc_cycles = board.board().bus.socCycle();
      r.host_seconds = secondsSince(board_t0);
      if (index == 0) {
        board.publishMetrics(result.exemplar, "");
      }
      if (config_.inspect) {
        config_.inspect(index, board);
      }
    });
  }
  result.host_seconds = secondsSince(t0);
  return result;
}

}  // namespace cabt::fleet
