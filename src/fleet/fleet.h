// Board-fleet driver: schedules M independent ReferenceBoards over the
// shared host worker pool (sim/host_pool.h) so a multi-core host
// simulates a whole rack of target boards at once (DESIGN.md
// section 14).
//
// Two properties make fleets cheap and trustworthy:
//
//  * Shared artifacts. Every board constructed from the same image and
//    ISS configuration acquires the same immutable
//    core::ProgramArtifact through the process-wide cache, so an
//    M-board fleet pays exactly one decode/lower per distinct image —
//    only the per-core mutable residue (block-cache overlay, traces,
//    device state) is per board. The FleetResult records the cache's
//    hit/decode delta so benches and tests can assert the sharing
//    actually happened.
//
//  * Bit-identical scheduling independence. Boards never share mutable
//    state — each owns its kernel, cores, peripherals and memory, and
//    reads only const images and const artifacts — so the host
//    schedule (thread count, batch size, run order) cannot leak into
//    any board's architectural state. A fleet run of M identical
//    boards produces M identical snap::digest values, each equal to a
//    plain single-board run's (tests/fleet_test.cpp).
//
// Fan-out comes in two shapes: run() boots every board cold from the
// images, runForked() warms one prototype board to a cycle, snapshots
// it once (snap::Fork) and cold-restores the bytes into K boards that
// each diverge from the common warm point — the fuzzing and
// fault-campaign pattern of paying initialization once per scenario
// family instead of once per scenario.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "arch/arch.h"
#include "core/program_artifact.h"
#include "elf/elf.h"
#include "iss/iss.h"
#include "obs/metrics.h"
#include "platform/platform.h"
#include "sim/kernel.h"

namespace cabt::fleet {

struct FleetConfig {
  /// Architecture shared by every board in the fleet.
  arch::ArchDescription desc;
  /// Per-board configuration (cores come from the image list passed to
  /// run()). Applied identically to every board.
  platform::BoardConfig board;
  /// Number of boards to schedule.
  size_t boards = 1;
  /// Host threads running boards, calling thread included; 0 picks
  /// hardware_concurrency clamped to [1, 16]. (Each board may *also*
  /// run its own parallel-round kernel; the two pools nest cleanly.)
  unsigned host_threads = 0;
  /// Batch activation: at most this many boards are constructed and
  /// live at once, bounding peak host memory for large fleets. 0 means
  /// one batch holding the whole fleet.
  size_t batch = 0;
  /// Non-zero: each board runs runTo(run_to) instead of run().
  sim::Cycle run_to = 0;
  /// Optional per-board inspection hook, called right after a board's
  /// run completes and before the board is destroyed. Runs on a worker
  /// thread: it must only touch state private to this board's index
  /// (e.g. write slot `index` of a pre-sized vector).
  std::function<void(size_t index, platform::ReferenceBoard&)> inspect;
};

/// What one board's run came to.
struct BoardResult {
  iss::StopReason stop = iss::StopReason::kHalted;
  uint64_t digest = 0;        ///< snap::digest after the run
  uint64_t instructions = 0;  ///< retired, summed over the board's cores
  uint64_t soc_cycles = 0;    ///< bus clock at the end of the run
  double host_seconds = 0.0;  ///< this board's own wall time
};

struct FleetResult {
  std::vector<BoardResult> boards;
  double host_seconds = 0.0;    ///< wall time of the whole fleet run
  unsigned host_parallelism = 0;
  /// Artifact-cache activity attributable to this run (after minus
  /// before): decodes == number of distinct images proves the fleet
  /// shared one decode per image.
  core::ProgramArtifactCache::Stats artifact;
  /// Board 0's own metrics snapshot — one exemplar board, folded under
  /// "<prefix>board0." by publishMetrics via MetricsRegistry::merge.
  obs::MetricsRegistry exemplar;

  [[nodiscard]] uint64_t totalInstructions() const;
  [[nodiscard]] double boardsPerSec() const;
  [[nodiscard]] double aggregateMips() const;
  /// True when every board produced the same digest (the M-identical-
  /// boards invariant; trivially true for fleets of one).
  [[nodiscard]] bool digestsAgree() const;

  /// Publishes <prefix>boards, <prefix>boards_per_sec,
  /// <prefix>aggregate_mips, <prefix>instructions,
  /// <prefix>artifact_{decodes,hits}, a per-board instruction
  /// histogram, and the exemplar board's metrics under
  /// <prefix>board0.*.
  void publishMetrics(obs::MetricsRegistry& reg,
                      const std::string& prefix = "fleet.") const;
};

class Driver {
 public:
  explicit Driver(FleetConfig config);

  /// Runs config.boards identical boards cold-booted from `images`
  /// (one core per image, as with ReferenceBoard). Boards are
  /// dispatched to the pool in activation batches; results land in
  /// board order regardless of completion order.
  FleetResult run(const std::vector<const elf::Object*>& images);

  /// Warms one prototype board to SoC cycle `warm_to`, snapshots it,
  /// then runs `config.boards` forks: each starts from the common warm
  /// state, is passed to `diverge` (may be null) to make the scenario
  /// differ, and runs to completion like run(). The warm-up is paid
  /// once, not per fork.
  FleetResult runForked(
      const std::vector<const elf::Object*>& images, sim::Cycle warm_to,
      const std::function<void(size_t index, platform::ReferenceBoard&)>&
          diverge);

  [[nodiscard]] const FleetConfig& config() const { return config_; }

 private:
  FleetResult runBoards(
      const std::vector<const elf::Object*>& images,
      const std::function<void(size_t, platform::ReferenceBoard&)>& prepare);

  FleetConfig config_;
};

}  // namespace cabt::fleet
