// Immutable, image-keyed shared program artifacts (DESIGN.md section 14).
//
// Everything the execution engines precompute from a program image and an
// architecture description — the block graph, the per-block predecoded
// instruction/schedule/line-group tables, the instruction address index,
// the symbol index and the content fingerprint — is a pure function of
// (image, pipeline model, branch model, icache geometry, extra leaders).
// A ProgramArtifact packages that computation once, immutable after
// construction; the process-wide ProgramArtifactCache hands the same
// `shared_ptr<const ProgramArtifact>` to every board/core running the
// same image under the same timing configuration, so a thousand-board
// fleet pays one decode (decode once, execute everywhere).
//
// The artifact is never written after publication. All mutable residue —
// hot counters, breakpoint flags, formed traces, lowered threaded
// programs — lives in the per-core BlockCache overlay (block_cache.h),
// which holds a shared_ptr to its artifact and points into it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "arch/arch.h"
#include "core/block_graph.h"
#include "elf/elf.h"

namespace cabt::core {

/// The immutable, shareable half of one executable cached block: the
/// predecoded instructions and every table that is a pure function of
/// the image and the architecture description. See ExecBlock
/// (block_cache.h) for the field semantics and the per-core residue.
struct StaticBlock {
  uint32_t addr = 0;
  std::vector<trc::Instr> instrs;
  /// Issue-schedule cycles consumed after instruction i has issued
  /// (PipelineTimer::cycles() from a drained pipeline). Always filled;
  /// functional-only execution simply ignores it.
  std::vector<uint32_t> cum_cycles;
  /// 1 when instruction i starts a new cache-line group within the
  /// block (always set for instruction 0). Empty without an icache.
  std::vector<uint8_t> new_line;
  /// Precomputed icache set index and combined tag+valid word per
  /// instruction (meaningful where new_line[i] != 0). Empty without an
  /// icache.
  std::vector<uint32_t> line_set;
  std::vector<uint32_t> line_tag;
  /// Successor indices into the artifact's block array (-1 = none /
  /// dynamic).
  int32_t target = -1;
  int32_t fall_through = -1;
};

/// One decoded, scheduled, indexed program image. Immutable after
/// construction — every accessor is const and the object is only ever
/// handed out as `shared_ptr<const ProgramArtifact>`.
class ProgramArtifact {
 public:
  ProgramArtifact(const arch::ArchDescription& desc,
                  const elf::Object& object,
                  const std::vector<uint32_t>& extra_leaders);

  [[nodiscard]] const BlockGraph& graph() const { return graph_; }
  [[nodiscard]] const std::vector<StaticBlock>& blocks() const {
    return blocks_;
  }
  /// Instruction address -> index into graph().instrs() (the stepping
  /// engine's fetch path).
  [[nodiscard]] const std::unordered_map<uint32_t, uint32_t>& instrByAddr()
      const {
    return instr_by_addr_;
  }
  [[nodiscard]] const elf::SymbolIndex& symbols() const { return symbols_; }
  /// Content fingerprint of the decoded program (instruction words plus
  /// leaders). Byte-compatible with the pre-artifact snapshot field, so
  /// existing snapshots and golden digests keep validating.
  [[nodiscard]] uint64_t fingerprint() const { return fingerprint_; }
  /// The branch model the artifact was scheduled under; per-core
  /// threaded lowering copies it from here.
  [[nodiscard]] const arch::BranchModel& branch() const { return branch_; }

 private:
  BlockGraph graph_;
  std::vector<StaticBlock> blocks_;
  std::unordered_map<uint32_t, uint32_t> instr_by_addr_;
  elf::SymbolIndex symbols_;
  arch::BranchModel branch_;
  uint64_t fingerprint_ = 0;
};

/// Process-wide artifact cache, keyed on (image content, timing config,
/// extra leaders). Holds weak references: artifacts stay alive exactly
/// as long as some board/core uses them, so a fuzzing campaign churning
/// through thousands of generated images does not accumulate them, while
/// a live fleet of M boards on one image shares a single decode.
class ProgramArtifactCache {
 public:
  struct Stats {
    uint64_t hits = 0;     ///< acquire() served from a live artifact
    uint64_t decodes = 0;  ///< acquire() had to build (miss or expired)
  };

  static ProgramArtifactCache& instance();

  /// Returns the shared artifact for (object, desc, extra_leaders),
  /// building it on first use. Thread-safe; concurrent acquires of the
  /// same key during construction serialize on one decode.
  std::shared_ptr<const ProgramArtifact> acquire(
      const arch::ArchDescription& desc, const elf::Object& object,
      const std::vector<uint32_t>& extra_leaders = {});

  [[nodiscard]] Stats stats() const;
  /// Number of cache entries holding a still-live artifact.
  [[nodiscard]] size_t size() const;
  /// Drops every entry and zeroes the stats (tests and benches; live
  /// shared_ptrs keep their artifacts alive, only the cache forgets).
  void clear();

 private:
  using Key = std::pair<uint64_t, uint64_t>;  // (image hash, config hash)

  mutable std::mutex mu_;
  std::map<Key, std::weak_ptr<const ProgramArtifact>> entries_;
  Stats stats_;
};

}  // namespace cabt::core
