#include "core/block_graph.h"

#include "arch/timing.h"
#include "common/error.h"
#include "trc/program.h"

namespace cabt::core {

BlockGraph BlockGraph::build(const elf::Object& object,
                             const std::vector<uint32_t>& extra_leaders) {
  BlockGraph graph;
  graph.instrs_ = trc::decodeText(object);
  CABT_CHECK(!graph.instrs_.empty(), "program has no instructions");
  graph.leaders_ = trc::findLeaders(object, graph.instrs_);
  graph.entry_ = object.entry;
  for (const uint32_t addr : extra_leaders) {
    const uint32_t first = graph.instrs_.front().addr;
    const trc::Instr& last_instr = graph.instrs_.back();
    if (addr >= first && addr <= last_instr.addr) {
      graph.leaders_.insert(addr);
    }
  }

  {
    const trc::Instr& last_instr = graph.instrs_.back();
    graph.text_base_ = graph.instrs_.front().addr;
    graph.text_span_ = last_instr.addr + last_instr.size - graph.text_base_;
    graph.leader_bits_.assign((graph.text_span_ / 2 + 63) / 64, 0);
    for (const uint32_t addr : graph.leaders_) {
      const uint32_t bit = (addr - graph.text_base_) >> 1;
      graph.leader_bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
  }

  for (size_t i = 0; i < graph.instrs_.size(); ++i) {
    const trc::Instr& instr = graph.instrs_[i];
    if (graph.blocks_.empty() || graph.leaders_.count(instr.addr) != 0) {
      Block block;
      block.addr = instr.addr;
      block.first = static_cast<uint32_t>(i);
      graph.by_addr_.emplace(instr.addr, graph.blocks_.size());
      graph.blocks_.push_back(block);
    }
    Block& current = graph.blocks_.back();
    ++current.count;
    CABT_CHECK(current.count == 1 ||
                   !graph.instrs_[i - 1].isControlTransfer(),
               "control transfer in the middle of a block");
  }

  // Successor edges. A direct target outside .text has no block and the
  // edge is dropped, exactly as the old per-pass successor lookups did.
  for (size_t i = 0; i < graph.blocks_.size(); ++i) {
    Block& b = graph.blocks_[i];
    const trc::Instr& last = graph.last(b);
    const int32_t next = i + 1 < graph.blocks_.size()
                             ? static_cast<int32_t>(i + 1)
                             : -1;
    if (!last.isControlTransfer()) {
      b.fall_through = next;
      continue;
    }
    switch (last.cls()) {
      case arch::OpClass::kBranchCond:
        b.target = graph.indexAt(last.branchTarget());
        b.fall_through = next;
        break;
      case arch::OpClass::kBranchUncond:
      case arch::OpClass::kCall:
        b.target = graph.indexAt(last.branchTarget());
        break;
      case arch::OpClass::kBranchInd:
        break;  // resolved at run time (return sites are leaders)
      default:
        break;
    }
  }
  return graph;
}

int32_t BlockGraph::blockIndexContaining(uint32_t addr) const {
  if (addr - text_base_ >= text_span_) {
    return -1;
  }
  // Blocks are sorted by address: the containing block is the last one
  // starting at or before `addr` (blocks tile .text, so it exists).
  size_t lo = 0;
  size_t hi = blocks_.size();
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (blocks_[mid].addr <= addr) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<int32_t>(lo);
}

uint32_t staticBlockCycles(const arch::ArchDescription& desc,
                           const trc::Instr* instrs, size_t count) {
  CABT_CHECK(count > 0, "empty basic block");
  arch::PipelineTimer timer(desc.pipeline);
  for (size_t i = 0; i < count; ++i) {
    timer.issue(instrs[i].timedOp());
  }
  uint64_t cycles = timer.cycles();
  const trc::Instr& last = instrs[count - 1];
  if (last.isControlTransfer() && last.cls() != arch::OpClass::kBranchCond) {
    cycles += desc.branch.unconditionalExtra(last.cls());
  }
  CABT_CHECK(cycles <= 30000, "basic block too long for annotation");
  return static_cast<uint32_t>(cycles);
}

void BlockGraph::computeStaticCycles(const arch::ArchDescription& desc) {
  for (Block& b : blocks_) {
    b.static_cycles = staticBlockCycles(desc, begin(b), b.count);
  }
}

}  // namespace cabt::core
