// Threaded-code programs: the lowered, execution-ready form of a cached
// block or superblock trace (DispatchMode::kThreaded).
//
// Where the block cache removes the per-step address lookup and the
// chained engine removes the per-block lookup, a threaded program removes
// the last per-instruction work that is not the instruction's own
// semantics: the decode switch and the operand extraction. A hot block
// (or trace) is lowered *once* into a flat array of ThreadedOp records,
// each pairing a specialized host handler — a function pointer the ISS
// bound per opcode with the timing/icache-touch/branch-extra decisions
// baked in at lowering time — with fully predecoded operands: register
// indices, materialized immediates, the precomputed icache set/tag words
// and the cumulative issue-schedule cycles of the block cache, plus the
// statically known branch-outcome extra cycles. The hot path is then
//
//     while (op != nullptr) op = op->fn(cpu, op);
//
// back-to-back handler dispatches with no switch, no per-instruction
// config test and no stop-flag polling: handlers return the next record,
// and every record that ends a segment (a control transfer, HALT/BKPT,
// or the synthetic fall-through terminator) returns nullptr, handing
// control back to the dispatcher for the block-boundary epoch (cycle
// commit, quantum yield, interrupt sample, trace guard) that keeps the
// backend bit-identical to per-instruction execution.
//
// Layering: this header is pure data + a lowering driver. The handlers
// themselves live in the ISS (they mutate ISS state), which passes them
// in through a ThreadedBinder — core never depends on iss. The `void*`
// context in ThreadedFn is the ISS instance.
//
// Threaded programs are host-side *derived* state, exactly like the
// block cache and the traces they are lowered from: a pure function of
// the immutable program image and the (fixed per core) ISS config. They
// are never serialized; a restore into a cold process rebuilds them
// lazily once blocks re-heat (src/snap, DESIGN.md section 10).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.h"
#include "trc/isa.h"

namespace cabt::core {

struct ThreadedOp;

/// One specialized host handler. Executes its record against the ISS
/// behind `cpu` and returns the next record to dispatch, or nullptr when
/// the segment is done (control transfer retired, HALT/BKPT, or the
/// fall-through terminator).
using ThreadedFn = const ThreadedOp* (*)(void* cpu, const ThreadedOp* op);

/// One pre-bound operation record. The operand fields are opcode-
/// specific (documented per group below); a handler reads only the
/// fields its opcode uses.
struct ThreadedOp {
  ThreadedFn fn = nullptr;
  /// ALU/memory ops: the materialized immediate (kMovh/kMovha already
  /// shifted). Conditional branches / kJl: the fall-through (return)
  /// address. kHalt: the instruction's own address (pc rests there).
  /// kBkpt and the fall-through terminator: the continuation address.
  uint32_t a = 0;
  /// Direct branches: the precomputed target address.
  uint32_t b = 0;
  /// Cumulative issue-schedule cycles after this op (the block cache's
  /// cum_cycles entry); handlers bound with timing assign it to the
  /// open block's live pipeline cost.
  uint32_t cum = 0;
  /// Precomputed icache set index / tag word, meaningful only for ops
  /// whose handler was bound with the line-group touch baked in.
  uint32_t line_set = 0;
  uint32_t line_tag = 0;
  uint8_t rd = 0;
  uint8_t ra = 0;
  uint8_t rb = 0;
  /// Conditional branches: extra cycles if taken (x0) / not taken (x1).
  /// Unconditional transfers: x0 holds the static extra.
  uint8_t x0 = 0;
  uint8_t x1 = 0;
  uint8_t flags = 0;

  static constexpr uint8_t kPredictedTaken = 1;  ///< flags bit
};

/// One constituent block of a threaded program: ops [first, ...] up to
/// the segment's nullptr-returning terminator. `entry_addr` guards the
/// *preceding* segment exactly like TraceSegment::entry_addr.
struct ThreadedSegment {
  int32_t block = -1;  ///< index into BlockCache::blocks()
  uint32_t first = 0;  ///< index into ThreadedProgram::ops
  uint32_t entry_addr = 0;
};

/// A lowered block (one segment) or trace (one segment per constituent
/// block, boundary epochs run by the dispatcher between them).
struct ThreadedProgram {
  uint32_t addr = 0;  ///< head block address
  std::vector<ThreadedOp> ops;
  std::vector<ThreadedSegment> segs;
  /// Total instruction count (excludes synthetic terminators); mirrors
  /// Trace::total_instrs for the admission check.
  uint32_t total_instrs = 0;
};

/// The ISS's contribution to lowering: handler selection. `select`
/// returns the specialized handler for one instruction, with `touch`
/// (this op performs the block's next icache line-group access) baked
/// in; `end` is the synthetic fall-through terminator for segments whose
/// last instruction does not transfer control. `icache_on` tells the
/// lowering whether the per-op line-group data is meaningful under the
/// core's configured detail level.
struct ThreadedBinder {
  ThreadedFn (*select)(const trc::Instr& in, bool touch) = nullptr;
  ThreadedFn end = nullptr;
  bool icache_on = false;
};

}  // namespace cabt::core
