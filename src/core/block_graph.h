// Shared program-analysis layer: decoded instructions, basic blocks and
// per-block static timing over a TRC32 ELF image.
//
// The block graph is the single source of truth for block boundaries.
// Both consumers of block structure build on it:
//   * the translator front end (xlat/) converts graph blocks into its
//     SourceBlock pass records, and
//   * the reference ISS executes from a core::BlockCache predecoded from
//     the graph (see core/block_cache.h).
// Keeping one construction guarantees the "ground truth" ISS and the
// translated image can never disagree about where a block starts or what
// its static issue schedule costs (DESIGN.md, "Basic blocks").
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "arch/arch.h"
#include "elf/elf.h"
#include "trc/isa.h"

namespace cabt::core {

/// One basic block: a maximal single-entry straight-line run of
/// instructions. Instructions are stored once, in the graph, in address
/// order; a block is a [first, first+count) slice of that array.
struct Block {
  uint32_t addr = 0;        ///< address of the first instruction
  uint32_t first = 0;       ///< index of the first instruction in the graph
  uint32_t count = 0;       ///< number of instructions
  /// Static cycle count (paper section 3.3): issue schedule from a
  /// drained pipeline plus the static part of the branch cost. Filled by
  /// BlockGraph::computeStaticCycles.
  uint32_t static_cycles = 0;
  /// Successor edges as block indices (-1 = none). `target` is the direct
  /// branch/call target; `fall_through` the next block in address order
  /// (absent after an unconditional transfer or at the end of .text).
  int32_t target = -1;
  int32_t fall_through = -1;
};

class BlockGraph {
 public:
  /// Decodes .text, discovers leaders and builds the blocks with their
  /// successor edges. Throws cabt::Error on undecodable or empty input.
  /// `extra_leaders` adds block boundaries that static control flow does
  /// not reveal — e.g. interrupt handler entries, which are only ever
  /// reached via the interrupt controller's vector register (addresses
  /// outside .text are ignored).
  static BlockGraph build(const elf::Object& object,
                          const std::vector<uint32_t>& extra_leaders = {});

  [[nodiscard]] const std::vector<trc::Instr>& instrs() const {
    return instrs_;
  }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] const std::set<uint32_t>& leaders() const { return leaders_; }
  [[nodiscard]] uint32_t entry() const { return entry_; }

  /// Index of the block starting at `addr`, or -1 when `addr` is not a
  /// block leader.
  [[nodiscard]] int32_t indexAt(uint32_t addr) const {
    const auto it = by_addr_.find(addr);
    return it == by_addr_.end() ? -1 : static_cast<int32_t>(it->second);
  }

  /// O(1) leader probe over a flat bitmap spanning .text. This is the
  /// execution hot path's replacement for `leaders().count(addr)`: no
  /// tree walk, no hashing — one shift-and-mask per dispatched block.
  /// Addresses outside .text answer false (they cannot be leaders).
  [[nodiscard]] bool isLeaderFast(uint32_t addr) const {
    const uint32_t off = addr - text_base_;  // wraps for addr < base
    if (off >= text_span_) {
      return false;
    }
    const uint32_t bit = off >> 1;  // instructions are 2-byte aligned
    return ((leader_bits_[bit >> 6] >> (bit & 63)) & 1u) != 0;
  }

  /// Index of the block whose [addr, last-instruction] range contains
  /// `addr`, or -1 when `addr` is outside .text. Used to maintain the
  /// per-block breakpoint flags without scanning on dispatch.
  [[nodiscard]] int32_t blockIndexContaining(uint32_t addr) const;
  [[nodiscard]] const Block* blockAt(uint32_t addr) const {
    const int32_t i = indexAt(addr);
    return i < 0 ? nullptr : &blocks_[static_cast<size_t>(i)];
  }

  /// Instruction slice of a block.
  [[nodiscard]] const trc::Instr* begin(const Block& b) const {
    return instrs_.data() + b.first;
  }
  [[nodiscard]] const trc::Instr* end(const Block& b) const {
    return instrs_.data() + b.first + b.count;
  }
  [[nodiscard]] const trc::Instr& last(const Block& b) const {
    return instrs_[b.first + b.count - 1];
  }

  /// Fills Block::static_cycles for every block.
  void computeStaticCycles(const arch::ArchDescription& desc);

 private:
  std::vector<trc::Instr> instrs_;
  std::vector<Block> blocks_;
  std::set<uint32_t> leaders_;
  std::unordered_map<uint32_t, size_t> by_addr_;
  uint32_t entry_ = 0;
  // Flat leader bitmap over [text_base_, text_base_ + text_span_), one
  // bit per 2-byte slot. Mirrors `leaders_`; rebuilt alongside it.
  uint32_t text_base_ = 0;
  uint32_t text_span_ = 0;
  std::vector<uint64_t> leader_bits_;
};

/// Static cycle count of one straight-line instruction sequence executed
/// from a drained pipeline: the issue schedule plus the fixed extra of a
/// terminating unconditional control transfer. Conditional branches
/// contribute their minimum (zero extra) statically; the rest is dynamic
/// correction (paper section 3.4.1). Shared by BlockGraph and the
/// translator's per-instruction-unit mode.
uint32_t staticBlockCycles(const arch::ArchDescription& desc,
                           const trc::Instr* instrs, size_t count);

}  // namespace cabt::core
