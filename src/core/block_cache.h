// Predecoded block cache: the execution-oriented view of a BlockGraph.
//
// The ISS hot loop executes whole cached blocks instead of re-fetching,
// re-classifying and re-scheduling every instruction on every execution
// (the paper's premise: decode and schedule once, at block granularity).
// Since the fleet refactor the precomputed tables live in an immutable
// shared ProgramArtifact (program_artifact.h): per block the artifact
// holds
//   * a contiguous copy of the decoded instructions (no per-step address
//     hash lookups, no leader-set probes),
//   * the cumulative issue-schedule cycles after every instruction, from
//     a drained pipeline (the TRC32 pipeline drains at block boundaries,
//     so the schedule is a pure function of the block), and
//   * the cache-line group starts (the icache fetch rule touches one line
//     per distinct consecutive line within a block; the groups follow
//     from the static instruction addresses).
// The BlockCache is now the *per-core overlay* over that artifact: hot
// counters, breakpoint flags, formed traces and lowered threaded-code
// programs — everything dispatch mutates — stays private per core, while
// N cores across M boards running the same image point at one shared
// artifact that is never written after publication. Dynamic state —
// register values, icache tags/LRU, branch outcomes — stays in the ISS;
// the per-block corrections are applied at block boundaries exactly as
// in per-instruction execution, which is why the engines are
// bit-identical (see DESIGN.md, "Block-cached execution").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/arch.h"
#include "core/block_graph.h"
#include "core/program_artifact.h"
#include "core/threaded.h"

namespace cabt::core {

/// ExecBlock::trace value while no trace exists; formTrace() returns
/// kTraceDeclined when it refuses to splice (cold or ambiguous
/// successors, indirect terminator, breakpoints). A decline is not
/// permanent: the dispatcher re-attempts with geometric backoff
/// (ExecBlock::trace_retry_at), since the refusal may have been
/// transient — a breakpoint later removed, or branch statistics that
/// only skew once the program leaves its warm-up phase.
/// ExecBlock::threaded / Trace::threaded reuse the same sentinels for
/// the lowered threaded-code program (kTraceDeclined there is permanent:
/// it only means the lowering op budget ran out).
constexpr int32_t kTraceUnformed = -1;
constexpr int32_t kTraceDeclined = -2;

/// One executable cached block: the per-core mutable residue plus a
/// pointer into the shared artifact's immutable tables. The forwarding
/// accessors keep dispatch reading the precomputed arrays exactly as
/// before; everything dispatch *writes* is a plain member here, so the
/// shared StaticBlock is never touched.
struct ExecBlock {
  /// The immutable half, owned by the BlockCache's ProgramArtifact
  /// (whose shared_ptr outlives every ExecBlock pointing into it).
  const StaticBlock* stat = nullptr;

  [[nodiscard]] uint32_t addr() const { return stat->addr; }
  [[nodiscard]] const std::vector<trc::Instr>& instrs() const {
    return stat->instrs;
  }
  /// Issue-schedule cycles consumed after instruction i has issued
  /// (PipelineTimer::cycles() from a drained pipeline). Always filled;
  /// functional-only execution simply ignores it.
  [[nodiscard]] const std::vector<uint32_t>& cum_cycles() const {
    return stat->cum_cycles;
  }
  /// 1 when instruction i is the first of a new cache-line group within
  /// the block (always set for instruction 0). Empty without an icache.
  [[nodiscard]] const std::vector<uint8_t>& new_line() const {
    return stat->new_line;
  }
  /// Precomputed icache set index and combined tag+valid word per
  /// instruction (meaningful where new_line[i] != 0, so dispatch skips
  /// the per-access address arithmetic). Empty without an icache.
  [[nodiscard]] const std::vector<uint32_t>& line_set() const {
    return stat->line_set;
  }
  [[nodiscard]] const std::vector<uint32_t>& line_tag() const {
    return stat->line_tag;
  }
  /// Successor indices into BlockCache::blocks() (-1 = none / dynamic).
  [[nodiscard]] int32_t target() const { return stat->target; }
  [[nodiscard]] int32_t fall_through() const { return stat->fall_through; }

  /// Index into BlockCache::traces() of the superblock headed by this
  /// block, or kTraceUnformed.
  int32_t trace = kTraceUnformed;
  /// Index into BlockCache::threadedPrograms() of this block's lowered
  /// threaded-code form (DispatchMode::kThreaded), kTraceUnformed while
  /// the block has not gone hot, or kTraceDeclined once the lowering op
  /// budget is exhausted.
  int32_t threaded = kTraceUnformed;
  /// exec_count at which a declined trace formation is re-attempted
  /// (doubled on every refusal, so retries stay O(log) per block).
  uint64_t trace_retry_at = 0;
  /// 1 when the block contains a debug breakpoint. Maintained by the ISS
  /// on addBreakpoint/removeBreakpoint so dispatch tests one byte
  /// instead of probing the breakpoint set per block.
  uint8_t has_breakpoint = 0;
  /// Hot-count statistic: number of times the block was dispatched.
  uint64_t exec_count = 0;
  /// Observed successor outcomes under chained dispatch: retired with
  /// control continuing at `target` / at `fall_through`. Trace formation
  /// picks the dominant edge from these.
  uint64_t taken_count = 0;
  uint64_t ft_count = 0;
  /// Statistics: dispatches that arrived through a chained successor
  /// edge, and retirements inside a superblock trace.
  uint64_t chain_entries = 0;
  uint64_t trace_execs = 0;
};

/// One constituent block of a Trace: a [first, first+count) slice of the
/// trace's flattened arrays. `entry_addr` doubles as the guard of the
/// *preceding* segment: execution stays on the trace only while the pc
/// observed at the original block boundary equals the next segment's
/// entry address.
struct TraceSegment {
  int32_t block = -1;      ///< index into BlockCache::blocks()
  uint32_t first = 0;
  uint32_t count = 0;
  uint32_t entry_addr = 0;
};

/// A superblock: a hot chain of blocks spliced into one contiguous
/// dispatch unit. The flattened arrays are the constituents' predecoded
/// data concatenated in chain order; `cum_cycles` restarts at every
/// segment (the pipeline drains at the original block boundaries) and
/// `new_line` keeps each segment's first instruction flagged (the icache
/// touch sequence restarts there too). All architectural corrections
/// still happen at the original block boundaries during dispatch, which
/// is what keeps trace execution bit-identical to per-block execution.
/// Traces are per-core (formed from this core's observed branch
/// statistics), so they live in the overlay, not the shared artifact.
struct Trace {
  uint32_t addr = 0;  ///< head block address
  std::vector<trc::Instr> instrs;
  std::vector<uint32_t> cum_cycles;
  std::vector<uint8_t> new_line;
  std::vector<uint32_t> line_set;
  std::vector<uint32_t> line_tag;
  std::vector<TraceSegment> segs;
  /// Total instruction count across all segments. The dispatcher admits
  /// a trace only when the whole trace fits the remaining instruction
  /// budget, so no per-boundary budget test survives inside.
  uint32_t total_instrs = 0;
  /// Hot-count statistic: number of times the trace was entered.
  uint64_t dispatches = 0;
  /// Lowered threaded-code form of this trace (see ExecBlock::threaded).
  int32_t threaded = kTraceUnformed;
};

/// Trace-formation limits.
struct TraceOptions {
  uint32_t max_blocks = 8;
  uint32_t max_instrs = 256;
};

class BlockCache {
 public:
  /// Builds the per-core overlay over a shared artifact: one small
  /// ExecBlock of counters per StaticBlock. The expensive predecode
  /// happened once, when the artifact was built — constructing a
  /// thousand more caches over the same artifact costs a thousand
  /// counter vectors, not a thousand decodes.
  explicit BlockCache(std::shared_ptr<const ProgramArtifact> artifact);

  [[nodiscard]] const ProgramArtifact& artifact() const { return *artifact_; }

  [[nodiscard]] const std::vector<ExecBlock>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] std::vector<ExecBlock>& blocks() { return blocks_; }

  /// Cached block starting at `addr`, or nullptr when `addr` is not a
  /// block leader (the caller falls back to per-instruction stepping).
  [[nodiscard]] ExecBlock* lookup(uint32_t addr) {
    const int32_t i = artifact_->graph().indexAt(addr);
    return i < 0 ? nullptr : &blocks_[static_cast<size_t>(i)];
  }

  /// The `n` most executed blocks, hottest first (ties by address).
  [[nodiscard]] std::vector<const ExecBlock*> hottest(size_t n) const;

  [[nodiscard]] const std::vector<Trace>& traces() const { return traces_; }
  [[nodiscard]] std::vector<Trace>& traces() { return traces_; }

  /// Splices the block at `head` with its dominant successors into a new
  /// superblock (see trace.cpp for the formation rules). Returns the new
  /// trace's index, or kTraceDeclined when no multi-block trace can be
  /// formed. Does not modify blocks()[head].trace — the caller records
  /// the verdict there.
  int32_t formTrace(int32_t head, const TraceOptions& opts);

  // -- threaded-code lowering (core/threaded.h, DESIGN.md section 10) --

  /// Lowers the block at `idx` / the trace at `trace_idx` into a
  /// threaded program using the ISS-supplied handler binder. Returns the
  /// new program's index, or kTraceDeclined when the lowering would push
  /// the per-core op total past `budget_ops` (hot code is lowered first;
  /// once the budget is gone, cold tails stay on the chained engine).
  /// Like formTrace, the verdict is recorded by the caller.
  int32_t lowerBlockThreaded(int32_t idx, const ThreadedBinder& binder,
                             uint32_t budget_ops);
  int32_t lowerTraceThreaded(int32_t trace_idx, const ThreadedBinder& binder,
                             uint32_t budget_ops);

  [[nodiscard]] const std::vector<ThreadedProgram>& threadedPrograms()
      const {
    return threaded_;
  }
  [[nodiscard]] const ThreadedProgram& threaded(int32_t idx) const {
    return threaded_[static_cast<size_t>(idx)];
  }
  /// Total ThreadedOp records lowered so far (budget accounting).
  [[nodiscard]] size_t threadedOps() const { return threaded_ops_; }

 private:
  std::shared_ptr<const ProgramArtifact> artifact_;
  std::vector<ExecBlock> blocks_;
  std::vector<Trace> traces_;
  std::vector<ThreadedProgram> threaded_;
  size_t threaded_ops_ = 0;
  arch::BranchModel branch_;
};

}  // namespace cabt::core
