// Predecoded block cache: the execution-oriented view of a BlockGraph.
//
// The ISS hot loop executes whole cached blocks instead of re-fetching,
// re-classifying and re-scheduling every instruction on every execution
// (the paper's premise: decode and schedule once, at block granularity).
// Per block the cache precomputes everything that does not depend on
// dynamic state:
//   * a contiguous copy of the decoded instructions (no per-step address
//     hash lookups, no leader-set probes),
//   * the cumulative issue-schedule cycles after every instruction, from
//     a drained pipeline (the TRC32 pipeline drains at block boundaries,
//     so the schedule is a pure function of the block), and
//   * the cache-line group starts (the icache fetch rule touches one line
//     per distinct consecutive line within a block; the groups follow
//     from the static instruction addresses).
// Dynamic state — register values, icache tags/LRU, branch outcomes —
// stays in the ISS; the per-block corrections are applied at block
// boundaries exactly as in per-instruction execution, which is why the
// two engines are bit-identical (see DESIGN.md, "Block-cached
// execution").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/arch.h"
#include "core/block_graph.h"

namespace cabt::core {

/// One executable cached block.
struct ExecBlock {
  uint32_t addr = 0;
  std::vector<trc::Instr> instrs;
  /// Issue-schedule cycles consumed after instruction i has issued
  /// (PipelineTimer::cycles() from a drained pipeline). Always filled;
  /// functional-only execution simply ignores it.
  std::vector<uint32_t> cum_cycles;
  /// 1 when instruction i is the first of a new cache-line group within
  /// the block (always set for instruction 0). Empty without an icache.
  std::vector<uint8_t> new_line;
  /// Successor indices into BlockCache::blocks() (-1 = none / dynamic).
  int32_t target = -1;
  int32_t fall_through = -1;
  /// Hot-count statistic: number of times the block was dispatched.
  uint64_t exec_count = 0;
};

class BlockCache {
 public:
  /// Predecodes every block of `graph`. Timing tables are filled from
  /// `desc` (pipeline model and icache geometry).
  BlockCache(const arch::ArchDescription& desc, const BlockGraph& graph);

  [[nodiscard]] const std::vector<ExecBlock>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] std::vector<ExecBlock>& blocks() { return blocks_; }

  /// Cached block starting at `addr`, or nullptr when `addr` is not a
  /// block leader (the caller falls back to per-instruction stepping).
  [[nodiscard]] ExecBlock* lookup(uint32_t addr) {
    const auto it = by_addr_.find(addr);
    return it == by_addr_.end() ? nullptr : &blocks_[it->second];
  }

  /// The `n` most executed blocks, hottest first (ties by address).
  [[nodiscard]] std::vector<const ExecBlock*> hottest(size_t n) const;

 private:
  std::vector<ExecBlock> blocks_;
  std::unordered_map<uint32_t, size_t> by_addr_;
};

}  // namespace cabt::core
