// Threaded-code lowering: turns the block cache's predecoded arrays into
// flat ThreadedOp programs (core/threaded.h, DESIGN.md section 10).
//
// Lowering is a pure per-instruction transcription — every dynamic
// decision the specialized dispatch loops used to make per instruction
// is resolved here, once:
//   * the handler is selected through the ISS's binder with the icache
//     line-group touch (the block cache's new_line rule) baked in;
//   * immediates are materialized (kMovh/kMovha pre-shifted), branch
//     targets and fall-through addresses become absolute;
//   * the static branch prediction and both conditional outcome extras
//     are precomputed from the architecture's BranchModel, so the
//     handler adds a table value instead of consulting the model;
//   * the cumulative issue-schedule cycles and icache set/tag words are
//     copied from the (already precomputed) block-cache arrays.
// A segment whose last instruction does not transfer control gets the
// synthetic fall-through terminator, which advances the pc to the next
// leader and returns nullptr — the dispatcher's signal to run the
// block-boundary epoch.
#include "core/threaded.h"

#include "core/block_cache.h"

namespace cabt::core {

namespace {

/// Lowers instructions [0, n) of one segment into `out`. The cum/line
/// arrays are the block cache's per-instruction tables for the same
/// range (line data indexed only when the binder says the icache is on).
void lowerSegment(const trc::Instr* instrs, const uint32_t* cum,
                  const uint8_t* new_line, const uint32_t* line_set,
                  const uint32_t* line_tag, size_t n,
                  const arch::BranchModel& bm, const ThreadedBinder& binder,
                  std::vector<ThreadedOp>& out) {
  using trc::Opc;
  for (size_t i = 0; i < n; ++i) {
    const trc::Instr& in = instrs[i];
    ThreadedOp op;
    const bool touch = binder.icache_on && new_line[i] != 0;
    op.fn = binder.select(in, touch);
    op.cum = cum[i];
    if (touch) {
      op.line_set = line_set[i];
      op.line_tag = line_tag[i];
    }
    op.rd = in.rd;
    op.ra = in.ra;
    op.rb = in.rb;
    op.a = static_cast<uint32_t>(in.imm);
    switch (in.cls()) {
      case arch::OpClass::kBranchCond: {
        op.a = in.addr + in.size;  // fall-through continuation
        op.b = in.branchTarget();
        const bool predicted = arch::BranchModel::predictsTaken(in.imm);
        if (predicted) {
          op.flags |= ThreadedOp::kPredictedTaken;
        }
        op.x0 = static_cast<uint8_t>(bm.conditionalExtra(predicted, true));
        op.x1 = static_cast<uint8_t>(bm.conditionalExtra(predicted, false));
        break;
      }
      case arch::OpClass::kBranchUncond:
      case arch::OpClass::kCall:
        op.a = in.addr + in.size;  // kJl's return address
        op.b = in.branchTarget();
        op.x0 = static_cast<uint8_t>(bm.unconditionalExtra(in.cls()));
        break;
      case arch::OpClass::kBranchInd:
        op.x0 = static_cast<uint8_t>(bm.unconditionalExtra(in.cls()));
        break;
      case arch::OpClass::kHalt:
        // HALT leaves the pc on itself; BKPT advances past itself.
        op.a = in.opc == Opc::kBkpt ? in.addr + in.size : in.addr;
        break;
      default:
        if (in.opc == Opc::kMovh || in.opc == Opc::kMovha) {
          op.a = static_cast<uint32_t>(in.imm) << 16;
        }
        break;
    }
    out.push_back(op);
  }
  const trc::Instr& last = instrs[n - 1];
  if (!last.isControlTransfer()) {
    // Leader-split segment end: no control transfer sets the pc, the
    // synthetic terminator advances it to the fall-through leader. (A
    // HALT/BKPT-terminated segment never reaches it — those handlers
    // return nullptr themselves — but the record keeps the layout
    // uniform.)
    ThreadedOp end;
    end.fn = binder.end;
    end.a = last.addr + last.size;
    end.cum = cum[n - 1];
    out.push_back(end);
  }
}

}  // namespace

int32_t BlockCache::lowerBlockThreaded(int32_t idx,
                                       const ThreadedBinder& binder,
                                       uint32_t budget_ops) {
  const ExecBlock& block = blocks_[static_cast<size_t>(idx)];
  const size_t need = block.instrs().size() + 1;  // worst case: + terminator
  if (threaded_ops_ + need > budget_ops) {
    return kTraceDeclined;
  }
  ThreadedProgram prog;
  prog.addr = block.addr();
  prog.total_instrs = static_cast<uint32_t>(block.instrs().size());
  prog.ops.reserve(need);
  const bool icache = binder.icache_on;
  lowerSegment(block.instrs().data(), block.cum_cycles().data(),
               icache ? block.new_line().data() : nullptr,
               icache ? block.line_set().data() : nullptr,
               icache ? block.line_tag().data() : nullptr, block.instrs().size(),
               branch_, binder, prog.ops);
  prog.segs.push_back({idx, 0, block.addr()});
  threaded_ops_ += prog.ops.size();
  threaded_.push_back(std::move(prog));
  return static_cast<int32_t>(threaded_.size()) - 1;
}

int32_t BlockCache::lowerTraceThreaded(int32_t trace_idx,
                                       const ThreadedBinder& binder,
                                       uint32_t budget_ops) {
  const Trace& trace = traces_[static_cast<size_t>(trace_idx)];
  const size_t need = trace.instrs.size() + trace.segs.size();
  if (threaded_ops_ + need > budget_ops) {
    return kTraceDeclined;
  }
  ThreadedProgram prog;
  prog.addr = trace.addr;
  prog.total_instrs = trace.total_instrs;
  prog.ops.reserve(need);
  const bool icache = binder.icache_on;
  for (const TraceSegment& seg : trace.segs) {
    prog.segs.push_back(
        {seg.block, static_cast<uint32_t>(prog.ops.size()), seg.entry_addr});
    // The flattened trace arrays restart cum_cycles and the line-group
    // sequence at every segment, so lowering a [first, first+count)
    // slice is identical to lowering the constituent block.
    lowerSegment(trace.instrs.data() + seg.first,
                 trace.cum_cycles.data() + seg.first,
                 icache ? trace.new_line.data() + seg.first : nullptr,
                 icache ? trace.line_set.data() + seg.first : nullptr,
                 icache ? trace.line_tag.data() + seg.first : nullptr,
                 seg.count, branch_, binder, prog.ops);
  }
  threaded_ops_ += prog.ops.size();
  threaded_.push_back(std::move(prog));
  return static_cast<int32_t>(threaded_.size()) - 1;
}

}  // namespace cabt::core
