#include "core/block_cache.h"

#include <algorithm>

#include "arch/icache_model.h"
#include "arch/timing.h"

namespace cabt::core {

BlockCache::BlockCache(const arch::ArchDescription& desc,
                       const BlockGraph& graph)
    : branch_(desc.branch) {
  blocks_.reserve(graph.blocks().size());
  for (const Block& b : graph.blocks()) {
    ExecBlock eb;
    eb.addr = b.addr;
    eb.instrs.assign(graph.begin(b), graph.end(b));
    eb.target = b.target;
    eb.fall_through = b.fall_through;

    eb.cum_cycles.reserve(eb.instrs.size());
    arch::PipelineTimer timer(desc.pipeline);
    for (const trc::Instr& in : eb.instrs) {
      timer.issue(in.timedOp());
      eb.cum_cycles.push_back(static_cast<uint32_t>(timer.cycles()));
    }

    if (desc.icache.enabled) {
      eb.new_line.reserve(eb.instrs.size());
      eb.line_set.reserve(eb.instrs.size());
      eb.line_tag.reserve(eb.instrs.size());
      bool have_line = false;
      uint32_t last_line = 0;
      for (const trc::Instr& in : eb.instrs) {
        const uint32_t line = desc.icache.lineOf(in.addr);
        const bool starts_group = !have_line || line != last_line;
        have_line = true;
        last_line = line;
        eb.new_line.push_back(starts_group ? 1 : 0);
        eb.line_set.push_back(desc.icache.setOf(in.addr));
        eb.line_tag.push_back(
            arch::ICacheState::tagWord(desc.icache.tagOf(in.addr)));
      }
    }

    by_addr_.emplace(eb.addr, blocks_.size());
    blocks_.push_back(std::move(eb));
  }
}

std::vector<const ExecBlock*> BlockCache::hottest(size_t n) const {
  std::vector<const ExecBlock*> out;
  out.reserve(blocks_.size());
  for (const ExecBlock& b : blocks_) {
    if (b.exec_count > 0) {
      out.push_back(&b);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ExecBlock* a, const ExecBlock* b) {
              return a->exec_count != b->exec_count
                         ? a->exec_count > b->exec_count
                         : a->addr < b->addr;
            });
  if (out.size() > n) {
    out.resize(n);
  }
  return out;
}

}  // namespace cabt::core
