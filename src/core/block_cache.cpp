#include "core/block_cache.h"

#include <algorithm>
#include <utility>

namespace cabt::core {

BlockCache::BlockCache(std::shared_ptr<const ProgramArtifact> artifact)
    : artifact_(std::move(artifact)), branch_(artifact_->branch()) {
  const std::vector<StaticBlock>& stat = artifact_->blocks();
  blocks_.resize(stat.size());
  for (size_t i = 0; i < stat.size(); ++i) {
    blocks_[i].stat = &stat[i];
  }
}

std::vector<const ExecBlock*> BlockCache::hottest(size_t n) const {
  std::vector<const ExecBlock*> out;
  out.reserve(blocks_.size());
  for (const ExecBlock& b : blocks_) {
    if (b.exec_count > 0) {
      out.push_back(&b);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ExecBlock* a, const ExecBlock* b) {
              return a->exec_count != b->exec_count
                         ? a->exec_count > b->exec_count
                         : a->addr() < b->addr();
            });
  if (out.size() > n) {
    out.resize(n);
  }
  return out;
}

}  // namespace cabt::core
