#include "core/program_artifact.h"

#include <algorithm>

#include "arch/icache_model.h"
#include "arch/timing.h"
#include "common/serial.h"

namespace cabt::core {

namespace {

/// Content fingerprint of the decoded program: instruction words plus
/// leaders, exactly as the snapshot layer has always computed it (a
/// snapshot must never restore into a board running a different
/// program). Moved here from iss.cpp so artifact and snapshots agree by
/// construction.
uint64_t computeFingerprint(const BlockGraph& graph) {
  serial::Writer w;
  for (const trc::Instr& in : graph.instrs()) {
    w.u32(in.addr);
    w.u8(static_cast<uint8_t>(in.opc));
    w.u8(in.rd);
    w.u8(in.ra);
    w.u8(in.rb);
    w.i32(in.imm);
    w.u8(in.size);
  }
  for (const uint32_t leader : graph.leaders()) {
    w.u32(leader);
  }
  return serial::fnv1a(w.data());
}

/// Identity of the image content: everything the artifact reads from
/// the object (code and data bytes, layout, entry, symbols — the symbol
/// index is part of the artifact).
uint64_t imageKey(const elf::Object& object) {
  serial::Writer w;
  w.u8(static_cast<uint8_t>(object.machine));
  w.u32(object.entry);
  for (const elf::Section& s : object.sections) {
    w.str(s.name);
    w.u8(static_cast<uint8_t>(s.kind));
    w.u32(s.addr);
    w.u32(s.align);
    w.b(s.writable);
    w.b(s.executable);
    w.u32(s.mem_size);
    w.u32(static_cast<uint32_t>(s.data.size()));
    w.bytes(s.data.data(), s.data.size());
  }
  for (const elf::Symbol& s : object.symbols) {
    w.str(s.name);
    w.u32(s.value);
    w.i32(s.section);
    w.u8(static_cast<uint8_t>(s.binding));
  }
  return serial::fnv1a(w.data());
}

/// Identity of the timing configuration the artifact bakes in: the
/// pipeline schedule (cum_cycles), the branch model (static cycles and
/// the per-core lowering tables), the icache geometry (line groups) and
/// the extra leaders (block partition). Architecture fields the
/// artifact never reads (clock rate, dcache, memory map) are deliberately
/// excluded so boards differing only there still share one decode.
uint64_t configKey(const arch::ArchDescription& desc,
                   const std::vector<uint32_t>& extra_leaders) {
  serial::Writer w;
  w.b(desc.pipeline.dual_issue);
  w.u32(desc.pipeline.alu_latency);
  w.u32(desc.pipeline.mul_latency);
  w.u32(desc.pipeline.load_latency);
  w.u32(desc.branch.taken_predicted_extra);
  w.u32(desc.branch.mispredict_extra);
  w.u32(desc.branch.indirect_extra);
  w.b(desc.icache.enabled);
  w.u32(desc.icache.sets);
  w.u32(desc.icache.ways);
  w.u32(desc.icache.line_bytes);
  w.u32(desc.icache.miss_penalty);
  std::vector<uint32_t> leaders = extra_leaders;
  std::sort(leaders.begin(), leaders.end());
  leaders.erase(std::unique(leaders.begin(), leaders.end()), leaders.end());
  for (const uint32_t leader : leaders) {
    w.u32(leader);
  }
  return serial::fnv1a(w.data());
}

}  // namespace

ProgramArtifact::ProgramArtifact(const arch::ArchDescription& desc,
                                 const elf::Object& object,
                                 const std::vector<uint32_t>& extra_leaders)
    : graph_(BlockGraph::build(object, extra_leaders)),
      symbols_(object),
      branch_(desc.branch) {
  graph_.computeStaticCycles(desc);

  const std::vector<trc::Instr>& instrs = graph_.instrs();
  instr_by_addr_.reserve(instrs.size());
  for (size_t i = 0; i < instrs.size(); ++i) {
    instr_by_addr_.emplace(instrs[i].addr, static_cast<uint32_t>(i));
  }

  blocks_.reserve(graph_.blocks().size());
  for (const Block& b : graph_.blocks()) {
    StaticBlock sb;
    sb.addr = b.addr;
    sb.instrs.assign(graph_.begin(b), graph_.end(b));
    sb.target = b.target;
    sb.fall_through = b.fall_through;

    sb.cum_cycles.reserve(sb.instrs.size());
    arch::PipelineTimer timer(desc.pipeline);
    for (const trc::Instr& in : sb.instrs) {
      timer.issue(in.timedOp());
      sb.cum_cycles.push_back(static_cast<uint32_t>(timer.cycles()));
    }

    if (desc.icache.enabled) {
      sb.new_line.reserve(sb.instrs.size());
      sb.line_set.reserve(sb.instrs.size());
      sb.line_tag.reserve(sb.instrs.size());
      bool have_line = false;
      uint32_t last_line = 0;
      for (const trc::Instr& in : sb.instrs) {
        const uint32_t line = desc.icache.lineOf(in.addr);
        const bool starts_group = !have_line || line != last_line;
        have_line = true;
        last_line = line;
        sb.new_line.push_back(starts_group ? 1 : 0);
        sb.line_set.push_back(desc.icache.setOf(in.addr));
        sb.line_tag.push_back(
            arch::ICacheState::tagWord(desc.icache.tagOf(in.addr)));
      }
    }

    blocks_.push_back(std::move(sb));
  }

  fingerprint_ = computeFingerprint(graph_);
}

ProgramArtifactCache& ProgramArtifactCache::instance() {
  static ProgramArtifactCache cache;
  return cache;
}

std::shared_ptr<const ProgramArtifact> ProgramArtifactCache::acquire(
    const arch::ArchDescription& desc, const elf::Object& object,
    const std::vector<uint32_t>& extra_leaders) {
  const Key key{imageKey(object), configKey(desc, extra_leaders)};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (std::shared_ptr<const ProgramArtifact> live = it->second.lock()) {
      ++stats_.hits;
      return live;
    }
  }
  // Miss (or expired): decode under the lock, so N boards racing to
  // start on the same image still pay exactly one decode. Construction
  // is pure CPU work on immutable inputs; holding the mutex across it
  // trades a little startup parallelism for the decode-once guarantee.
  ++stats_.decodes;
  auto artifact =
      std::make_shared<const ProgramArtifact>(desc, object, extra_leaders);
  entries_[key] = artifact;
  // Opportunistic prune: drop entries whose artifact died (all users
  // gone), so a long fuzzing campaign's key set does not grow without
  // bound.
  for (auto e = entries_.begin(); e != entries_.end();) {
    e = e->second.expired() ? entries_.erase(e) : std::next(e);
  }
  return artifact;
}

ProgramArtifactCache::Stats ProgramArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ProgramArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [key, weak] : entries_) {
    live += weak.expired() ? 0 : 1;
  }
  return live;
}

void ProgramArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace cabt::core
