// Hashed edge-coverage bitmap over core::BlockGraph control flow — the
// coverage signal of the differential fuzzing farm (src/fuzz/,
// DESIGN.md section 13).
//
// An edge is an observed (from-block-leader, to-block-leader) transfer,
// recorded by the ISS at its block-boundary observability epoch — the
// same epoch that polls the PC sampler and the fault injector, so
// collection follows the observer determinism rule of section 11:
// strictly read-only, one null test per boundary when detached, and
// identical architectural state, IssStats, digests and bus traffic with
// coverage on or off (pinned by tests/fuzz_test.cpp).
//
// Edges are hashed AFL-style into a fixed bitmap rather than stored
// exactly: the fuzzer only needs a monotone "did this input light any
// bit we have never seen" signal, and a bitmap makes the corpus
// accumulator a word-wise OR. Collisions lose a little signal, never
// soundness. The map is sized so the random-program space of this
// repository (a few hundred blocks per image) stays far below
// saturation.
//
// Threading: one EdgeCoverage instance belongs to one core. Under the
// parallel-round kernel a core runs on exactly one thread at a time and
// the round barrier provides the happens-before handoff — the same
// contract as obs::PcSampler; no locking.
#pragma once

#include <cstdint>
#include <vector>

namespace cabt::core {

class EdgeCoverage {
 public:
  /// Bitmap size in bits (power of two; the hash masks into this).
  static constexpr uint32_t kBits = 1u << 16;

  EdgeCoverage() : bits_(kBits / 64, 0) {}

  /// Folds one observed control transfer into the map.
  void recordEdge(uint32_t from, uint32_t to) {
    const uint32_t i = edgeIndex(from, to);
    bits_[i >> 6] |= 1ull << (i & 63);
  }

  /// Number of distinct map bits set (the "coverage_bits" metric).
  [[nodiscard]] uint64_t bitsSet() const {
    uint64_t n = 0;
    for (const uint64_t w : bits_) {
      n += static_cast<uint64_t>(__builtin_popcountll(w));
    }
    return n;
  }

  /// Bits set in `other` that this map has never seen — the corpus
  /// admission test ("does this mutant reach anything new").
  [[nodiscard]] uint64_t newBits(const EdgeCoverage& other) const {
    uint64_t n = 0;
    for (size_t i = 0; i < bits_.size(); ++i) {
      n += static_cast<uint64_t>(__builtin_popcountll(other.bits_[i] &
                                                      ~bits_[i]));
    }
    return n;
  }

  /// ORs `other` into this map; returns how many bits were new.
  uint64_t merge(const EdgeCoverage& other) {
    uint64_t added = 0;
    for (size_t i = 0; i < bits_.size(); ++i) {
      const uint64_t fresh = other.bits_[i] & ~bits_[i];
      added += static_cast<uint64_t>(__builtin_popcountll(fresh));
      bits_[i] |= other.bits_[i];
    }
    return added;
  }

  void clear() { bits_.assign(bits_.size(), 0); }

  [[nodiscard]] const std::vector<uint64_t>& words() const { return bits_; }

  /// The hash: mixes both leader addresses so that (a,b) and (b,a) land
  /// apart and straight-line address deltas do not cluster.
  [[nodiscard]] static uint32_t edgeIndex(uint32_t from, uint32_t to) {
    uint32_t h = from * 0x9e3779b1u;
    h ^= (to + 0x165667b1u) * 0x85ebca77u;
    h ^= h >> 15;
    h *= 0xc2b2ae35u;
    h ^= h >> 13;
    return h & (kBits - 1);
  }

 private:
  std::vector<uint64_t> bits_;
};

}  // namespace cabt::core
