// Superblock (trace) formation over the predecoded block cache.
//
// A trace stitches a hot block and its dominant successors into one
// contiguous dispatch unit, in the style of a trace cache: the chain is
// chosen from the successor outcomes observed by chained dispatch
// (ExecBlock::taken_count / ft_count), flattened into concatenated
// instruction / schedule / line-group arrays, and guarded at every
// original block boundary by the next segment's entry address. The
// builder only decides *which* blocks to splice; the execution-time
// semantics (corrections at original boundaries, guard bails) live in
// the ISS dispatch engine.
#include "core/block_cache.h"

namespace cabt::core {

namespace {

/// The successor a trace would speculate on after `b`, or -1 when the
/// block must terminate the trace: indirect terminators resolve
/// dynamically, and a conditional branch without a strictly dominant
/// observed outcome gives the guard no better than coin-flip odds.
int32_t dominantSuccessor(const ExecBlock& b) {
  const trc::Instr& last = b.instrs().back();
  if (!last.isControlTransfer()) {
    return b.fall_through();
  }
  switch (last.cls()) {
    case arch::OpClass::kBranchUncond:
    case arch::OpClass::kCall:
      return b.target();
    case arch::OpClass::kBranchCond:
      // Extend through a conditional only when one outcome clearly
      // dominates (4:1): a near-balanced branch makes the guard fail so
      // often that the bail overhead eats the trace's gain.
      if (b.taken_count > 4 * b.ft_count) {
        return b.target();
      }
      if (b.ft_count > 4 * b.taken_count) {
        return b.fall_through();
      }
      return -1;
    default:
      return -1;  // indirect: successor is dynamic
  }
}

}  // namespace

int32_t BlockCache::formTrace(int32_t head, const TraceOptions& opts) {
  std::vector<int32_t> chain;
  chain.push_back(head);
  uint32_t total = static_cast<uint32_t>(blocks_[head].instrs().size());
  int32_t cur = head;
  while (chain.size() < opts.max_blocks) {
    const int32_t next = dominantSuccessor(blocks_[cur]);
    if (next < 0) {
      break;
    }
    // A revisited block is allowed (it unrolls hot loops into the
    // trace); breakpointed blocks are never spliced — dispatch must
    // reach them through the stepping fallback.
    const ExecBlock& nb = blocks_[next];
    if (nb.has_breakpoint != 0 ||
        total + nb.instrs().size() > opts.max_instrs) {
      break;
    }
    total += static_cast<uint32_t>(nb.instrs().size());
    chain.push_back(next);
    cur = next;
  }
  if (chain.size() < 2) {
    return kTraceDeclined;  // a single block gains nothing over chaining
  }

  Trace tr;
  tr.addr = blocks_[head].addr();
  tr.total_instrs = total;
  tr.instrs.reserve(total);
  tr.cum_cycles.reserve(total);
  tr.segs.reserve(chain.size());
  const bool have_lines = !blocks_[head].new_line().empty();
  if (have_lines) {
    tr.new_line.reserve(total);
    tr.line_set.reserve(total);
    tr.line_tag.reserve(total);
  }
  for (const int32_t idx : chain) {
    const ExecBlock& b = blocks_[idx];
    TraceSegment seg;
    seg.block = idx;
    seg.first = static_cast<uint32_t>(tr.instrs.size());
    seg.count = static_cast<uint32_t>(b.instrs().size());
    seg.entry_addr = b.addr();
    tr.segs.push_back(seg);
    tr.instrs.insert(tr.instrs.end(), b.instrs().begin(), b.instrs().end());
    tr.cum_cycles.insert(tr.cum_cycles.end(), b.cum_cycles().begin(),
                         b.cum_cycles().end());
    if (have_lines) {
      tr.new_line.insert(tr.new_line.end(), b.new_line().begin(),
                         b.new_line().end());
      tr.line_set.insert(tr.line_set.end(), b.line_set().begin(),
                         b.line_set().end());
      tr.line_tag.insert(tr.line_tag.end(), b.line_tag().begin(),
                         b.line_tag().end());
    }
  }
  traces_.push_back(std::move(tr));
  return static_cast<int32_t>(traces_.size() - 1);
}

}  // namespace cabt::core
