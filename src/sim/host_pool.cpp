#include "sim/host_pool.h"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cabt::sim {

namespace {
// 0 on any thread that never entered a pool worker loop (the dispatch /
// calling thread included); pool worker i runs with 1 + i.
thread_local unsigned t_worker_id = 0;
}  // namespace

unsigned currentWorkerId() { return t_worker_id; }

class HostPool::Impl {
 public:
  explicit Impl(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] {
        t_worker_id = i + 1;  // 0 stays the calling thread's id
        workerLoop();
      });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  void runAll(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      total_ = n;
      next_ = 0;
      live_ = n;
      error_ = nullptr;
    }
    work_cv_.notify_all();
    for (;;) {
      size_t task = 0;
      bool have = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (next_ < total_) {
          task = next_++;
          have = true;
        }
      }
      if (!have) {
        break;
      }
      runOne(fn, task);
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return live_ == 0; });
    fn_ = nullptr;
    if (error_ != nullptr) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  void runOne(const std::function<void(size_t)>& fn, size_t task) {
    std::exception_ptr error;
    try {
      fn(task);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (error != nullptr && error_ == nullptr) {
      error_ = error;
    }
    if (--live_ == 0) {
      done_cv_.notify_all();
    }
  }

  void workerLoop() {
    for (;;) {
      const std::function<void(size_t)>* fn = nullptr;
      size_t task = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] {
          return stopping_ || (fn_ != nullptr && next_ < total_);
        });
        if (stopping_) {
          return;
        }
        fn = fn_;
        task = next_++;
      }
      runOne(*fn, task);
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t total_ = 0;
  size_t next_ = 0;
  size_t live_ = 0;
  std::exception_ptr error_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

HostPool::HostPool(unsigned workers)
    : impl_(std::make_unique<Impl>(workers)) {}

HostPool::~HostPool() = default;

void HostPool::runAll(size_t n, const std::function<void(size_t)>& fn) {
  impl_->runAll(n, fn);
}

unsigned HostPool::workers() const { return impl_->workers(); }

}  // namespace cabt::sim
