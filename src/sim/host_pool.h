// Reusable host worker-thread pool with a batch barrier.
//
// Extracted from the event kernel's parallel-round pool so every
// host-side fan-out — the kernel's quantum-round process prefixes and
// the fleet driver's board scheduling (src/fleet) — shares one
// implementation and one worker-id convention. One batch = one
// runAll(n, fn) call: the workers *and* the calling thread pull indices
// until the batch is empty, and runAll returns only after every task
// finished (the barrier). The mutex hand-off establishes the
// happens-before edge that makes all task-side state visible to the
// caller after the barrier.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace cabt::sim {

/// Id of the pool worker the calling thread belongs to: 0 on any thread
/// that never entered a worker loop (a pool's calling thread included);
/// pool worker i runs with 1 + i. Observability sinks use it to pick a
/// per-thread lane.
unsigned currentWorkerId();

class HostPool {
 public:
  /// Spawns `workers` threads. Zero is valid: runAll degenerates to a
  /// plain sequential loop on the calling thread with no thread traffic
  /// at all (single-core hosts).
  explicit HostPool(unsigned workers);
  ~HostPool();

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  /// Runs fn(0) .. fn(n-1), distributed over the workers plus the
  /// calling thread, and returns after the last one completed. The
  /// first exception any task throws is rethrown here after the
  /// barrier. Not reentrant: one batch at a time per pool.
  void runAll(size_t n, const std::function<void(size_t)>& fn);

  /// Worker threads only (the calling thread participates too, so the
  /// effective parallelism of runAll is workers() + 1).
  [[nodiscard]] unsigned workers() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cabt::sim
