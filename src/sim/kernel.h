// Discrete-event simulation kernel with temporal decoupling.
//
// The paper's accelerated processor model is one component inside a
// SystemC SoC simulation (section 1, Fig. 1). This kernel plays the role
// of the SystemC scheduler for the reproduction, in the loosely-timed
// TLM-2.0 style that keeps binary-translation speed:
//
//   * one 64-bit cycle timebase (SoC cycles on the reference board, VLIW
//     cycles on the emulation platform — the kernel is unit-agnostic);
//   * an event queue dispatched in (time, insertion-order) order, so runs
//     are deterministic for a fixed configuration;
//   * processes that own *local* time and run ahead of global time by up
//     to one quantum before yielding back via sync() — temporal
//     decoupling. The scheduler always activates the process with the
//     smallest wake time, so no process ever observes another more than
//     one quantum behind it;
//   * triggered wake-ups via Event (the sc_event analogue) and one-shot
//     timed callbacks via schedule().
//
// Shared state (the SoC bus and its devices) advances *lazily* to a
// transaction's timestamp (soc::SocBus::advanceTo), so a process slice
// costs O(work), not O(cycles). With a single initiator the simulation is
// exactly quantum-invariant (checked by tests/sim_test.cpp); with
// multiple initiators the quantum bounds cross-core visibility latency —
// the speed/accuracy knob of bench_sim_quantum, generalizing the sync-
// rate ablation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/error.h"

namespace cabt::sim {

/// Kernel time, in cycles of the hosting platform's clock.
using Cycle = uint64_t;
inline constexpr Cycle kForever = ~static_cast<Cycle>(0);

class Kernel;

/// A schedulable process: anything that owns local time and runs in
/// quantum-bounded slices (a processor core, a DMA engine, a test stub).
class Process {
 public:
  explicit Process(std::string name) : name_(std::move(name)) {}
  virtual ~Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// One activation at the process's wake time. The body runs up to the
  /// kernel's quantum, then either calls kernel.sync(this, t) to yield
  /// until its local time t, waits on an Event, or returns without
  /// rescheduling to finish.
  virtual void activate(Kernel& kernel) = 0;

 private:
  std::string name_;
};

/// A fixed-period (clocked) process: tick() runs once per period until
/// stop(). Periods are in kernel cycles.
class ClockedProcess : public Process {
 public:
  ClockedProcess(std::string name, Cycle period)
      : Process(std::move(name)), period_(period) {
    CABT_CHECK(period_ >= 1, "clock period must be >= 1");
  }

  void activate(Kernel& kernel) final;
  virtual void tick(Kernel& kernel) = 0;

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] Cycle period() const { return period_; }

 private:
  Cycle period_;
  bool stopped_ = false;
};

/// A triggered wake-up source (the sc_event analogue): processes park on
/// it with wait(); notify(at) schedules every parked process at `at`.
class Event {
 public:
  Event(Kernel* kernel, std::string name);

  /// Parks `p` until the next notify(). A process may only wait from
  /// inside its own activate() (after which it must not also sync()).
  void wait(Process* p) { waiting_.push_back(p); }

  /// Wakes every parked process at absolute time `at` (clamped to the
  /// kernel's current time) and clears the wait list.
  void notify(Cycle at);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t numWaiting() const { return waiting_.size(); }

 private:
  Kernel* kernel_;
  std::string name_;
  std::vector<Process*> waiting_;
};

class Kernel {
 public:
  /// `quantum` is the temporal-decoupling window: how far a process may
  /// run ahead of global time before it must sync().
  explicit Kernel(Cycle quantum = 1024) : quantum_(quantum) {
    CABT_CHECK(quantum_ >= 1, "quantum must be >= 1");
  }

  [[nodiscard]] Cycle quantum() const { return quantum_; }
  void setQuantum(Cycle q) {
    CABT_CHECK(q >= 1, "quantum must be >= 1");
    quantum_ = q;
  }

  /// Global time: the timestamp of the event being (or last) dispatched.
  [[nodiscard]] Cycle now() const { return now_; }

  /// Registers a process and schedules its first activation at `start`.
  void addProcess(Process* p, Cycle start = 0) {
    CABT_CHECK(p != nullptr, "null process");
    push(start, p, {});
  }

  /// From inside activate(): yield and resume at absolute local time
  /// `at`. Times before now() are clamped (the process fell behind global
  /// time, e.g. after waiting on an event).
  void sync(Process* p, Cycle at) {
    CABT_CHECK(p != nullptr, "null process");
    push(at < now_ ? now_ : at, p, {});
  }

  /// One-shot timed callback (a degenerate triggered process).
  void schedule(Cycle at, std::function<void()> fn) {
    CABT_CHECK(fn != nullptr, "null callback");
    push(at < now_ ? now_ : at, nullptr, std::move(fn));
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Dispatches events in (time, insertion) order until the queue is
  /// empty or the next event lies beyond `limit`. Returns global time.
  Cycle run(Cycle limit = kForever);

  [[nodiscard]] uint64_t eventsDispatched() const { return dispatched_; }

 private:
  struct Ev {
    Cycle at = 0;
    uint64_t seq = 0;  ///< insertion order: deterministic tie-break
    Process* proc = nullptr;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void push(Cycle at, Process* proc, std::function<void()> fn) {
    queue_.push(Ev{at, seq_++, proc, std::move(fn)});
  }

  std::priority_queue<Ev, std::vector<Ev>, Later> queue_;
  Cycle now_ = 0;
  Cycle quantum_;
  uint64_t seq_ = 0;
  uint64_t dispatched_ = 0;
};

}  // namespace cabt::sim
