// Discrete-event simulation kernel with temporal decoupling.
//
// The paper's accelerated processor model is one component inside a
// SystemC SoC simulation (section 1, Fig. 1). This kernel plays the role
// of the SystemC scheduler for the reproduction, in the loosely-timed
// TLM-2.0 style that keeps binary-translation speed:
//
//   * one 64-bit cycle timebase (SoC cycles on the reference board, VLIW
//     cycles on the emulation platform — the kernel is unit-agnostic);
//   * an event queue dispatched in (time, insertion-order) order, so runs
//     are deterministic for a fixed configuration;
//   * processes that own *local* time and run ahead of global time by up
//     to one quantum before yielding back via sync() — temporal
//     decoupling. The scheduler always activates the process with the
//     smallest wake time, so no process ever observes another more than
//     one quantum behind it;
//   * triggered wake-ups via Event (the sc_event analogue) and one-shot
//     timed callbacks via schedule().
//
// Shared state (the SoC bus and its devices) advances *lazily* to a
// transaction's timestamp (soc::SocBus::advanceTo), so a process slice
// costs O(work), not O(cycles). With a single initiator the simulation is
// exactly quantum-invariant (checked by tests/sim_test.cpp); with
// multiple initiators the quantum bounds cross-core visibility latency —
// the speed/accuracy knob of bench_sim_quantum, generalizing the sync-
// rate ablation.
//
// Parallel rounds (ParallelConfig, DESIGN.md section 7): temporal
// decoupling makes processes independent *between* sync points, so the
// kernel can optionally run the private-footprint prefix of every
// upcoming quantum slice concurrently on a worker-thread pool, then
// finish the round with the exact sequential dispatch order — every
// shared-state touch (bus transaction, interrupt delivery) still happens
// at its sequential position, so the run is bit-identical to the
// sequential kernel by construction (tests/parallel_test.cpp proves it
// over the full scenario grid).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/serial.h"
#include "sim/host_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cabt::sim {

/// Identifies the prefix-runner thread the caller is on: 0 for the
/// dispatching (sequential) thread, 1 + i for pool worker i. Worker-side
/// observability code uses it to pick a trace lane
/// (obs::workerLane(currentWorkerId())). Declared in sim/host_pool.h —
/// the pool implementation is shared with the fleet driver.

/// Kernel time, in cycles of the hosting platform's clock.
using Cycle = uint64_t;
inline constexpr Cycle kForever = ~static_cast<Cycle>(0);

class Kernel;

/// A schedulable process: anything that owns local time and runs in
/// quantum-bounded slices (a processor core, a DMA engine, a test stub).
class Process {
 public:
  explicit Process(std::string name) : name_(std::move(name)) {}
  virtual ~Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// One activation at the process's wake time. The body runs up to the
  /// kernel's quantum, then either calls kernel.sync(this, t) to yield
  /// until its local time t, waits on an Event, or returns without
  /// rescheduling to finish.
  virtual void activate(Kernel& kernel) = 0;

  // -- parallel-round support (Kernel::ParallelConfig) ------------------
  //
  // A process that returns true from parallelReady() may have
  // parallelPrefix() invoked on a worker thread *before* its sequential
  // dispatch slot in the current round. The prefix must touch only
  // process-private state (it runs concurrently with other prefixes and
  // must stop — "bail" — just before the first access to anything
  // shared). The subsequent activate() runs at the normal sequential
  // slot, consumes the prefix and finishes whatever the prefix bailed
  // on. A ready process must have exactly one queued activation, and its
  // private state must not be mutated externally while a round is open.

  /// True when the process can speculatively run the private-footprint
  /// prefix of its next activation on a worker thread.
  [[nodiscard]] virtual bool parallelReady() const { return false; }

  /// Runs the private prefix of the next activation, up to `quantum`
  /// cycles of local time. Called on a worker thread; must not touch the
  /// kernel or any shared state.
  virtual void parallelPrefix(Cycle quantum) { (void)quantum; }

 private:
  std::string name_;
};

/// A fixed-period (clocked) process: tick() runs once per period until
/// stop(). Periods are in kernel cycles.
class ClockedProcess : public Process {
 public:
  ClockedProcess(std::string name, Cycle period)
      : Process(std::move(name)), period_(period) {
    CABT_CHECK(period_ >= 1, "clock period must be >= 1");
  }

  void activate(Kernel& kernel) final;
  virtual void tick(Kernel& kernel) = 0;

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }
  [[nodiscard]] Cycle period() const { return period_; }

 private:
  Cycle period_;
  bool stopped_ = false;
};

/// A triggered wake-up source (the sc_event analogue): processes park on
/// it with wait(); notify(at) schedules every parked process at `at`.
class Event {
 public:
  Event(Kernel* kernel, std::string name);

  /// Parks `p` until the next notify(). A process may only wait from
  /// inside its own activate() (after which it must not also sync()).
  void wait(Process* p) { waiting_.push_back(p); }

  /// Wakes every parked process at absolute time `at` (clamped to the
  /// kernel's current time) and clears the wait list.
  void notify(Cycle at);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t numWaiting() const { return waiting_.size(); }

 private:
  Kernel* kernel_;
  std::string name_;
  std::vector<Process*> waiting_;
};

class Kernel {
 public:
  /// Parallel execution mode: each round, the private-footprint prefixes
  /// of all parallel-ready processes whose activations fall inside the
  /// round window run concurrently on a pool of worker threads; the
  /// round then drains sequentially in the exact (time, insertion)
  /// dispatch order, so all shared-state traffic — and therefore the
  /// whole simulation — is bit-identical to the sequential kernel.
  struct ParallelConfig {
    bool enabled = false;
    /// Worker threads in the pool, capped at 16 (boards top out well
    /// below that; a wider pool would only idle). The dispatching
    /// thread also executes prefixes while it waits at the round
    /// barrier, so the effective width is min(workers, 16) + 1; 0 picks
    /// hardware_concurrency() - 1 (one prefix runner per host core,
    /// barrier included).
    unsigned workers = 0;
  };

  /// `quantum` is the temporal-decoupling window: how far a process may
  /// run ahead of global time before it must sync().
  explicit Kernel(Cycle quantum = 1024);  // out of line: HostPool is incomplete
  ~Kernel();                              // joins the worker pool

  [[nodiscard]] Cycle quantum() const { return quantum_; }
  void setQuantum(Cycle q) {
    CABT_CHECK(q >= 1, "quantum must be >= 1");
    quantum_ = q;
  }

  /// Selects sequential (the default) or parallel-round execution. Call
  /// before run(); the worker pool is created lazily on the first round
  /// that has more than one prefix to run.
  void setParallel(const ParallelConfig& config) { parallel_ = config; }
  [[nodiscard]] const ParallelConfig& parallel() const { return parallel_; }

  /// Global time: the timestamp of the event being (or last) dispatched.
  [[nodiscard]] Cycle now() const { return now_; }

  /// Registers a process and schedules its first activation at `start`.
  void addProcess(Process* p, Cycle start = 0) {
    CABT_CHECK(p != nullptr, "null process");
    push(start, p, {});
  }

  /// From inside activate(): yield and resume at absolute local time
  /// `at`. Times before now() are clamped (the process fell behind global
  /// time, e.g. after waiting on an event).
  void sync(Process* p, Cycle at) {
    CABT_CHECK(p != nullptr, "null process");
    push(at < now_ ? now_ : at, p, {});
  }

  /// One-shot timed callback (a degenerate triggered process).
  void schedule(Cycle at, std::function<void()> fn) {
    CABT_CHECK(fn != nullptr, "null callback");
    push(at < now_ ? now_ : at, nullptr, std::move(fn));
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Timestamp of the earliest pending event, or kForever when idle (the
  /// platform's checkpointing loop sizes its chunks from this).
  [[nodiscard]] Cycle nextEventAt() const {
    return queue_.empty() ? kForever : queue_.front().at;
  }

  /// Dispatches events in (time, insertion) order until the queue is
  /// empty or the next event lies beyond `limit`. Returns global time.
  /// With ParallelConfig enabled the dispatch order — and therefore the
  /// simulation — is unchanged; only private prefixes overlap.
  Cycle run(Cycle limit = kForever);

  [[nodiscard]] uint64_t eventsDispatched() const { return dispatched_; }
  /// Parallel-round accounting: rounds that ran at least one prefix, and
  /// total prefixes handed to the pool (the bench's utilisation signal).
  [[nodiscard]] uint64_t parallelRounds() const { return rounds_; }
  [[nodiscard]] uint64_t parallelPrefixes() const { return prefixes_; }

  // -- observability (src/obs, DESIGN.md section 11) --------------------

  /// Attaches a timeline sink; the kernel emits one "round" span on
  /// obs::kKernelLane per parallel round (after its sequential drain, so
  /// the emission itself is single-threaded). Pass nullptr to detach.
  /// Observers never feed back: attaching a sink cannot change dispatch.
  void setTraceSink(obs::TraceSink* sink) { trace_sink_ = sink; }

  /// Publishes the dispatch tallies under `prefix` (e.g. "board.kernel."):
  /// events_dispatched, parallel_rounds, parallel_prefixes counters plus
  /// now / queue_depth / quantum gauges.
  void publishMetrics(obs::MetricsRegistry& reg,
                      const std::string& prefix) const;

  // -- snapshot support (src/snap, DESIGN.md section 9) -----------------
  //
  // The queue holds the process phases of the platform: one pending
  // activation time per live process. Processes are identified through
  // the caller's mapping (the platform owns the process list and its
  // order); one-shot schedule() callbacks cannot be serialized, so a
  // queue holding one refuses to save. Snapshots are taken between run()
  // calls only — never inside a parallel round (no round is open then,
  // so no prefix state exists outside the queue).

  /// Saves global time, the dispatch counters and every queued event as
  /// (time, insertion-order, process index).
  void saveState(serial::Writer& w,
                 const std::function<uint32_t(Process*)>& index_of) const;

  /// Replaces the queue and clock with a saved image; `process_at` must
  /// invert the mapping save used.
  void restoreState(serial::Reader& r,
                    const std::function<Process*(uint32_t)>& process_at);

 private:
  struct Ev {
    Cycle at = 0;
    uint64_t seq = 0;  ///< insertion order: deterministic tie-break
    Process* proc = nullptr;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void push(Cycle at, Process* proc, std::function<void()> fn) {
    queue_.push_back(Ev{at, seq_++, proc, std::move(fn)});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
  }
  /// Dispatches the front event (pop-min in (time, insertion) order).
  void dispatchOne();
  Cycle runSequential(Cycle limit);
  Cycle runParallelRounds(Cycle limit);
  /// Runs the round's prefixes (on the pool when more than one).
  void runPrefixes(const std::vector<Process*>& ready);

  /// Min-heap over (at, seq) kept in a plain vector so the parallel
  /// round scheduler can scan the pending events without popping them.
  /// Heap layout is irrelevant to behaviour: dispatch order is the
  /// comparator's total order either way.
  std::vector<Ev> queue_;
  Cycle now_ = 0;
  Cycle quantum_;
  uint64_t seq_ = 0;
  uint64_t dispatched_ = 0;
  ParallelConfig parallel_;
  std::unique_ptr<HostPool> pool_;  // shared worker-pool impl (host_pool.h)
  uint64_t rounds_ = 0;
  uint64_t prefixes_ = 0;
  obs::TraceSink* trace_sink_ = nullptr;  ///< never serialized
};

}  // namespace cabt::sim
