#include "sim/kernel.h"

namespace cabt::sim {

void ClockedProcess::activate(Kernel& kernel) {
  if (stopped_) {
    return;
  }
  tick(kernel);
  if (!stopped_) {
    kernel.sync(this, kernel.now() + period_);
  }
}

Event::Event(Kernel* kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
  CABT_CHECK(kernel_ != nullptr, "event needs a kernel");
}

void Event::notify(Cycle at) {
  for (Process* p : waiting_) {
    kernel_->sync(p, at);
  }
  waiting_.clear();
}

Cycle Kernel::run(Cycle limit) {
  while (!queue_.empty() && queue_.top().at <= limit) {
    Ev ev = queue_.top();
    queue_.pop();
    if (ev.at > now_) {
      now_ = ev.at;
    }
    ++dispatched_;
    if (ev.proc != nullptr) {
      ev.proc->activate(*this);
    } else {
      ev.fn();
    }
  }
  return now_;
}

}  // namespace cabt::sim
