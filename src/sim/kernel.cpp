#include "sim/kernel.h"

#include <thread>

#include "sim/host_pool.h"

namespace cabt::sim {

void ClockedProcess::activate(Kernel& kernel) {
  if (stopped_) {
    return;
  }
  tick(kernel);
  if (!stopped_) {
    kernel.sync(this, kernel.now() + period_);
  }
}

Event::Event(Kernel* kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
  CABT_CHECK(kernel_ != nullptr, "event needs a kernel");
}

void Event::notify(Cycle at) {
  for (Process* p : waiting_) {
    kernel_->sync(p, at);
  }
  waiting_.clear();
}

Kernel::Kernel(Cycle quantum) : quantum_(quantum) {
  CABT_CHECK(quantum_ >= 1, "quantum must be >= 1");
}

Kernel::~Kernel() = default;

void Kernel::saveState(
    serial::Writer& w,
    const std::function<uint32_t(Process*)>& index_of) const {
  w.tag("kernel");
  w.u64(now_);
  w.u64(quantum_);
  w.u64(seq_);
  w.u64(dispatched_);
  w.u64(rounds_);
  w.u64(prefixes_);
  // Canonical event order (the comparator's total order), so the bytes
  // do not depend on the incidental heap layout.
  std::vector<Ev> sorted;
  sorted.reserve(queue_.size());
  for (const Ev& ev : queue_) {
    CABT_CHECK(ev.proc != nullptr,
               "cannot snapshot a kernel holding schedule() callbacks");
    sorted.push_back(Ev{ev.at, ev.seq, ev.proc, {}});
  }
  std::sort(sorted.begin(), sorted.end(), [](const Ev& a, const Ev& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  });
  w.u32(static_cast<uint32_t>(sorted.size()));
  for (const Ev& ev : sorted) {
    w.u64(ev.at);
    w.u64(ev.seq);
    w.u32(index_of(ev.proc));
  }
}

void Kernel::restoreState(
    serial::Reader& r,
    const std::function<Process*(uint32_t)>& process_at) {
  r.tag("kernel");
  now_ = r.u64();
  const uint64_t quantum = r.u64();
  CABT_CHECK(quantum == quantum_,
             "snapshot quantum " << quantum << " does not match this "
                                 << "kernel's " << quantum_);
  seq_ = r.u64();
  dispatched_ = r.u64();
  rounds_ = r.u64();
  prefixes_ = r.u64();
  queue_.clear();
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    Ev ev;
    ev.at = r.u64();
    ev.seq = r.u64();
    ev.proc = process_at(r.u32());
    CABT_CHECK(ev.proc != nullptr, "snapshot names an unknown process");
    queue_.push_back(std::move(ev));
  }
  std::make_heap(queue_.begin(), queue_.end(), Later{});
}

void Kernel::dispatchOne() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Ev ev = std::move(queue_.back());
  queue_.pop_back();
  if (ev.at > now_) {
    now_ = ev.at;
  }
  ++dispatched_;
  if (ev.proc != nullptr) {
    ev.proc->activate(*this);
  } else {
    ev.fn();
  }
}

Cycle Kernel::run(Cycle limit) {
  return parallel_.enabled ? runParallelRounds(limit) : runSequential(limit);
}

Cycle Kernel::runSequential(Cycle limit) {
  while (!queue_.empty() && queue_.front().at <= limit) {
    dispatchOne();
  }
  return now_;
}

void Kernel::runPrefixes(const std::vector<Process*>& ready) {
  if (ready.empty()) {
    return;
  }
  ++rounds_;
  prefixes_ += ready.size();
  if (ready.size() == 1) {
    ready.front()->parallelPrefix(quantum_);
    return;
  }
  if (pool_ == nullptr) {
    unsigned workers = parallel_.workers;
    if (workers == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      workers = hw > 1 ? hw - 1 : 0;  // the caller is a prefix runner too
    }
    pool_ = std::make_unique<HostPool>(std::min(workers, 16u));
  }
  // One round = one barriered batch of quantum-bounded prefixes; the
  // mutex hand-off inside the pool makes all prefix state visible to
  // the sequential drain that follows.
  pool_->runAll(ready.size(),
                [&ready, this](size_t i) { ready[i]->parallelPrefix(quantum_); });
}

Cycle Kernel::runParallelRounds(Cycle limit) {
  std::vector<Process*> ready;
  while (!queue_.empty() && queue_.front().at <= limit) {
    // One round: [start, start + quantum). Every process syncs at least
    // one quantum ahead of its activation time, so each participates in
    // at most one activation per round and a prefix run now is consumed
    // by an activation in this round's drain (prefixes are only taken
    // from events at <= limit, which the drain is guaranteed to reach).
    const Cycle start = queue_.front().at;
    const Cycle round_end =
        start > kForever - quantum_ ? kForever : start + quantum_;
    ready.clear();
    for (const Ev& ev : queue_) {
      if (ev.proc == nullptr || ev.at >= round_end || ev.at > limit ||
          !ev.proc->parallelReady()) {
        continue;
      }
      // Defensive de-dup: a process with several queued activations runs
      // one prefix only (the first activation consumes it).
      if (std::find(ready.begin(), ready.end(), ev.proc) == ready.end()) {
        ready.push_back(ev.proc);
      }
    }
    runPrefixes(ready);
    // Sequential drain: the exact pop-min order of the sequential
    // kernel, including events pushed while draining that still fall
    // inside this round's window.
    while (!queue_.empty() && queue_.front().at < round_end &&
           queue_.front().at <= limit) {
      dispatchOne();
    }
    if (trace_sink_ != nullptr) {
      // After the drain, on the dispatch thread: direct emission is the
      // sequential path the sink's threading contract requires.
      const Cycle span_end = round_end == kForever ? now_ : round_end;
      trace_sink_->complete(obs::kKernelLane, "round", start,
                            span_end > start ? span_end - start : 0,
                            "prefixes", ready.size());
    }
    if (round_end == kForever) {
      break;  // the window was unbounded: everything already drained
    }
  }
  return now_;
}

void Kernel::publishMetrics(obs::MetricsRegistry& reg,
                            const std::string& prefix) const {
  reg.setCounter(prefix + "events_dispatched", dispatched_);
  reg.setCounter(prefix + "parallel_rounds", rounds_);
  reg.setCounter(prefix + "parallel_prefixes", prefixes_);
  reg.setGauge(prefix + "now", static_cast<double>(now_));
  reg.setGauge(prefix + "queue_depth", static_cast<double>(queue_.size()));
  reg.setGauge(prefix + "quantum", static_cast<double>(quantum_));
}

}  // namespace cabt::sim
