// Static program analysis helpers over a TRC32 ELF image.
//
// The assembler emits pure code in .text (no inline data), so a linear
// sweep decodes every instruction exactly once. Leaders (basic-block start
// addresses) are shared knowledge between the translator's basic-block
// builder and the reference ISS: the TRC32 pipeline drains at every
// control transfer and at every static branch target (DESIGN.md).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "elf/elf.h"
#include "trc/isa.h"

namespace cabt::trc {

/// Decodes the whole .text section in address order.
std::vector<Instr> decodeText(const elf::Object& object);

/// Basic-block leader addresses: the entry point, every direct branch /
/// call target, and every address following a control transfer.
std::set<uint32_t> findLeaders(const elf::Object& object,
                               const std::vector<Instr>& instrs);

/// Convenience overload that decodes internally.
std::set<uint32_t> findLeaders(const elf::Object& object);

}  // namespace cabt::trc
