#include "trc/assembler.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "common/bits.h"
#include "common/error.h"
#include "common/strutil.h"
#include "trc/isa.h"

namespace cabt::trc {
namespace {

enum class SectionId { kText, kData, kBss };

struct Statement {
  int line = 0;
  SectionId section = SectionId::kText;
  uint32_t offset = 0;  ///< offset within its section
  bool is_directive = false;
  std::string head;                       ///< mnemonic or directive name
  std::vector<std::string> operands;      ///< raw operand strings
  uint32_t size = 0;
};

struct MemOperand {
  uint8_t base = 0;
  std::string offset_expr;  ///< may be empty (offset 0)
};

/// Parses "d7" / "a11" style register names; returns bank+number.
std::optional<std::pair<char, uint8_t>> parseReg(std::string_view s) {
  if (s.size() < 2 || s.size() > 3) {
    return std::nullopt;
  }
  const char bank = static_cast<char>(std::tolower(s[0]));
  if (bank != 'd' && bank != 'a') {
    return std::nullopt;
  }
  int n = 0;
  for (char c : s.substr(1)) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    n = n * 10 + (c - '0');
  }
  if (n > 15) {
    return std::nullopt;
  }
  return std::make_pair(bank, static_cast<uint8_t>(n));
}

class Assembler {
 public:
  explicit Assembler(const AsmOptions& opts) : opts_(opts) {}

  elf::Object run(std::string_view source) {
    parse(source);
    layout();
    emit();
    return finish();
  }

 private:
  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw Error("assembler: line " + std::to_string(line) + ": " + msg);
  }

  // ---- pass 1: parse + size -------------------------------------------

  void parse(std::string_view source) {
    int line_no = 0;
    SectionId section = SectionId::kText;
    for (std::string_view raw : split(source, '\n')) {
      ++line_no;
      // Strip comments (';' or '#'), but not inside string literals.
      std::string_view line = raw;
      bool in_str = false;
      for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"') {
          in_str = !in_str;
        } else if (!in_str && (line[i] == ';' || line[i] == '#')) {
          line = line.substr(0, i);
          break;
        }
      }
      line = trim(line);
      // Leading labels (possibly several).
      while (true) {
        const size_t colon = line.find(':');
        if (colon == std::string_view::npos) {
          break;
        }
        const std::string_view label = trim(line.substr(0, colon));
        if (!isIdentifier(label)) {
          break;  // not a label - e.g. ':' inside an operand (none today)
        }
        pending_labels_.emplace_back(std::string(label), line_no);
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) {
        continue;
      }

      Statement st;
      st.line = line_no;
      st.section = section;
      const size_t sp = line.find_first_of(" \t");
      st.head = toLower(sp == std::string_view::npos ? line
                                                     : line.substr(0, sp));
      const std::string_view rest =
          sp == std::string_view::npos ? std::string_view{}
                                       : trim(line.substr(sp + 1));
      st.is_directive = st.head.front() == '.';

      if (st.is_directive) {
        if (st.head == ".text") {
          section = SectionId::kText;
          attachLabels(section);
          continue;
        }
        if (st.head == ".data") {
          section = SectionId::kData;
          attachLabels(section);
          continue;
        }
        if (st.head == ".bss") {
          section = SectionId::kBss;
          attachLabels(section);
          continue;
        }
        if (st.head == ".ascii") {
          st.operands.emplace_back(rest);
        } else {
          for (std::string_view op : splitOperands(rest)) {
            st.operands.emplace_back(op);
          }
        }
        st.size = directiveSize(st, sectionOffset(section));
        if (st.head == ".global") {
          continue;  // accepted for compatibility; all labels are global
        }
      } else {
        for (std::string_view op : splitOperands(rest)) {
          st.operands.emplace_back(op);
        }
        const OpInfo* info = opInfoByMnemonic(st.head);
        if (info == nullptr) {
          fail(line_no, "unknown mnemonic '" + st.head + "'");
        }
        st.size = is16Bit(info->opc) ? 2 : 4;
        if (section != SectionId::kText) {
          fail(line_no, "instruction outside .text");
        }
      }
      attachLabels(section);
      st.offset = sectionOffset(section);
      sectionOffset(section) += st.size;
      statements_.push_back(std::move(st));
    }
    attachLabels(section);
  }

  uint32_t& sectionOffset(SectionId s) {
    return offsets_[static_cast<size_t>(s)];
  }

  void attachLabels(SectionId section) {
    for (auto& [name, line] : pending_labels_) {
      if (labels_.count(name) != 0) {
        fail(line, "duplicate label '" + name + "'");
      }
      labels_[name] = {section, sectionOffset(section)};
    }
    pending_labels_.clear();
  }

  uint32_t directiveSize(const Statement& st, uint32_t offset) {
    if (st.head == ".word") {
      return 4 * static_cast<uint32_t>(st.operands.size());
    }
    if (st.head == ".half") {
      return 2 * static_cast<uint32_t>(st.operands.size());
    }
    if (st.head == ".byte") {
      return static_cast<uint32_t>(st.operands.size());
    }
    if (st.head == ".space") {
      if (st.operands.size() != 1) {
        fail(st.line, ".space needs one operand");
      }
      return static_cast<uint32_t>(parseInt(st.operands[0]));
    }
    if (st.head == ".align") {
      if (st.operands.size() != 1) {
        fail(st.line, ".align needs one operand");
      }
      const auto align = static_cast<uint32_t>(parseInt(st.operands[0]));
      if (!isPowerOfTwo(align)) {
        fail(st.line, ".align operand must be a power of two");
      }
      return alignUp(offset, align) - offset;
    }
    if (st.head == ".ascii") {
      return static_cast<uint32_t>(parseStringLiteral(st).size());
    }
    if (st.head == ".global") {
      return 0;
    }
    fail(st.line, "unknown directive '" + st.head + "'");
  }

  std::string parseStringLiteral(const Statement& st) const {
    if (st.operands.size() != 1) {
      fail(st.line, ".ascii needs one string operand");
    }
    std::string_view s = trim(st.operands[0]);
    if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
      fail(st.line, ".ascii operand must be a double-quoted string");
    }
    s = s.substr(1, s.size() - 2);
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case '0': out.push_back('\0'); break;
          case '\\': out.push_back('\\'); break;
          case '"': out.push_back('"'); break;
          default: fail(st.line, "unknown escape in string");
        }
      } else {
        out.push_back(s[i]);
      }
    }
    return out;
  }

  // ---- layout ----------------------------------------------------------

  void layout() {
    text_base_ = opts_.text_base;
    data_base_ = opts_.data_base;
    bss_base_ = alignUp(data_base_ + sectionOffset(SectionId::kData), 16);
  }

  uint32_t sectionBase(SectionId s) const {
    switch (s) {
      case SectionId::kText: return text_base_;
      case SectionId::kData: return data_base_;
      case SectionId::kBss: return bss_base_;
    }
    CABT_FAIL("bad section");
  }

  uint32_t labelAddress(const std::string& name, int line) const {
    const auto it = labels_.find(name);
    if (it == labels_.end()) {
      fail(line, "undefined symbol '" + name + "'");
    }
    return sectionBase(it->second.first) + it->second.second;
  }

  // ---- expressions -----------------------------------------------------

  int64_t evalExpr(std::string_view expr, int line) const {
    size_t pos = 0;
    const int64_t v = evalSum(expr, pos, line);
    if (pos != expr.size()) {
      fail(line, "trailing characters in expression '" + std::string(expr) +
                     "'");
    }
    return v;
  }

  int64_t evalSum(std::string_view e, size_t& pos, int line) const {
    int64_t v = evalPrimary(e, pos, line);
    for (;;) {
      skipSpace(e, pos);
      if (pos < e.size() && (e[pos] == '+' || e[pos] == '-')) {
        const char op = e[pos++];
        const int64_t rhs = evalPrimary(e, pos, line);
        v = op == '+' ? v + rhs : v - rhs;
      } else {
        return v;
      }
    }
  }

  static void skipSpace(std::string_view e, size_t& pos) {
    while (pos < e.size() &&
           std::isspace(static_cast<unsigned char>(e[pos])) != 0) {
      ++pos;
    }
  }

  int64_t evalPrimary(std::string_view e, size_t& pos, int line) const {
    skipSpace(e, pos);
    if (pos >= e.size()) {
      fail(line, "expected expression");
    }
    if (e[pos] == '-' || std::isdigit(static_cast<unsigned char>(e[pos]))) {
      size_t end = pos + 1;
      while (end < e.size() &&
             (std::isalnum(static_cast<unsigned char>(e[end])) != 0 ||
              e[end] == '_')) {
        ++end;
      }
      const int64_t v = parseInt(e.substr(pos, end - pos));
      pos = end;
      return v;
    }
    // identifier, or hi(...)/lo(...)
    size_t end = pos;
    while (end < e.size() &&
           (std::isalnum(static_cast<unsigned char>(e[end])) != 0 ||
            e[end] == '_' || e[end] == '.')) {
      ++end;
    }
    const std::string name = toLower(e.substr(pos, end - pos));
    size_t after = end;
    skipSpace(e, after);
    if ((name == "hi" || name == "lo") && after < e.size() &&
        e[after] == '(') {
      pos = after + 1;
      const int64_t inner = evalSum(e, pos, line);
      skipSpace(e, pos);
      if (pos >= e.size() || e[pos] != ')') {
        fail(line, "missing ')' in " + name + "()");
      }
      ++pos;
      const auto v = static_cast<uint32_t>(inner);
      return name == "hi" ? static_cast<int64_t>(hi16(v))
                          : static_cast<int64_t>(lo16(v));
    }
    const std::string ident(trim(e.substr(pos, end - pos)));
    pos = end;
    return labelAddress(ident, line);
  }

  // ---- pass 2: emit ----------------------------------------------------

  void emit() {
    text_.clear();
    data_.clear();
    for (const Statement& st : statements_) {
      std::vector<uint8_t>* buf = nullptr;
      switch (st.section) {
        case SectionId::kText: buf = &text_; break;
        case SectionId::kData: buf = &data_; break;
        case SectionId::kBss: buf = nullptr; break;
      }
      if (st.section == SectionId::kBss) {
        if (!st.is_directive ||
            (st.head != ".space" && st.head != ".align")) {
          fail(st.line, "only .space/.align are allowed in .bss");
        }
        continue;
      }
      while (buf->size() < st.offset) {
        buf->push_back(0);
      }
      if (st.is_directive) {
        emitDirective(st, *buf);
      } else {
        emitInstruction(st, *buf);
      }
    }
  }

  void emitDirective(const Statement& st, std::vector<uint8_t>& buf) {
    const auto putLe = [&buf](uint64_t v, unsigned bytes) {
      for (unsigned i = 0; i < bytes; ++i) {
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
      }
    };
    if (st.head == ".word" || st.head == ".half" || st.head == ".byte") {
      const unsigned width =
          st.head == ".word" ? 4 : (st.head == ".half" ? 2 : 1);
      for (const std::string& op : st.operands) {
        const int64_t v = evalExpr(op, st.line);
        putLe(static_cast<uint64_t>(v), width);
      }
    } else if (st.head == ".space" || st.head == ".align") {
      if (st.section == SectionId::kText) {
        // Text padding must stay decodable: fill with 16-bit NOPs.
        if (st.size % 2 != 0) {
          fail(st.line, "text padding must be halfword sized");
        }
        for (uint32_t i = 0; i < st.size; i += 2) {
          buf.push_back(0x02);  // nop16 encoding
          buf.push_back(0x00);
        }
      } else {
        for (uint32_t i = 0; i < st.size; ++i) {
          buf.push_back(0);
        }
      }
    } else if (st.head == ".ascii") {
      for (char c : parseStringLiteral(st)) {
        buf.push_back(static_cast<uint8_t>(c));
      }
    }
  }

  uint8_t regOperand(const Statement& st, size_t idx, char bank) const {
    if (idx >= st.operands.size()) {
      fail(st.line, "missing operand " + std::to_string(idx + 1));
    }
    const auto r = parseReg(trim(st.operands[idx]));
    if (!r || r->first != bank) {
      fail(st.line, "operand " + std::to_string(idx + 1) + " must be a " +
                        std::string(1, bank) + "-register, got '" +
                        st.operands[idx] + "'");
    }
    return r->second;
  }

  int32_t immOperand(const Statement& st, size_t idx) const {
    if (idx >= st.operands.size()) {
      fail(st.line, "missing immediate operand");
    }
    return static_cast<int32_t>(evalExpr(st.operands[idx], st.line));
  }

  MemOperand memOperand(const Statement& st, size_t idx) const {
    if (idx >= st.operands.size()) {
      fail(st.line, "missing memory operand");
    }
    std::string_view s = trim(st.operands[idx]);
    if (s.empty() || s.front() != '[') {
      fail(st.line, "memory operand must look like [aN]offset");
    }
    const size_t close = s.find(']');
    if (close == std::string_view::npos) {
      fail(st.line, "missing ']' in memory operand");
    }
    const auto r = parseReg(trim(s.substr(1, close - 1)));
    if (!r || r->first != 'a') {
      fail(st.line, "memory base must be an a-register");
    }
    MemOperand mem;
    mem.base = r->second;
    mem.offset_expr = std::string(trim(s.substr(close + 1)));
    return mem;
  }

  int32_t branchDisp(const Statement& st, size_t idx, uint32_t addr) const {
    const int64_t target = evalExpr(st.operands.at(idx), st.line);
    const int64_t delta = target - static_cast<int64_t>(addr);
    if ((delta & 1) != 0) {
      fail(st.line, "branch target is not halfword aligned");
    }
    return static_cast<int32_t>(delta / 2);
  }

  void emitInstruction(const Statement& st, std::vector<uint8_t>& buf) {
    const OpInfo& info = *opInfoByMnemonic(st.head);
    const uint32_t addr = text_base_ + st.offset;
    Instr instr;
    instr.opc = info.opc;
    instr.addr = addr;
    instr.size = static_cast<uint8_t>(st.size);

    const auto expectOperands = [&](size_t n) {
      if (st.operands.size() != n) {
        fail(st.line, st.head + " expects " + std::to_string(n) +
                          " operand(s), got " +
                          std::to_string(st.operands.size()));
      }
    };

    switch (info.fmt) {
      case Format::kRRR:
        expectOperands(3);
        instr.rd = regOperand(st, 0, 'd');
        instr.ra = regOperand(st, 1, 'd');
        instr.rb = regOperand(st, 2, 'd');
        break;
      case Format::kAAA:
        expectOperands(3);
        instr.rd = regOperand(st, 0, 'a');
        instr.ra = regOperand(st, 1, 'a');
        instr.rb = regOperand(st, 2, 'a');
        break;
      case Format::kRRI:
        expectOperands(3);
        instr.rd = regOperand(st, 0, 'd');
        instr.ra = regOperand(st, 1, 'd');
        instr.imm = immOperand(st, 2);
        break;
      case Format::kRI:
        expectOperands(2);
        instr.rd = regOperand(st, 0, 'd');
        instr.imm = immOperand(st, 1);
        break;
      case Format::kAI:
        expectOperands(2);
        instr.rd = regOperand(st, 0, 'a');
        instr.imm = immOperand(st, 1);
        break;
      case Format::kALI:
        expectOperands(3);
        instr.rd = regOperand(st, 0, 'a');
        instr.ra = regOperand(st, 1, 'a');
        instr.imm = immOperand(st, 2);
        break;
      case Format::kMovA:
        expectOperands(2);
        instr.rd = regOperand(st, 0, 'a');
        instr.ra = regOperand(st, 1, 'd');
        break;
      case Format::kMovD:
        expectOperands(2);
        instr.rd = regOperand(st, 0, 'd');
        instr.ra = regOperand(st, 1, 'a');
        break;
      case Format::kMem: {
        expectOperands(2);
        const char bank =
            info.opc == Opc::kLda || info.opc == Opc::kSta ? 'a' : 'd';
        instr.rd = regOperand(st, 0, bank);
        const MemOperand mem = memOperand(st, 1);
        instr.ra = mem.base;
        instr.imm = mem.offset_expr.empty()
                        ? 0
                        : static_cast<int32_t>(
                              evalExpr(mem.offset_expr, st.line));
        break;
      }
      case Format::kBrCC:
        expectOperands(3);
        instr.ra = regOperand(st, 0, 'd');
        instr.rb = regOperand(st, 1, 'd');
        instr.imm = branchDisp(st, 2, addr);
        break;
      case Format::kJ:
      case Format::k16J:
        expectOperands(1);
        instr.imm = branchDisp(st, 0, addr);
        break;
      case Format::kJI:
        expectOperands(1);
        instr.ra = regOperand(st, 0, 'a');
        break;
      case Format::kNone:
      case Format::k16None:
        expectOperands(0);
        break;
      case Format::k16RR:
        expectOperands(2);
        instr.rd = regOperand(st, 0, 'd');
        instr.rb = regOperand(st, 1, 'd');
        break;
      case Format::k16RI:
        expectOperands(2);
        instr.rd = regOperand(st, 0, 'd');
        instr.imm = immOperand(st, 1);
        break;
      case Format::k16BR:
        expectOperands(2);
        instr.rd = regOperand(st, 0, 'd');
        instr.imm = branchDisp(st, 1, addr);
        break;
    }

    std::vector<uint8_t> bytes;
    try {
      bytes = encode(instr);
    } catch (const Error& e) {
      fail(st.line, e.what());
    }
    buf.insert(buf.end(), bytes.begin(), bytes.end());
  }

  // ---- output ----------------------------------------------------------

  elf::Object finish() {
    elf::Object obj;
    obj.machine = elf::Machine::kTrc32;

    elf::Section text;
    text.name = ".text";
    text.addr = text_base_;
    text.executable = true;
    text.align = 4;
    text.data = std::move(text_);
    obj.sections.push_back(std::move(text));

    if (!data_.empty()) {
      elf::Section data;
      data.name = ".data";
      data.addr = data_base_;
      data.writable = true;
      data.align = 4;
      data.data = std::move(data_);
      obj.sections.push_back(std::move(data));
    }
    if (sectionOffset(SectionId::kBss) > 0) {
      elf::Section bss;
      bss.name = ".bss";
      bss.kind = elf::SectionKind::kNobits;
      bss.addr = bss_base_;
      bss.writable = true;
      bss.align = 4;
      bss.mem_size = offsets_[static_cast<size_t>(SectionId::kBss)];
      obj.sections.push_back(std::move(bss));
    }

    for (const auto& [name, loc] : labels_) {
      elf::Symbol sym;
      sym.name = name;
      sym.value = sectionBase(loc.first) + loc.second;
      sym.section = loc.first == SectionId::kText ? 0 : -1;
      obj.symbols.push_back(std::move(sym));
    }

    const auto entry = labels_.find(opts_.entry_symbol);
    obj.entry = entry != labels_.end()
                    ? sectionBase(entry->second.first) + entry->second.second
                    : text_base_;
    return obj;
  }

  AsmOptions opts_;
  std::vector<Statement> statements_;
  std::vector<std::pair<std::string, int>> pending_labels_;
  std::map<std::string, std::pair<SectionId, uint32_t>> labels_;
  uint32_t offsets_[3] = {0, 0, 0};
  uint32_t text_base_ = 0, data_base_ = 0, bss_base_ = 0;
  std::vector<uint8_t> text_;
  std::vector<uint8_t> data_;

  uint32_t sectionOffset(SectionId s) const {
    return offsets_[static_cast<size_t>(s)];
  }
};

}  // namespace

elf::Object assemble(std::string_view source, const AsmOptions& opts) {
  Assembler assembler(opts);
  return assembler.run(source);
}

}  // namespace cabt::trc
