// Two-pass TRC32 assembler.
//
// The paper's toolflow consumes object code produced by a C compiler; this
// repository's workloads are written in TRC32 assembly instead (see
// DESIGN.md substitution table) and assembled into the same ELF32 images
// the translator consumes.
//
// Syntax:
//   label:   instruction ; comment          ('#' also starts a comment)
//   Sections: .text .data .bss  — base addresses come from AsmOptions.
//   Data:     .word e[, e...]  .half  .byte  .space N  .align N  .ascii "s"
//   Misc:     .global name (accepted, all labels are global)
//   Operands: d0..d15, a0..a15, immediates, [aN]offset memory refs,
//             expressions over labels: sym, sym+4, hi(sym), lo(sym).
//   hi()/lo() follow the carry-adjusted convention so that
//   movha aX, hi(sym) ; lea aX, aX, lo(sym) materialises sym exactly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "elf/elf.h"

namespace cabt::trc {

struct AsmOptions {
  uint32_t text_base = 0x8000'0000;
  uint32_t data_base = 0xd000'0000;
  /// Entry point symbol; falls back to the text base when absent.
  std::string entry_symbol = "_start";
};

/// Assembles TRC32 source into an executable ELF32 object.
/// Throws cabt::Error with a line number on any syntax or range error.
elf::Object assemble(std::string_view source, const AsmOptions& opts = {});

/// hi/lo immediate helpers (exposed for tests and the translator).
constexpr uint32_t hi16(uint32_t value) { return (value + 0x8000u) >> 16; }
constexpr int32_t lo16(uint32_t value) {
  return static_cast<int32_t>(static_cast<int16_t>(value & 0xffffu));
}

}  // namespace cabt::trc
