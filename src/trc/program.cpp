#include "trc/program.h"

#include "common/error.h"
#include "common/strutil.h"

namespace cabt::trc {

std::vector<Instr> decodeText(const elf::Object& object) {
  const elf::Section* text = object.findSection(".text");
  CABT_CHECK(text != nullptr, "object has no .text section");
  std::vector<Instr> out;
  uint32_t off = 0;
  while (off < text->data.size()) {
    Instr instr = decode(text->data.data() + off, text->data.size() - off,
                         text->addr + off);
    off += instr.size;
    out.push_back(instr);
  }
  return out;
}

std::set<uint32_t> findLeaders(const elf::Object& object,
                               const std::vector<Instr>& instrs) {
  std::set<uint32_t> leaders;
  leaders.insert(object.entry);
  for (const Instr& instr : instrs) {
    if (!instr.isControlTransfer()) {
      continue;
    }
    // The instruction after any control transfer starts a block.
    leaders.insert(instr.addr + instr.size);
    // Direct targets; indirect targets are return addresses, which are
    // already leaders via the post-call rule.
    if (instr.cls() != arch::OpClass::kBranchInd) {
      leaders.insert(instr.branchTarget());
    }
  }
  // Drop leaders outside .text (e.g. the address right after the final
  // instruction).
  const elf::Section* text = object.findSection(".text");
  std::set<uint32_t> inside;
  for (uint32_t leader : leaders) {
    if (text->contains(leader)) {
      inside.insert(leader);
    }
  }
  return inside;
}

std::set<uint32_t> findLeaders(const elf::Object& object) {
  return findLeaders(object, decodeText(object));
}

}  // namespace cabt::trc
