#include "trc/isa.h"

#include <array>
#include <map>

#include "common/bits.h"
#include "common/error.h"
#include "common/strutil.h"

namespace cabt::trc {
namespace {

using arch::OpClass;

/// Builds the opcode table. 32-bit primary opcodes and 16-bit opcodes are
/// numbered independently, starting at 1 (0 = invalid encoding).
std::array<OpInfo, static_cast<size_t>(Opc::kOpcCount)> buildTable() {
  std::array<OpInfo, static_cast<size_t>(Opc::kOpcCount)> table{};
  uint8_t next32 = 1;
  uint8_t next16 = 1;
  const auto add = [&](Opc opc, std::string_view mnemonic, Format fmt,
                       OpClass cls) {
    const bool narrow = fmt == Format::k16None || fmt == Format::k16RR ||
                        fmt == Format::k16RI || fmt == Format::k16BR ||
                        fmt == Format::k16J;
    OpInfo info;
    info.opc = opc;
    info.mnemonic = mnemonic;
    info.fmt = fmt;
    info.cls = cls;
    info.encoding = narrow ? next16++ : next32++;
    table[static_cast<size_t>(opc)] = info;
  };

  add(Opc::kAdd, "add", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kSub, "sub", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kAnd, "and", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kOr, "or", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kXor, "xor", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kShl, "shl", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kShr, "shr", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kSar, "sar", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kMul, "mul", Format::kRRR, OpClass::kMul);
  add(Opc::kEq, "eq", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kNe, "ne", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kLt, "lt", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kGe, "ge", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kLtu, "ltu", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kGeu, "geu", Format::kRRR, OpClass::kIpAlu);
  add(Opc::kAddi, "addi", Format::kRRI, OpClass::kIpAlu);
  add(Opc::kMovi, "movi", Format::kRI, OpClass::kIpAlu);
  add(Opc::kMovh, "movh", Format::kRI, OpClass::kIpAlu);
  add(Opc::kMova, "mova", Format::kMovA, OpClass::kLsAlu);
  add(Opc::kMovd, "movd", Format::kMovD, OpClass::kLsAlu);
  add(Opc::kLea, "lea", Format::kALI, OpClass::kLsAlu);
  add(Opc::kMovha, "movha", Format::kAI, OpClass::kLsAlu);
  add(Opc::kAdda, "adda", Format::kAAA, OpClass::kLsAlu);
  add(Opc::kSuba, "suba", Format::kAAA, OpClass::kLsAlu);
  add(Opc::kLdw, "ldw", Format::kMem, OpClass::kLoad);
  add(Opc::kLdh, "ldh", Format::kMem, OpClass::kLoad);
  add(Opc::kLdhu, "ldhu", Format::kMem, OpClass::kLoad);
  add(Opc::kLdb, "ldb", Format::kMem, OpClass::kLoad);
  add(Opc::kLdbu, "ldbu", Format::kMem, OpClass::kLoad);
  add(Opc::kLda, "lda", Format::kMem, OpClass::kLoad);
  add(Opc::kStw, "stw", Format::kMem, OpClass::kStore);
  add(Opc::kSth, "sth", Format::kMem, OpClass::kStore);
  add(Opc::kStb, "stb", Format::kMem, OpClass::kStore);
  add(Opc::kSta, "sta", Format::kMem, OpClass::kStore);
  add(Opc::kJ, "j", Format::kJ, OpClass::kBranchUncond);
  add(Opc::kJl, "jl", Format::kJ, OpClass::kCall);
  add(Opc::kJi, "ji", Format::kJI, OpClass::kBranchInd);
  add(Opc::kJeq, "jeq", Format::kBrCC, OpClass::kBranchCond);
  add(Opc::kJne, "jne", Format::kBrCC, OpClass::kBranchCond);
  add(Opc::kJlt, "jlt", Format::kBrCC, OpClass::kBranchCond);
  add(Opc::kJge, "jge", Format::kBrCC, OpClass::kBranchCond);
  add(Opc::kJltu, "jltu", Format::kBrCC, OpClass::kBranchCond);
  add(Opc::kJgeu, "jgeu", Format::kBrCC, OpClass::kBranchCond);
  add(Opc::kNop, "nop", Format::kNone, OpClass::kNop);
  add(Opc::kHalt, "halt", Format::kNone, OpClass::kHalt);
  add(Opc::kBkpt, "bkpt", Format::kNone, OpClass::kNop);
  add(Opc::kNop16, "nop16", Format::k16None, OpClass::kNop);
  add(Opc::kMov16, "mov16", Format::k16RR, OpClass::kIpAlu);
  add(Opc::kAdd16, "add16", Format::k16RR, OpClass::kIpAlu);
  add(Opc::kSub16, "sub16", Format::k16RR, OpClass::kIpAlu);
  add(Opc::kMovi16, "movi16", Format::k16RI, OpClass::kIpAlu);
  add(Opc::kAddi16, "addi16", Format::k16RI, OpClass::kIpAlu);
  add(Opc::kJnz16, "jnz16", Format::k16BR, OpClass::kBranchCond);
  add(Opc::kJz16, "jz16", Format::k16BR, OpClass::kBranchCond);
  add(Opc::kJ16, "j16", Format::k16J, OpClass::kBranchUncond);
  add(Opc::kRet16, "ret16", Format::k16None, OpClass::kBranchInd);
  return table;
}

const std::array<OpInfo, static_cast<size_t>(Opc::kOpcCount)>& table() {
  static const auto t = buildTable();
  return t;
}

}  // namespace

const OpInfo& opInfo(Opc opc) {
  CABT_ASSERT(opc != Opc::kInvalid && opc != Opc::kOpcCount,
              "opInfo on invalid opcode");
  return table()[static_cast<size_t>(opc)];
}

const OpInfo* opInfoByMnemonic(std::string_view mnemonic) {
  static const auto* by_name = [] {
    auto* m = new std::map<std::string, const OpInfo*, std::less<>>();
    for (const OpInfo& info : table()) {
      if (info.opc != Opc::kInvalid) {
        (*m)[std::string(info.mnemonic)] = &table()[static_cast<size_t>(
            info.opc)];
      }
    }
    return m;
  }();
  const auto it = by_name->find(mnemonic);
  return it == by_name->end() ? nullptr : it->second;
}

const std::vector<Opc>& allOpcodes() {
  static const auto* opcodes = [] {
    auto* v = new std::vector<Opc>();
    for (const OpInfo& info : table()) {
      if (info.opc != Opc::kInvalid) {
        v->push_back(info.opc);
      }
    }
    return v;
  }();
  return *opcodes;
}

bool is16Bit(Opc opc) {
  switch (opInfo(opc).fmt) {
    case Format::k16None:
    case Format::k16RR:
    case Format::k16RI:
    case Format::k16BR:
    case Format::k16J:
      return true;
    default:
      return false;
  }
}

arch::TimedOp Instr::timedOp() const {
  arch::TimedOp t;
  t.cls = cls();
  switch (info().fmt) {
    case Format::kRRR:
      t.dst = unifiedD(rd);
      t.src1 = unifiedD(ra);
      t.src2 = unifiedD(rb);
      break;
    case Format::kRRI:
      t.dst = unifiedD(rd);
      t.src1 = unifiedD(ra);
      break;
    case Format::kRI:
      t.dst = unifiedD(rd);
      break;
    case Format::kAI:
      t.dst = unifiedA(rd);
      break;
    case Format::kALI:
      t.dst = unifiedA(rd);
      t.src1 = unifiedA(ra);
      break;
    case Format::kAAA:
      t.dst = unifiedA(rd);
      t.src1 = unifiedA(ra);
      t.src2 = unifiedA(rb);
      break;
    case Format::kMovA:
      t.dst = unifiedA(rd);
      t.src1 = unifiedD(ra);
      break;
    case Format::kMovD:
      t.dst = unifiedD(rd);
      t.src1 = unifiedA(ra);
      break;
    case Format::kMem:
      if (cls() == OpClass::kStore) {
        t.src1 = opc == Opc::kSta ? unifiedA(rd) : unifiedD(rd);
        t.src2 = unifiedA(ra);
      } else {
        t.dst = opc == Opc::kLda ? unifiedA(rd) : unifiedD(rd);
        t.src1 = unifiedA(ra);
      }
      break;
    case Format::kBrCC:
      t.src1 = unifiedD(ra);
      t.src2 = unifiedD(rb);
      break;
    case Format::kJ:
      if (opc == Opc::kJl) {
        t.dst = unifiedA(kLinkRegister);
      }
      break;
    case Format::kJI:
      t.src1 = unifiedA(ra);
      break;
    case Format::kNone:
    case Format::k16None:
      if (opc == Opc::kRet16) {
        t.src1 = unifiedA(kLinkRegister);
      }
      break;
    case Format::k16RR:
      t.dst = unifiedD(rd);
      t.src1 = unifiedD(rb);
      if (opc != Opc::kMov16) {
        t.src2 = unifiedD(rd);  // add16/sub16 also read the destination
      }
      break;
    case Format::k16RI:
      t.dst = unifiedD(rd);
      if (opc == Opc::kAddi16) {
        t.src1 = unifiedD(rd);
      }
      break;
    case Format::k16BR:
      t.src1 = unifiedD(rd);
      break;
    case Format::k16J:
      break;
  }
  return t;
}

namespace {

void checkReg(uint8_t r, std::string_view what) {
  CABT_CHECK(r < 16, "register field " << what << " out of range: " << int{r});
}

}  // namespace

std::vector<uint8_t> encode(const Instr& instr) {
  const OpInfo& info = instr.info();
  if (is16Bit(instr.opc)) {
    uint32_t h = 0;  // bit 0 = 0 marks a 16-bit encoding
    h = insertField(h, 1, 4, info.encoding);
    switch (info.fmt) {
      case Format::k16None:
        break;
      case Format::k16RR:
        checkReg(instr.rd, "rd");
        checkReg(instr.rb, "rb");
        h = insertField(h, 5, 4, instr.rd);
        h = insertField(h, 9, 4, instr.rb);
        break;
      case Format::k16RI:
        checkReg(instr.rd, "rd");
        CABT_CHECK(fitsSigned(instr.imm, 7),
                   "immediate " << instr.imm << " does not fit simm7");
        h = insertField(h, 5, 4, instr.rd);
        h = insertField(h, 9, 7, static_cast<uint32_t>(instr.imm));
        break;
      case Format::k16BR:
        checkReg(instr.rd, "rd");
        CABT_CHECK(fitsSigned(instr.imm, 7),
                   "branch displacement " << instr.imm
                                          << " does not fit disp7");
        h = insertField(h, 5, 4, instr.rd);
        h = insertField(h, 9, 7, static_cast<uint32_t>(instr.imm));
        break;
      case Format::k16J:
        CABT_CHECK(fitsSigned(instr.imm, 11),
                   "branch displacement " << instr.imm
                                          << " does not fit disp11");
        h = insertField(h, 5, 11, static_cast<uint32_t>(instr.imm));
        break;
      default:
        CABT_FAIL("format mismatch for 16-bit opcode");
    }
    return {static_cast<uint8_t>(h), static_cast<uint8_t>(h >> 8)};
  }

  uint32_t w = 1;  // bit 0 = 1 marks a 32-bit encoding
  w = insertField(w, 1, 7, info.encoding);
  const auto imm16 = [&](bool is_signed) {
    if (is_signed) {
      CABT_CHECK(fitsSigned(instr.imm, 16),
                 "immediate " << instr.imm << " does not fit simm16 in "
                              << info.mnemonic);
    } else {
      CABT_CHECK(instr.imm >= 0 && fitsUnsigned(
                     static_cast<uint64_t>(instr.imm), 16),
                 "immediate " << instr.imm << " does not fit uimm16 in "
                              << info.mnemonic);
    }
    w = insertField(w, 16, 16, static_cast<uint32_t>(instr.imm));
  };
  switch (info.fmt) {
    case Format::kRRR:
    case Format::kAAA:
      checkReg(instr.rd, "rd");
      checkReg(instr.ra, "ra");
      checkReg(instr.rb, "rb");
      w = insertField(w, 8, 4, instr.rd);
      w = insertField(w, 12, 4, instr.ra);
      w = insertField(w, 16, 4, instr.rb);
      break;
    case Format::kMovA:
    case Format::kMovD:
      checkReg(instr.rd, "rd");
      checkReg(instr.ra, "ra");
      w = insertField(w, 8, 4, instr.rd);
      w = insertField(w, 12, 4, instr.ra);
      break;
    case Format::kRRI:
    case Format::kALI:
    case Format::kMem:
      checkReg(instr.rd, "rd");
      checkReg(instr.ra, "ra");
      w = insertField(w, 8, 4, instr.rd);
      w = insertField(w, 12, 4, instr.ra);
      imm16(true);
      break;
    case Format::kRI:
      checkReg(instr.rd, "rd");
      w = insertField(w, 8, 4, instr.rd);
      imm16(instr.opc == Opc::kMovi);
      break;
    case Format::kAI:
      checkReg(instr.rd, "rd");
      w = insertField(w, 8, 4, instr.rd);
      imm16(false);
      break;
    case Format::kBrCC:
      checkReg(instr.ra, "ra");
      checkReg(instr.rb, "rb");
      w = insertField(w, 8, 4, instr.ra);
      w = insertField(w, 12, 4, instr.rb);
      CABT_CHECK(fitsSigned(instr.imm, 16),
                 "branch displacement " << instr.imm << " does not fit disp16");
      w = insertField(w, 16, 16, static_cast<uint32_t>(instr.imm));
      break;
    case Format::kJ:
      CABT_CHECK(fitsSigned(instr.imm, 24),
                 "branch displacement " << instr.imm << " does not fit disp24");
      w = insertField(w, 8, 24, static_cast<uint32_t>(instr.imm));
      break;
    case Format::kJI:
      checkReg(instr.ra, "ra");
      w = insertField(w, 8, 4, instr.ra);
      break;
    case Format::kNone:
      break;
    default:
      CABT_FAIL("format mismatch for 32-bit opcode");
  }
  return {static_cast<uint8_t>(w), static_cast<uint8_t>(w >> 8),
          static_cast<uint8_t>(w >> 16), static_cast<uint8_t>(w >> 24)};
}

namespace {

/// Reverse lookup: encoding value -> opcode, per width.
const OpInfo* findByEncoding(uint8_t encoding, bool narrow) {
  for (const Opc opc : allOpcodes()) {
    const OpInfo& info = opInfo(opc);
    if (info.encoding == encoding && is16Bit(opc) == narrow) {
      return &info;
    }
  }
  return nullptr;
}

}  // namespace

Instr decode(const uint8_t* bytes, size_t available, uint32_t addr) {
  CABT_CHECK(available >= 2, "truncated instruction at " << hex32(addr));
  const uint32_t h0 = static_cast<uint32_t>(bytes[0]) |
                      (static_cast<uint32_t>(bytes[1]) << 8);
  Instr instr;
  instr.addr = addr;
  if ((h0 & 1u) == 0) {
    instr.size = 2;
    const OpInfo* info = findByEncoding(
        static_cast<uint8_t>(bitField(h0, 1, 4)), /*narrow=*/true);
    CABT_CHECK(info != nullptr, "unknown 16-bit opcode at " << hex32(addr));
    instr.opc = info->opc;
    switch (info->fmt) {
      case Format::k16None:
        break;
      case Format::k16RR:
        instr.rd = static_cast<uint8_t>(bitField(h0, 5, 4));
        instr.rb = static_cast<uint8_t>(bitField(h0, 9, 4));
        break;
      case Format::k16RI:
      case Format::k16BR:
        instr.rd = static_cast<uint8_t>(bitField(h0, 5, 4));
        instr.imm = signExtend(bitField(h0, 9, 7), 7);
        break;
      case Format::k16J:
        instr.imm = signExtend(bitField(h0, 5, 11), 11);
        break;
      default:
        CABT_FAIL("format mismatch in 16-bit decode");
    }
    return instr;
  }

  CABT_CHECK(available >= 4, "truncated 32-bit instruction at " << hex32(addr));
  const uint32_t w = h0 | (static_cast<uint32_t>(bytes[2]) << 16) |
                     (static_cast<uint32_t>(bytes[3]) << 24);
  instr.size = 4;
  const OpInfo* info = findByEncoding(
      static_cast<uint8_t>(bitField(w, 1, 7)), /*narrow=*/false);
  CABT_CHECK(info != nullptr, "unknown 32-bit opcode at " << hex32(addr));
  instr.opc = info->opc;
  switch (info->fmt) {
    case Format::kRRR:
    case Format::kAAA:
      instr.rd = static_cast<uint8_t>(bitField(w, 8, 4));
      instr.ra = static_cast<uint8_t>(bitField(w, 12, 4));
      instr.rb = static_cast<uint8_t>(bitField(w, 16, 4));
      break;
    case Format::kMovA:
    case Format::kMovD:
      instr.rd = static_cast<uint8_t>(bitField(w, 8, 4));
      instr.ra = static_cast<uint8_t>(bitField(w, 12, 4));
      break;
    case Format::kRRI:
    case Format::kALI:
    case Format::kMem:
      instr.rd = static_cast<uint8_t>(bitField(w, 8, 4));
      instr.ra = static_cast<uint8_t>(bitField(w, 12, 4));
      instr.imm = signExtend(bitField(w, 16, 16), 16);
      break;
    case Format::kRI:
      instr.rd = static_cast<uint8_t>(bitField(w, 8, 4));
      instr.imm = instr.opc == Opc::kMovi
                      ? signExtend(bitField(w, 16, 16), 16)
                      : static_cast<int32_t>(bitField(w, 16, 16));
      break;
    case Format::kAI:
      instr.rd = static_cast<uint8_t>(bitField(w, 8, 4));
      instr.imm = static_cast<int32_t>(bitField(w, 16, 16));
      break;
    case Format::kBrCC:
      instr.ra = static_cast<uint8_t>(bitField(w, 8, 4));
      instr.rb = static_cast<uint8_t>(bitField(w, 12, 4));
      instr.imm = signExtend(bitField(w, 16, 16), 16);
      break;
    case Format::kJ:
      instr.imm = signExtend(bitField(w, 8, 24), 24);
      break;
    case Format::kJI:
      instr.ra = static_cast<uint8_t>(bitField(w, 8, 4));
      break;
    case Format::kNone:
      break;
    default:
      CABT_FAIL("format mismatch in 32-bit decode");
  }
  return instr;
}

std::string disassemble(const Instr& instr) {
  const OpInfo& info = instr.info();
  std::string out(info.mnemonic);
  const auto reg = [](char bank, int n) {
    return std::string(1, bank) + std::to_string(n);
  };
  const auto target = [&instr] { return hex32(instr.branchTarget()); };
  switch (info.fmt) {
    case Format::kRRR:
      out += " " + reg('d', instr.rd) + ", " + reg('d', instr.ra) + ", " +
             reg('d', instr.rb);
      break;
    case Format::kAAA:
      out += " " + reg('a', instr.rd) + ", " + reg('a', instr.ra) + ", " +
             reg('a', instr.rb);
      break;
    case Format::kRRI:
      out += " " + reg('d', instr.rd) + ", " + reg('d', instr.ra) + ", " +
             std::to_string(instr.imm);
      break;
    case Format::kRI:
      out += " " + reg('d', instr.rd) + ", " + std::to_string(instr.imm);
      break;
    case Format::kAI:
      out += " " + reg('a', instr.rd) + ", " + std::to_string(instr.imm);
      break;
    case Format::kALI:
      out += " " + reg('a', instr.rd) + ", " + reg('a', instr.ra) + ", " +
             std::to_string(instr.imm);
      break;
    case Format::kMovA:
      out += " " + reg('a', instr.rd) + ", " + reg('d', instr.ra);
      break;
    case Format::kMovD:
      out += " " + reg('d', instr.rd) + ", " + reg('a', instr.ra);
      break;
    case Format::kMem: {
      const char bank =
          instr.opc == Opc::kLda || instr.opc == Opc::kSta ? 'a' : 'd';
      out += " " + reg(bank, instr.rd) + ", [" + reg('a', instr.ra) + "]" +
             std::to_string(instr.imm);
      break;
    }
    case Format::kBrCC:
      out += " " + reg('d', instr.ra) + ", " + reg('d', instr.rb) + ", " +
             target();
      break;
    case Format::kJ:
    case Format::k16J:
      out += " " + target();
      break;
    case Format::kJI:
      out += " " + reg('a', instr.ra);
      break;
    case Format::kNone:
    case Format::k16None:
      break;
    case Format::k16RR:
      out += " " + reg('d', instr.rd) + ", " + reg('d', instr.rb);
      break;
    case Format::k16RI:
      out += " " + reg('d', instr.rd) + ", " + std::to_string(instr.imm);
      break;
    case Format::k16BR:
      out += " " + reg('d', instr.rd) + ", " + target();
      break;
  }
  return out;
}

}  // namespace cabt::trc
