// TRC32 instruction set definition.
//
// TRC32 is the TriCore-v1.3-flavoured source ISA of this reproduction
// (see DESIGN.md): 16 data registers D0..D15, 16 address registers
// A0..A15 (A10 = stack pointer, A11 = link register by convention), and
// mixed 16/32-bit instruction encodings. Bit 0 of the first halfword
// selects the width (1 = 32-bit), as in TriCore.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "arch/arch.h"
#include "arch/timing.h"

namespace cabt::trc {

/// Architectural register counts and conventions.
constexpr int kNumDataRegs = 16;
constexpr int kNumAddrRegs = 16;
constexpr int kStackPointer = 10;  ///< A10
constexpr int kLinkRegister = 11;  ///< A11

/// Unified register numbering used for timing and dataflow:
/// 0..15 = D0..D15, 16..31 = A0..A15.
constexpr int unifiedD(int d) { return d; }
constexpr int unifiedA(int a) { return 16 + a; }

/// Every TRC32 opcode. The *16 variants are 16-bit encodings.
enum class Opc : uint8_t {
  kInvalid = 0,
  // 32-bit data ALU (format RRR unless noted).
  kAdd, kSub, kAnd, kOr, kXor, kShl, kShr, kSar,
  kMul,                        // multiply, longer result latency
  kEq, kNe, kLt, kGe, kLtu, kGeu,  // compare into a data register
  kAddi,                       // RRI: Dd = Da + simm16
  kMovi,                       // RI: Dd = simm16
  kMovh,                       // RI: Dd = uimm16 << 16
  // 32-bit address ALU.
  kMova,                       // Ad = Db
  kMovd,                       // Dd = Ab
  kLea,                        // Ad = Ab + simm16
  kMovha,                      // Ad = uimm16 << 16
  kAdda, kSuba,                // Ad = Aa op Ab
  // Loads and stores: [Ab]simm16.
  kLdw, kLdh, kLdhu, kLdb, kLdbu,
  kLda,                        // load into an address register
  kStw, kSth, kStb,
  kSta,                        // store from an address register
  // Control transfer. Displacements are halfword counts relative to the
  // instruction address.
  kJ,                          // unconditional, disp24
  kJl,                         // call: A11 = return address, disp24
  kJi,                         // indirect jump via Aa (return)
  kJeq, kJne, kJlt, kJge, kJltu, kJgeu,  // conditional, Da ? Db, disp16
  // System.
  kNop, kHalt, kBkpt,
  // 16-bit encodings.
  kNop16, kMov16, kAdd16, kSub16,  // Dd (op)= Db
  kMovi16, kAddi16,                // Dd (op)= simm7
  kJnz16, kJz16,                   // Dd ?= 0, disp7
  kJ16,                            // disp11
  kRet16,                          // JI A11
  kOpcCount,
};

/// Encoding format of an opcode.
enum class Format : uint8_t {
  kRRR,    ///< Dd, Da, Db
  kRRI,    ///< Dd, Da, simm16
  kRI,     ///< Dd, imm16
  kAI,     ///< Ad, uimm16
  kALI,    ///< Ad, Ab, simm16
  kAAA,    ///< Ad, Aa, Ab
  kMovA,   ///< Ad, Db
  kMovD,   ///< Dd, Ab
  kMem,    ///< Rd, [Ab]simm16 (Rd is D or A depending on opcode)
  kBrCC,   ///< Da, Db, disp16
  kJ,      ///< disp24
  kJI,     ///< Aa
  kNone,   ///< no operands
  k16None, ///< 16-bit, no operands
  k16RR,   ///< 16-bit Dd, Db
  k16RI,   ///< 16-bit Dd, simm7
  k16BR,   ///< 16-bit Dd, disp7
  k16J,    ///< 16-bit disp11
};

/// Static description of one opcode.
struct OpInfo {
  Opc opc = Opc::kInvalid;
  std::string_view mnemonic;
  Format fmt = Format::kNone;
  arch::OpClass cls = arch::OpClass::kIpAlu;
  uint8_t encoding = 0;  ///< primary opcode field value
};

/// Table lookup helpers.
const OpInfo& opInfo(Opc opc);
const OpInfo* opInfoByMnemonic(std::string_view mnemonic);
/// All opcodes in declaration order (excludes kInvalid/kOpcCount).
const std::vector<Opc>& allOpcodes();

/// True for 16-bit encodings.
bool is16Bit(Opc opc);

/// One decoded instruction.
struct Instr {
  Opc opc = Opc::kInvalid;
  uint8_t rd = 0;   ///< destination register field (source reg for stores)
  uint8_t ra = 0;   ///< first source / base register field
  uint8_t rb = 0;   ///< second source register field
  int32_t imm = 0;  ///< immediate; for branches: displacement in halfwords
  uint32_t addr = 0;
  uint8_t size = 0;  ///< 2 or 4 bytes

  [[nodiscard]] const OpInfo& info() const { return opInfo(opc); }
  [[nodiscard]] arch::OpClass cls() const { return info().cls; }
  [[nodiscard]] bool isControlTransfer() const {
    return arch::isControlTransfer(cls());
  }
  /// Branch target for direct control transfers.
  [[nodiscard]] uint32_t branchTarget() const {
    return addr + static_cast<uint32_t>(imm * 2);
  }
  /// Operands in the unified timing numbering (see arch::TimedOp).
  [[nodiscard]] arch::TimedOp timedOp() const;
};

/// Encodes an instruction; returns 2 or 4 bytes (little-endian).
/// Throws cabt::Error when a field is out of range.
std::vector<uint8_t> encode(const Instr& instr);

/// Decodes the instruction at `addr` from `bytes` (little-endian stream
/// starting at that instruction). Throws on unknown encodings.
Instr decode(const uint8_t* bytes, size_t available, uint32_t addr);

/// Formats an instruction as assembly text (round-trips through the
/// assembler).
std::string disassemble(const Instr& instr);

}  // namespace cabt::trc
