// Cycle-accurate V6X simulator.
//
// Models the VLIW target exactly as the translator's scheduler assumes it:
// one execute packet per cycle, no interlocks (ALU results next cycle,
// multiply +1, loads +4, branches redirect after 5 delay slots), reads see
// the committed register state of the current cycle, predicated ops read
// their condition register in the same cycle. Memory-mapped hardware
// (synchronization device, bus bridge) is plugged in via IoHandler; a
// handler can refuse an access, which stalls the whole machine for that
// cycle (this is how "wait for end of cycle generation" behaves).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/sparse_mem.h"
#include "elf/elf.h"
#include "vliw/isa.h"

namespace cabt::vliw {

/// Memory-mapped hardware hook. ready() may be polled once per stall
/// cycle; load()/store() are called exactly once, in the cycle the access
/// completes.
class IoHandler {
 public:
  virtual ~IoHandler() = default;
  [[nodiscard]] virtual bool covers(uint32_t addr) const = 0;
  virtual bool ready(uint32_t addr, bool is_write) = 0;
  virtual uint32_t load(uint32_t addr, unsigned size) = 0;
  virtual void store(uint32_t addr, uint32_t value, unsigned size) = 0;
};

enum class RunState {
  kRunning,
  kHalted,
  kYielded,     ///< YIELD executed; resumable
  kBreakpoint,  ///< stopped before a breakpointed packet; resumable
  kMaxCycles,
};

struct SimStats {
  uint64_t cycles = 0;        ///< wall cycles including stalls
  uint64_t issue_cycles = 0;  ///< packet-issue slots (incl. NOP padding)
  uint64_t packets = 0;
  uint64_t ops = 0;           ///< machine ops issued (predicated-false incl.)
  uint64_t nop_cycles = 0;
  uint64_t stall_cycles = 0;
  uint64_t branches_taken = 0;
};

class V6xSim {
 public:
  V6xSim();

  /// Loads a V6X ELF image: .text is decoded into execute packets, all
  /// other PROGBITS sections are copied to memory.
  void loadProgram(const elf::Object& image);

  /// Registers a memory-mapped hardware window (not owned).
  void addIoHandler(IoHandler* handler);

  /// Called once per wall cycle, before anything else — the platform uses
  /// this to clock the synchronization device.
  void setCycleHook(std::function<void()> hook) { hook_ = std::move(hook); }

  /// Runs until HALT / YIELD / breakpoint / cycle limit.
  RunState run(uint64_t max_cycles = UINT64_MAX);

  /// Resumes over a breakpoint (issues the breakpointed packet).
  RunState resume(uint64_t max_cycles = UINT64_MAX);

  void addBreakpoint(uint32_t addr) { breakpoints_.insert(addr); }
  void removeBreakpoint(uint32_t addr) { breakpoints_.erase(addr); }

  [[nodiscard]] uint32_t reg(uint8_t r) const { return regs_.at(r); }
  void setReg(uint8_t r, uint32_t v) { regs_.at(r) = v; }
  [[nodiscard]] uint32_t pc() const { return pc_; }
  void setPc(uint32_t pc);
  [[nodiscard]] RunState state() const { return state_; }

  [[nodiscard]] SparseMemory& memory() { return mem_; }
  [[nodiscard]] const SparseMemory& memory() const { return mem_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Packet>& packets() const { return packets_; }

 private:
  struct PendingWrite {
    uint64_t due = 0;  ///< issue-slot index when the value commits
    uint8_t reg = 0;
    uint32_t value = 0;
  };

  [[nodiscard]] const Packet& fetch(uint32_t addr) const;
  [[nodiscard]] IoHandler* handlerFor(uint32_t addr) const;
  /// True when every device access in the packet can complete this cycle.
  bool devicesReady(const Packet& packet);
  void commitDueWrites();
  void drainPipeline();
  void scheduleWrite(uint8_t reg, uint32_t value, unsigned extra_slots);
  void issuePacket(const Packet& packet);
  void postIssueSlot();

  std::vector<Packet> packets_;
  std::map<uint32_t, size_t> packet_at_;
  std::vector<IoHandler*> handlers_;
  std::function<void()> hook_;
  SparseMemory mem_;

  std::array<uint32_t, 64> regs_{};
  uint32_t pc_ = 0;
  RunState state_ = RunState::kRunning;

  std::vector<PendingWrite> pending_;
  bool branch_pending_ = false;
  uint32_t branch_target_ = 0;
  unsigned branch_remaining_ = 0;
  unsigned idle_cycles_ = 0;  ///< remaining cycles of a multi-cycle NOP

  std::set<uint32_t> breakpoints_;
  bool step_over_breakpoint_ = false;

  SimStats stats_;
};

}  // namespace cabt::vliw
