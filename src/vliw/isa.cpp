#include "vliw/isa.h"

#include <array>

#include "common/bits.h"
#include "common/strutil.h"

namespace cabt::vliw {

std::string regName(uint8_t reg) {
  CABT_ASSERT(reg < 64, "bad register id " << int{reg});
  return std::string(1, isFileB(reg) ? 'b' : 'a') +
         std::to_string(fileIndex(reg));
}

std::string Unit::name() const {
  static const char* kKindNames = "lsmd";
  return std::string(1, kKindNames[static_cast<int>(kind)]) +
         std::to_string(side + 1);
}

uint8_t Pred::regId() const {
  switch (reg) {
    case PredReg::kA1:
      return regA(1);
    case PredReg::kA2:
      return regA(2);
    case PredReg::kB0:
      return regB(0);
    case PredReg::kNone:
      break;
  }
  CABT_FAIL("predicate register of an unpredicated op");
}

namespace {

struct VOpInfo {
  const char* name;
  bool imm_format;
  unsigned delay_slots;
  unsigned mem_size;  // 0 = not a memory op
  unsigned units;     // bitmask over UnitKind
  uint8_t encoding;
};

constexpr unsigned kUnitL = 1u << 0;
constexpr unsigned kUnitS = 1u << 1;
constexpr unsigned kUnitM = 1u << 2;
constexpr unsigned kUnitD = 1u << 3;

const std::array<VOpInfo, static_cast<size_t>(VOpc::kOpcCount)>& table() {
  static const auto t = [] {
    std::array<VOpInfo, static_cast<size_t>(VOpc::kOpcCount)> tab{};
    uint8_t next_reg = 1;
    uint8_t next_imm = 1;
    const auto add = [&tab, &next_reg, &next_imm](
                         VOpc opc, const char* name, bool imm, unsigned slots,
                         unsigned mem, unsigned units) {
      tab[static_cast<size_t>(opc)] = {name, imm, slots, mem, units,
                                       imm ? next_imm++ : next_reg++};
    };
    add(VOpc::kAdd, "add", false, 0, 0, kUnitL | kUnitS);
    add(VOpc::kSub, "sub", false, 0, 0, kUnitL | kUnitS);
    add(VOpc::kAnd, "and", false, 0, 0, kUnitL | kUnitS);
    add(VOpc::kOr, "or", false, 0, 0, kUnitL | kUnitS);
    add(VOpc::kXor, "xor", false, 0, 0, kUnitL | kUnitS);
    add(VOpc::kCmpEq, "cmpeq", false, 0, 0, kUnitL);
    add(VOpc::kCmpNe, "cmpne", false, 0, 0, kUnitL);
    add(VOpc::kCmpLt, "cmplt", false, 0, 0, kUnitL);
    add(VOpc::kCmpLtu, "cmpltu", false, 0, 0, kUnitL);
    add(VOpc::kCmpGt, "cmpgt", false, 0, 0, kUnitL);
    add(VOpc::kCmpGtu, "cmpgtu", false, 0, 0, kUnitL);
    add(VOpc::kCmpGe, "cmpge", false, 0, 0, kUnitL);
    add(VOpc::kCmpGeu, "cmpgeu", false, 0, 0, kUnitL);
    add(VOpc::kMv, "mv", false, 0, 0, kUnitL | kUnitS);
    add(VOpc::kShl, "shl", false, 0, 0, kUnitS);
    add(VOpc::kShr, "shr", false, 0, 0, kUnitS);
    add(VOpc::kSar, "sar", false, 0, 0, kUnitS);
    add(VOpc::kMpy, "mpy", false, 1, 0, kUnitM);
    add(VOpc::kLdw, "ldw", false, 4, 4, kUnitD);
    add(VOpc::kLdh, "ldh", false, 4, 2, kUnitD);
    add(VOpc::kLdhu, "ldhu", false, 4, 2, kUnitD);
    add(VOpc::kLdb, "ldb", false, 4, 1, kUnitD);
    add(VOpc::kLdbu, "ldbu", false, 4, 1, kUnitD);
    add(VOpc::kStw, "stw", false, 0, 4, kUnitD);
    add(VOpc::kSth, "sth", false, 0, 2, kUnitD);
    add(VOpc::kStb, "stb", false, 0, 1, kUnitD);
    add(VOpc::kBr, "br", false, 5, 0, kUnitS);
    add(VOpc::kMvk, "mvk", true, 0, 0, kUnitS);
    add(VOpc::kMvkh, "mvkh", true, 0, 0, kUnitS);
    add(VOpc::kAddk, "addk", true, 0, 0, kUnitS);
    add(VOpc::kB, "b", true, 5, 0, kUnitS);
    add(VOpc::kNop, "nop", true, 0, 0, 0);
    add(VOpc::kHalt, "halt", true, 0, 0, kUnitS);
    add(VOpc::kYield, "yield", true, 0, 0, kUnitS);
    return tab;
  }();
  return t;
}

const VOpInfo& info(VOpc opc) {
  CABT_ASSERT(opc != VOpc::kInvalid && opc != VOpc::kOpcCount,
              "bad V6X opcode");
  return table()[static_cast<size_t>(opc)];
}

VOpc findByEncoding(uint8_t encoding, bool imm_format) {
  for (size_t i = 1; i < static_cast<size_t>(VOpc::kOpcCount); ++i) {
    const VOpc opc = static_cast<VOpc>(i);
    if (info(opc).encoding == encoding &&
        info(opc).imm_format == imm_format) {
      return opc;
    }
  }
  CABT_FAIL("unknown V6X encoding " << int{encoding}
                                    << (imm_format ? " (imm)" : " (reg)"));
}

}  // namespace

bool isImmFormat(VOpc opc) { return info(opc).imm_format; }
bool isLoad(VOpc opc) { return info(opc).mem_size != 0 && info(opc).delay_slots == 4; }
bool isStore(VOpc opc) { return info(opc).mem_size != 0 && info(opc).delay_slots == 0; }
bool isMem(VOpc opc) { return info(opc).mem_size != 0; }
bool isBranch(VOpc opc) { return opc == VOpc::kB || opc == VOpc::kBr; }
unsigned delaySlots(VOpc opc) { return info(opc).delay_slots; }
unsigned memAccessSize(VOpc opc) {
  CABT_ASSERT(isMem(opc), "memAccessSize of non-memory op");
  return info(opc).mem_size;
}
unsigned allowedUnitsMask(VOpc opc) { return info(opc).units; }
bool unitAllowed(VOpc opc, UnitKind kind) {
  return (info(opc).units & (1u << static_cast<unsigned>(kind))) != 0;
}
const char* mnemonic(VOpc opc) { return info(opc).name; }

std::string MachineOp::toString() const {
  std::string out;
  if (!pred.always()) {
    out += "[";
    if (pred.z) {
      out += "!";
    }
    out += regName(pred.regId()) + "] ";
  }
  out += mnemonic(opc);
  if (opc != VOpc::kNop && info(opc).units != 0) {
    out += "." + unit.name();
  }
  const auto reg = [](uint8_t r) { return regName(r); };
  if (isMem(opc)) {
    out += " " + reg(dst) + ", [" + reg(src1) + "]" + std::to_string(imm);
  } else if (isImmFormat(opc)) {
    if (opc == VOpc::kB) {
      out += " " + hex32(static_cast<uint32_t>(imm));
    } else if (opc == VOpc::kNop || opc == VOpc::kHalt ||
               opc == VOpc::kYield) {
      if (opc == VOpc::kNop) {
        out += " " + std::to_string(imm);
      }
    } else {
      out += " " + reg(dst) + ", " + std::to_string(imm);
    }
  } else if (opc == VOpc::kBr) {
    out += " " + reg(src1);
  } else if (opc == VOpc::kMv) {
    out += " " + reg(dst) + ", " + reg(src1);
  } else {
    out += " " + reg(dst) + ", " + reg(src1) + ", " + reg(src2);
  }
  return out;
}

void validatePacket(const Packet& packet) {
  CABT_CHECK(!packet.ops.empty() && packet.ops.size() <= 8,
             "packet must contain 1..8 ops, has " << packet.ops.size());
  unsigned units_used = 0;
  int branches = 0;
  for (const MachineOp& op : packet.ops) {
    if (op.opc == VOpc::kNop) {
      CABT_CHECK(packet.ops.size() == 1, "NOP must be alone in its packet");
      CABT_CHECK(op.imm >= 1 && op.imm <= 9, "NOP count out of range");
      CABT_CHECK(op.pred.always(), "NOP cannot be predicated");
      continue;
    }
    CABT_CHECK(unitAllowed(op.opc, op.unit.kind),
               mnemonic(op.opc) << " cannot run on unit " << op.unit.name());
    const unsigned unit_bit = 1u << op.unit.id();
    CABT_CHECK((units_used & unit_bit) == 0,
               "unit " << op.unit.name() << " used twice in one packet");
    units_used |= unit_bit;
    if (isBranch(op.opc) || op.opc == VOpc::kHalt || op.opc == VOpc::kYield) {
      ++branches;
    }
    if (isMem(op.opc)) {
      CABT_CHECK(op.unit.side == (isFileB(op.src1) ? 1 : 0),
                 "memory op unit side must match the base register file");
    }
  }
  CABT_CHECK(branches <= 1, "more than one control op in a packet");
  // Same-destination writes in one cycle are only legal with complementary
  // predicates.
  for (size_t i = 0; i < packet.ops.size(); ++i) {
    for (size_t j = i + 1; j < packet.ops.size(); ++j) {
      const MachineOp& x = packet.ops[i];
      const MachineOp& y = packet.ops[j];
      if (isStore(x.opc) || isStore(y.opc) || x.opc == VOpc::kNop ||
          y.opc == VOpc::kNop || x.dst == kNoReg || y.dst == kNoReg) {
        continue;
      }
      if (x.dst == y.dst) {
        const bool complementary = !x.pred.always() && !y.pred.always() &&
                                   x.pred.reg == y.pred.reg &&
                                   x.pred.z != y.pred.z;
        CABT_CHECK(complementary,
                   "two writes to " << regName(x.dst) << " in one packet");
      }
    }
  }
}

namespace {

uint32_t encodeOp(const MachineOp& op, uint32_t addr, bool parallel) {
  const VOpInfo& i = info(op.opc);
  uint32_t w = 0;
  w = insertField(w, 0, 1, parallel ? 1 : 0);
  w = insertField(w, 1, 1, i.imm_format ? 1 : 0);
  // Predication.
  w = insertField(w, 30, 2, static_cast<uint32_t>(op.pred.reg));
  w = insertField(w, 29, 1, op.pred.z ? 1 : 0);

  const auto encReg = [&w](unsigned lo, uint8_t reg) {
    CABT_CHECK(reg < 64, "register id out of range");
    w = insertField(w, lo, 5, static_cast<uint32_t>(fileIndex(reg)));
    w = insertField(w, lo + 5, 1, isFileB(reg) ? 1 : 0);
  };

  if (i.imm_format) {
    w = insertField(w, 2, 4, i.encoding);
    if (op.dst != kNoReg) {
      encReg(6, op.dst);
    }
    int32_t imm = op.imm;
    if (op.opc == VOpc::kB) {
      const int64_t delta =
          static_cast<int64_t>(static_cast<uint32_t>(op.imm)) -
          static_cast<int64_t>(addr);
      CABT_CHECK(delta % 4 == 0, "branch target not word aligned");
      imm = static_cast<int32_t>(delta / 4);
    }
    if (op.opc == VOpc::kMvkh) {
      CABT_CHECK(imm >= 0 && fitsUnsigned(static_cast<uint32_t>(imm), 16),
                 "mvkh immediate out of range: " << imm);
    } else {
      CABT_CHECK(fitsSigned(imm, 16),
                 mnemonic(op.opc) << " immediate out of range: " << imm);
    }
    w = insertField(w, 12, 16, static_cast<uint32_t>(imm));
    w = insertField(w, 28, 1, op.unit.side);
    return w;
  }

  w = insertField(w, 2, 6, i.encoding);
  if (op.dst != kNoReg) {
    encReg(8, op.dst);
  }
  if (op.src1 != kNoReg) {
    encReg(14, op.src1);
  }
  if (isMem(op.opc)) {
    const unsigned scale = i.mem_size;
    const int32_t off = op.imm;
    CABT_CHECK(off % static_cast<int32_t>(scale) == 0,
               "memory offset " << off << " not a multiple of " << scale);
    const int32_t scaled = off / static_cast<int32_t>(scale);
    CABT_CHECK(scaled >= -31 && scaled <= 31,
               "memory offset " << off << " out of encodable range");
    w = insertField(w, 20, 5, static_cast<uint32_t>(
                                  scaled < 0 ? -scaled : scaled));
    w = insertField(w, 25, 1, scaled < 0 ? 1 : 0);
  } else if (op.src2 != kNoReg) {
    encReg(20, op.src2);
  }
  w = insertField(w, 26, 2, static_cast<uint32_t>(op.unit.kind));
  w = insertField(w, 28, 1, op.unit.side);
  return w;
}

MachineOp decodeOp(uint32_t w, uint32_t addr, bool* parallel) {
  *parallel = bitField(w, 0, 1) != 0;
  MachineOp op;
  op.pred.reg = static_cast<PredReg>(bitField(w, 30, 2));
  op.pred.z = bitField(w, 29, 1) != 0;

  const auto decReg = [w](unsigned lo) -> uint8_t {
    const uint8_t idx = static_cast<uint8_t>(bitField(w, lo, 5));
    return bitField(w, lo + 5, 1) != 0 ? regB(idx) : regA(idx);
  };

  if (bitField(w, 1, 1) != 0) {  // imm format
    op.opc = findByEncoding(static_cast<uint8_t>(bitField(w, 2, 4)), true);
    op.dst = decReg(6);
    int32_t imm = signExtend(bitField(w, 12, 16), 16);
    if (op.opc == VOpc::kMvkh || op.opc == VOpc::kNop) {
      imm = static_cast<int32_t>(bitField(w, 12, 16));
    }
    if (op.opc == VOpc::kB) {
      imm = static_cast<int32_t>(addr + static_cast<uint32_t>(imm * 4));
    }
    op.imm = imm;
    op.unit = {UnitKind::kS, static_cast<uint8_t>(bitField(w, 28, 1))};
    if (op.opc == VOpc::kNop || op.opc == VOpc::kB || op.opc == VOpc::kHalt ||
        op.opc == VOpc::kYield) {
      op.dst = kNoReg;
    }
    return op;
  }

  op.opc = findByEncoding(static_cast<uint8_t>(bitField(w, 2, 6)), false);
  op.dst = decReg(8);
  op.src1 = decReg(14);
  if (isMem(op.opc)) {
    const int32_t mag = static_cast<int32_t>(bitField(w, 20, 5));
    const int32_t scaled = bitField(w, 25, 1) != 0 ? -mag : mag;
    op.imm = scaled * static_cast<int32_t>(memAccessSize(op.opc));
  } else {
    op.src2 = decReg(20);
    if (op.opc == VOpc::kBr || op.opc == VOpc::kMv) {
      op.src2 = kNoReg;
    }
  }
  if (op.opc == VOpc::kBr) {
    op.src1 = decReg(14);
    op.dst = kNoReg;
  }
  op.unit = {static_cast<UnitKind>(bitField(w, 26, 2)),
             static_cast<uint8_t>(bitField(w, 28, 1))};
  return op;
}

}  // namespace

std::vector<uint8_t> encodeProgram(std::vector<Packet>& packets,
                                   uint32_t base_addr) {
  // First assign addresses, then encode (kB needs instruction addresses).
  uint32_t addr = base_addr;
  for (Packet& p : packets) {
    validatePacket(p);
    p.addr = addr;
    addr += p.sizeBytes();
  }
  std::vector<uint8_t> out;
  out.reserve((addr - base_addr));
  for (const Packet& p : packets) {
    for (size_t i = 0; i < p.ops.size(); ++i) {
      const bool parallel = i + 1 < p.ops.size();
      const uint32_t w =
          encodeOp(p.ops[i], p.addr + static_cast<uint32_t>(i) * 4, parallel);
      for (int b = 0; b < 4; ++b) {
        out.push_back(static_cast<uint8_t>(w >> (8 * b)));
      }
    }
  }
  return out;
}

std::vector<Packet> decodeProgram(const std::vector<uint8_t>& bytes,
                                  uint32_t base_addr) {
  CABT_CHECK(bytes.size() % 4 == 0, "V6X code size must be a multiple of 4");
  std::vector<Packet> packets;
  Packet current;
  current.addr = base_addr;
  for (size_t off = 0; off < bytes.size(); off += 4) {
    const uint32_t w = static_cast<uint32_t>(bytes[off]) |
                       (static_cast<uint32_t>(bytes[off + 1]) << 8) |
                       (static_cast<uint32_t>(bytes[off + 2]) << 16) |
                       (static_cast<uint32_t>(bytes[off + 3]) << 24);
    bool parallel = false;
    current.ops.push_back(
        decodeOp(w, base_addr + static_cast<uint32_t>(off), &parallel));
    if (!parallel) {
      packets.push_back(std::move(current));
      current = Packet{};
      current.addr = base_addr + static_cast<uint32_t>(off) + 4;
    }
  }
  CABT_CHECK(current.ops.empty(),
             "trailing instructions with the parallel bit set");
  return packets;
}

}  // namespace cabt::vliw
