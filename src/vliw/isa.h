// V6X instruction set definition.
//
// V6X is the C6x-flavoured VLIW target ISA of this reproduction (see
// DESIGN.md): two datapaths A and B with four functional units each
// (L1 S1 M1 D1 / L2 S2 M2 D2), 32 registers per file, execute packets of
// up to eight instructions chained by p-bits, predication on A1/A2/B0,
// and — crucially — *no interlocks*: loads have 4 delay slots, multiplies
// 1, branches 5, and the compiler (here: the binary translator's
// scheduler) is responsible for correctness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace cabt::vliw {

/// Register identifiers: 0..31 = A0..A31, 32..63 = B0..B31.
constexpr int kRegsPerFile = 32;
constexpr uint8_t regA(int n) { return static_cast<uint8_t>(n); }
constexpr uint8_t regB(int n) { return static_cast<uint8_t>(32 + n); }
constexpr bool isFileB(uint8_t reg) { return reg >= 32; }
constexpr int fileIndex(uint8_t reg) { return reg % 32; }
std::string regName(uint8_t reg);

constexpr uint8_t kNoReg = 0xff;

/// Opcodes. The *imm* group uses the 16-bit-immediate encoding format.
enum class VOpc : uint8_t {
  kInvalid = 0,
  // Register format.
  kAdd, kSub, kAnd, kOr, kXor,         // L or S units
  kCmpEq, kCmpNe, kCmpLt, kCmpLtu, kCmpGt, kCmpGtu, kCmpGe, kCmpGeu,  // L units
  kMv,                                 // L or S units
  kShl, kShr, kSar,                    // S units
  kMpy,                                // M units, 1 delay slot
  kLdw, kLdh, kLdhu, kLdb, kLdbu,      // D units, 4 delay slots
  kStw, kSth, kStb,                    // D units
  kBr,                                 // S units, indirect branch, 5 slots
  // Immediate format.
  kMvk,   ///< dst = simm16 (S units)
  kMvkh,  ///< dst = (dst & 0xffff) | (uimm16 << 16) (S units)
  kAddk,  ///< dst += simm16 (S units)
  kB,     ///< PC-relative branch, disp in words, 5 delay slots (S units)
  kNop,   ///< idles imm cycles (imm >= 1); occupies no unit
  kHalt,  ///< stops the simulation (S units)
  kYield, ///< returns control to the debug runtime, resumable (S units)
  kOpcCount,
};

/// Functional unit kinds and full unit ids.
enum class UnitKind : uint8_t { kL = 0, kS = 1, kM = 2, kD = 3 };
struct Unit {
  UnitKind kind = UnitKind::kL;
  uint8_t side = 0;  ///< 0 = datapath A, 1 = datapath B

  [[nodiscard]] int id() const {
    return static_cast<int>(kind) + 4 * side;
  }
  [[nodiscard]] std::string name() const;
  bool operator==(const Unit&) const = default;
};
constexpr int kNumUnits = 8;

/// Predication: condition register + sense. z = true means "execute when
/// the register is zero" ([!reg]).
enum class PredReg : uint8_t { kNone = 0, kA1 = 1, kA2 = 2, kB0 = 3 };
struct Pred {
  PredReg reg = PredReg::kNone;
  bool z = false;

  [[nodiscard]] bool always() const { return reg == PredReg::kNone; }
  [[nodiscard]] uint8_t regId() const;
  bool operator==(const Pred&) const = default;
};

/// One machine operation (pre-encoding form used by the translator's
/// scheduler and by the simulator after decode).
struct MachineOp {
  VOpc opc = VOpc::kInvalid;
  Unit unit;
  Pred pred;
  uint8_t dst = kNoReg;   ///< for stores: the data register
  uint8_t src1 = kNoReg;  ///< for memory ops: the base register
  uint8_t src2 = kNoReg;
  int32_t imm = 0;  ///< immediate / byte offset (memory) / byte disp (kB)

  [[nodiscard]] std::string toString() const;
};

/// Instruction-class queries used by the scheduler and the simulator.
bool isImmFormat(VOpc opc);
bool isLoad(VOpc opc);
bool isStore(VOpc opc);
bool isMem(VOpc opc);
bool isBranch(VOpc opc);  ///< kB or kBr
/// Delay slots: cycles between issue and the result (or redirect).
unsigned delaySlots(VOpc opc);
/// Memory access width in bytes (loads/stores only).
unsigned memAccessSize(VOpc opc);
/// Allowed unit kinds for an opcode (bitmask over UnitKind).
unsigned allowedUnitsMask(VOpc opc);
bool unitAllowed(VOpc opc, UnitKind kind);
const char* mnemonic(VOpc opc);

/// An execute packet: 1..8 ops issued in the same cycle.
struct Packet {
  uint32_t addr = 0;  ///< address of the first instruction word
  std::vector<MachineOp> ops;

  [[nodiscard]] uint32_t sizeBytes() const {
    return static_cast<uint32_t>(ops.size()) * 4;
  }
};

/// Validates intra-packet constraints (unit conflicts, multiple branches,
/// size). Throws cabt::Error on violation.
void validatePacket(const Packet& packet);

/// Encodes a sequence of packets laid out contiguously from `base_addr`;
/// packet addresses are assigned. Returns little-endian bytes.
std::vector<uint8_t> encodeProgram(std::vector<Packet>& packets,
                                   uint32_t base_addr);

/// Decodes an encoded program back into packets.
std::vector<Packet> decodeProgram(const std::vector<uint8_t>& bytes,
                                  uint32_t base_addr);

}  // namespace cabt::vliw
