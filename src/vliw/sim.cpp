#include "vliw/sim.h"

#include <algorithm>

#include "common/bits.h"
#include "common/strutil.h"

namespace cabt::vliw {

V6xSim::V6xSim() = default;

void V6xSim::loadProgram(const elf::Object& image) {
  CABT_CHECK(image.machine == elf::Machine::kV6x,
             "not a V6X image (wrong e_machine)");
  packets_.clear();
  packet_at_.clear();
  bool any_code = false;
  for (const elf::Section& s : image.sections) {
    if (s.executable && s.kind == elf::SectionKind::kProgbits) {
      any_code = true;
      for (Packet& p : decodeProgram(s.data, s.addr)) {
        packets_.push_back(std::move(p));
      }
    } else if (s.kind == elf::SectionKind::kProgbits) {
      mem_.writeBlock(s.addr, s.data.data(), s.data.size());
    }
  }
  CABT_CHECK(any_code, "V6X image has no executable section");
  for (size_t i = 0; i < packets_.size(); ++i) {
    packet_at_.emplace(packets_[i].addr, i);
  }
  pc_ = image.entry;
  state_ = RunState::kRunning;
}

void V6xSim::addIoHandler(IoHandler* handler) {
  CABT_CHECK(handler != nullptr, "null IoHandler");
  handlers_.push_back(handler);
}

void V6xSim::setPc(uint32_t pc) {
  CABT_CHECK(packet_at_.count(pc) != 0,
             "PC " << hex32(pc) << " is not a packet start");
  pc_ = pc;
  // A debugger PC change abandons in-flight control state.
  branch_pending_ = false;
  idle_cycles_ = 0;
}

const Packet& V6xSim::fetch(uint32_t addr) const {
  const auto it = packet_at_.find(addr);
  CABT_CHECK(it != packet_at_.end(),
             "fetch from " << hex32(addr) << ": not a packet start");
  return packets_[it->second];
}

IoHandler* V6xSim::handlerFor(uint32_t addr) const {
  for (IoHandler* h : handlers_) {
    if (h->covers(addr)) {
      return h;
    }
  }
  return nullptr;
}

bool V6xSim::devicesReady(const Packet& packet) {
  for (const MachineOp& op : packet.ops) {
    if (!isMem(op.opc)) {
      continue;
    }
    if (!op.pred.always()) {
      const uint32_t p = regs_[op.pred.regId()];
      const bool execute = op.pred.z ? p == 0 : p != 0;
      if (!execute) {
        continue;
      }
    }
    const uint32_t addr = regs_[op.src1] + static_cast<uint32_t>(op.imm);
    IoHandler* h = handlerFor(addr);
    if (h != nullptr && !h->ready(addr, isStore(op.opc))) {
      return false;
    }
  }
  return true;
}

void V6xSim::commitDueWrites() {
  for (size_t i = 0; i < pending_.size();) {
    if (pending_[i].due <= stats_.issue_cycles) {
      regs_[pending_[i].reg] = pending_[i].value;
      pending_[i] = pending_.back();
      pending_.pop_back();
    } else {
      ++i;
    }
  }
}

void V6xSim::drainPipeline() {
  // Architecturally-due writes commit lazily; flush them so a stopped
  // machine presents a consistent register state. At halt everything in
  // flight lands as well.
  commitDueWrites();
  if (state_ == RunState::kHalted) {
    std::sort(pending_.begin(), pending_.end(),
              [](const PendingWrite& a, const PendingWrite& b) {
                return a.due < b.due;
              });
    for (const PendingWrite& w : pending_) {
      regs_[w.reg] = w.value;
    }
    pending_.clear();
  }
}

void V6xSim::scheduleWrite(uint8_t reg, uint32_t value,
                           unsigned extra_slots) {
  const uint64_t due = stats_.issue_cycles + 1 + extra_slots;
  for (const PendingWrite& w : pending_) {
    CABT_CHECK(!(w.reg == reg && w.due == due),
               "two in-flight writes to " << regName(reg)
                                          << " commit in the same cycle");
  }
  pending_.push_back({due, reg, value});
}

void V6xSim::issuePacket(const Packet& packet) {
  ++stats_.packets;
  stats_.ops += packet.ops.size();

  // Gather all operand values first: every op in the packet reads the
  // register state as of the start of this cycle.
  struct Exec {
    const MachineOp* op;
    uint32_t s1, s2, dstv, ea;
    bool run;
  };
  std::vector<Exec> execs;
  execs.reserve(packet.ops.size());
  for (const MachineOp& op : packet.ops) {
    Exec e{};
    e.op = &op;
    e.run = true;
    if (!op.pred.always()) {
      const uint32_t p = regs_[op.pred.regId()];
      e.run = op.pred.z ? p == 0 : p != 0;
    }
    e.s1 = op.src1 != kNoReg ? regs_[op.src1] : 0;
    e.s2 = op.src2 != kNoReg ? regs_[op.src2] : 0;
    e.dstv = op.dst != kNoReg ? regs_[op.dst] : 0;
    if (isMem(op.opc)) {
      e.ea = e.s1 + static_cast<uint32_t>(op.imm);
    }
    execs.push_back(e);
  }

  for (const Exec& e : execs) {
    const MachineOp& op = *e.op;
    if (!e.run) {
      continue;
    }
    const auto aluResult = [&](uint32_t v) {
      scheduleWrite(op.dst, v, 0);
    };
    switch (op.opc) {
      case VOpc::kAdd:
        aluResult(e.s1 + e.s2);
        break;
      case VOpc::kSub:
        aluResult(e.s1 - e.s2);
        break;
      case VOpc::kAnd:
        aluResult(e.s1 & e.s2);
        break;
      case VOpc::kOr:
        aluResult(e.s1 | e.s2);
        break;
      case VOpc::kXor:
        aluResult(e.s1 ^ e.s2);
        break;
      case VOpc::kCmpEq:
        aluResult(e.s1 == e.s2 ? 1 : 0);
        break;
      case VOpc::kCmpNe:
        aluResult(e.s1 != e.s2 ? 1 : 0);
        break;
      case VOpc::kCmpLt:
        aluResult(static_cast<int32_t>(e.s1) < static_cast<int32_t>(e.s2)
                      ? 1
                      : 0);
        break;
      case VOpc::kCmpLtu:
        aluResult(e.s1 < e.s2 ? 1 : 0);
        break;
      case VOpc::kCmpGt:
        aluResult(static_cast<int32_t>(e.s1) > static_cast<int32_t>(e.s2)
                      ? 1
                      : 0);
        break;
      case VOpc::kCmpGtu:
        aluResult(e.s1 > e.s2 ? 1 : 0);
        break;
      case VOpc::kCmpGe:
        aluResult(static_cast<int32_t>(e.s1) >= static_cast<int32_t>(e.s2)
                      ? 1
                      : 0);
        break;
      case VOpc::kCmpGeu:
        aluResult(e.s1 >= e.s2 ? 1 : 0);
        break;
      case VOpc::kMv:
        aluResult(e.s1);
        break;
      case VOpc::kShl:
        aluResult(e.s1 << (e.s2 & 31));
        break;
      case VOpc::kShr:
        aluResult(e.s1 >> (e.s2 & 31));
        break;
      case VOpc::kSar:
        aluResult(static_cast<uint32_t>(static_cast<int32_t>(e.s1) >>
                                        (e.s2 & 31)));
        break;
      case VOpc::kMpy:
        scheduleWrite(op.dst, e.s1 * e.s2, 1);
        break;
      case VOpc::kLdw:
      case VOpc::kLdh:
      case VOpc::kLdhu:
      case VOpc::kLdb:
      case VOpc::kLdbu: {
        const unsigned size = memAccessSize(op.opc);
        IoHandler* h = handlerFor(e.ea);
        uint32_t v = h != nullptr ? h->load(e.ea, size) : mem_.read(e.ea, size);
        if ((op.opc == VOpc::kLdh || op.opc == VOpc::kLdb) && size < 4) {
          v = static_cast<uint32_t>(signExtend(v, size * 8));
        }
        scheduleWrite(op.dst, v, 4);
        break;
      }
      case VOpc::kStw:
      case VOpc::kSth:
      case VOpc::kStb: {
        const unsigned size = memAccessSize(op.opc);
        IoHandler* h = handlerFor(e.ea);
        if (h != nullptr) {
          h->store(e.ea, e.dstv, size);
        } else {
          mem_.write(e.ea, e.dstv, size);
        }
        break;
      }
      case VOpc::kB:
      case VOpc::kBr: {
        CABT_CHECK(!branch_pending_,
                   "branch issued while another branch is in flight");
        branch_pending_ = true;
        branch_target_ =
            op.opc == VOpc::kB ? static_cast<uint32_t>(op.imm) : e.s1;
        branch_remaining_ = delaySlots(op.opc);
        ++stats_.branches_taken;
        break;
      }
      case VOpc::kMvk:
        scheduleWrite(op.dst, static_cast<uint32_t>(op.imm), 0);
        break;
      case VOpc::kMvkh:
        scheduleWrite(op.dst, (e.dstv & 0xffffu) |
                                  (static_cast<uint32_t>(op.imm) << 16),
                      0);
        break;
      case VOpc::kAddk:
        scheduleWrite(op.dst, e.dstv + static_cast<uint32_t>(op.imm), 0);
        break;
      case VOpc::kNop:
        CABT_ASSERT(op.imm >= 1, "NOP with zero count");
        idle_cycles_ = static_cast<unsigned>(op.imm) - 1;
        stats_.nop_cycles += static_cast<unsigned>(op.imm);
        break;
      case VOpc::kHalt:
        state_ = RunState::kHalted;
        break;
      case VOpc::kYield:
        state_ = RunState::kYielded;
        break;
      default:
        CABT_FAIL("unhandled V6X opcode");
    }
  }
  pc_ = packet.addr + packet.sizeBytes();
}

void V6xSim::postIssueSlot() {
  ++stats_.issue_cycles;
  if (branch_pending_) {
    if (branch_remaining_ == 0) {
      pc_ = branch_target_;
      branch_pending_ = false;
    } else {
      --branch_remaining_;
    }
  }
}

RunState V6xSim::resume(uint64_t max_cycles) {
  step_over_breakpoint_ = true;
  return run(max_cycles);
}

RunState V6xSim::run(uint64_t max_cycles) {
  CABT_CHECK(!packets_.empty(), "no program loaded");
  if (state_ == RunState::kYielded || state_ == RunState::kBreakpoint) {
    state_ = RunState::kRunning;
  }
  uint64_t budget = max_cycles;
  while (state_ == RunState::kRunning) {
    if (budget-- == 0) {
      return RunState::kMaxCycles;
    }
    if (hook_) {
      hook_();
    }
    ++stats_.cycles;

    if (idle_cycles_ > 0) {
      // Tail cycles of a multi-cycle NOP: issue slots without a packet.
      --idle_cycles_;
      commitDueWrites();
      postIssueSlot();
      continue;
    }

    // Commit the writes due in this issue slot before anything reads the
    // register state (including the device-readiness pre-check).
    commitDueWrites();

    if (breakpoints_.count(pc_) != 0 && !step_over_breakpoint_) {
      // Stop *before* issuing the breakpointed packet; undo this cycle.
      --stats_.cycles;
      state_ = RunState::kBreakpoint;
      drainPipeline();
      return state_;
    }
    step_over_breakpoint_ = false;

    const Packet& packet = fetch(pc_);
    if (!devicesReady(packet)) {
      ++stats_.stall_cycles;
      continue;  // whole-machine stall; devices keep ticking via the hook
    }
    issuePacket(packet);
    postIssueSlot();
  }
  drainPipeline();
  return state_;
}

}  // namespace cabt::vliw
