#include "arch/arch.h"

#include "common/bits.h"
#include "common/error.h"
#include "common/xml.h"

namespace cabt::arch {

unsigned ICacheModel::offsetBits() const { return log2Exact(line_bytes); }
unsigned ICacheModel::setBits() const { return log2Exact(sets); }

void ICacheModel::validate() const {
  CABT_CHECK(isPowerOfTwo(sets), "cache sets must be a power of two");
  CABT_CHECK(isPowerOfTwo(line_bytes) && line_bytes >= 4,
             "cache line size must be a power of two >= 4");
  CABT_CHECK(ways >= 1 && ways <= 8, "cache associativity out of range");
}

ArchDescription ArchDescription::defaultTc10gp() {
  return parseArchXml(defaultArchXml());
}

std::string defaultArchXml() {
  return R"(<?xml version="1.0"?>
<processor name="trc32-tc10gp" clock_hz="48000000">
  <!-- Dual-pipeline in-order core: IP (integer) + LS (load/store).
       An IP instruction immediately followed by an LS instruction can
       issue in the same cycle. -->
  <pipeline dual_issue="1">
    <latency class="alu"  cycles="1"/>
    <latency class="mul"  cycles="2"/>
    <latency class="load" cycles="2"/>
  </pipeline>
  <!-- Static branch prediction: backward taken, forward not taken. -->
  <branch taken_predicted_extra="1" mispredict_extra="2" indirect_extra="2"/>
  <icache enabled="1" sets="64" ways="2" line_bytes="16" miss_penalty="8"/>
  <dcache enabled="0" sets="64" ways="2" line_bytes="16" miss_penalty="8"/>
  <memorymap>
    <region name="flash" base="0x80000000" size="0x00100000" kind="rom"/>
    <region name="ram"   base="0xd0000000" size="0x00100000" kind="ram"
            remap="0x00800000"/>
    <region name="io"    base="0xf0000000" size="0x00010000" kind="io"/>
  </memorymap>
</processor>
)";
}

namespace {

RegionKind parseKind(const std::string& kind, int line) {
  if (kind == "rom") {
    return RegionKind::kRom;
  }
  if (kind == "ram") {
    return RegionKind::kRam;
  }
  if (kind == "io") {
    return RegionKind::kIo;
  }
  CABT_FAIL("unknown region kind '" << kind << "' at line " << line);
}

ICacheModel parseCache(const xml::Element& e) {
  ICacheModel cache;
  cache.enabled = e.intAttrOr("enabled", 1) != 0;
  cache.sets = static_cast<uint32_t>(e.intAttrOr("sets", cache.sets));
  cache.ways = static_cast<uint32_t>(e.intAttrOr("ways", cache.ways));
  cache.line_bytes =
      static_cast<uint32_t>(e.intAttrOr("line_bytes", cache.line_bytes));
  cache.miss_penalty =
      static_cast<uint32_t>(e.intAttrOr("miss_penalty", cache.miss_penalty));
  cache.validate();
  return cache;
}

}  // namespace

ArchDescription parseArchXml(std::string_view xml_text) {
  const auto root = xml::parse(xml_text);
  CABT_CHECK(root->name() == "processor",
             "architecture description root must be <processor>, got <"
                 << root->name() << ">");
  ArchDescription desc;
  desc.name = root->attrOr("name", desc.name);
  desc.clock_hz = static_cast<uint64_t>(
      root->intAttrOr("clock_hz", static_cast<int64_t>(desc.clock_hz)));
  CABT_CHECK(desc.clock_hz > 0, "clock_hz must be positive");

  if (const xml::Element* pipe = root->child("pipeline")) {
    desc.pipeline.dual_issue = pipe->intAttrOr("dual_issue", 1) != 0;
    for (const xml::Element* lat : pipe->childrenNamed("latency")) {
      const std::string& cls = lat->attr("class");
      const auto cycles = static_cast<unsigned>(lat->intAttr("cycles"));
      CABT_CHECK(cycles >= 1 && cycles <= 16,
                 "latency for class '" << cls << "' out of range");
      if (cls == "alu") {
        desc.pipeline.alu_latency = cycles;
      } else if (cls == "mul") {
        desc.pipeline.mul_latency = cycles;
      } else if (cls == "load") {
        desc.pipeline.load_latency = cycles;
      } else {
        CABT_FAIL("unknown latency class '" << cls << "' at line "
                                            << lat->line());
      }
    }
  }

  if (const xml::Element* br = root->child("branch")) {
    desc.branch.taken_predicted_extra = static_cast<unsigned>(
        br->intAttrOr("taken_predicted_extra",
                      desc.branch.taken_predicted_extra));
    desc.branch.mispredict_extra = static_cast<unsigned>(
        br->intAttrOr("mispredict_extra", desc.branch.mispredict_extra));
    desc.branch.indirect_extra = static_cast<unsigned>(
        br->intAttrOr("indirect_extra", desc.branch.indirect_extra));
  }

  if (const xml::Element* ic = root->child("icache")) {
    desc.icache = parseCache(*ic);
  }
  if (const xml::Element* dc = root->child("dcache")) {
    desc.dcache = parseCache(*dc);
  }

  if (const xml::Element* mm = root->child("memorymap")) {
    for (const xml::Element* r : mm->childrenNamed("region")) {
      MemRegion region;
      region.name = r->attr("name");
      region.base = static_cast<uint32_t>(r->intAttr("base"));
      region.size = static_cast<uint32_t>(r->intAttr("size"));
      region.kind = parseKind(r->attr("kind"), r->line());
      region.remap_base =
          static_cast<uint32_t>(r->intAttrOr("remap", region.base));
      desc.memory_map.addRegion(std::move(region));
    }
  }
  return desc;
}

}  // namespace cabt::arch
