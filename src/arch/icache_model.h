// Behavioural instruction-cache model.
//
// Used as ground truth by the reference ISS and the RT-level model, and by
// tests to check that the translator's software-simulated cache (the
// tags/valid/LRU array appended to the translated image, paper Fig. 4)
// tracks it exactly. The state layout mirrors the paper: one combined
// tag+valid word per way per set, plus per-set LRU replacement state.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.h"
#include "common/error.h"
#include "common/serial.h"

namespace cabt::arch {

class ICacheState {
 public:
  explicit ICacheState(const ICacheModel& model) : model_(model) {
    model_.validate();
    tags_.assign(static_cast<size_t>(model_.sets) * model_.ways, 0);
    // LRU state: per set, age order as packed way indices (lowest byte =
    // least recently used way).
    lru_.assign(model_.sets, initialLruWord(model_.ways));
  }

  [[nodiscard]] const ICacheModel& model() const { return model_; }

  /// Performs one line access for the line containing `addr`. Returns true
  /// on a hit; updates tags, valid bits and LRU state.
  bool access(uint32_t addr) {
    return accessTagged(model_.setOf(addr), tagWord(model_.tagOf(addr)));
  }

  /// access() with the set index and combined tag+valid word already
  /// computed. The ISS block cache precomputes both per static line
  /// group, so the dispatch hot path skips the address arithmetic.
  bool accessTagged(uint32_t set, uint32_t want) {
    uint32_t* ways = &tags_[static_cast<size_t>(set) * model_.ways];
    if (model_.ways == 2) {
      // Two-way fast path (the default geometry, and the ISS dispatch
      // hot path): the packed age list degenerates to "LRU way, MRU way",
      // so the touch is a single store instead of a rebuild loop.
      if (ways[0] == want) {
        lru_[set] = 1u;  // way 1 LRU, way 0 MRU
        ++hits_;
        return true;
      }
      if (ways[1] == want) {
        lru_[set] = 1u << 8;  // way 0 LRU, way 1 MRU
        ++hits_;
        return true;
      }
      const uint32_t victim = lru_[set] & 0xffu;
      ways[victim] = want;
      lru_[set] = (victim ^ 1u) | (victim << 8);
      ++misses_;
      return false;
    }
    for (uint32_t w = 0; w < model_.ways; ++w) {
      if (ways[w] == want) {
        touch(set, w);
        ++hits_;
        return true;
      }
    }
    const uint32_t victim = lruWay(set);
    ways[victim] = want;
    touch(set, victim);
    ++misses_;
    return false;
  }

  /// Combined tag+valid word, exactly as the translated image stores it.
  [[nodiscard]] static uint32_t tagWord(uint32_t tag) {
    return (tag << 1) | 1u;
  }

  [[nodiscard]] uint32_t tagEntry(uint32_t set, uint32_t way) const {
    return tags_[static_cast<size_t>(set) * model_.ways + way];
  }
  /// Way that would be evicted next in `set`.
  [[nodiscard]] uint32_t lruWay(uint32_t set) const {
    return lru_[set] & 0xffu;
  }
  [[nodiscard]] uint64_t hits() const { return hits_; }
  [[nodiscard]] uint64_t misses() const { return misses_; }

  void reset() {
    std::fill(tags_.begin(), tags_.end(), 0);
    std::fill(lru_.begin(), lru_.end(), initialLruWord(model_.ways));
    hits_ = misses_ = 0;
  }

  // -- snapshot support (src/snap): tags, valid bits and LRU ages decide
  //    every future hit/miss, so they are architectural state for the
  //    cycle counts. Geometry is construction-time and only verified.
  void saveState(serial::Writer& w) const {
    w.tag("icache");
    w.u32(model_.sets);
    w.u32(model_.ways);
    for (const uint32_t t : tags_) {
      w.u32(t);
    }
    for (const uint32_t l : lru_) {
      w.u32(l);
    }
    w.u64(hits_);
    w.u64(misses_);
  }

  void restoreState(serial::Reader& r) {
    r.tag("icache");
    CABT_CHECK(r.u32() == model_.sets && r.u32() == model_.ways,
               "snapshot icache geometry does not match this core");
    for (uint32_t& t : tags_) {
      t = r.u32();
    }
    for (uint32_t& l : lru_) {
      l = r.u32();
    }
    hits_ = r.u64();
    misses_ = r.u64();
  }

 private:
  static uint32_t initialLruWord(uint32_t ways) {
    uint32_t w = 0;
    for (uint32_t i = 0; i < ways; ++i) {
      w |= i << (8 * i);
    }
    return w;
  }

  /// Moves `way` to most-recently-used position in the packed age list.
  void touch(uint32_t set, uint32_t way) {
    uint32_t word = lru_[set];
    uint32_t out = 0;
    unsigned out_pos = 0;
    for (uint32_t i = 0; i < model_.ways; ++i) {
      const uint32_t w = (word >> (8 * i)) & 0xffu;
      if (w != way) {
        out |= w << (8 * out_pos);
        ++out_pos;
      }
    }
    out |= way << (8 * out_pos);
    lru_[set] = out;
  }

  ICacheModel model_;
  std::vector<uint32_t> tags_;
  std::vector<uint32_t> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace cabt::arch
