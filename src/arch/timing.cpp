#include "arch/timing.h"

#include <algorithm>

#include "common/error.h"

namespace cabt::arch {

void PipelineTimer::reset() {
  std::fill(std::begin(ready_), std::end(ready_), 0);
  next_issue_ = 0;
  cycles_ = 0;
  pair_open_ = false;
  pair_cycle_ = 0;
  pair_dst_ = TimedOp::kNoReg;
}

void PipelineTimer::saveState(serial::Writer& w) const {
  w.tag("pipe");
  for (const uint64_t r : ready_) {
    w.u64(r);
  }
  w.u64(next_issue_);
  w.u64(cycles_);
  w.b(pair_open_);
  w.u64(pair_cycle_);
  w.i32(pair_dst_);
}

void PipelineTimer::restoreState(serial::Reader& r) {
  r.tag("pipe");
  for (uint64_t& reg : ready_) {
    reg = r.u64();
  }
  next_issue_ = r.u64();
  cycles_ = r.u64();
  pair_open_ = r.b();
  pair_cycle_ = r.u64();
  pair_dst_ = r.i32();
}

uint64_t PipelineTimer::issue(const TimedOp& op) {
  const auto readyAt = [this](int reg) -> uint64_t {
    if (reg == TimedOp::kNoReg) {
      return 0;
    }
    CABT_ASSERT(reg >= 0 && reg < kNumRegs, "register id out of range");
    return ready_[reg];
  };
  const uint64_t src_ready = std::max(readyAt(op.src1), readyAt(op.src2));

  // Dual-issue: an LS instruction may join the immediately preceding IP
  // instruction's cycle when its operands are ready and it neither reads
  // nor overwrites the IP result (no same-cycle forwarding, no same-cycle
  // double write).
  if (pair_open_ && model_.dual_issue && pipeOf(op.cls) == Pipe::kLs) {
    const bool reads_pair_dst =
        pair_dst_ != TimedOp::kNoReg &&
        (op.src1 == pair_dst_ || op.src2 == pair_dst_);
    const bool waw = pair_dst_ != TimedOp::kNoReg && op.dst == pair_dst_;
    if (!reads_pair_dst && !waw && src_ready <= pair_cycle_) {
      pair_open_ = false;
      if (op.dst != TimedOp::kNoReg) {
        ready_[op.dst] = pair_cycle_ + model_.resultLatency(op.cls);
      }
      cycles_ = std::max(cycles_, pair_cycle_ + 1);
      return pair_cycle_;
    }
  }

  const uint64_t t = std::max(next_issue_, src_ready);
  if (op.dst != TimedOp::kNoReg) {
    ready_[op.dst] = t + model_.resultLatency(op.cls);
  }
  next_issue_ = t + 1;
  pair_open_ = pipeOf(op.cls) == Pipe::kIp;
  pair_cycle_ = t;
  pair_dst_ = op.dst;
  cycles_ = t + 1;
  return t;
}

uint64_t sequenceCycles(const PipelineModel& model,
                        const std::vector<TimedOp>& ops) {
  PipelineTimer timer(model);
  for (const TimedOp& op : ops) {
    timer.issue(op);
  }
  return timer.cycles();
}

}  // namespace cabt::arch
