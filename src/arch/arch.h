// Architecture description of the source processor.
//
// The paper describes the source processor (pipelines, caches, instruction
// timing, memory map) in an XML file that a tool turns into C++ classes.
// Here the same data is loaded at runtime from an XML subset (see
// DESIGN.md for the substitution note). The description is the single
// source of timing truth: the reference ISS, the translator's static cycle
// calculator and the RT-level model all consume this structure, which is
// what makes detail level 3 able to reproduce the reference cycle count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/memmap.h"

namespace cabt::arch {

/// Micro-architectural classification of a source instruction. The IP
/// (integer) and LS (load/store) pipelines of the TRC32 can each accept
/// one instruction per cycle; see PipelineModel for the pairing rule.
enum class OpClass : uint8_t {
  kIpAlu,        ///< data-register ALU op (IP pipeline, 1-cycle result)
  kMul,          ///< multiply (IP pipeline, longer result latency)
  kLsAlu,        ///< address-register ALU op (LS pipeline, 1-cycle result)
  kLoad,         ///< memory load (LS pipeline, load-use delay)
  kStore,        ///< memory store (LS pipeline)
  kBranchCond,   ///< conditional direct branch
  kBranchUncond, ///< unconditional direct branch
  kCall,         ///< direct call (writes the link register)
  kBranchInd,    ///< indirect branch (return)
  kNop,          ///< no-operation (IP pipeline)
  kHalt,         ///< simulation stop
};

/// True for every class that transfers control.
constexpr bool isControlTransfer(OpClass c) {
  return c == OpClass::kBranchCond || c == OpClass::kBranchUncond ||
         c == OpClass::kCall || c == OpClass::kBranchInd;
}

/// Which pipeline an op class occupies.
enum class Pipe : uint8_t { kIp, kLs };

constexpr Pipe pipeOf(OpClass c) {
  switch (c) {
    case OpClass::kLsAlu:
    case OpClass::kLoad:
    case OpClass::kStore:
      return Pipe::kLs;
    default:
      return Pipe::kIp;
  }
}

/// Issue-pairing and result-latency model of the dual-pipeline core.
struct PipelineModel {
  /// When true, an IP-class instruction immediately followed in program
  /// order by an LS-class instruction can issue in the same cycle,
  /// provided the LS instruction does not read the IP result.
  bool dual_issue = true;
  /// Result latency per class: number of cycles after issue before a
  /// dependent instruction can issue. 1 = full forwarding.
  unsigned alu_latency = 1;
  unsigned mul_latency = 2;
  unsigned load_latency = 2;

  [[nodiscard]] unsigned resultLatency(OpClass c) const {
    switch (c) {
      case OpClass::kMul:
        return mul_latency;
      case OpClass::kLoad:
        return load_latency;
      default:
        return alu_latency;
    }
  }
};

/// Branch-cost model with static prediction (backward taken / forward
/// not taken, the TriCore scheme). Every control transfer occupies one
/// issue cycle (counted by the pipeline timer); the extras below are added
/// on top depending on the outcome.
struct BranchModel {
  unsigned taken_predicted_extra = 1;  ///< refill after a predicted-taken hit
  unsigned mispredict_extra = 2;       ///< flush after a misprediction
  unsigned indirect_extra = 2;         ///< indirect targets are never predicted

  /// Static prediction for a conditional branch with displacement `disp`
  /// (bytes, relative to the branch address): backward means predicted
  /// taken.
  [[nodiscard]] static bool predictsTaken(int32_t disp) { return disp < 0; }

  /// Extra cycles of a conditional branch given the static prediction and
  /// the actual outcome.
  [[nodiscard]] unsigned conditionalExtra(bool predicted_taken,
                                          bool taken) const {
    if (taken) {
      return predicted_taken ? taken_predicted_extra : mispredict_extra;
    }
    return predicted_taken ? mispredict_extra : 0;
  }

  /// Extra cycles of an unconditional control transfer of class `c`
  /// (fully static: these never need dynamic correction).
  [[nodiscard]] unsigned unconditionalExtra(OpClass c) const {
    switch (c) {
      case OpClass::kBranchUncond:
      case OpClass::kCall:
        return taken_predicted_extra;
      case OpClass::kBranchInd:
        return indirect_extra;
      default:
        return 0;
    }
  }
};

/// Instruction-cache geometry. The fetch rule is: executing an instruction
/// touches the cache line containing its first byte (the fetch buffer
/// prefetches the straddled remainder of mixed 16/32-bit instructions);
/// consecutive touches of the same line within one basic block count as a
/// single access, and the touch sequence restarts at every basic-block
/// boundary. This rule is what the translator's cache analysis blocks
/// reproduce exactly.
struct ICacheModel {
  bool enabled = true;
  uint32_t sets = 64;
  uint32_t ways = 2;
  uint32_t line_bytes = 16;
  uint32_t miss_penalty = 8;  ///< cycles added per line miss

  [[nodiscard]] unsigned offsetBits() const;
  [[nodiscard]] unsigned setBits() const;
  [[nodiscard]] uint32_t lineOf(uint32_t addr) const {
    return addr >> offsetBits();
  }
  [[nodiscard]] uint32_t setOf(uint32_t addr) const {
    return lineOf(addr) & (sets - 1);
  }
  [[nodiscard]] uint32_t tagOf(uint32_t addr) const {
    return lineOf(addr) >> setBits();
  }
  void validate() const;
};

/// Complete description of a source processor.
struct ArchDescription {
  std::string name = "trc32-tc10gp";
  uint64_t clock_hz = 48'000'000;
  PipelineModel pipeline;
  BranchModel branch;
  ICacheModel icache;
  ICacheModel dcache;  ///< parsed for completeness; translation of data
                       ///< caches is future work in the paper as well
  MemoryMap memory_map;

  /// The default TC10GP-flavoured description used throughout the repo.
  static ArchDescription defaultTc10gp();
};

/// Parses an <processor> XML document into an ArchDescription.
ArchDescription parseArchXml(std::string_view xml_text);

/// The default description as XML (round-trips through parseArchXml; also
/// serves as schema documentation).
std::string defaultArchXml();

}  // namespace cabt::arch
