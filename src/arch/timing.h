// Shared pipeline timing model.
//
// PipelineTimer computes the issue schedule of a sequence of instructions
// on the dual-pipeline in-order TRC32 core. It is used in two places with
// the same semantics:
//   * the translator's static cycle calculation of a basic block
//     (paper section 3.3 — "modeling the pipeline per basic block"), and
//   * the reference ISS, which feeds it the dynamic instruction stream
//     and resets it at basic-block boundaries (the TRC32 pipeline drains
//     at every control transfer and at every static branch target; see
//     DESIGN.md).
// Because both consumers share this definition, a level-3 translation can
// reproduce the reference cycle count exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.h"
#include "common/serial.h"

namespace cabt::arch {

/// Register operands of a timed instruction, in a unified register
/// numbering: 0..15 = D0..D15, 16..31 = A0..A31. kNoReg marks unused slots.
struct TimedOp {
  static constexpr int kNoReg = -1;

  OpClass cls = OpClass::kIpAlu;
  int dst = kNoReg;
  int src1 = kNoReg;
  int src2 = kNoReg;
};

/// In-order dual-issue scoreboard.
class PipelineTimer {
 public:
  explicit PipelineTimer(const PipelineModel& model) : model_(model) {
    reset();
  }

  /// Forgets all in-flight results (pipeline drain at a block boundary).
  void reset();

  /// Issues one instruction; returns the cycle (0-based since reset) in
  /// which it issues.
  uint64_t issue(const TimedOp& op);

  /// Total cycles consumed since reset(): issue cycle of the last
  /// instruction + 1, or 0 when nothing was issued.
  [[nodiscard]] uint64_t cycles() const { return cycles_; }

  // -- snapshot support (src/snap): the mid-block scoreboard is
  //    micro-architectural state — a core saved between two instructions
  //    of an open block must resume with the identical issue schedule.
  void saveState(serial::Writer& w) const;
  void restoreState(serial::Reader& r);

 private:
  static constexpr int kNumRegs = 32;

  const PipelineModel& model_;
  uint64_t ready_[kNumRegs] = {};  ///< cycle when each register is usable
  uint64_t next_issue_ = 0;        ///< earliest cycle for the next instruction
  uint64_t cycles_ = 0;
  bool pair_open_ = false;         ///< an IP instr issued at next_issue_-1 and
                                   ///< may still pair with an LS instr
  uint64_t pair_cycle_ = 0;
  int pair_dst_ = TimedOp::kNoReg;
};

/// Convenience: cycles of a whole straight-line sequence from a fresh
/// pipeline (what the static calculator uses per basic block).
uint64_t sequenceCycles(const PipelineModel& model,
                        const std::vector<TimedOp>& ops);

}  // namespace cabt::arch
