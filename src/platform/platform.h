// The emulation platform (paper section 1): the V6X VLIW processor next
// to the "FPGA" hardware — the synchronization device that generates SoC
// clock cycles for the attached hardware, and the bus interface that
// adapts VLIW accesses to the SoC bus of the emulated processor core.
//
// Also provides the reference board (N ISS cores + shared peripherals,
// hosted on the event kernel with quantum-based temporal decoupling) and
// the state-comparison helpers used by the equivalence tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "arch/arch.h"
#include "elf/elf.h"
#include "fi/fault_proxy.h"
#include "fi/watchdog.h"
#include "iss/iss.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/kernel.h"
#include "soc/interrupts.h"
#include "soc/standard_board.h"
#include "soc/sync_device.h"
#include "vliw/sim.h"
#include "xlat/regmap.h"
#include "xlat/translator.h"

namespace cabt::platform {

struct PlatformConfig {
  /// VLIW clock cycles per generated SoC cycle (the FPGA generation rate).
  unsigned vliw_cycles_per_soc_cycle = 1;
  uint64_t vliw_clock_hz = 200'000'000;
  uint64_t max_cycles = 4'000'000'000ull;
  /// VLIW cycles the core process runs per event-kernel activation.
  uint64_t quantum = 65'536;
};

/// Memory-mapped synchronization device front end for the V6X core.
class SyncHandler : public vliw::IoHandler {
 public:
  explicit SyncHandler(soc::SyncDevice* sync) : sync_(sync) {}

  [[nodiscard]] bool covers(uint32_t addr) const override {
    return addr >= xlat::kSyncDeviceBase &&
           addr < xlat::kSyncDeviceBase + soc::SyncDevice::kWindowSize;
  }
  bool ready(uint32_t addr, bool is_write) override {
    // Reading the status register waits for the end of cycle generation.
    if (!is_write &&
        addr == xlat::kSyncDeviceBase + soc::SyncDevice::kStatusOffset) {
      return !sync_->busy();
    }
    return true;
  }
  uint32_t load(uint32_t addr, unsigned) override {
    switch (addr - xlat::kSyncDeviceBase) {
      case soc::SyncDevice::kStatusOffset:
        return 0;  // only readable when idle
      case soc::SyncDevice::kTotalOffset:
        return static_cast<uint32_t>(sync_->totalGenerated());
      default:
        CABT_FAIL("sync device read at bad offset");
    }
  }
  void store(uint32_t addr, uint32_t value, unsigned) override {
    switch (addr - xlat::kSyncDeviceBase) {
      case soc::SyncDevice::kStartOffset:
        sync_->start(value);
        break;
      case soc::SyncDevice::kCorrectOffset:
        sync_->correct(value);
        break;
      default:
        CABT_FAIL("sync device write at bad offset");
    }
  }

 private:
  soc::SyncDevice* sync_;
};

/// Bus interface between the V6X core and the SoC bus (identity-mapped
/// over the source I/O region). While cycle generation is active, an
/// access completes on the next generated SoC edge (bus handshake in the
/// emulated clock domain); when generation is idle it completes
/// immediately at the current SoC time.
class BridgeHandler : public vliw::IoHandler {
 public:
  BridgeHandler(soc::SocBus* bus, soc::SyncDevice* sync, uint32_t io_base,
                uint32_t io_size)
      : bus_(bus), sync_(sync), io_base_(io_base), io_size_(io_size) {}

  [[nodiscard]] bool covers(uint32_t addr) const override {
    return addr >= io_base_ && addr - io_base_ < io_size_;
  }
  bool ready(uint32_t, bool) override {
    return !sync_->busy() || edge_this_cycle_;
  }
  uint32_t load(uint32_t addr, unsigned size) override {
    return bus_->read(addr, size);
  }
  void store(uint32_t addr, uint32_t value, unsigned size) override {
    bus_->write(addr, value, size);
  }

  void setEdge(bool edge) { edge_this_cycle_ = edge; }

 private:
  soc::SocBus* bus_;
  soc::SyncDevice* sync_;
  uint32_t io_base_;
  uint32_t io_size_;
  bool edge_this_cycle_ = false;
};

struct RunResult {
  vliw::RunState state = vliw::RunState::kRunning;
  uint64_t vliw_cycles = 0;
  uint64_t generated_cycles = 0;  ///< SoC cycles emitted by the sync device
  uint64_t sync_stall_cycles = 0;
  uint64_t correction_cycles = 0;
};

/// The assembled platform: VLIW simulator + sync device + bus bridge +
/// standard peripherals.
class EmulationPlatform {
 public:
  EmulationPlatform(const arch::ArchDescription& desc,
                    const elf::Object& image, PlatformConfig config = {});

  RunResult run();

  [[nodiscard]] vliw::V6xSim& sim() { return sim_; }
  [[nodiscard]] const vliw::V6xSim& sim() const { return sim_; }
  [[nodiscard]] soc::SyncDevice& sync() { return *sync_; }
  [[nodiscard]] soc::StandardPeripherals& board() { return *board_; }
  [[nodiscard]] const PlatformConfig& config() const { return config_; }

  /// Reads the V6X register holding source data register Di.
  [[nodiscard]] uint32_t srcD(int i) const {
    return sim_.reg(xlat::srcD(i));
  }
  /// Reads the V6X register holding source address register Ai.
  [[nodiscard]] uint32_t srcA(int i) const {
    return sim_.reg(xlat::srcA(i));
  }

 private:
  PlatformConfig config_;
  std::unique_ptr<soc::StandardPeripherals> board_;
  std::unique_ptr<soc::SyncDevice> sync_;
  std::unique_ptr<SyncHandler> sync_handler_;
  std::unique_ptr<BridgeHandler> bridge_;
  vliw::V6xSim sim_;
};

/// ISS configuration equivalent to a translator detail level, for the
/// scenario matrix (single-core / multi-core / interrupt-driven crossed
/// with functional / static / branch-predict / icache).
iss::IssConfig issConfigFor(xlat::DetailLevel level, iss::IssConfig base = {});

/// Address of `symbol` in `object`; throws when absent. Used to resolve
/// interrupt handler entries for IssConfig::extra_leaders.
uint32_t symbolAddr(const elf::Object& object, std::string_view symbol);

/// Interrupt lines of the reference board's per-core controllers
/// (construction-time wiring; see ReferenceBoard below).
inline constexpr unsigned kPTimerIrqLine = 0;    ///< core 0 only
inline constexpr unsigned kMailboxIrqLine = 1;   ///< doorbell i -> core i
inline constexpr unsigned kBusErrorIrqLine = 2;  ///< fi bus-error windows
inline constexpr unsigned kWatchdogIrqLine = 3;  ///< core 0 only, opt-in

struct BoardConfig {
  /// Base ISS configuration applied to every core (detail knobs,
  /// instruction limits, extra block leaders for interrupt handlers).
  iss::IssConfig iss;
  /// SoC cycles of temporal decoupling: how far one core runs per kernel
  /// activation before syncing. With a single core the simulation is
  /// exactly quantum-invariant; with several it bounds cross-core
  /// visibility latency (see sim/kernel.h).
  sim::Cycle quantum = 1024;
  /// Parallel-round execution (sim/kernel.h): cores whose quantum slice
  /// has a core-private footprint run concurrently on worker threads;
  /// everything shared drains in the sequential dispatch order, so the
  /// run is bit-identical to `parallel.enabled = false` by construction
  /// (tests/parallel_test.cpp).
  sim::Kernel::ParallelConfig parallel;
  /// Attach the watchdog peripheral (fi::WatchdogDevice) at
  /// StandardIoMap::kWatchdogOffset, wired to core 0's controller on
  /// kWatchdogIrqLine. Opt-in: attaching a device changes the snapshot
  /// device set, so default boards (and their golden digests) are
  /// untouched.
  bool watchdog = false;
};

/// One periodic checkpoint: the full platform snapshot (snap::save) plus
/// the cycle it was taken at and the rolling state digest there. With a
/// spill directory configured the bytes live in `path` instead of `data`.
struct Checkpoint {
  sim::Cycle cycle = 0;
  uint64_t digest = 0;
  std::vector<uint8_t> data;
  std::string path;  ///< non-empty = spilled to disk, data is empty
};

/// Periodic auto-snapshot during run()/runTo(). The board runs the
/// kernel in interval-sized chunks — chunking never changes behaviour
/// (the dispatch order is the comparator's total order either way) — and
/// checkpoints between chunks, keeping the most recent `ring` snapshots
/// and the full (cycle, digest) trail. interval = 0 disables both.
struct CheckpointConfig {
  sim::Cycle interval = 0;
  size_t ring = 4;
  /// Non-empty: spill ring entries to `<dir>/cp_<cycle>.snap` instead of
  /// holding the bytes in memory (the directory must exist). recover()
  /// then reads them back with bounded retries (RecoveryConfig).
  std::string dir;
};

/// Graceful-degradation knobs for ReferenceBoard::recover() (DESIGN.md
/// section 12).
struct RecoveryConfig {
  /// Let runTo() invoke recover() on its own when a chunk boundary sees
  /// a digest-trail divergence or a fired watchdog (checkpointing must
  /// be enabled — recovery needs a ring to fall back into).
  bool auto_recover = false;
  /// Total automatic recoveries runTo() may perform before it gives up
  /// and keeps running degraded (a deterministic hang would otherwise
  /// recover forever).
  size_t max_recoveries = 4;
  /// Attempts per spilled ring entry when the file read fails (I/O, not
  /// corruption: corrupt bytes fail the snapshot footer and fall through
  /// to the next-older entry instead of being retried).
  size_t io_attempts = 3;
  /// Doubling backoff between those attempts; 0 (the default, used by
  /// tests) retries immediately.
  unsigned backoff_ms = 0;
};

/// What recover() did, entry by entry.
struct RecoveryReport {
  bool recovered = false;
  sim::Cycle resume_cycle = 0;  ///< cycle of the restored ring entry
  uint64_t digest = 0;          ///< digest after the restore
  size_t entries_tried = 0;
  size_t entries_corrupt = 0;   ///< failed integrity/restore
  size_t entries_diverged = 0;  ///< restored but digest-mismatched
  size_t io_retries = 0;        ///< extra file-read attempts consumed
  std::string detail;           ///< human-readable failure summary
};

/// The reference board, grown into a multi-core SoC: N ISS cores (one
/// ELF image each, private program memory) share the standard
/// peripherals plus the interrupt path — a per-core interrupt
/// controller, a programmable interval timer wired to core 0 line 0, and
/// an inter-core mailbox whose doorbell `i` rings line 1 on core i. The
/// cores are event-kernel processes that each run up to one quantum of
/// local time before syncing. The single-image constructor keeps the
/// original ground-truth behaviour (one core, same peripherals).
class ReferenceBoard {
 public:
  ReferenceBoard(const arch::ArchDescription& desc, const elf::Object& object,
                 iss::IssConfig config = {});
  ReferenceBoard(const arch::ArchDescription& desc,
                 const std::vector<const elf::Object*>& images,
                 BoardConfig config = {});
  ~ReferenceBoard();  // out of line: CoreProcess is an incomplete type here

  /// Runs every core to completion under the kernel. Returns kHalted
  /// when all cores halted, else the first non-halted core's reason.
  iss::StopReason run();

  /// Deterministic fast-forward: dispatches kernel events up to SoC
  /// cycle `limit` and returns the kernel's time. Calling runTo in any
  /// sequence of limits is bit-identical to one uninterrupted run — this
  /// is how a restored snapshot replays to an arbitrary cycle. Honors
  /// the checkpoint configuration.
  sim::Cycle runTo(sim::Cycle limit);

  /// Enables periodic auto-snapshotting (see CheckpointConfig). Call
  /// before run()/runTo(); reconfiguring clears the ring and the trail.
  void setCheckpointing(const CheckpointConfig& config);
  /// The retained snapshot ring, oldest first.
  [[nodiscard]] const std::deque<Checkpoint>& checkpoints() const {
    return checkpoints_;
  }
  /// Every (cycle, digest) pair recorded at checkpoint boundaries since
  /// checkpointing was enabled — the replay ledger golden-state checks
  /// compare against.
  [[nodiscard]] const std::vector<std::pair<sim::Cycle, uint64_t>>&
  digestTrail() const {
    return digest_trail_;
  }

  // -- fault injection & recovery (src/fi, DESIGN.md section 12) --------

  /// Connects a fault injector to core `i` (Iss::setInjector); the
  /// injector must outlive the run. nullptr detaches.
  void attachInjector(size_t i, fi::CoreInjector* injector);
  /// The fault proxy wrapping the device named `name` ("timer",
  /// "chardev", "scratch", "ptimer", "mailbox", "watchdog"); throws when
  /// no such proxied device exists. Campaigns arm stall windows here.
  [[nodiscard]] fi::FaultProxy* faultProxy(const std::string& name);
  /// The watchdog peripheral; only on boards built with
  /// BoardConfig::watchdog.
  [[nodiscard]] fi::WatchdogDevice& watchdog();
  [[nodiscard]] bool hasWatchdog() const { return watchdog_ != nullptr; }
  /// True while a watchdog expiry awaits handling: runTo() either
  /// auto-recovers on it (RecoveryConfig::auto_recover) or leaves it for
  /// the caller; recover() clears it.
  [[nodiscard]] bool watchdogFirePending() const {
    return watchdog_fire_pending_;
  }

  /// Hook run after each ring entry is recorded (fault campaigns use it
  /// to corrupt entries deterministically; tests use it to fuzz the
  /// ring). Receives the freshly pushed entry.
  void setCheckpointHook(std::function<void(Checkpoint&)> hook) {
    checkpoint_hook_ = std::move(hook);
  }
  void setRecovery(const RecoveryConfig& config) { recovery_ = config; }
  /// Arms digest-trail divergence detection: each checkpoint's digest is
  /// compared against the entry with the same cycle in `trail` (from a
  /// known-good run); a mismatch — or a checkpoint cycle the trail never
  /// reached — marks the chunk diverged and the checkpoint is not
  /// retained. recover() likewise only rewinds to trail-certified
  /// entries while this is armed.
  void setExpectedTrail(std::vector<std::pair<sim::Cycle, uint64_t>> trail);

  /// Graceful degradation: walks the snapshot ring newest-to-oldest and
  /// restores the first entry that loads (bounded I/O retries with
  /// backoff for spilled entries), passes the integrity footer and
  /// reproduces its recorded digest (and matches the expected trail when
  /// armed). On success the board has rewound to that entry — newer ring
  /// entries and trail suffixes are discarded, the watchdog flag is
  /// cleared — and deterministic replay (runTo) resumes from there.
  /// Returns a report either way; report.recovered == false means the
  /// whole ring was exhausted.
  RecoveryReport recover();
  /// Completed recoveries (manual and automatic).
  [[nodiscard]] size_t recoveries() const { return recoveries_; }
  /// Chunks whose checkpoint digest contradicted the expected trail.
  [[nodiscard]] size_t divergences() const { return divergences_; }

  /// Instructions retired summed over every core — the board's
  /// contribution to fleet-level aggregate-MIPS accounting (src/fleet,
  /// bench/bench_fleet.cpp).
  [[nodiscard]] uint64_t instructionsRetired() const;

  [[nodiscard]] size_t numCores() const { return cores_.size(); }
  [[nodiscard]] iss::Iss& core(size_t i) { return *cores_.at(i); }
  [[nodiscard]] const iss::Iss& core(size_t i) const { return *cores_.at(i); }
  [[nodiscard]] iss::Iss& iss() { return *cores_.front(); }
  [[nodiscard]] const iss::Iss& iss() const { return *cores_.front(); }
  [[nodiscard]] soc::StandardPeripherals& board() { return *board_; }
  [[nodiscard]] const soc::StandardPeripherals& board() const {
    return *board_;
  }
  [[nodiscard]] soc::InterruptController& intc(size_t i) {
    return *intcs_.at(i);
  }
  [[nodiscard]] soc::ProgrammableTimer& ptimer() { return *ptimer_; }
  [[nodiscard]] soc::MailboxDevice& mailbox() { return *mailbox_; }
  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] const sim::Kernel& kernel() const { return kernel_; }
  /// The event-kernel process hosting core `i` (snapshot identity: the
  /// kernel queue serializes processes by this index).
  [[nodiscard]] sim::Process* process(size_t i) const;

  // -- observability (src/obs, DESIGN.md section 11) --------------------

  /// Wires a timeline sink through the whole board: per-core slice spans
  /// and ISS instants (irq, trace_form, guard_bail) on lanes
  /// [0, numCores), parallel-round spans on the kernel lane, checkpoint
  /// instants on the snap lane, and private-prefix spans on the worker
  /// lanes. Pass nullptr to detach. Observers never feed back: attaching
  /// a sink leaves every architectural byte — and therefore snap::digest
  /// — unchanged.
  void setTraceSink(obs::TraceSink* sink);
  /// Attaches a guest PC sampler to core `i` (samplers are per-core, so
  /// the sample stream is race-free under the parallel kernel — see
  /// obs/profile.h).
  void attachSampler(size_t i, obs::PcSampler* sampler);
  /// Attaches an edge-coverage map to core `i` (core/coverage.h; the
  /// fuzzing farm's feedback signal). Per-core like the sampler, with
  /// the identical observer guarantees; nullptr detaches.
  void attachEdgeCoverage(size_t i, core::EdgeCoverage* cov);
  /// Publishes <prefix>coreN.iss.*, <prefix>kernel.*, <prefix>bus.* and
  /// <prefix>snap.* into `reg`.
  void publishMetrics(obs::MetricsRegistry& reg,
                      const std::string& prefix = "board.") const;

 private:
  class CoreProcess;

  void init(const arch::ArchDescription& desc,
            const std::vector<const elf::Object*>& images,
            const BoardConfig& config);
  /// Returns true when the checkpoint's digest contradicts the expected
  /// trail (the diverged checkpoint is not retained).
  bool takeCheckpoint(sim::Cycle cycle);

  sim::Kernel kernel_;
  CheckpointConfig checkpoint_;
  std::deque<Checkpoint> checkpoints_;
  std::vector<std::pair<sim::Cycle, uint64_t>> digest_trail_;
  std::unique_ptr<soc::StandardPeripherals> board_;
  std::vector<std::unique_ptr<soc::InterruptController>> intcs_;
  std::unique_ptr<soc::ProgrammableTimer> ptimer_;
  std::unique_ptr<soc::MailboxDevice> mailbox_;
  std::vector<std::unique_ptr<iss::Iss>> cores_;
  std::vector<std::unique_ptr<CoreProcess>> procs_;
  obs::TraceSink* trace_sink_ = nullptr;  ///< never serialized

  // Fault-injection & recovery harness state (never serialized, never
  // digested). The board-level devices are attached to the bus through
  // owned FaultProxy decorators; proxies_ indexes those plus the
  // StandardPeripherals ports by device name for faultProxy().
  std::unique_ptr<fi::WatchdogDevice> watchdog_;  ///< BoardConfig::watchdog
  std::unique_ptr<fi::FaultProxy> ptimer_port_;
  std::unique_ptr<fi::FaultProxy> mailbox_port_;
  std::unique_ptr<fi::FaultProxy> watchdog_port_;
  std::vector<fi::FaultProxy*> proxies_;
  std::function<void(Checkpoint&)> checkpoint_hook_;
  RecoveryConfig recovery_;
  std::vector<std::pair<sim::Cycle, uint64_t>> expected_trail_;
  bool watchdog_fire_pending_ = false;
  size_t recoveries_ = 0;
  size_t divergences_ = 0;
};

/// Remap-aware equality of an ISS value and a platform value: equal, or
/// the platform value is the remapped image of a source-region pointer.
bool valuesMatch(const arch::ArchDescription& desc, uint32_t iss_value,
                 uint32_t platform_value);

/// Compares the full architectural state (data registers, address
/// registers, remapped memory) after both sides halted. Returns a
/// human-readable description of the first mismatch, or an empty string.
std::string compareFinalState(const arch::ArchDescription& desc,
                              const iss::Iss& reference,
                              const EmulationPlatform& platform,
                              const elf::Object& source_object);

}  // namespace cabt::platform
