// The emulation platform (paper section 1): the V6X VLIW processor next
// to the "FPGA" hardware — the synchronization device that generates SoC
// clock cycles for the attached hardware, and the bus interface that
// adapts VLIW accesses to the SoC bus of the emulated processor core.
//
// Also provides the reference board (ISS + same peripherals) and the
// state-comparison helpers used by the equivalence tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/arch.h"
#include "elf/elf.h"
#include "iss/iss.h"
#include "soc/standard_board.h"
#include "soc/sync_device.h"
#include "vliw/sim.h"
#include "xlat/regmap.h"

namespace cabt::platform {

struct PlatformConfig {
  /// VLIW clock cycles per generated SoC cycle (the FPGA generation rate).
  unsigned vliw_cycles_per_soc_cycle = 1;
  uint64_t vliw_clock_hz = 200'000'000;
  uint64_t max_cycles = 4'000'000'000ull;
};

/// Memory-mapped synchronization device front end for the V6X core.
class SyncHandler : public vliw::IoHandler {
 public:
  explicit SyncHandler(soc::SyncDevice* sync) : sync_(sync) {}

  [[nodiscard]] bool covers(uint32_t addr) const override {
    return addr >= xlat::kSyncDeviceBase &&
           addr < xlat::kSyncDeviceBase + soc::SyncDevice::kWindowSize;
  }
  bool ready(uint32_t addr, bool is_write) override {
    // Reading the status register waits for the end of cycle generation.
    if (!is_write &&
        addr == xlat::kSyncDeviceBase + soc::SyncDevice::kStatusOffset) {
      return !sync_->busy();
    }
    return true;
  }
  uint32_t load(uint32_t addr, unsigned) override {
    switch (addr - xlat::kSyncDeviceBase) {
      case soc::SyncDevice::kStatusOffset:
        return 0;  // only readable when idle
      case soc::SyncDevice::kTotalOffset:
        return static_cast<uint32_t>(sync_->totalGenerated());
      default:
        CABT_FAIL("sync device read at bad offset");
    }
  }
  void store(uint32_t addr, uint32_t value, unsigned) override {
    switch (addr - xlat::kSyncDeviceBase) {
      case soc::SyncDevice::kStartOffset:
        sync_->start(value);
        break;
      case soc::SyncDevice::kCorrectOffset:
        sync_->correct(value);
        break;
      default:
        CABT_FAIL("sync device write at bad offset");
    }
  }

 private:
  soc::SyncDevice* sync_;
};

/// Bus interface between the V6X core and the SoC bus (identity-mapped
/// over the source I/O region). While cycle generation is active, an
/// access completes on the next generated SoC edge (bus handshake in the
/// emulated clock domain); when generation is idle it completes
/// immediately at the current SoC time.
class BridgeHandler : public vliw::IoHandler {
 public:
  BridgeHandler(soc::SocBus* bus, soc::SyncDevice* sync, uint32_t io_base,
                uint32_t io_size)
      : bus_(bus), sync_(sync), io_base_(io_base), io_size_(io_size) {}

  [[nodiscard]] bool covers(uint32_t addr) const override {
    return addr >= io_base_ && addr - io_base_ < io_size_;
  }
  bool ready(uint32_t, bool) override {
    return !sync_->busy() || edge_this_cycle_;
  }
  uint32_t load(uint32_t addr, unsigned size) override {
    return bus_->read(addr, size);
  }
  void store(uint32_t addr, uint32_t value, unsigned size) override {
    bus_->write(addr, value, size);
  }

  void setEdge(bool edge) { edge_this_cycle_ = edge; }

 private:
  soc::SocBus* bus_;
  soc::SyncDevice* sync_;
  uint32_t io_base_;
  uint32_t io_size_;
  bool edge_this_cycle_ = false;
};

struct RunResult {
  vliw::RunState state = vliw::RunState::kRunning;
  uint64_t vliw_cycles = 0;
  uint64_t generated_cycles = 0;  ///< SoC cycles emitted by the sync device
  uint64_t sync_stall_cycles = 0;
  uint64_t correction_cycles = 0;
};

/// The assembled platform: VLIW simulator + sync device + bus bridge +
/// standard peripherals.
class EmulationPlatform {
 public:
  EmulationPlatform(const arch::ArchDescription& desc,
                    const elf::Object& image, PlatformConfig config = {});

  RunResult run();

  [[nodiscard]] vliw::V6xSim& sim() { return sim_; }
  [[nodiscard]] const vliw::V6xSim& sim() const { return sim_; }
  [[nodiscard]] soc::SyncDevice& sync() { return *sync_; }
  [[nodiscard]] soc::StandardPeripherals& board() { return *board_; }
  [[nodiscard]] const PlatformConfig& config() const { return config_; }

  /// Reads the V6X register holding source data register Di.
  [[nodiscard]] uint32_t srcD(int i) const {
    return sim_.reg(xlat::srcD(i));
  }
  /// Reads the V6X register holding source address register Ai.
  [[nodiscard]] uint32_t srcA(int i) const {
    return sim_.reg(xlat::srcA(i));
  }

 private:
  PlatformConfig config_;
  std::unique_ptr<soc::StandardPeripherals> board_;
  std::unique_ptr<soc::SyncDevice> sync_;
  std::unique_ptr<SyncHandler> sync_handler_;
  std::unique_ptr<BridgeHandler> bridge_;
  vliw::V6xSim sim_;
};

/// The reference board: the ISS with the same peripherals, used as ground
/// truth for instruction counts, cycle counts and final state.
class ReferenceBoard {
 public:
  ReferenceBoard(const arch::ArchDescription& desc, const elf::Object& object,
                 iss::IssConfig config = {});

  iss::StopReason run() { return iss_->run(); }

  [[nodiscard]] iss::Iss& iss() { return *iss_; }
  [[nodiscard]] const iss::Iss& iss() const { return *iss_; }
  [[nodiscard]] soc::StandardPeripherals& board() { return *board_; }

 private:
  std::unique_ptr<soc::StandardPeripherals> board_;
  std::unique_ptr<iss::Iss> iss_;
};

/// Remap-aware equality of an ISS value and a platform value: equal, or
/// the platform value is the remapped image of a source-region pointer.
bool valuesMatch(const arch::ArchDescription& desc, uint32_t iss_value,
                 uint32_t platform_value);

/// Compares the full architectural state (data registers, address
/// registers, remapped memory) after both sides halted. Returns a
/// human-readable description of the first mismatch, or an empty string.
std::string compareFinalState(const arch::ArchDescription& desc,
                              const iss::Iss& reference,
                              const EmulationPlatform& platform,
                              const elf::Object& source_object);

}  // namespace cabt::platform
