#include "platform/platform.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/strutil.h"
#include "snap/snapshot.h"

namespace cabt::platform {

EmulationPlatform::EmulationPlatform(const arch::ArchDescription& desc,
                                     const elf::Object& image,
                                     PlatformConfig config)
    : config_(config) {
  const MemRegion* io = desc.memory_map.findNamed("io");
  CABT_CHECK(io != nullptr, "architecture has no 'io' region");
  board_ = std::make_unique<soc::StandardPeripherals>(io->base);
  sync_ = std::make_unique<soc::SyncDevice>(&board_->bus,
                                            config_.vliw_cycles_per_soc_cycle);
  sync_handler_ = std::make_unique<SyncHandler>(sync_.get());
  bridge_ = std::make_unique<BridgeHandler>(&board_->bus, sync_.get(),
                                            io->base, io->size);
  sim_.loadProgram(image);
  sim_.addIoHandler(sync_handler_.get());
  sim_.addIoHandler(bridge_.get());
  sim_.setCycleHook([this] {
    bridge_->setEdge(sync_->tickVliwCycle());
  });
}

namespace {

/// The V6X core as an event-kernel process: one quantum of VLIW cycles
/// per activation. The synchronization device and the bus bridge stay in
/// the VLIW clock domain (the cycle hook), exactly as before — the
/// kernel only owns the slicing, so the run is bit-identical to the old
/// monolithic run() loop.
class VliwProcess : public sim::Process {
 public:
  VliwProcess(vliw::V6xSim* sim, uint64_t max_cycles)
      : sim::Process("v6x"), sim_(sim), budget_(max_cycles) {}

  void activate(sim::Kernel& kernel) override {
    const uint64_t slice = std::min(kernel.quantum(), budget_);
    const uint64_t before = sim_->stats().cycles;
    state_ = sim_->run(slice);
    budget_ -= sim_->stats().cycles - before;
    if (state_ == vliw::RunState::kMaxCycles && budget_ > 0) {
      kernel.sync(this, kernel.now() + slice);
    }
  }

  [[nodiscard]] vliw::RunState state() const { return state_; }

 private:
  vliw::V6xSim* sim_;
  uint64_t budget_;
  vliw::RunState state_ = vliw::RunState::kRunning;
};

}  // namespace

RunResult EmulationPlatform::run() {
  sim::Kernel kernel(config_.quantum);
  VliwProcess proc(&sim_, config_.max_cycles);
  kernel.addProcess(&proc);
  kernel.run();
  RunResult r;
  r.state = proc.state();
  r.vliw_cycles = sim_.stats().cycles;
  r.generated_cycles = sync_->totalGenerated();
  r.sync_stall_cycles = sim_.stats().stall_cycles;
  r.correction_cycles = sync_->correctionTotal();
  return r;
}

iss::IssConfig issConfigFor(xlat::DetailLevel level, iss::IssConfig base) {
  switch (level) {
    case xlat::DetailLevel::kFunctional:
      base.model_timing = false;
      break;
    case xlat::DetailLevel::kStatic:
      base.model_branch_extras = false;
      base.model_icache = false;
      break;
    case xlat::DetailLevel::kBranchPredict:
      base.model_icache = false;
      break;
    case xlat::DetailLevel::kICache:
      break;
  }
  return base;
}

uint32_t symbolAddr(const elf::Object& object, std::string_view symbol) {
  const elf::Symbol* sym = object.findSymbol(symbol);
  CABT_CHECK(sym != nullptr, "no symbol '" << std::string(symbol) << "'");
  return sym->value;
}

/// One ISS core as an event-kernel process: runs until its local time
/// reaches the next quantum boundary, then syncs; finishes (and stops
/// rescheduling) on any non-resumable stop.
///
/// Under the parallel-round kernel the core additionally offers its
/// quantum slice as a private prefix (Iss::beginPrivateSlice): the
/// worker thread runs the slice until it would touch the shared bus,
/// and activate() — at the core's unchanged sequential dispatch slot —
/// commits the prefix (replaying the recorded bus-clock advance) and
/// finishes any bailed remainder in normal mode. Either way the
/// sequence of shared-state accesses is exactly the sequential one.
class ReferenceBoard::CoreProcess : public sim::Process {
 public:
  CoreProcess(iss::Iss* core, std::string name)
      : sim::Process(std::move(name)), core_(core) {}

  /// Wire before run(): the sink pointer is read from worker threads
  /// during prefixes, so it must not change while the kernel runs.
  void setTraceSink(obs::TraceSink* sink, uint32_t lane) {
    sink_ = sink;
    lane_ = lane;
  }

  void activate(sim::Kernel& kernel) override {
    const uint64_t t0 = core_->localTime();
    iss::StopReason r;
    if (prefix_ran_) {
      prefix_ran_ = false;
      if (sink_ != nullptr && !prefix_buf_.empty()) {
        // Sequential slot: the merge rides the same happens-before edge
        // (the pool's round barrier) that already publishes the
        // prefix's architectural state.
        sink_->setThreadName(prefix_lane_, prefix_lane_name_);
        sink_->merge(prefix_buf_);
      }
      r = prefix_result_;
      if (core_->commitPrivateSlice()) {
        r = core_->runUntil(slice_end_);  // finish the bailed remainder
      }
    } else {
      r = core_->runUntil(core_->localTime() + kernel.quantum());
    }
    if (sink_ != nullptr) {
      // With a prefix, t0 is the prefix's end point: the worker lane
      // shows the speculative part, this span the committed remainder.
      sink_->complete(lane_, "slice", t0, core_->localTime() - t0);
    }
    if (r == iss::StopReason::kCycleLimit) {
      kernel.sync(this, core_->localTime());
    }
  }

  [[nodiscard]] bool parallelReady() const override {
    return core_->privateSliceReady();
  }

  void parallelPrefix(sim::Cycle quantum) override {
    // The same slice-end formula activate() uses, so the prefix and a
    // sequential activation run the identical slice.
    slice_end_ = core_->localTime() + quantum;
    const uint64_t t0 = core_->localTime();
    core_->beginPrivateSlice();
    prefix_result_ = core_->runUntil(slice_end_);
    prefix_ran_ = true;
    if (sink_ != nullptr) {
      // Worker thread: everything below is process-private scratch; the
      // shared sink is only touched at the sequential merge above.
      const unsigned worker = sim::currentWorkerId();
      prefix_lane_ = obs::workerLane(worker);
      prefix_lane_name_ = "prefix runner " + std::to_string(worker);
      prefix_buf_.complete(prefix_lane_, "prefix", t0,
                           core_->localTime() - t0, "core", lane_);
    }
  }

 private:
  iss::Iss* core_;
  bool prefix_ran_ = false;
  iss::StopReason prefix_result_ = iss::StopReason::kRunning;
  uint64_t slice_end_ = 0;
  obs::TraceSink* sink_ = nullptr;
  uint32_t lane_ = 0;
  obs::TraceSink::Buffer prefix_buf_;
  uint32_t prefix_lane_ = 0;
  std::string prefix_lane_name_;
};

ReferenceBoard::ReferenceBoard(const arch::ArchDescription& desc,
                               const elf::Object& object,
                               iss::IssConfig config) {
  BoardConfig cfg;
  cfg.iss = std::move(config);
  // A lone initiator is exactly quantum-invariant; a large quantum just
  // minimises kernel overhead.
  cfg.quantum = 65'536;
  init(desc, {&object}, cfg);
}

ReferenceBoard::ReferenceBoard(const arch::ArchDescription& desc,
                               const std::vector<const elf::Object*>& images,
                               BoardConfig config) {
  init(desc, images, config);
}

void ReferenceBoard::init(const arch::ArchDescription& desc,
                          const std::vector<const elf::Object*>& images,
                          const BoardConfig& config) {
  CABT_CHECK(!images.empty(), "reference board needs at least one core");
  const MemRegion* io = desc.memory_map.findNamed("io");
  CABT_CHECK(io != nullptr, "architecture has no 'io' region");
  kernel_.setQuantum(config.quantum);
  kernel_.setParallel(config.parallel);
  board_ = std::make_unique<soc::StandardPeripherals>(io->base);
  ptimer_ = std::make_unique<soc::ProgrammableTimer>();
  mailbox_ = std::make_unique<soc::MailboxDevice>();
  // Board-level devices go onto the bus through fault proxies, like the
  // StandardPeripherals ports. The proxies forward everything (name,
  // registers, snapshot bytes); internal wiring — doorbells, IRQ routing,
  // attachIrq — deliberately stays on the raw devices: a stall models a
  // hung *bus interface*, not a dead device.
  ptimer_port_ = std::make_unique<fi::FaultProxy>(ptimer_.get());
  mailbox_port_ = std::make_unique<fi::FaultProxy>(mailbox_.get());
  board_->bus.attach(ptimer_port_.get(),
                     io->base + soc::StandardIoMap::kPTimerOffset,
                     soc::StandardIoMap::kPTimerSize);
  board_->bus.attach(mailbox_port_.get(),
                     io->base + soc::StandardIoMap::kMailboxOffset,
                     soc::StandardIoMap::kMailboxSize);
  if (config.watchdog) {
    watchdog_ = std::make_unique<fi::WatchdogDevice>();
    watchdog_port_ = std::make_unique<fi::FaultProxy>(watchdog_.get());
    board_->bus.attach(watchdog_port_.get(),
                       io->base + soc::StandardIoMap::kWatchdogOffset,
                       soc::StandardIoMap::kWatchdogSize);
    // The fire callback only flags; runTo() acts on the flag between
    // chunks (it runs inside a bus advance, mid-kernel-run).
    watchdog_->setOnFire([this](uint64_t) { watchdog_fire_pending_ = true; });
  }
  for (size_t i = 0; i < images.size(); ++i) {
    auto intc = std::make_unique<soc::InterruptController>(
        "intc" + std::to_string(i));
    board_->bus.attach(intc.get(),
                       io->base + soc::StandardIoMap::kIntcOffset +
                           static_cast<uint32_t>(i) *
                               soc::StandardIoMap::kIntcStride,
                       soc::InterruptController::kWindowSize);
    mailbox_->setDoorbell(i,
                          [raw = intc.get()] { raw->raise(kMailboxIrqLine); });
    auto core =
        std::make_unique<iss::Iss>(desc, *images[i], &board_->bus, config.iss);
    core->attachIrq(intc.get());
    intcs_.push_back(std::move(intc));
    cores_.push_back(std::move(core));
  }
  ptimer_->setIrqTarget(intcs_.front().get(), kPTimerIrqLine);
  if (watchdog_ != nullptr) {
    watchdog_->setIrqTarget(intcs_.front().get(), kWatchdogIrqLine);
  }
  proxies_ = {&board_->timer_port, &board_->chardev_port,
              &board_->scratch_port, ptimer_port_.get(), mailbox_port_.get()};
  if (watchdog_port_ != nullptr) {
    proxies_.push_back(watchdog_port_.get());
  }
  for (size_t i = 0; i < cores_.size(); ++i) {
    procs_.push_back(std::make_unique<CoreProcess>(
        cores_[i].get(), "core" + std::to_string(i)));
    kernel_.addProcess(procs_.back().get());
  }
}

ReferenceBoard::~ReferenceBoard() = default;

sim::Process* ReferenceBoard::process(size_t i) const {
  return procs_.at(i).get();
}

void ReferenceBoard::attachInjector(size_t i, fi::CoreInjector* injector) {
  cores_.at(i)->setInjector(injector);
}

fi::FaultProxy* ReferenceBoard::faultProxy(const std::string& name) {
  for (fi::FaultProxy* p : proxies_) {
    if (p->name() == name) {
      return p;
    }
  }
  CABT_FAIL("no fault-proxied device named '" << name << "'");
}

fi::WatchdogDevice& ReferenceBoard::watchdog() {
  CABT_CHECK(watchdog_ != nullptr,
             "board built without a watchdog (BoardConfig::watchdog)");
  return *watchdog_;
}

void ReferenceBoard::setExpectedTrail(
    std::vector<std::pair<sim::Cycle, uint64_t>> trail) {
  expected_trail_ = std::move(trail);
}

void ReferenceBoard::setTraceSink(obs::TraceSink* sink) {
  trace_sink_ = sink;
  kernel_.setTraceSink(sink);
  for (size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->setTraceSink(sink, obs::coreLane(i));
    procs_[i]->setTraceSink(sink, obs::coreLane(i));
  }
  if (sink != nullptr) {
    for (size_t i = 0; i < cores_.size(); ++i) {
      sink->setThreadName(obs::coreLane(i), "core" + std::to_string(i));
    }
    sink->setThreadName(obs::kKernelLane, "kernel rounds");
    sink->setThreadName(obs::kSnapLane, "snapshots");
  }
}

void ReferenceBoard::attachSampler(size_t i, obs::PcSampler* sampler) {
  cores_.at(i)->setSampler(sampler);
}

void ReferenceBoard::attachEdgeCoverage(size_t i, core::EdgeCoverage* cov) {
  cores_.at(i)->setEdgeCoverage(cov);
}

uint64_t ReferenceBoard::instructionsRetired() const {
  uint64_t total = 0;
  for (const auto& core : cores_) {
    total += core->stats().instructions;
  }
  return total;
}

void ReferenceBoard::publishMetrics(obs::MetricsRegistry& reg,
                                    const std::string& prefix) const {
  for (size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->publishMetrics(reg,
                              prefix + "core" + std::to_string(i) + ".iss.");
  }
  kernel_.publishMetrics(reg, prefix + "kernel.");
  board_->bus.publishMetrics(reg, prefix + "bus.");
  reg.setCounter(prefix + "snap.checkpoints_retained", checkpoints_.size());
  reg.setCounter(prefix + "snap.trail_length", digest_trail_.size());
  if (!digest_trail_.empty()) {
    reg.setGauge(prefix + "snap.last_checkpoint_cycle",
                 static_cast<double>(digest_trail_.back().first));
  }
  reg.setCounter(prefix + "fi.recoveries", recoveries_);
  reg.setCounter(prefix + "fi.divergences", divergences_);
  reg.setCounter(prefix + "fi.bus_fault_fires", board_->bus.busFaultFires());
  uint64_t stalled_reads = 0;
  uint64_t stalled_writes = 0;
  for (const fi::FaultProxy* p : proxies_) {
    stalled_reads += p->stalledReads();
    stalled_writes += p->stalledWrites();
  }
  reg.setCounter(prefix + "fi.device_stalled_reads", stalled_reads);
  reg.setCounter(prefix + "fi.device_stalled_writes", stalled_writes);
  if (watchdog_ != nullptr) {
    reg.setCounter(prefix + "fi.watchdog_fired", watchdog_->fired());
  }
}

void ReferenceBoard::setCheckpointing(const CheckpointConfig& config) {
  CABT_CHECK(config.interval == 0 || config.ring >= 1,
             "checkpoint ring must retain at least one snapshot");
  checkpoint_ = config;
  checkpoints_.clear();
  digest_trail_.clear();
}

bool ReferenceBoard::takeCheckpoint(sim::Cycle cycle) {
  const uint64_t digest = snap::digest(*this);
  if (!expected_trail_.empty()) {
    // Divergence detection: the entry a known-good run recorded at this
    // cycle must match. A cycle with no trail entry at all (the run kept
    // going past the certified horizon, e.g. a hung guest) counts as
    // diverged too. A diverged snapshot is not retained — keeping it
    // would hand recover() a poisoned fallback.
    const auto it = std::lower_bound(
        expected_trail_.begin(), expected_trail_.end(), cycle,
        [](const auto& e, sim::Cycle c) { return e.first < c; });
    if (it == expected_trail_.end() || it->first != cycle ||
        it->second != digest) {
      ++divergences_;
      if (trace_sink_ != nullptr) {
        trace_sink_->instant(obs::kSnapLane, "divergence", cycle, "trail",
                             digest_trail_.size());
      }
      return true;
    }
  }
  Checkpoint cp;
  cp.cycle = cycle;
  cp.digest = digest;
  if (checkpoint_.dir.empty()) {
    cp.data = snap::save(*this);
  } else {
    cp.path = checkpoint_.dir + "/cp_" + std::to_string(cycle) + ".snap";
    snap::saveFile(*this, cp.path);
  }
  checkpoints_.push_back(std::move(cp));
  while (checkpoints_.size() > checkpoint_.ring) {
    if (!checkpoints_.front().path.empty()) {
      std::remove(checkpoints_.front().path.c_str());
    }
    checkpoints_.pop_front();
  }
  digest_trail_.emplace_back(cycle, checkpoints_.back().digest);
  if (checkpoint_hook_) {
    checkpoint_hook_(checkpoints_.back());
  }
  if (trace_sink_ != nullptr) {
    // Between run() chunks, so the sequential path the sink requires.
    trace_sink_->instant(obs::kSnapLane, "checkpoint", cycle, "trail",
                         digest_trail_.size());
  }
  return false;
}

sim::Cycle ReferenceBoard::runTo(sim::Cycle limit) {
  if (checkpoint_.interval == 0) {
    return kernel_.run(limit);
  }
  // Interval-sized chunks. Chunking is behaviour-neutral: the kernel
  // dispatches the identical (time, insertion) order whether run() is
  // called once or per chunk (sequential trivially; parallel rounds
  // because every shared access drains at its sequential slot anyway).
  // Each chunk boundary lies strictly above the earliest pending event,
  // so every iteration dispatches at least one event.
  while (!kernel_.idle() && kernel_.nextEventAt() <= limit) {
    const sim::Cycle base = std::max(kernel_.now(), kernel_.nextEventAt());
    sim::Cycle next =
        base - base % checkpoint_.interval + checkpoint_.interval;
    if (next < base) {  // overflow near the end of the timebase
      next = limit;
    }
    const sim::Cycle chunk = std::min(next, limit);
    kernel_.run(chunk);
    bool diverged = false;
    if (!kernel_.idle()) {
      diverged = takeCheckpoint(chunk);
    }
    if ((diverged || watchdog_fire_pending_) && recovery_.auto_recover &&
        recoveries_ < recovery_.max_recoveries) {
      // Graceful degradation between chunks: rewind to the newest intact
      // ring entry and replay. A consumed one-shot fault does not
      // re-fire, so the replayed timeline converges on the clean run; a
      // deterministic hang recovers identically every time, which is why
      // max_recoveries bounds the loop (beyond it the board runs on
      // degraded).
      const RecoveryReport rep = recover();
      CABT_CHECK(rep.recovered,
                 "auto-recovery exhausted the snapshot ring: " << rep.detail);
      continue;  // resume from the restored (earlier) time
    }
    if (chunk >= limit) {
      break;
    }
  }
  return kernel_.now();
}

RecoveryReport ReferenceBoard::recover() {
  RecoveryReport rep;
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    ++rep.entries_tried;
    // Load the bytes: spilled entries get bounded I/O retries with
    // doubling backoff; an unreadable file counts as corrupt and falls
    // through to the next-older entry.
    std::vector<uint8_t> data;
    if (it->path.empty()) {
      data = it->data;
    } else {
      bool read_ok = false;
      unsigned backoff = recovery_.backoff_ms;
      for (size_t attempt = 0; attempt < recovery_.io_attempts; ++attempt) {
        if (attempt > 0) {
          ++rep.io_retries;
          if (backoff > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
            backoff *= 2;
          }
        }
        std::ifstream in(it->path, std::ios::binary);
        if (!in.good()) {
          continue;
        }
        data.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
        if (in.good() || in.eof()) {
          read_ok = true;
          break;
        }
      }
      if (!read_ok) {
        ++rep.entries_corrupt;
        rep.detail += "cp@" + std::to_string(it->cycle) + ": unreadable; ";
        continue;
      }
    }
    // snap::restore verifies the integrity footer before mutating any
    // state, so a corrupt entry leaves the board exactly as it was.
    try {
      snap::restore(*this, data);
    } catch (const Error& e) {
      ++rep.entries_corrupt;
      rep.detail += "cp@" + std::to_string(it->cycle) + ": " + e.what() + "; ";
      continue;
    }
    const uint64_t digest = snap::digest(*this);
    if (digest != it->digest) {
      ++rep.entries_diverged;
      rep.detail += "cp@" + std::to_string(it->cycle) + ": digest mismatch; ";
      continue;
    }
    if (!expected_trail_.empty()) {
      // When divergence detection is armed, only rewind to a point the
      // known-good trail certifies: an entry checkpointed after the run
      // left the certified timeline restores fine and reproduces its own
      // recorded digest, but resuming there would replay the failure.
      const auto t = std::lower_bound(
          expected_trail_.begin(), expected_trail_.end(), it->cycle,
          [](const auto& e, sim::Cycle c) { return e.first < c; });
      if (t == expected_trail_.end() || t->first != it->cycle ||
          t->second != digest) {
        ++rep.entries_diverged;
        rep.detail +=
            "cp@" + std::to_string(it->cycle) + ": off the expected trail; ";
        continue;
      }
    }
    // Restored and verified: discard the invalidated newer timeline.
    const sim::Cycle cycle = it->cycle;  // erase invalidates `it`
    checkpoints_.erase(it.base(), checkpoints_.end());
    while (!digest_trail_.empty() && digest_trail_.back().first > cycle) {
      digest_trail_.pop_back();
    }
    watchdog_fire_pending_ = false;
    ++recoveries_;
    rep.recovered = true;
    rep.resume_cycle = cycle;
    rep.digest = digest;
    if (trace_sink_ != nullptr) {
      trace_sink_->instant(obs::kSnapLane, "recover", cycle, "tried",
                           rep.entries_tried);
    }
    return rep;
  }
  if (rep.detail.empty()) {
    rep.detail = "snapshot ring is empty";
  }
  return rep;
}

iss::StopReason ReferenceBoard::run() {
  runTo(sim::kForever);
  for (const std::unique_ptr<iss::Iss>& core : cores_) {
    if (core->stopReason() != iss::StopReason::kHalted) {
      return core->stopReason();
    }
  }
  return iss::StopReason::kHalted;
}

bool valuesMatch(const arch::ArchDescription& desc, uint32_t iss_value,
                 uint32_t platform_value) {
  if (iss_value == platform_value) {
    return true;
  }
  const MemRegion* region = desc.memory_map.find(iss_value);
  return region != nullptr && region->remap(iss_value) == platform_value;
}

std::string compareFinalState(const arch::ArchDescription& desc,
                              const iss::Iss& reference,
                              const EmulationPlatform& platform,
                              const elf::Object& source_object) {
  for (int i = 0; i < 16; ++i) {
    const uint32_t want = reference.d(i);
    const uint32_t got = platform.srcD(i);
    if (!valuesMatch(desc, want, got)) {
      return "d" + std::to_string(i) + ": reference " + hex32(want) +
             " vs platform " + hex32(got);
    }
  }
  for (int i = 0; i < 16; ++i) {
    const uint32_t want = reference.a(i);
    const uint32_t got = platform.srcA(i);
    if (!valuesMatch(desc, want, got)) {
      return "a" + std::to_string(i) + ": reference " + hex32(want) +
             " vs platform " + hex32(got);
    }
  }
  // Compare writable memory over the source image's data/bss sections, at
  // their remapped target locations.
  for (const elf::Section& s : source_object.sections) {
    if (!s.writable) {
      continue;
    }
    const MemRegion* region = desc.memory_map.find(s.addr);
    for (uint32_t off = 0; off < s.sizeInMemory(); ++off) {
      const uint32_t src_addr = s.addr + off;
      const uint32_t tgt_addr =
          region != nullptr ? region->remap(src_addr) : src_addr;
      const uint8_t want = reference.memory().read8(src_addr);
      const uint8_t got = platform.sim().memory().read8(tgt_addr);
      if (want != got) {
        return "memory " + s.name + "+" + std::to_string(off) +
               " (src " + hex32(src_addr) + "): reference " +
               std::to_string(want) + " vs platform " + std::to_string(got);
      }
    }
  }
  return {};
}

}  // namespace cabt::platform
