#include "platform/platform.h"

#include "common/strutil.h"

namespace cabt::platform {

EmulationPlatform::EmulationPlatform(const arch::ArchDescription& desc,
                                     const elf::Object& image,
                                     PlatformConfig config)
    : config_(config) {
  const MemRegion* io = desc.memory_map.findNamed("io");
  CABT_CHECK(io != nullptr, "architecture has no 'io' region");
  board_ = std::make_unique<soc::StandardPeripherals>(io->base);
  sync_ = std::make_unique<soc::SyncDevice>(&board_->bus,
                                            config_.vliw_cycles_per_soc_cycle);
  sync_handler_ = std::make_unique<SyncHandler>(sync_.get());
  bridge_ = std::make_unique<BridgeHandler>(&board_->bus, sync_.get(),
                                            io->base, io->size);
  sim_.loadProgram(image);
  sim_.addIoHandler(sync_handler_.get());
  sim_.addIoHandler(bridge_.get());
  sim_.setCycleHook([this] {
    bridge_->setEdge(sync_->tickVliwCycle());
  });
}

RunResult EmulationPlatform::run() {
  RunResult r;
  r.state = sim_.run(config_.max_cycles);
  r.vliw_cycles = sim_.stats().cycles;
  r.generated_cycles = sync_->totalGenerated();
  r.sync_stall_cycles = sim_.stats().stall_cycles;
  r.correction_cycles = sync_->correctionTotal();
  return r;
}

ReferenceBoard::ReferenceBoard(const arch::ArchDescription& desc,
                               const elf::Object& object,
                               iss::IssConfig config) {
  const MemRegion* io = desc.memory_map.findNamed("io");
  CABT_CHECK(io != nullptr, "architecture has no 'io' region");
  board_ = std::make_unique<soc::StandardPeripherals>(io->base);
  iss_ = std::make_unique<iss::Iss>(desc, object, &board_->bus, config);
}

bool valuesMatch(const arch::ArchDescription& desc, uint32_t iss_value,
                 uint32_t platform_value) {
  if (iss_value == platform_value) {
    return true;
  }
  const MemRegion* region = desc.memory_map.find(iss_value);
  return region != nullptr && region->remap(iss_value) == platform_value;
}

std::string compareFinalState(const arch::ArchDescription& desc,
                              const iss::Iss& reference,
                              const EmulationPlatform& platform,
                              const elf::Object& source_object) {
  for (int i = 0; i < 16; ++i) {
    const uint32_t want = reference.d(i);
    const uint32_t got = platform.srcD(i);
    if (!valuesMatch(desc, want, got)) {
      return "d" + std::to_string(i) + ": reference " + hex32(want) +
             " vs platform " + hex32(got);
    }
  }
  for (int i = 0; i < 16; ++i) {
    const uint32_t want = reference.a(i);
    const uint32_t got = platform.srcA(i);
    if (!valuesMatch(desc, want, got)) {
      return "a" + std::to_string(i) + ": reference " + hex32(want) +
             " vs platform " + hex32(got);
    }
  }
  // Compare writable memory over the source image's data/bss sections, at
  // their remapped target locations.
  for (const elf::Section& s : source_object.sections) {
    if (!s.writable) {
      continue;
    }
    const MemRegion* region = desc.memory_map.find(s.addr);
    for (uint32_t off = 0; off < s.sizeInMemory(); ++off) {
      const uint32_t src_addr = s.addr + off;
      const uint32_t tgt_addr =
          region != nullptr ? region->remap(src_addr) : src_addr;
      const uint8_t want = reference.memory().read8(src_addr);
      const uint8_t got = platform.sim().memory().read8(tgt_addr);
      if (want != got) {
        return "memory " + s.name + "+" + std::to_string(off) +
               " (src " + hex32(src_addr) + "): reference " +
               std::to_string(want) + " vs platform " + std::to_string(got);
      }
    }
  }
  return {};
}

}  // namespace cabt::platform
