#include "workloads/workloads.h"

#include "common/error.h"
#include "trc/assembler.h"

namespace cabt::workloads {
namespace {

// Control-flow dominated: subtraction-based Euclid over a table of pairs
// (paper: "two more control flow dominated programs (gcd, sieve)").
// Checksum: sum of the eight gcds = 214.
const char* kGcd = R"(
; gcd - greatest common divisor over a pair table (control dominated)
_start: movha a0, hi(pairs)
        lea a0, a0, lo(pairs)
        movi d9, 0
        movi d8, 8
outer:  ldw d1, [a0]0
        ldw d2, [a0]4
gloop:  jeq d1, d2, gdone
        lt d3, d1, d2
        jnz16 d3, less
        sub d1, d1, d2
        j16 gloop
less:   sub d2, d2, d1
        j16 gloop
gdone:  add d9, d9, d1
        lea a0, a0, 8
        addi16 d8, -1
        jnz16 d8, outer
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
        .data
pairs:  .word 1071, 462, 240, 46, 360, 210, 1000, 35
        .word 81, 57, 123, 82, 35, 64, 999, 111
result: .word 0
)";

// Iterative Fibonacci, repeated; tiny loop body (small basic blocks).
const char* kFibonacci = R"(
; fibonacci - iterative Fibonacci, 180 x 46 iterations
_start: movi d0, 180
        movi d9, 0
outer:  movi d1, 0
        movi d2, 1
        movi d3, 46
floop:  add d4, d1, d2
        mov16 d1, d2
        mov16 d2, d4
        addi16 d3, -1
        jnz16 d3, floop
        add d9, d9, d2
        addi16 d0, -1
        jnz16 d0, outer
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
        .data
result: .word 0
)";

// Sieve of Eratosthenes over 700 byte flags; many small blocks.
// Checksum: number of primes below 700 = 125.
const char* kSieve = R"(
; sieve - sieve of Eratosthenes, N = 700
_start: movha a0, hi(flags)
        lea a0, a0, lo(flags)
        movi d7, 700
        movi d1, 1
        lea a1, a0, 0
        movi d3, 700
clr:    stb d1, [a1]0
        lea a1, a1, 1
        addi16 d3, -1
        jnz16 d3, clr
        movi d4, 2
        movi d9, 0
iloop:  mova a1, d4
        adda a1, a0, a1
        ldbu d5, [a1]0
        jz16 d5, nexti
        addi16 d9, 1
        add d6, d4, d4
jloop:  lt d3, d6, d7
        jz16 d3, nexti
        mova a2, d6
        adda a2, a0, a2
        movi d5, 0
        stb d5, [a2]0
        add d6, d6, d4
        j16 jloop
nexti:  addi16 d4, 1
        lt d3, d4, d7
        jnz16 d3, iloop
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
        .data
result: .word 0
        .bss
flags:  .space 704
)";

// DPCM encoder: prediction, quantisation with clamping branches,
// reconstruction (audio decoding/encoding kernel, mixed control/data).
const char* kDpcm = R"(
; dpcm - differential pulse code modulation encoder, 800 samples
_start: movi d0, 800
        movi d1, 12345      ; LCG seed
        movi d2, 25173
        movi d3, 13849
        movi d13, 255
        movi d15, 1
        movi d9, 0          ; checksum
        movi d6, 0          ; prev1
        movi d7, 0          ; prev2
sloop:  mul d1, d1, d2
        add d1, d1, d3
        and d4, d1, d13
        addi d4, d4, -128   ; sample x
        add d5, d6, d7
        sar d5, d5, d15     ; pred = (prev1 + prev2) >> 1
        sub d4, d4, d5      ; diff
        movi d10, 7
        lt d11, d10, d4
        jz16 d11, nohi
        mov16 d4, d10       ; clamp high
nohi:   movi d10, -8
        lt d11, d4, d10
        jz16 d11, nolo
        mov16 d4, d10       ; clamp low
nolo:   add d12, d5, d4     ; reconstructed
        mov16 d7, d6
        mov16 d6, d12
        movi d10, 15
        and d11, d4, d10
        add d9, d9, d11
        addi16 d0, -1
        jnz16 d0, sloop
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
        .data
result: .word 0
)";

// 16-tap FIR filter over 96 samples; regular MAC inner loop.
const char* kFir = R"(
; fir - 16-tap FIR filter, 96 output samples
_start: movha a0, hi(x)
        lea a0, a0, lo(x)
        movi d1, 12345
        movi d2, 25173
        movi d3, 13849
        movi d13, 255
        movi d0, 112
xinit:  mul d1, d1, d2
        add d1, d1, d3
        and d4, d1, d13
        stw d4, [a0]0
        lea a0, a0, 4
        addi16 d0, -1
        jnz16 d0, xinit
        movha a0, hi(x)
        lea a0, a0, lo(x)
        movha a1, hi(h)
        lea a1, a1, lo(h)
        movi d0, 96
        movi d9, 0
sloop:  movi d5, 0
        movi d6, 16
        lea a3, a0, 0
        lea a4, a1, 0
tloop:  ldw d7, [a3]0
        ldw d8, [a4]0
        mul d10, d7, d8
        add d5, d5, d10
        lea a3, a3, 4
        lea a4, a4, 4
        addi16 d6, -1
        jnz16 d6, tloop
        add d9, d9, d5
        lea a0, a0, 4
        addi16 d0, -1
        jnz16 d0, sloop
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
        .data
h:      .word 3, -1, 4, 1, -5, 9, -2, 6, 5, -3, 5, 8, -9, 7, 9, -3
result: .word 0
        .bss
x:      .space 448
)";

// Elliptic filter: two cascaded biquad-style sections evaluated in one
// large straight-line block per sample (paper: fast "especially for
// examples with large basic blocks like ellip and subband").
const char* kEllip = R"(
; ellip - cascaded filter sections, 512 samples, large basic blocks
_start: movi d0, 512
        movi d1, 12345
        movi d2, 25173
        movi d3, 13849
        movi d13, 255
        movi d15, 1
        movi d9, 0
        movi d5, 0          ; section 1 state s11
        movi d6, 0          ; section 1 state s12
        movi d7, 0          ; section 2 state s21
        movi d8, 0          ; section 2 state s22
sloop:  mul d1, d1, d2
        add d1, d1, d3
        and d4, d1, d13
        addi d4, d4, -128   ; input sample
        movi d10, 2
        mul d11, d4, d10
        add d12, d11, d5    ; y1 = 2x + s11
        movi d10, 3
        mul d14, d4, d10
        sub d5, d14, d12
        add d5, d5, d6      ; s11' = 3x - y1 + s12
        add d6, d11, d12    ; s12' = 2x + y1
        sar d12, d12, d15   ; y1 >>= 1
        movi d10, 2
        mul d11, d12, d10
        add d4, d11, d7     ; y2 = 2y1 + s21
        movi d10, 3
        mul d14, d12, d10
        sub d7, d14, d4
        add d7, d7, d8      ; s21' = 3y1 - y2 + s22
        add d8, d11, d4     ; s22' = 2y1 + y2
        sar d4, d4, d15
        add d9, d9, d4
        addi16 d0, -1
        jnz16 d0, sloop
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
        .data
result: .word 0
)";

// Two-band subband analysis: 8-tap low/high filters fully unrolled per
// output pair (large straight-line blocks, audio decoding kernel).
const char* kSubband = R"(
; subband - 2-band analysis filter, 8 taps unrolled, 160 output pairs
_start: movha a0, hi(x)
        lea a0, a0, lo(x)
        movi d1, 24321
        movi d2, 25173
        movi d3, 13849
        movi d13, 255
        movi d0, 328
xinit:  mul d1, d1, d2
        add d1, d1, d3
        and d4, d1, d13
        stw d4, [a0]0
        lea a0, a0, 4
        addi16 d0, -1
        jnz16 d0, xinit
        movha a3, hi(x)
        lea a3, a3, lo(x)
        movi d0, 160
        movi d1, 0          ; low-band accumulator
        movi d2, 0          ; high-band accumulator
nloop:  ldw d4, [a3]0
        ldw d5, [a3]4
        ldw d6, [a3]8
        ldw d7, [a3]12
        ldw d8, [a3]16
        ldw d10, [a3]20
        ldw d11, [a3]24
        ldw d12, [a3]28
        movi d14, 3
        mul d15, d4, d14
        add d1, d1, d15
        add d2, d2, d15
        movi d14, 7
        mul d15, d5, d14
        add d1, d1, d15
        sub d2, d2, d15
        movi d14, 11
        mul d15, d6, d14
        add d1, d1, d15
        add d2, d2, d15
        movi d14, 15
        mul d15, d7, d14
        add d1, d1, d15
        sub d2, d2, d15
        movi d14, 15
        mul d15, d8, d14
        add d1, d1, d15
        add d2, d2, d15
        movi d14, 11
        mul d15, d10, d14
        add d1, d1, d15
        sub d2, d2, d15
        movi d14, 7
        mul d15, d11, d14
        add d1, d1, d15
        add d2, d2, d15
        movi d14, 3
        mul d15, d12, d14
        add d1, d1, d15
        sub d2, d2, d15
        lea a3, a3, 8
        addi16 d0, -1
        movi d14, 0
        jne d0, d14, nloop
        add d9, d1, d2
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
        .data
result: .word 0
        .bss
x:      .space 1312
)";

// ---- SoC-scenario programs (beyond the paper's figure set) ---------------
//
// These target the reference board's interrupt path (interrupt controller
// at I/O offset 0x400, programmable timer at 0x500, shared mailbox at
// 0x600 — soc::StandardIoMap). Convention: A14 is the interrupt link
// register and the ISR owns d12..d15; interrupts are sampled at basic-
// block boundaries (see DESIGN.md).

// Interrupt-driven tick counter: the programmable timer raises line 0
// every 400 SoC cycles; the ISR counts ticks in d14; main spins until 8
// ticks arrived, then disarms everything. Checksum: 8*8 + 100 = 164,
// independent of detail level, quantum and execution engine.
const char* kIrqTicks = R"(
; irq_ticks - timer-interrupt tick counter (interrupt-driven scenario)
_start: movha a6, 0xf000      ; I/O region
        movi d14, 0           ; tick count, ISR-owned
        movi d8, 8
        movh d0, hi(isr)
        addi d0, d0, lo(isr)
        stw d0, [a6]0x410     ; intc VECTOR = isr
        movi d0, 1
        stw d0, [a6]0x404     ; intc ENABLE line 0 (timer)
        stw d0, [a6]0x414     ; intc CTRL master enable
        movi d0, 400
        stw d0, [a6]0x500     ; ptimer LOAD = 400 cycles
        movi d0, 3
        stw d0, [a6]0x504     ; ptimer CTRL = enable | periodic
wait:   lt d1, d14, d8
        jnz16 d1, wait        ; spin until the ISR counted 8 ticks
        movi d0, 0
        stw d0, [a6]0x504     ; stop the timer
        stw d0, [a6]0x414     ; master disable
        mul d9, d14, d14
        addi d9, d9, 100      ; checksum = 8*8 + 100
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
isr:    addi16 d14, 1
        movi d15, 1
        stw d15, [a6]0x40c    ; ACK line 0 (write-1-to-clear)
        stw d15, [a6]0x41c    ; EOI (clear in-service)
        ji a14                ; return from interrupt
        .data
result: .word 0
)";

// Multi-core producer (core 0): each timer interrupt produces one value
// n*n + 3 into the shared mailbox (spinning on FULL inside the ISR);
// main waits for 16 productions. Checksum: sum n=1..16 of n^2+3 = 1544.
const char* kMcProducer = R"(
; mc_producer - timer-interrupt mailbox producer (multi-core scenario)
_start: movha a6, 0xf000
        movi d14, 0           ; produced count, ISR-owned
        movi d9, 0            ; running sum, ISR-owned
        movi d8, 16
        movh d0, hi(isr)
        addi d0, d0, lo(isr)
        stw d0, [a6]0x410     ; intc VECTOR = isr
        movi d0, 1
        stw d0, [a6]0x404     ; intc ENABLE line 0 (timer)
        stw d0, [a6]0x414     ; intc CTRL master enable
        movi d0, 300
        stw d0, [a6]0x500     ; ptimer LOAD = 300 cycles
        movi d0, 3
        stw d0, [a6]0x504     ; ptimer CTRL = enable | periodic
pwait:  lt d1, d14, d8
        jnz16 d1, pwait       ; spin until 16 values produced
        movi d0, 0
        stw d0, [a6]0x504     ; stop the timer
        stw d0, [a6]0x414     ; master disable
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0         ; checksum 1544
        halt
isr:    addi16 d14, 1
        mul d15, d14, d14
        addi d15, d15, 3      ; value = n*n + 3
ifull:  ldw d13, [a6]0x604    ; mailbox STATUS
        movi d12, 2
        and d13, d13, d12
        jnz16 d13, ifull      ; spin while the FIFO is full
        stw d15, [a6]0x600    ; push
        add d9, d9, d15
        movi d13, 1
        stw d13, [a6]0x40c    ; ACK line 0
        stw d13, [a6]0x41c    ; EOI
        ji a14
        .data
result: .word 0
)";

// Multi-core consumer (core 1): polls the shared mailbox and sums 16
// values. Checksum 1544 — identical to the producer's, whatever the
// interleaving or quantum.
const char* kMcConsumer = R"(
; mc_consumer - polling mailbox consumer (multi-core scenario)
_start: movha a6, 0xf000
        movi d9, 0
        movi d8, 16
cwait:  ldw d3, [a6]0x604     ; mailbox STATUS
        movi d4, 1
        and d3, d3, d4
        jz16 d3, cwait        ; spin while empty
        ldw d5, [a6]0x600     ; pop
        add d9, d9, d5
        addi16 d8, -1
        jnz16 d8, cwait
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0         ; checksum 1544
        halt
        .data
result: .word 0
)";

// Multi-core compute worker (any core): long private MAC kernel over a
// core-local array, with one shared-bus "progress beacon" (a scratch-
// register write) per outer iteration — the parallel-round sweet spot:
// almost the whole quantum has a core-private footprint, and the rare
// beacon exercises the bail-to-sequential-drain path so cross-core
// transaction order stays deterministic. Used by the N-core boards of
// tests/parallel_test.cpp and bench_parallel_cores.
const char* kMcWorker = R"(
; mc_worker - private MAC compute with a rare shared progress beacon
_start: movha a6, 0xf000      ; I/O region (scratch block at +0x300)
        movha a0, hi(x)
        lea a0, a0, lo(x)
        movi d1, 7777         ; LCG seed
        movi d2, 25173
        movi d3, 13849
        movi d13, 255
        movi d0, 256
xinit:  mul d1, d1, d2
        add d1, d1, d3
        and d4, d1, d13
        stw d4, [a0]0
        lea a0, a0, 4
        addi16 d0, -1
        jnz16 d0, xinit
        movi d0, 400          ; outer iterations
        movi d9, 0            ; running checksum
outer:  movha a3, hi(x)
        lea a3, a3, lo(x)
        movi d6, 256
mac:    ldw d7, [a3]0
        mul d10, d7, d6       ; coefficient = remaining count
        add d9, d9, d10
        lea a3, a3, 4
        addi16 d6, -1
        jnz16 d6, mac
        stw d9, [a6]0x31c     ; progress beacon: scratch register 7
        addi16 d0, -1
        jnz16 d0, outer
        movha a1, hi(result)
        lea a1, a1, lo(result)
        stw d9, [a1]0
        halt
        .data
result: .word 0
        .bss
x:      .space 1024
)";

std::vector<Workload> buildScenarios() {
  std::vector<Workload> w;
  w.push_back({"irq_ticks",
               "timer-interrupt tick counter (interrupt-driven)", kIrqTicks,
               164u, false, "isr"});
  w.push_back({"mc_producer",
               "timer-interrupt mailbox producer (multi-core, core 0)",
               kMcProducer, 1544u, false, "isr"});
  w.push_back({"mc_consumer",
               "polling mailbox consumer (multi-core, core 1)", kMcConsumer,
               1544u, false, ""});
  w.push_back({"mc_worker",
               "private MAC compute with a rare shared progress beacon "
               "(multi-core, any core)",
               kMcWorker, 1644595200u, false, ""});
  return w;
}

std::vector<Workload> buildAll() {
  std::vector<Workload> w;
  w.push_back({"gcd", "subtraction Euclid over a pair table (control flow)",
               kGcd, 214u, false, ""});
  w.push_back({"dpcm",
               "DPCM encoder with clamping branches (audio coding)", kDpcm,
               std::nullopt, false, ""});
  w.push_back({"fir", "16-tap FIR filter (filter kernel)", kFir,
               std::nullopt, false, ""});
  w.push_back({"ellip",
               "cascaded filter sections, one large block per sample",
               kEllip, std::nullopt, true, ""});
  w.push_back({"sieve", "sieve of Eratosthenes, N=700 (control flow)",
               kSieve, 125u, false, ""});
  w.push_back({"subband",
               "two-band analysis filter, 8 taps unrolled (large blocks)",
               kSubband, std::nullopt, true, ""});
  w.push_back({"fibonacci", "iterative Fibonacci (Table 2)", kFibonacci,
               std::nullopt, false, ""});
  return w;
}

}  // namespace

const std::vector<Workload>& all() {
  static const std::vector<Workload>* workloads =
      new std::vector<Workload>(buildAll());
  return *workloads;
}

const std::vector<Workload>& scenarios() {
  static const std::vector<Workload>* workloads =
      new std::vector<Workload>(buildScenarios());
  return *workloads;
}

const Workload& get(std::string_view name) {
  for (const Workload& w : all()) {
    if (w.name == name) {
      return w;
    }
  }
  for (const Workload& w : scenarios()) {
    if (w.name == name) {
      return w;
    }
  }
  CABT_FAIL("unknown workload '" << std::string(name) << "'");
}

std::vector<std::string> figure5Names() {
  return {"gcd", "dpcm", "fir", "ellip", "sieve", "subband"};
}

std::vector<std::string> table2Names() {
  return {"gcd", "fibonacci", "sieve"};
}

elf::Object assemble(const Workload& workload) {
  return trc::assemble(workload.source);
}

uint32_t readChecksum(const elf::Object& source, const SparseMemory& memory,
                      uint32_t remap_delta) {
  const elf::Symbol* sym = source.findSymbol("result");
  CABT_CHECK(sym != nullptr, "workload has no 'result' symbol");
  return memory.read32(sym->value + remap_delta);
}

}  // namespace cabt::workloads
