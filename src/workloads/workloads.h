// The paper's example programs (section 4), written in TRC32 assembly.
//
// Figure 5 / Table 1 / Figure 6 use: gcd, dpcm, fir, ellip, sieve,
// subband. Table 2 uses: gcd, fibonacci, sieve. The programs mirror the
// paper's characterisation: gcd and sieve are control-flow dominated with
// many small basic blocks; fir and ellip are filters; dpcm and subband
// are audio-coding kernels; ellip and subband have large basic blocks.
//
// Every workload stores a final checksum to the `result` symbol in .data
// and halts; array inputs are generated at run time by a small LCG init
// loop so the images stay compact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/sparse_mem.h"
#include "elf/elf.h"

namespace cabt::workloads {

struct Workload {
  std::string name;
  std::string description;
  std::string source;  ///< TRC32 assembly
  /// Hand-computed expected checksum, when independently known.
  std::optional<uint32_t> expected_checksum;
  bool large_blocks = false;  ///< paper: "examples with large basic blocks"
  /// Interrupt handler entry symbol ("" when the program takes no
  /// interrupts). Resolve with platform::symbolAddr and pass as an
  /// iss::IssConfig::extra_leaders entry — handler entries are invisible
  /// to static control flow.
  std::string irq_handler;
};

/// All workloads, in the paper's presentation order (gcd, dpcm, fir,
/// ellip, sieve, subband, fibonacci).
const std::vector<Workload>& all();

/// SoC-scenario programs beyond the paper's figure set: interrupt-driven
/// and multi-core workloads for the reference board's interrupt
/// controller / programmable timer / mailbox (irq_ticks, mc_producer,
/// mc_consumer) plus the compute-heavy mc_worker used by the N-core
/// parallel-round boards. They require the board's peripherals and are
/// not run through the translator comparisons.
const std::vector<Workload>& scenarios();

/// Lookup by name across all() and scenarios(); throws cabt::Error when
/// unknown.
const Workload& get(std::string_view name);

/// The six programs of Figure 5 / Table 1 / Figure 6.
std::vector<std::string> figure5Names();
/// The three programs of Table 2.
std::vector<std::string> table2Names();

/// Assembles a workload into a TRC32 ELF image.
elf::Object assemble(const Workload& workload);

/// Reads the `result` word from a memory image, resolving the symbol via
/// the source object (applies `remap_delta` for translated memory).
uint32_t readChecksum(const elf::Object& source, const SparseMemory& memory,
                      uint32_t remap_delta = 0);

}  // namespace cabt::workloads
