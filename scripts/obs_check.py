#!/usr/bin/env python3
"""Validate observability artifacts: trace-event JSON and metrics JSON.

Trace files (src/obs TraceSink, `state_tool --trace-out`) must follow
the Chrome trace-event / Perfetto JSON array format this repo emits:

  * top level is {"traceEvents": [...]} (displayTimeUnit optional);
  * every event has a string "name", a "ph" in {X, i, M}, and integer
    "pid" / "tid" (plus integer "ts" on non-metadata events);
  * complete events (ph == X) carry an integer "dur";
  * metadata events (ph == M) are thread_name records with
    args.name — at least one must be present (a trace with no named
    lane renders as bare numbers in ui.perfetto.dev);
  * with --min-cores N, lanes "core0".."core<N-1>" must all be named
    (the gate for multi-core scenario exports).

Metrics files (src/obs MetricsRegistry, `state_tool --metrics-out`)
must be {"metrics": {path: {"type": counter|gauge|histogram, ...}}}
with value/count fields of the right JSON type.

Usage:
    scripts/obs_check.py --trace run.json [--min-cores 4]
    scripts/obs_check.py --metrics metrics.json
    scripts/obs_check.py --trace run.json --metrics metrics.json

Exit status 1 on the first malformed file; every problem found is
printed before exiting.
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "M"}


def check_trace(path, min_cores):
    errors = []
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or not JSON: {e}"]
    if not isinstance(data, dict) or "traceEvents" not in data:
        return [f"{path}: top level must be an object with 'traceEvents'"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' must be an array"]
    named_lanes = set()
    counts = {ph: 0 for ph in VALID_PHASES}
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty 'name'")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            errors.append(f"{where}: 'ph' {ph!r} not in {sorted(VALID_PHASES)}")
            continue
        counts[ph] += 1
        # Metadata records carry no timestamp; everything else must.
        required = ("pid", "tid") if ph == "M" else ("ts", "pid", "tid")
        for field in required:
            if not isinstance(ev.get(field), int):
                errors.append(f"{where}: '{field}' missing or not an integer")
        if ph == "X" and not isinstance(ev.get("dur"), int):
            errors.append(f"{where}: complete event without integer 'dur'")
        if ph == "M":
            if name != "thread_name":
                errors.append(f"{where}: metadata event is not thread_name")
            lane = ev.get("args", {}).get("name")
            if not isinstance(lane, str) or not lane:
                errors.append(f"{where}: thread_name without args.name")
            else:
                named_lanes.add(lane)
        if len(errors) > 20:
            errors.append(f"{path}: ... further errors suppressed")
            return errors
    if counts["M"] == 0:
        errors.append(f"{path}: no thread_name metadata — lanes unnamed")
    for core in range(min_cores):
        if f"core{core}" not in named_lanes:
            errors.append(f"{path}: lane 'core{core}' is not named")
    if not errors:
        print(
            f"{path}: OK — {counts['X']} complete, {counts['i']} instant, "
            f"{counts['M']} metadata events, lanes: "
            + ", ".join(sorted(named_lanes))
        )
    return errors


def check_metrics(path):
    errors = []
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or not JSON: {e}"]
    if not isinstance(data, dict) or not isinstance(
        data.get("metrics"), dict
    ):
        return [f"{path}: top level must be an object with 'metrics' object"]
    metrics = data["metrics"]
    if not metrics:
        errors.append(f"{path}: metrics object is empty")
    for mpath, m in metrics.items():
        where = f"{path}: metrics[{mpath!r}]"
        if not isinstance(m, dict):
            errors.append(f"{where}: not an object")
            continue
        mtype = m.get("type")
        if mtype == "counter":
            if not isinstance(m.get("value"), int):
                errors.append(f"{where}: counter without integer 'value'")
        elif mtype == "gauge":
            if not isinstance(m.get("value"), (int, float)):
                errors.append(f"{where}: gauge without numeric 'value'")
        elif mtype == "histogram":
            for field in ("count", "sum", "min", "max"):
                if not isinstance(m.get(field), int):
                    errors.append(
                        f"{where}: histogram without integer '{field}'"
                    )
            if not isinstance(m.get("buckets"), list):
                errors.append(f"{where}: histogram without 'buckets' array")
        else:
            errors.append(f"{where}: unknown type {mtype!r}")
        if len(errors) > 20:
            errors.append(f"{path}: ... further errors suppressed")
            return errors
    if not errors:
        print(f"{path}: OK — {len(metrics)} metrics")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None, help="trace-event JSON file")
    parser.add_argument("--metrics", default=None, help="metrics JSON file")
    parser.add_argument(
        "--min-cores",
        type=int,
        default=0,
        help="require named core0..core<N-1> lanes in the trace",
    )
    args = parser.parse_args()
    if args.trace is None and args.metrics is None:
        parser.error("nothing to check: pass --trace and/or --metrics")
    errors = []
    if args.trace is not None:
        errors += check_trace(args.trace, args.min_cores)
    if args.metrics is not None:
        errors += check_metrics(args.metrics)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
