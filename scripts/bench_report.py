#!/usr/bin/env python3
"""Aggregate BENCH_*.json perf records into one markdown summary.

Every bench binary writes a BENCH_<name>.json next to its working
directory — or into $CABT_BENCH_DIR when set (one row per
workload/variant, with host MIPS and — for ISS rows — the dispatch-path
counters). This script collects them into a single BENCH_SUMMARY.md
artifact and enforces two gates:

  * dispatch ablation — chained dispatch must not be slower than
    per-block lookup dispatch, and threaded-code dispatch must not be
    slower than chained+traces;
  * parallel rounds — on every BENCH_parallel_cores.json row with
    quantum >= 256, the parallel kernel must not fall below the
    sequential kernel (at smaller quanta the round barrier is expected
    to dominate; that region is reported but not gated).

Usage:
    scripts/bench_report.py [--dir DIR] [--out BENCH_SUMMARY.md]
                            [--min-ratio 0.9] [--min-parallel-ratio 0.85]

Exit status 1 when a gate fails (or a required record is missing while
--require-ablation / --require-parallel is set). The default ratios give
shared CI runners scheduling-noise headroom; real regressions show up
far below them.
"""

import argparse
import glob
import json
import os
import sys


def load_records(directory):
    records = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {path}: {e}", file=sys.stderr)
            continue
        records[data.get("bench", os.path.basename(path))] = data.get(
            "rows", []
        )
    return records


def render_summary(records):
    lines = ["# Bench summary", ""]
    for bench, rows in records.items():
        lines.append(f"## {bench}")
        lines.append("")
        have_dispatch = any("chain_hits" in r for r in rows)
        header = "| workload | variant | cycles | host MIPS |"
        rule = "| --- | --- | ---: | ---: |"
        if have_dispatch:
            header += " chain hits | trace dispatches | guard bails |"
            rule += " ---: | ---: | ---: |"
        lines.append(header)
        lines.append(rule)
        for r in rows:
            row = (
                f"| {r.get('workload', '?')} | {r.get('variant', '?')} "
                f"| {r.get('cycles', 0)} | {r.get('host_mips', 0):.2f} |"
            )
            if have_dispatch:
                if "chain_hits" in r:
                    row += (
                        f" {r['chain_hits']} | {r['trace_dispatches']} "
                        f"| {r['guard_bails']} |"
                    )
                else:
                    row += " – | – | – |"
            lines.append(row)
        lines.append("")
    return "\n".join(lines) + "\n"


def check_dispatch_gate(records, min_ratio):
    """Every rung of the dispatch ladder must hold its floor per row:
    chained and chained+traces reach min_ratio x the lookup host MIPS,
    and threaded reaches min_ratio x the chained+traces host MIPS.

    Returns (compared_pairs, failures), or None when there is no
    ablation record at all. compared_pairs == 0 means the record exists
    but held no baseline/contender pairs — the caller must treat that as
    a gate failure, not a pass (it would otherwise go vacuously green if
    the bench's variant naming ever drifted).
    """
    rows = records.get("ablation_dispatch")
    if rows is None:
        return None  # caller decides whether a missing record is fatal
    by_key = {}
    for r in rows:
        variant = r.get("variant", "")
        if "/" not in variant:
            continue
        level, mode = variant.rsplit("/", 1)
        by_key[(r.get("workload"), level, mode)] = r.get("host_mips", 0.0)
    # Gate both block engines and the shipped default (chained+traces)
    # against the lookup baseline, and the threaded-code backend against
    # the engine it lowers from.
    ladder = {
        "lookup": ("chained", "chained+traces"),
        "chained+traces": ("threaded",),
    }
    compared = 0
    failures = []
    for (workload, level, mode), base_mips in sorted(by_key.items()):
        for other in ladder.get(mode, ()):
            other_mips = by_key.get((workload, level, other))
            if other_mips is None or base_mips <= 0:
                continue
            compared += 1
            ratio = other_mips / base_mips
            if ratio < min_ratio:
                failures.append(
                    f"{workload}/{level}: {other} {other_mips:.2f} MIPS "
                    f"vs {mode} {base_mips:.2f} MIPS (ratio "
                    f"{ratio:.2f} < {min_ratio:.2f})"
                )
    return compared, failures


def check_parallel_gate(records, min_ratio, min_quantum=256):
    """parallel must reach min_ratio x the sequential host MIPS per row,
    for every quantum >= min_quantum.

    Returns (compared_pairs, failures), or None when there is no
    parallel-cores record at all. Like the dispatch gate, zero compared
    pairs means the record's variant naming drifted and must fail.
    """
    rows = records.get("parallel_cores")
    if rows is None:
        return None
    by_key = {}
    for r in rows:
        variant = r.get("variant", "")
        if "/" not in variant:
            continue
        mode, quantum_tag = variant.split("/", 1)
        if not quantum_tag.startswith("quantum_"):
            continue
        try:
            quantum = int(quantum_tag[len("quantum_"):])
        except ValueError:
            continue
        by_key[(r.get("workload"), quantum, mode)] = r.get("host_mips", 0.0)
    compared = 0
    failures = []
    for (workload, quantum, mode), seq_mips in sorted(by_key.items()):
        if mode != "seq" or quantum < min_quantum:
            continue
        par_mips = by_key.get((workload, quantum, "par"))
        if par_mips is None or seq_mips <= 0:
            continue
        compared += 1
        ratio = par_mips / seq_mips
        if ratio < min_ratio:
            failures.append(
                f"{workload}/quantum_{quantum}: parallel {par_mips:.2f} "
                f"MIPS vs sequential {seq_mips:.2f} MIPS (ratio "
                f"{ratio:.2f} < {min_ratio:.2f})"
            )
    return compared, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="where BENCH_*.json live")
    parser.add_argument("--out", default="BENCH_SUMMARY.md")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.9,
        help="minimum chained/lookup host-MIPS ratio (noise tolerance)",
    )
    parser.add_argument(
        "--min-parallel-ratio",
        type=float,
        default=0.85,
        help="minimum parallel/sequential host-MIPS ratio at quantum >= "
        "256 (noise tolerance; single-threaded runners sit near 1.0)",
    )
    parser.add_argument(
        "--require-ablation",
        action="store_true",
        help="fail when BENCH_ablation_dispatch.json is absent",
    )
    parser.add_argument(
        "--require-parallel",
        action="store_true",
        help="fail when BENCH_parallel_cores.json is absent",
    )
    args = parser.parse_args()

    records = load_records(args.dir)
    if not records:
        # An empty bench directory is an error only when a gate depends
        # on a record: a docs-only CI run (or a fresh checkout) gets an
        # explicit "no records" summary and a clean exit instead of a
        # crash, while --require-* still fails loudly below.
        with open(args.out, "w") as f:
            f.write(
                "# Bench summary\n\nNo BENCH_*.json records found in "
                f"`{args.dir}`.\n"
            )
        print(f"wrote {args.out} (no bench records found in {args.dir})")
        if args.require_ablation or args.require_parallel:
            print(
                "error: no BENCH_*.json records, but a gate was requested",
                file=sys.stderr,
            )
            return 1
        return 0
    with open(args.out, "w") as f:
        f.write(render_summary(records))
    print(f"wrote {args.out} ({len(records)} bench records)")

    dispatch_gate = {
        "name": "dispatch",
        "gate": check_dispatch_gate(records, args.min_ratio),
        "required": args.require_ablation,
        "record": "BENCH_ablation_dispatch.json",
        "empty": "no dispatch-ladder pairs",
        "passed": "dispatch ladder held on {n} workload/level rows "
        "(chained >= lookup, threaded >= chained+traces)",
    }
    parallel_gate = {
        "name": "parallel",
        "gate": check_parallel_gate(records, args.min_parallel_ratio),
        "required": args.require_parallel,
        "record": "BENCH_parallel_cores.json",
        "empty": "no seq/par pairs at quantum >= 256",
        "passed": "parallel >= sequential on {n} board/quantum rows "
        "(quantum >= 256)",
    }
    status = 0
    for g in (dispatch_gate, parallel_gate):
        if g["gate"] is None:
            if g["required"]:
                print(f"error: {g['record']} missing", file=sys.stderr)
                status = 1
            else:
                print(f"note: no {g['name']} record; gate skipped")
            continue
        compared, failures = g["gate"]
        if compared == 0:
            print(
                f"error: {g['record']} held {g['empty']} — variant "
                "naming drifted?",
                file=sys.stderr,
            )
            status = 1
        elif failures:
            print(f"{g['name']} gate FAILED:", file=sys.stderr)
            for f_ in failures:
                print(f"  {f_}", file=sys.stderr)
            status = 1
        else:
            print(
                f"{g['name']} gate passed: " + g["passed"].format(n=compared)
            )
    return status


if __name__ == "__main__":
    sys.exit(main())
