#!/usr/bin/env python3
"""Aggregate BENCH_*.json perf records into one markdown summary.

Every bench binary writes a BENCH_<name>.json next to its working
directory — or into $CABT_BENCH_DIR when set (one row per
workload/variant, with host MIPS and — for ISS rows — the dispatch-path
counters). This script collects them into a single BENCH_SUMMARY.md
artifact and enforces three gates:

  * dispatch ablation — chained dispatch must not be slower than
    per-block lookup dispatch, and threaded-code dispatch must not be
    slower than chained+traces;
  * parallel rounds — on every BENCH_parallel_cores.json row with
    quantum >= 256, the parallel kernel must not fall below the
    sequential kernel (at smaller quanta the round barrier is expected
    to dominate; that region is reported but not gated);
  * fleet — on BENCH_fleet.json, fleet runs must be digest-reproducible
    run-to-run, report one artifact decode per distinct image, and keep
    aggregate host MIPS at M >= 2 boards at or above the single-board
    baseline.

A fourth, opt-in gate compares against a saved baseline directory:

  * baseline — with --baseline DIR, every (bench, workload, variant)
    row present in both trees must reach --baseline-min-ratio x the
    baseline host MIPS (default 0.90 for runner noise; the
    observability PR's local acceptance bar is 0.98 on the
    sinks-disabled chained/threaded ablation rows).

METRICS_*.json companions (full obs-registry snapshots written by the
bench binaries) are folded into the summary as collapsible sections.

Usage:
    scripts/bench_report.py [--dir DIR] [--out BENCH_SUMMARY.md]
                            [--min-ratio 0.9] [--min-parallel-ratio 0.85]
                            [--baseline DIR] [--baseline-min-ratio 0.9]

Exit status 1 when a gate fails (or a required record is missing while
--require-ablation / --require-parallel is set). The default ratios give
shared CI runners scheduling-noise headroom; real regressions show up
far below them.
"""

import argparse
import glob
import json
import os
import sys


def load_records(directory):
    records = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {path}: {e}", file=sys.stderr)
            continue
        records[data.get("bench", os.path.basename(path))] = data.get(
            "rows", []
        )
    return records


def load_metrics(directory):
    """METRICS_<bench>.json -> {bench: {path: metric-dict}}. Malformed
    files are skipped with a warning, like load_records."""
    metrics = {}
    for path in sorted(glob.glob(os.path.join(directory, "METRICS_*.json"))):
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {path}: {e}", file=sys.stderr)
            continue
        name = os.path.basename(path)[len("METRICS_"):-len(".json")]
        metrics[name] = data.get("metrics", {})
    return metrics


def render_summary(records, metrics=None):
    metrics = metrics or {}
    lines = ["# Bench summary", ""]
    for bench, rows in records.items():
        lines.append(f"## {bench}")
        lines.append("")
        have_dispatch = any("chain_hits" in r for r in rows)
        have_hot = any(r.get("hot_function") for r in rows)
        header = "| workload | variant | cycles | host MIPS |"
        rule = "| --- | --- | ---: | ---: |"
        if have_dispatch:
            header += " chain hits | trace dispatches | guard bails |"
            rule += " ---: | ---: | ---: |"
        if have_hot:
            header += " hot function |"
            rule += " --- |"
        lines.append(header)
        lines.append(rule)
        for r in rows:
            row = (
                f"| {r.get('workload', '?')} | {r.get('variant', '?')} "
                f"| {r.get('cycles', 0)} | {r.get('host_mips', 0):.2f} |"
            )
            if have_dispatch:
                # Rows from older records (or non-ISS rows) may carry a
                # partial counter set — never KeyError on them.
                if "chain_hits" in r:
                    row += (
                        f" {r.get('chain_hits', 0)} "
                        f"| {r.get('trace_dispatches', 0)} "
                        f"| {r.get('guard_bails', 0)} |"
                    )
                else:
                    row += " – | – | – |"
            if have_hot:
                row += f" {r.get('hot_function') or '–'} |"
            lines.append(row)
        lines.append("")
        bench_metrics = metrics.get(bench)
        if bench_metrics:
            lines.append("<details>")
            lines.append(
                f"<summary>metrics registry ({len(bench_metrics)} "
                "entries)</summary>"
            )
            lines.append("")
            lines.append("| metric | type | value |")
            lines.append("| --- | --- | ---: |")
            for mpath in sorted(bench_metrics):
                m = bench_metrics[mpath]
                mtype = m.get("type", "?")
                if mtype == "histogram":
                    value = (
                        f"count={m.get('count', 0)} sum={m.get('sum', 0)} "
                        f"min={m.get('min', 0)} max={m.get('max', 0)}"
                    )
                else:
                    value = m.get("value", 0)
                lines.append(f"| {mpath} | {mtype} | {value} |")
            lines.append("")
            lines.append("</details>")
            lines.append("")
    return "\n".join(lines) + "\n"


def check_dispatch_gate(records, min_ratio):
    """Every rung of the dispatch ladder must hold its floor per row:
    chained and chained+traces reach min_ratio x the lookup host MIPS,
    and threaded reaches min_ratio x the chained+traces host MIPS.

    Returns (compared_pairs, failures), or None when there is no
    ablation record at all. compared_pairs == 0 means the record exists
    but held no baseline/contender pairs — the caller must treat that as
    a gate failure, not a pass (it would otherwise go vacuously green if
    the bench's variant naming ever drifted).
    """
    rows = records.get("ablation_dispatch")
    if rows is None:
        return None  # caller decides whether a missing record is fatal
    by_key = {}
    for r in rows:
        variant = r.get("variant", "")
        if "/" not in variant:
            continue
        level, mode = variant.rsplit("/", 1)
        by_key[(r.get("workload"), level, mode)] = r.get("host_mips", 0.0)
    # Gate both block engines and the shipped default (chained+traces)
    # against the lookup baseline, and the threaded-code backend against
    # the engine it lowers from.
    ladder = {
        "lookup": ("chained", "chained+traces"),
        "chained+traces": ("threaded",),
    }
    compared = 0
    failures = []
    for (workload, level, mode), base_mips in sorted(by_key.items()):
        for other in ladder.get(mode, ()):
            other_mips = by_key.get((workload, level, other))
            if other_mips is None or base_mips <= 0:
                continue
            compared += 1
            ratio = other_mips / base_mips
            if ratio < min_ratio:
                failures.append(
                    f"{workload}/{level}: {other} {other_mips:.2f} MIPS "
                    f"vs {mode} {base_mips:.2f} MIPS (ratio "
                    f"{ratio:.2f} < {min_ratio:.2f})"
                )
    return compared, failures


def check_parallel_gate(records, min_ratio, min_quantum=256):
    """parallel must reach min_ratio x the sequential host MIPS per row,
    for every quantum >= min_quantum.

    Returns (compared_pairs, failures), or None when there is no
    parallel-cores record at all. Like the dispatch gate, zero compared
    pairs means the record's variant naming drifted and must fail.
    """
    rows = records.get("parallel_cores")
    if rows is None:
        return None
    by_key = {}
    for r in rows:
        variant = r.get("variant", "")
        if "/" not in variant:
            continue
        mode, quantum_tag = variant.split("/", 1)
        if not quantum_tag.startswith("quantum_"):
            continue
        try:
            quantum = int(quantum_tag[len("quantum_"):])
        except ValueError:
            continue
        by_key[(r.get("workload"), quantum, mode)] = r.get("host_mips", 0.0)
    compared = 0
    failures = []
    for (workload, quantum, mode), seq_mips in sorted(by_key.items()):
        if mode != "seq" or quantum < min_quantum:
            continue
        par_mips = by_key.get((workload, quantum, "par"))
        if par_mips is None or seq_mips <= 0:
            continue
        compared += 1
        ratio = par_mips / seq_mips
        if ratio < min_ratio:
            failures.append(
                f"{workload}/quantum_{quantum}: parallel {par_mips:.2f} "
                f"MIPS vs sequential {seq_mips:.2f} MIPS (ratio "
                f"{ratio:.2f} < {min_ratio:.2f})"
            )
    return compared, failures


def check_fleet_gate(records, min_ratio):
    """Three invariants over BENCH_fleet.json rows:

      * every repeat of a sweep point carries the same digest (fleet
        runs are bit-reproducible run-to-run);
      * every row reports artifact_decodes == images (the fleet shared
        one program artifact per distinct image — the decode-once
        guarantee);
      * best-of-repeats aggregate host MIPS at every fleet size M >= 2
        reaches min_ratio x the best single-board row (scheduling
        boards over the pool must not cost what it parallelizes;
        best-of-repeats keeps one descheduled run on a loaded runner
        from failing the sweep).

    Returns (compared_pairs, failures), or None when there is no fleet
    record at all. Zero compared pairs fails at the caller, as with the
    other gates.
    """
    rows = records.get("fleet")
    if rows is None:
        return None
    compared = 0
    failures = []
    digests = {}  # (workload, boards) -> (first digest, first variant)
    single_best = {}  # workload -> best single-board host MIPS
    for r in rows:
        key = (r.get("workload"), r.get("boards"))
        digest = r.get("digest")
        if digest is not None:
            first = digests.setdefault(key, (digest, r.get("variant")))
            if first[0] != digest:
                failures.append(
                    f"{key[0]}/boards_{key[1]}: digest {digest} != "
                    f"{first[0]} (from {first[1]}) — fleet runs are not "
                    "reproducible"
                )
            else:
                compared += 1
        decodes = r.get("artifact_decodes")
        images = r.get("images")
        if decodes is not None and images is not None:
            compared += 1
            if decodes != images:
                failures.append(
                    f"{key[0]}/{r.get('variant')}: {decodes} decodes for "
                    f"{images} images — artifact sharing broke"
                )
        if r.get("boards") == 1:
            mips = r.get("host_mips", 0.0)
            workload = r.get("workload")
            single_best[workload] = max(single_best.get(workload, 0.0), mips)
    fleet_best = {}  # (workload, boards) -> best aggregate host MIPS
    for r in rows:
        boards = r.get("boards")
        if boards is None or boards < 2:
            continue
        key = (r.get("workload"), boards)
        fleet_best[key] = max(
            fleet_best.get(key, 0.0), r.get("host_mips", 0.0)
        )
    for (workload, boards), mips in sorted(fleet_best.items()):
        base = single_best.get(workload, 0.0)
        if base <= 0 or mips <= 0:
            continue
        compared += 1
        ratio = mips / base
        if ratio < min_ratio:
            failures.append(
                f"{workload}/fleet_{boards}: aggregate {mips:.2f} MIPS "
                f"vs single-board {base:.2f} MIPS (ratio {ratio:.2f} "
                f"< {min_ratio:.2f})"
            )
    return compared, failures


def check_baseline_gate(records, baseline_records, min_ratio):
    """Every (bench, workload, variant) row present in both trees must
    reach min_ratio x the baseline host MIPS.

    Returns (compared_pairs, failures). Rows only one side has (new
    benches, renamed variants) are skipped — the gate compares perf, it
    does not pin the record schema. Zero compared pairs is a failure at
    the caller (nothing overlapped — wrong baseline directory?).
    """
    compared = 0
    failures = []
    for bench, rows in sorted(records.items()):
        base_rows = {
            (r.get("workload"), r.get("variant")): r.get("host_mips", 0.0)
            for r in baseline_records.get(bench, [])
        }
        for r in rows:
            key = (r.get("workload"), r.get("variant"))
            base_mips = base_rows.get(key)
            mips = r.get("host_mips", 0.0)
            if base_mips is None or base_mips <= 0 or mips <= 0:
                continue  # modeled-only rows report 0 MIPS; skip them
            compared += 1
            ratio = mips / base_mips
            if ratio < min_ratio:
                failures.append(
                    f"{bench}/{key[0]}/{key[1]}: {mips:.2f} MIPS vs "
                    f"baseline {base_mips:.2f} MIPS (ratio {ratio:.2f} "
                    f"< {min_ratio:.2f})"
                )
    return compared, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="where BENCH_*.json live")
    parser.add_argument("--out", default="BENCH_SUMMARY.md")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.9,
        help="minimum chained/lookup host-MIPS ratio (noise tolerance)",
    )
    parser.add_argument(
        "--min-parallel-ratio",
        type=float,
        default=0.85,
        help="minimum parallel/sequential host-MIPS ratio at quantum >= "
        "256 (noise tolerance; single-threaded runners sit near 1.0)",
    )
    parser.add_argument(
        "--require-ablation",
        action="store_true",
        help="fail when BENCH_ablation_dispatch.json is absent",
    )
    parser.add_argument(
        "--require-parallel",
        action="store_true",
        help="fail when BENCH_parallel_cores.json is absent",
    )
    parser.add_argument(
        "--min-fleet-ratio",
        type=float,
        default=0.9,
        help="minimum fleet-aggregate/single-board host-MIPS ratio at "
        "M >= 2 boards (noise tolerance; real fleets sit well above 1)",
    )
    parser.add_argument(
        "--require-fleet",
        action="store_true",
        help="fail when BENCH_fleet.json is absent",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="DIR",
        help="directory of baseline BENCH_*.json records to gate "
        "host-MIPS regressions against",
    )
    parser.add_argument(
        "--baseline-min-ratio",
        type=float,
        default=0.9,
        help="minimum current/baseline host-MIPS ratio per row (use "
        "0.98 on a quiet machine for the 2%% observability budget)",
    )
    args = parser.parse_args()

    records = load_records(args.dir)
    if not records:
        # An empty bench directory is an error only when a gate depends
        # on a record: a docs-only CI run (or a fresh checkout) gets an
        # explicit "no records" summary and a clean exit instead of a
        # crash, while --require-* still fails loudly below.
        with open(args.out, "w") as f:
            f.write(
                "# Bench summary\n\nNo BENCH_*.json records found in "
                f"`{args.dir}`.\n"
            )
        print(f"wrote {args.out} (no bench records found in {args.dir})")
        if args.require_ablation or args.require_parallel:
            print(
                "error: no BENCH_*.json records, but a gate was requested",
                file=sys.stderr,
            )
            return 1
        return 0
    metrics = load_metrics(args.dir)
    with open(args.out, "w") as f:
        f.write(render_summary(records, metrics))
    print(
        f"wrote {args.out} ({len(records)} bench records, "
        f"{len(metrics)} metrics snapshots)"
    )

    dispatch_gate = {
        "name": "dispatch",
        "gate": check_dispatch_gate(records, args.min_ratio),
        "required": args.require_ablation,
        "record": "BENCH_ablation_dispatch.json",
        "empty": "no dispatch-ladder pairs",
        "passed": "dispatch ladder held on {n} workload/level rows "
        "(chained >= lookup, threaded >= chained+traces)",
    }
    parallel_gate = {
        "name": "parallel",
        "gate": check_parallel_gate(records, args.min_parallel_ratio),
        "required": args.require_parallel,
        "record": "BENCH_parallel_cores.json",
        "empty": "no seq/par pairs at quantum >= 256",
        "passed": "parallel >= sequential on {n} board/quantum rows "
        "(quantum >= 256)",
    }
    fleet_gate = {
        "name": "fleet",
        "gate": check_fleet_gate(records, args.min_fleet_ratio),
        "required": args.require_fleet,
        "record": "BENCH_fleet.json",
        "empty": "no digest/decode/throughput rows",
        "passed": "fleet gate held on {n} checks (digests reproducible, "
        "one decode per image, aggregate MIPS >= single board)",
    }
    status = 0
    for g in (dispatch_gate, parallel_gate, fleet_gate):
        if g["gate"] is None:
            if g["required"]:
                print(f"error: {g['record']} missing", file=sys.stderr)
                status = 1
            else:
                print(f"note: no {g['name']} record; gate skipped")
            continue
        compared, failures = g["gate"]
        if compared == 0:
            print(
                f"error: {g['record']} held {g['empty']} — variant "
                "naming drifted?",
                file=sys.stderr,
            )
            status = 1
        elif failures:
            print(f"{g['name']} gate FAILED:", file=sys.stderr)
            for f_ in failures:
                print(f"  {f_}", file=sys.stderr)
            status = 1
        else:
            print(
                f"{g['name']} gate passed: " + g["passed"].format(n=compared)
            )
    if args.baseline is not None:
        baseline_records = load_records(args.baseline)
        if not baseline_records:
            print(
                f"error: no BENCH_*.json records in baseline "
                f"{args.baseline}",
                file=sys.stderr,
            )
            status = 1
        else:
            compared, failures = check_baseline_gate(
                records, baseline_records, args.baseline_min_ratio
            )
            if compared == 0:
                print(
                    "error: baseline shares no rows with the current "
                    "records — wrong directory?",
                    file=sys.stderr,
                )
                status = 1
            elif failures:
                print("baseline gate FAILED:", file=sys.stderr)
                for f_ in failures:
                    print(f"  {f_}", file=sys.stderr)
                status = 1
            else:
                print(
                    f"baseline gate passed: {compared} rows at >= "
                    f"{args.baseline_min_ratio:.2f}x baseline host MIPS"
                )
    return status


if __name__ == "__main__":
    sys.exit(main())
