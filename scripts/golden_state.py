#!/usr/bin/env python3
"""Record or check the golden state digests of the stock workloads.

Runs `state_tool digest` (examples/state_tool.cpp) for every stock
scenario board — irq_ticks, mc_pair (producer/consumer), mc_worker and
mc_quad — at all four detail levels under all four dispatch engines
(lookup, chained, chained+traces, threaded), and compares the 64-bit
rolling state digest (snap::digest: registers, memory, cycle counts, bus
traffic, device state — see DESIGN.md section 9) plus the final bus
cycle and retired instruction count against the values committed in
tests/golden_digests.json.

The dispatch engine is a host-side implementation detail, so all four
modes must produce the identical final line for every scenario/level —
the script asserts that cross-mode equality itself, then checks the
(mode-independent) result against the single golden entry.

The simulation is a pure function of the architecture description, so
these digests are stable across hosts and compilers: any change that
moves a single cycle, register bit, IRQ delivery or bus transaction in
any stock workload fails the check loudly instead of drifting silently.
Unlike the golden-trace unit tests (which pin a handful of counters),
the digest covers the *entire* architectural state.

Usage:
    scripts/golden_state.py --check [--tool build/state_tool]
    scripts/golden_state.py --record   # after an intentional change

Exit status 1 on any mismatch (or a missing golden file in --check).
"""

import argparse
import json
import os
import re
import subprocess
import sys

SCENARIOS = ["irq_ticks", "mc_pair", "mc_worker", "mc_quad"]
LEVELS = ["functional", "static", "branch", "cache"]
DISPATCH_MODES = ["lookup", "chained", "traces", "threaded"]
QUANTUM = 1024

FINAL_RE = re.compile(
    r"^final bus_cycle=(\d+) instructions=(\d+) digest=(0x[0-9a-f]+)$"
)


def find_tool(explicit):
    if explicit:
        return explicit
    for candidate in ("build/state_tool", "./state_tool"):
        if os.path.exists(candidate):
            return candidate
    print(
        "error: state_tool not found (build it, or pass --tool)",
        file=sys.stderr,
    )
    sys.exit(1)


def run_one(tool, scenario, level, dispatch, fi_armed=False):
    cmd = [tool, "digest", scenario, f"--level={level}",
           f"--quantum={QUANTUM}", f"--dispatch={dispatch}"]
    if fi_armed:
        cmd.append("--fi-armed")
    try:
        out = subprocess.run(cmd, capture_output=True, text=True,
                             check=True)
    except subprocess.CalledProcessError as e:
        print(
            f"error: `{' '.join(cmd)}` exited {e.returncode}:\n"
            f"{e.stderr or e.stdout}",
            file=sys.stderr,
        )
        sys.exit(1)
    for line in out.stdout.splitlines():
        m = FINAL_RE.match(line.strip())
        if m:
            return {
                "bus_cycle": int(m.group(1)),
                "instructions": int(m.group(2)),
                "digest": m.group(3),
            }
    print(
        f"error: no final summary line in `{' '.join(cmd)}` output:\n"
        f"{out.stdout}",
        file=sys.stderr,
    )
    sys.exit(1)


def collect(tool):
    entries = {}
    status = 0
    for scenario in SCENARIOS:
        for level in LEVELS:
            per_mode = {
                mode: run_one(tool, scenario, level, mode)
                for mode in DISPATCH_MODES
            }
            baseline = per_mode[DISPATCH_MODES[0]]
            for mode, result in per_mode.items():
                if result != baseline:
                    print(
                        f"DISPATCH DIVERGENCE {scenario}/{level}: "
                        f"{DISPATCH_MODES[0]} {baseline} vs {mode} {result}",
                        file=sys.stderr,
                    )
                    status = 1
            entries[f"{scenario}/{level}"] = baseline
    if status:
        print(
            "error: dispatch engines disagree — the digest must be "
            "dispatch-mode independent",
            file=sys.stderr,
        )
        sys.exit(1)
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tool", help="path to state_tool")
    parser.add_argument(
        "--file",
        default="tests/golden_digests.json",
        help="golden record (committed in-repo)",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", action="store_true",
                      help="(re)write the golden file from this build")
    mode.add_argument("--check", action="store_true",
                      help="compare this build against the golden file")
    args = parser.parse_args()

    tool = find_tool(args.tool)
    got = collect(tool)

    if args.record:
        record = {
            "comment": "Golden state digests of the stock workloads; "
            "regenerate with scripts/golden_state.py --record after an "
            "intentional behaviour change (see DESIGN.md section 9). "
            "Each entry is asserted identical across all dispatch "
            "modes before it is recorded or checked.",
            "quantum": QUANTUM,
            "dispatch_modes": DISPATCH_MODES,
            "entries": got,
        }
        with open(args.file, "w") as f:
            json.dump(record, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"recorded {len(got)} golden entries to {args.file}")
        return 0

    try:
        with open(args.file) as f:
            want = json.load(f)["entries"]
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"error: cannot load golden file {args.file}: {e}",
              file=sys.stderr)
        return 1

    status = 0
    for key in sorted(set(want) | set(got)):
        if key not in got:
            print(f"MISSING run for golden entry {key}", file=sys.stderr)
            status = 1
            continue
        if key not in want:
            print(
                f"UNRECORDED scenario {key} (run --record)", file=sys.stderr
            )
            status = 1
            continue
        if got[key] != want[key]:
            print(
                f"MISMATCH {key}:\n  golden  {want[key]}\n"
                f"  current {got[key]}",
                file=sys.stderr,
            )
            status = 1

    # Non-perturbation probe (DESIGN.md section 12): an armed-but-idle
    # fault campaign must leave every golden digest untouched.
    armed_checked = 0
    for scenario in SCENARIOS:
        for level in LEVELS:
            key = f"{scenario}/{level}"
            if key not in got:
                continue
            armed = run_one(
                tool, scenario, level, DISPATCH_MODES[0], fi_armed=True
            )
            armed_checked += 1
            if armed != got[key]:
                print(
                    f"FI-ARMED PERTURBATION {key}: an idle campaign "
                    f"changed the run\n  fi off   {got[key]}\n"
                    f"  fi armed {armed}",
                    file=sys.stderr,
                )
                status = 1

    if status == 0:
        print(f"golden-state check passed: {len(got)} scenario/level "
              f"digests match (each identical across "
              f"{len(DISPATCH_MODES)} dispatch modes; {armed_checked} "
              f"re-runs with an armed-idle fault campaign unchanged)")
    else:
        print(
            "golden-state check FAILED — if the behaviour change is "
            "intentional, regenerate with scripts/golden_state.py --record",
            file=sys.stderr,
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
