// Ablation A (paper section 3.4.2, last paragraph): "In large basic
// blocks, this code can be included into the basic block making the
// subroutine call unnecessary and the parallel execution of the cache
// calculation code and the executed program possible."
//
// Sweeps the inline threshold at the cache detail level: 0 = always call
// the generated routine, 1 = always inline, k = inline only in blocks
// with >= k source instructions. Reports VLIW cycles (speed) and code
// size (the cost of inlining), with the generated cycle count asserted
// identical across configurations.
#include "bench_common.h"

namespace cabt::bench {
namespace {

struct Config {
  uint32_t threshold;
  const char* label;
};

const Config kConfigs[] = {
    {0, "call-always"},
    {8, "inline-large-blocks"},
    {1, "inline-always"},
};

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  printHeader("Ablation: cache-correction routine call vs. inline",
              "the design choice of section 3.4.2");
  const cabt::arch::ArchDescription desc = defaultArch();
  JsonReport report("ablation_cache_inline");
  std::printf("%-10s %-20s %14s %14s %12s\n", "workload", "config",
              "vliw cycles", "generated", "code bytes");
  for (const std::string& name : cabt::workloads::figure5Names()) {
    const cabt::elf::Object obj =
        cabt::workloads::assemble(cabt::workloads::get(name));
    uint64_t generated_ref = 0;
    for (const Config& cfg : kConfigs) {
      cabt::xlat::TranslateOptions extra;
      extra.inline_cache_threshold = cfg.threshold;
      const VariantRun run = runVariant(
          desc, obj, cabt::xlat::DetailLevel::kICache, {}, extra);
      if (generated_ref == 0) {
        generated_ref = run.generated_cycles;
      } else if (run.generated_cycles != generated_ref) {
        throw cabt::Error("inlining changed the generated cycle count");
      }
      std::printf("%-10s %-20s %14llu %14llu %12llu\n", name.c_str(),
                  cfg.label,
                  static_cast<unsigned long long>(run.vliw_cycles),
                  static_cast<unsigned long long>(run.generated_cycles),
                  static_cast<unsigned long long>(run.code_bytes));
      report.add(name, cfg.label, run.vliw_cycles, 0.0);
    }
  }
  report.write();
  std::printf("\n(inlining removes the call/return delay slots per cache "
              "analysis block at the price of code size)\n");

  benchmark::Initialize(&argc, argv);
  for (const Config& cfg : kConfigs) {
    const uint32_t threshold = cfg.threshold;
    benchmark::RegisterBenchmark(
        (std::string("ablation_cache_inline/") + cfg.label).c_str(),
        [threshold](benchmark::State& state) {
          const auto desc = defaultArch();
          const auto obj =
              cabt::workloads::assemble(cabt::workloads::get("sieve"));
          VariantRun run;
          for (auto _ : state) {
            cabt::xlat::TranslateOptions extra;
            extra.inline_cache_threshold = threshold;
            run = runVariant(desc, obj, cabt::xlat::DetailLevel::kICache,
                             {}, extra);
          }
          state.counters["vliw_cycles"] =
              static_cast<double>(run.vliw_cycles);
          state.counters["code_bytes"] =
              static_cast<double>(run.code_bytes);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
