// Fuzzing-farm throughput: snapshot-fork vs replay-from-reset
// (DESIGN.md section 13).
//
// The farm's speed claim is that mutated-state candidates are cheap
// because the oracle restores a warmed snapshot at the fork cycle
// instead of replaying the board from reset. This harness measures it
// twice:
//
//   * micro: host time to *reach* the fork cycle — cold board.runTo()
//     vs snap::restore() into a fresh board (identical digests
//     asserted);
//   * end-to-end: oracle executions per second over a batch of
//     state-only mutants of one corpus entry, fork+cache vs reset.
//
// The fork path must win both (CABT_CHECK), and the record lands in
// BENCH_fuzz_throughput.json with execs/sec per strategy so the perf
// trajectory is tracked across PRs.
#include <chrono>

#include "bench_common.h"
#include "fuzz/mutator.h"
#include "fuzz/oracle.h"
#include "snap/snapshot.h"
#include "trc/assembler.h"

namespace cabt::bench {
namespace {

struct Setup {
  fuzz::SeedCase base;           // fork/horizon stamped
  std::vector<fuzz::SeedCase> mutants;  // state-only mutants of base
  uint64_t ref_cycles = 0;
};

/// A long-running loop (tens of kilocycles): generator programs finish
/// in a few hundred cycles, far too short for the fork point to matter.
std::string longProgram(int iterations) {
  std::string p;
  p += "_start: movha a0, hi(buf)\n";
  p += "        lea a0, a0, lo(buf)\n";
  p += "        movi d0, 3\n";
  p += "        movi d1, 5\n";
  p += "        movi d10, " + std::to_string(iterations) + "\n";
  p += "l0:\n";
  p += "        add d0, d0, d1\n";
  p += "        mul d1, d0, d0\n";
  p += "        stw d0, [a0]16\n";
  p += "        ldw d2, [a0]16\n";
  p += "        xor d1, d1, d2\n";
  p += "        addi16 d10, -1\n";
  p += "        jnz16 d10, l0\n";
  p += "        add d9, d9, d0\n";
  p += "        add d9, d9, d1\n";
  p += "        halt\n";
  p += "        .bss\nbuf:    .space 256\n";
  return p;
}

Setup makeSetup(size_t num_mutants) {
  Setup s;
  s.base.programs.push_back(longProgram(4000));
  s.base.quantum = 256;

  // Clean-run length from the oracle's reference configuration.
  fuzz::OracleOptions probe;
  probe.three_way = false;
  const fuzz::OracleResult r =
      fuzz::runOracle(s.base, probe, nullptr, nullptr);
  if (!r.valid || !r.ok) {
    throw Error("fuzz-throughput base case is not clean: " + r.mismatch);
  }
  s.ref_cycles = r.ref_cycles;
  s.base.horizon = r.ref_cycles;
  s.base.fork_cycle = r.ref_cycles / 2;

  // State-only mutants: same programs (so the snapshot cache key is
  // shared), different mid-run fault specs.
  fuzz::Mutator mutator(/*seed=*/11);
  while (s.mutants.size() < num_mutants) {
    const std::optional<fuzz::SeedCase> m = mutator.mutate(s.base);
    if (!m.has_value() || m->programs != s.base.programs ||
        m->faults.empty()) {
      continue;  // keep only state-only mutants
    }
    s.mutants.push_back(*m);
  }
  return s;
}

/// Host seconds to reach the fork cycle, best of `repeats`.
template <typename Fn>
double bestOf(int repeats, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Batch {
  uint64_t execs = 0;
  double seconds = 0;
  [[nodiscard]] double execsPerSec() const {
    return static_cast<double>(execs) / seconds;
  }
};

Batch runBatch(const Setup& s, bool forks) {
  Batch out;
  fuzz::SnapshotCache cache;
  fuzz::OracleOptions opts;
  opts.three_way = false;  // faulted cases never take the extras anyway
  const auto t0 = std::chrono::steady_clock::now();
  for (const fuzz::SeedCase& m : s.mutants) {
    fuzz::SeedCase c = m;
    if (!forks) {
      c.fork_cycle = 0;
    }
    const fuzz::OracleResult r =
        fuzz::runOracle(c, opts, forks ? &cache : nullptr, nullptr);
    if (!r.valid) {
      throw Error("fuzz-throughput mutant went invalid");
    }
    out.execs += r.executions;
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  printHeader("Fuzzing-farm snapshot-fork throughput",
              "the farm speed claim, DESIGN.md section 13");
  const Setup setup = makeSetup(/*num_mutants=*/6);
  std::printf("base case: ref_cycles=%llu fork=%llu mutants=%zu\n",
              static_cast<unsigned long long>(setup.ref_cycles),
              static_cast<unsigned long long>(setup.base.fork_cycle),
              setup.mutants.size());

  // ---- micro: reach the fork cycle cold vs restore --------------------
  const cabt::arch::ArchDescription desc = defaultArch();
  const cabt::elf::Object image = cabt::trc::assemble(setup.base.programs[0]);
  const std::vector<const cabt::elf::Object*> ptrs = {&image};
  cabt::platform::BoardConfig cfg;
  cfg.iss =
      cabt::platform::issConfigFor(cabt::xlat::DetailLevel::kICache);
  cfg.iss.dispatch_mode = cabt::iss::DispatchMode::kChainedTraces;
  cfg.iss.trace_threshold = 2;
  cfg.iss.threaded_threshold = 2;
  cfg.quantum = setup.base.quantum;

  cabt::platform::ReferenceBoard warm(desc, ptrs, cfg);
  warm.runTo(setup.base.fork_cycle);
  const std::vector<uint8_t> snapshot = cabt::snap::save(warm);
  const uint64_t warm_digest = cabt::snap::digest(warm);

  uint64_t cold_digest = 0;
  const double cold_s = bestOf(5, [&] {
    cabt::platform::ReferenceBoard b(desc, ptrs, cfg);
    b.runTo(setup.base.fork_cycle);
    cold_digest = cabt::snap::digest(b);
  });
  uint64_t fork_digest = 0;
  const double fork_s = bestOf(5, [&] {
    cabt::platform::ReferenceBoard b(desc, ptrs, cfg);
    cabt::snap::restore(b, snapshot);
    fork_digest = cabt::snap::digest(b);
  });
  CABT_CHECK(cold_digest == warm_digest && fork_digest == warm_digest,
             "fork and cold boards disagree at the fork cycle");
  CABT_CHECK(fork_s < cold_s,
             "snapshot restore ("
                 << fork_s << "s) must reach the mutation cycle faster "
                 << "than replay from reset (" << cold_s << "s)");
  std::printf("reach fork cycle %llu: cold %s, restore %s (%.2fx)\n",
              static_cast<unsigned long long>(setup.base.fork_cycle),
              humanTime(cold_s).c_str(), humanTime(fork_s).c_str(),
              cold_s / fork_s);

  // ---- end-to-end: oracle batch, reset vs fork+cache ------------------
  const Batch reset = runBatch(setup, /*forks=*/false);
  const Batch fork = runBatch(setup, /*forks=*/true);
  CABT_CHECK(fork.seconds < reset.seconds,
             "forked oracle batch (" << fork.seconds
                                     << "s) must beat replay-from-reset ("
                                     << reset.seconds << "s)");
  std::printf("oracle batch (%zu mutants): reset %llu execs in %s "
              "(%.1f execs/s), fork %llu execs in %s (%.1f execs/s), "
              "speedup %.2fx\n",
              setup.mutants.size(),
              static_cast<unsigned long long>(reset.execs),
              humanTime(reset.seconds).c_str(), reset.execsPerSec(),
              static_cast<unsigned long long>(fork.execs),
              humanTime(fork.seconds).c_str(), fork.execsPerSec(),
              reset.seconds / fork.seconds);

  // JsonReport's host_mips column carries execs/sec here (the variant
  // names say so); cycles carries the modeled fork cycle.
  JsonReport report("fuzz_throughput");
  report.add("fuzz_batch", "replay_reset_execs_per_sec",
             setup.ref_cycles, reset.execsPerSec());
  report.add("fuzz_batch", "snapshot_fork_execs_per_sec",
             setup.ref_cycles, fork.execsPerSec());
  report.add("fuzz_reach_fork", "cold_per_sec", setup.base.fork_cycle,
             1.0 / cold_s);
  report.add("fuzz_reach_fork", "restore_per_sec", setup.base.fork_cycle,
             1.0 / fork_s);
  report.write();

  benchmark::Initialize(&argc, argv);
  for (const bool forks : {false, true}) {
    benchmark::RegisterBenchmark(
        forks ? "fuzz_throughput/fork" : "fuzz_throughput/reset",
        [&setup, forks](benchmark::State& state) {
          Batch b;
          for (auto _ : state) {
            b = runBatch(setup, forks);
          }
          state.counters["execs_per_sec"] = b.execsPerSec();
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
