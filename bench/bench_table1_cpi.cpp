// Table 1 reproduction: average clock cycles per executed TriCore
// instruction — the board itself, then the four translated variants
// (average over the six Figure-5 examples, as in the paper).
//
// Paper values for orientation: board 1.08; C6x without cycle information
// 2.94; with cycle information 4.28; branch prediction 5.87; caches
// 35.34. We reproduce the ordering and the rough factors (the absolute
// values depend on the exact ISA pair).
#include "bench_common.h"

namespace cabt::bench {
namespace {

struct Averages {
  double board = 0;
  std::vector<double> variants;
};

Averages collect() {
  const arch::ArchDescription desc = defaultArch();
  Averages avg;
  avg.variants.assign(allLevels().size(), 0.0);
  const auto names = workloads::figure5Names();
  for (const std::string& name : names) {
    const elf::Object obj = workloads::assemble(workloads::get(name));
    const BoardRun board = runBoard(desc, obj);
    avg.board += static_cast<double>(board.cycles) /
                 static_cast<double>(board.instructions);
    for (size_t v = 0; v < allLevels().size(); ++v) {
      const VariantRun run = runVariant(desc, obj, allLevels()[v]);
      avg.variants[v] += run.cpi(board.instructions);
    }
  }
  avg.board /= static_cast<double>(names.size());
  for (double& v : avg.variants) {
    v /= static_cast<double>(names.size());
  }
  return avg;
}

void printTable(const Averages& avg) {
  printHeader("Clock cycles per TriCore instruction", "Table 1");
  std::printf("%-28s %10s %10s\n", "", "this repo", "paper");
  const double paper[] = {2.94, 4.28, 5.87, 35.34};
  std::printf("%-28s %10.2f %10.2f\n", "TC10GP Evaluation Board", avg.board,
              1.08);
  for (size_t v = 0; v < allLevels().size(); ++v) {
    std::printf("%-28s %10.2f %10.2f\n", variantLabel(allLevels()[v]),
                avg.variants[v], paper[v]);
  }
  std::printf("\nshape checks: cycle info adds %.2f cycles/instr "
              "(paper: +1.34); cache level is %.1fx the branch-pred level "
              "(paper: 6.0x)\n",
              avg.variants[1] - avg.variants[0],
              avg.variants[3] / avg.variants[2]);
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  const Averages avg = collect();
  printTable(avg);
  {
    JsonReport report("table1_cpi");
    report.add("figure5-average", "board",
               static_cast<uint64_t>(avg.board * 1000), 0.0);
    for (size_t v = 0; v < allLevels().size(); ++v) {
      // CPI is dimensionless; record milli-CPI in the cycles column.
      report.add("figure5-average",
                 cabt::xlat::detailLevelName(allLevels()[v]),
                 static_cast<uint64_t>(avg.variants[v] * 1000), 0.0);
    }
    report.write();
  }

  benchmark::Initialize(&argc, argv);
  for (size_t v = 0; v < allLevels().size(); ++v) {
    const cabt::xlat::DetailLevel level = allLevels()[v];
    const double cpi = avg.variants[v];
    const std::string name =
        std::string("table1/cpi/") + cabt::xlat::detailLevelName(level);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [level, cpi](benchmark::State& state) {
          const auto desc = defaultArch();
          for (auto _ : state) {
            const auto obj =
                cabt::workloads::assemble(cabt::workloads::get("gcd"));
            benchmark::DoNotOptimize(runVariant(desc, obj, level));
          }
          state.counters["avg_cpi"] = cpi;
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
