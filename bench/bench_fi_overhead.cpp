// Armed-idle fault-injection overhead (DESIGN.md section 12).
//
// The non-perturbation invariant has a performance face: an armed
// campaign whose faults never fire costs one due-time compare per
// boundary epoch per core, exactly like an attached-but-idle PcSampler.
// This harness measures the reference board's host MIPS three ways —
// FI off, FI armed-idle, and FI armed-idle with a periodic snapshot
// ring — and asserts the armed-idle digest matches the FI-off digest
// (the functional invariant the measurement relies on).
//
// scripts/bench_report.py gates the BENCH_fi_overhead.json record:
// armed-idle must stay within noise of FI off.
#include <chrono>

#include "bench_common.h"
#include "fi/fi.h"
#include "snap/snapshot.h"

namespace cabt::bench {
namespace {

struct Board {
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> ptrs;
};

Board makeWorker() {
  Board b;
  b.images.push_back(workloads::assemble(workloads::get("mc_worker")));
  b.ptrs.push_back(&b.images.front());
  return b;
}

enum class Mode { kOff, kArmedIdle, kArmedIdleRing };

const char* modeName(Mode m) {
  switch (m) {
    case Mode::kOff:
      return "fi_off";
    case Mode::kArmedIdle:
      return "fi_armed_idle";
    default:
      return "fi_armed_idle_ring";
  }
}

struct FiRun {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t digest = 0;
  double host_seconds = 0;
  [[nodiscard]] double hostMips() const {
    return static_cast<double>(instructions) / host_seconds / 1e6;
  }
};

FiRun runBoard(const Board& b, Mode mode, int repeats) {
  const arch::ArchDescription desc = defaultArch();
  FiRun result;
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    platform::BoardConfig cfg;
    cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
    platform::ReferenceBoard board(desc, b.ptrs, cfg);
    fi::Campaign camp;
    if (mode != Mode::kOff) {
      // One armed-but-never-due fault per category: the fast-path cost
      // of a live campaign without any fault ever firing.
      fi::FaultSpec reg;
      reg.kind = fi::FaultKind::kDataRegFlip;
      reg.cycle = fi::CoreInjector::kNever;
      reg.index = 15;
      reg.mask = 1;
      camp.add(reg);
      fi::FaultSpec bus;
      bus.kind = fi::FaultKind::kBusError;
      bus.cycle = fi::CoreInjector::kNever;
      bus.addr = 0xf0000300u;
      camp.add(bus);
      fi::FaultSpec stall;
      stall.kind = fi::FaultKind::kDeviceStall;
      stall.cycle = fi::CoreInjector::kNever;
      stall.device = "scratch";
      camp.add(stall);
      camp.arm(board);
    }
    if (mode == Mode::kArmedIdleRing) {
      board.setCheckpointing({65536, 2, ""});
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (board.run() != iss::StopReason::kHalted) {
      throw Error("fi-overhead board did not halt");
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    if (camp.firedCount() != 0) {
      throw Error("armed-idle campaign fired a fault");
    }
    result.instructions = board.core(0).stats().instructions;
    result.cycles = board.core(0).stats().cycles;
    result.digest = snap::digest(board);
  }
  result.host_seconds = best;
  return result;
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  printHeader("Fault-injection armed-idle overhead",
              "non-perturbation invariant, DESIGN.md section 12");
  const Board board = makeWorker();
  JsonReport report("fi_overhead");
  std::printf("%-20s %12s %12s %10s %8s\n", "mode", "instrs", "cycles",
              "host MIPS", "vs off");
  FiRun off;
  for (const Mode mode :
       {Mode::kOff, Mode::kArmedIdle, Mode::kArmedIdleRing}) {
    const FiRun run = runBoard(board, mode, 3);
    if (mode == Mode::kOff) {
      off = run;
    } else if (run.digest != off.digest) {
      // The measurement is only meaningful while the invariant holds.
      throw cabt::Error("armed-idle digest diverged from FI off");
    }
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.3fx",
                  off.host_seconds / run.host_seconds);
    std::printf("%-20s %12llu %12llu %10.2f %8s\n", modeName(mode),
                static_cast<unsigned long long>(run.instructions),
                static_cast<unsigned long long>(run.cycles), run.hostMips(),
                mode == Mode::kOff ? "-" : ratio);
    report.add("mc_worker", modeName(mode), run.cycles, run.hostMips());
  }
  report.write();
  std::printf("\n(armed-idle digest asserted identical to FI off on every "
              "run; the cross-engine grid proof lives in tests/fi_test.cpp)"
              "\n");

  benchmark::Initialize(&argc, argv);
  for (const Mode mode : {Mode::kOff, Mode::kArmedIdle}) {
    benchmark::RegisterBenchmark(
        (std::string("fi_overhead/mc_worker/") + modeName(mode)).c_str(),
        [mode](benchmark::State& state) {
          const Board b = makeWorker();
          FiRun run;
          for (auto _ : state) {
            run = runBoard(b, mode, 1);
          }
          state.counters["mips_host"] = run.hostMips();
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
