// Fleet scaling sweep: M single-core reference boards scheduled over
// the host pool by the fleet driver (src/fleet), swept across fleet
// sizes.
//
// What the BENCH_fleet.json record is gated on (scripts/bench_report.py
// --require-fleet):
//   * determinism — every board of a fleet, and every repeat of a
//     sweep point, produces the same snap digest (the row carries it);
//   * decode-once sharing — each sweep point reports
//     artifact_decodes == distinct images: the whole fleet shared one
//     ProgramArtifact per image through the process-wide cache;
//   * throughput — aggregate host MIPS at M >= 2 boards must not fall
//     below the single-board baseline (boards are independent, so fleet
//     scheduling must never cost what it parallelizes).
#include <chrono>
#include <cinttypes>

#include "bench_common.h"
#include "core/program_artifact.h"
#include "fleet/fleet.h"

namespace cabt::bench {
namespace {

struct FleetRow {
  std::string workload;
  std::string variant;
  uint64_t cycles = 0;       ///< summed board SoC cycles
  double host_mips = 0.0;    ///< aggregate, fleet-wide
  double boards_per_sec = 0.0;
  uint64_t digest = 0;       ///< the (shared) per-board digest
  size_t boards = 0;
  uint64_t artifact_decodes = 0;
  uint64_t artifact_hits = 0;
  size_t images = 0;
};

/// BENCH_fleet.json writer: same envelope as bench::JsonReport, plus
/// the fleet-specific row fields the report gate reads (digest, board
/// count, artifact-cache activity).
void writeFleetReport(const std::vector<FleetRow>& rows) {
  const std::string path = benchOutputPath("BENCH_fleet.json");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"fleet\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const FleetRow& r = rows[i];
    char mips[32];
    std::snprintf(mips, sizeof(mips), "%.3f", r.host_mips);
    char bps[32];
    std::snprintf(bps, sizeof(bps), "%.3f", r.boards_per_sec);
    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016" PRIx64, r.digest);
    out << "    {\"workload\": \"" << r.workload << "\", \"variant\": \""
        << r.variant << "\", \"cycles\": " << r.cycles
        << ", \"host_mips\": " << mips << ", \"boards\": " << r.boards
        << ", \"boards_per_sec\": " << bps << ", \"digest\": \"" << digest
        << "\", \"artifact_decodes\": " << r.artifact_decodes
        << ", \"artifact_hits\": " << r.artifact_hits
        << ", \"images\": " << r.images << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

struct Setup {
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> ptrs;
};

Setup makeSetup() {
  Setup s;
  s.images.push_back(workloads::assemble(workloads::get("mc_worker")));
  s.ptrs.push_back(&s.images.front());
  return s;
}

fleet::FleetConfig fleetConfig(size_t boards) {
  fleet::FleetConfig cfg;
  cfg.desc = defaultArch();
  cfg.board.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
  // The cap is architectural state, so capped runs digest identically
  // everywhere; it also fixes the per-board work for the MIPS sweep.
  cfg.board.iss.max_instructions = 120'000;
  cfg.boards = boards;
  return cfg;
}

fleet::FleetResult runFleet(const Setup& setup, size_t boards) {
  // A cold cache per sweep point makes the decode accounting exact:
  // the whole fleet must come to one decode per distinct image.
  core::ProgramArtifactCache::instance().clear();
  fleet::Driver driver(fleetConfig(boards));
  fleet::FleetResult result = driver.run(setup.ptrs);
  if (!result.digestsAgree()) {
    throw Error("fleet boards diverged");
  }
  if (result.artifact.decodes != setup.ptrs.size()) {
    throw Error("fleet re-decoded a shared image");
  }
  return result;
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  printHeader("Board-fleet scaling sweep",
              "the fleet-driver extension (DESIGN.md §14)");
  std::printf("(M independent boards over the shared host pool; digests "
              "must agree across boards, repeats and fleet sizes)\n\n");
  const Setup setup = makeSetup();
  constexpr int kRepeats = 2;
  std::vector<FleetRow> rows;
  cabt::obs::MetricsRegistry reg;
  uint64_t reference_digest = 0;
  double single_mips = 0.0;
  std::printf("%-10s %6s %12s %12s %10s %8s %8s\n", "fleet", "run",
              "instrs", "boards/sec", "agg MIPS", "decodes", "speedup");
  for (const size_t boards : {1u, 2u, 4u, 8u}) {
    double best_mips = 0.0;
    for (int run = 0; run < kRepeats; ++run) {
      const cabt::fleet::FleetResult r = runFleet(setup, boards);
      const uint64_t digest = r.boards.front().digest;
      if (reference_digest == 0) {
        reference_digest = digest;
      } else if (digest != reference_digest) {
        throw cabt::Error("fleet digest drifted across sweep points");
      }
      best_mips = std::max(best_mips, r.aggregateMips());
      uint64_t cycles = 0;
      for (const cabt::fleet::BoardResult& b : r.boards) {
        cycles += b.soc_cycles;
      }
      rows.push_back({"mc_worker",
                      "fleet_" + std::to_string(boards) + "/run" +
                          std::to_string(run),
                      cycles, r.aggregateMips(), r.boardsPerSec(), digest,
                      boards, r.artifact.decodes, r.artifact.hits,
                      setup.ptrs.size()});
      std::printf("%-10zu %6d %12" PRIu64 " %12.2f %10.2f %8" PRIu64,
                  boards, run, r.totalInstructions(), r.boardsPerSec(),
                  r.aggregateMips(), r.artifact.decodes);
      if (single_mips > 0.0) {
        std::printf(" %7.2fx", r.aggregateMips() / single_mips);
      } else {
        std::printf(" %8s", "-");
      }
      std::printf("\n");
      if (boards == 8 && run == 0) {
        r.publishMetrics(reg);
      }
    }
    if (boards == 1) {
      single_mips = best_mips;
    }
  }
  writeFleetReport(rows);
  {
    const std::string path = benchOutputPath("METRICS_fleet.json");
    std::ofstream out(path);
    if (out) {
      out << reg.toJson();
    }
  }
  std::printf("\n(every row carries its digest and decode count; "
              "scripts/bench_report.py --require-fleet gates run-to-run "
              "digest identity, decode-once sharing and aggregate MIPS "
              ">= the single-board baseline)\n");

  benchmark::Initialize(&argc, argv);
  for (const size_t boards : {1u, 4u}) {
    benchmark::RegisterBenchmark(
        ("fleet/boards_" + std::to_string(boards)).c_str(),
        [&setup, boards](benchmark::State& state) {
          cabt::fleet::FleetResult r;
          for (auto _ : state) {
            r = runFleet(setup, boards);
          }
          state.counters["mips_aggregate"] = r.aggregateMips();
          state.counters["boards_per_sec"] = r.boardsPerSec();
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
