// Ablation B: the synchronization device's generation rate.
//
// The paper fixes the FPGA cycle-generation hardware; here the rate (VLIW
// cycles per generated SoC cycle) is a platform parameter. A slow rate
// makes the "wait for end of cycle generation" instruction actually wait
// (sync stalls), showing the paper's trade-off between the emulated
// clock's real-time behaviour and execution speed. The generated cycle
// count must be rate-invariant (cycle accuracy is preserved).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cabt::bench;
  printHeader("Ablation: SoC cycle generation rate",
              "the synchronization device of section 3.1");
  const cabt::arch::ArchDescription desc = defaultArch();
  const unsigned rates[] = {1, 2, 4, 8};
  JsonReport report("ablation_syncrate");
  std::printf("%-10s %6s %14s %14s %14s %10s\n", "workload", "rate",
              "vliw cycles", "sync stalls", "generated", "slowdown");
  for (const std::string& name : cabt::workloads::figure5Names()) {
    const cabt::elf::Object obj =
        cabt::workloads::assemble(cabt::workloads::get(name));
    uint64_t base_cycles = 0;
    uint64_t generated_ref = 0;
    for (const unsigned rate : rates) {
      cabt::platform::PlatformConfig cfg;
      cfg.vliw_cycles_per_soc_cycle = rate;
      const VariantRun run = runVariant(
          desc, obj, cabt::xlat::DetailLevel::kBranchPredict, cfg);
      if (rate == 1) {
        base_cycles = run.vliw_cycles;
        generated_ref = run.generated_cycles;
      } else if (run.generated_cycles != generated_ref) {
        throw cabt::Error("generation rate changed the cycle count");
      }
      std::printf("%-10s %6u %14llu %14llu %14llu %9.2fx\n", name.c_str(),
                  rate, static_cast<unsigned long long>(run.vliw_cycles),
                  static_cast<unsigned long long>(run.sync_stalls),
                  static_cast<unsigned long long>(run.generated_cycles),
                  static_cast<double>(run.vliw_cycles) /
                      static_cast<double>(base_cycles));
      report.add(name, "rate_" + std::to_string(rate), run.vliw_cycles,
                 0.0);
    }
  }
  report.write();
  std::printf("\n(the generated cycle stream is identical at every rate; "
              "only the wall-clock cost of waiting changes)\n");

  benchmark::Initialize(&argc, argv);
  for (const unsigned rate : {1u, 4u}) {
    benchmark::RegisterBenchmark(
        ("ablation_syncrate/rate_" + std::to_string(rate)).c_str(),
        [rate](benchmark::State& state) {
          const auto desc = defaultArch();
          const auto obj =
              cabt::workloads::assemble(cabt::workloads::get("gcd"));
          VariantRun run;
          for (auto _ : state) {
            cabt::platform::PlatformConfig cfg;
            cfg.vliw_cycles_per_soc_cycle = rate;
            run = runVariant(desc, obj,
                             cabt::xlat::DetailLevel::kBranchPredict, cfg);
          }
          state.counters["sync_stalls"] =
              static_cast<double>(run.sync_stalls);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
