// Figure 5 reproduction: comparison of execution speed (million source
// instructions per second) of the TC10GP evaluation board against the
// translated code at the four variants, for the six example programs.
//
// The paper's qualitative claims this regenerates:
//  * large-basic-block programs (ellip, subband) translate fastest and
//    can beat the 48 MHz board on the 200 MHz VLIW;
//  * sieve, consisting of many small blocks, pays the most for cycle
//    generation (one start/wait pair per block);
//  * speed drops monotonically with the detail level, with a large drop
//    at the cache level.
#include "bench_common.h"

namespace cabt::bench {
namespace {

struct Row {
  std::string workload;
  BoardRun board;
  std::vector<VariantRun> variants;  // parallel to allLevels()
};

std::vector<Row> collect() {
  std::vector<Row> rows;
  const arch::ArchDescription desc = defaultArch();
  for (const std::string& name : workloads::figure5Names()) {
    const elf::Object obj = workloads::assemble(workloads::get(name));
    Row row;
    row.workload = name;
    row.board = runBoard(desc, obj);
    for (const xlat::DetailLevel level : allLevels()) {
      row.variants.push_back(runVariant(desc, obj, level));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void printFigure(const std::vector<Row>& rows) {
  printHeader("Comparison of speed [MIPS]", "Figure 5");
  double max_mips = 0;
  for (const Row& r : rows) {
    max_mips = std::max(max_mips, r.board.mips());
    for (size_t v = 0; v < r.variants.size(); ++v) {
      max_mips = std::max(max_mips,
                          r.variants[v].mips(r.board.instructions));
    }
  }
  for (const Row& r : rows) {
    std::printf("\n%s (%llu source instructions)\n", r.workload.c_str(),
                static_cast<unsigned long long>(r.board.instructions));
    printBar("TC10GP board", r.board.mips(), max_mips, "MIPS");
    for (size_t v = 0; v < r.variants.size(); ++v) {
      printBar(variantLabel(allLevels()[v]),
               r.variants[v].mips(r.board.instructions), max_mips, "MIPS");
    }
  }
  std::printf("\n%-10s %12s %12s %12s %12s %12s\n", "workload", "board",
              "w/o cycle", "cycle inf.", "branch pred", "cache");
  for (const Row& r : rows) {
    std::printf("%-10s %12.2f", r.workload.c_str(), r.board.mips());
    for (const VariantRun& v : r.variants) {
      std::printf(" %12.2f", v.mips(r.board.instructions));
    }
    std::printf("\n");
  }
  std::printf("\nreference board host speed (block-cached ISS):\n");
  std::printf("%-10s %14s %10s  %s\n", "workload", "host MIPS", "cached",
              "hottest block");
  for (const Row& r : rows) {
    std::printf("%-10s %14.2f %9.1f%%  %s\n", r.workload.c_str(),
                r.board.hostMips(), r.board.cacheShare() * 100.0,
                r.board.hot_symbol.c_str());
  }
}

void registerBenchmarks(const std::vector<Row>& rows) {
  const arch::ArchDescription desc = defaultArch();
  for (const Row& row : rows) {
    // Host speed of the reference board itself (the block-cached ISS).
    const std::string workload_name = row.workload;
    benchmark::RegisterBenchmark(
        ("fig5/" + row.workload + "/board_host").c_str(),
        [workload_name, desc](benchmark::State& state) {
          const elf::Object obj =
              workloads::assemble(workloads::get(workload_name));
          BoardRun board;
          for (auto _ : state) {
            board = runBoard(desc, obj);
          }
          state.counters["mips_host"] = board.hostMips();
          state.counters["cached_block_share"] = board.cacheShare();
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    for (size_t v = 0; v < row.variants.size(); ++v) {
      const xlat::DetailLevel level = allLevels()[v];
      const std::string name =
          "fig5/" + row.workload + "/" + xlat::detailLevelName(level);
      const std::string workload = row.workload;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [workload, level, desc](benchmark::State& state) {
            const elf::Object obj =
                workloads::assemble(workloads::get(workload));
            const BoardRun board = runBoard(desc, obj);
            VariantRun run;
            for (auto _ : state) {
              run = runVariant(desc, obj, level);
            }
            state.counters["mips_modeled"] = run.mips(board.instructions);
            state.counters["vliw_cycles"] =
                static_cast<double>(run.vliw_cycles);
            state.counters["cpi"] = run.cpi(board.instructions);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  const auto rows = cabt::bench::collect();
  cabt::bench::printFigure(rows);
  {
    cabt::bench::JsonReport report("fig5_speed");
    cabt::obs::MetricsRegistry metrics;
    for (const auto& r : rows) {
      report.add(r.workload, "board", r.board.cycles, r.board.hostMips(),
                 &r.board.stats, r.board.hot_symbol);
      metrics.setCounter("fig5." + r.workload + ".board.instructions",
                         r.board.stats.instructions);
      metrics.setCounter("fig5." + r.workload + ".board.cycles",
                         r.board.stats.cycles);
      metrics.setCounter("fig5." + r.workload + ".board.icache_misses",
                         r.board.stats.icache_misses);
      metrics.observe("fig5.board.host_mips_x100",
                      static_cast<uint64_t>(r.board.hostMips() * 100.0));
      for (size_t v = 0; v < r.variants.size(); ++v) {
        report.add(r.workload,
                   cabt::xlat::detailLevelName(cabt::bench::allLevels()[v]),
                   r.variants[v].vliw_cycles,
                   r.variants[v].hostMips(r.board.instructions));
      }
    }
    report.write();
    report.writeMetrics(metrics);
  }
  benchmark::Initialize(&argc, argv);
  cabt::bench::registerBenchmarks(rows);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
