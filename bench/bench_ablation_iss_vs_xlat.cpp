// Ablation C (the section-2 taxonomy): host execution speed of the
// interpretive ISS against the compiled-simulation route (translate once,
// then run the translated code on the VLIW platform model) and against
// the RT-level model. This is the "compiled simulation reaches the
// fastest execution speed" argument of the paper's related-work section,
// measured on the host running this repository's simulators.
#include <chrono>

#include "bench_common.h"
#include "rtlsim/rtlsim.h"

namespace cabt::bench {
namespace {

double time(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  printHeader("Ablation: host speed of the simulation vehicles",
              "the ISS taxonomy of section 2");
  const cabt::arch::ArchDescription desc = defaultArch();
  JsonReport report("ablation_iss_vs_xlat");
  std::printf("%-10s %12s %12s %12s %12s\n", "workload", "rtl host",
              "iss host", "xlat L0 host", "xlat L3 host");
  for (const std::string& name : cabt::workloads::figure5Names()) {
    const cabt::elf::Object obj =
        cabt::workloads::assemble(cabt::workloads::get(name));
    const double t_rtl = time([&] {
      cabt::rtlsim::RtlCore rtl(desc, obj);
      rtl.run();
    });
    uint64_t iss_instructions = 0;
    uint64_t iss_cycles = 0;
    const double t_iss = time([&] {
      cabt::iss::Iss iss(desc, obj);
      iss.run();
      iss_instructions = iss.stats().instructions;
      iss_cycles = iss.stats().cycles;
    });
    // Translation happens once; only the run is timed (compiled
    // simulation amortises the static translation).
    cabt::xlat::TranslateOptions o0;
    o0.level = cabt::xlat::DetailLevel::kFunctional;
    const auto t0img = cabt::xlat::translate(desc, obj, o0);
    const double t_l0 = time([&] {
      cabt::platform::EmulationPlatform plat(desc, t0img.image);
      plat.run();
    });
    cabt::xlat::TranslateOptions o3;
    o3.level = cabt::xlat::DetailLevel::kICache;
    const auto t3img = cabt::xlat::translate(desc, obj, o3);
    const double t_l3 = time([&] {
      cabt::platform::EmulationPlatform plat(desc, t3img.image);
      plat.run();
    });
    std::printf("%-10s %12s %12s %12s %12s\n", name.c_str(),
                humanTime(t_rtl).c_str(), humanTime(t_iss).c_str(),
                humanTime(t_l0).c_str(), humanTime(t_l3).c_str());
    const double mi = static_cast<double>(iss_instructions) / 1e6;
    report.add(name, "rtl-host", iss_cycles, mi / t_rtl);
    report.add(name, "iss-host", iss_cycles, mi / t_iss);
    report.add(name, "xlat-l0-host", iss_cycles, mi / t_l0);
    report.add(name, "xlat-l3-host", iss_cycles, mi / t_l3);
  }
  report.write();
  std::printf("\n(ordering expected: RT-level slowest by orders of "
              "magnitude; detail levels trade host speed for accuracy)\n");

  benchmark::Initialize(&argc, argv);
  for (const char* vehicle : {"rtl", "iss", "xlat_l0", "xlat_l3"}) {
    const std::string v = vehicle;
    benchmark::RegisterBenchmark(
        ("ablation_vehicles/" + v + "/sieve").c_str(),
        [v](benchmark::State& state) {
          const auto desc = defaultArch();
          const auto obj =
              cabt::workloads::assemble(cabt::workloads::get("sieve"));
          for (auto _ : state) {
            if (v == "rtl") {
              cabt::rtlsim::RtlCore rtl(desc, obj);
              rtl.run();
            } else if (v == "iss") {
              cabt::iss::Iss iss(desc, obj);
              iss.run();
            } else {
              cabt::xlat::TranslateOptions o;
              o.level = v == "xlat_l0"
                            ? cabt::xlat::DetailLevel::kFunctional
                            : cabt::xlat::DetailLevel::kICache;
              const auto img = cabt::xlat::translate(desc, obj, o);
              cabt::platform::EmulationPlatform plat(desc, img.image);
              plat.run();
            }
          }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
