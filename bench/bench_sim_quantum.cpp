// Multi-core quantum sweep: the timer/interrupt-controller workload
// (mc_producer + mc_consumer) on the two-core reference board at every
// detail-level-equivalent ISS configuration, across temporal-decoupling
// quanta. Generalizes the sync-rate ablation: the quantum is the event
// kernel's speed/accuracy knob — host throughput rises with the quantum
// (fewer kernel yields), while cross-core visibility latency grows with
// it (the consumer's modelled completion time drifts).
#include <chrono>

#include "bench_common.h"
#include "sim/kernel.h"

namespace cabt::bench {
namespace {

struct QuantumRun {
  uint64_t core0_cycles = 0;
  uint64_t core1_cycles = 0;
  uint64_t instructions = 0;  ///< both cores
  uint64_t kernel_events = 0;
  double host_seconds = 0;
  iss::IssStats core0_stats;
  [[nodiscard]] double hostMips() const {
    return static_cast<double>(instructions) / host_seconds / 1e6;
  }
};

QuantumRun runMulticore(xlat::DetailLevel level, sim::Cycle quantum,
                        int repeats) {
  const arch::ArchDescription desc = defaultArch();
  const workloads::Workload& wp = workloads::get("mc_producer");
  const elf::Object producer = workloads::assemble(wp);
  const elf::Object consumer =
      workloads::assemble(workloads::get("mc_consumer"));
  QuantumRun result;
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    platform::BoardConfig cfg;
    cfg.iss = platform::issConfigFor(level);
    cfg.iss.extra_leaders = {platform::symbolAddr(producer, wp.irq_handler)};
    cfg.quantum = quantum;
    platform::ReferenceBoard board(desc, {&producer, &consumer}, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    if (board.run() != iss::StopReason::kHalted) {
      throw Error("multi-core run did not halt");
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    if (workloads::readChecksum(producer, board.core(0).memory()) != 1544u ||
        workloads::readChecksum(consumer, board.core(1).memory()) != 1544u) {
      throw Error("multi-core checksum mismatch");
    }
    result.core0_cycles = board.core(0).stats().cycles;
    result.core1_cycles = board.core(1).stats().cycles;
    result.instructions = board.core(0).stats().instructions +
                          board.core(1).stats().instructions;
    result.kernel_events = board.kernel().eventsDispatched();
    result.core0_stats = board.core(0).stats();
  }
  result.host_seconds = best;
  return result;
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  printHeader("Multi-core temporal-decoupling quantum sweep",
              "the event kernel generalizing the sync-rate ablation");
  const cabt::sim::Cycle quanta[] = {1, 16, 256, 4096};
  JsonReport report("sim_quantum");
  std::printf("%-14s %8s %12s %12s %10s %10s %10s\n", "detail", "quantum",
              "core0 cyc", "core1 cyc", "events", "instrs", "host MIPS");
  for (const cabt::xlat::DetailLevel level :
       {cabt::xlat::DetailLevel::kFunctional,
        cabt::xlat::DetailLevel::kStatic,
        cabt::xlat::DetailLevel::kBranchPredict,
        cabt::xlat::DetailLevel::kICache}) {
    for (const cabt::sim::Cycle quantum : quanta) {
      const QuantumRun run = runMulticore(level, quantum, 3);
      std::printf("%-14s %8llu %12llu %12llu %10llu %10llu %10.2f\n",
                  cabt::xlat::detailLevelName(level),
                  static_cast<unsigned long long>(quantum),
                  static_cast<unsigned long long>(run.core0_cycles),
                  static_cast<unsigned long long>(run.core1_cycles),
                  static_cast<unsigned long long>(run.kernel_events),
                  static_cast<unsigned long long>(run.instructions),
                  run.hostMips());
      report.add(std::string("mc_producer+mc_consumer/") +
                     cabt::xlat::detailLevelName(level),
                 "quantum_" + std::to_string(quantum),
                 run.core0_cycles + run.core1_cycles, run.hostMips(),
                 &run.core0_stats);
    }
  }
  report.write();
  std::printf("\n(checksums asserted identical — 1544 on both cores — at "
              "every configuration; the quantum trades kernel events for "
              "cross-core visibility latency)\n");

  benchmark::Initialize(&argc, argv);
  for (const cabt::sim::Cycle quantum : quanta) {
    benchmark::RegisterBenchmark(
        ("sim_quantum/icache/quantum_" + std::to_string(quantum)).c_str(),
        [quantum](benchmark::State& state) {
          QuantumRun run;
          for (auto _ : state) {
            run = runMulticore(cabt::xlat::DetailLevel::kICache, quantum, 1);
          }
          state.counters["mips_host"] = run.hostMips();
          state.counters["kernel_events"] =
              static_cast<double>(run.kernel_events);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
