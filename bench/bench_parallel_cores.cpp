// Parallel-round scaling sweep: N-core reference boards under the
// sequential kernel vs parallel rounds (sim::Kernel::ParallelConfig),
// across temporal-decoupling quanta.
//
// Two board families:
//   * workers_N — N copies of mc_worker (long private MAC quanta, one
//     shared progress beacon per outer iteration): the parallel-friendly
//     shape. Host MIPS should scale with min(N, host cores) once the
//     quantum amortises the round barrier; results are bit-identical to
//     the sequential kernel by construction (tests/parallel_test.cpp).
//   * mc_pair — the bus-coupled producer/consumer pair: almost every
//     slice bails to the sequential drain immediately, so this measures
//     the determinism overhead floor, not a speedup.
//
// scripts/bench_report.py gates the BENCH_parallel_cores.json record:
// parallel must not fall below sequential at quantum >= 256.
#include <chrono>

#include "bench_common.h"
#include "sim/kernel.h"

namespace cabt::bench {
namespace {

struct ParallelRun {
  uint64_t cycles = 0;        ///< summed core cycles
  uint64_t instructions = 0;  ///< all cores
  uint64_t kernel_events = 0;
  uint64_t prefixes = 0;
  uint64_t slices = 0;
  uint64_t bails = 0;
  double host_seconds = 0;
  [[nodiscard]] double hostMips() const {
    return static_cast<double>(instructions) / host_seconds / 1e6;
  }
};

struct Board {
  std::vector<const workloads::Workload*> programs;
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> ptrs;
  std::vector<uint32_t> extra_leaders;
};

Board makeWorkers(size_t n) {
  Board b;
  for (size_t i = 0; i < n; ++i) {
    b.programs.push_back(&workloads::get("mc_worker"));
  }
  for (const workloads::Workload* w : b.programs) {
    b.images.push_back(workloads::assemble(*w));
  }
  for (const elf::Object& obj : b.images) {
    b.ptrs.push_back(&obj);
  }
  return b;
}

Board makeMcPair() {
  Board b;
  b.programs = {&workloads::get("mc_producer"),
                &workloads::get("mc_consumer")};
  for (const workloads::Workload* w : b.programs) {
    b.images.push_back(workloads::assemble(*w));
    if (!w->irq_handler.empty()) {
      b.extra_leaders.push_back(
          platform::symbolAddr(b.images.back(), w->irq_handler));
    }
  }
  for (const elf::Object& obj : b.images) {
    b.ptrs.push_back(&obj);
  }
  return b;
}

ParallelRun runBoard(const Board& b, sim::Cycle quantum, bool parallel,
                     int repeats) {
  const arch::ArchDescription desc = defaultArch();
  ParallelRun result;
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    platform::BoardConfig cfg;
    cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
    cfg.iss.extra_leaders = b.extra_leaders;
    cfg.quantum = quantum;
    cfg.parallel.enabled = parallel;
    platform::ReferenceBoard board(desc, b.ptrs, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    if (board.run() != iss::StopReason::kHalted) {
      throw Error("parallel-cores board did not halt");
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    result.cycles = 0;
    result.instructions = 0;
    result.slices = 0;
    result.bails = 0;
    for (size_t i = 0; i < board.numCores(); ++i) {
      result.cycles += board.core(i).stats().cycles;
      result.instructions += board.core(i).stats().instructions;
      result.slices += board.core(i).stats().private_slices;
      result.bails += board.core(i).stats().private_bails;
    }
    for (size_t i = 0; i < board.numCores(); ++i) {
      const uint32_t want = *b.programs[i]->expected_checksum;
      if (workloads::readChecksum(b.images[i], board.core(i).memory()) !=
          want) {
        throw Error("parallel-cores checksum mismatch");
      }
    }
    result.kernel_events = board.kernel().eventsDispatched();
    result.prefixes = board.kernel().parallelPrefixes();
  }
  result.host_seconds = best;
  return result;
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  printHeader("Parallel quantum rounds: N-core scaling sweep",
              "the ROADMAP extension of the event kernel (DESIGN.md §7)");
  std::printf("(host threads: pool width follows hardware_concurrency; "
              "speedup saturates at min(cores, host threads))\n");
  const cabt::sim::Cycle quanta[] = {16, 256, 1024, 4096};
  JsonReport report("parallel_cores");
  std::printf("%-12s %8s %6s %12s %10s %10s %10s %8s\n", "board", "quantum",
              "mode", "instrs", "events", "prefixes", "host MIPS",
              "speedup");
  for (const size_t cores : {1u, 2u, 4u, 8u}) {
    const Board board = makeWorkers(cores);
    const std::string name = "workers_" + std::to_string(cores);
    for (const cabt::sim::Cycle quantum : quanta) {
      const ParallelRun seq = runBoard(board, quantum, false, 3);
      const ParallelRun par = runBoard(board, quantum, true, 3);
      std::printf("%-12s %8llu %6s %12llu %10llu %10s %10.2f %8s\n",
                  name.c_str(), static_cast<unsigned long long>(quantum),
                  "seq",
                  static_cast<unsigned long long>(seq.instructions),
                  static_cast<unsigned long long>(seq.kernel_events), "-",
                  seq.hostMips(), "-");
      char speedup[16];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    par.hostMips() / seq.hostMips());
      std::printf("%-12s %8llu %6s %12llu %10llu %10llu %10.2f %8s\n",
                  name.c_str(), static_cast<unsigned long long>(quantum),
                  "par",
                  static_cast<unsigned long long>(par.instructions),
                  static_cast<unsigned long long>(par.kernel_events),
                  static_cast<unsigned long long>(par.prefixes),
                  par.hostMips(), speedup);
      report.add(name, "seq/quantum_" + std::to_string(quantum), seq.cycles,
                 seq.hostMips());
      report.add(name, "par/quantum_" + std::to_string(quantum), par.cycles,
                 par.hostMips());
    }
  }
  {
    const Board pair = makeMcPair();
    for (const cabt::sim::Cycle quantum : quanta) {
      const ParallelRun seq = runBoard(pair, quantum, false, 3);
      const ParallelRun par = runBoard(pair, quantum, true, 3);
      std::printf("%-12s %8llu %6s %12llu %10llu %10s %10.2f %8s\n",
                  "mc_pair", static_cast<unsigned long long>(quantum), "seq",
                  static_cast<unsigned long long>(seq.instructions),
                  static_cast<unsigned long long>(seq.kernel_events), "-",
                  seq.hostMips(), "-");
      char speedup[16];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    par.hostMips() / seq.hostMips());
      std::printf("%-12s %8llu %6s %12llu %10llu %10llu %10.2f %8s\n",
                  "mc_pair", static_cast<unsigned long long>(quantum), "par",
                  static_cast<unsigned long long>(par.instructions),
                  static_cast<unsigned long long>(par.kernel_events),
                  static_cast<unsigned long long>(par.prefixes),
                  par.hostMips(), speedup);
      report.add("mc_pair", "seq/quantum_" + std::to_string(quantum),
                 seq.cycles, seq.hostMips());
      report.add("mc_pair", "par/quantum_" + std::to_string(quantum),
                 par.cycles, par.hostMips());
    }
  }
  report.write();
  std::printf("\n(checksums asserted on every run; parallel results are "
              "bit-identical to the sequential kernel — the grid proof "
              "lives in tests/parallel_test.cpp)\n");

  benchmark::Initialize(&argc, argv);
  for (const size_t cores : {4u, 8u}) {
    for (const bool parallel : {false, true}) {
      benchmark::RegisterBenchmark(
          ("parallel_cores/workers_" + std::to_string(cores) +
           (parallel ? "/par" : "/seq") + "/quantum_1024")
              .c_str(),
          [cores, parallel](benchmark::State& state) {
            const Board board = makeWorkers(cores);
            ParallelRun run;
            for (auto _ : state) {
              run = runBoard(board, 1024, parallel, 1);
            }
            state.counters["mips_host"] = run.hostMips();
            state.counters["prefixes"] = static_cast<double>(run.prefixes);
            state.counters["bails"] = static_cast<double>(run.bails);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
