// ISS block-cache ablation: host throughput (million source instructions
// per simulated second) of the per-instruction stepping engine vs the
// predecoded block-dispatch engine, across the ISS detail levels
// (functional-only, timed pipeline without icache, full timing with
// icache), for the Figure 5 workloads.
//
// The two engines are bit-identical in architectural state and stats
// (asserted here as well as in the test suite); the block cache is purely
// a speed optimisation of the reference board. Use
// --benchmark_format=json for machine-readable output like the other
// harnesses.
#include <chrono>

#include "bench_common.h"

namespace cabt::bench {
namespace {

struct IssMode {
  const char* name;
  bool model_timing;
  bool icache;
};

const IssMode kModes[] = {
    {"functional", false, false},
    {"timing", true, false},
    {"timing+icache", true, true},
};

struct EngineRun {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  double host_seconds = 0;
  iss::IssStats stats;
  std::string hot_symbol;
  [[nodiscard]] double hostMips() const {
    return static_cast<double>(instructions) / host_seconds / 1e6;
  }
};

/// `metrics`/`prefix` (optional) publish the final repeat's full ISS
/// counter set into an obs registry for the METRICS_*.json record.
EngineRun runIss(const elf::Object& obj, const IssMode& mode,
                 bool block_cache, int repeats,
                 obs::MetricsRegistry* metrics = nullptr,
                 const std::string& prefix = {}) {
  arch::ArchDescription desc = defaultArch();
  desc.icache.enabled = mode.icache;
  iss::IssConfig cfg;
  cfg.model_timing = mode.model_timing;
  cfg.use_block_cache = block_cache;
  EngineRun result;
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    iss::Iss iss(desc, obj, nullptr, cfg);
    if (block_cache) {
      // Predecode is a one-time per-program cost; measure steady-state
      // execution throughput only.
      iss.prebuildBlockCache();
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (iss.run() != iss::StopReason::kHalted) {
      throw Error("ISS run did not halt");
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    result.instructions = iss.stats().instructions;
    result.cycles = iss.stats().cycles;
    result.stats = iss.stats();
    if (r + 1 == repeats) {
      const std::vector<iss::HotBlock> hot = iss.hotBlocks(1);
      if (!hot.empty()) {
        result.hot_symbol = hot.front().symbol;
      }
      if (metrics != nullptr) {
        iss.publishMetrics(*metrics, prefix);
      }
    }
  }
  result.host_seconds = best;
  return result;
}

void printComparison() {
  printHeader("ISS block-cache speedup [host MIPS]",
              "the section-2 interpretation-overhead argument");
  JsonReport report("iss_blockcache");
  obs::MetricsRegistry metrics;
  std::printf("%-10s %-14s %12s %12s %9s\n", "workload", "mode",
              "step MIPS", "block MIPS", "speedup");
  for (const std::string& name : workloads::figure5Names()) {
    const elf::Object obj = workloads::assemble(workloads::get(name));
    for (const IssMode& mode : kModes) {
      const EngineRun slow =
          runIss(obj, mode, /*block_cache=*/false, 3, &metrics,
                 name + "." + mode.name + ".step.");
      const EngineRun fast =
          runIss(obj, mode, /*block_cache=*/true, 3, &metrics,
                 name + "." + mode.name + ".block.");
      if (slow.instructions != fast.instructions ||
          slow.cycles != fast.cycles) {
        throw Error("engines diverged on " + name);
      }
      std::printf("%-10s %-14s %12.2f %12.2f %8.2fx\n", name.c_str(),
                  mode.name, slow.hostMips(), fast.hostMips(),
                  slow.host_seconds / fast.host_seconds);
      report.add(name, std::string(mode.name) + "/step", slow.cycles,
                 slow.hostMips(), &slow.stats, slow.hot_symbol);
      report.add(name, std::string(mode.name) + "/block", fast.cycles,
                 fast.hostMips(), &fast.stats, fast.hot_symbol);
    }
  }
  report.write();
  report.writeMetrics(metrics);
}

void registerBenchmarks() {
  for (const std::string& name : workloads::figure5Names()) {
    for (const IssMode& mode : kModes) {
      for (const bool block_cache : {false, true}) {
        const std::string bench_name =
            std::string("iss_blockcache/") + name + "/" + mode.name + "/" +
            (block_cache ? "block" : "step");
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [name, mode, block_cache](benchmark::State& state) {
              const elf::Object obj =
                  workloads::assemble(workloads::get(name));
              uint64_t instructions = 0;
              for (auto _ : state) {
                const EngineRun r = runIss(obj, mode, block_cache, 1);
                instructions = r.instructions;
                benchmark::DoNotOptimize(instructions);
              }
              state.counters["instructions"] =
                  static_cast<double>(instructions);
              state.counters["mips_host"] = benchmark::Counter(
                  static_cast<double>(instructions) * 1e-6,
                  benchmark::Counter::kIsIterationInvariantRate);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  cabt::bench::printComparison();
  benchmark::Initialize(&argc, argv);
  cabt::bench::registerBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
