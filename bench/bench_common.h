// Shared infrastructure for the experiment harnesses. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md section 4):
// it runs the reference board and the translated variants, prints the
// paper-style table (and an ASCII rendition of figures), and registers
// one google-benchmark per row so host-time measurements and modeled
// counters appear in the standard benchmark output.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "iss/iss.h"
#include "obs/metrics.h"
#include "platform/platform.h"
#include "workloads/workloads.h"
#include "xlat/translator.h"

namespace cabt::bench {

/// Clock rates of the modelled platforms (paper section 4).
constexpr double kBoardHz = 48e6;   // TriCore evaluation board
constexpr double kVliwHz = 200e6;   // C6x on the emulation system
constexpr double kFpgaHz = 8e6;     // XCV2000E emulation (Table 2)

struct BoardRun {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t blocks = 0;
  uint64_t cached_blocks = 0;  ///< blocks served by the predecoded cache
  double host_seconds = 0;     ///< wall-clock time of the ISS run
  /// Full ISS counters (dispatch-path statistics included) for the
  /// BENCH_<name>.json records.
  iss::IssStats stats;
  /// Hottest block's enclosing function, symbolized through the image's
  /// symbol table (src/elf SymbolIndex); empty when no block engine ran.
  std::string hot_symbol;
  [[nodiscard]] double seconds() const {
    return static_cast<double>(cycles) / kBoardHz;
  }
  [[nodiscard]] double mips() const {
    return static_cast<double>(instructions) / seconds() / 1e6;
  }
  /// Host-side simulation speed of the reference board itself.
  [[nodiscard]] double hostMips() const {
    return static_cast<double>(instructions) / host_seconds / 1e6;
  }
  [[nodiscard]] double cacheShare() const {
    return blocks == 0 ? 0.0
                       : static_cast<double>(cached_blocks) /
                             static_cast<double>(blocks);
  }
};

struct VariantRun {
  uint64_t vliw_cycles = 0;
  uint64_t generated_cycles = 0;
  uint64_t sync_stalls = 0;
  uint64_t correction_cycles = 0;
  uint64_t code_bytes = 0;
  double host_seconds = 0;  ///< wall-clock time of the platform run
  [[nodiscard]] double seconds() const {
    return static_cast<double>(vliw_cycles) / kVliwHz;
  }
  [[nodiscard]] double mips(uint64_t instructions) const {
    return static_cast<double>(instructions) / seconds() / 1e6;
  }
  [[nodiscard]] double cpi(uint64_t instructions) const {
    return static_cast<double>(vliw_cycles) /
           static_cast<double>(instructions);
  }
  /// Host-side simulation speed in source MIPS.
  [[nodiscard]] double hostMips(uint64_t instructions) const {
    return static_cast<double>(instructions) / host_seconds / 1e6;
  }
};

/// Resolves where a bench output file goes: the CABT_BENCH_DIR
/// directory when set (so parallel ctest/bench invocations from
/// different working trees cannot clobber each other's records), the
/// current working directory otherwise. Every bench artefact must route
/// through this helper.
inline std::string benchOutputPath(const std::string& filename) {
  const char* dir = std::getenv("CABT_BENCH_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return filename;
  }
  std::string path(dir);
  if (path.back() != '/') {
    path += '/';
  }
  return path + filename;
}

/// Machine-readable perf record. Every bench writes BENCH_<name>.json
/// next to the working directory (or into CABT_BENCH_DIR when set — see
/// benchOutputPath) — one row per (workload, variant) with the modeled
/// cycle count and the host-side simulation speed — so the perf
/// trajectory is tracked across PRs by diffing the JSON files.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// `iss` (optional) attaches the dispatch-path counters to the row,
  /// so the perf trajectory records *why* ISS speed changed (chained vs
  /// looked-up vs trace dispatches), not just the MIPS. `hot_function`
  /// (optional) names the symbolized hottest block of the run.
  void add(const std::string& workload, const std::string& variant,
           uint64_t cycles, double host_mips,
           const iss::IssStats* iss = nullptr,
           const std::string& hot_function = {}) {
    Row row{workload, variant, cycles, host_mips, false, 0, 0, 0,
            hot_function};
    if (iss != nullptr) {
      row.have_dispatch = true;
      row.chain_hits = iss->chain_hits;
      row.trace_dispatches = iss->trace_dispatches;
      row.guard_bails = iss->guard_bails;
    }
    rows_.push_back(row);
  }

  /// Writes BENCH_<name>.json; failures are reported but non-fatal (a
  /// read-only working directory must not kill the bench).
  void write() const {
    const std::string path = benchOutputPath("BENCH_" + bench_name_ + ".json");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << bench_name_ << "\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      char mips[32];
      std::snprintf(mips, sizeof(mips), "%.3f", r.host_mips);
      out << "    {\"workload\": \"" << r.workload << "\", \"variant\": \""
          << r.variant << "\", \"cycles\": " << r.cycles
          << ", \"host_mips\": " << mips;
      if (r.have_dispatch) {
        out << ", \"chain_hits\": " << r.chain_hits
            << ", \"trace_dispatches\": " << r.trace_dispatches
            << ", \"guard_bails\": " << r.guard_bails;
      }
      if (!r.hot_function.empty()) {
        out << ", \"hot_function\": \"" << r.hot_function << "\"";
      }
      out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  /// Writes the companion METRICS_<name>.json: a full metrics-registry
  /// snapshot (src/obs) next to the per-row perf record, folded into
  /// BENCH_SUMMARY.md by scripts/bench_report.py.
  void writeMetrics(const obs::MetricsRegistry& reg) const {
    const std::string path =
        benchOutputPath("METRICS_" + bench_name_ + ".json");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << reg.toJson();
  }

 private:
  struct Row {
    std::string workload;
    std::string variant;
    uint64_t cycles = 0;
    double host_mips = 0;
    bool have_dispatch = false;
    uint64_t chain_hits = 0;
    uint64_t trace_dispatches = 0;
    uint64_t guard_bails = 0;
    std::string hot_function;
  };
  std::string bench_name_;
  std::vector<Row> rows_;
};

inline arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

inline BoardRun runBoard(const arch::ArchDescription& desc,
                         const elf::Object& obj) {
  iss::Iss ref(desc, obj);
  const auto t0 = std::chrono::steady_clock::now();
  if (ref.run() != iss::StopReason::kHalted) {
    throw Error("reference run did not halt");
  }
  const auto t1 = std::chrono::steady_clock::now();
  BoardRun r{ref.stats().instructions, ref.stats().cycles,
             ref.stats().blocks, ref.stats().cached_blocks,
             std::chrono::duration<double>(t1 - t0).count(), ref.stats(),
             {}};
  const std::vector<iss::HotBlock> hot = ref.hotBlocks(1);
  if (!hot.empty()) {
    r.hot_symbol = hot.front().symbol;
  }
  return r;
}

inline VariantRun runVariant(const arch::ArchDescription& desc,
                             const elf::Object& obj,
                             xlat::DetailLevel level,
                             platform::PlatformConfig cfg = {},
                             xlat::TranslateOptions extra = {}) {
  xlat::TranslateOptions opts = extra;
  opts.level = level;
  const xlat::TranslationResult t = xlat::translate(desc, obj, opts);
  platform::EmulationPlatform plat(desc, t.image, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const platform::RunResult run = plat.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (run.state != vliw::RunState::kHalted) {
    throw Error("translated run did not halt");
  }
  return {run.vliw_cycles, run.generated_cycles, run.sync_stall_cycles,
          run.correction_cycles, t.stats.code_bytes,
          std::chrono::duration<double>(t1 - t0).count()};
}

/// All four translation variants of Figure 5 / Table 1, in paper order.
inline const std::vector<xlat::DetailLevel>& allLevels() {
  static const std::vector<xlat::DetailLevel> levels = {
      xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
      xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache};
  return levels;
}

inline const char* variantLabel(xlat::DetailLevel level) {
  switch (level) {
    case xlat::DetailLevel::kFunctional:
      return "C6x w/o cycle inf.";
    case xlat::DetailLevel::kStatic:
      return "C6x with cycle inf.";
    case xlat::DetailLevel::kBranchPredict:
      return "C6x branch pred.";
    case xlat::DetailLevel::kICache:
      return "C6x cache";
  }
  return "?";
}

/// Prints a horizontal ASCII bar (for the "figure" reproductions).
inline void printBar(const char* label, double value, double max_value,
                     const char* unit) {
  const int width = 50;
  const int n = max_value > 0
                    ? static_cast<int>(value / max_value * width + 0.5)
                    : 0;
  std::printf("  %-22s %8.2f %-6s |", label, value, unit);
  for (int i = 0; i < n; ++i) {
    std::printf("#");
  }
  std::printf("\n");
}

inline void printHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s of Schnerr et al., DATE 2005)\n", title,
              paper_ref);
  std::printf("================================================================\n");
}

/// Pretty time with automatic unit, as in Table 2.
inline std::string humanTime(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f usec", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f msec", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f sec", seconds);
  }
  return buf;
}

}  // namespace cabt::bench
