// Dispatch-engine ablation: host throughput of the four block-dispatch
// strategies of the reference ISS —
//   * lookup   — address hash lookup + ordered-set leader probes per
//                block (the pre-chaining engine, DispatchMode::kLookup),
//   * chained  — precomputed successor edges + O(1) leader bitmap +
//                template-specialized inner loop,
//   * traces   — chained plus hot-path superblock formation, and
//   * threaded — traces plus threaded-code lowering: hot blocks and
//                superblocks run as flat arrays of specialized host
//                handlers over predecoded operands —
// per ISS detail level, on the Table-2-class workloads. All four
// variants are asserted cycle-identical before any row is reported; the
// BENCH_ablation_dispatch.json record (one row per variant, with the
// chain-hit / trace-dispatch / guard-bail counters) is what the
// bench-report CI gate checks: chained must never be slower than lookup,
// and threaded must never be slower than chained+traces.
#include <chrono>

#include "bench_common.h"

namespace cabt::bench {
namespace {

struct Variant {
  const char* name;
  iss::DispatchMode mode;
};

const Variant kVariants[] = {
    {"lookup", iss::DispatchMode::kLookup},
    {"chained", iss::DispatchMode::kChained},
    {"chained+traces", iss::DispatchMode::kChainedTraces},
    {"threaded", iss::DispatchMode::kThreaded},
};
constexpr size_t kNumVariants = sizeof(kVariants) / sizeof(kVariants[0]);

std::vector<std::string> workloadNames() {
  // The Table-2/Figure-5 programs big enough to time reliably (gcd
  // retires in ~700 cycles — pure measurement noise).
  return {"fibonacci", "sieve", "dpcm", "fir"};
}

struct DispatchRun {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  double host_seconds = 0;
  iss::IssStats stats;
  std::string hot_symbol;
  [[nodiscard]] double hostMips() const {
    return static_cast<double>(instructions) / host_seconds / 1e6;
  }
};

/// `metrics`/`prefix` (optional) publish the final repeat's full ISS
/// counter set into an obs registry for the METRICS_*.json record.
DispatchRun runDispatch(const elf::Object& obj, xlat::DetailLevel level,
                        iss::DispatchMode mode, int repeats,
                        obs::MetricsRegistry* metrics = nullptr,
                        const std::string& prefix = {}) {
  const arch::ArchDescription desc = defaultArch();
  iss::IssConfig cfg = platform::issConfigFor(level);
  cfg.dispatch_mode = mode;
  DispatchRun result;
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    iss::Iss iss(desc, obj, nullptr, cfg);
    // Predecode is a one-time per-program cost; trace formation is not
    // excluded — it is part of the steady-state engine being measured.
    iss.prebuildBlockCache();
    const auto t0 = std::chrono::steady_clock::now();
    if (iss.run() != iss::StopReason::kHalted) {
      throw Error("ISS run did not halt");
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    result.instructions = iss.stats().instructions;
    result.cycles = iss.stats().cycles;
    result.stats = iss.stats();
    if (r + 1 == repeats) {
      const std::vector<iss::HotBlock> hot = iss.hotBlocks(1);
      if (!hot.empty()) {
        result.hot_symbol = hot.front().symbol;
      }
      if (metrics != nullptr) {
        iss.publishMetrics(*metrics, prefix);
      }
    }
  }
  result.host_seconds = best;
  return result;
}

void printComparison() {
  printHeader("Block-dispatch ablation [host MIPS]",
              "the section-2 interpretation-overhead argument, grown to "
              "chained/trace dispatch");
  JsonReport report("ablation_dispatch");
  obs::MetricsRegistry metrics;
  std::printf("%-10s %-14s %9s %9s %9s %9s %8s %8s %10s\n", "workload",
              "detail", "lookup", "chained", "traces", "threaded",
              "trace x", "thrd x", "bails");
  for (const std::string& name : workloadNames()) {
    const elf::Object obj = workloads::assemble(workloads::get(name));
    for (const xlat::DetailLevel level : allLevels()) {
      DispatchRun runs[kNumVariants];
      for (size_t v = 0; v < kNumVariants; ++v) {
        // Whole programs retire in micro- to milliseconds: a generous
        // best-of keeps the row stable against scheduling noise.
        const std::string variant =
            std::string(xlat::detailLevelName(level)) + "/" +
            kVariants[v].name;
        runs[v] = runDispatch(obj, level, kVariants[v].mode, 15, &metrics,
                              name + "." + variant + ".");
        if (runs[v].instructions != runs[0].instructions ||
            runs[v].cycles != runs[0].cycles) {
          throw Error(std::string("dispatch variants diverged on ") + name);
        }
        report.add(name, variant, runs[v].cycles, runs[v].hostMips(),
                   &runs[v].stats, runs[v].hot_symbol);
      }
      std::printf(
          "%-10s %-14s %9.2f %9.2f %9.2f %9.2f %7.2fx %7.2fx %10llu\n",
          name.c_str(), xlat::detailLevelName(level), runs[0].hostMips(),
          runs[1].hostMips(), runs[2].hostMips(), runs[3].hostMips(),
          runs[0].host_seconds / runs[2].host_seconds,
          runs[0].host_seconds / runs[3].host_seconds,
          static_cast<unsigned long long>(runs[3].stats.guard_bails));
    }
  }
  report.write();
  report.writeMetrics(metrics);
}

void registerBenchmarks() {
  for (const std::string& name : workloadNames()) {
    for (const xlat::DetailLevel level :
         {xlat::DetailLevel::kStatic, xlat::DetailLevel::kICache}) {
      for (const Variant& variant : kVariants) {
        const std::string bench_name =
            std::string("ablation_dispatch/") + name + "/" +
            xlat::detailLevelName(level) + "/" + variant.name;
        const iss::DispatchMode mode = variant.mode;
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [name, level, mode](benchmark::State& state) {
              const elf::Object obj =
                  workloads::assemble(workloads::get(name));
              uint64_t instructions = 0;
              for (auto _ : state) {
                const DispatchRun r = runDispatch(obj, level, mode, 1);
                instructions = r.instructions;
                benchmark::DoNotOptimize(instructions);
              }
              state.counters["instructions"] =
                  static_cast<double>(instructions);
              state.counters["mips_host"] = benchmark::Counter(
                  static_cast<double>(instructions) * 1e-6,
                  benchmark::Counter::kIsIterationInvariantRate);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  cabt::bench::printComparison();
  benchmark::Initialize(&argc, argv);
  cabt::bench::registerBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
