// Table 2 reproduction: software runtime comparison for gcd, fibonacci
// and sieve across four execution vehicles:
//   * RT-level simulation on a workstation (our cycle-driven RTL model,
//     host wall-clock time — the paper's "Simulation (Workstation)"),
//   * FPGA emulation at 8 MHz (modelled: reference cycles / 8 MHz),
//   * the translation at the three annotated detail levels (modelled:
//     VLIW cycles / 200 MHz).
//
// Paper claims this regenerates: the cache detail level lands in the same
// range as the FPGA emulation; the two cheaper levels are one to two
// orders of magnitude faster; the RT-level simulation is many orders of
// magnitude slower than everything else.
#include <chrono>

#include "bench_common.h"
#include "rtlsim/rtlsim.h"

namespace cabt::bench {
namespace {

struct Row {
  std::string workload;
  uint64_t instructions = 0;
  double rtl_host_seconds = 0;
  double board_host_seconds = 0;
  double fpga_seconds = 0;
  double xlat_seconds[3] = {0, 0, 0};  // cycle info / branch pred / cache
  iss::IssStats board_stats;
  std::string hot_symbol;
};

Row collectRow(const std::string& name) {
  const arch::ArchDescription desc = defaultArch();
  const elf::Object obj = workloads::assemble(workloads::get(name));
  Row row;
  row.workload = name;
  const BoardRun board = runBoard(desc, obj);
  row.instructions = board.instructions;
  row.board_host_seconds = board.host_seconds;
  row.board_stats = board.stats;
  row.hot_symbol = board.hot_symbol;
  row.fpga_seconds = static_cast<double>(board.cycles) / kFpgaHz;

  const auto t0 = std::chrono::steady_clock::now();
  rtlsim::RtlCore rtl(desc, obj);
  rtl.run();
  const auto t1 = std::chrono::steady_clock::now();
  row.rtl_host_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (rtl.stats().cycles != board.cycles) {
    throw Error("RTL model diverged from the reference");
  }

  const xlat::DetailLevel levels[3] = {xlat::DetailLevel::kStatic,
                                       xlat::DetailLevel::kBranchPredict,
                                       xlat::DetailLevel::kICache};
  for (int i = 0; i < 3; ++i) {
    row.xlat_seconds[i] = runVariant(desc, obj, levels[i]).seconds();
  }
  return row;
}

void printTable(const std::vector<Row>& rows) {
  printHeader("Software runtime comparison", "Table 2");
  std::printf("%-28s", "");
  for (const Row& r : rows) {
    std::printf(" %14s", r.workload.c_str());
  }
  std::printf("\n%-28s", "# of executed instructions");
  for (const Row& r : rows) {
    std::printf(" %14llu", static_cast<unsigned long long>(r.instructions));
  }
  std::printf("\n%-28s", "Simulation (Workstation)");
  for (const Row& r : rows) {
    std::printf(" %14s", humanTime(r.rtl_host_seconds).c_str());
  }
  std::printf("\n%-28s", "Emulation (FPGA, 8 MHz)");
  for (const Row& r : rows) {
    std::printf(" %14s", humanTime(r.fpga_seconds).c_str());
  }
  const char* labels[3] = {"Translation C6x cycle", "Translation C6x branch",
                           "Translation C6x cache"};
  for (int i = 0; i < 3; ++i) {
    std::printf("\n%-28s", labels[i]);
    for (const Row& r : rows) {
      std::printf(" %14s", humanTime(r.xlat_seconds[i]).c_str());
    }
  }
  std::printf("\n\nspeed-ups vs FPGA emulation (paper: cycle/branch levels "
              "3x..42x faster, cache level in the same range):\n");
  for (const Row& r : rows) {
    std::printf("  %-10s cycle %6.1fx  branch %6.1fx  cache %6.1fx\n",
                r.workload.c_str(), r.fpga_seconds / r.xlat_seconds[0],
                r.fpga_seconds / r.xlat_seconds[1],
                r.fpga_seconds / r.xlat_seconds[2]);
  }
}

}  // namespace
}  // namespace cabt::bench

int main(int argc, char** argv) {
  using namespace cabt::bench;
  std::vector<Row> rows;
  for (const std::string& name : cabt::workloads::table2Names()) {
    rows.push_back(collectRow(name));
  }
  printTable(rows);
  {
    JsonReport report("table2_runtime");
    for (const Row& r : rows) {
      const double rtl_mips = static_cast<double>(r.instructions) /
                              r.rtl_host_seconds / 1e6;
      const double board_mips = static_cast<double>(r.instructions) /
                                r.board_host_seconds / 1e6;
      report.add(r.workload, "board-host", r.board_stats.cycles, board_mips,
                 &r.board_stats, r.hot_symbol);
      report.add(r.workload, "rtlsim-host", r.instructions, rtl_mips);
      report.add(r.workload, "fpga-modeled",
                 static_cast<uint64_t>(r.fpga_seconds * kFpgaHz), 0.0);
    }
    report.write();
  }

  // Host-time benchmarks: the RT-level model vs. the translated execution
  // on this machine (the "simulation acceleration" the title promises).
  benchmark::Initialize(&argc, argv);
  for (const Row& row : rows) {
    const std::string workload = row.workload;
    benchmark::RegisterBenchmark(
        ("table2/board_host/" + workload).c_str(),
        [workload](benchmark::State& state) {
          const auto desc = defaultArch();
          const auto obj =
              cabt::workloads::assemble(cabt::workloads::get(workload));
          BoardRun board;
          for (auto _ : state) {
            board = runBoard(desc, obj);
            benchmark::DoNotOptimize(board.cycles);
          }
          state.counters["mips_host"] = board.hostMips();
          state.counters["cached_block_share"] = board.cacheShare();
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        ("table2/rtlsim_host/" + workload).c_str(),
        [workload](benchmark::State& state) {
          const auto desc = defaultArch();
          const auto obj =
              cabt::workloads::assemble(cabt::workloads::get(workload));
          for (auto _ : state) {
            cabt::rtlsim::RtlCore rtl(desc, obj);
            rtl.run();
            benchmark::DoNotOptimize(rtl.stats().cycles);
          }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        ("table2/translated_host/" + workload).c_str(),
        [workload](benchmark::State& state) {
          const auto desc = defaultArch();
          const auto obj =
              cabt::workloads::assemble(cabt::workloads::get(workload));
          for (auto _ : state) {
            benchmark::DoNotOptimize(
                runVariant(desc, obj, cabt::xlat::DetailLevel::kICache));
          }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
