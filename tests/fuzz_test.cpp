// The fuzzing farm's building blocks (src/fuzz, DESIGN.md section 13).
//
// Claims under test:
//   1. EdgeCoverage is a well-behaved bitmap: deterministic edge
//      hashing, merge/newBits algebra, clear.
//   2. Coverage collection is non-perturbing: digests and bus logs are
//      bit-identical with collection on and off, across every dispatch
//      mode and both kernels (the obs_test idiom — coverage is an
//      observer, never a participant).
//   3. The mutator is deterministic per seed and every product
//      assembles and parses; the control-flow skeleton survives.
//   4. Seed cases round-trip through the on-disk format; malformed
//      files are rejected with a diagnosis, not accepted quietly.
//   5. The oracle passes a clean generated case and catches the planted
//      translator skew (debug_skew_static_cycles) — the acceptance
//      drill — and the snapshot cache actually serves forked runs.
//   6. Snapshot-forked runs with divergent register mutations are
//      bit-identical to cold runs applying the same mutation at the
//      same cycle (the fork determinism contract).
//   7. The minimizer only ever returns still-failing, no-larger cases.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/coverage.h"
#include "fi/fi.h"
#include "fuzz/corpus.h"
#include "fuzz/farm.h"
#include "fuzz/mutator.h"
#include "fuzz/oracle.h"
#include "fuzz/program_gen.h"
#include "platform/platform.h"
#include "snap/snapshot.h"
#include "soc/bus.h"
#include "trc/assembler.h"

namespace cabt {
namespace {

uint32_t testSeed() {
  const char* env = std::getenv("CABT_TEST_SEED");
  return env != nullptr
             ? static_cast<uint32_t>(std::strtoul(env, nullptr, 0))
             : 0;
}

// ---- 1. EdgeCoverage --------------------------------------------------

TEST(EdgeCoverage, RecordsAndCounts) {
  core::EdgeCoverage cov;
  EXPECT_EQ(cov.bitsSet(), 0u);
  cov.recordEdge(0x100, 0x200);
  cov.recordEdge(0x100, 0x200);  // same edge, same bit
  EXPECT_EQ(cov.bitsSet(), 1u);
  cov.recordEdge(0x200, 0x100);  // direction matters
  EXPECT_EQ(cov.bitsSet(), 2u);
  cov.clear();
  EXPECT_EQ(cov.bitsSet(), 0u);
}

TEST(EdgeCoverage, IndexIsDeterministicAndSpreads) {
  EXPECT_EQ(core::EdgeCoverage::edgeIndex(0x1234, 0x5678),
            core::EdgeCoverage::edgeIndex(0x1234, 0x5678));
  // A few hundred distinct edges should not collapse onto a handful of
  // bits (sanity of the mixer, not a strict collision bound).
  std::set<uint32_t> indices;
  for (uint32_t i = 0; i < 512; ++i) {
    indices.insert(core::EdgeCoverage::edgeIndex(0x1000 + i * 4,
                                                 0x2000 + i * 8));
  }
  EXPECT_GT(indices.size(), 400u);
}

TEST(EdgeCoverage, MergeAndNewBits) {
  core::EdgeCoverage a;
  core::EdgeCoverage b;
  a.recordEdge(1, 2);
  b.recordEdge(1, 2);
  b.recordEdge(3, 4);
  EXPECT_EQ(a.newBits(b), 1u);   // only (3,4) is new to a
  EXPECT_EQ(b.newBits(a), 0u);   // a adds nothing to b
  EXPECT_EQ(a.merge(b), 1u);     // merge reports what it added
  EXPECT_EQ(a.bitsSet(), 2u);
  EXPECT_EQ(a.newBits(b), 0u);
}

// ---- board helpers ----------------------------------------------------

struct FuzzBoard {
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> ptrs;
};

FuzzBoard makeBoard(const std::vector<std::string>& programs) {
  FuzzBoard b;
  for (const std::string& p : programs) {
    b.images.push_back(trc::assemble(p));
  }
  for (const elf::Object& obj : b.images) {
    b.ptrs.push_back(&obj);
  }
  return b;
}

platform::BoardConfig boardConfig(iss::DispatchMode mode, bool parallel) {
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
  cfg.iss.dispatch_mode = mode;
  cfg.iss.trace_threshold = 2;
  cfg.iss.threaded_threshold = 2;
  cfg.iss.max_instructions = 2'000'000;
  cfg.quantum = 256;
  cfg.parallel.enabled = parallel;
  cfg.parallel.workers = 2;
  return cfg;
}

struct CovRun {
  uint64_t digest = 0;
  std::vector<soc::Transaction> bus_log;
  uint64_t bits = 0;
};

CovRun runWithCoverage(const FuzzBoard& fb, iss::DispatchMode mode,
                       bool parallel, bool collect) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  platform::ReferenceBoard board(desc, fb.ptrs, boardConfig(mode, parallel));
  core::EdgeCoverage cov;
  if (collect) {
    for (size_t i = 0; i < board.numCores(); ++i) {
      board.attachEdgeCoverage(i, &cov);
    }
  }
  board.run();
  CovRun r;
  r.digest = snap::digest(board);
  r.bus_log = board.board().bus.log();
  r.bits = cov.bitsSet();
  return r;
}

// ---- 2. coverage collection is non-perturbing -------------------------

TEST(Coverage, CollectionNeverPerturbsArchitecturalState) {
  fuzz::ProgramGenerator gen0(testSeed() + 21, /*shared_traffic=*/true);
  fuzz::ProgramGenerator gen1(testSeed() + 22, /*shared_traffic=*/true);
  const FuzzBoard board = makeBoard({gen0.generate(), gen1.generate()});
  for (const iss::DispatchMode mode :
       {iss::DispatchMode::kLookup, iss::DispatchMode::kChained,
        iss::DispatchMode::kChainedTraces, iss::DispatchMode::kThreaded}) {
    for (const bool parallel : {false, true}) {
      SCOPED_TRACE("mode " + std::to_string(static_cast<int>(mode)) +
                   (parallel ? " parallel" : " sequential"));
      const CovRun off = runWithCoverage(board, mode, parallel, false);
      const CovRun on = runWithCoverage(board, mode, parallel, true);
      EXPECT_EQ(off.digest, on.digest);
      ASSERT_EQ(off.bus_log.size(), on.bus_log.size());
      for (size_t i = 0; i < off.bus_log.size(); ++i) {
        EXPECT_EQ(off.bus_log[i].soc_cycle, on.bus_log[i].soc_cycle) << i;
        EXPECT_EQ(off.bus_log[i].addr, on.bus_log[i].addr) << i;
        EXPECT_EQ(off.bus_log[i].value, on.bus_log[i].value) << i;
        EXPECT_EQ(off.bus_log[i].is_write, on.bus_log[i].is_write) << i;
      }
      EXPECT_GT(on.bits, 0u);  // the observer did observe something
    }
  }
}

TEST(Coverage, SignalIsDeterministicAcrossDispatchModes) {
  fuzz::ProgramGenerator gen(testSeed() + 23);
  const FuzzBoard board = makeBoard({gen.generate()});
  const CovRun baseline =
      runWithCoverage(board, iss::DispatchMode::kLookup, false, true);
  for (const iss::DispatchMode mode :
       {iss::DispatchMode::kChained, iss::DispatchMode::kChainedTraces,
        iss::DispatchMode::kThreaded}) {
    const CovRun run = runWithCoverage(board, mode, false, true);
    EXPECT_EQ(run.bits, baseline.bits)
        << "mode " << static_cast<int>(mode);
  }
}

// ---- 3. mutator -------------------------------------------------------

fuzz::SeedCase makeCase(uint32_t seed, size_t cores, bool shared) {
  fuzz::SeedCase c;
  for (size_t i = 0; i < cores; ++i) {
    fuzz::ProgramGenerator gen(seed + static_cast<uint32_t>(i * 17), shared);
    c.programs.push_back(gen.generate());
  }
  return c;
}

TEST(Mutator, DeterministicPerSeed) {
  const fuzz::SeedCase base = makeCase(testSeed() + 31, 1, false);
  fuzz::Mutator a(99);
  fuzz::Mutator b(99);
  for (int i = 0; i < 20; ++i) {
    const std::optional<fuzz::SeedCase> ma = a.mutate(base);
    const std::optional<fuzz::SeedCase> mb = b.mutate(base);
    ASSERT_EQ(ma.has_value(), mb.has_value()) << i;
    if (ma.has_value()) {
      EXPECT_EQ(ma->programs, mb->programs) << i;
      EXPECT_EQ(ma->faults, mb->faults) << i;
    }
  }
}

TEST(Mutator, ProductsAssembleAndFaultsParse) {
  const fuzz::SeedCase base = makeCase(testSeed() + 32, 2, true);
  fuzz::Mutator mutator(7);
  int produced = 0;
  for (int i = 0; i < 50; ++i) {
    const std::optional<fuzz::SeedCase> m = mutator.mutate(base);
    if (!m.has_value()) {
      continue;
    }
    ++produced;
    for (const std::string& p : m->programs) {
      EXPECT_NO_THROW((void)trc::assemble(p)) << mutator.lastOperator();
    }
    for (const std::string& f : m->faults) {
      EXPECT_NO_THROW((void)fi::parseFaultSpec(f)) << f;
    }
  }
  EXPECT_GT(produced, 25);
}

TEST(Mutator, PreservesControlFlowSkeleton) {
  const fuzz::SeedCase base = makeCase(testSeed() + 33, 1, false);
  auto skeleton = [](const std::string& source) {
    std::vector<std::string> keep;
    for (const std::string& line : fuzz::splitLines(source)) {
      if (line.find(':') != std::string::npos ||
          line.find("jne") != std::string::npos ||
          line.find("call") != std::string::npos ||
          line.find("halt") != std::string::npos) {
        keep.push_back(line);
      }
    }
    return keep;
  };
  const std::vector<std::string> want = skeleton(base.programs[0]);
  fuzz::Mutator mutator(13);
  for (int i = 0; i < 30; ++i) {
    const std::optional<fuzz::SeedCase> m = mutator.mutate(base);
    if (!m.has_value()) {
      continue;
    }
    EXPECT_EQ(skeleton(m->programs[0]), want) << mutator.lastOperator();
  }
}

// ---- 4. corpus format -------------------------------------------------

TEST(Corpus, SeedRoundTrips) {
  fuzz::SeedCase c = makeCase(testSeed() + 41, 2, true);
  c.quantum = 512;
  c.fork_cycle = 1234;
  c.horizon = 9999;
  c.faults = {"dreg@2000:core=1,index=3,mask=16"};
  c.note = "round trip";
  const fuzz::SeedCase back = fuzz::parseSeed(fuzz::serializeSeed(c));
  EXPECT_EQ(back.programs, c.programs);
  EXPECT_EQ(back.quantum, c.quantum);
  EXPECT_EQ(back.fork_cycle, c.fork_cycle);
  EXPECT_EQ(back.horizon, c.horizon);
  EXPECT_EQ(back.faults, c.faults);
  EXPECT_EQ(back.note, c.note);
}

TEST(Corpus, RejectsMalformedSeeds) {
  EXPECT_THROW((void)fuzz::parseSeed("not a seed\n"), Error);
  EXPECT_THROW((void)fuzz::parseSeed("cabt-fuzz-seed v1\nbogus 1\n"), Error);
  EXPECT_THROW(
      (void)fuzz::parseSeed("cabt-fuzz-seed v1\nprogram\nhalt\n"),
      Error);  // unterminated program
  EXPECT_THROW((void)fuzz::parseSeed("cabt-fuzz-seed v1\nquantum 4\n"),
               Error);  // no programs
}

TEST(Corpus, DirectoryScanAndAdd) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "fuzz_corpus_test";
  std::filesystem::remove_all(dir);
  fuzz::Corpus corpus(dir.string());
  EXPECT_EQ(corpus.size(), 0u);
  const fuzz::SeedCase c = makeCase(testSeed() + 42, 1, false);
  const std::string p1 = corpus.add(c, "unit");
  const std::string p2 = corpus.add(c, "unit");
  EXPECT_NE(p1, p2);
  EXPECT_EQ(corpus.size(), 2u);
  fuzz::Corpus rescan(dir.string());
  EXPECT_EQ(rescan.size(), 2u);
  EXPECT_EQ(rescan.paths(), corpus.paths());
}

/// A long-running loop for the fork tests: generator programs halt in a
/// few hundred cycles, too short for a meaningful fork point.
std::string longProgram(int iterations) {
  std::string p;
  p += "_start: movha a0, hi(buf)\n";
  p += "        lea a0, a0, lo(buf)\n";
  p += "        movi d0, 3\n";
  p += "        movi d1, 5\n";
  p += "        movi d10, " + std::to_string(iterations) + "\n";
  p += "l0:\n";
  p += "        add d0, d0, d1\n";
  p += "        mul d1, d0, d0\n";
  p += "        stw d0, [a0]16\n";
  p += "        ldw d2, [a0]16\n";
  p += "        xor d1, d1, d2\n";
  p += "        addi16 d10, -1\n";
  p += "        jnz16 d10, l0\n";
  p += "        add d9, d9, d0\n";
  p += "        add d9, d9, d1\n";
  p += "        halt\n";
  p += "        .bss\nbuf:    .space 256\n";
  return p;
}

// ---- 5. oracle --------------------------------------------------------

TEST(Oracle, CleanGeneratedCasePassesThreeWay) {
  fuzz::SeedCase c = makeCase(testSeed() + 51, 1, false);
  fuzz::OracleOptions opts;
  const fuzz::OracleResult r = fuzz::runOracle(c, opts, nullptr, nullptr);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.ok) << r.mismatch;
  EXPECT_GT(r.ref_cycles, 0u);
  // Grid (32 combos) plus the standalone-ISS/rtl/translator extras.
  EXPECT_GT(r.executions, 32u);
}

TEST(Oracle, CatchesPlantedTranslatorSkew) {
  fuzz::SeedCase c = makeCase(testSeed() + 51, 1, false);
  fuzz::OracleOptions opts;
  opts.xlat_skew = true;
  const fuzz::OracleResult r = fuzz::runOracle(c, opts, nullptr, nullptr);
  EXPECT_TRUE(r.valid);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.mismatch.find("translated platform"), std::string::npos)
      << r.mismatch;
}

TEST(Oracle, MultiCoreSharedCasePassesGrid) {
  fuzz::SeedCase c = makeCase(testSeed() + 52, 2, true);
  fuzz::OracleOptions opts;
  const fuzz::OracleResult r = fuzz::runOracle(c, opts, nullptr, nullptr);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.ok) << r.mismatch;
}

TEST(Oracle, SnapshotCacheServesForkedRuns) {
  fuzz::SeedCase c;
  c.programs.push_back(longProgram(800));
  fuzz::OracleOptions opts;
  opts.three_way = false;
  const fuzz::OracleResult probe =
      fuzz::runOracle(c, opts, nullptr, nullptr);
  ASSERT_TRUE(probe.valid && probe.ok) << probe.mismatch;
  ASSERT_GT(probe.ref_cycles, 400u);
  c.fork_cycle = probe.ref_cycles / 2;
  c.horizon = probe.ref_cycles;
  fuzz::SnapshotCache cache;
  const fuzz::OracleResult first =
      fuzz::runOracle(c, opts, &cache, nullptr);
  EXPECT_TRUE(first.valid && first.ok) << first.mismatch;
  EXPECT_GT(cache.misses(), 0u);  // every config warmed once
  const uint64_t misses_after_first = cache.misses();
  // A state-only mutant of the same programs restores, never re-warms.
  c.faults = {"dreg@" + std::to_string(c.fork_cycle + 50) +
              ":core=0,index=2,mask=4"};
  const fuzz::OracleResult second =
      fuzz::runOracle(c, opts, &cache, nullptr);
  EXPECT_TRUE(second.valid) << second.mismatch;
  EXPECT_TRUE(second.ok) << second.mismatch;
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0u);
}

// ---- 6. snapshot-fork vs cold bit-identity ---------------------------

TEST(SnapshotFork, ForksMatchColdRunsUnderDivergentMutations) {
  const FuzzBoard fb = makeBoard({longProgram(600)});
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const platform::BoardConfig cfg =
      boardConfig(iss::DispatchMode::kChainedTraces, false);

  // Clean-run length, then warm one board to the midpoint and snapshot.
  uint64_t total = 0;
  {
    platform::ReferenceBoard ref(desc, fb.ptrs, cfg);
    ASSERT_EQ(ref.run(), iss::StopReason::kHalted);
    total = ref.board().bus.socCycle();
  }
  ASSERT_GT(total, 400u);
  const uint64_t fork = total / 2;
  platform::ReferenceBoard warm(desc, fb.ptrs, cfg);
  warm.runTo(fork);
  const std::vector<uint8_t> snapshot = snap::save(warm);

  std::set<uint64_t> final_digests;
  for (int n = 0; n < 4; ++n) {
    SCOPED_TRACE("fork " + std::to_string(n));
    const std::string spec = "dreg@" + std::to_string(fork + 100) +
                             ":core=0,index=" + std::to_string(n) +
                             ",mask=" + std::to_string(1u << (n + 1));
    // Forked run: restore the warmed snapshot, arm, finish.
    platform::ReferenceBoard forked(desc, fb.ptrs, cfg);
    snap::restore(forked, snapshot);
    fi::Campaign fc;
    fc.add(fi::parseFaultSpec(spec));
    fc.arm(forked);
    forked.run();
    // Cold run: same mutation armed from reset, same cycle.
    platform::ReferenceBoard cold(desc, fb.ptrs, cfg);
    fi::Campaign cc;
    cc.add(fi::parseFaultSpec(spec));
    cc.arm(cold);
    cold.run();
    EXPECT_EQ(fc.firedCount(), cc.firedCount());
    EXPECT_EQ(snap::digest(forked), snap::digest(cold));
    final_digests.insert(snap::digest(forked));
  }
  // The four register mutations really diverged from one another.
  EXPECT_GT(final_digests.size(), 1u);
}

// ---- 7. minimizer -----------------------------------------------------

TEST(Minimizer, ShrinksSkewFindingAndKeepsItFailing) {
  fuzz::SeedCase c = makeCase(testSeed() + 51, 1, false);
  fuzz::OracleOptions opts;
  opts.xlat_skew = true;
  const fuzz::OracleResult before =
      fuzz::runOracle(c, opts, nullptr, nullptr);
  ASSERT_TRUE(before.valid);
  ASSERT_FALSE(before.ok);
  uint64_t trials = 0;
  const fuzz::SeedCase min = fuzz::minimizeCase(c, opts, 40, &trials);
  EXPECT_LE(min.totalLines(), c.totalLines());
  EXPECT_GT(trials, 0u);
  EXPECT_LE(trials, 40u);
  const fuzz::OracleResult after =
      fuzz::runOracle(min, opts, nullptr, nullptr);
  EXPECT_TRUE(after.valid);
  EXPECT_FALSE(after.ok);
  // And the minimized case is clean without the planted bug.
  fuzz::OracleOptions clean;
  const fuzz::OracleResult sane =
      fuzz::runOracle(min, clean, nullptr, nullptr);
  EXPECT_TRUE(sane.valid);
  EXPECT_TRUE(sane.ok) << sane.mismatch;
}

}  // namespace
}  // namespace cabt
