// Reference ISS tests: functional semantics of every instruction family,
// and the cycle-accounting model (pipeline, branch prediction, I-cache).
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "iss/iss.h"
#include "soc/standard_board.h"
#include "trc/assembler.h"

namespace cabt::iss {
namespace {

arch::ArchDescription archNoCache() {
  arch::ArchDescription d = arch::ArchDescription::defaultTc10gp();
  d.icache.enabled = false;
  return d;
}

Iss runProgram(std::string_view src,
               const arch::ArchDescription& desc = archNoCache()) {
  const elf::Object obj = trc::assemble(src);
  Iss iss(desc, obj);
  EXPECT_EQ(iss.run(), StopReason::kHalted);
  return iss;
}

TEST(IssFunctional, DataAluOps) {
  const Iss iss = runProgram(R"(
_start: movi d1, 6
        movi d2, 7
        add d3, d1, d2
        sub d4, d1, d2
        mul d5, d1, d2
        and d6, d1, d2
        or d7, d1, d2
        xor d8, d1, d2
        halt
)");
  EXPECT_EQ(iss.d(3), 13u);
  EXPECT_EQ(iss.d(4), static_cast<uint32_t>(-1));
  EXPECT_EQ(iss.d(5), 42u);
  EXPECT_EQ(iss.d(6), 6u);
  EXPECT_EQ(iss.d(7), 7u);
  EXPECT_EQ(iss.d(8), 1u);
}

TEST(IssFunctional, ShiftsAndCompares) {
  const Iss iss = runProgram(R"(
_start: movi d1, -8
        movi d2, 2
        shl d3, d1, d2
        shr d4, d1, d2
        sar d5, d1, d2
        lt d6, d1, d2
        ltu d7, d1, d2
        ge d8, d2, d1
        geu d9, d2, d1
        eq d10, d1, d1
        ne d11, d1, d1
        halt
)");
  EXPECT_EQ(iss.d(3), static_cast<uint32_t>(-32));
  EXPECT_EQ(iss.d(4), 0xfffffff8u >> 2);
  EXPECT_EQ(iss.d(5), static_cast<uint32_t>(-2));
  EXPECT_EQ(iss.d(6), 1u);   // -8 < 2 signed
  EXPECT_EQ(iss.d(7), 0u);   // 0xfffffff8 < 2 unsigned is false
  EXPECT_EQ(iss.d(8), 1u);
  EXPECT_EQ(iss.d(9), 0u);
  EXPECT_EQ(iss.d(10), 1u);
  EXPECT_EQ(iss.d(11), 0u);
}

TEST(IssFunctional, AddressOpsAndMemory) {
  const Iss iss = runProgram(R"(
_start: movha a0, hi(buf)
        lea a0, a0, lo(buf)
        movi d1, 0x1234
        stw d1, [a0]0
        sth d1, [a0]4
        stb d1, [a0]6
        ldw d2, [a0]0
        ldh d3, [a0]4
        ldhu d4, [a0]4
        ldb d5, [a0]6
        lda a2, [a0]8
        mova a3, d1
        movd d6, a3
        adda a4, a0, a3
        suba a5, a4, a3
        halt
        .data
buf:    .word 0, 0
        .word buf
)");
  EXPECT_EQ(iss.d(2), 0x1234u);
  EXPECT_EQ(iss.d(3), 0x1234u);
  EXPECT_EQ(iss.d(4), 0x1234u);
  EXPECT_EQ(iss.d(5), 0x34u);
  EXPECT_EQ(iss.a(2), 0xd0000000u);
  EXPECT_EQ(iss.d(6), 0x1234u);
  EXPECT_EQ(iss.a(5), 0xd0000000u);
}

TEST(IssFunctional, SignExtendingLoads) {
  const Iss iss = runProgram(R"(
_start: movha a0, hi(buf)
        lea a0, a0, lo(buf)
        ldh d1, [a0]0
        ldhu d2, [a0]0
        ldb d3, [a0]0
        ldbu d4, [a0]0
        halt
        .data
buf:    .half 0x8080, 0
)");
  EXPECT_EQ(iss.d(1), 0xffff8080u);
  EXPECT_EQ(iss.d(2), 0x8080u);
  EXPECT_EQ(iss.d(3), 0xffffff80u);
  EXPECT_EQ(iss.d(4), 0x80u);
}

TEST(IssFunctional, LoopAndConditionals) {
  // Sum 1..10 with a backward loop.
  const Iss iss = runProgram(R"(
_start: movi d0, 10
        movi d1, 0
loop:   add d1, d1, d0
        addi16 d0, -1
        jnz16 d0, loop
        halt
)");
  EXPECT_EQ(iss.d(1), 55u);
  EXPECT_EQ(iss.stats().cond_branches, 10u);
  EXPECT_EQ(iss.stats().cond_taken, 9u);
  // Backward branch predicted taken: one mispredict at loop exit.
  EXPECT_EQ(iss.stats().mispredicts, 1u);
}

TEST(IssFunctional, CallAndReturn) {
  const Iss iss = runProgram(R"(
_start: movi d0, 5
        jl double
        jl double
        halt
double: add d0, d0, d0
        ret16
)");
  EXPECT_EQ(iss.d(0), 20u);
}

TEST(IssFunctional, IndirectJump) {
  const Iss iss = runProgram(R"(
_start: movha a1, hi(target)
        lea a1, a1, lo(target)
        ji a1
        movi d9, 111     ; skipped
target: movi d9, 222
        halt
)");
  EXPECT_EQ(iss.d(9), 222u);
}

TEST(IssFunctional, SixteenBitOps) {
  const Iss iss = runProgram(R"(
_start: movi16 d1, 40
        movi16 d2, 2
        add16 d1, d2
        sub16 d1, d2
        mov16 d3, d1
        addi16 d3, 2
        halt
)");
  EXPECT_EQ(iss.d(1), 40u);
  EXPECT_EQ(iss.d(3), 42u);
}

TEST(IssFunctional, BkptStopsAndResumes) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d1, 1
        bkpt
        movi d1, 2
        halt
)");
  Iss iss(archNoCache(), obj);
  EXPECT_EQ(iss.run(), StopReason::kBreakpoint);
  EXPECT_EQ(iss.d(1), 1u);
}

TEST(IssFunctional, MaxInstructionsGuard) {
  const elf::Object obj = trc::assemble(R"(
_start: j _start
)");
  IssConfig cfg;
  cfg.max_instructions = 100;
  Iss iss(archNoCache(), obj, nullptr, cfg);
  EXPECT_EQ(iss.run(), StopReason::kMaxInstructions);
  EXPECT_EQ(iss.stats().instructions, 100u);
}

// ---- timing -------------------------------------------------------------

TEST(IssTiming, StraightLineDualIssue) {
  // movi (IP) + movha (LS) pair; lea depends on movha -> next cycle;
  // add (IP) pairs are not possible (lea is LS, add is IP after it).
  const Iss iss = runProgram(R"(
_start: movi d1, 1
        movha a0, 0xd000
        lea a0, a0, 8
        add d2, d1, d1
        halt
)");
  // Block: movi+movha pair (cycle 0), lea (cycle 1), add (cycle 2, IP
  // after LS does not pair), halt (cycle 3) -> 4 pipeline cycles.
  EXPECT_EQ(iss.stats().pipeline_cycles, 4u);
  EXPECT_EQ(iss.stats().cycles, 4u);
  EXPECT_EQ(iss.stats().blocks, 1u);
}

TEST(IssTiming, LoadUseStallCounted) {
  const Iss a = runProgram(R"(
_start: movha a0, 0xd000
        ldw d1, [a0]0
        add d2, d1, d1
        halt
)");
  const Iss b = runProgram(R"(
_start: movha a0, 0xd000
        ldw d1, [a0]0
        add d2, d3, d3
        halt
)");
  // The dependent version pays exactly the one-cycle load-use stall.
  EXPECT_EQ(a.stats().pipeline_cycles, b.stats().pipeline_cycles + 1);
}

TEST(IssTiming, BranchExtrasFollowPrediction) {
  // Forward branch not taken: predicted correctly, no extra.
  const Iss nt = runProgram(R"(
_start: movi d1, 1
        movi d2, 2
        jeq d1, d2, skip
        nop
skip:   halt
)");
  EXPECT_EQ(nt.stats().branch_extra, 0u);
  // Forward branch taken: mispredicted (+2).
  const Iss t = runProgram(R"(
_start: movi d1, 2
        movi d2, 2
        jeq d1, d2, skip
        nop
skip:   halt
)");
  EXPECT_EQ(t.stats().branch_extra, 2u);
  EXPECT_EQ(t.stats().mispredicts, 1u);
}

TEST(IssTiming, UnconditionalBranchExtras) {
  const Iss iss = runProgram(R"(
_start: j next
next:   jl f
        halt
f:      ret16
)");
  // j: +1, jl: +1, ret16 (indirect): +2.
  EXPECT_EQ(iss.stats().branch_extra, 4u);
}

TEST(IssTiming, BlocksDrainPipeline) {
  // The mul result latency does not leak into the next block: the branch
  // ends the block and the pipeline drains.
  const Iss iss = runProgram(R"(
_start: movi d1, 3
        mul d2, d1, d1
        j next
next:   add d3, d2, d2
        halt
)");
  // Block 1: movi(0) mul(1) j(2) = 3 cycles; +1 taken extra.
  // Block 2: add(0) halt(1) = 2 cycles.
  EXPECT_EQ(iss.stats().pipeline_cycles, 5u);
  EXPECT_EQ(iss.stats().cycles, 6u);
  EXPECT_EQ(iss.stats().blocks, 2u);
}

TEST(IssTiming, ICacheMissPenaltyPerLine) {
  arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  ASSERT_TRUE(desc.icache.enabled);
  const Iss iss = runProgram(R"(
_start: nop
        nop
        nop
        nop
        nop
        nop
        nop
        halt
)", desc);
  // 8 x 4-byte instructions = 32 bytes = 2 lines of 16 bytes, both cold
  // misses.
  EXPECT_EQ(iss.stats().icache_accesses, 2u);
  EXPECT_EQ(iss.stats().icache_misses, 2u);
  EXPECT_EQ(iss.stats().cache_penalty, 2u * desc.icache.miss_penalty);
  EXPECT_EQ(iss.stats().cycles,
            iss.stats().pipeline_cycles + 2u * desc.icache.miss_penalty);
}

TEST(IssTiming, LoopWarmsTheICache) {
  arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const Iss iss = runProgram(R"(
_start: movi d0, 50
loop:   addi16 d0, -1
        jnz16 d0, loop
        halt
)", desc);
  // The loop body lives in one line (entry block shares it): only cold
  // misses, every iteration hits.
  EXPECT_LE(iss.stats().icache_misses, 2u);
  EXPECT_GE(iss.stats().icache_accesses, 50u);
}

TEST(IssTiming, BlockBoundaryRestartsLineTracking) {
  // Two consecutive blocks in the same cache line: the second block's
  // fetch re-accesses the line (hit), by the block-boundary rule.
  arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  const Iss iss = runProgram(R"(
_start: j b2
b2:     halt
)", desc);
  EXPECT_EQ(iss.stats().icache_accesses, 2u);
  EXPECT_EQ(iss.stats().icache_misses, 1u);
}

TEST(IssTiming, FunctionalModeCountsNoCycles) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d1, 1
        halt
)");
  IssConfig cfg;
  cfg.model_timing = false;
  Iss iss(archNoCache(), obj, nullptr, cfg);
  EXPECT_EQ(iss.run(), StopReason::kHalted);
  EXPECT_EQ(iss.stats().cycles, 0u);
  EXPECT_EQ(iss.d(1), 1u);
}

// ---- I/O ---------------------------------------------------------------

TEST(IssIo, TimerReadsModelledCycles) {
  arch::ArchDescription desc = archNoCache();
  const elf::Object obj = trc::assemble(R"(
_start: movha a0, 0xf000
        movi d0, 10
loop:   addi16 d0, -1
        jnz16 d0, loop
        ldw d1, [a0]0x100   ; timer low word
        halt
)");
  soc::StandardPeripherals board(soc::StandardPeripherals::ioBase(desc));
  Iss iss(desc, obj, &board.bus);
  EXPECT_EQ(iss.run(), StopReason::kHalted);
  // The timer value equals the modelled cycle count at the load.
  EXPECT_GT(iss.d(1), 0u);
  EXPECT_LE(iss.d(1), iss.stats().cycles);
  EXPECT_EQ(iss.stats().io_reads, 1u);
  // After halt the bus has been clocked to the final cycle count.
  EXPECT_EQ(board.bus.socCycle(), iss.stats().cycles);
}

TEST(IssIo, CharDeviceOutput) {
  arch::ArchDescription desc = archNoCache();
  const elf::Object obj = trc::assemble(R"(
_start: movha a0, 0xf000
        movi d1, 72          ; 'H'
        stw d1, [a0]0x200
        movi d1, 105         ; 'i'
        stw d1, [a0]0x200
        halt
)");
  soc::StandardPeripherals board(soc::StandardPeripherals::ioBase(desc));
  Iss iss(desc, obj, &board.bus);
  EXPECT_EQ(iss.run(), StopReason::kHalted);
  EXPECT_EQ(board.chardev.output(), "Hi");
  EXPECT_EQ(iss.stats().io_writes, 2u);
  // Stamps are monotonically increasing.
  ASSERT_EQ(board.chardev.stamps().size(), 2u);
  EXPECT_LE(board.chardev.stamps()[0], board.chardev.stamps()[1]);
}

TEST(IssIo, BlockTraceRecordsPerBlockCycles) {
  const elf::Object obj = trc::assemble(R"(
_start: movi d0, 2
loop:   addi16 d0, -1
        jnz16 d0, loop
        halt
)");
  Iss iss(archNoCache(), obj);
  iss.enableBlockTrace(true);
  EXPECT_EQ(iss.run(), StopReason::kHalted);
  // Blocks: _start (1), loop (2 iterations), halt-block (1).
  ASSERT_EQ(iss.blockTrace().size(), 4u);
  uint64_t sum = 0;
  for (const BlockRecord& r : iss.blockTrace()) {
    sum += r.pipeline_cycles + r.branch_extra + r.cache_penalty;
  }
  EXPECT_EQ(sum, iss.stats().cycles);
}

}  // namespace
}  // namespace cabt::iss
