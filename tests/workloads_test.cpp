// Workload tests: every program assembles, runs to completion on the
// reference ISS, produces the expected checksum where independently
// known, and is functionally + cycle equivalent when translated at every
// detail level (the central integration property of the reproduction).
#include <gtest/gtest.h>

#include "iss/iss.h"
#include "platform/platform.h"
#include "trc/assembler.h"
#include "workloads/workloads.h"
#include "xlat/translator.h"

namespace cabt::workloads {
namespace {

arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

struct WorkloadLevel {
  std::string name;
  xlat::DetailLevel level;
};

class WorkloadsAtLevel : public ::testing::TestWithParam<WorkloadLevel> {};

TEST_P(WorkloadsAtLevel, TranslationEquivalentToReference) {
  const auto& [name, level] = GetParam();
  const Workload& w = get(name);
  const arch::ArchDescription desc = defaultArch();
  const elf::Object obj = assemble(w);

  iss::Iss ref(desc, obj);
  ASSERT_EQ(ref.run(), iss::StopReason::kHalted) << w.name;
  if (w.expected_checksum) {
    EXPECT_EQ(readChecksum(obj, ref.memory()), *w.expected_checksum);
  }

  xlat::TranslateOptions opts;
  opts.level = level;
  const xlat::TranslationResult t = xlat::translate(desc, obj, opts);
  platform::EmulationPlatform plat(desc, t.image);
  const platform::RunResult run = plat.run();
  ASSERT_EQ(run.state, vliw::RunState::kHalted) << w.name;

  EXPECT_EQ(platform::compareFinalState(desc, ref, plat, obj), "");

  // Cycle accuracy: the branch-prediction level reproduces everything but
  // cache misses; the icache level is exact.
  if (level == xlat::DetailLevel::kICache) {
    EXPECT_EQ(run.generated_cycles, ref.stats().cycles);
  }
  if (level == xlat::DetailLevel::kBranchPredict) {
    EXPECT_EQ(run.generated_cycles + ref.stats().cache_penalty,
              ref.stats().cycles);
  }
  if (level == xlat::DetailLevel::kStatic) {
    EXPECT_LE(run.generated_cycles, ref.stats().cycles);
  }
}

std::vector<WorkloadLevel> allCombos() {
  std::vector<WorkloadLevel> combos;
  for (const Workload& w : all()) {
    for (const xlat::DetailLevel level :
         {xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
          xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache}) {
      combos.push_back({w.name, level});
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadsAtLevel, ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<WorkloadLevel>& info) {
      std::string name = info.param.name + "_" +
                         xlat::detailLevelName(info.param.level);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Workloads, InstructionCountsInPaperRange) {
  // Table 2 reports 1484 (gcd), 41419 (fibonacci), 20779 (sieve); our
  // programs land in the same order of magnitude.
  const arch::ArchDescription desc = defaultArch();
  const auto countOf = [&desc](const char* name) {
    iss::Iss ref(desc, assemble(get(name)));
    EXPECT_EQ(ref.run(), iss::StopReason::kHalted);
    return ref.stats().instructions;
  };
  const uint64_t gcd = countOf("gcd");
  EXPECT_GT(gcd, 500u);
  EXPECT_LT(gcd, 5000u);
  const uint64_t fib = countOf("fibonacci");
  EXPECT_GT(fib, 30000u);
  EXPECT_LT(fib, 60000u);
  const uint64_t sieve = countOf("sieve");
  EXPECT_GT(sieve, 10000u);
  EXPECT_LT(sieve, 40000u);
}

TEST(Workloads, LargeBlockProgramsHaveLargeBlocks) {
  const arch::ArchDescription desc = defaultArch();
  const auto avgBlockLen = [&desc](const std::string& name) {
    const xlat::TranslationResult t =
        xlat::translate(desc, assemble(get(name)), {});
    double instrs = 0;
    for (const auto& [addr, info] : t.blocks) {
      instrs += info.num_instrs;
    }
    return instrs / static_cast<double>(t.blocks.size());
  };
  // Paper: ellip and subband consist of large basic blocks, sieve of many
  // small ones.
  EXPECT_GT(avgBlockLen("ellip"), 2.0 * avgBlockLen("sieve"));
  EXPECT_GT(avgBlockLen("subband"), 2.0 * avgBlockLen("sieve"));
}

TEST(Workloads, LookupAndLists) {
  EXPECT_EQ(all().size(), 7u);
  EXPECT_EQ(figure5Names().size(), 6u);
  EXPECT_EQ(table2Names().size(), 3u);
  EXPECT_EQ(get("gcd").name, "gcd");
  EXPECT_THROW(get("nope"), Error);
  for (const std::string& n : figure5Names()) {
    EXPECT_NO_THROW(get(n));
  }
}

}  // namespace
}  // namespace cabt::workloads
