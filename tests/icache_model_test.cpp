// Behavioural I-cache model tests: hit/miss sequences, LRU replacement,
// associativity sweeps (parameterised).
#include <gtest/gtest.h>

#include "arch/icache_model.h"

namespace cabt::arch {
namespace {

ICacheModel smallCache(uint32_t sets, uint32_t ways) {
  ICacheModel m;
  m.sets = sets;
  m.ways = ways;
  m.line_bytes = 16;
  m.miss_penalty = 8;
  return m;
}

TEST(ICacheState, ColdMissThenHit) {
  ICacheState c(smallCache(4, 2));
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x100c));  // same line
  EXPECT_FALSE(c.access(0x1010));  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(ICacheState, TwoWaySetHoldsTwoLines) {
  ICacheState c(smallCache(4, 2));
  // Same set (set stride = sets * line = 64 bytes).
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_FALSE(c.access(0x1040));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1040));
}

TEST(ICacheState, LruEvictsLeastRecentlyUsed) {
  ICacheState c(smallCache(4, 2));
  c.access(0x1000);  // miss, way0
  c.access(0x1040);  // miss, way1
  c.access(0x1000);  // hit -> way1 is now LRU
  c.access(0x1080);  // miss, evicts way1 (0x1040)
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_FALSE(c.access(0x1040));  // was evicted
}

TEST(ICacheState, DirectMappedConflicts) {
  ICacheState c(smallCache(4, 1));
  c.access(0x1000);
  c.access(0x1040);  // same set, evicts
  EXPECT_FALSE(c.access(0x1000));
}

TEST(ICacheState, TagWordCombinesTagAndValid) {
  EXPECT_EQ(ICacheState::tagWord(0), 1u);
  EXPECT_EQ(ICacheState::tagWord(0x123), (0x123u << 1) | 1u);
  ICacheState c(smallCache(4, 2));
  EXPECT_EQ(c.tagEntry(0, 0), 0u);  // invalid = 0 word
  c.access(0x1000);
  const ICacheModel& m = c.model();
  EXPECT_EQ(c.tagEntry(m.setOf(0x1000), 0), ICacheState::tagWord(
                                                m.tagOf(0x1000)));
}

TEST(ICacheState, ResetClearsEverything) {
  ICacheState c(smallCache(4, 2));
  c.access(0x1000);
  c.reset();
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 1u);
}

struct SweepParam {
  uint32_t sets;
  uint32_t ways;
};

class ICacheSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ICacheSweep, WorkingSetEqualToCapacityNeverConflicts) {
  const auto [sets, ways] = GetParam();
  ICacheState c(smallCache(sets, ways));
  const uint32_t lines = sets * ways;
  const uint32_t line_bytes = c.model().line_bytes;
  // First pass: all cold misses. Further passes: all hits (LRU keeps a
  // working set equal to capacity resident under sequential sweep).
  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t i = 0; i < lines; ++i) {
      c.access(0x4000 + i * line_bytes);
    }
  }
  EXPECT_EQ(c.misses(), lines);
  EXPECT_EQ(c.hits(), 2u * lines);
}

TEST_P(ICacheSweep, WorkingSetBeyondCapacityThrashes) {
  const auto [sets, ways] = GetParam();
  ICacheState c(smallCache(sets, ways));
  const uint32_t lines = sets * (ways + 1);  // one extra way per set
  const uint32_t line_bytes = c.model().line_bytes;
  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t i = 0; i < lines; ++i) {
      c.access(0x4000 + i * line_bytes);
    }
  }
  // Sequential sweep over ways+1 lines per set with true LRU misses every
  // single access.
  EXPECT_EQ(c.misses(), 3u * lines);
  EXPECT_EQ(c.hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ICacheSweep,
    ::testing::Values(SweepParam{4, 1}, SweepParam{4, 2}, SweepParam{8, 2},
                      SweepParam{16, 4}, SweepParam{64, 2}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "sets" + std::to_string(info.param.sets) + "ways" +
             std::to_string(info.param.ways);
    });

}  // namespace
}  // namespace cabt::arch
