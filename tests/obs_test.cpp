// The observability layer (src/obs, DESIGN.md section 11).
//
// Four claims under test:
//   1. The metrics registry snapshots counters/gauges/histograms
//      correctly and dumps deterministic, well-formed JSON.
//   2. The timeline sink produces well-formed Chrome trace-event JSON
//      with the board's lanes named and phases restricted to X/i/M.
//   3. The sampling profiler attributes the irq_ticks hot loop to its
//      known function (`wait`), and its due-time ladder is idempotent.
//   4. The determinism rule holds: enabling every obs sink changes no
//      architectural byte — snap::digest and the full bus transaction
//      log are bit-identical with obs on and off, across all four
//      dispatch modes and both kernels, and the sample stream itself is
//      bit-identical between the sequential and parallel kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "platform/platform.h"
#include "snap/snapshot.h"
#include "soc/bus.h"
#include "workloads/workloads.h"

namespace cabt {
namespace {

// ---- a minimal JSON well-formedness checker --------------------------
//
// Enough of RFC 8259 to reject anything a real parser would reject:
// balanced containers, quoted keys, legal literals and numbers. The CI
// smoke additionally runs `python -m json.tool` on exported files; this
// keeps the same property inside the unit suite.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) {
      return false;
    }
    skipWs();
    return pos_ == s_.size();
  }

 private:
  void skipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!consume(*p)) {
        return false;
      }
    }
    return true;
  }
  bool string() {
    if (!consume('"')) {
      return false;
    }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;  // accept any escape pair
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    return consume('"');
  }
  bool number() {
    const size_t start = pos_;
    consume('-');
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skipWs();
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    consume('{');
    skipWs();
    if (consume('}')) {
      return true;
    }
    for (;;) {
      skipWs();
      if (!string()) {
        return false;
      }
      skipWs();
      if (!consume(':') || !value()) {
        return false;
      }
      skipWs();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }
  bool array() {
    consume('[');
    skipWs();
    if (consume(']')) {
      return true;
    }
    for (;;) {
      if (!value()) {
        return false;
      }
      skipWs();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---- metrics registry ------------------------------------------------

TEST(Metrics, CountersGaugesAndLookups) {
  obs::MetricsRegistry reg;
  reg.setCounter("board.core0.iss.blocks", 41);
  reg.setCounter("board.core0.iss.blocks", 42);  // pull model: overwrite
  reg.setGauge("board.kernel.queue_depth", 3.0);
  EXPECT_EQ(reg.counterOr("board.core0.iss.blocks"), 42u);
  EXPECT_EQ(reg.counterOr("absent", 7), 7u);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("board.kernel.queue_depth"), 3.0);
  // Kind mismatch falls back too.
  EXPECT_EQ(reg.counterOr("board.kernel.queue_depth", 9), 9u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, HistogramBuckets) {
  obs::MetricsRegistry reg;
  reg.observe("h", 0);
  reg.observe("h", 1);
  reg.observe("h", 2);
  reg.observe("h", 3);
  reg.observe("h", 1024);
  const obs::Histogram* h = reg.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
  EXPECT_EQ(h->sum, 1030u);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, 1024u);
  EXPECT_EQ(h->buckets[0], 1u);   // the zeros bucket
  EXPECT_EQ(h->buckets[1], 1u);   // value 1
  EXPECT_EQ(h->buckets[2], 2u);   // values 2, 3
  EXPECT_EQ(h->buckets[11], 1u);  // 1024 = 2^10
  EXPECT_EQ(obs::Histogram::bucketUpper(0), 0u);
  EXPECT_EQ(obs::Histogram::bucketUpper(1), 1u);
  EXPECT_EQ(obs::Histogram::bucketUpper(2), 3u);
  EXPECT_EQ(obs::Histogram::bucketUpper(11), 2047u);
}

TEST(Metrics, JsonAndTextDumpsAreWellFormedAndSorted) {
  obs::MetricsRegistry reg;
  reg.setCounter("b.second", 2);
  reg.setCounter("a.first", 1);
  reg.setGauge("c.third", 0.5);
  reg.observe("d.hist", 16);
  const std::string json = reg.toJson();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  // std::map ordering: a.first precedes b.second in the dump.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  const std::string text = reg.toText();
  EXPECT_NE(text.find("a.first"), std::string::npos);
  EXPECT_NE(text.find("d.hist"), std::string::npos);
}

// ---- trace sink ------------------------------------------------------

TEST(Trace, EventsMergeAndLimits) {
  obs::TraceSink sink(4);
  sink.complete(0, "slice", 100, 50);
  sink.instant(obs::kKernelLane, "irq", 120, "vector", 2);
  obs::TraceSink::Buffer buf;
  buf.complete(obs::workerLane(1), "prefix", 100, 40);
  EXPECT_FALSE(buf.empty());
  sink.merge(buf);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(sink.numEvents(), 3u);
  // Drop-oldest: pushing past 2x the cap trims to the cap.
  for (int i = 0; i < 16; ++i) {
    sink.instant(0, "tick", static_cast<uint64_t>(i));
  }
  EXPECT_LE(sink.numEvents(), 8u);
  EXPECT_GT(sink.droppedEvents(), 0u);
  // The most recent events survive.
  EXPECT_EQ(std::string(sink.events().back().name), "tick");
}

TEST(Trace, JsonIsWellFormed) {
  obs::TraceSink sink;
  sink.setThreadName(0, "core0");
  sink.setThreadName(0, "ignored");  // idempotent per tid
  sink.complete(0, "slice", 0, 1024, "quantum", 1024);
  sink.instant(0, "guard_bail", 512, "addr", 0x1000);
  const std::string json = sink.toJson();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("core0"), std::string::npos);
  EXPECT_EQ(json.find("ignored"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

// ---- boards under observation ----------------------------------------

struct ObsBoard {
  std::vector<const workloads::Workload*> programs;
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> image_ptrs;
  std::vector<uint32_t> extra_leaders;
};

ObsBoard makeBoard(size_t cores) {
  ObsBoard b;
  if (cores == 1) {
    b.programs = {&workloads::get("irq_ticks")};
  } else {
    b.programs = {&workloads::get("mc_producer"),
                  &workloads::get("mc_consumer")};
    while (b.programs.size() < cores) {
      b.programs.push_back(&workloads::get("mc_worker"));
    }
  }
  for (const workloads::Workload* w : b.programs) {
    b.images.push_back(workloads::assemble(*w));
    if (!w->irq_handler.empty()) {
      b.extra_leaders.push_back(
          platform::symbolAddr(b.images.back(), w->irq_handler));
    }
  }
  for (const elf::Object& obj : b.images) {
    b.image_ptrs.push_back(&obj);
  }
  return b;
}

struct ObsRun {
  uint64_t digest = 0;
  std::vector<soc::Transaction> bus_log;
  /// Per-core (pc, count) sample streams, sorted for comparison.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> samples;
  std::string trace_json;
  obs::MetricsRegistry metrics;
};

ObsRun runBoard(const ObsBoard& grid, iss::DispatchMode mode, bool parallel,
                bool observe, uint64_t sample_period = 256) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
  cfg.iss.dispatch_mode = mode;
  cfg.iss.extra_leaders = grid.extra_leaders;
  cfg.iss.max_instructions = 30'000;
  cfg.quantum = 256;
  cfg.parallel.enabled = parallel;
  cfg.parallel.workers = 2;
  platform::ReferenceBoard board(desc, grid.image_ptrs, cfg);
  obs::TraceSink sink;
  std::vector<std::unique_ptr<obs::PcSampler>> samplers;
  if (observe) {
    board.setTraceSink(&sink);
    for (size_t i = 0; i < board.numCores(); ++i) {
      samplers.push_back(std::make_unique<obs::PcSampler>(sample_period));
      board.attachSampler(i, samplers.back().get());
    }
  }
  board.run();
  ObsRun r;
  r.digest = snap::digest(board);
  r.bus_log = board.board().bus.log();
  if (observe) {
    for (size_t i = 0; i < board.numCores(); ++i) {
      std::vector<std::pair<uint32_t, uint64_t>> s(
          samplers[i]->counts().begin(), samplers[i]->counts().end());
      std::sort(s.begin(), s.end());
      r.samples.push_back(std::move(s));
    }
    r.trace_json = sink.toJson();
    board.publishMetrics(r.metrics);
  }
  return r;
}

void expectSameArchitecture(const ObsRun& a, const ObsRun& b) {
  EXPECT_EQ(a.digest, b.digest);
  ASSERT_EQ(a.bus_log.size(), b.bus_log.size());
  for (size_t i = 0; i < a.bus_log.size(); ++i) {
    EXPECT_EQ(a.bus_log[i].soc_cycle, b.bus_log[i].soc_cycle) << i;
    EXPECT_EQ(a.bus_log[i].addr, b.bus_log[i].addr) << i;
    EXPECT_EQ(a.bus_log[i].value, b.bus_log[i].value) << i;
    EXPECT_EQ(a.bus_log[i].is_write, b.bus_log[i].is_write) << i;
  }
}

// The tentpole's hard requirement: all sinks enabled, nothing
// architectural moves — across every dispatch mode and both kernels.
TEST(ObsDifferential, ObserversNeverPerturbArchitecturalState) {
  const ObsBoard board = makeBoard(4);
  for (const iss::DispatchMode mode :
       {iss::DispatchMode::kLookup, iss::DispatchMode::kChained,
        iss::DispatchMode::kChainedTraces, iss::DispatchMode::kThreaded}) {
    for (const bool parallel : {false, true}) {
      SCOPED_TRACE("mode " + std::to_string(static_cast<int>(mode)) +
                   (parallel ? " parallel" : " sequential"));
      const ObsRun off = runBoard(board, mode, parallel, false);
      const ObsRun on = runBoard(board, mode, parallel, true);
      expectSameArchitecture(off, on);
      EXPECT_TRUE(JsonChecker(on.trace_json).valid());
      EXPECT_GT(on.metrics.size(), 0u);
    }
  }
}

// The sampler's determinism claim: the sample stream itself (not just
// the architecture) is bit-identical between the kernels and across
// dispatch modes, because sampling is a pure function of (local time,
// pc) at block boundaries.
TEST(ObsDifferential, SampleStreamIdenticalAcrossKernelsAndModes) {
  const ObsBoard board = makeBoard(4);
  const ObsRun baseline =
      runBoard(board, iss::DispatchMode::kLookup, false, true);
  for (const iss::DispatchMode mode :
       {iss::DispatchMode::kLookup, iss::DispatchMode::kChained,
        iss::DispatchMode::kChainedTraces, iss::DispatchMode::kThreaded}) {
    for (const bool parallel : {false, true}) {
      SCOPED_TRACE("mode " + std::to_string(static_cast<int>(mode)) +
                   (parallel ? " parallel" : " sequential"));
      const ObsRun run = runBoard(board, mode, parallel, true);
      EXPECT_EQ(run.samples, baseline.samples);
    }
  }
}

TEST(ObsDifferential, ParallelTraceContainsBoardLanes) {
  const ObsBoard board = makeBoard(4);
  const ObsRun run =
      runBoard(board, iss::DispatchMode::kChainedTraces, true, true);
  EXPECT_NE(run.trace_json.find("\"core0\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"core3\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("kernel rounds"), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"round\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"slice\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"prefix\""), std::string::npos);
  // Metrics cover every subsystem the board aggregates.
  EXPECT_GT(run.metrics.counterOr("board.core0.iss.instructions"), 0u);
  EXPECT_GT(run.metrics.counterOr("board.kernel.events_dispatched"), 0u);
  EXPECT_GT(run.metrics.counterOr("board.bus.reads") +
                run.metrics.counterOr("board.bus.writes"),
            0u);
}

// ---- profiler --------------------------------------------------------

TEST(Profiler, DueLadderIsIdempotentAndChargesMissedPeriods) {
  obs::PcSampler s(100);
  s.sample(50, 0x1000);  // before the first due point: nothing
  EXPECT_EQ(s.totalSamples(), 0u);
  s.sample(100, 0x1000);  // exactly due
  EXPECT_EQ(s.totalSamples(), 1u);
  s.sample(100, 0x2000);  // re-observation at the same time: idempotent
  EXPECT_EQ(s.totalSamples(), 1u);
  s.sample(450, 0x3000);  // overshoot: periods 200,300,400 all charge here
  EXPECT_EQ(s.totalSamples(), 4u);
  EXPECT_EQ(s.counts().at(0x3000), 3u);
  s.sample(460, 0x4000);  // next due point is 500 now
  EXPECT_EQ(s.totalSamples(), 4u);
}

TEST(Profiler, AttributesIrqTicksHotLoopToWait) {
  const ObsBoard board = makeBoard(1);
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(xlat::DetailLevel::kICache);
  cfg.iss.dispatch_mode = iss::DispatchMode::kChainedTraces;
  cfg.iss.extra_leaders = board.extra_leaders;
  platform::ReferenceBoard b(desc, board.image_ptrs, cfg);
  obs::PcSampler sampler(64);
  b.attachSampler(0, &sampler);
  b.run();
  ASSERT_GT(sampler.totalSamples(), 0u);
  const std::vector<obs::ProfileEntry> entries =
      obs::attributeSamples(sampler, b.iss().symbols());
  ASSERT_FALSE(entries.empty());
  // irq_ticks spends nearly all its time in the `wait` spin loop.
  EXPECT_EQ(entries.front().name, "wait");
  const std::string folded = obs::foldedLines("core0", entries);
  EXPECT_NE(folded.find("core0;wait "), std::string::npos);
  const std::string table = obs::topTable(entries, 5);
  EXPECT_NE(table.find("wait"), std::string::npos);
  EXPECT_NE(table.find("function"), std::string::npos);
}

TEST(Profiler, SymbolizedHotBlocks) {
  const ObsBoard board = makeBoard(1);
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  iss::IssConfig config = platform::issConfigFor(xlat::DetailLevel::kICache);
  config.extra_leaders = board.extra_leaders;
  platform::ReferenceBoard b(desc, *board.image_ptrs[0], config);
  b.run();
  const std::vector<iss::HotBlock> hot = b.iss().hotBlocks(5);
  ASSERT_FALSE(hot.empty());
  for (const iss::HotBlock& h : hot) {
    EXPECT_FALSE(h.symbol.empty());
  }
}

}  // namespace
}  // namespace cabt
