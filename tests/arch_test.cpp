// Tests for the architecture description, its XML loader, and the shared
// pipeline timing model.
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "arch/timing.h"
#include "common/error.h"

namespace cabt::arch {
namespace {

TEST(ArchXml, DefaultDescriptionParses) {
  const ArchDescription desc = ArchDescription::defaultTc10gp();
  EXPECT_EQ(desc.name, "trc32-tc10gp");
  EXPECT_EQ(desc.clock_hz, 48'000'000u);
  EXPECT_TRUE(desc.pipeline.dual_issue);
  EXPECT_EQ(desc.pipeline.mul_latency, 2u);
  EXPECT_EQ(desc.pipeline.load_latency, 2u);
  EXPECT_EQ(desc.branch.taken_predicted_extra, 1u);
  EXPECT_EQ(desc.branch.mispredict_extra, 2u);
  EXPECT_TRUE(desc.icache.enabled);
  EXPECT_EQ(desc.icache.sets, 64u);
  EXPECT_EQ(desc.icache.ways, 2u);
  EXPECT_FALSE(desc.dcache.enabled);
  ASSERT_NE(desc.memory_map.findNamed("ram"), nullptr);
  EXPECT_EQ(desc.memory_map.findNamed("ram")->remap_base, 0x00800000u);
  EXPECT_EQ(desc.memory_map.kindOf(0xf0000100), RegionKind::kIo);
}

TEST(ArchXml, CustomDescription) {
  const ArchDescription desc = parseArchXml(R"(
<processor name="tiny" clock_hz="1000000">
  <pipeline dual_issue="0">
    <latency class="mul" cycles="4"/>
  </pipeline>
  <icache enabled="0"/>
</processor>)");
  EXPECT_EQ(desc.name, "tiny");
  EXPECT_FALSE(desc.pipeline.dual_issue);
  EXPECT_EQ(desc.pipeline.mul_latency, 4u);
  EXPECT_FALSE(desc.icache.enabled);
}

TEST(ArchXml, RejectsBadInput) {
  EXPECT_THROW(parseArchXml("<cpu/>"), Error);
  EXPECT_THROW(parseArchXml(
                   "<processor><pipeline><latency class='bogus' cycles='1'/>"
                   "</pipeline></processor>"),
               Error);
  EXPECT_THROW(parseArchXml("<processor><memorymap>"
                            "<region name='x' base='0' size='16' kind='?'/>"
                            "</memorymap></processor>"),
               Error);
}

TEST(ICacheGeometry, AddressDecomposition) {
  ICacheModel m;
  m.sets = 64;
  m.ways = 2;
  m.line_bytes = 16;
  EXPECT_EQ(m.offsetBits(), 4u);
  EXPECT_EQ(m.setBits(), 6u);
  EXPECT_EQ(m.lineOf(0x80000040), 0x8000004u);
  EXPECT_EQ(m.setOf(0x80000040), 4u);
  EXPECT_EQ(m.setOf(0x80000400), 0u);  // wraps at sets*line
  EXPECT_EQ(m.tagOf(0x80000400), 0x200001u);
}

TEST(ICacheGeometry, ValidationRejectsBadGeometry) {
  ICacheModel m;
  m.sets = 48;
  EXPECT_THROW(m.validate(), Error);
  m.sets = 64;
  m.line_bytes = 12;
  EXPECT_THROW(m.validate(), Error);
}

// ---- PipelineTimer ------------------------------------------------------

PipelineModel defaultPipe() { return PipelineModel{}; }

TimedOp alu(int dst, int s1 = TimedOp::kNoReg, int s2 = TimedOp::kNoReg) {
  return {OpClass::kIpAlu, dst, s1, s2};
}
TimedOp lsAlu(int dst, int s1 = TimedOp::kNoReg) {
  return {OpClass::kLsAlu, dst, s1, TimedOp::kNoReg};
}
TimedOp load(int dst, int base) {
  return {OpClass::kLoad, dst, base, TimedOp::kNoReg};
}
TimedOp store(int val, int base) {
  return {OpClass::kStore, TimedOp::kNoReg, val, base};
}
TimedOp mul(int dst, int s1, int s2) { return {OpClass::kMul, dst, s1, s2}; }

TEST(PipelineTimer, IndependentAluOpsAreOnePerCycle) {
  // Two IP-class ops never pair (only IP followed by LS pairs).
  EXPECT_EQ(sequenceCycles(defaultPipe(), {alu(0), alu(1), alu(2)}), 3u);
}

TEST(PipelineTimer, IpLsPairIssuesTogether) {
  // IP op then an independent LS op: one cycle total.
  EXPECT_EQ(sequenceCycles(defaultPipe(), {alu(0), lsAlu(16)}), 1u);
  // Triple: IP+LS pair, then another IP in the next cycle.
  EXPECT_EQ(sequenceCycles(defaultPipe(), {alu(0), lsAlu(16), alu(1)}), 2u);
}

TEST(PipelineTimer, PairBlockedByDependency) {
  // LS op reads the IP result: no same-cycle forwarding, so two cycles.
  EXPECT_EQ(sequenceCycles(defaultPipe(), {alu(0), lsAlu(16, 0)}), 2u);
}

TEST(PipelineTimer, PairBlockedByDualIssueDisabled) {
  PipelineModel m;
  m.dual_issue = false;
  EXPECT_EQ(sequenceCycles(m, {alu(0), lsAlu(16)}), 2u);
}

TEST(PipelineTimer, LsThenIpDoesNotPair) {
  EXPECT_EQ(sequenceCycles(defaultPipe(), {lsAlu(16), alu(0)}), 2u);
}

TEST(PipelineTimer, LoadUseStall) {
  // Load result has latency 2: a dependent consumer one instruction later
  // stalls one cycle.
  EXPECT_EQ(sequenceCycles(defaultPipe(), {load(0, 16), alu(1, 0)}), 3u);
  // An independent instruction in between hides the latency.
  EXPECT_EQ(sequenceCycles(defaultPipe(), {load(0, 16), alu(2), alu(1, 0)}),
            3u);
}

TEST(PipelineTimer, MulLatency) {
  EXPECT_EQ(sequenceCycles(defaultPipe(), {mul(0, 1, 2), alu(3, 0)}), 3u);
  EXPECT_EQ(sequenceCycles(defaultPipe(), {mul(0, 1, 2), alu(3, 4)}), 2u);
}

TEST(PipelineTimer, StoreHasNoResult) {
  EXPECT_EQ(sequenceCycles(defaultPipe(), {alu(0), store(0, 16)}), 2u);
  // Independent store pairs with a preceding IP op.
  EXPECT_EQ(sequenceCycles(defaultPipe(), {alu(0), store(1, 16)}), 1u);
}

TEST(PipelineTimer, WawInPairForbidden) {
  // LS op writing the same register as the paired IP op must not issue in
  // the same cycle.
  EXPECT_EQ(sequenceCycles(defaultPipe(), {alu(5), load(5, 16)}), 2u);
}

TEST(PipelineTimer, ResetDrainsState) {
  PipelineModel m;
  PipelineTimer timer(m);
  timer.issue(load(0, 16));
  timer.reset();
  // After a drain the loaded register is immediately usable.
  EXPECT_EQ(timer.issue(alu(1, 0)), 0u);
}

TEST(PipelineTimer, IssueReturnsScheduleCycles) {
  PipelineModel m;
  PipelineTimer timer(m);
  EXPECT_EQ(timer.issue(alu(0)), 0u);
  EXPECT_EQ(timer.issue(lsAlu(16)), 0u);  // pairs
  EXPECT_EQ(timer.issue(alu(1, 0)), 1u);
  EXPECT_EQ(timer.cycles(), 2u);
}

TEST(BranchModel, StaticPrediction) {
  EXPECT_TRUE(BranchModel::predictsTaken(-4));
  EXPECT_FALSE(BranchModel::predictsTaken(4));
  EXPECT_FALSE(BranchModel::predictsTaken(0));
}

TEST(BranchModel, ConditionalExtras) {
  BranchModel bm;
  EXPECT_EQ(bm.conditionalExtra(true, true), bm.taken_predicted_extra);
  EXPECT_EQ(bm.conditionalExtra(true, false), bm.mispredict_extra);
  EXPECT_EQ(bm.conditionalExtra(false, true), bm.mispredict_extra);
  EXPECT_EQ(bm.conditionalExtra(false, false), 0u);
}

TEST(BranchModel, UnconditionalExtras) {
  BranchModel bm;
  EXPECT_EQ(bm.unconditionalExtra(OpClass::kBranchUncond),
            bm.taken_predicted_extra);
  EXPECT_EQ(bm.unconditionalExtra(OpClass::kCall), bm.taken_predicted_extra);
  EXPECT_EQ(bm.unconditionalExtra(OpClass::kBranchInd), bm.indirect_extra);
  EXPECT_EQ(bm.unconditionalExtra(OpClass::kIpAlu), 0u);
}

}  // namespace
}  // namespace cabt::arch
