// Debug interface tests (paper section 3.5): dual translation,
// breakpoints at block starts, automatic single-stepping to mid-block
// breakpoints, image switching, register-name translation.
#include <gtest/gtest.h>

#include <vector>

#include "common/serial.h"
#include "debug/debugger.h"
#include "iss/iss.h"
#include "trc/assembler.h"
#include "workloads/workloads.h"

namespace cabt::debug {
namespace {

arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

const char* kProgram = R"(
_start: movi d0, 3
        movi d1, 0
loop:   add d1, d1, d0      ; 0x80000008
        addi16 d0, -1       ; 0x8000000c
        jnz16 d0, loop      ; 0x8000000e
        movi d2, 99         ; 0x80000010
        halt
)";

TEST(DualTranslation, BuildsBothImages) {
  const elf::Object src = trc::assemble(kProgram);
  const DualTranslation dual = translateDual(defaultArch(), src);
  EXPECT_NE(dual.image.findSection(".text"), nullptr);
  EXPECT_NE(dual.image.findSection(".text.instr"), nullptr);
  EXPECT_EQ(dual.instr.instr_map.size(), 7u);  // one unit per instruction
  EXPECT_EQ(dual.yield_pc_to_src.size(), 7u);
}

TEST(Debugger, RunToHaltWithoutBreakpoints) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  const Stop stop = dbg.run();
  EXPECT_EQ(stop.kind, StopKind::kHalted);
  EXPECT_EQ(dbg.d(1), 6u);  // 3+2+1
  EXPECT_EQ(dbg.d(2), 99u);
}

TEST(Debugger, BreakpointAtBlockStart) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  dbg.addBreakpoint(0x80000008);  // 'loop' leader
  Stop stop = dbg.run();
  ASSERT_EQ(stop.kind, StopKind::kBreakpoint);
  EXPECT_EQ(stop.src_addr, 0x80000008u);
  EXPECT_EQ(dbg.d(0), 3u);
  EXPECT_EQ(dbg.d(1), 0u);  // add has not executed yet
  // Second hit: one loop iteration later.
  stop = dbg.run();
  ASSERT_EQ(stop.kind, StopKind::kBreakpoint);
  EXPECT_EQ(dbg.d(1), 3u);
  EXPECT_EQ(dbg.d(0), 2u);
}

TEST(Debugger, MidBlockBreakpointViaSingleStep) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  // 0x8000000c (addi16) is in the middle of the 'loop' block: the
  // debugger plants the breakpoint at the block start and steps to it.
  dbg.addBreakpoint(0x8000000c);
  const Stop stop = dbg.run();
  ASSERT_EQ(stop.kind, StopKind::kBreakpoint);
  EXPECT_EQ(stop.src_addr, 0x8000000cu);
  EXPECT_EQ(dbg.d(1), 3u);  // the add before it has executed
  EXPECT_EQ(dbg.d(0), 3u);  // the addi16 has not
}

TEST(Debugger, SingleStepsThroughTheProgram) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  // Step from the very beginning: movi, movi, then the loop.
  Stop s = dbg.step();
  ASSERT_EQ(s.kind, StopKind::kStep);
  EXPECT_EQ(s.src_addr, 0x80000004u);
  EXPECT_EQ(dbg.d(0), 3u);
  s = dbg.step();
  EXPECT_EQ(s.src_addr, 0x80000008u);
  s = dbg.step();  // add
  EXPECT_EQ(dbg.d(1), 3u);
  EXPECT_EQ(s.src_addr, 0x8000000cu);
  s = dbg.step();  // addi16
  EXPECT_EQ(dbg.d(0), 2u);
  s = dbg.step();  // jnz16 taken -> back to loop
  EXPECT_EQ(s.src_addr, 0x80000008u);
}

TEST(Debugger, StepAfterBreakpointAndContinue) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  dbg.addBreakpoint(0x80000008);
  EXPECT_EQ(dbg.run().kind, StopKind::kBreakpoint);
  // Step over the add.
  const Stop s = dbg.step();
  EXPECT_EQ(s.src_addr, 0x8000000cu);
  EXPECT_EQ(dbg.d(1), 3u);
  // Continue: back around the loop to the breakpoint.
  const Stop c = dbg.run();
  ASSERT_EQ(c.kind, StopKind::kBreakpoint);
  EXPECT_EQ(c.src_addr, 0x80000008u);
  EXPECT_EQ(dbg.d(0), 2u);
  // Remove the breakpoint and run to completion.
  dbg.removeBreakpoint(0x80000008);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  EXPECT_EQ(dbg.d(1), 6u);
}

TEST(Debugger, RegisterNameTranslation) {
  const elf::Object src = trc::assemble(R"(
_start: movi d7, 1234
        movha a3, 0x1000
        halt
)");
  Debugger dbg(defaultArch(), src);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  EXPECT_EQ(dbg.regByName("d7"), 1234u);
  EXPECT_EQ(dbg.regByName("a3"), 0x10000000u);
  EXPECT_THROW(static_cast<void>(dbg.regByName("x1")), Error);
  EXPECT_THROW(static_cast<void>(dbg.regByName("d16")), Error);
}

TEST(Debugger, MemoryAccessAppliesRemap) {
  const elf::Object src = trc::assemble(R"(
_start: movha a0, hi(var)
        lea a0, a0, lo(var)
        movi d1, 77
        stw d1, [a0]0
        halt
        .data
var:    .word 0
)");
  Debugger dbg(defaultArch(), src);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  // var lives at source 0xd0000000, remapped to 0x00800000; the debugger
  // translates the address like the paper's debug interface.
  EXPECT_EQ(dbg.readMemory(src.findSymbol("var")->value, 4), 77u);
}

TEST(Debugger, StepThroughCallsAndReturns) {
  const elf::Object src = trc::assemble(R"(
_start: movi d0, 5
        jl double           ; 0x80000004
        movi d3, 1          ; 0x80000008
        halt
double: add d0, d0, d0      ; 0x80000010
        ret16
)");
  Debugger dbg(defaultArch(), src);
  Stop s = dbg.step();  // movi
  EXPECT_EQ(s.src_addr, 0x80000004u);
  s = dbg.step();  // jl -> lands on 'double'
  EXPECT_EQ(s.src_addr, 0x80000010u);
  EXPECT_EQ(dbg.a(11), 0x80000008u);  // source return address visible
  s = dbg.step();  // add
  EXPECT_EQ(dbg.d(0), 10u);
  s = dbg.step();  // ret16 -> back at the return site
  EXPECT_EQ(s.src_addr, 0x80000008u);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  EXPECT_EQ(dbg.d(3), 1u);
}

TEST(Debugger, CycleGenerationContinuesWhileDebugging) {
  const elf::Object src = trc::assemble(kProgram);
  // Reference cycle count.
  iss::Iss ref(defaultArch(), src);
  EXPECT_EQ(ref.run(), iss::StopReason::kHalted);

  Debugger dbg(defaultArch(), src);
  dbg.addBreakpoint(0x80000010);
  EXPECT_EQ(dbg.run().kind, StopKind::kBreakpoint);
  while (dbg.run().kind != StopKind::kHalted) {
  }
  // The generated cycle stream exists (annotated translation); mixing
  // images changes pairing granularity, so the count is an upper bound of
  // the block-oriented one.
  EXPECT_GT(dbg.platform().sync().totalGenerated(), 0u);
}

TEST(Debugger, WorksOnWorkload) {
  const workloads::Workload& w = workloads::get("gcd");
  const elf::Object src = workloads::assemble(w);
  Debugger dbg(defaultArch(), src);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  EXPECT_EQ(dbg.d(9), 214u);  // gcd checksum
}

// ---- ISS debug breakpoints vs the block-dispatch engine ------------------

// A nested loop whose inner block gets hot in the predecoded block cache
// before a breakpoint is planted mid-way inside it.
const char* kNestedLoops = R"(
_start: movi d5, 10          ; 0x80000000  outer counter
        movi d1, 0           ; 0x80000004
outer:  movi d0, 20          ; 0x80000008  inner counter
inner:  add d1, d1, d0       ; 0x8000000c  <- hot block leader
        xor d2, d1, d5       ; 0x80000010  <- mid-block breakpoint site
        addi16 d0, -1        ; 0x80000014
        jnz16 d0, inner      ; 0x80000016
        addi16 d5, -1        ; 0x80000018  <- staging breakpoint (leader)
        jnz16 d5, outer      ; 0x8000001a
        movi d3, 99          ; 0x8000001c
        halt
)";

TEST(IssBreakpoints, MidBlockBreakpointInHotCachedBlockFallsBack) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss iss(defaultArch(), obj);

  // Phase 1: run the first outer iteration at full block-dispatch speed,
  // stopping at the (block-leader) staging breakpoint. The inner block
  // is now hot in the cache: dispatched 20 times.
  iss.addBreakpoint(0x80000018);
  ASSERT_EQ(iss.run(), iss::StopReason::kDebugBreak);
  EXPECT_EQ(iss.pc(), 0x80000018u);
  const auto hot = iss.hotBlocks(1);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].addr, 0x8000000cu);
  EXPECT_EQ(hot[0].exec_count, 20u);

  // Phase 2: plant a breakpoint mid-way inside that already-hot block.
  // The dispatcher must refuse the cached block and stop exactly on the
  // breakpoint, not at the block end.
  iss.removeBreakpoint(0x80000018);
  iss.addBreakpoint(0x80000010);
  ASSERT_EQ(iss.run(), iss::StopReason::kDebugBreak);
  EXPECT_EQ(iss.pc(), 0x80000010u);
  // The leader instruction of the re-entered block has executed, the
  // breakpointed one has not: 2 prologue + (1 + 20*4) first outer
  // iteration + 2 outer-loop tail + 1 inner re-entry leader + the
  // re-entered add = 87.
  EXPECT_EQ(iss.stats().instructions, 87u);

  // Every further resume stops at the next crossing, once per iteration.
  ASSERT_EQ(iss.run(), iss::StopReason::kDebugBreak);
  EXPECT_EQ(iss.pc(), 0x80000010u);

  // Phase 3: remove it; the rest of the program runs to completion with
  // a final state identical to an unbroken reference run — breakpoints
  // perturb neither architectural state nor the cycle model.
  iss.removeBreakpoint(0x80000010);
  ASSERT_EQ(iss.run(), iss::StopReason::kHalted);

  iss::Iss ref(defaultArch(), obj);
  ASSERT_EQ(ref.run(), iss::StopReason::kHalted);
  EXPECT_EQ(iss.stats().instructions, ref.stats().instructions);
  EXPECT_EQ(iss.stats().cycles, ref.stats().cycles);
  EXPECT_EQ(iss.stats().branch_extra, ref.stats().branch_extra);
  EXPECT_EQ(iss.stats().cache_penalty, ref.stats().cache_penalty);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(iss.d(i), ref.d(i)) << "d" << i;
  }
  EXPECT_EQ(iss.d(3), 99u);
}

TEST(IssBreakpoints, BlockAndSteppingEnginesStopIdentically) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::IssConfig step_cfg;
  step_cfg.use_block_cache = false;
  iss::Iss fast(defaultArch(), obj);
  iss::Iss slow(defaultArch(), obj, nullptr, step_cfg);
  for (iss::Iss* v : {&fast, &slow}) {
    v->addBreakpoint(0x80000010);
  }
  // Both engines stop at the same pc with the same state at every one of
  // the 200 crossings.
  for (int hit = 0; hit < 200; ++hit) {
    ASSERT_EQ(fast.run(), iss::StopReason::kDebugBreak) << hit;
    ASSERT_EQ(slow.run(), iss::StopReason::kDebugBreak) << hit;
    ASSERT_EQ(fast.pc(), slow.pc()) << hit;
    ASSERT_EQ(fast.stats().instructions, slow.stats().instructions) << hit;
    ASSERT_EQ(fast.stats().cycles, slow.stats().cycles) << hit;
  }
  ASSERT_EQ(fast.run(), iss::StopReason::kHalted);
  ASSERT_EQ(slow.run(), iss::StopReason::kHalted);
  EXPECT_EQ(fast.stats().cycles, slow.stats().cycles);
}

// ---- snapshot save/restore under breakpoints -----------------------------

// A core saved while stopped *at* a breakpoint (mid-block, pending
// step-over) must restore into a cold core that resumes exactly like the
// live one: the stopped-at instruction executes on resume (no double
// break), and the next crossing stops at the identical instruction and
// cycle counts.
TEST(IssBreakpoints, SaveRestoreWhileStoppedAtBreakpoint) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  iss::Iss live(defaultArch(), obj);
  live.addBreakpoint(0x80000010);
  ASSERT_EQ(live.run(), iss::StopReason::kDebugBreak);
  ASSERT_EQ(live.run(), iss::StopReason::kDebugBreak);  // second crossing
  serial::Writer w;
  live.saveState(w);
  const std::vector<uint8_t> snapshot = w.take();

  ASSERT_EQ(live.run(), iss::StopReason::kDebugBreak);  // third crossing
  const uint64_t want_instr = live.stats().instructions;
  const uint64_t want_cycles = live.stats().cycles;

  iss::Iss cold(defaultArch(), obj);
  serial::Reader r(snapshot);
  cold.restoreState(r);
  EXPECT_EQ(cold.stopReason(), iss::StopReason::kDebugBreak);
  EXPECT_EQ(cold.pc(), 0x80000010u);
  EXPECT_EQ(cold.breakpoints().size(), 1u);
  ASSERT_EQ(cold.run(), iss::StopReason::kDebugBreak);
  EXPECT_EQ(cold.pc(), 0x80000010u);
  EXPECT_EQ(cold.stats().instructions, want_instr);
  EXPECT_EQ(cold.stats().cycles, want_cycles);

  // Both finish identically after the breakpoint is lifted.
  live.removeBreakpoint(0x80000010);
  cold.removeBreakpoint(0x80000010);
  ASSERT_EQ(live.run(), iss::StopReason::kHalted);
  ASSERT_EQ(cold.run(), iss::StopReason::kHalted);
  EXPECT_EQ(cold.stats().instructions, live.stats().instructions);
  EXPECT_EQ(cold.stats().cycles, live.stats().cycles);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(cold.d(i), live.d(i)) << "d" << i;
  }
}

// Restoring into a core whose block cache ran hot with *no* breakpoints
// must revalidate the per-block breakpoint flags from the restored set —
// the warm cached inner block may not dispatch past the restored
// mid-block breakpoint, however hot it is.
TEST(IssBreakpoints, RestoredBreakpointSetRevalidatesHotBlocks) {
  const elf::Object obj = trc::assemble(kNestedLoops);
  // Donor: stopped at the staging leader, then a breakpoint planted
  // mid-way inside the hot inner block (the Phase-2 state of
  // MidBlockBreakpointInHotCachedBlockFallsBack).
  iss::Iss donor(defaultArch(), obj);
  donor.addBreakpoint(0x80000018);
  ASSERT_EQ(donor.run(), iss::StopReason::kDebugBreak);
  donor.removeBreakpoint(0x80000018);
  donor.addBreakpoint(0x80000010);
  serial::Writer w;
  donor.saveState(w);

  // Target: the same program run hot to completion with clean per-block
  // flags, then rewound via the snapshot.
  iss::Iss target(defaultArch(), obj);
  ASSERT_EQ(target.run(), iss::StopReason::kHalted);
  serial::Reader r(w.data());
  target.restoreState(r);
  ASSERT_EQ(target.run(), iss::StopReason::kDebugBreak);
  EXPECT_EQ(target.pc(), 0x80000010u);
  EXPECT_EQ(target.stats().instructions, 87u);  // the live run's count
}

}  // namespace
}  // namespace cabt::debug
