// Debug interface tests (paper section 3.5): dual translation,
// breakpoints at block starts, automatic single-stepping to mid-block
// breakpoints, image switching, register-name translation.
#include <gtest/gtest.h>

#include "debug/debugger.h"
#include "iss/iss.h"
#include "trc/assembler.h"
#include "workloads/workloads.h"

namespace cabt::debug {
namespace {

arch::ArchDescription defaultArch() {
  return arch::ArchDescription::defaultTc10gp();
}

const char* kProgram = R"(
_start: movi d0, 3
        movi d1, 0
loop:   add d1, d1, d0      ; 0x80000008
        addi16 d0, -1       ; 0x8000000c
        jnz16 d0, loop      ; 0x8000000e
        movi d2, 99         ; 0x80000010
        halt
)";

TEST(DualTranslation, BuildsBothImages) {
  const elf::Object src = trc::assemble(kProgram);
  const DualTranslation dual = translateDual(defaultArch(), src);
  EXPECT_NE(dual.image.findSection(".text"), nullptr);
  EXPECT_NE(dual.image.findSection(".text.instr"), nullptr);
  EXPECT_EQ(dual.instr.instr_map.size(), 7u);  // one unit per instruction
  EXPECT_EQ(dual.yield_pc_to_src.size(), 7u);
}

TEST(Debugger, RunToHaltWithoutBreakpoints) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  const Stop stop = dbg.run();
  EXPECT_EQ(stop.kind, StopKind::kHalted);
  EXPECT_EQ(dbg.d(1), 6u);  // 3+2+1
  EXPECT_EQ(dbg.d(2), 99u);
}

TEST(Debugger, BreakpointAtBlockStart) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  dbg.addBreakpoint(0x80000008);  // 'loop' leader
  Stop stop = dbg.run();
  ASSERT_EQ(stop.kind, StopKind::kBreakpoint);
  EXPECT_EQ(stop.src_addr, 0x80000008u);
  EXPECT_EQ(dbg.d(0), 3u);
  EXPECT_EQ(dbg.d(1), 0u);  // add has not executed yet
  // Second hit: one loop iteration later.
  stop = dbg.run();
  ASSERT_EQ(stop.kind, StopKind::kBreakpoint);
  EXPECT_EQ(dbg.d(1), 3u);
  EXPECT_EQ(dbg.d(0), 2u);
}

TEST(Debugger, MidBlockBreakpointViaSingleStep) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  // 0x8000000c (addi16) is in the middle of the 'loop' block: the
  // debugger plants the breakpoint at the block start and steps to it.
  dbg.addBreakpoint(0x8000000c);
  const Stop stop = dbg.run();
  ASSERT_EQ(stop.kind, StopKind::kBreakpoint);
  EXPECT_EQ(stop.src_addr, 0x8000000cu);
  EXPECT_EQ(dbg.d(1), 3u);  // the add before it has executed
  EXPECT_EQ(dbg.d(0), 3u);  // the addi16 has not
}

TEST(Debugger, SingleStepsThroughTheProgram) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  // Step from the very beginning: movi, movi, then the loop.
  Stop s = dbg.step();
  ASSERT_EQ(s.kind, StopKind::kStep);
  EXPECT_EQ(s.src_addr, 0x80000004u);
  EXPECT_EQ(dbg.d(0), 3u);
  s = dbg.step();
  EXPECT_EQ(s.src_addr, 0x80000008u);
  s = dbg.step();  // add
  EXPECT_EQ(dbg.d(1), 3u);
  EXPECT_EQ(s.src_addr, 0x8000000cu);
  s = dbg.step();  // addi16
  EXPECT_EQ(dbg.d(0), 2u);
  s = dbg.step();  // jnz16 taken -> back to loop
  EXPECT_EQ(s.src_addr, 0x80000008u);
}

TEST(Debugger, StepAfterBreakpointAndContinue) {
  const elf::Object src = trc::assemble(kProgram);
  Debugger dbg(defaultArch(), src);
  dbg.addBreakpoint(0x80000008);
  EXPECT_EQ(dbg.run().kind, StopKind::kBreakpoint);
  // Step over the add.
  const Stop s = dbg.step();
  EXPECT_EQ(s.src_addr, 0x8000000cu);
  EXPECT_EQ(dbg.d(1), 3u);
  // Continue: back around the loop to the breakpoint.
  const Stop c = dbg.run();
  ASSERT_EQ(c.kind, StopKind::kBreakpoint);
  EXPECT_EQ(c.src_addr, 0x80000008u);
  EXPECT_EQ(dbg.d(0), 2u);
  // Remove the breakpoint and run to completion.
  dbg.removeBreakpoint(0x80000008);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  EXPECT_EQ(dbg.d(1), 6u);
}

TEST(Debugger, RegisterNameTranslation) {
  const elf::Object src = trc::assemble(R"(
_start: movi d7, 1234
        movha a3, 0x1000
        halt
)");
  Debugger dbg(defaultArch(), src);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  EXPECT_EQ(dbg.regByName("d7"), 1234u);
  EXPECT_EQ(dbg.regByName("a3"), 0x10000000u);
  EXPECT_THROW(static_cast<void>(dbg.regByName("x1")), Error);
  EXPECT_THROW(static_cast<void>(dbg.regByName("d16")), Error);
}

TEST(Debugger, MemoryAccessAppliesRemap) {
  const elf::Object src = trc::assemble(R"(
_start: movha a0, hi(var)
        lea a0, a0, lo(var)
        movi d1, 77
        stw d1, [a0]0
        halt
        .data
var:    .word 0
)");
  Debugger dbg(defaultArch(), src);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  // var lives at source 0xd0000000, remapped to 0x00800000; the debugger
  // translates the address like the paper's debug interface.
  EXPECT_EQ(dbg.readMemory(src.findSymbol("var")->value, 4), 77u);
}

TEST(Debugger, StepThroughCallsAndReturns) {
  const elf::Object src = trc::assemble(R"(
_start: movi d0, 5
        jl double           ; 0x80000004
        movi d3, 1          ; 0x80000008
        halt
double: add d0, d0, d0      ; 0x80000010
        ret16
)");
  Debugger dbg(defaultArch(), src);
  Stop s = dbg.step();  // movi
  EXPECT_EQ(s.src_addr, 0x80000004u);
  s = dbg.step();  // jl -> lands on 'double'
  EXPECT_EQ(s.src_addr, 0x80000010u);
  EXPECT_EQ(dbg.a(11), 0x80000008u);  // source return address visible
  s = dbg.step();  // add
  EXPECT_EQ(dbg.d(0), 10u);
  s = dbg.step();  // ret16 -> back at the return site
  EXPECT_EQ(s.src_addr, 0x80000008u);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  EXPECT_EQ(dbg.d(3), 1u);
}

TEST(Debugger, CycleGenerationContinuesWhileDebugging) {
  const elf::Object src = trc::assemble(kProgram);
  // Reference cycle count.
  iss::Iss ref(defaultArch(), src);
  EXPECT_EQ(ref.run(), iss::StopReason::kHalted);

  Debugger dbg(defaultArch(), src);
  dbg.addBreakpoint(0x80000010);
  EXPECT_EQ(dbg.run().kind, StopKind::kBreakpoint);
  while (dbg.run().kind != StopKind::kHalted) {
  }
  // The generated cycle stream exists (annotated translation); mixing
  // images changes pairing granularity, so the count is an upper bound of
  // the block-oriented one.
  EXPECT_GT(dbg.platform().sync().totalGenerated(), 0u);
}

TEST(Debugger, WorksOnWorkload) {
  const workloads::Workload& w = workloads::get("gcd");
  const elf::Object src = workloads::assemble(w);
  Debugger dbg(defaultArch(), src);
  EXPECT_EQ(dbg.run().kind, StopKind::kHalted);
  EXPECT_EQ(dbg.d(9), 214u);  // gcd checksum
}

}  // namespace
}  // namespace cabt::debug
