// V6X ISA and simulator tests: packet encoding round trips, validation
// rules, delay-slot timing, predication, device stalls.
#include <gtest/gtest.h>

#include "common/error.h"
#include "vliw/isa.h"
#include "vliw/sim.h"

namespace cabt::vliw {
namespace {

MachineOp op(VOpc opc, Unit unit, uint8_t dst, uint8_t s1 = kNoReg,
             uint8_t s2 = kNoReg, int32_t imm = 0) {
  MachineOp m;
  m.opc = opc;
  m.unit = unit;
  m.dst = dst;
  m.src1 = s1;
  m.src2 = s2;
  m.imm = imm;
  return m;
}

constexpr Unit L1{UnitKind::kL, 0};
constexpr Unit L2{UnitKind::kL, 1};
constexpr Unit S1{UnitKind::kS, 0};
constexpr Unit S2{UnitKind::kS, 1};
constexpr Unit M1{UnitKind::kM, 0};
constexpr Unit D1{UnitKind::kD, 0};
constexpr Unit D2{UnitKind::kD, 1};

MachineOp mvk(uint8_t dst, int32_t imm, Unit u = S1) {
  return op(VOpc::kMvk, u, dst, kNoReg, kNoReg, imm);
}
MachineOp nop(int n) { return op(VOpc::kNop, {}, kNoReg, kNoReg, kNoReg, n); }
MachineOp halt() { return op(VOpc::kHalt, S1, kNoReg); }

/// Builds an image at 0x100000 from packets and loads it into a sim.
elf::Object makeImage(std::vector<Packet> packets) {
  elf::Object obj;
  obj.machine = elf::Machine::kV6x;
  obj.entry = 0x100000;
  elf::Section text;
  text.name = ".text";
  text.addr = 0x100000;
  text.executable = true;
  text.data = encodeProgram(packets, 0x100000);
  obj.sections.push_back(std::move(text));
  return obj;
}

V6xSim runPackets(std::vector<Packet> packets) {
  V6xSim sim;
  sim.loadProgram(makeImage(std::move(packets)));
  EXPECT_EQ(sim.run(100000), RunState::kHalted);
  return sim;
}

// ---- encoding -----------------------------------------------------------

TEST(V6xEncoding, RoundTripRegisterFormat) {
  std::vector<Packet> packets;
  packets.push_back({0, {op(VOpc::kAdd, L1, regA(3), regA(4), regB(17)),
                         op(VOpc::kMpy, M1, regB(2), regA(1), regA(2))}});
  packets.push_back({0, {op(VOpc::kLdw, D2, regA(5), regB(16), kNoReg, -8)}});
  packets.push_back({0, {op(VOpc::kStb, D1, regB(7), regA(9), kNoReg, 31)}});
  packets.push_back({0, {halt()}});
  const auto bytes = encodeProgram(packets, 0x1000);
  const auto back = decodeProgram(bytes, 0x1000);
  ASSERT_EQ(back.size(), packets.size());
  for (size_t p = 0; p < packets.size(); ++p) {
    ASSERT_EQ(back[p].ops.size(), packets[p].ops.size()) << "packet " << p;
    EXPECT_EQ(back[p].addr, packets[p].addr);
    for (size_t i = 0; i < packets[p].ops.size(); ++i) {
      const MachineOp& a = packets[p].ops[i];
      const MachineOp& b = back[p].ops[i];
      EXPECT_EQ(a.opc, b.opc);
      EXPECT_EQ(a.unit, b.unit);
      EXPECT_EQ(a.dst, b.dst);
      EXPECT_EQ(a.imm, b.imm);
      EXPECT_EQ(a.pred, b.pred);
    }
  }
}

TEST(V6xEncoding, RoundTripImmediateAndPredication) {
  MachineOp m = mvk(regB(12), -30000, S2);
  m.pred = {PredReg::kA1, true};
  MachineOp k = op(VOpc::kMvkh, S1, regA(30), kNoReg, kNoReg, 0xd000);
  MachineOp a = op(VOpc::kAddk, S2, regB(1), kNoReg, kNoReg, 0x7fff);
  a.pred = {PredReg::kB0, false};
  std::vector<Packet> packets{{0, {m}}, {0, {k, a}}, {0, {halt()}}};
  const auto back = decodeProgram(encodeProgram(packets, 0x2000), 0x2000);
  EXPECT_EQ(back[0].ops[0].imm, -30000);
  EXPECT_EQ(back[0].ops[0].pred, (Pred{PredReg::kA1, true}));
  EXPECT_EQ(back[1].ops[0].imm, 0xd000);
  EXPECT_EQ(back[1].ops[1].pred, (Pred{PredReg::kB0, false}));
}

TEST(V6xEncoding, BranchTargetsAreAbsoluteAfterDecode) {
  std::vector<Packet> packets;
  packets.push_back({0, {op(VOpc::kB, S1, kNoReg, kNoReg, kNoReg, 0x3010)}});
  packets.push_back({0, {nop(5)}});
  packets.push_back({0, {halt()}});
  packets.push_back({0, {mvk(regA(0), 1)}});  // 0x300c
  packets.push_back({0, {halt()}});           // 0x3010
  const auto back = decodeProgram(encodeProgram(packets, 0x3000), 0x3000);
  EXPECT_EQ(back[0].ops[0].imm, 0x3010);
}

TEST(V6xEncoding, MemOffsetScalingAndRange) {
  // Word offsets scale by 4: +-124 encodable.
  std::vector<Packet> ok{{0, {op(VOpc::kLdw, D1, regA(1), regA(2), kNoReg,
                                 124)}}};
  EXPECT_NO_THROW(encodeProgram(ok, 0));
  std::vector<Packet> unaligned{{0, {op(VOpc::kLdw, D1, regA(1), regA(2),
                                        kNoReg, 6)}}};
  EXPECT_THROW(encodeProgram(unaligned, 0), Error);
  std::vector<Packet> toobig{{0, {op(VOpc::kLdw, D1, regA(1), regA(2),
                                     kNoReg, 128)}}};
  EXPECT_THROW(encodeProgram(toobig, 0), Error);
  // Byte ops scale by 1.
  std::vector<Packet> byte{{0, {op(VOpc::kLdb, D1, regA(1), regA(2), kNoReg,
                                   -31)}}};
  EXPECT_NO_THROW(encodeProgram(byte, 0));
}

// ---- packet validation ---------------------------------------------------

TEST(V6xValidate, UnitConflictRejected) {
  Packet p{0, {op(VOpc::kAdd, L1, regA(1), regA(2), regA(3)),
               op(VOpc::kSub, L1, regA(4), regA(5), regA(6))}};
  EXPECT_THROW(validatePacket(p), Error);
  p.ops[1].unit = L2;
  EXPECT_NO_THROW(validatePacket(p));
}

TEST(V6xValidate, WrongUnitKindRejected) {
  Packet p{0, {op(VOpc::kShl, L1, regA(1), regA(2), regA(3))}};
  EXPECT_THROW(validatePacket(p), Error);  // shifts are S-unit only
  Packet q{0, {op(VOpc::kMpy, S1, regA(1), regA(2), regA(3))}};
  EXPECT_THROW(validatePacket(q), Error);
}

TEST(V6xValidate, MemUnitSideMustMatchBase) {
  Packet p{0, {op(VOpc::kLdw, D1, regA(1), regB(16), kNoReg, 0)}};
  EXPECT_THROW(validatePacket(p), Error);
  p.ops[0].unit = D2;
  EXPECT_NO_THROW(validatePacket(p));
}

TEST(V6xValidate, TwoBranchesRejected) {
  Packet p{0, {op(VOpc::kB, S1, kNoReg, kNoReg, kNoReg, 0),
               op(VOpc::kBr, S2, kNoReg, regA(5))}};
  EXPECT_THROW(validatePacket(p), Error);
}

TEST(V6xValidate, SameDestOnlyWithComplementaryPreds) {
  MachineOp x = mvk(regA(3), 1, S1);
  MachineOp y = mvk(regA(3), 2, S2);
  Packet p{0, {x, y}};
  EXPECT_THROW(validatePacket(p), Error);
  p.ops[0].pred = {PredReg::kA1, false};
  p.ops[1].pred = {PredReg::kA1, true};
  EXPECT_NO_THROW(validatePacket(p));
}

TEST(V6xValidate, NopMustBeAlone) {
  Packet p{0, {nop(2), mvk(regA(1), 5)}};
  EXPECT_THROW(validatePacket(p), Error);
}

// ---- simulator semantics --------------------------------------------------

TEST(V6xSimTest, MvkMvkhMaterialiseConstants) {
  const V6xSim sim = runPackets({
      {0, {mvk(regA(4), 0x5678)}},
      {0, {op(VOpc::kMvkh, S1, regA(4), kNoReg, kNoReg, 0x1234)}},
      {0, {halt()}},
  });
  EXPECT_EQ(sim.reg(regA(4)), 0x12345678u);
}

TEST(V6xSimTest, SamePacketReadsOldValues) {
  // add reads a4 before the parallel mvk writes it.
  const V6xSim sim = runPackets({
      {0, {mvk(regA(4), 10)}},
      {0, {mvk(regA(4), 99), op(VOpc::kAdd, L1, regA(5), regA(4), regA(4))}},
      {0, {halt()}},
  });
  EXPECT_EQ(sim.reg(regA(5)), 20u);
  EXPECT_EQ(sim.reg(regA(4)), 99u);
}

TEST(V6xSimTest, MpyHasOneDelaySlot) {
  const V6xSim sim = runPackets({
      {0, {mvk(regA(1), 6)}},
      {0, {mvk(regA(2), 7)}},
      {0, {op(VOpc::kMpy, M1, regA(3), regA(1), regA(2))}},
      {0, {op(VOpc::kMv, L1, regA(4), regA(3))}},  // delay slot: old value
      {0, {op(VOpc::kMv, L2, regA(5), regA(3))}},  // now 42
      {0, {halt()}},
  });
  EXPECT_EQ(sim.reg(regA(4)), 0u);
  EXPECT_EQ(sim.reg(regA(5)), 42u);
}

TEST(V6xSimTest, LoadHasFourDelaySlots) {
  std::vector<Packet> packets;
  packets.push_back({0, {mvk(regA(8), 0x7000)}});
  packets.push_back({0, {mvk(regA(9), 0x1234)}});
  packets.push_back(
      {0, {op(VOpc::kStw, D1, regA(9), regA(8), kNoReg, 0)}});
  packets.push_back({0, {op(VOpc::kLdw, D1, regA(3), regA(8), kNoReg, 0)}});
  for (int i = 0; i < 4; ++i) {  // 4 delay slots read the old a3
    packets.push_back({0, {op(VOpc::kMv, L1, regA(10 + i), regA(3))}});
  }
  packets.push_back({0, {op(VOpc::kMv, L1, regA(14), regA(3))}});
  packets.push_back({0, {halt()}});
  const V6xSim sim = runPackets(std::move(packets));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sim.reg(regA(10 + i)), 0u) << "delay slot " << i;
  }
  EXPECT_EQ(sim.reg(regA(14)), 0x1234u);
}

TEST(V6xSimTest, SignExtendingLoads) {
  const V6xSim sim = runPackets({
      {0, {mvk(regA(8), 0x7100)}},
      {0, {mvk(regA(9), 0x80)}},
      {0, {op(VOpc::kStb, D1, regA(9), regA(8), kNoReg, 0)}},
      {0, {op(VOpc::kLdb, D1, regA(1), regA(8), kNoReg, 0)}},
      {0, {op(VOpc::kLdbu, D1, regA(2), regA(8), kNoReg, 0)}},
      {0, {nop(5)}},
      {0, {halt()}},
  });
  EXPECT_EQ(sim.reg(regA(1)), 0xffffff80u);
  EXPECT_EQ(sim.reg(regA(2)), 0x80u);
}

TEST(V6xSimTest, BranchHasFiveDelaySlots) {
  // Branch to the final halt; the five delay-slot packets still execute,
  // the one after them does not.
  std::vector<Packet> packets;
  const uint32_t base = 0x100000;
  // Packet layout (all single-op => 4 bytes each):
  // 0: B +? (computed below)  1..5: mvk a1..a5 = 1  6: mvk a6 = 1  7: halt
  packets.push_back({0, {op(VOpc::kB, S1, kNoReg, kNoReg, kNoReg,
                            static_cast<int32_t>(base + 7 * 4))}});
  for (int i = 1; i <= 6; ++i) {
    packets.push_back({0, {mvk(regA(i), 1)}});
  }
  packets.push_back({0, {halt()}});
  const V6xSim sim = runPackets(std::move(packets));
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(sim.reg(regA(i)), 1u) << "delay slot " << i;
  }
  EXPECT_EQ(sim.reg(regA(6)), 0u) << "skipped by the branch";
}

TEST(V6xSimTest, MultiCycleNopCoversDelaySlots) {
  // B followed by NOP 5 lands at the target with no extra packets.
  const uint32_t base = 0x100000;
  const V6xSim sim = runPackets({
      {0, {op(VOpc::kB, S1, kNoReg, kNoReg, kNoReg,
              static_cast<int32_t>(base + 3 * 4))}},
      {0, {nop(5)}},
      {0, {mvk(regA(1), 1)}},  // skipped
      {0, {mvk(regA(2), 1)}},  // branch target
      {0, {halt()}},
  });
  EXPECT_EQ(sim.reg(regA(1)), 0u);
  EXPECT_EQ(sim.reg(regA(2)), 1u);
  // Cycles: B(1) + NOP 5 (5) + target(1) + halt(1) = 8.
  EXPECT_EQ(sim.stats().cycles, 8u);
}

TEST(V6xSimTest, IndirectBranch) {
  const uint32_t base = 0x100000;
  // Target = base + 5*4 (the final halt); materialised with mvk/mvkh.
  const uint32_t target = base + 5 * 4;
  const V6xSim sim = runPackets({
      {0, {mvk(regA(5), static_cast<int32_t>(target & 0xffff))}},
      {0, {op(VOpc::kMvkh, S1, regA(5), kNoReg, kNoReg,
              static_cast<int32_t>(target >> 16))}},
      {0, {op(VOpc::kBr, S1, kNoReg, regA(5))}},
      {0, {nop(5)}},
      {0, {mvk(regA(1), 1)}},  // skipped
      {0, {halt()}},           // target
  });
  EXPECT_EQ(sim.reg(regA(1)), 0u);
  EXPECT_EQ(sim.state(), RunState::kHalted);
}

TEST(V6xSimTest, PredicationControlsExecution) {
  const V6xSim sim = runPackets({
      {0, {mvk(regA(1), 1)}},   // A1 = true
      {0, {mvk(regB(0), 0)}},   // B0 = false
      {0, {[] {
         MachineOp m = mvk(regA(5), 11);
         m.pred = {PredReg::kA1, false};
         return m;
       }()}},
      {0, {[] {
         MachineOp m = mvk(regA(6), 22);
         m.pred = {PredReg::kA1, true};  // [!A1]: skipped
         return m;
       }()}},
      {0, {[] {
         MachineOp m = mvk(regA(7), 33);
         m.pred = {PredReg::kB0, true};  // [!B0]: executes
         return m;
       }()}},
      {0, {halt()}},
  });
  EXPECT_EQ(sim.reg(regA(5)), 11u);
  EXPECT_EQ(sim.reg(regA(6)), 0u);
  EXPECT_EQ(sim.reg(regA(7)), 33u);
}

TEST(V6xSimTest, PredicatedFalseBranchDoesNotRedirect) {
  const uint32_t base = 0x100000;
  std::vector<Packet> packets;
  packets.push_back({0, {mvk(regA(1), 0)}});
  MachineOp b = op(VOpc::kB, S1, kNoReg, kNoReg, kNoReg,
                   static_cast<int32_t>(base + 100));
  b.pred = {PredReg::kA1, false};  // [A1], A1 == 0: not taken
  packets.push_back({0, {b}});
  packets.push_back({0, {mvk(regA(2), 7)}});
  packets.push_back({0, {halt()}});
  const V6xSim sim = runPackets(std::move(packets));
  EXPECT_EQ(sim.reg(regA(2)), 7u);
  EXPECT_EQ(sim.stats().branches_taken, 0u);
}

TEST(V6xSimTest, OneCyclePerPacket) {
  const V6xSim sim = runPackets({
      {0, {mvk(regA(1), 1), mvk(regB(1), 2, S2),
           op(VOpc::kAdd, L1, regA(3), regA(4), regA(5)),
           op(VOpc::kSub, L2, regB(3), regB(4), regB(5))}},
      {0, {halt()}},
  });
  EXPECT_EQ(sim.stats().cycles, 2u);
  EXPECT_EQ(sim.stats().packets, 2u);
  EXPECT_EQ(sim.stats().ops, 5u);
}

TEST(V6xSimTest, DoubleWriteSameCycleTrapped) {
  // Two loads issued 0 and 1 cycles apart to the same dst commit in
  // different cycles - fine. An ALU op and an MPY writing the same reg
  // issued 1 cycle apart collide.
  std::vector<Packet> packets{
      {0, {op(VOpc::kMpy, M1, regA(3), regA(1), regA(2))}},
      {0, {op(VOpc::kAdd, L1, regA(3), regA(1), regA(2))}},
      {0, {halt()}},
  };
  V6xSim sim;
  sim.loadProgram(makeImage(std::move(packets)));
  EXPECT_THROW(sim.run(1000), Error);
}

TEST(V6xSimTest, BranchWhileBranchPendingTrapped) {
  const uint32_t base = 0x100000;
  std::vector<Packet> packets{
      {0, {op(VOpc::kB, S1, kNoReg, kNoReg, kNoReg,
              static_cast<int32_t>(base))}},
      {0, {op(VOpc::kB, S1, kNoReg, kNoReg, kNoReg,
              static_cast<int32_t>(base))}},
      {0, {halt()}},
  };
  V6xSim sim;
  sim.loadProgram(makeImage(std::move(packets)));
  EXPECT_THROW(sim.run(1000), Error);
}

// ---- device stalls ---------------------------------------------------------

/// Handler that refuses the first `stall_cycles` attempts.
class StallingHandler : public IoHandler {
 public:
  StallingHandler(uint32_t base, unsigned stall_cycles)
      : base_(base), remaining_(stall_cycles) {}
  [[nodiscard]] bool covers(uint32_t addr) const override {
    return addr >= base_ && addr < base_ + 0x10;
  }
  bool ready(uint32_t, bool) override {
    if (remaining_ > 0) {
      --remaining_;
      return false;
    }
    return true;
  }
  uint32_t load(uint32_t, unsigned) override {
    ++loads_;
    return 0xabcd;
  }
  void store(uint32_t, uint32_t value, unsigned) override { last_ = value; }

  unsigned loads_ = 0;
  uint32_t last_ = 0;

 private:
  uint32_t base_;
  unsigned remaining_;
};

TEST(V6xSimTest, DeviceStallFreezesMachine) {
  StallingHandler handler(0xfe000000, 3);
  std::vector<Packet> packets{
      {0, {mvk(regA(8), 0)}},
      {0, {op(VOpc::kMvkh, S1, regA(8), kNoReg, kNoReg, 0xfe00)}},
      {0, {op(VOpc::kLdw, D1, regA(3), regA(8), kNoReg, 0)}},
      {0, {nop(5)}},
      {0, {halt()}},
  };
  V6xSim sim;
  sim.loadProgram(makeImage(std::move(packets)));
  sim.addIoHandler(&handler);
  EXPECT_EQ(sim.run(1000), RunState::kHalted);
  EXPECT_EQ(sim.reg(regA(3)), 0xabcdu);
  EXPECT_EQ(handler.loads_, 1u);  // performed exactly once
  EXPECT_EQ(sim.stats().stall_cycles, 3u);
  // mvk + mvkh + (3 stalls + ld) + nop5 + halt = 2 + 4 + 5 + 1 = 12.
  EXPECT_EQ(sim.stats().cycles, 12u);
}

TEST(V6xSimTest, CycleHookRunsEveryCycleIncludingStalls) {
  StallingHandler handler(0xfe000000, 2);
  std::vector<Packet> packets{
      {0, {mvk(regA(8), 0)}},
      {0, {op(VOpc::kMvkh, S1, regA(8), kNoReg, kNoReg, 0xfe00)}},
      {0, {op(VOpc::kStw, D1, regA(8), regA(8), kNoReg, 0)}},
      {0, {halt()}},
  };
  V6xSim sim;
  sim.loadProgram(makeImage(std::move(packets)));
  sim.addIoHandler(&handler);
  uint64_t hook_calls = 0;
  sim.setCycleHook([&hook_calls] { ++hook_calls; });
  EXPECT_EQ(sim.run(1000), RunState::kHalted);
  EXPECT_EQ(hook_calls, sim.stats().cycles);
  EXPECT_EQ(sim.stats().stall_cycles, 2u);
}

TEST(V6xSimTest, YieldStopsAndResumes) {
  std::vector<Packet> packets{
      {0, {mvk(regA(1), 5)}},
      {0, {op(VOpc::kYield, S1, kNoReg)}},
      {0, {mvk(regA(2), 6)}},
      {0, {halt()}},
  };
  V6xSim sim;
  sim.loadProgram(makeImage(std::move(packets)));
  EXPECT_EQ(sim.run(1000), RunState::kYielded);
  EXPECT_EQ(sim.reg(regA(1)), 5u);
  EXPECT_EQ(sim.reg(regA(2)), 0u);
  EXPECT_EQ(sim.run(1000), RunState::kHalted);
  EXPECT_EQ(sim.reg(regA(2)), 6u);
}

TEST(V6xSimTest, BreakpointsStopBeforePacket) {
  std::vector<Packet> packets{
      {0, {mvk(regA(1), 5)}},
      {0, {mvk(regA(2), 6)}},
      {0, {halt()}},
  };
  const elf::Object image = makeImage(std::move(packets));
  V6xSim sim;
  sim.loadProgram(image);
  sim.addBreakpoint(0x100004);
  EXPECT_EQ(sim.run(1000), RunState::kBreakpoint);
  EXPECT_EQ(sim.pc(), 0x100004u);
  EXPECT_EQ(sim.reg(regA(1)), 5u);
  EXPECT_EQ(sim.reg(regA(2)), 0u);
  EXPECT_EQ(sim.resume(1000), RunState::kHalted);
  EXPECT_EQ(sim.reg(regA(2)), 6u);
}

TEST(V6xSimTest, ToStringIsReadable) {
  MachineOp m = op(VOpc::kLdw, D2, regA(5), regB(16), kNoReg, -8);
  m.pred = {PredReg::kB0, true};
  EXPECT_EQ(m.toString(), "[!b0] ldw.d2 a5, [b16]-8");
  EXPECT_EQ(mvk(regA(1), 7).toString(), "mvk.s1 a1, 7");
  EXPECT_EQ(nop(3).toString(), "nop 3");
}

}  // namespace
}  // namespace cabt::vliw
