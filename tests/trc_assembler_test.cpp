// Assembler tests: full programs, directives, expressions, errors, and a
// disassembly round trip over the decoded text.
#include <gtest/gtest.h>

#include "common/error.h"
#include "trc/assembler.h"
#include "trc/isa.h"
#include "trc/program.h"

namespace cabt::trc {
namespace {

TEST(Assembler, MinimalProgram) {
  const elf::Object obj = assemble(R"(
_start: movi d0, 1
        halt
)");
  const elf::Section* text = obj.findSection(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(text->addr, 0x80000000u);
  EXPECT_EQ(text->data.size(), 8u);  // movi (4) + halt (4)
  EXPECT_EQ(obj.entry, 0x80000000u);
  ASSERT_NE(obj.findSymbol("_start"), nullptr);
}

TEST(Assembler, MixedWidthsAndLabels) {
  const elf::Object obj = assemble(R"(
_start: movi16 d0, 10      ; 2 bytes
loop:   addi16 d0, -1      ; 2 bytes
        jnz16 d0, loop     ; 2 bytes
        halt
)");
  const auto instrs = decodeText(obj);
  ASSERT_EQ(instrs.size(), 4u);
  EXPECT_EQ(instrs[0].opc, Opc::kMovi16);
  EXPECT_EQ(instrs[2].opc, Opc::kJnz16);
  // jnz16 at 0x80000004 targets loop at 0x80000002 -> disp -1.
  EXPECT_EQ(instrs[2].imm, -1);
  EXPECT_EQ(instrs[2].branchTarget(), 0x80000002u);
}

TEST(Assembler, DataDirectivesAndSymbols) {
  const elf::Object obj = assemble(R"(
_start: halt
        .data
tbl:    .word 1, 2, 0x30
vals:   .half 5, -1
ch:     .byte 7
        .align 4
after:  .word tbl
)");
  const elf::Section* data = obj.findSection(".data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->addr, 0xd0000000u);
  EXPECT_EQ(obj.findSymbol("tbl")->value, 0xd0000000u);
  EXPECT_EQ(obj.findSymbol("vals")->value, 0xd000000cu);
  EXPECT_EQ(obj.findSymbol("ch")->value, 0xd0000010u);
  EXPECT_EQ(obj.findSymbol("after")->value, 0xd0000014u);
  // .word tbl stores the symbol's address.
  const auto bytes = obj.read(0xd0000014, 4);
  EXPECT_EQ(bytes[3], 0xd0);
  // .half -1 encodes as 0xffff.
  EXPECT_EQ(obj.read(0xd000000e, 2), (std::vector<uint8_t>{0xff, 0xff}));
}

TEST(Assembler, BssSection) {
  const elf::Object obj = assemble(R"(
_start: halt
        .data
x:      .word 1
        .bss
buf:    .space 128
)");
  const elf::Section* bss = obj.findSection(".bss");
  ASSERT_NE(bss, nullptr);
  EXPECT_EQ(bss->kind, elf::SectionKind::kNobits);
  EXPECT_EQ(bss->mem_size, 128u);
  // bss is placed after data, 16-aligned.
  EXPECT_EQ(bss->addr, 0xd0000010u);
  EXPECT_EQ(obj.findSymbol("buf")->value, 0xd0000010u);
}

TEST(Assembler, HiLoMaterialiseAddresses) {
  const elf::Object obj = assemble(R"(
_start: movha a0, hi(var)
        lea a0, a0, lo(var)
        halt
        .data
        .space 0x9000
var:    .word 42
)");
  // var = 0xd0009000; hi() carries when lo is negative.
  const uint32_t var = obj.findSymbol("var")->value;
  EXPECT_EQ(var, 0xd0009000u);
  EXPECT_EQ((hi16(var) << 16) + static_cast<uint32_t>(lo16(var)), var);
  const auto instrs = decodeText(obj);
  EXPECT_EQ(static_cast<uint32_t>(instrs[0].imm), hi16(var));
  EXPECT_EQ(instrs[1].imm, lo16(var));
}

TEST(Assembler, HiLoCarryCase) {
  // lo(0x0001_8000) = -32768, so hi() must round up to 2.
  EXPECT_EQ(hi16(0x18000), 2u);
  EXPECT_EQ(lo16(0x18000), -32768);
  EXPECT_EQ((hi16(0x18000) << 16) + static_cast<uint32_t>(lo16(0x18000)),
            0x18000u);
}

TEST(Assembler, MemoryOperands) {
  const elf::Object obj = assemble(R"(
_start: ldw d1, [a0]8
        stw d1, [a0]-4
        ldw d2, [a3]
        halt
)");
  const auto instrs = decodeText(obj);
  EXPECT_EQ(instrs[0].ra, 0);
  EXPECT_EQ(instrs[0].imm, 8);
  EXPECT_EQ(instrs[1].imm, -4);
  EXPECT_EQ(instrs[2].imm, 0);
  EXPECT_EQ(instrs[2].ra, 3);
}

TEST(Assembler, ExpressionArithmetic) {
  const elf::Object obj = assemble(R"(
_start: movi d0, 2+3
        movi d1, tbl+4 - tbl
        halt
        .data
tbl:    .word 0, 0
)");
  const auto instrs = decodeText(obj);
  EXPECT_EQ(instrs[0].imm, 5);
  EXPECT_EQ(instrs[1].imm, 4);
}

TEST(Assembler, AsciiDirective) {
  const elf::Object obj = assemble(R"(
_start: halt
        .data
msg:    .ascii "hi\n"
)");
  const auto bytes = obj.read(0xd0000000, 3);
  EXPECT_EQ(bytes, (std::vector<uint8_t>{'h', 'i', '\n'}));
}

TEST(Assembler, CommentsAndBlankLines) {
  const elf::Object obj = assemble(R"(
# full-line comment
_start:            ; label alone
        halt       # trailing comment
)");
  EXPECT_EQ(decodeText(obj).size(), 1u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  const auto expectErrorAt = [](std::string_view src, const char* fragment) {
    try {
      assemble(src);
      FAIL() << "expected error for: " << fragment;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << e.what();
    }
  };
  expectErrorAt("_start: frobnicate d0\n halt\n", "unknown mnemonic");
  expectErrorAt("_start: add d0, d1\n", "wrong operand count");
  expectErrorAt("_start: add d0, d1, a2\n", "wrong register bank");
  expectErrorAt("_start: j nowhere\n", "undefined symbol");
  expectErrorAt("_start: movi d0, 0x12345\n", "immediate overflow");
  expectErrorAt("x: halt\nx: halt\n", "duplicate label");
  expectErrorAt("_start: .data\n  add d0, d1, d2\n", "instr outside text");
  expectErrorAt("_start: ldw d1, a0\n halt\n", "bad memory operand");
}

TEST(Assembler, EntrySymbolOption) {
  AsmOptions opts;
  opts.entry_symbol = "main";
  const elf::Object obj = assemble(R"(
pre:    nop
main:   halt
)", opts);
  EXPECT_EQ(obj.entry, 0x80000004u);
}

TEST(Assembler, DisassembleReassembleRoundTrip) {
  const elf::Object obj = assemble(R"(
_start: movi d0, 100
        movha a2, 0xd000
        lea a2, a2, 0x10
loop:   ldw d1, [a2]0
        add d3, d3, d1
        addi16 d0, -1
        jnz16 d0, loop
        stw d3, [a2]4
        halt
)");
  // Disassemble every instruction and re-assemble the result: the decoded
  // streams must match.
  std::string reasm = "_start:\n";
  for (const Instr& i : decodeText(obj)) {
    reasm += disassemble(i) + "\n";
  }
  const elf::Object obj2 = assemble(reasm);
  const auto a = decodeText(obj);
  const auto b = decodeText(obj2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].opc, b[i].opc) << "instr " << i;
    EXPECT_EQ(a[i].imm, b[i].imm) << "instr " << i;
  }
}

TEST(Leaders, FindsTargetsAndFallThroughs) {
  const elf::Object obj = assemble(R"(
_start: movi d0, 3
loop:   addi16 d0, -1
        jnz16 d0, loop
        jl func
        halt
func:   ret16
)");
  const auto leaders = findLeaders(obj);
  // _start (entry), loop (target), after-jnz, func (target), after-jl.
  EXPECT_TRUE(leaders.count(0x80000000));  // entry
  EXPECT_TRUE(leaders.count(0x80000004));  // loop
  EXPECT_TRUE(leaders.count(0x80000008));  // after jnz16 (jl)
  EXPECT_TRUE(leaders.count(0x8000000c));  // after jl (halt)
  EXPECT_TRUE(leaders.count(0x80000010));  // func
  EXPECT_EQ(leaders.size(), 5u);
}

}  // namespace
}  // namespace cabt::trc
