// Direct unit tests of the translator's packetizer: packing, latency
// gaps, volatile/memory ordering, branch padding, call-return handling.
// (End-to-end correctness is covered by the workload and fuzz tests; this
// pins the scheduling contract itself.)
#include <gtest/gtest.h>

#include "vliw/isa.h"
#include "xlat/internal.h"
#include "xlat/regmap.h"

namespace cabt::xlat {
namespace {

using vliw::kNoReg;
using vliw::MachineOp;
using vliw::Packet;
using vliw::VOpc;

XOp op(VOpc opc, uint8_t dst, uint8_t s1 = kNoReg, uint8_t s2 = kNoReg,
       int32_t imm = 0) {
  XOp x;
  x.op.opc = opc;
  x.op.dst = dst;
  x.op.src1 = s1;
  x.op.src2 = s2;
  x.op.imm = imm;
  return x;
}

/// Issue-slot index of the packet containing the op with `dst`, counting
/// multi-cycle NOPs as their full width.
int slotOf(const std::vector<Packet>& packets, uint8_t dst) {
  int slot = 0;
  for (const Packet& p : packets) {
    for (const MachineOp& m : p.ops) {
      if (m.dst == dst && m.opc != VOpc::kNop) {
        return slot;
      }
    }
    slot += p.ops.size() == 1 && p.ops[0].opc == VOpc::kNop
                ? p.ops[0].imm
                : 1;
  }
  return -1;
}

size_t totalSlots(const std::vector<Packet>& packets) {
  size_t slots = 0;
  for (const Packet& p : packets) {
    slots += p.ops.size() == 1 && p.ops[0].opc == VOpc::kNop
                 ? static_cast<size_t>(p.ops[0].imm)
                 : 1u;
  }
  return slots;
}

TEST(Scheduler, IndependentOpsPackTogether) {
  // Four independent ALU ops fit in one packet (two L units, two S-capable
  // slots).
  std::vector<XOp> ops;
  for (int i = 0; i < 4; ++i) {
    ops.push_back(op(VOpc::kAdd, vliw::regA(10 + i), vliw::regA(20),
                     vliw::regA(21)));
  }
  const ScheduledBlock sb = scheduleBlock(ops);
  ASSERT_EQ(sb.packets.size(), 1u);
  EXPECT_EQ(sb.packets[0].ops.size(), 4u);
  EXPECT_NO_THROW(vliw::validatePacket(sb.packets[0]));
}

TEST(Scheduler, RawDependencySplitsPackets) {
  std::vector<XOp> ops;
  ops.push_back(op(VOpc::kAdd, vliw::regA(10), vliw::regA(20), vliw::regA(21)));
  ops.push_back(op(VOpc::kAdd, vliw::regA(11), vliw::regA(10), vliw::regA(21)));
  const ScheduledBlock sb = scheduleBlock(ops);
  EXPECT_EQ(slotOf(sb.packets, vliw::regA(11)),
            slotOf(sb.packets, vliw::regA(10)) + 1);
}

TEST(Scheduler, LoadConsumerWaitsFiveSlots) {
  std::vector<XOp> ops;
  ops.push_back(op(VOpc::kLdw, vliw::regA(10), vliw::regB(20)));
  ops.push_back(op(VOpc::kAdd, vliw::regA(11), vliw::regA(10), vliw::regA(10)));
  const ScheduledBlock sb = scheduleBlock(ops);
  EXPECT_EQ(slotOf(sb.packets, vliw::regA(11)),
            slotOf(sb.packets, vliw::regA(10)) + 5);
}

TEST(Scheduler, MpyConsumerWaitsTwoSlots) {
  std::vector<XOp> ops;
  ops.push_back(op(VOpc::kMpy, vliw::regA(10), vliw::regA(20), vliw::regA(21)));
  ops.push_back(op(VOpc::kAdd, vliw::regA(11), vliw::regA(10), vliw::regA(10)));
  const ScheduledBlock sb = scheduleBlock(ops);
  EXPECT_EQ(slotOf(sb.packets, vliw::regA(11)),
            slotOf(sb.packets, vliw::regA(10)) + 2);
}

TEST(Scheduler, IndependentOpHidesLoadLatency) {
  std::vector<XOp> ops;
  ops.push_back(op(VOpc::kLdw, vliw::regA(10), vliw::regB(20)));
  ops.push_back(op(VOpc::kAdd, vliw::regA(12), vliw::regA(20), vliw::regA(21)));
  const ScheduledBlock sb = scheduleBlock(ops);
  // The independent add shares the load's packet.
  EXPECT_EQ(slotOf(sb.packets, vliw::regA(12)),
            slotOf(sb.packets, vliw::regA(10)));
}

TEST(Scheduler, VolatileAccessesStayStrictlyOrdered) {
  std::vector<XOp> ops;
  XOp a = op(VOpc::kStw, vliw::regA(10), vliw::regA(4), kNoReg, 0);
  a.volatile_mem = true;
  XOp b = op(VOpc::kLdw, vliw::regA(11), vliw::regA(4), kNoReg, 4);
  b.volatile_mem = true;
  ops.push_back(a);
  ops.push_back(b);
  const ScheduledBlock sb = scheduleBlock(ops);
  EXPECT_EQ(slotOf(sb.packets, vliw::regA(11)), 1);
}

TEST(Scheduler, TerminatorBranchGetsFiveDelaySlots) {
  std::vector<XOp> ops;
  ops.push_back(op(VOpc::kAdd, vliw::regA(10), vliw::regA(20), vliw::regA(21)));
  XOp b = op(VOpc::kB, kNoReg);
  b.fixup = XOp::Fixup::kBranchToBlock;
  b.fixup_data = 0x80000000;
  ops.push_back(b);
  const ScheduledBlock sb = scheduleBlock(ops);
  // add+branch may share slot 0; five empty slots follow as one NOP 5.
  EXPECT_EQ(totalSlots(sb.packets), 6u);
  const Packet& last = sb.packets.back();
  ASSERT_EQ(last.ops.size(), 1u);
  EXPECT_EQ(last.ops[0].opc, VOpc::kNop);
  EXPECT_EQ(last.ops[0].imm, 5);
  ASSERT_EQ(sb.fixups.size(), 1u);
  EXPECT_EQ(sb.fixups[0].fixup, XOp::Fixup::kBranchToBlock);
}

TEST(Scheduler, CallKeepsDelaySlotsEmptyAndRecordsReturn) {
  std::vector<XOp> ops;
  XOp lo = op(VOpc::kMvk, kCacheRetReg, kNoReg, kNoReg, 0);
  lo.fixup = XOp::Fixup::kRetAddrLo;
  XOp hi = op(VOpc::kMvkh, kCacheRetReg, kNoReg, kNoReg, 0);
  hi.fixup = XOp::Fixup::kRetAddrHi;
  XOp call = op(VOpc::kB, kNoReg);
  call.fixup = XOp::Fixup::kBranchToRoutine;
  call.is_call = true;
  ops.push_back(lo);
  ops.push_back(hi);
  ops.push_back(call);
  // Something after the call: must land at the return point.
  ops.push_back(op(VOpc::kAdd, vliw::regA(10), vliw::regA(20),
                   vliw::regA(21)));
  const ScheduledBlock sb = scheduleBlock(ops);
  ASSERT_EQ(sb.call_returns.size(), 1u);
  const size_t ret_packet = sb.call_returns[0];
  ASSERT_LT(ret_packet, sb.packets.size());
  // The return packet holds the post-call op.
  EXPECT_EQ(sb.packets[ret_packet].ops[0].dst, vliw::regA(10));
}

TEST(Scheduler, AllEmittedPacketsValidate) {
  // A busy mix; every resulting packet must satisfy the ISA rules.
  std::vector<XOp> ops;
  for (int i = 0; i < 6; ++i) {
    ops.push_back(op(VOpc::kMpy, vliw::regA(8 + i), vliw::regA(20),
                     vliw::regA(21)));
    ops.push_back(op(VOpc::kShl, vliw::regB(1 + i), vliw::regA(20),
                     vliw::regA(21)));
    ops.push_back(op(VOpc::kLdw, vliw::regA(14), vliw::regB(20), kNoReg,
                     4 * i));
    ops.push_back(op(VOpc::kStw, vliw::regA(14), vliw::regB(21), kNoReg,
                     4 * i));
  }
  const ScheduledBlock sb = scheduleBlock(ops);
  for (const Packet& p : sb.packets) {
    EXPECT_NO_THROW(vliw::validatePacket(p));
  }
}

TEST(Scheduler, FallThroughBlockDrainsTrailingLoad) {
  // A trailing load must be followed by enough padding that its write
  // commits before the next block could read it.
  std::vector<XOp> ops;
  ops.push_back(op(VOpc::kLdw, vliw::regA(10), vliw::regB(20)));
  const ScheduledBlock sb = scheduleBlock(ops);
  EXPECT_GE(totalSlots(sb.packets), 5u);  // load + 4 drain slots
}

}  // namespace
}  // namespace cabt::xlat
