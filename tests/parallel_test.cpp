// Differential conformance fleet for the parallel-round kernel
// (sim::Kernel::ParallelConfig, DESIGN.md section 7).
//
// The claim under test: parallel execution is *bit-identical* to the
// sequential kernel — same cycles, register files, IRQ delivery
// timestamps, mailbox traffic and even the same bus transaction log,
// because every shared-state access still happens at its sequential
// dispatch position; only core-private quantum prefixes overlap on
// worker threads. The grid crosses board size {1,2,4,8 cores} x quantum
// {1,16,256,4096} x all four detail levels x all four dispatch modes
// and compares every observable the simulation has.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "sim/kernel.h"
#include "soc/bus.h"
#include "soc/interrupts.h"
#include "workloads/workloads.h"

namespace cabt {
namespace {

// ---- kernel-level behaviour ------------------------------------------

class StampingClock : public sim::ClockedProcess {
 public:
  StampingClock(const char* name, sim::Cycle period, int limit,
                std::vector<std::string>* trace)
      : sim::ClockedProcess(name, period), limit_(limit), trace_(trace) {}
  void tick(sim::Kernel& kernel) override {
    trace_->push_back(name() + "@" + std::to_string(kernel.now()));
    if (--limit_ == 0) {
      stop();
    }
  }

 private:
  int limit_;
  std::vector<std::string>* trace_;
};

// Processes that do not opt into parallel prefixes dispatch in the
// identical (time, insertion) order under both kernels.
TEST(ParallelKernel, DispatchOrderMatchesSequentialKernel) {
  std::vector<std::string> sequential;
  std::vector<std::string> parallel;
  for (std::vector<std::string>* trace : {&sequential, &parallel}) {
    sim::Kernel k(32);
    if (trace == &parallel) {
      k.setParallel({true, 2});
    }
    StampingClock a("a", 7, 40, trace);
    StampingClock b("b", 13, 20, trace);
    StampingClock c("c", 32, 9, trace);
    k.addProcess(&a, 7);
    k.addProcess(&b, 13);
    k.addProcess(&c, 32);
    k.schedule(100, [trace] { trace->push_back("cb@100"); });
    k.run();
  }
  EXPECT_EQ(parallel, sequential);
}

TEST(ParallelKernel, RunLimitLeavesLaterEventsQueued) {
  sim::Kernel k(16);
  k.setParallel({true, 1});
  int fired = 0;
  k.schedule(10, [&] { ++fired; });
  k.schedule(20, [&] { ++fired; });
  k.run(15);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(k.idle());
  k.run();
  EXPECT_EQ(fired, 2);
}

// ---- the differential grid -------------------------------------------

struct CoreSnapshot {
  iss::IssStats stats;
  iss::StopReason stop = iss::StopReason::kRunning;
  uint32_t pc = 0;
  std::array<uint32_t, 16> d{};
  std::array<uint32_t, 16> a{};
  uint32_t checksum = 0;
  std::vector<uint64_t> irq_times;
  uint32_t intc_pending = 0;
};

struct BoardSnapshot {
  std::vector<CoreSnapshot> cores;
  uint64_t bus_cycle = 0;
  uint64_t timer_expiries = 0;
  uint64_t mailbox_pushes = 0;
  uint64_t mailbox_dropped = 0;
  size_t mailbox_depth = 0;
  std::array<uint32_t, 16> scratch{};
  std::vector<soc::Transaction> bus_log;
  uint64_t kernel_events = 0;
  uint64_t prefixes = 0;  ///< not compared: parallel-utilisation signal
};

struct GridBoard {
  std::vector<const workloads::Workload*> programs;
  std::vector<elf::Object> images;
  std::vector<const elf::Object*> image_ptrs;
  std::vector<uint32_t> extra_leaders;
};

/// The N-core board of the grid: the interrupt-driven tick counter
/// alone (N=1), the producer/consumer pair (N=2), and the pair plus
/// compute-heavy workers with rare shared beacons (N=4, 8).
GridBoard makeBoard(size_t cores) {
  GridBoard b;
  if (cores == 1) {
    b.programs = {&workloads::get("irq_ticks")};
  } else {
    b.programs = {&workloads::get("mc_producer"),
                  &workloads::get("mc_consumer")};
    while (b.programs.size() < cores) {
      b.programs.push_back(&workloads::get("mc_worker"));
    }
  }
  for (const workloads::Workload* w : b.programs) {
    b.images.push_back(workloads::assemble(*w));
    if (!w->irq_handler.empty()) {
      b.extra_leaders.push_back(
          platform::symbolAddr(b.images.back(), w->irq_handler));
    }
  }
  for (const elf::Object& obj : b.images) {
    b.image_ptrs.push_back(&obj);
  }
  return b;
}

BoardSnapshot runBoard(const GridBoard& grid, xlat::DetailLevel level,
                       sim::Cycle quantum, iss::DispatchMode mode,
                       bool use_block_cache, bool parallel) {
  const arch::ArchDescription desc = arch::ArchDescription::defaultTc10gp();
  platform::BoardConfig cfg;
  cfg.iss = platform::issConfigFor(level);
  cfg.iss.dispatch_mode = mode;
  cfg.iss.use_block_cache = use_block_cache;
  cfg.iss.extra_leaders = grid.extra_leaders;
  // Cap the long-running workers so the grid stays fast; the cap is
  // architectural state (instruction counts are private), so capped
  // runs still compare bit-exactly.
  cfg.iss.max_instructions = 30'000;
  cfg.quantum = quantum;
  cfg.parallel.enabled = parallel;
  // Force a real worker pool even on single-core hosts (the default
  // would run prefixes inline there), so the grid — and the TSan CI job
  // on top of it — always exercises genuine cross-thread execution.
  cfg.parallel.workers = 2;
  platform::ReferenceBoard board(desc, grid.image_ptrs, cfg);
  board.run();
  BoardSnapshot s;
  for (size_t i = 0; i < board.numCores(); ++i) {
    CoreSnapshot c;
    c.stats = board.core(i).stats();
    c.stop = board.core(i).stopReason();
    c.pc = board.core(i).pc();
    for (int r = 0; r < 16; ++r) {
      c.d[static_cast<size_t>(r)] = board.core(i).d(r);
      c.a[static_cast<size_t>(r)] = board.core(i).a(r);
    }
    c.checksum =
        workloads::readChecksum(grid.images[i], board.core(i).memory());
    c.irq_times = board.intc(i).deliveryTimes();
    c.intc_pending = board.intc(i).pending();
    s.cores.push_back(std::move(c));
  }
  s.bus_cycle = board.board().bus.socCycle();
  s.timer_expiries = board.ptimer().expiries();
  s.mailbox_pushes = board.mailbox().pushes();
  s.mailbox_dropped = board.mailbox().dropped();
  s.mailbox_depth = board.mailbox().depth();
  for (size_t r = 0; r < 16; ++r) {
    s.scratch[r] = board.board().scratch.reg(r);
  }
  s.bus_log = board.board().bus.log();
  s.kernel_events = board.kernel().eventsDispatched();
  s.prefixes = board.kernel().parallelPrefixes();
  return s;
}

void expectIdentical(const BoardSnapshot& par, const BoardSnapshot& seq) {
  ASSERT_EQ(par.cores.size(), seq.cores.size());
  for (size_t i = 0; i < par.cores.size(); ++i) {
    SCOPED_TRACE("core " + std::to_string(i));
    const CoreSnapshot& p = par.cores[i];
    const CoreSnapshot& q = seq.cores[i];
    EXPECT_EQ(p.stats.instructions, q.stats.instructions);
    EXPECT_EQ(p.stats.cycles, q.stats.cycles);
    EXPECT_EQ(p.stats.pipeline_cycles, q.stats.pipeline_cycles);
    EXPECT_EQ(p.stats.branch_extra, q.stats.branch_extra);
    EXPECT_EQ(p.stats.cache_penalty, q.stats.cache_penalty);
    EXPECT_EQ(p.stats.blocks, q.stats.blocks);
    EXPECT_EQ(p.stats.icache_accesses, q.stats.icache_accesses);
    EXPECT_EQ(p.stats.icache_misses, q.stats.icache_misses);
    EXPECT_EQ(p.stats.cond_branches, q.stats.cond_branches);
    EXPECT_EQ(p.stats.cond_taken, q.stats.cond_taken);
    EXPECT_EQ(p.stats.mispredicts, q.stats.mispredicts);
    EXPECT_EQ(p.stats.io_reads, q.stats.io_reads);
    EXPECT_EQ(p.stats.io_writes, q.stats.io_writes);
    EXPECT_EQ(p.stats.irqs_taken, q.stats.irqs_taken);
    EXPECT_EQ(p.stats.irq_entry_cycles, q.stats.irq_entry_cycles);
    EXPECT_EQ(p.stop, q.stop);
    EXPECT_EQ(p.pc, q.pc);
    EXPECT_EQ(p.d, q.d);
    EXPECT_EQ(p.a, q.a);
    EXPECT_EQ(p.checksum, q.checksum);
    EXPECT_EQ(p.irq_times, q.irq_times) << "IRQ delivery timestamps";
    EXPECT_EQ(p.intc_pending, q.intc_pending);
  }
  EXPECT_EQ(par.bus_cycle, seq.bus_cycle);
  EXPECT_EQ(par.timer_expiries, seq.timer_expiries);
  EXPECT_EQ(par.mailbox_pushes, seq.mailbox_pushes);
  EXPECT_EQ(par.mailbox_dropped, seq.mailbox_dropped);
  EXPECT_EQ(par.mailbox_depth, seq.mailbox_depth);
  EXPECT_EQ(par.scratch, seq.scratch);
  EXPECT_EQ(par.kernel_events, seq.kernel_events)
      << "kernel dispatch sequence diverged";
  // The strongest statement: the shared bus saw the same transactions,
  // with the same payloads, at the same SoC cycles, in the same order.
  ASSERT_EQ(par.bus_log.size(), seq.bus_log.size());
  for (size_t i = 0; i < par.bus_log.size(); ++i) {
    const soc::Transaction& a = par.bus_log[i];
    const soc::Transaction& b = seq.bus_log[i];
    EXPECT_EQ(a.soc_cycle, b.soc_cycle) << "transaction " << i;
    EXPECT_EQ(a.addr, b.addr) << "transaction " << i;
    EXPECT_EQ(a.value, b.value) << "transaction " << i;
    EXPECT_EQ(a.size, b.size) << "transaction " << i;
    EXPECT_EQ(a.is_write, b.is_write) << "transaction " << i;
  }
}

struct GridParam {
  size_t cores;
  sim::Cycle quantum;
};

class ParallelGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ParallelGrid, BitIdenticalToSequentialKernel) {
  const auto [cores, quantum] = GetParam();
  const GridBoard board = makeBoard(cores);
  uint64_t total_prefixes = 0;
  for (const xlat::DetailLevel level :
       {xlat::DetailLevel::kFunctional, xlat::DetailLevel::kStatic,
        xlat::DetailLevel::kBranchPredict, xlat::DetailLevel::kICache}) {
    for (const iss::DispatchMode mode :
         {iss::DispatchMode::kLookup, iss::DispatchMode::kChained,
          iss::DispatchMode::kChainedTraces, iss::DispatchMode::kThreaded}) {
      SCOPED_TRACE(std::string(xlat::detailLevelName(level)) + ", mode " +
                   std::to_string(static_cast<int>(mode)));
      const BoardSnapshot seq =
          runBoard(board, level, quantum, mode, true, false);
      const BoardSnapshot par =
          runBoard(board, level, quantum, mode, true, true);
      expectIdentical(par, seq);
      EXPECT_EQ(seq.prefixes, 0u);
      total_prefixes += par.prefixes;
    }
  }
  // The comparison must not be vacuous: boards with quiescent-certified
  // cores really ran worker-thread prefixes.
  if (cores >= 2) {
    EXPECT_GT(total_prefixes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Boards, ParallelGrid,
    ::testing::Values(GridParam{1, 1}, GridParam{1, 16}, GridParam{1, 256},
                      GridParam{1, 4096}, GridParam{2, 1}, GridParam{2, 16},
                      GridParam{2, 256}, GridParam{2, 4096}, GridParam{4, 1},
                      GridParam{4, 16}, GridParam{4, 256},
                      GridParam{4, 4096}, GridParam{8, 1}, GridParam{8, 16},
                      GridParam{8, 256}, GridParam{8, 4096}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return "cores" + std::to_string(info.param.cores) + "_quantum" +
             std::to_string(info.param.quantum);
    });

// The stepping-only configuration (use_block_cache = false) takes the
// per-instruction bail path; prove it on the 4-core board too.
TEST(ParallelGrid, SteppingEngineBitIdentical) {
  const GridBoard board = makeBoard(4);
  for (const sim::Cycle quantum : {16u, 1024u}) {
    SCOPED_TRACE("quantum " + std::to_string(quantum));
    const BoardSnapshot seq =
        runBoard(board, xlat::DetailLevel::kICache, quantum,
                 iss::DispatchMode::kLookup, false, false);
    const BoardSnapshot par =
        runBoard(board, xlat::DetailLevel::kICache, quantum,
                 iss::DispatchMode::kLookup, false, true);
    expectIdentical(par, seq);
  }
}

// Workers bail mid-quantum on their beacons; the machinery must report
// it (the bench's utilisation counters hang off these).
TEST(ParallelGrid, PrivateSlicesAndBailsAreAccounted) {
  const GridBoard board = makeBoard(4);
  const BoardSnapshot par = runBoard(board, xlat::DetailLevel::kICache, 4096,
                                     iss::DispatchMode::kChainedTraces, true,
                                     true);
  EXPECT_GT(par.prefixes, 0u);
  uint64_t slices = 0;
  uint64_t bails = 0;
  for (const CoreSnapshot& c : par.cores) {
    slices += c.stats.private_slices;
    bails += c.stats.private_bails;
  }
  EXPECT_GT(slices, 0u);
  EXPECT_GT(bails, 0u);  // the beacon writes force mid-slice bails
  EXPECT_LE(bails, slices);
}

}  // namespace
}  // namespace cabt
